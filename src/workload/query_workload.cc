#include "workload/query_workload.h"

#include "workload/corpus.h"

namespace netmark::workload {

query::XdbQuery QueryWorkload::Next(double context_only, double content_only) {
  const auto& headings = CorpusGenerator::StandardHeadings();
  const auto& topics = CorpusGenerator::TopicTerms();
  query::XdbQuery q;
  double dice = rng_.UniformDouble();
  if (dice < context_only) {
    q.context = headings[rng_.Zipf(headings.size(), 0.7)];
  } else if (dice < context_only + content_only) {
    q.content = topics[rng_.Zipf(topics.size(), 0.8)];
    if (rng_.Chance(0.25)) q.content += " " + topics[rng_.Uniform(topics.size())];
  } else {
    q.context = headings[rng_.Zipf(headings.size(), 0.7)];
    q.content = topics[rng_.Zipf(topics.size(), 0.8)];
  }
  return q;
}

baseline::RecordSource EmployeeSource(uint64_t seed, const std::string& center,
                                      size_t n_employees) {
  netmark::Rng rng(seed);
  baseline::RecordSource source;
  source.name = center;
  // Center-specific schemas: different attribute names and rating systems,
  // as in the paper's Ames/Johnson/Kennedy example.
  std::string name_attr, rating_attr;
  std::vector<std::string> scale;
  if (center == "Ames") {
    name_attr = "employee_name";
    rating_attr = "performance_rating";
    scale = {"poor", "fair", "good", "excellent"};
  } else if (center == "Johnson") {
    name_attr = "person";
    rating_attr = "score";  // numeric 1 (best) .. 5 (worst)
    scale = {"1", "2", "3", "4", "5"};
  } else {
    name_attr = "staff_member";
    rating_attr = "rating";
    scale = {"unsatisfactory", "satisfactory", "very good", "outstanding"};
  }
  source.attributes = {name_attr, rating_attr, "division"};
  for (size_t i = 0; i < n_employees; ++i) {
    baseline::Record record;
    record[name_attr] = center + "_employee_" + std::to_string(i);
    record[rating_attr] = rng.Pick(scale);
    record["division"] = rng.Pick(CorpusGenerator::Divisions());
    source.records.push_back(std::move(record));
  }
  return source;
}

}  // namespace netmark::workload
