// Fig 6 — context search: "return the content portion in the 'X' sections of
// all the documents in a document collection".
//
// Series: context-search latency vs corpus size, with the text index on
// (production path) and off (full-scan ablation, DESIGN.md Ablation B). The
// paper's implicit claim is that section retrieval stays interactive at
// collection scale because the text index prunes the candidate set.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "query/executor.h"
#include "workload/query_workload.h"

namespace {

using namespace netmark;

void RunQueries(const xmlstore::XmlStore* store, bool use_index,
                benchmark::State& state) {
  query::ExecuteOptions options;
  options.use_text_index = use_index;
  query::QueryExecutor executor(store, options);
  workload::QueryWorkload workload(17);
  size_t hits_total = 0;
  size_t queries = 0;
  for (auto _ : state) {
    query::XdbQuery q = workload.Next(/*context_only=*/1.0, /*content_only=*/0.0);
    auto hits = executor.Execute(q);
    bench::Check(hits.status(), "query");
    hits_total += hits->size();
    ++queries;
    benchmark::DoNotOptimize(hits->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(queries));
  state.counters["avg_hits"] =
      queries == 0 ? 0 : static_cast<double>(hits_total) / static_cast<double>(queries);
  state.counters["corpus_docs"] = static_cast<double>(store->document_count());
}

void BM_ContextSearchIndexed(benchmark::State& state) {
  auto inst = bench::MakeLoadedInstance(static_cast<size_t>(state.range(0)));
  RunQueries(inst.nm->store(), /*use_index=*/true, state);
}
BENCHMARK(BM_ContextSearchIndexed)
    ->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

void BM_ContextSearchFullScan(benchmark::State& state) {
  auto inst = bench::MakeLoadedInstance(static_cast<size_t>(state.range(0)));
  RunQueries(inst.nm->store(), /*use_index=*/false, state);
}
BENCHMARK(BM_ContextSearchFullScan)
    ->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

// Content search at document granularity (the other Fig 6 query kind).
void BM_ContentSearchIndexed(benchmark::State& state) {
  auto inst = bench::MakeLoadedInstance(static_cast<size_t>(state.range(0)));
  query::QueryExecutor executor(inst.nm->store());
  workload::QueryWorkload workload(19);
  for (auto _ : state) {
    query::XdbQuery q = workload.Next(/*context_only=*/0.0, /*content_only=*/1.0);
    auto hits = executor.Execute(q);
    bench::Check(hits.status(), "query");
    benchmark::DoNotOptimize(hits->size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ContentSearchIndexed)->Arg(400)->Arg(1600)->Unit(benchmark::kMicrosecond);

void PrintLatencyTable() {
  bench::ReportHeader("Fig 6: context search across a document collection",
                      "index-pruned section retrieval stays fast as the "
                      "collection grows; scans do not");
  bench::JsonLines json("fig6_context_search");
  std::printf("%10s %16s %16s %10s\n", "docs", "indexed (ms)", "scan (ms)",
              "speedup");
  for (size_t n : {100, 400, 1600}) {
    auto inst = bench::MakeLoadedInstance(n);
    workload::QueryWorkload workload(17);
    std::vector<query::XdbQuery> queries;
    for (int i = 0; i < 40; ++i) queries.push_back(workload.Next(1.0, 0.0));

    query::QueryExecutor indexed(inst.nm->store());
    Stopwatch w1;
    for (const auto& q : queries) bench::Check(indexed.Execute(q).status(), "q");
    double indexed_ms = w1.ElapsedSeconds() * 1000 / static_cast<double>(queries.size());

    query::ExecuteOptions scan_options;
    scan_options.use_text_index = false;
    query::QueryExecutor scanning(inst.nm->store(), scan_options);
    Stopwatch w2;
    for (const auto& q : queries) bench::Check(scanning.Execute(q).status(), "q");
    double scan_ms = w2.ElapsedSeconds() * 1000 / static_cast<double>(queries.size());

    std::printf("%10zu %16.3f %16.3f %9.1fx\n", n, indexed_ms, scan_ms,
                scan_ms / indexed_ms);
    json.Emit("context_search_indexed", static_cast<double>(n),
              indexed_ms * 1e6, 1000.0 / indexed_ms, "queries/sec");
    json.Emit("context_search_scan", static_cast<double>(n), scan_ms * 1e6,
              1000.0 / scan_ms, "queries/sec");
  }
  std::printf("shape check: the scan column grows ~linearly with corpus size;\n"
              "the indexed column grows with result size only.\n");

  // Metrics-overhead check (acceptance bound: < 3%): the same executor and
  // query stream with the registry recording vs disabled. Disabled degrades
  // every Increment/Observe to one relaxed atomic load.
  std::printf("\n-- metrics overhead: registry enabled vs disabled --\n");
  {
    auto inst = bench::MakeLoadedInstance(400);
    observability::MetricsRegistry* registry = inst.nm->metrics();
    query::QueryExecutor executor(inst.nm->store());
    executor.BindMetrics(registry);
    workload::QueryWorkload workload(17);
    std::vector<query::XdbQuery> queries;
    for (int i = 0; i < 200; ++i) queries.push_back(workload.Next(1.0, 0.0));
    // Warm both paths once so neither run pays first-touch costs.
    for (const auto& q : queries) bench::Check(executor.Execute(q).status(), "q");

    // Best-of-3 per mode to damp scheduler noise on a one-shot measurement.
    auto best_of_3 = [&](bool enabled) {
      registry->set_enabled(enabled);
      double best = 0;
      for (int rep = 0; rep < 3; ++rep) {
        Stopwatch w;
        for (const auto& q : queries) bench::Check(executor.Execute(q).status(), "q");
        double ms = w.ElapsedSeconds() * 1000 / static_cast<double>(queries.size());
        if (rep == 0 || ms < best) best = ms;
      }
      return best;
    };
    double off_ms = best_of_3(false);
    double on_ms = best_of_3(true);

    double overhead_pct = off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0;
    std::printf("%12s %12s %12s\n", "on (ms)", "off (ms)", "overhead");
    std::printf("%12.4f %12.4f %11.2f%%\n", on_ms, off_ms, overhead_pct);
    json.Emit("metrics_overhead_on", 400, on_ms * 1e6, 1000.0 / on_ms, "queries/sec");
    json.Emit("metrics_overhead_off", 400, off_ms * 1e6, 1000.0 / off_ms, "queries/sec");
    // Final registry snapshot (query counters + execute-latency histogram).
    json.EmitMetrics(*registry);
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintLatencyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
