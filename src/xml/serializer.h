// XML serialization of DOM (sub)trees.

#ifndef NETMARK_XML_SERIALIZER_H_
#define NETMARK_XML_SERIALIZER_H_

#include <string>

#include "xml/dom.h"

namespace netmark::xml {

/// Serialization knobs.
struct SerializeOptions {
  /// Indent nested elements with two spaces per level and newlines between
  /// element children. Text content is never re-wrapped.
  bool pretty = false;
  /// Emit an `<?xml version="1.0"?>` declaration before the document element.
  bool declaration = false;
};

/// \brief Serializes the subtree rooted at `node` (the whole document if
/// `node` is the root).
std::string Serialize(const Document& doc, NodeId node,
                      const SerializeOptions& options = {});

/// \brief Serializes the full document.
inline std::string Serialize(const Document& doc, const SerializeOptions& options = {}) {
  return Serialize(doc, doc.root(), options);
}

}  // namespace netmark::xml

#endif  // NETMARK_XML_SERIALIZER_H_
