// File-backed page manager.
//
// Pages are cached in memory once touched and written back on Flush/close.
// This favors the NETMARK workload (bulk document ingest, read-mostly
// querying) over strict memory bounds; an eviction policy could be added
// behind the same interface.
//
// Durability (docs/durability.md): the pager additionally tracks which pages
// were dirtied since the last TakeDirtySinceMark() call so the database's
// commit path can stage their images on the write-ahead log *before* any
// heap write. Flush never marks a page clean unless its bytes reached the
// file, and SyncToDisk() makes a completed flush durable.
//
// Disk faults (docs/durability.md): all file I/O goes through a
// netmark::Env, every v1 page is CRC-stamped on flush and verified on read
// miss, and a page whose checksum does not match is *quarantined* — the read
// returns Status::DataLoss, the page is never cached or served, and the
// scrubber/healthz report it. Read errors (EIO) do not quarantine: the
// fault may be transient and the on-disk bytes may still be good.

#ifndef NETMARK_STORAGE_PAGER_H_
#define NETMARK_STORAGE_PAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "storage/page.h"
#include "storage/row_id.h"

namespace netmark::storage {

struct PagerOptions {
  /// File I/O environment; nullptr means Env::Default().
  netmark::Env* env = nullptr;
  /// Verify the CRC32C trailer on every read miss (v1 pages only). Stamping
  /// on flush is unconditional so the knob can be toggled freely.
  bool verify_checksums = true;
};

/// \brief Owns the page file: allocation, fetch, write-back.
///
/// Thread safety: Fetch() may be called concurrently from many reader
/// threads (the concurrent serving path); the internal mutex guards the
/// cache map and dirty bookkeeping. Returned page pointers stay valid
/// without the lock because buffers are never evicted. Mutators (Allocate /
/// MarkDirty / Flush / TakeDirtySinceMark) are additionally serialized by
/// the store-level writer lock, so they never race each other — but they do
/// share the cache map with readers, hence the mutex.
class Pager {
 public:
  /// Opens (creating if absent) the page file at `path`.
  static netmark::Result<std::unique_ptr<Pager>> Open(const std::string& path,
                                                      PagerOptions options = {});

  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Number of pages in the file.
  PageId page_count() const { return page_count_.load(std::memory_order_acquire); }

  /// Allocates a fresh, zero-initialized page and returns its id.
  netmark::Result<PageId> Allocate();

  /// Fetches a page for reading; the pointer stays valid until the Pager is
  /// destroyed (buffers are never evicted). Returns Status::DataLoss for a
  /// page whose on-disk checksum did not match (now or on a prior fetch).
  netmark::Result<Page> Fetch(PageId id);

  /// Marks a page dirty so Flush persists it.
  void MarkDirty(PageId id);

  /// Writes all dirty pages to disk, stamping each v1 page's CRC trailer
  /// first. Every page is attempted even after a failure; a page whose write
  /// fails stays dirty for the next Flush, and the first error is returned.
  netmark::Status Flush();

  /// fdatasyncs the page file (call after a successful Flush to make a
  /// checkpoint durable).
  netmark::Status SyncToDisk();

  /// Pages dirtied since the previous call (sorted; cleared by the call).
  /// The commit path uses this to stage write-ahead-log images.
  std::vector<PageId> TakeDirtySinceMark();

  /// Re-reads one page from disk and checks its CRC (the scrubber's probe).
  /// Returns false — and quarantines the page — when a fresh corruption was
  /// found; true when the page verified, was dirty (the on-disk copy is
  /// legitimately stale), was already quarantined, or is v0 (unverifiable).
  /// Read errors propagate as a Status without quarantining.
  netmark::Result<bool> VerifyOnDisk(PageId id);

  bool IsQuarantined(PageId id) const;
  /// Sorted ids of all quarantined pages.
  std::vector<PageId> QuarantinedPages() const;
  uint64_t quarantined_count() const;

  /// Count of pages read from disk (cache misses), for benchmarks.
  uint64_t pages_read() const { return pages_read_.load(std::memory_order_relaxed); }
  uint64_t pages_written() const {
    return pages_written_.load(std::memory_order_relaxed);
  }

 private:
  Pager(std::unique_ptr<netmark::File> file, PageId page_count,
        bool verify_checksums)
      : file_(std::move(file)),
        verify_checksums_(verify_checksums),
        page_count_(page_count) {}

  netmark::Result<uint8_t*> Buffer(PageId id);

  std::unique_ptr<netmark::File> file_;
  bool verify_checksums_;
  std::atomic<PageId> page_count_{0};
  /// Guards cache_/dirty_/dirty_since_mark_/quarantined_ against concurrent
  /// readers.
  mutable std::mutex mu_;
  std::unordered_map<PageId, std::unique_ptr<uint8_t[]>> cache_;
  std::unordered_map<PageId, bool> dirty_;
  std::set<PageId> dirty_since_mark_;
  std::set<PageId> quarantined_;
  std::atomic<uint64_t> pages_read_{0};
  std::atomic<uint64_t> pages_written_{0};
};

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_PAGER_H_
