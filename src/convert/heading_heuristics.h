// Shared heading-detection heuristics for the plain-text-family converters.

#ifndef NETMARK_CONVERT_HEADING_HEURISTICS_H_
#define NETMARK_CONVERT_HEADING_HEURISTICS_H_

#include <string>
#include <string_view>
#include <vector>

namespace netmark::convert {

/// \brief True when a text line reads like a section heading: short, does
/// not end a sentence, and is ALL CAPS, numbered ("3.", "2.1", "IV."),
/// or Title Case.
bool LooksLikeHeading(std::string_view line);

/// \brief Splits text into blocks separated by blank lines; each block keeps
/// its interior line breaks collapsed to spaces.
std::vector<std::string> SplitParagraphs(std::string_view text);

}  // namespace netmark::convert

#endif  // NETMARK_CONVERT_HEADING_HEURISTICS_H_
