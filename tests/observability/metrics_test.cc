// Metrics registry: bucket math, quantile interpolation edges, overflow
// behaviour, handle identity, disabled-registry short-circuit, Prometheus
// exposition format, and concurrent increments (run under TSan in CI).

#include "observability/metrics.h"

#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace netmark::observability {
namespace {

TEST(CounterTest, IncrementAndValue) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("netmark_test_total");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(CounterTest, HandleIsStableAcrossLookups) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("netmark_test_total");
  Counter* b = registry.GetCounter("netmark_test_total");
  EXPECT_EQ(a, b) << "same (name, labels) must return the same handle";
  Counter* labeled = registry.GetCounter("netmark_test_total", {{"k", "v"}});
  EXPECT_NE(a, labeled) << "labels are part of the identity";
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("netmark_test_gauge");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
}

TEST(HistogramTest, BucketAssignment) {
  MetricsRegistry registry;
  // Bounds are cumulative upper bounds (Prometheus `le`): a sample goes in
  // the first bucket whose bound >= value.
  Histogram* h = registry.GetHistogram("netmark_test_micros", {}, {10, 100, 1000});
  h->Observe(5);     // <= 10
  h->Observe(10);    // <= 10 (boundary is inclusive)
  h->Observe(11);    // <= 100
  h->Observe(1000);  // <= 1000
  h->Observe(5000);  // overflow
  std::vector<uint64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u) << "bounds + 1 overflow bucket";
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->sum(), 5 + 10 + 11 + 1000 + 5000);
}

TEST(HistogramTest, QuantileEmptyIsZero) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("netmark_test_micros");
  EXPECT_EQ(h->Quantile(0.5), 0.0);
  EXPECT_EQ(h->Quantile(0.99), 0.0);
}

TEST(HistogramTest, QuantileInterpolatesInsideBucket) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("netmark_test_micros", {}, {100, 200});
  // 100 samples all landing in the (100, 200] bucket: quantiles interpolate
  // linearly between the previous bound and the winning bound.
  for (int i = 0; i < 100; ++i) h->Observe(150);
  double p50 = h->Quantile(0.5);
  EXPECT_GT(p50, 100.0);
  EXPECT_LE(p50, 200.0);
  EXPECT_LT(h->Quantile(0.01), h->Quantile(0.99));
}

TEST(HistogramTest, QuantileClampsAtExtremes) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("netmark_test_micros", {}, {100});
  h->Observe(50);
  EXPECT_LE(h->Quantile(0.0), 100.0);
  EXPECT_LE(h->Quantile(1.0), 100.0);
}

TEST(HistogramTest, OverflowSamplesReportLastFiniteBound) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("netmark_test_micros", {}, {10, 100});
  for (int i = 0; i < 10; ++i) h->Observe(100000);  // all overflow
  // The estimate saturates at the last finite bound rather than inventing a
  // number beyond what the buckets can resolve.
  EXPECT_EQ(h->Quantile(0.5), 100.0);
  EXPECT_EQ(h->Quantile(0.99), 100.0);
}

TEST(HistogramTest, DefaultLatencyBucketsAreSortedAndStrictlyIncreasing) {
  const std::vector<int64_t>& bounds = Histogram::LatencyBucketsMicros();
  ASSERT_FALSE(bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(RegistryTest, DisabledRegistryDropsRecordings) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("netmark_test_total");
  Histogram* h = registry.GetHistogram("netmark_test_micros");
  registry.set_enabled(false);
  c->Increment(100);
  h->Observe(42);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  registry.set_enabled(true);
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
}

TEST(RegistryTest, CallbackGaugeEvaluatesAtCollect) {
  MetricsRegistry registry;
  int state = 1;
  registry.SetCallbackGauge("netmark_test_state", {{"source", "a"}},
                            [&state] { return static_cast<double>(state); });
  state = 2;
  MetricsSnapshot snap = registry.Collect();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 2.0);
  EXPECT_EQ(snap.gauges[0].labels.size(), 1u);
}

TEST(RegistryTest, CollectIsSortedByNameThenLabels) {
  MetricsRegistry registry;
  registry.GetCounter("netmark_b_total");
  registry.GetCounter("netmark_a_total", {{"x", "2"}});
  registry.GetCounter("netmark_a_total", {{"x", "1"}});
  MetricsSnapshot snap = registry.Collect();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "netmark_a_total");
  EXPECT_EQ(snap.counters[0].labels[0].second, "1");
  EXPECT_EQ(snap.counters[1].labels[0].second, "2");
  EXPECT_EQ(snap.counters[2].name, "netmark_b_total");
}

TEST(RegistryTest, PrometheusExpositionFormat) {
  MetricsRegistry registry;
  registry.GetCounter("netmark_requests_total", {{"route", "/xdb"}})->Increment(3);
  registry.GetGauge("netmark_queue_depth")->Set(7);
  Histogram* h = registry.GetHistogram("netmark_latency_micros", {}, {10, 100});
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);
  std::string text = registry.RenderPrometheus();

  // Counter: TYPE line plus labeled sample.
  EXPECT_NE(text.find("# TYPE netmark_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("netmark_requests_total{route=\"/xdb\"} 3"), std::string::npos);
  // Gauge.
  EXPECT_NE(text.find("# TYPE netmark_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("netmark_queue_depth 7"), std::string::npos);
  // Histogram: cumulative buckets, +Inf, _sum and _count series.
  EXPECT_NE(text.find("# TYPE netmark_latency_micros histogram"), std::string::npos);
  EXPECT_NE(text.find("netmark_latency_micros_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("netmark_latency_micros_bucket{le=\"100\"} 2"), std::string::npos);
  EXPECT_NE(text.find("netmark_latency_micros_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("netmark_latency_micros_sum 555"), std::string::npos);
  EXPECT_NE(text.find("netmark_latency_micros_count 3"), std::string::npos);
  // Every line ends in \n (the format requires a trailing newline).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(RegistryTest, CallbackCounterRendersAsCounter) {
  MetricsRegistry registry;
  uint64_t backing = 41;
  registry.SetCallbackCounter("netmark_scrub_pages_scanned_total", {},
                              [&backing] { return backing; });
  backing = 42;  // evaluated at collect time, not registration time
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE netmark_scrub_pages_scanned_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("netmark_scrub_pages_scanned_total 42"),
            std::string::npos);
}

TEST(HistogramTest, ExemplarAttachesToWinningBucket) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("netmark_latency_micros", {}, {10, 100});
  h->ObserveWithExemplar(50, "4bf92f3577b34da6a3ce929d0e0e4736");
  EXPECT_EQ(h->count(), 1u);
  std::vector<Exemplar> exemplars = h->Exemplars();
  ASSERT_EQ(exemplars.size(), 3u);  // two bounds + overflow
  EXPECT_TRUE(exemplars[0].trace_id.empty());
  EXPECT_EQ(exemplars[1].trace_id, "4bf92f3577b34da6a3ce929d0e0e4736");
  EXPECT_EQ(exemplars[1].value, 50);
  EXPECT_GT(exemplars[1].timestamp_seconds, 0);
  // A later sample in the same bucket replaces the exemplar.
  h->ObserveWithExemplar(60, "00f067aa0ba902b700f067aa0ba902b7");
  EXPECT_EQ(h->Exemplars()[1].trace_id, "00f067aa0ba902b700f067aa0ba902b7");
  // An empty trace id observes without touching the slot.
  h->ObserveWithExemplar(70, "");
  EXPECT_EQ(h->Exemplars()[1].trace_id, "00f067aa0ba902b700f067aa0ba902b7");
}

TEST(HistogramTest, ExemplarRendersInOpenMetricsSyntax) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("netmark_latency_micros", {}, {10, 100});
  h->Observe(5);
  h->ObserveWithExemplar(50, "4bf92f3577b34da6a3ce929d0e0e4736");
  std::string text = registry.RenderPrometheus();
  // The bucket that holds the exemplar carries the `# {...}` suffix...
  EXPECT_NE(
      text.find("netmark_latency_micros_bucket{le=\"100\"} 2 # "
                "{trace_id=\"4bf92f3577b34da6a3ce929d0e0e4736\"} 50"),
      std::string::npos);
  // ...and buckets without one render bare.
  EXPECT_NE(text.find("netmark_latency_micros_bucket{le=\"10\"} 1\n"),
            std::string::npos);
}

TEST(HistogramTest, ExemplarsDisabledByEnv) {
  setenv("NETMARK_METRICS_EXEMPLARS", "0", 1);
  MetricsRegistry registry;  // reads the env at construction
  Histogram* h = registry.GetHistogram("netmark_latency_micros", {}, {10, 100});
  h->ObserveWithExemplar(50, "4bf92f3577b34da6a3ce929d0e0e4736");
  std::string text = registry.RenderPrometheus();
  EXPECT_EQ(text.find("trace_id"), std::string::npos);
  EXPECT_NE(text.find("netmark_latency_micros_bucket{le=\"100\"} 1"),
            std::string::npos);
  unsetenv("NETMARK_METRICS_EXEMPLARS");
}

// Concurrency: N threads hammering the same counter and histogram. Exact
// totals prove atomicity; TSan (CI job) proves data-race freedom.
TEST(RegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("netmark_test_total");
  Histogram* h = registry.GetHistogram("netmark_test_micros", {}, {100, 10000});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe((t * kPerThread + i) % 200);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(RegistryTest, ConcurrentRegistrationReturnsOneHandle) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> handles(kThreads, nullptr);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      handles[t] = registry.GetCounter("netmark_shared_total");
      handles[t]->Increment();
    });
  }
  for (auto& th : pool) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[t], handles[0]);
  EXPECT_EQ(handles[0]->value(), static_cast<uint64_t>(kThreads));
}

}  // namespace
}  // namespace netmark::observability
