// Result composition: assemble query hits into a new XML document (the
// "composing new documents with sections from other multiple documents"
// capability, paper §1 / Fig 6).

#ifndef NETMARK_QUERY_COMPOSE_H_
#define NETMARK_QUERY_COMPOSE_H_

#include <vector>

#include "common/result.h"
#include "query/executor.h"
#include "xml/dom.h"

namespace netmark::query {

/// Composition knobs.
struct ComposeOptions {
  /// Embed the full reconstructed section markup (not just flat text).
  bool include_markup = true;
};

/// \brief Builds the result document:
///
///   <results query="...">
///     <result doc="file" docid="1">
///       <context>Heading</context>
///       <content> ...section markup or text... </content>
///     </result>
///     ...
///   </results>
netmark::Result<xml::Document> ComposeResults(const xmlstore::XmlStore& store,
                                              const XdbQuery& query,
                                              const std::vector<QueryHit>& hits,
                                              const ComposeOptions& options = {});

}  // namespace netmark::query

#endif  // NETMARK_QUERY_COMPOSE_H_
