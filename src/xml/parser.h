// The NETMARK "SGML parser": a tolerant XML/HTML parser.
//
// The paper's SGML parser accepts well-formed XML as well as messy HTML
// (paper §2.1.1: "decomposes the XML (or even HTML) documents into its
// constituent nodes"). In XML mode the parser is strict about tag balance;
// in HTML mode it auto-closes void elements, repairs mis-nested close tags,
// and folds tag names to lower case.

#ifndef NETMARK_XML_PARSER_H_
#define NETMARK_XML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xml/dom.h"

namespace netmark::xml {

/// Parsing behaviour knobs.
struct ParseOptions {
  /// HTML tolerance: case-fold tag names, auto-close void elements (<br>,
  /// <img>, ...), implicitly close <p>/<li>/<tr>/<td> on new block starts,
  /// and recover from stray close tags instead of failing.
  bool html_mode = false;
  /// Keep comment nodes (dropped by default; NETMARK stores data, not
  /// markup commentary).
  bool keep_comments = false;
  /// Keep whitespace-only text nodes (dropped by default).
  bool keep_whitespace_text = false;
};

/// \brief Parses markup into a Document.
///
/// Errors are returned (never thrown): unbalanced tags in XML mode, malformed
/// tag syntax, unterminated comments/CDATA.
Result<Document> Parse(std::string_view input, const ParseOptions& options = {});

/// \brief Convenience: strict-XML parse.
inline Result<Document> ParseXml(std::string_view input) {
  return Parse(input, ParseOptions{});
}

/// \brief Convenience: tolerant-HTML parse.
inline Result<Document> ParseHtml(std::string_view input) {
  ParseOptions opts;
  opts.html_mode = true;
  return Parse(input, opts);
}

}  // namespace netmark::xml

#endif  // NETMARK_XML_PARSER_H_
