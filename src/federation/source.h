// Federated sources and their capability descriptors (paper §2.1.5).
//
// "A source that is queried need not necessarily have XML or even
// Context+Content searching capabilities. However NETMARK 'augments' the
// query capability in that it uses whatever query and search capabilities
// are available at the source and then does further processing required."

#ifndef NETMARK_FEDERATION_SOURCE_H_
#define NETMARK_FEDERATION_SOURCE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/xdb_query.h"

namespace netmark::federation {

/// What a source can evaluate natively. The router pushes down the largest
/// supported sub-query and augments the remainder itself.
struct Capabilities {
  bool context_search = false;  ///< heading-scoped section queries
  bool content_search = false;  ///< keyword document queries
  bool phrase_search = false;   ///< quoted phrases in keys
  bool returns_markup = false;  ///< hits carry document/section XML

  static Capabilities Full() { return {true, true, true, true}; }
  static Capabilities ContentOnly() { return {false, true, false, false}; }
};

/// One hit returned by a source.
struct FederatedHit {
  std::string source;       ///< source name (filled by the router)
  int64_t doc_id = 0;       ///< source-local document id
  std::string file_name;
  std::string heading;      ///< section heading ("" for document-level hits)
  std::string text;         ///< section text, or full document text
  std::string markup;       ///< raw XML of the matched unit, when available
};

/// \brief One information source inside a databank.
class Source {
 public:
  virtual ~Source() = default;
  virtual const std::string& name() const = 0;
  virtual Capabilities capabilities() const = 0;

  /// Executes the *supported subset* of `query` (the router guarantees it
  /// only sends what `capabilities()` advertises) and returns raw hits.
  virtual netmark::Result<std::vector<FederatedHit>> Execute(
      const query::XdbQuery& query) = 0;
};

}  // namespace netmark::federation

#endif  // NETMARK_FEDERATION_SOURCE_H_
