#include "query/xdb_query.h"

#include <gtest/gtest.h>

namespace netmark::query {
namespace {

TEST(XdbQueryParseTest, ContextAndContent) {
  auto q = ParseXdbQuery("Context=Technology+Gap&Content=Shrinking");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->context, "Technology Gap");
  EXPECT_EQ(q->content, "Shrinking");
  EXPECT_TRUE(q->has_context());
  EXPECT_TRUE(q->has_content());
}

TEST(XdbQueryParseTest, KeysAreCaseInsensitive) {
  auto q = ParseXdbQuery("CONTEXT=Budget&content=engine&XSLT=sheet&LIMIT=5");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->context, "Budget");
  EXPECT_EQ(q->content, "engine");
  EXPECT_EQ(q->xslt, "sheet");
  EXPECT_EQ(q->limit, 5u);
}

TEST(XdbQueryParseTest, PercentEncoding) {
  auto q = ParseXdbQuery("context=%22technology%20gap%22");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->context, "\"technology gap\"");
}

TEST(XdbQueryParseTest, DocScope) {
  auto q = ParseXdbQuery("content=x&doc=42");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->doc_id, 42);
}

TEST(XdbQueryParseTest, UnknownKeysIgnored) {
  auto q = ParseXdbQuery("context=a&future_key=whatever&debug=1");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->context, "a");
}

TEST(XdbQueryParseTest, EmptyQueryIsEmpty) {
  auto q = ParseXdbQuery("");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->empty());
}

TEST(XdbQueryParseTest, Errors) {
  EXPECT_FALSE(ParseXdbQuery("context=%ZZ").ok());
  EXPECT_FALSE(ParseXdbQuery("limit=abc").ok());
  EXPECT_FALSE(ParseXdbQuery("limit=-3").ok());
  EXPECT_FALSE(ParseXdbQuery("doc=xyz").ok());
}

TEST(XdbQueryParseTest, SearchKeysNormalizeWhitespace) {
  // Every spelling of "Technology Gap" — plus-encoded, percent-encoded,
  // doubled separators, stray tabs — parses to one canonical value, so all
  // of them share one result-cache entry.
  const char* spellings[] = {
      "Context=Technology+Gap",     "context=Technology%20Gap",
      "CONTEXT=Technology++Gap",    "context=%20Technology+Gap%20",
      "context=Technology%09Gap",
  };
  for (const char* qs : spellings) {
    auto q = ParseXdbQuery(qs);
    ASSERT_TRUE(q.ok()) << qs;
    EXPECT_EQ(q->context, "Technology Gap") << qs;
  }
}

TEST(XdbQueryParseTest, EquivalentSpellingsShareOneCanonicalString) {
  const char* spellings[] = {
      "Context=Technology+Gap&Content=Shrinking",
      "content=Shrinking&CONTEXT=Technology%20Gap",
      "Content=%20Shrinking&context=Technology++Gap&debug=1",
  };
  auto first = ParseXdbQuery(spellings[0]);
  ASSERT_TRUE(first.ok());
  for (const char* qs : spellings) {
    auto q = ParseXdbQuery(qs);
    ASSERT_TRUE(q.ok()) << qs;
    EXPECT_EQ(q->ToQueryString(), first->ToQueryString()) << qs;
  }
}

TEST(XdbQueryParseTest, ToQueryStringIsAFixpoint) {
  // Property: parsing the canonical string reproduces it exactly — the
  // result-cache key is stable however many times it round-trips.
  const char* inputs[] = {
      "Context=Technology+Gap&Content=Shrinking&limit=5",
      "content=%22technology%20gap%22",
      "xpath=//h1&content=engine",
      "context=Budget&doc=7&xslt=report&timeout=250",
      "context=a+b+c",
  };
  for (const char* qs : inputs) {
    auto q = ParseXdbQuery(qs);
    ASSERT_TRUE(q.ok()) << qs;
    std::string canonical = q->ToQueryString();
    auto reparsed = ParseXdbQuery(canonical);
    ASSERT_TRUE(reparsed.ok()) << canonical;
    EXPECT_EQ(reparsed->ToQueryString(), canonical) << qs;
  }
}

TEST(XdbQueryParseTest, ToQueryStringRoundTrip) {
  XdbQuery q;
  q.context = "Technology Gap";
  q.content = "shrinking fast";
  q.doc_id = 7;
  q.xslt = "report";
  q.limit = 10;
  auto parsed = ParseXdbQuery(q.ToQueryString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->context, q.context);
  EXPECT_EQ(parsed->content, q.content);
  EXPECT_EQ(parsed->doc_id, q.doc_id);
  EXPECT_EQ(parsed->xslt, q.xslt);
  EXPECT_EQ(parsed->limit, q.limit);
}

}  // namespace
}  // namespace netmark::query
