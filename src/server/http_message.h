// HTTP/1.1 message types and wire codecs (request parsing, response
// serialization, and the inverse pair for the client side).

#ifndef NETMARK_SERVER_HTTP_MESSAGE_H_
#define NETMARK_SERVER_HTTP_MESSAGE_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"

namespace netmark::server {

/// Case-insensitive header map.
struct CaseInsensitiveLess {
  bool operator()(const std::string& a, const std::string& b) const;
};
using HeaderMap = std::map<std::string, std::string, CaseInsensitiveLess>;

/// \brief One HTTP request.
struct HttpRequest {
  std::string method;   ///< GET, PUT, DELETE, PROPFIND, ...
  std::string target;   ///< raw request target ("/xdb?context=a")
  std::string path;     ///< decoded path ("/xdb")
  std::string query;    ///< raw query string ("context=a")
  HeaderMap headers;
  std::string body;

  // Serving-path timings stamped by HttpServer (not part of the wire
  // format); the service renders them as trace spans. Both are rounded up
  // to 1us so a measured-but-fast stage still shows in the span tree.
  int64_t queue_wait_micros = 0;  ///< handoff-queue wait (epoll reactor:
                                  ///< every request; threadpool: first
                                  ///< request on a connection, reuse = 0)
  int64_t parse_micros = 0;       ///< head + body parse time

  std::string_view Header(const std::string& name) const {
    auto it = headers.find(name);
    return it == headers.end() ? std::string_view{} : std::string_view(it->second);
  }
  /// Serializes to wire format (client side).
  std::string Serialize() const;
};

/// \brief One HTTP response.
struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  HeaderMap headers;
  std::string body;

  static HttpResponse Ok(std::string body, std::string content_type = "text/xml");
  static HttpResponse Text(int status, std::string message);
  static HttpResponse NotFound(std::string message = "not found");
  static HttpResponse BadRequest(std::string message);
  static HttpResponse ServerError(std::string message);

  std::string_view Header(const std::string& name) const {
    auto it = headers.find(name);
    return it == headers.end() ? std::string_view{} : std::string_view(it->second);
  }
  /// Serializes to wire format (server side); sets Content-Length.
  std::string Serialize() const;
};

/// \brief Incremental HTTP/1.1 framing: returns the byte length of the
/// first complete message in `buffer` (head + Content-Length body), or 0
/// while more bytes are needed. `head_end` caches the "\r\n\r\n" scan
/// position across calls — pass a variable holding std::string::npos for a
/// fresh message and reset it to npos after consuming the framed bytes.
/// Both the worker-pool read loop and the epoll reactor frame with this, so
/// pipelined requests split across arbitrary TCP segment boundaries are
/// reassembled identically in either connection model.
size_t CompleteMessageBytes(std::string_view buffer, size_t* head_end);

/// \brief Parses a full request (head + body) from raw bytes.
netmark::Result<HttpRequest> ParseRequest(std::string_view raw);
/// \brief Parses a full response from raw bytes.
netmark::Result<HttpResponse> ParseResponse(std::string_view raw);

/// \brief Splits a request target into decoded path + raw query string.
netmark::Status SplitTarget(std::string_view target, std::string* path,
                            std::string* query);

}  // namespace netmark::server

#endif  // NETMARK_SERVER_HTTP_MESSAGE_H_
