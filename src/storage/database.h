// Database: a directory of tables plus the catalog.
//
// The database also counts DDL statements (CREATE TABLE / CREATE INDEX): the
// paper's economic argument is that NETMARK needs a *constant* amount of DDL
// regardless of what documents arrive, while schema-centric stores pay DDL
// per document type. Benchmarks read this counter.
//
// Durability (docs/durability.md): with the write-ahead log enabled
// (default), mutations bracketed by Begin/CommitTransaction become crash
// atomic — commit stages every dirty page image on the log before any heap
// write, Checkpoint() flushes + fsyncs the heap files and truncates the log,
// and Open() replays committed log records automatically after a crash.

#ifndef NETMARK_STORAGE_DATABASE_H_
#define NETMARK_STORAGE_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "storage/catalog.h"
#include "storage/recovery.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace netmark::storage {

/// Durability knobs (the `[storage]` INI section maps onto this).
struct StorageOptions {
  /// Write-ahead logging + crash recovery. Off = the pre-WAL behavior:
  /// pages persist only on Flush/close, a crash can tear the tables.
  bool wal_enabled = true;
  /// When the log is fsynced (commit | batch | none).
  WalFsyncPolicy wal_fsync = WalFsyncPolicy::kCommit;
  /// Log size that triggers an automatic checkpoint (bytes).
  uint64_t checkpoint_bytes = 64ull << 20;
  /// File I/O environment for every storage file (heap, log, catalog);
  /// nullptr means Env::Default(). Tests and the disk-fault torture harness
  /// pass a FaultInjectingEnv.
  netmark::Env* env = nullptr;
  /// Verify each heap page's CRC32C trailer on read miss; mismatches
  /// quarantine the page (Status::DataLoss). Stamping on flush always
  /// happens, so this knob can be toggled freely across restarts.
  bool page_checksums = true;
  /// Background CRC scrub rate (pages/second; 0 disables the scrubber).
  /// Enforced by the XML store, which owns the scrubber thread.
  int scrub_pages_per_sec = 0;
  /// `[storage] on_fsync_error = abort`: _exit the process on the first
  /// failed WAL/heap fsync instead of degrading to read-only (fail-stop for
  /// operators who prefer a supervisor restart over a limping store).
  bool abort_on_fsync_error = false;
  /// MVCC page snapshots: epoch-versioned, copy-on-write pages so readers
  /// never block the writer (docs/mvcc.md). Enabled by the XML store; plain
  /// Database users keep the legacy single-buffer pager.
  bool mvcc_snapshots = false;
  /// `[storage] mvcc_gc_interval_ms`: background version-GC cadence.
  /// Enforced by the XML store, which owns the GC thread.
  int mvcc_gc_interval_ms = 50;
  /// `[storage] mvcc_max_retained_versions`: bound on published versions
  /// kept per page (0 = unlimited). Readers pinned before the surviving
  /// window get Status::SnapshotTooOld.
  int mvcc_max_retained_versions = 0;
};

/// \brief A set of tables persisted under one directory.
///
/// Not thread-safe; callers serialize mutations (the XML store holds a write
/// mutex across transaction scopes and checkpoints).
class Database {
 public:
  /// Opens (creating if needed) the database at `dir`. Existing tables are
  /// loaded and their indexes rebuilt. A non-empty write-ahead log from a
  /// crashed predecessor is recovered first (see recovery_stats()).
  static netmark::Result<std::unique_ptr<Database>> Open(
      const std::string& dir, const StorageOptions& options = {});

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// CREATE TABLE. Fails if the table exists.
  netmark::Result<Table*> CreateTable(TableSchema schema);
  /// Table handle, or NotFound.
  netmark::Result<Table*> GetTable(std::string_view name);
  bool HasTable(std::string_view name) const { return tables_.count(std::string(name)) != 0; }
  /// CREATE INDEX on an existing table.
  netmark::Status CreateIndex(std::string_view table, const std::string& index_name,
                              const std::vector<std::string>& columns);
  /// DROP TABLE (removes the heap file).
  netmark::Status DropTable(std::string_view name);

  std::vector<std::string> TableNames() const;

  // --- Transactions (crash atomicity; no-ops when the WAL is disabled) ---

  /// Opens a commit scope. Mutations until CommitTransaction() become
  /// durable atomically. Fails if a transaction is already open.
  netmark::Status BeginTransaction();
  /// Stages every page dirtied during the transaction on the log, appends a
  /// commit record, and fsyncs per the configured policy.
  netmark::Status CommitTransaction();
  /// Abandons the open transaction: nothing reaches the log. In-memory
  /// mutations are NOT rolled back (redo-only log); the abandoned rows are
  /// unreferenced and will be logged with the next committed transaction.
  void AbandonTransaction();
  bool in_transaction() const { return in_txn_; }

  /// True when the log has grown past StorageOptions::checkpoint_bytes.
  bool ShouldCheckpoint() const;
  /// Flushes + fsyncs all heap files and the catalog, then truncates the
  /// log. Refused while a transaction is open.
  netmark::Status Checkpoint();
  /// Group commit: fsyncs the log if the policy is kBatch (the ingestion
  /// daemon calls this once per sweep).
  netmark::Status SyncWal();

  // --- MVCC (active when StorageOptions::mvcc_snapshots is set) ----------

  /// Epoch of the latest published commit (0 = the state at Open, WAL
  /// recovery included). Lock-free; safe from any thread. seq_cst on
  /// purpose: the reader pin protocol's claim-recheck and the GC's cap rely
  /// on epoch stores, pin writes, and pin scans sharing one total order
  /// (docs/mvcc.md).
  Epoch commit_epoch() const {
    return commit_epoch_.load(std::memory_order_seq_cst);
  }

  /// Commit publication: atomically publishes every table's dirty working
  /// pages under the next epoch and seals queued index removals with it.
  /// Call after a successful CommitTransaction (writer thread only).
  /// Returns the new epoch.
  Epoch PublishVersions();

  /// Version GC: drops page versions and applies sealed index removals that
  /// no pin in `pins` (sorted ascending, non-empty — it always contains the
  /// epoch that was current when the GC pass began) can see. `cap` is that
  /// pass-start epoch, bounding what the pager may drop (Pager::
  /// ReclaimVersions); the oldest pin (pins.front()) is the watermark for
  /// index removals. Returns the number of page versions reclaimed.
  uint64_t ReclaimVersions(const std::vector<Epoch>& pins, Epoch cap);

  /// Published page versions currently retained across all tables (gauge).
  uint64_t retained_versions() const;
  /// Total page versions dropped by GC or the retention cap (counter).
  uint64_t versions_reclaimed() const;

  // --- Degraded (read-only) mode -----------------------------------------
  //
  // After a failed WAL append/fsync or a failed checkpoint write, the store
  // stops accepting mutations: Begin/CommitTransaction and Checkpoint return
  // the degradation status (CapacityExceeded when the cause was a full disk,
  // Unavailable otherwise) while reads keep serving the last good state. No
  // acknowledgement is ever emitted after a failed fsync.

  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  /// Human-readable cause of the degradation (empty when healthy).
  std::string degraded_reason() const;
  /// The status mutations are rejected with while degraded.
  netmark::Status DegradedError() const;

  /// The log (null when disabled) — metrics and tests read its counters.
  const Wal* wal() const { return wal_.get(); }
  /// What recovery did at Open() (all zeros when the log was empty).
  const RecoveryStats& recovery_stats() const { return recovery_; }
  /// LSN the log had been truncated at during the last checkpoint.
  uint64_t last_checkpoint_lsn() const { return last_checkpoint_lsn_; }
  uint64_t checkpoints() const { return checkpoints_; }
  const StorageOptions& options() const { return options_; }

  /// Number of DDL statements executed over this database's lifetime
  /// (persisted in the catalog directory; see Fig 5 benchmark).
  uint64_t ddl_statements() const { return ddl_statements_; }

  /// Flushes all tables and the catalog. With the WAL enabled this is a full
  /// Checkpoint() so close never strands log-only data.
  netmark::Status Flush();

  const std::string& dir() const { return dir_; }

 private:
  explicit Database(std::string dir, StorageOptions options)
      : dir_(std::move(dir)), options_(options) {}
  std::string TableFilePath(std::string_view table) const;
  std::string CatalogPath() const;
  std::string DdlCounterPath() const;
  std::string WalPath() const;
  PagerOptions MakePagerOptions() const {
    PagerOptions po;
    po.env = options_.env;
    po.verify_checksums = options_.page_checksums;
    po.mvcc = options_.mvcc_snapshots;
    po.mvcc_max_retained_versions =
        options_.mvcc_max_retained_versions > 0
            ? static_cast<size_t>(options_.mvcc_max_retained_versions)
            : 0;
    return po;
  }
  /// Records the first failure that forces read-only mode (or aborts, per
  /// the on_fsync_error policy).
  void MarkDegraded(const netmark::Status& cause);
  /// One-time v0→v1 page format upgrade pass + WAL staging of all pending
  /// dirty-since-mark images, run at the start of a checkpoint.
  netmark::Status StagePendingAndUpgrades();

  std::string dir_;
  StorageOptions options_;
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
  uint64_t ddl_statements_ = 0;

  std::unique_ptr<Wal> wal_;  // null when wal_enabled is false
  RecoveryStats recovery_;
  uint64_t next_txn_id_ = 1;
  bool in_txn_ = false;
  uint64_t last_checkpoint_lsn_ = 0;
  uint64_t checkpoints_ = 0;
  bool upgrade_scan_done_ = false;
  std::atomic<Epoch> commit_epoch_{0};

  std::atomic<bool> degraded_{false};
  mutable std::mutex degraded_mu_;
  std::string degraded_reason_;       // guarded by degraded_mu_
  bool degraded_capacity_ = false;    // guarded by degraded_mu_
};

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_DATABASE_H_
