#include "federation/remote_source.h"

#include "common/string_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace netmark::federation {

netmark::Result<std::vector<FederatedHit>> ParseResultsDocument(
    std::string_view body) {
  NETMARK_ASSIGN_OR_RETURN(xml::Document doc, xml::ParseXml(body));
  xml::NodeId results = doc.DocumentElement();
  if (results == xml::kInvalidNode || doc.name(results) != "results") {
    return netmark::Status::ParseError("remote response is not a <results> document");
  }
  std::vector<FederatedHit> out;
  for (xml::NodeId result = doc.first_child(results); result != xml::kInvalidNode;
       result = doc.next_sibling(result)) {
    if (doc.kind(result) != xml::NodeKind::kElement || doc.name(result) != "result") {
      continue;
    }
    FederatedHit hit;
    hit.file_name = std::string(doc.GetAttribute(result, "doc"));
    auto doc_id = netmark::ParseInt64(doc.GetAttribute(result, "docid"));
    if (doc_id.ok()) hit.doc_id = *doc_id;
    xml::NodeId context = doc.FirstChildElement(result, "context");
    if (context != xml::kInvalidNode) hit.heading = doc.TextContent(context);
    xml::NodeId content = doc.FirstChildElement(result, "content");
    if (content != xml::kInvalidNode) {
      hit.text = doc.TextContent(content);
      std::string markup;
      for (xml::NodeId c = doc.first_child(content); c != xml::kInvalidNode;
           c = doc.next_sibling(c)) {
        markup += xml::Serialize(doc, c);
      }
      hit.markup = std::move(markup);
    }
    out.push_back(std::move(hit));
  }
  return out;
}

netmark::Result<std::vector<FederatedHit>> RemoteSource::Execute(
    const query::XdbQuery& query, const CallContext& ctx) {
  if (ctx.expired()) {
    return netmark::Status::DeadlineExceeded("remote source " + name_ +
                                             ": deadline expired before send");
  }
  // Deadline propagation: tell the remote how much budget is left so it can
  // bound its own fan-out instead of answering a query nobody is waiting for.
  query::XdbQuery pushed = query;
  if (ctx.bounded()) {
    int64_t remaining = ctx.remaining_ms();
    if (pushed.timeout_ms == 0 || remaining < pushed.timeout_ms) {
      pushed.timeout_ms = remaining > 0 ? remaining : 1;
    }
  }
  std::string path = "/xdb?" + pushed.ToQueryString();
  NETMARK_ASSIGN_OR_RETURN(std::string body, transport_->Get(path, ctx));
  auto hits = ParseResultsDocument(body);
  if (!hits.ok()) {
    return hits.status().WithContext("remote source " + name_);
  }
  return hits;
}

}  // namespace netmark::federation
