// Bounded multi-producer / multi-consumer work queue.
//
// The building block of the staged ingestion pipeline (DESIGN.md §"Parallel
// ingestion"): producers enumerate work, N workers pull items, and a closed
// queue drains cleanly so every stage shuts down without sentinel values.
// Blocking semantics give natural backpressure — a slow consumer stalls the
// producer instead of growing an unbounded buffer.

#ifndef NETMARK_COMMON_WORK_QUEUE_H_
#define NETMARK_COMMON_WORK_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace netmark {

/// \brief Bounded blocking MPMC FIFO queue.
///
/// All operations are thread-safe. After Close(), Push is rejected and Pop
/// drains the remaining items before returning std::nullopt to every waiter.
template <typename T>
class WorkQueue {
 public:
  /// `capacity` must be >= 1; Push blocks while the queue holds that many.
  explicit WorkQueue(size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false —
  /// and drops `item` — iff the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available. Returns std::nullopt once the queue
  /// is closed *and* drained — the consumer's termination signal.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking push; returns false — and drops `item` — when the queue is
  /// full or closed. The accept path uses this for load shedding: a full
  /// queue turns into an immediate 503 instead of backpressure on accept.
  bool TryPush(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking pop; std::nullopt when empty (regardless of closed state).
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Rejects future pushes and wakes every blocked producer and consumer.
  /// Idempotent; already-queued items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace netmark

#endif  // NETMARK_COMMON_WORK_QUEUE_H_
