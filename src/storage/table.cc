#include "storage/table.h"

namespace netmark::storage {

netmark::Result<std::unique_ptr<Table>> Table::Open(
    TableSchema schema, const std::string& file_path,
    const std::vector<IndexDef>& indexes, PagerOptions pager_options) {
  NETMARK_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager,
                           Pager::Open(file_path, pager_options));
  NETMARK_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Open(pager.get()));
  std::unique_ptr<Table> table(new Table(std::move(schema), std::move(pager),
                                         std::make_unique<HeapFile>(std::move(heap))));
  for (const IndexDef& def : indexes) {
    NETMARK_RETURN_NOT_OK(table->CreateIndex(def.name, def.columns));
  }
  return table;
}

IndexKey Table::ExtractKey(const Index& index, const Row& row) const {
  IndexKey key;
  key.reserve(index.column_indexes.size());
  for (size_t ci : index.column_indexes) key.push_back(row[ci]);
  return key;
}

netmark::Status Table::IndexInsert(const Row& row, RowId id) {
  for (auto& [name, index] : indexes_) {
    index.tree.Insert(ExtractKey(index, row), id);
  }
  return netmark::Status::OK();
}

netmark::Status Table::IndexRemove(const Row& row, RowId id) {
  for (auto& [name, index] : indexes_) {
    index.tree.Remove(ExtractKey(index, row), id);
  }
  return netmark::Status::OK();
}

netmark::Result<RowId> Table::Insert(const Row& row) {
  NETMARK_RETURN_NOT_OK(schema_.Validate(row));
  NETMARK_ASSIGN_OR_RETURN(RowId id, heap_->Insert(EncodeRow(row)));
  NETMARK_RETURN_NOT_OK(IndexInsert(row, id));
  return id;
}

netmark::Result<Row> Table::Get(RowId id) const {
  NETMARK_ASSIGN_OR_RETURN(std::string bytes, heap_->Get(id));
  return DecodeRow(bytes);
}

netmark::Status Table::Update(RowId id, const Row& row) {
  NETMARK_RETURN_NOT_OK(schema_.Validate(row));
  NETMARK_ASSIGN_OR_RETURN(Row old_row, Get(id));
  NETMARK_RETURN_NOT_OK(heap_->Update(id, EncodeRow(row)));
  // Only touch B-trees whose key actually changed — updates to unindexed
  // columns (e.g. the XML store's sibling-link patches) skip all index work.
  for (auto& [name, index] : indexes_) {
    IndexKey old_key = ExtractKey(index, old_row);
    IndexKey new_key = ExtractKey(index, row);
    if (old_key == new_key) continue;
    index.tree.Remove(old_key, id);
    index.tree.Insert(std::move(new_key), id);
  }
  return netmark::Status::OK();
}

netmark::Status Table::Delete(RowId id) {
  NETMARK_ASSIGN_OR_RETURN(Row old_row, Get(id));
  NETMARK_RETURN_NOT_OK(heap_->Delete(id));
  return IndexRemove(old_row, id);
}

netmark::Status Table::Scan(
    const std::function<netmark::Status(RowId, const Row&)>& fn) const {
  return heap_->Scan([&](RowId id, std::string_view bytes) -> netmark::Status {
    NETMARK_ASSIGN_OR_RETURN(Row row, DecodeRow(bytes));
    return fn(id, row);
  });
}

netmark::Status Table::CreateIndex(const std::string& name,
                                   const std::vector<std::string>& columns) {
  if (indexes_.count(name) != 0) {
    return netmark::Status::AlreadyExists("index " + name + " already exists on " +
                                          schema_.name());
  }
  Index index;
  for (const std::string& col : columns) {
    NETMARK_ASSIGN_OR_RETURN(size_t ci, schema_.ColumnIndex(col));
    index.column_indexes.push_back(ci);
  }
  auto [it, inserted] = indexes_.emplace(name, std::move(index));
  Index& ix = it->second;
  // Build from existing rows.
  netmark::Status st =
      Scan([&](RowId id, const Row& row) -> netmark::Status {
        ix.tree.Insert(ExtractKey(ix, row), id);
        return netmark::Status::OK();
      });
  if (!st.ok()) {
    indexes_.erase(it);
    return st;
  }
  return netmark::Status::OK();
}

std::vector<IndexDef> Table::IndexDefs() const {
  std::vector<IndexDef> out;
  for (const auto& [name, index] : indexes_) {
    IndexDef def;
    def.name = name;
    for (size_t ci : index.column_indexes) {
      def.columns.push_back(schema_.columns()[ci].name);
    }
    out.push_back(std::move(def));
  }
  return out;
}

netmark::Result<std::vector<RowId>> Table::IndexLookup(const std::string& index,
                                                       const IndexKey& key) const {
  auto it = indexes_.find(index);
  if (it == indexes_.end()) {
    return netmark::Status::NotFound("no index " + index + " on " + schema_.name());
  }
  return it->second.tree.Lookup(key);
}

netmark::Result<std::vector<RowId>> Table::IndexRange(const std::string& index,
                                                      const IndexKey& lo,
                                                      const IndexKey& hi) const {
  auto it = indexes_.find(index);
  if (it == indexes_.end()) {
    return netmark::Status::NotFound("no index " + index + " on " + schema_.name());
  }
  return it->second.tree.Range(lo, hi);
}

netmark::Result<std::vector<RowId>> Table::IndexPrefix(const std::string& index,
                                                       const IndexKey& prefix) const {
  auto it = indexes_.find(index);
  if (it == indexes_.end()) {
    return netmark::Status::NotFound("no index " + index + " on " + schema_.name());
  }
  return it->second.tree.PrefixLookup(prefix);
}

const BTree* Table::GetIndex(const std::string& name) const {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : &it->second.tree;
}

}  // namespace netmark::storage
