// Database: a directory of tables plus the catalog.
//
// The database also counts DDL statements (CREATE TABLE / CREATE INDEX): the
// paper's economic argument is that NETMARK needs a *constant* amount of DDL
// regardless of what documents arrive, while schema-centric stores pay DDL
// per document type. Benchmarks read this counter.

#ifndef NETMARK_STORAGE_DATABASE_H_
#define NETMARK_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace netmark::storage {

/// \brief A set of tables persisted under one directory.
class Database {
 public:
  /// Opens (creating if needed) the database at `dir`. Existing tables are
  /// loaded and their indexes rebuilt.
  static netmark::Result<std::unique_ptr<Database>> Open(const std::string& dir);

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// CREATE TABLE. Fails if the table exists.
  netmark::Result<Table*> CreateTable(TableSchema schema);
  /// Table handle, or NotFound.
  netmark::Result<Table*> GetTable(std::string_view name);
  bool HasTable(std::string_view name) const { return tables_.count(std::string(name)) != 0; }
  /// CREATE INDEX on an existing table.
  netmark::Status CreateIndex(std::string_view table, const std::string& index_name,
                              const std::vector<std::string>& columns);
  /// DROP TABLE (removes the heap file).
  netmark::Status DropTable(std::string_view name);

  std::vector<std::string> TableNames() const;

  /// Number of DDL statements executed over this database's lifetime
  /// (persisted in the catalog directory; see Fig 5 benchmark).
  uint64_t ddl_statements() const { return ddl_statements_; }

  /// Flushes all tables and the catalog.
  netmark::Status Flush();

  const std::string& dir() const { return dir_; }

 private:
  explicit Database(std::string dir) : dir_(std::move(dir)) {}
  std::string TableFilePath(std::string_view table) const;
  std::string CatalogPath() const;
  std::string DdlCounterPath() const;

  std::string dir_;
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
  uint64_t ddl_statements_ = 0;
};

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_DATABASE_H_
