// Table schemas and row encoding.

#ifndef NETMARK_STORAGE_SCHEMA_H_
#define NETMARK_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace netmark::storage {

/// One column definition.
struct ColumnSchema {
  std::string name;
  ValueType type = ValueType::kString;
  bool nullable = true;
};

/// A row is simply a vector of cell values, positionally matching a schema.
using Row = std::vector<Value>;

/// \brief Ordered column list for a table.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string table_name, std::vector<ColumnSchema> columns)
      : name_(std::move(table_name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnSchema>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of a column by name, or NotFound.
  netmark::Result<size_t> ColumnIndex(std::string_view column) const;

  /// Checks a row against the schema (arity, types, nullability).
  netmark::Status Validate(const Row& row) const;

  /// One-line textual form for the catalog file:
  ///   name(col:TYPE[?],col:TYPE[?],...)   ('?' marks nullable)
  std::string Encode() const;
  static netmark::Result<TableSchema> Decode(std::string_view text);

 private:
  std::string name_;
  std::vector<ColumnSchema> columns_;
};

/// \brief Serializes a row to bytes (self-delimiting; independent of schema).
std::string EncodeRow(const Row& row);
/// \brief Decodes a row previously produced by EncodeRow.
netmark::Result<Row> DecodeRow(std::string_view bytes);

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_SCHEMA_H_
