#include "storage/pager.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/temp_dir.h"

namespace netmark::storage {
namespace {

class PagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("pager");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    path_ = (dir_->path() / "pages.bin").string();
  }
  std::unique_ptr<TempDir> dir_;
  std::string path_;
};

TEST_F(PagerTest, FreshFileHasNoPages) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->page_count(), 0u);
  EXPECT_TRUE((*pager)->Fetch(0).status().IsInvalidArgument());
}

TEST_F(PagerTest, AllocateInitializesAndFetches) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  auto id = (*pager)->Allocate();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  auto page = (*pager)->Fetch(*id);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->slot_count(), 0);
  EXPECT_EQ(page->free_end(), kPageSize);
  EXPECT_EQ((*pager)->page_count(), 1u);
}

TEST_F(PagerTest, DirtyPagesPersistAcrossReopen) {
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    for (int i = 0; i < 5; ++i) {
      auto id = (*pager)->Allocate();
      ASSERT_TRUE(id.ok());
      auto page = (*pager)->Fetch(*id);
      ASSERT_TRUE(page.ok());
      page->Insert("page " + std::to_string(i));
      (*pager)->MarkDirty(*id);
    }
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->page_count(), 5u);
  for (PageId i = 0; i < 5; ++i) {
    auto page = (*pager)->Fetch(i);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->Get(0), "page " + std::to_string(i));
  }
}

TEST_F(PagerTest, UnflushedChangesWrittenByDestructor) {
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    auto page = (*pager)->Fetch(*id);
    page->Insert("auto-flushed");
    (*pager)->MarkDirty(*id);
    // no explicit Flush: the destructor must write back
  }
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  auto page = (*pager)->Fetch(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->Get(0), "auto-flushed");
}

TEST_F(PagerTest, ReadCountsTrackCacheMisses) {
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE((*pager)->Allocate().ok());
    ASSERT_TRUE((*pager)->Flush().ok());
    EXPECT_EQ((*pager)->pages_written(), 3u);
    // Freshly allocated pages are cached: no reads.
    EXPECT_EQ((*pager)->pages_read(), 0u);
  }
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  ASSERT_TRUE((*pager)->Fetch(1).ok());
  ASSERT_TRUE((*pager)->Fetch(1).ok());  // second fetch hits the cache
  EXPECT_EQ((*pager)->pages_read(), 1u);
}

TEST_F(PagerTest, CorruptSizeRejected) {
  ASSERT_TRUE(WriteFile(path_, std::string(kPageSize + 17, 'x')).ok());
  EXPECT_TRUE(Pager::Open(path_).status().IsCorruption());
}

TEST_F(PagerTest, ManyPagesSurviveRoundTrip) {
  const int kPages = 300;  // ~2.4 MB file
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    for (int i = 0; i < kPages; ++i) {
      auto id = (*pager)->Allocate();
      ASSERT_TRUE(id.ok());
      auto page = (*pager)->Fetch(*id);
      std::string payload = "payload-" + std::to_string(i);
      page->Insert(payload);
      (*pager)->MarkDirty(*id);
    }
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  ASSERT_EQ((*pager)->page_count(), static_cast<PageId>(kPages));
  for (int i = 0; i < kPages; i += 37) {
    auto page = (*pager)->Fetch(static_cast<PageId>(i));
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->Get(0), "payload-" + std::to_string(i));
  }
}

TEST(RowIdTest, PackUnpackRoundTrip) {
  for (RowId id : {RowId(0, 0), RowId(1, 2), RowId(123456, 65535),
                   RowId(0xFFFFFFFE, 1)}) {
    EXPECT_EQ(RowId::Unpack(id.Pack()), id);
  }
  EXPECT_FALSE(RowId::Unpack(RowId::kInvalidPacked).valid());
  EXPECT_EQ(kInvalidRowId.Pack(), RowId::kInvalidPacked);
  EXPECT_LT(RowId(1, 5), RowId(2, 0));
  EXPECT_LT(RowId(1, 5), RowId(1, 6));
}

}  // namespace
}  // namespace netmark::storage
