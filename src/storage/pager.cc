#include "storage/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace netmark::storage {

netmark::Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return netmark::Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return netmark::Status::IOError("lseek " + path + ": " + std::strerror(errno));
  }
  if (static_cast<size_t>(size) % kPageSize != 0) {
    ::close(fd);
    return netmark::Status::Corruption(
        netmark::StringPrintf("page file %s has size %lld not a multiple of %zu",
                              path.c_str(), static_cast<long long>(size), kPageSize));
  }
  auto count = static_cast<PageId>(static_cast<size_t>(size) / kPageSize);
  return std::unique_ptr<Pager>(new Pager(path, fd, count));
}

Pager::~Pager() {
  (void)Flush();
  if (fd_ >= 0) ::close(fd_);
}

netmark::Result<PageId> Pager::Allocate() {
  if (page_count_ == kInvalidPage) {
    return netmark::Status::CapacityExceeded("page file full");
  }
  PageId id = page_count_++;
  auto buf = std::make_unique<uint8_t[]>(kPageSize);
  std::memset(buf.get(), 0, kPageSize);
  Page(buf.get()).Init();
  cache_[id] = std::move(buf);
  dirty_[id] = true;
  return id;
}

netmark::Result<uint8_t*> Pager::Buffer(PageId id) {
  auto it = cache_.find(id);
  if (it != cache_.end()) return it->second.get();
  if (id >= page_count_) {
    return netmark::Status::InvalidArgument(
        netmark::StringPrintf("page %u out of range (%u pages)", id, page_count_));
  }
  auto buf = std::make_unique<uint8_t[]>(kPageSize);
  ssize_t n = ::pread(fd_, buf.get(), kPageSize,
                      static_cast<off_t>(id) * static_cast<off_t>(kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return netmark::Status::IOError(
        netmark::StringPrintf("short read of page %u from %s", id, path_.c_str()));
  }
  ++pages_read_;
  uint8_t* raw = buf.get();
  cache_[id] = std::move(buf);
  return raw;
}

netmark::Result<Page> Pager::Fetch(PageId id) {
  NETMARK_ASSIGN_OR_RETURN(uint8_t* buf, Buffer(id));
  return Page(buf);
}

void Pager::MarkDirty(PageId id) { dirty_[id] = true; }

netmark::Status Pager::Flush() {
  for (auto& [id, is_dirty] : dirty_) {
    if (!is_dirty) continue;
    auto it = cache_.find(id);
    if (it == cache_.end()) continue;
    ssize_t n = ::pwrite(fd_, it->second.get(), kPageSize,
                         static_cast<off_t>(id) * static_cast<off_t>(kPageSize));
    if (n != static_cast<ssize_t>(kPageSize)) {
      return netmark::Status::IOError(
          netmark::StringPrintf("short write of page %u to %s", id, path_.c_str()));
    }
    is_dirty = false;
    ++pages_written_;
  }
  return netmark::Status::OK();
}

}  // namespace netmark::storage
