#include "storage/page.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

namespace netmark::storage {
namespace {

class PageTest : public ::testing::Test {
 protected:
  PageTest() : buf_(new uint8_t[kPageSize]), page_(buf_.get()) {
    std::memset(buf_.get(), 0, kPageSize);
    page_.Init();
  }
  std::unique_ptr<uint8_t[]> buf_;
  Page page_;
};

TEST_F(PageTest, FreshPageIsEmpty) {
  EXPECT_EQ(page_.slot_count(), 0);
  // Format v1 reserves the checksum trailer at the tail of every page.
  EXPECT_EQ(page_.free_end(), kPageSize - kPageTrailerSize);
  EXPECT_EQ(page_.FreeSpace(),
            kPageSize - Page::kHeaderSize - kPageTrailerSize);
}

TEST_F(PageTest, InsertAndGet) {
  uint16_t s0 = page_.Insert("alpha");
  uint16_t s1 = page_.Insert("beta");
  EXPECT_EQ(s0, 0);
  EXPECT_EQ(s1, 1);
  EXPECT_EQ(page_.Get(s0), "alpha");
  EXPECT_EQ(page_.Get(s1), "beta");
  EXPECT_EQ(page_.slot_count(), 2);
}

TEST_F(PageTest, GetOutOfRangeIsEmpty) {
  EXPECT_TRUE(page_.Get(0).empty());
  page_.Insert("x");
  EXPECT_TRUE(page_.Get(5).empty());
}

TEST_F(PageTest, DeleteTombstonesWithoutMovingNeighbors) {
  uint16_t s0 = page_.Insert("one");
  uint16_t s1 = page_.Insert("two");
  uint16_t s2 = page_.Insert("three");
  page_.Delete(s1);
  EXPECT_FALSE(page_.IsLive(s1));
  EXPECT_TRUE(page_.Get(s1).empty());
  // Neighbours untouched: stable addressing.
  EXPECT_EQ(page_.Get(s0), "one");
  EXPECT_EQ(page_.Get(s2), "three");
}

TEST_F(PageTest, UpdateInPlaceShrinks) {
  uint16_t s = page_.Insert("long-record-here");
  page_.UpdateInPlace(s, "short");
  EXPECT_EQ(page_.Get(s), "short");
}

TEST_F(PageTest, CanInsertAccountsForSlotOverhead) {
  size_t free = page_.FreeSpace();
  EXPECT_TRUE(page_.CanInsert(free - Page::kSlotSize));
  EXPECT_FALSE(page_.CanInsert(free));
}

TEST_F(PageTest, FillsToCapacity) {
  const std::string record(100, 'r');
  int inserted = 0;
  while (page_.CanInsert(record.size())) {
    page_.Insert(record);
    ++inserted;
  }
  // ~ (8192-8) / 104 records.
  EXPECT_GT(inserted, 70);
  for (uint16_t s = 0; s < page_.slot_count(); ++s) {
    EXPECT_EQ(page_.Get(s), record);
  }
}

TEST_F(PageTest, MaxInlineRecordFitsExactly) {
  std::string record(Page::kMaxInlineRecord, 'm');
  ASSERT_TRUE(page_.CanInsert(record.size()));
  uint16_t s = page_.Insert(record);
  EXPECT_EQ(page_.Get(s).size(), Page::kMaxInlineRecord);
  EXPECT_FALSE(page_.CanInsert(1));
}

TEST_F(PageTest, BinaryContentSurvives) {
  std::string record = std::string("\0\xFF\x01binary", 9);
  uint16_t s = page_.Insert(record);
  EXPECT_EQ(page_.Get(s), record);
}

}  // namespace
}  // namespace netmark::storage
