// Always-on trace retention: a bounded in-memory ring of recently finished
// traces, so operators can pull a span tree *after the fact* from
// GET /traces — no trace=1 opt-in, no external collector.
//
// Admission combines head sampling with tail-based keep rules:
//   - head: each request rolls `trace_sample_rate` once, up front, so the
//     sampling decision can also gate span creation cost;
//   - tail: error traces and traces slower than `slow_keep_ms` are always
//     retained, even when the head roll said no — those are the ones worth
//     debugging.
// Retained traces land in one of two rings: `recent` (head-sampled) and
// `important` (error/slow), so a burst of healthy traffic cannot evict the
// one trace that explains a p99 spike.
//
// Thread-safe: serving workers record while /traces scrapes concurrently
// (covered by a TSan test).

#ifndef NETMARK_OBSERVABILITY_TRACE_STORE_H_
#define NETMARK_OBSERVABILITY_TRACE_STORE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "observability/metrics.h"
#include "observability/trace.h"

namespace netmark::observability {

struct TraceStoreOptions {
  size_t capacity = 256;           ///< head-sampled ring slots
  size_t important_capacity = 64;  ///< error/slow ring slots
  /// Head-sampling probability in [0,1]. 1.0 (default) records every
  /// request — the bounded rings are the backstop; lower it on hot
  /// instances where per-request span bookkeeping shows up in profiles.
  double sample_rate = 1.0;
  /// Tail keep rule: traces at least this slow are retained regardless of
  /// the head roll. <= 0 disables the rule.
  int64_t slow_keep_ms = 500;
  /// Sampler seed; 0 seeds from the clock.
  uint64_t rng_seed = 0;
};

/// One row of the GET /traces listing.
struct TraceSummary {
  std::string id;        ///< W3C trace id
  std::string root;      ///< root span name ("xdb", "sweep", ...)
  int64_t duration_micros = 0;
  bool ok = true;        ///< root span outcome
  bool error = false;    ///< retained by the error tail rule
  bool slow = false;     ///< retained by the slow tail rule
  int64_t wall_seconds = 0;  ///< when the trace was recorded
};

class TraceStore {
 public:
  explicit TraceStore(TraceStoreOptions options = {});
  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  /// Replaces the options (serve-time configuration); clears nothing — the
  /// rings shrink lazily as new traces arrive.
  void Configure(TraceStoreOptions options);

  /// Head-sampling roll for one request, counted in
  /// netmark_traces_sampled_total when it comes up heads.
  bool ShouldSample();

  /// Offers a finished trace. `head_sampled` is the ShouldSample() result
  /// for this request; `error` marks a failed request (5xx / failed sweep).
  /// Returns true when the trace was retained — the caller uses that to
  /// attach an exemplar.
  bool Record(std::shared_ptr<Trace> trace, bool head_sampled, bool error);

  /// Listing, newest first (important ring before recent).
  std::vector<TraceSummary> List() const;

  /// Full trace by id; nullptr when evicted or never retained.
  std::shared_ptr<Trace> Find(const std::string& id) const;

  /// Re-homes the sampled/retained/dropped counters (facade wiring).
  void BindMetrics(MetricsRegistry* registry);

  size_t size() const;
  double sample_rate() const;

 private:
  struct Entry {
    TraceSummary meta;
    std::shared_ptr<Trace> trace;
  };

  void BindHandles();

  mutable std::mutex mu_;
  TraceStoreOptions options_;
  netmark::Rng rng_;
  std::deque<Entry> recent_;     // head-sampled, healthy
  std::deque<Entry> important_;  // error / over-threshold

  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  Counter* sampled_total_ = nullptr;
  Counter* retained_total_ = nullptr;
  Counter* dropped_total_ = nullptr;
};

}  // namespace netmark::observability

#endif  // NETMARK_OBSERVABILITY_TRACE_STORE_H_
