// Small string helpers shared by all NETMARK modules.

#ifndef NETMARK_COMMON_STRING_UTIL_H_
#define NETMARK_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace netmark {

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
inline std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

/// \brief ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);
/// \brief ASCII upper-casing (locale independent).
std::string ToUpper(std::string_view s);

/// \brief Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief Splits on a single character; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Splits on a character, trimming each field and dropping empties.
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// \brief Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Replaces every occurrence of `from` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to);

/// \brief Parses a decimal integer; rejects trailing garbage.
Result<int64_t> ParseInt64(std::string_view s);
/// \brief Parses a floating point number; rejects trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// \brief Percent-decodes a URL component ("%20" -> ' ', '+' -> ' ').
Result<std::string> UrlDecode(std::string_view s);
/// \brief Percent-encodes a URL component.
std::string UrlEncode(std::string_view s);

/// \brief Collapses runs of whitespace into single spaces and trims.
std::string NormalizeWhitespace(std::string_view s);

/// \brief printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace netmark

#endif  // NETMARK_COMMON_STRING_UTIL_H_
