// PreparedDocument: a DOM flattened into insert-ready node rows plus
// pre-tokenized text postings.
//
// Preparation is the CPU-heavy half of ingestion (DFS flattening, node-type
// classification, attribute encoding, tokenization) and touches no store
// state, so it can run on many worker threads concurrently. The cheap half —
// assigning doc/node ids, writing rows, patching sibling RowId links, and
// merging postings into the text index — stays on the single writer
// (XmlStore::InsertPrepared), preserving the store's single-writer invariant.

#ifndef NETMARK_XMLSTORE_PREPARED_DOCUMENT_H_
#define NETMARK_XMLSTORE_PREPARED_DOCUMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "textindex/inverted_index.h"
#include "xml/dom.h"
#include "xml/node_type_config.h"

namespace netmark::xmlstore {

/// Metadata supplied when inserting a document.
struct DocumentInfo {
  std::string file_name;
  int64_t file_date = 0;
  int64_t file_size = 0;
};

/// One flattened node, stripped of everything the writer assigns (ids,
/// RowId links). `parent` is an index into PreparedDocument::nodes.
struct PreparedNode {
  static constexpr size_t kNoParent = static_cast<size_t>(-1);

  size_t parent = kNoParent;  ///< index of parent node; kNoParent = top level
  xml::NetmarkNodeType node_type = xml::NetmarkNodeType::kElement;
  std::string node_name;  ///< element/PI name ("" for text)
  std::string node_data;  ///< text payload; attributes blob for elements
  /// Pre-tokenized postings (text nodes only; empty otherwise).
  textindex::PreparedPostings postings;

  bool is_text() const { return node_type == xml::NetmarkNodeType::kText; }
};

/// \brief A document ready for a single-writer commit: nodes in pre-order
/// (parents precede children) with tokenization already done.
struct PreparedDocument {
  DocumentInfo info;
  std::vector<PreparedNode> nodes;
};

/// \brief Flattens `doc` into pre-order node rows and tokenizes its text.
/// Pure function over its inputs (NodeTypeConfig::Classify is const and
/// lock-free), so worker threads may call it concurrently.
PreparedDocument PrepareDocument(const xml::Document& doc, const DocumentInfo& info,
                                 const xml::NodeTypeConfig& node_types);

}  // namespace netmark::xmlstore

#endif  // NETMARK_XMLSTORE_PREPARED_DOCUMENT_H_
