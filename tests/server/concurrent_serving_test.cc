// Concurrent serving-path tests: the worker-pool server under parallel
// clients, keep-alive reuse, shedding, slow-client timeouts, graceful
// drain, and — the core isolation claim — snapshot-consistent reads while
// ingestion and checkpointing mutate the store. Run under TSan in CI
// (serving-stress job); thread counts stay modest for 1-2 core runners.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/temp_dir.h"
#include "core/netmark.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "xml/serializer.h"
#include "xmlstore/xml_store.h"

namespace netmark::server {
namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  int64_t parsed = std::atoll(value);
  return parsed > 0 ? parsed : fallback;
}

/// The beacon documents the stress writer publishes: body carries matching
/// BEGIN<k>/END<k> markers, so any reader that observes a half-committed
/// replace would see mismatched (or missing) marker numbers.
std::string BeaconDoc(int k) {
  return "<doc><h1>Stress</h1><p>beacon BEGIN" + std::to_string(k) +
         " payload payload payload END" + std::to_string(k) + "</p></doc>";
}

/// Extracts the integer following `tag` in `body` (-1 when absent).
int MarkerAfter(const std::string& body, const std::string& tag) {
  size_t pos = body.find(tag);
  if (pos == std::string::npos) return -1;
  pos += tag.size();
  size_t end = pos;
  while (end < body.size() && std::isdigit(static_cast<unsigned char>(body[end]))) {
    ++end;
  }
  if (end == pos) return -1;
  return std::atoi(body.substr(pos, end - pos).c_str());
}

TEST(ConcurrentServingTest, SnapshotReadsStayConsistentUnderIngestion) {
  auto dir = TempDir::Make("serving_stress");
  ASSERT_TRUE(dir.ok());
  NetmarkOptions options;
  options.data_dir = dir->Sub("data").string();
  options.http_server.worker_threads = 4;
  auto nm = Netmark::Open(options);
  ASSERT_TRUE(nm.ok());
  ASSERT_TRUE((*nm)->StartServer().ok());
  uint16_t port = (*nm)->server_port();

  // Seed one beacon so readers never start with an empty store.
  HttpClient seed_client("127.0.0.1", port);
  auto seeded = seed_client.Put("/docs/stress.xml", BeaconDoc(0), "text/xml");
  ASSERT_TRUE(seeded.ok());
  ASSERT_EQ(seeded->status, 201);

  const int64_t duration_ms = EnvInt("NETMARK_SERVING_STRESS_MS", 1500);
  const unsigned seed =
      static_cast<unsigned>(EnvInt("NETMARK_SERVING_SEED", 42));
  std::atomic<bool> stop{false};
  std::atomic<int> inconsistencies{0};
  std::atomic<uint64_t> reads_ok{0};

  // Writer: replaces the beacon document (delete + insert inside one
  // commit each) and checkpoints periodically. Readers never serialize
  // against either — they pin an MVCC epoch (docs/mvcc.md), so this is a
  // pure snapshot-consistency probe, not a lock-fairness one.
  std::thread writer([&] {
    HttpClient client("127.0.0.1", port);
    int k = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      auto put = client.Put("/docs/stress.xml", BeaconDoc(k), "text/xml");
      ASSERT_TRUE(put.ok()) << put.status().ToString();
      EXPECT_TRUE(put->status == 201 || put->status == 204) << put->status;
      if (k % 10 == 0) {
        ASSERT_TRUE((*nm)->store()->Checkpoint().ok());
      }
      ++k;
    }
  });

  // Readers: XDB section queries plus raw document GETs. Every 200 body
  // that mentions the beacon must carry matching BEGIN/END markers — the
  // byte-consistency claim.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      HttpClient client("127.0.0.1", port);
      unsigned rng = seed + static_cast<unsigned>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        rng = rng * 1664525u + 1013904223u;
        std::string target;
        switch (rng % 3) {
          case 0: target = "/xdb?context=Stress"; break;
          case 1: target = "/xdb?content=beacon"; break;
          default: target = "/docs"; break;
        }
        auto resp = client.Get(target);
        if (!resp.ok()) continue;  // drain/timeout races are fine
        if (resp->status != 200) continue;
        reads_ok.fetch_add(1, std::memory_order_relaxed);
        const std::string& body = resp->body;
        int begin = MarkerAfter(body, "BEGIN");
        int end = MarkerAfter(body, "END");
        if (begin != end) {
          inconsistencies.fetch_add(1);
          ADD_FAILURE() << "torn read: BEGIN" << begin << " vs END" << end
                        << " in " << target;
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(inconsistencies.load(), 0);
  EXPECT_GT(reads_ok.load(), 0u);
  (*nm)->StopServer();
}

// Old-epoch case (docs/mvcc.md): a snapshot pinned before a burst of
// HTTP-ingested replacements, version-GC passes, and checkpoints must keep
// serving byte-identical documents, while unpinned HTTP readers see the
// newest beacon. Releasing the pin lets GC reclaim the history.
TEST(ConcurrentServingTest, OldEpochSnapshotServesIdenticalBytesUnderIngestion) {
  auto dir = TempDir::Make("serving_old_epoch");
  ASSERT_TRUE(dir.ok());
  NetmarkOptions options;
  options.data_dir = dir->Sub("data").string();
  auto nm = Netmark::Open(options);
  ASSERT_TRUE(nm.ok());
  ASSERT_TRUE((*nm)->StartServer().ok());
  uint16_t port = (*nm)->server_port();
  xmlstore::XmlStore* store = (*nm)->store();

  HttpClient client("127.0.0.1", port);
  auto seeded = client.Put("/docs/stress.xml", BeaconDoc(0), "text/xml");
  ASSERT_TRUE(seeded.ok());
  ASSERT_EQ(seeded->status, 201);

  // Pin the epoch of beacon revision 0 and freeze its exact bytes.
  auto pin = store->BeginRead();
  auto docs = store->ListDocuments();
  ASSERT_TRUE(docs.ok());
  ASSERT_EQ(docs->size(), 1u);
  int64_t doc_id = docs->front().doc_id;
  auto frozen_doc = store->Reconstruct(doc_id);
  ASSERT_TRUE(frozen_doc.ok()) << frozen_doc.status().ToString();
  const std::string frozen = xml::Serialize(*frozen_doc);

  // Churn: each PUT is a delete+insert commit that rewrites the beacon's
  // pages; GC and checkpoints interleave.
  for (int k = 1; k <= 25; ++k) {
    auto put = client.Put("/docs/stress.xml", BeaconDoc(k), "text/xml");
    ASSERT_TRUE(put.ok()) << put.status().ToString();
    if (k % 5 == 0) {
      store->RunVersionGc();
      ASSERT_TRUE(store->Checkpoint().ok());
    }
  }

  // The pinned view is byte-identical to revision 0 even though that
  // document was deleted 25 commits ago...
  auto old_doc = store->Reconstruct(doc_id);
  ASSERT_TRUE(old_doc.ok()) << old_doc.status().ToString();
  EXPECT_EQ(xml::Serialize(*old_doc), frozen);
  // ...while an unpinned HTTP reader gets the newest beacon.
  auto latest = client.Get("/xdb?content=beacon");
  ASSERT_TRUE(latest.ok());
  ASSERT_EQ(latest->status, 200);
  EXPECT_EQ(MarkerAfter(latest->body, "BEGIN"), 25);
  EXPECT_EQ(MarkerAfter(latest->body, "END"), 25);

  pin = xmlstore::XmlStore::ReadSnapshot();  // release
  store->RunVersionGc();
  EXPECT_GT(store->mvcc_versions_reclaimed(), 0u);
  (*nm)->StopServer();
}

// GC-pressure case: an aggressive version-GC hammer plus a pin-churning
// thread race the serving path. GC must never reclaim a version a live
// HTTP read still needs — torn or vanishing beacons fail the test.
TEST(ConcurrentServingTest, SnapshotReadsStayConsistentUnderGcPressure) {
  auto dir = TempDir::Make("serving_gc_pressure");
  ASSERT_TRUE(dir.ok());
  NetmarkOptions options;
  options.data_dir = dir->Sub("data").string();
  options.http_server.worker_threads = 4;
  // Disable the background GC thread: the hammer below owns the cadence,
  // so every reclaim races a read at the worst possible moment.
  options.storage.mvcc_gc_interval_ms = 0;
  auto nm = Netmark::Open(options);
  ASSERT_TRUE(nm.ok());
  ASSERT_TRUE((*nm)->StartServer().ok());
  uint16_t port = (*nm)->server_port();
  xmlstore::XmlStore* store = (*nm)->store();

  HttpClient seed_client("127.0.0.1", port);
  auto seeded = seed_client.Put("/docs/stress.xml", BeaconDoc(0), "text/xml");
  ASSERT_TRUE(seeded.ok());
  ASSERT_EQ(seeded->status, 201);

  const int64_t duration_ms = EnvInt("NETMARK_SERVING_STRESS_MS", 1500) / 2;
  std::atomic<bool> stop{false};
  std::atomic<int> inconsistencies{0};
  std::atomic<uint64_t> reads_ok{0};

  std::thread writer([&] {
    HttpClient client("127.0.0.1", port);
    int k = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      auto put = client.Put("/docs/stress.xml", BeaconDoc(k++), "text/xml");
      ASSERT_TRUE(put.ok()) << put.status().ToString();
    }
  });
  std::thread gc_hammer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      store->RunVersionGc();
    }
  });
  // Holds short-lived direct pins so the GC watermark keeps jumping
  // backwards and forwards under the hammer.
  std::thread pin_churn([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto snap = store->BeginRead();
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      HttpClient client("127.0.0.1", port);
      while (!stop.load(std::memory_order_relaxed)) {
        auto resp = client.Get("/xdb?content=beacon");
        if (!resp.ok() || resp->status != 200) continue;
        reads_ok.fetch_add(1, std::memory_order_relaxed);
        int begin = MarkerAfter(resp->body, "BEGIN");
        int end = MarkerAfter(resp->body, "END");
        if (begin != end) {
          inconsistencies.fetch_add(1);
          ADD_FAILURE() << "torn read under GC pressure: BEGIN" << begin
                        << " vs END" << end;
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  writer.join();
  gc_hammer.join();
  pin_churn.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(inconsistencies.load(), 0);
  EXPECT_GT(reads_ok.load(), 0u);
  EXPECT_GT(store->mvcc_versions_reclaimed(), 0u);
  (*nm)->StopServer();
}

TEST(ConcurrentServingTest, ShedsWith503WhenAcceptQueueIsFull) {
  HttpServerOptions options;
  options.worker_threads = 1;
  options.accept_queue_capacity = 1;
  std::atomic<bool> release{false};
  HttpServer server(
      [&](const HttpRequest&) {
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        return HttpResponse::Ok("done");
      },
      options);
  ASSERT_TRUE(server.Start().ok());

  // First request occupies the lone worker...
  std::vector<std::thread> blocked;
  std::atomic<int> ok_count{0};
  auto spawn_blocked = [&] {
    blocked.emplace_back([&] {
      HttpClient client("127.0.0.1", server.port());
      auto resp = client.Get("/slow");
      if (resp.ok() && resp->status == 200) ok_count.fetch_add(1);
    });
  };
  spawn_blocked();
  for (int i = 0; i < 400 && server.active_connections() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.active_connections(), 1);
  // ...then the second parks in the (capacity-1) queue.
  spawn_blocked();
  for (int i = 0; i < 400 && server.connections_accepted() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(server.connections_accepted(), 2u);

  // Further connections must be shed with 503 + Retry-After, not queued.
  HttpClient client("127.0.0.1", server.port());
  int shed_seen = 0;
  for (int i = 0; i < 5; ++i) {
    auto resp = client.Get("/extra");
    if (resp.ok() && resp->status == 503) {
      ++shed_seen;
      EXPECT_EQ(resp->Header("Retry-After"), "1");
    }
  }
  EXPECT_GT(shed_seen, 0);
  EXPECT_GT(server.connections_shed(), 0u);

  release.store(true);
  for (std::thread& t : blocked) t.join();
  EXPECT_EQ(ok_count.load(), 2);
  server.Stop();
}

TEST(ConcurrentServingTest, SlowClientGets408NotAHungWorker) {
  HttpServerOptions options;
  options.read_timeout_ms = 150;
  options.idle_timeout_ms = 400;
  HttpServer server([](const HttpRequest&) { return HttpResponse::Ok("x"); },
                    options);
  ASSERT_TRUE(server.Start().ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // Half a request head, then stall: the read deadline must fire.
  const char partial[] = "GET /stalled HTTP/1.1\r\n";
  ASSERT_GT(::send(fd, partial, sizeof(partial) - 1, 0), 0);

  std::string raw;
  char chunk[1024];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(raw.find("408"), std::string::npos) << raw;
  EXPECT_EQ(server.read_timeouts(), 1u);
  server.Stop();
}

TEST(ConcurrentServingTest, IdleConnectionIsReapedQuietly) {
  HttpServerOptions options;
  options.idle_timeout_ms = 120;
  HttpServer server([](const HttpRequest&) { return HttpResponse::Ok("x"); },
                    options);
  ASSERT_TRUE(server.Start().ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // Send nothing: the server must close (EOF) without writing a response.
  char chunk[64];
  ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
  EXPECT_EQ(n, 0);
  ::close(fd);
  EXPECT_EQ(server.read_timeouts(), 0u);
  server.Stop();
}

TEST(ConcurrentServingTest, KeepAliveServesManyRequestsOnOneConnection) {
  HttpServer server([](const HttpRequest& req) {
    return HttpResponse::Ok(std::string(req.query));
  });
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 10; ++i) {
    auto resp = client.Get("/q?n=" + std::to_string(i));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->body, "n=" + std::to_string(i));
    EXPECT_EQ(resp->Header("Connection"), "keep-alive");
  }
  EXPECT_EQ(client.connections_opened(), 1u);
  EXPECT_EQ(client.connections_reused(), 9u);
  EXPECT_EQ(server.connections_accepted(), 1u);
  EXPECT_EQ(server.keepalive_reuses(), 9u);
  EXPECT_EQ(server.requests_served(), 10u);
  server.Stop();
}

TEST(ConcurrentServingTest, MaxRequestsPerConnectionRotatesConnections) {
  HttpServerOptions options;
  options.max_requests_per_connection = 3;
  HttpServer server([](const HttpRequest&) { return HttpResponse::Ok("x"); },
                    options);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 7; ++i) {
    auto resp = client.Get("/r");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->status, 200);
  }
  // Every 3rd response closes the connection, so 7 requests need 3 sockets.
  EXPECT_EQ(client.connections_opened(), 3u);
  EXPECT_EQ(server.connections_accepted(), 3u);
  server.Stop();
}

TEST(ConcurrentServingTest, ClientHonorsExplicitConnectionClose) {
  HttpServer server([](const HttpRequest&) { return HttpResponse::Ok("x"); });
  ASSERT_TRUE(server.Start().ok());
  HttpClientOptions copts;
  copts.reuse_connections = false;
  HttpClient client("127.0.0.1", server.port(), copts);
  for (int i = 0; i < 4; ++i) {
    auto resp = client.Get("/r");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->Header("Connection"), "close");
  }
  EXPECT_EQ(client.connections_opened(), 4u);
  EXPECT_EQ(client.connections_reused(), 0u);
  EXPECT_EQ(server.keepalive_reuses(), 0u);
  server.Stop();
}

TEST(ConcurrentServingTest, GracefulDrainFinishesInFlightRequests) {
  std::atomic<bool> handler_entered{false};
  HttpServer server([&](const HttpRequest&) {
    handler_entered.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return HttpResponse::Ok("finished");
  });
  ASSERT_TRUE(server.Start().ok());

  std::thread in_flight([&, port = server.port()] {
    HttpClient client("127.0.0.1", port);
    auto resp = client.Get("/slow");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->status, 200);
    EXPECT_EQ(resp->body, "finished");
    // Draining responses must close, not invite another request.
    EXPECT_EQ(resp->Header("Connection"), "close");
  });
  while (!handler_entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.Stop();  // must wait for the in-flight response
  in_flight.join();
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(ConcurrentServingTest, ConcurrentClientsThroughThePool) {
  std::atomic<int> peak{0};
  std::atomic<int> current{0};
  HttpServer server([&](const HttpRequest&) {
    int now = current.fetch_add(1) + 1;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    current.fetch_sub(1);
    return HttpResponse::Ok("x");
  });
  ASSERT_TRUE(server.Start().ok());
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      HttpClient client("127.0.0.1", server.port());
      for (int i = 0; i < 10; ++i) {
        auto resp = client.Get("/c");
        if (resp.ok() && resp->status == 200) ok_count.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), 40);
  // With 4 workers and 4 closed-loop clients the pool must actually
  // overlap requests (the old serial server would report peak == 1).
  EXPECT_GT(peak.load(), 1);
  server.Stop();
}

TEST(HttpClientKeepAliveTest, ServerRestartMidStreamIsRetriedTransparently) {
  auto make_server = [] {
    return std::make_unique<HttpServer>(
        [](const HttpRequest&) { return HttpResponse::Ok("pong"); });
  };
  auto server = make_server();
  ASSERT_TRUE(server->Start().ok());
  uint16_t port = server->port();

  HttpClient client("127.0.0.1", port);
  auto first = client.Get("/ping");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(client.connections_opened(), 1u);

  // Restart on the same port: the pooled socket is now dead. The next Send
  // must detect the stale connection and retry on a fresh one — invisible
  // to the caller (and to the PR 2 retry machinery above it).
  server->Stop();
  server = make_server();
  ASSERT_TRUE(server->Start(port).ok());

  auto second = client.Get("/ping");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->body, "pong");
  EXPECT_EQ(client.connections_opened(), 2u);
  server->Stop();
}

TEST(HttpClientKeepAliveTest, DownServerAfterRestartStillMapsToUnavailable) {
  auto server = std::make_unique<HttpServer>(
      [](const HttpRequest&) { return HttpResponse::Ok("pong"); });
  ASSERT_TRUE(server->Start().ok());
  uint16_t port = server->port();
  HttpClient client("127.0.0.1", port);
  ASSERT_TRUE(client.Get("/ping").ok());

  // Server gone for good: the stale-retry reconnect must surface the
  // retryable Unavailable the PR 2 backoff rules key on.
  server->Stop();
  server.reset();
  auto resp = client.Get("/ping");
  EXPECT_TRUE(resp.status().IsUnavailable()) << resp.status().ToString();
}

}  // namespace
}  // namespace netmark::server
