#include "workload/corpus.h"

#include <gtest/gtest.h>

#include "convert/registry.h"
#include "federation/augment.h"
#include "workload/query_workload.h"

namespace netmark::workload {
namespace {

TEST(CorpusTest, DeterministicForSeed) {
  CorpusGenerator a(42);
  CorpusGenerator b(42);
  for (int i = 0; i < 5; ++i) {
    GeneratedDoc da = a.Proposal(i);
    GeneratedDoc db = b.Proposal(i);
    EXPECT_EQ(da.file_name, db.file_name);
    EXPECT_EQ(da.content, db.content);
  }
  CorpusGenerator c(43);
  EXPECT_NE(a.Proposal(99).content, c.Proposal(99).content);
}

// Every generated format must convert cleanly and yield sections.
class CorpusConversionTest : public ::testing::TestWithParam<int> {};

TEST_P(CorpusConversionTest, AllGeneratorsProduceConvertibleDocs) {
  CorpusGenerator gen(7);
  int index = GetParam();
  std::vector<GeneratedDoc> docs = {
      gen.Proposal(index),     gen.TaskPlan(index),    gen.AnomalyReport(index),
      gen.LessonLearned(index), gen.RiskMemo(index),   gen.BudgetSheet(index),
  };
  convert::ConverterRegistry registry = convert::ConverterRegistry::Default();
  for (const GeneratedDoc& doc : docs) {
    auto converted = registry.Convert(doc.file_name, doc.content);
    ASSERT_TRUE(converted.ok())
        << doc.file_name << ": " << converted.status().ToString();
    auto sections = federation::ExtractSections(*converted);
    EXPECT_GE(sections.size(), 1u) << doc.file_name;
  }
}

INSTANTIATE_TEST_SUITE_P(Indexes, CorpusConversionTest, ::testing::Values(0, 3, 17));

TEST(CorpusTest, ProposalCarriesBudgetSection) {
  CorpusGenerator gen(11);
  GeneratedDoc doc = gen.Proposal(1);
  convert::ConverterRegistry registry = convert::ConverterRegistry::Default();
  auto converted = registry.Convert(doc.file_name, doc.content);
  ASSERT_TRUE(converted.ok());
  auto sections = federation::ExtractSections(*converted);
  bool budget_found = false;
  for (const auto& s : sections) {
    if (s.heading == "Budget") {
      budget_found = true;
      EXPECT_NE(s.text.find("requested amount"), std::string::npos);
    }
  }
  EXPECT_TRUE(budget_found);
}

TEST(CorpusTest, TaskPlanHasBudgetSummaryWithFiscalYears) {
  CorpusGenerator gen(5);
  GeneratedDoc doc = gen.TaskPlan(3);
  EXPECT_NE(doc.content.find("3. Budget Summary"), std::string::npos);
  EXPECT_NE(doc.content.find("FY2005"), std::string::npos);
}

TEST(CorpusTest, MixedCorpusCyclesFormats) {
  CorpusGenerator gen(3);
  auto corpus = gen.MixedCorpus(12);
  ASSERT_EQ(corpus.size(), 12u);
  std::set<std::string> extensions;
  for (const auto& doc : corpus) {
    extensions.insert(doc.file_name.substr(doc.file_name.rfind('.')));
  }
  EXPECT_EQ(extensions.size(), 6u);  // .doc .txt .html .xml .md .csv
}

TEST(CorpusTest, StandardVocabularies) {
  EXPECT_FALSE(CorpusGenerator::StandardHeadings().empty());
  EXPECT_FALSE(CorpusGenerator::TopicTerms().empty());
  EXPECT_FALSE(CorpusGenerator::Divisions().empty());
  CorpusGenerator gen(9);
  std::string term = gen.RandomTopicTerm();
  const auto& topics = CorpusGenerator::TopicTerms();
  EXPECT_NE(std::find(topics.begin(), topics.end(), term), topics.end());
}

TEST(QueryWorkloadTest, MixProportionsRoughlyHold) {
  QueryWorkload wl(123);
  int ctx = 0, cnt = 0, both = 0;
  for (int i = 0; i < 1000; ++i) {
    auto q = wl.Next(0.4, 0.3);
    if (q.has_context() && q.has_content()) ++both;
    else if (q.has_context()) ++ctx;
    else ++cnt;
  }
  EXPECT_GT(ctx, 300);
  EXPECT_LT(ctx, 500);
  EXPECT_GT(cnt, 200);
  EXPECT_GT(both, 200);
}

TEST(EmployeeSourceTest, CenterSpecificSchemas) {
  auto ames = EmployeeSource(1, "Ames", 10);
  auto johnson = EmployeeSource(2, "Johnson", 10);
  auto kennedy = EmployeeSource(3, "Kennedy", 10);
  EXPECT_EQ(ames.attributes[0], "employee_name");
  EXPECT_EQ(johnson.attributes[0], "person");
  EXPECT_EQ(kennedy.attributes[0], "staff_member");
  EXPECT_EQ(ames.records.size(), 10u);
  // Johnson's ratings are numeric strings.
  for (const auto& r : johnson.records) {
    const std::string& score = r.at("score");
    EXPECT_GE(score, "1");
    EXPECT_LE(score, "5");
  }
}

}  // namespace
}  // namespace netmark::workload
