#include "convert/heading_heuristics.h"

#include <gtest/gtest.h>

namespace netmark::convert {
namespace {

TEST(HeadingHeuristicsTest, AllCapsLinesAreHeadings) {
  EXPECT_TRUE(LooksLikeHeading("TECHNICAL APPROACH"));
  EXPECT_TRUE(LooksLikeHeading("BUDGET"));
  EXPECT_TRUE(LooksLikeHeading("  RISK ASSESSMENT  "));
}

TEST(HeadingHeuristicsTest, NumberedLinesAreHeadings) {
  EXPECT_TRUE(LooksLikeHeading("1. Introduction"));
  EXPECT_TRUE(LooksLikeHeading("2.1 Budget Summary"));
  EXPECT_TRUE(LooksLikeHeading("IV. Conclusions"));
  EXPECT_TRUE(LooksLikeHeading("A. Scope"));
}

TEST(HeadingHeuristicsTest, TitleCaseShortLinesAreHeadings) {
  EXPECT_TRUE(LooksLikeHeading("Technical Approach"));
  EXPECT_TRUE(LooksLikeHeading("Management Plan"));
}

TEST(HeadingHeuristicsTest, SentencesAreNotHeadings) {
  EXPECT_FALSE(LooksLikeHeading("This is a normal sentence that ends here."));
  EXPECT_FALSE(LooksLikeHeading("the quick brown fox jumps over lazy dogs"));
  EXPECT_FALSE(LooksLikeHeading(
      "An Extremely Long Title Case Line That Goes On And On Well Past The "
      "Reasonable Length Of Any Real Section Heading In A Document"));
  EXPECT_FALSE(LooksLikeHeading(""));
  EXPECT_FALSE(LooksLikeHeading("Budget,"));
  EXPECT_FALSE(LooksLikeHeading("Is this a heading?"));
}

TEST(HeadingHeuristicsTest, SplitParagraphsOnBlankLines) {
  auto paras = SplitParagraphs("line one\nline two\n\n\nsecond para\n");
  ASSERT_EQ(paras.size(), 2u);
  EXPECT_EQ(paras[0], "line one line two");
  EXPECT_EQ(paras[1], "second para");
  EXPECT_TRUE(SplitParagraphs("").empty());
  EXPECT_TRUE(SplitParagraphs("\n\n \n").empty());
}

}  // namespace
}  // namespace netmark::convert
