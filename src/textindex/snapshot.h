// Text-index snapshots: persist the inverted index so store open can skip
// the full rebuild scan.
//
// The heap files remain the durable source of truth; a snapshot is a cache.
// The caller embeds a validation token (NETMARK uses the XML table's live
// row count plus the next node id) — on load, a token mismatch means the
// snapshot is stale (e.g. a crash after unsnapshotted inserts) and the
// caller falls back to rebuilding from the store.
//
// File format (little-endian, versioned):
//   magic "NMIX" | u32 version | u64 token_a | u64 token_b | u64 term_count
//   per term:   u32 term_len | bytes | u64 posting_count
//   per posting: u64 key | u32 n_positions | u32 positions[n]

#ifndef NETMARK_TEXTINDEX_SNAPSHOT_H_
#define NETMARK_TEXTINDEX_SNAPSHOT_H_

#include <string>

#include "common/result.h"
#include "textindex/inverted_index.h"

namespace netmark::textindex {

/// Opaque consistency tokens stored with the snapshot. `a`/`b` must be
/// independently recomputable by the caller at load time (NETMARK uses the
/// XML and DOC table row counts); `extra_a`/`extra_b` are trusted payload
/// restored to the caller once the tokens match (NETMARK stores its next
/// node/document ids there, saving the id-recovery scan too).
struct SnapshotToken {
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t extra_a = 0;
  uint64_t extra_b = 0;
  bool Matches(const SnapshotToken& o) const { return a == o.a && b == o.b; }
};

/// A successfully loaded snapshot.
struct LoadedSnapshot {
  InvertedIndex index;
  SnapshotToken token;  ///< includes the restored extra payload
};

/// \brief Writes the index (atomically: temp file + rename) to `path`.
netmark::Status SaveIndexSnapshot(const InvertedIndex& index,
                                  const SnapshotToken& token,
                                  const std::string& path);

/// \brief Loads a snapshot. Fails with NotFound when the file is absent,
/// Corruption on format damage, and InvalidArgument ("stale snapshot") when
/// the stored a/b tokens differ from `expected`.
netmark::Result<LoadedSnapshot> LoadIndexSnapshot(const std::string& path,
                                                  const SnapshotToken& expected);

}  // namespace netmark::textindex

#endif  // NETMARK_TEXTINDEX_SNAPSHOT_H_
