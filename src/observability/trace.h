// Request-scoped tracing: a thread-safe tree of timed spans carried through
// the query path (NetmarkService -> XdbQuery -> Router -> Source ->
// HttpTransport) and the ingestion pipeline (watch -> upmark/parse ->
// insert).
//
// A Trace lives for one request (or one daemon sweep). Spans record wall
// time, an ok/error outcome, and key=value annotations; the tree is
// assembled from parent ids so concurrent fan-out workers can append spans
// without coordinating beyond the Trace mutex. Consumers take a Snapshot()
// and render it — as an XML <trace> annotation (`trace=1` XDB queries) or a
// structured slow-query log line.

#ifndef NETMARK_OBSERVABILITY_TRACE_H_
#define NETMARK_OBSERVABILITY_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace netmark::observability {

/// One finished (or in-flight) span. Ids are indices into the trace's span
/// list; parent == -1 marks a root.
struct SpanData {
  int id = -1;
  int parent = -1;
  std::string name;
  int64_t start_micros = 0;  ///< MonotonicMicros at StartSpan
  int64_t end_micros = 0;    ///< 0 while the span is still open
  bool ok = true;
  bool remote = false;  ///< grafted from another process's trace block; the
                        ///< timestamps are synthetic (duration-only)
  std::string note;  ///< error message (or extra detail) set at EndSpan
  std::vector<std::pair<std::string, std::string>> annotations;

  int64_t duration_micros() const {
    return end_micros == 0 ? 0 : end_micros - start_micros;
  }
  bool finished() const { return end_micros != 0; }
};

/// \brief One request's span tree. Thread-safe; shared with fan-out workers
/// via shared_ptr so a straggler outliving its query can still finish its
/// span (the snapshot taken at response time simply shows it unfinished).
class Trace {
 public:
  Trace() = default;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Opens a span; returns its id. parent = -1 for a root span.
  int StartSpan(std::string name, int parent = -1);
  /// Closes a span. `note` carries the error message when !ok.
  void EndSpan(int id, bool ok = true, std::string note = "");
  /// Attaches a key=value annotation to an open or closed span.
  void Annotate(int id, std::string key, std::string value);

  /// Records an already-measured span (accept-queue wait, request parse):
  /// the duration happened before the Trace existed, so the span is
  /// backdated to end now and start `duration_micros` earlier.
  int AddCompletedSpan(std::string name, int parent, int64_t duration_micros,
                       bool ok = true);

  /// Splices a remote subtree (spans parsed from another process's trace
  /// block) under `parent`. Foreign ids/parents are indices into `foreign`;
  /// they are renumbered into this trace, foreign roots re-parented to
  /// `parent`. Foreign timestamps are from another clock and kept only as
  /// durations (see SpanData::remote). Returns the id of the first grafted
  /// span, or -1 if `foreign` is empty.
  int Graft(int parent, const std::vector<SpanData>& foreign);

  /// W3C trace id (32 lowercase hex chars) shared across hops; empty until
  /// assigned by the service (inbound traceparent or freshly generated).
  void set_trace_id(std::string id);
  std::string trace_id() const;

  /// Copy of all spans recorded so far (ids == indices).
  std::vector<SpanData> Snapshot() const;

  /// Duration of span 0 (the conventional root) — the whole request when the
  /// root has ended, else time since it started.
  int64_t RootDurationMicros() const;

 private:
  mutable std::mutex mu_;
  std::string trace_id_;
  std::vector<SpanData> spans_;
};

/// \brief RAII span: starts on construction, ends (ok) at scope exit unless
/// explicitly ended first. A null trace makes every operation a no-op, so
/// call sites need no branching.
class ScopedSpan {
 public:
  ScopedSpan() = default;  // inert
  ScopedSpan(Trace* trace, std::string name, int parent = -1)
      : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->StartSpan(std::move(name), parent);
  }
  ~ScopedSpan() { End(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Span id for parenting children (-1 when inert).
  int id() const { return id_; }

  void Annotate(std::string key, std::string value) {
    if (trace_ != nullptr && !ended_) {
      trace_->Annotate(id_, std::move(key), std::move(value));
    }
  }

  /// Ends the span now (idempotent); the destructor then does nothing.
  void End(bool ok = true, std::string note = "") {
    if (trace_ != nullptr && !ended_) {
      trace_->EndSpan(id_, ok, std::move(note));
      ended_ = true;
    }
  }

 private:
  Trace* trace_ = nullptr;
  int id_ = -1;
  bool ended_ = false;
};

}  // namespace netmark::observability

#endif  // NETMARK_OBSERVABILITY_TRACE_H_
