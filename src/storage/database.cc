#include "storage/database.h"

#include <filesystem>

#include "common/string_util.h"
#include "common/temp_dir.h"
#include "storage/crash_point.h"

namespace netmark::storage {

namespace fs = std::filesystem;

netmark::Result<std::unique_ptr<Database>> Database::Open(
    const std::string& dir, const StorageOptions& options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return netmark::Status::IOError("cannot create database directory " + dir + ": " +
                                    ec.message());
  }
  std::unique_ptr<Database> db(new Database(dir, options));
  if (options.wal_enabled) {
    // Replay a crashed predecessor's committed transactions into the heap
    // files BEFORE any table is opened (Table::Open scans pages to rebuild
    // its B-trees, so it must see post-recovery bytes).
    NETMARK_ASSIGN_OR_RETURN(db->recovery_,
                             RecoverDatabase(dir, db->WalPath()));
    NETMARK_ASSIGN_OR_RETURN(db->wal_, Wal::Open(db->WalPath(), options.wal_fsync));
  }
  NETMARK_ASSIGN_OR_RETURN(db->catalog_, Catalog::Load(db->CatalogPath()));
  for (const TableDef& def : db->catalog_.tables()) {
    NETMARK_ASSIGN_OR_RETURN(
        std::unique_ptr<Table> table,
        Table::Open(def.schema, db->TableFilePath(def.schema.name()), def.indexes));
    db->tables_[def.schema.name()] = std::move(table);
  }
  // Opening a table marks pages dirty while rebuilding (none, normally) —
  // clear the capture sets so the first transaction logs only its own pages.
  for (auto& [name, table] : db->tables_) {
    (void)table->mutable_pager()->TakeDirtySinceMark();
  }
  // DDL counter survives restarts so assembly-cost benchmarks can account
  // full lifetimes.
  auto counter = netmark::ReadFile(db->DdlCounterPath());
  if (counter.ok()) {
    auto v = netmark::ParseInt64(*counter);
    if (v.ok()) db->ddl_statements_ = static_cast<uint64_t>(*v);
  }
  return db;
}

Database::~Database() { (void)Flush(); }

std::string Database::TableFilePath(std::string_view table) const {
  return (fs::path(dir_) / (std::string(table) + ".heap")).string();
}
std::string Database::CatalogPath() const {
  return (fs::path(dir_) / "catalog.nmk").string();
}
std::string Database::DdlCounterPath() const {
  return (fs::path(dir_) / "ddl_count.nmk").string();
}
std::string Database::WalPath() const {
  return (fs::path(dir_) / "wal.nmk").string();
}

netmark::Result<Table*> Database::CreateTable(TableSchema schema) {
  if (tables_.count(schema.name()) != 0) {
    return netmark::Status::AlreadyExists("table " + schema.name() + " exists");
  }
  std::string name = schema.name();
  NETMARK_RETURN_NOT_OK(catalog_.AddTable(schema));
  NETMARK_ASSIGN_OR_RETURN(std::unique_ptr<Table> table,
                           Table::Open(std::move(schema), TableFilePath(name)));
  Table* raw = table.get();
  tables_[name] = std::move(table);
  ++ddl_statements_;
  NETMARK_RETURN_NOT_OK(catalog_.Save(CatalogPath()));
  return raw;
}

netmark::Result<Table*> Database::GetTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return netmark::Status::NotFound("no table " + std::string(name));
  }
  return it->second.get();
}

netmark::Status Database::CreateIndex(std::string_view table,
                                      const std::string& index_name,
                                      const std::vector<std::string>& columns) {
  NETMARK_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  NETMARK_RETURN_NOT_OK(t->CreateIndex(index_name, columns));
  NETMARK_RETURN_NOT_OK(catalog_.AddIndex(table, IndexDef{index_name, columns}));
  ++ddl_statements_;
  return catalog_.Save(CatalogPath());
}

netmark::Status Database::DropTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return netmark::Status::NotFound("no table " + std::string(name));
  }
  tables_.erase(it);
  NETMARK_RETURN_NOT_OK(catalog_.RemoveTable(name));
  std::error_code ec;
  fs::remove(TableFilePath(name), ec);
  ++ddl_statements_;
  return catalog_.Save(CatalogPath());
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  for (const auto& [name, t] : tables_) out.push_back(name);
  return out;
}

netmark::Status Database::BeginTransaction() {
  if (wal_ == nullptr) return netmark::Status::OK();
  if (in_txn_) {
    return netmark::Status::Internal("transaction already open");
  }
  in_txn_ = true;
  return netmark::Status::OK();
}

netmark::Status Database::CommitTransaction() {
  if (wal_ == nullptr) return netmark::Status::OK();
  if (!in_txn_) {
    return netmark::Status::Internal("no transaction open");
  }
  in_txn_ = false;
  uint64_t txn = next_txn_id_++;
  for (auto& [name, table] : tables_) {
    Pager* pager = table->mutable_pager();
    for (PageId id : pager->TakeDirtySinceMark()) {
      NETMARK_ASSIGN_OR_RETURN(Page page, pager->Fetch(id));
      wal_->StagePageImage(txn, name, id, page.raw());
    }
  }
  return wal_->AppendCommit(txn);
}

void Database::AbandonTransaction() {
  if (wal_ == nullptr) return;
  in_txn_ = false;
  wal_->DiscardStaged();
  // Dirty-since-mark state intentionally survives: the abandoned pages hold
  // in-memory junk that must still be logged with the next commit, or a
  // later in-place write to those pages would be replayed over stale bytes.
}

bool Database::ShouldCheckpoint() const {
  return wal_ != nullptr && wal_->size_bytes() >= options_.checkpoint_bytes;
}

netmark::Status Database::Checkpoint() {
  if (wal_ == nullptr) return Flush();
  if (in_txn_) {
    return netmark::Status::Internal(
        "checkpoint refused: transaction open");
  }
  // Order matters: heap writes + fsync BEFORE the log shrinks, so a crash
  // anywhere in between still replays from the intact log.
  for (auto& [name, table] : tables_) {
    NETMARK_RETURN_NOT_OK(table->Flush());
    MaybeCrashPoint("checkpoint_after_flush");
    NETMARK_RETURN_NOT_OK(table->mutable_pager()->SyncToDisk());
  }
  NETMARK_RETURN_NOT_OK(catalog_.Save(CatalogPath()));
  NETMARK_RETURN_NOT_OK(
      netmark::WriteFileAtomic(DdlCounterPath(), std::to_string(ddl_statements_)));
  MaybeCrashPoint("checkpoint_before_truncate");
  NETMARK_RETURN_NOT_OK(wal_->TruncateAll());
  last_checkpoint_lsn_ = wal_->last_lsn();
  ++checkpoints_;
  return netmark::Status::OK();
}

netmark::Status Database::SyncWal() {
  if (wal_ == nullptr) return netmark::Status::OK();
  return wal_->BatchSync();
}

netmark::Status Database::Flush() {
  if (wal_ != nullptr && !in_txn_) return Checkpoint();
  for (auto& [name, table] : tables_) {
    NETMARK_RETURN_NOT_OK(table->Flush());
  }
  NETMARK_RETURN_NOT_OK(catalog_.Save(CatalogPath()));
  return netmark::WriteFileAtomic(DdlCounterPath(), std::to_string(ddl_statements_));
}

}  // namespace netmark::storage
