// Anomaly Tracking (paper Table 1, §3) — federated querying of two
// web-accessible anomaly databases, plus the capability-limited Lessons
// Learned server from §2.1.5.
//
// Topology (Fig 8): two live NETMARK HTTP servers each hold one center's
// anomaly reports; a content-search-only lessons source sits beside them.
// One declarative databank ties them together, and the thin router pushes
// down what each source supports, augmenting the rest.
//
// Run: ./build/examples/anomaly_tracking

#include <cstdio>
#include <cstdlib>

#include "common/temp_dir.h"
#include "core/netmark.h"
#include "federation/content_only_source.h"
#include "federation/remote_source.h"
#include "server/http_client.h"
#include "workload/corpus.h"
#include "xml/parser.h"

namespace {

void Check(const netmark::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(netmark::Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  auto dir = Unwrap(netmark::TempDir::Make("anomaly"), "temp dir");
  netmark::workload::CorpusGenerator gen(777);

  // --- Two remote anomaly databases, served over real HTTP ---------------
  std::vector<std::unique_ptr<netmark::Netmark>> centers;
  const char* center_names[] = {"johnson-anomalies", "marshall-anomalies"};
  for (int c = 0; c < 2; ++c) {
    netmark::NetmarkOptions options;
    options.data_dir = dir.Sub("center" + std::to_string(c)).string();
    auto nm = Unwrap(netmark::Netmark::Open(options), "open center");
    for (int i = 0; i < 6; ++i) {
      auto doc = gen.AnomalyReport(c * 100 + i);
      Unwrap(nm->IngestContent(doc.file_name, doc.content), "ingest report");
    }
    Check(nm->StartServer(), "start server");
    std::printf("%s serving %llu reports on 127.0.0.1:%u\n", center_names[c],
                static_cast<unsigned long long>(nm->store()->document_count()),
                nm->server_port());
    centers.push_back(std::move(nm));
  }

  // --- The Lessons Learned server: content search only --------------------
  auto lessons =
      std::make_shared<netmark::federation::ContentOnlySource>("lessons-learned");
  for (int i = 0; i < 8; ++i) {
    auto doc = gen.LessonLearned(i);
    auto parsed = Unwrap(netmark::xml::ParseXml(doc.content), "parse lesson");
    lessons->AddDocument(doc.file_name, parsed);
  }
  // One pinned entry so the augmentation walkthrough below always has a hit
  // (it is the paper's own example: Context=Title & Content=Engine).
  auto pinned = Unwrap(
      netmark::xml::ParseXml(
          "<document><context>Title</context>"
          "<content>Engine inspection lesson from STS-93</content>"
          "<context>Lesson</context>"
          "<content>Always borescope the engine nozzle between flights.</content>"
          "</document>"),
      "parse pinned lesson");
  lessons->AddDocument("lesson_engine.xml", pinned);
  std::printf("lessons-learned holds %zu entries (content search ONLY)\n\n",
              lessons->document_count());

  // --- The application: one databank declaration, zero schemas ------------
  netmark::NetmarkOptions options;
  options.data_dir = dir.Sub("app").string();
  auto app = Unwrap(netmark::Netmark::Open(options), "open app");
  for (int c = 0; c < 2; ++c) {
    Check(app->RegisterSource(std::make_shared<netmark::federation::RemoteSource>(
              center_names[c], std::make_unique<netmark::server::SocketTransport>(
                                   "127.0.0.1", centers[c]->server_port()))),
          "register remote");
  }
  Check(app->RegisterSource(lessons), "register lessons");
  Check(app->DefineDatabank(
            "anomalies", {"johnson-anomalies", "marshall-anomalies",
                          "lessons-learned"}),
        "define databank");

  // Query 1: every critical disposition, across both centers at once.
  std::printf("== Context=Disposition & Content=critical (both centers) ==\n");
  auto critical = Unwrap(
      app->QueryDatabankFederated("anomalies",
                                  "context=Disposition&content=critical"),
      "federated query");
  for (const auto& hit : critical.hits) {
    std::printf("  [%s] %s: %.70s\n", hit.source.c_str(), hit.file_name.c_str(),
                hit.text.c_str());
  }
  std::printf("  (%zu sources queried, %zu full push-down, %zu augmented,"
              " complete=%s)\n\n",
              critical.stats.sources_queried, critical.stats.pushed_down_full,
              critical.stats.augmented, critical.complete() ? "yes" : "no");

  // Query 2: the paper's augmentation walkthrough — Context=Title against
  // the lessons server, which can only run the Content part itself.
  std::printf("== Context=Title & Content=engine (lessons server augmented) ==\n");
  auto lessons_hits = Unwrap(
      app->QueryDatabankFederated("anomalies", "context=Title&content=engine"),
      "augmented query");
  for (const auto& hit : lessons_hits.hits) {
    std::printf("  [%s] %s -> %s\n", hit.source.c_str(), hit.file_name.c_str(),
                hit.text.c_str());
  }
  std::printf("  (%zu sources needed client-side augmentation)\n",
              lessons_hits.stats.augmented);
  for (const auto& outcome : lessons_hits.sources) {
    std::printf("  source %-18s %s after %d attempt(s)\n",
                outcome.source.c_str(),
                std::string(netmark::federation::SourceStateToString(outcome.state))
                    .c_str(),
                outcome.attempts);
  }

  for (auto& nm : centers) nm->StopServer();
  return 0;
}
