#include "baseline/gav_mediator.h"

#include <gtest/gtest.h>

#include "workload/query_workload.h"

namespace netmark::baseline {
namespace {

RecordSource SmallSource(const std::string& name, const std::string& attr) {
  RecordSource s;
  s.name = name;
  s.attributes = {attr, "division"};
  s.records = {{{attr, "v1"}, {"division", "Science"}},
               {{attr, "v2"}, {"division", "Safety"}}};
  return s;
}

TEST(PredicateTest, NumericAndLexicographic) {
  Record r = {{"score", "10"}, {"name", "beta"}};
  EXPECT_TRUE((Predicate{"score", Predicate::Op::kEq, "10"}.Eval(r)));
  EXPECT_FALSE((Predicate{"score", Predicate::Op::kLt, "9.5"}.Eval(r)));
  EXPECT_TRUE((Predicate{"score", Predicate::Op::kGt, "9.5"}.Eval(r)));
  EXPECT_TRUE((Predicate{"score", Predicate::Op::kLe, "10"}.Eval(r)));
  EXPECT_TRUE((Predicate{"name", Predicate::Op::kGe, "alpha"}.Eval(r)));
  EXPECT_TRUE((Predicate{"name", Predicate::Op::kNe, "gamma"}.Eval(r)));
  EXPECT_FALSE((Predicate{"missing", Predicate::Op::kEq, "x"}.Eval(r)));
}

TEST(GavMediatorTest, ArtifactsCountedPerSchemaViewAndMapping) {
  GavMediator mediator;
  EXPECT_EQ(mediator.artifacts_authored(), 0u);
  ASSERT_TRUE(mediator.RegisterSource(SmallSource("s1", "a")).ok());
  ASSERT_TRUE(mediator.RegisterSource(SmallSource("s2", "b")).ok());
  EXPECT_EQ(mediator.artifacts_authored(), 2u);

  GlobalView view;
  view.name = "v";
  view.attributes = {"x"};
  view.mappings = {SourceMapping{"s1", {{"x", "a"}}, {}},
                   SourceMapping{"s2", {{"x", "b"}}, {}}};
  ASSERT_TRUE(mediator.DefineView(view).ok());
  EXPECT_EQ(mediator.artifacts_authored(), 5u);  // 2 schemas + 1 view + 2 mappings
}

TEST(GavMediatorTest, SchemaEnforcement) {
  GavMediator mediator;
  RecordSource bad;
  bad.name = "bad";
  bad.attributes = {"declared"};
  bad.records = {{{"undeclared", "x"}}};
  EXPECT_TRUE(mediator.RegisterSource(bad).IsInvalidArgument());

  RecordSource no_schema;
  no_schema.name = "empty";
  EXPECT_TRUE(mediator.RegisterSource(no_schema).IsInvalidArgument());

  ASSERT_TRUE(mediator.RegisterSource(SmallSource("s", "a")).ok());
  EXPECT_TRUE(mediator.RegisterSource(SmallSource("s", "a")).IsAlreadyExists());
}

TEST(GavMediatorTest, ViewValidation) {
  GavMediator mediator;
  ASSERT_TRUE(mediator.RegisterSource(SmallSource("s", "a")).ok());
  GlobalView ghost;
  ghost.name = "g";
  ghost.attributes = {"x"};
  ghost.mappings = {SourceMapping{"nosuch", {{"x", "a"}}, {}}};
  EXPECT_TRUE(mediator.DefineView(ghost).IsNotFound());

  GlobalView unmapped;
  unmapped.name = "u";
  unmapped.attributes = {"x"};
  unmapped.mappings = {SourceMapping{"s", {}, {}}};
  EXPECT_TRUE(mediator.DefineView(unmapped).IsInvalidArgument());

  GlobalView badattr;
  badattr.name = "b";
  badattr.attributes = {"x"};
  badattr.mappings = {SourceMapping{"s", {{"x", "notdeclared"}}, {}}};
  EXPECT_TRUE(mediator.DefineView(badattr).IsInvalidArgument());
}

TEST(GavMediatorTest, TopEmployeesOfNasaExample) {
  // The paper's §4 walkthrough: three centers with heterogeneous rating
  // systems unified into one "Top Employees" view.
  GavMediator mediator;
  ASSERT_TRUE(
      mediator.RegisterSource(workload::EmployeeSource(1, "Ames", 50)).ok());
  ASSERT_TRUE(
      mediator.RegisterSource(workload::EmployeeSource(2, "Johnson", 50)).ok());
  ASSERT_TRUE(
      mediator.RegisterSource(workload::EmployeeSource(3, "Kennedy", 50)).ok());

  GlobalView top;
  top.name = "TopEmployees";
  top.attributes = {"name", "division"};
  top.mappings = {
      // Ames: performance_rating == excellent.
      SourceMapping{"Ames",
                    {{"name", "employee_name"}, {"division", "division"}},
                    {Predicate{"performance_rating", Predicate::Op::kEq,
                               "excellent"}}},
      // Johnson: score of 2 or better (numeric, lower is better).
      SourceMapping{"Johnson",
                    {{"name", "person"}, {"division", "division"}},
                    {Predicate{"score", Predicate::Op::kLe, "2"}}},
      // Kennedy: very good or better.
      SourceMapping{"Kennedy",
                    {{"name", "staff_member"}, {"division", "division"}},
                    {Predicate{"rating", Predicate::Op::kEq, "very good"},
                     }},
  };
  // Kennedy's "or better" needs a second filter alternative; model it as a
  // second mapping (GAV views are unions of conjunctive queries).
  top.mappings.push_back(
      SourceMapping{"Kennedy",
                    {{"name", "staff_member"}, {"division", "division"}},
                    {Predicate{"rating", Predicate::Op::kEq, "outstanding"}}});
  ASSERT_TRUE(mediator.DefineView(top).ok());

  auto all = mediator.Query("TopEmployees", {});
  ASSERT_TRUE(all.ok());
  EXPECT_GT(all->size(), 0u);
  for (const Record& r : *all) {
    EXPECT_EQ(r.count("name"), 1u);
    EXPECT_EQ(r.count("division"), 1u);
  }
  // Global predicates unfold onto every source.
  auto science = mediator.Query(
      "TopEmployees", {Predicate{"division", Predicate::Op::kEq, "Science"}});
  ASSERT_TRUE(science.ok());
  for (const Record& r : *science) {
    EXPECT_EQ(r.at("division"), "Science");
  }
  EXPECT_LT(science->size(), all->size());
  // The mediation machinery cost: 3 schemas + 1 view + 4 mappings.
  EXPECT_EQ(mediator.artifacts_authored(), 8u);
}

TEST(GavMediatorTest, QueryUnknownViewFails) {
  GavMediator mediator;
  EXPECT_TRUE(mediator.Query("nope", {}).status().IsNotFound());
  EXPECT_TRUE(mediator.QuerySource("nope", {}).status().IsNotFound());
}

TEST(GavMediatorTest, ResultsCarrySourceProvenance) {
  GavMediator mediator;
  ASSERT_TRUE(mediator.RegisterSource(SmallSource("s1", "a")).ok());
  GlobalView view;
  view.name = "v";
  view.attributes = {"x"};
  view.mappings = {SourceMapping{"s1", {{"x", "a"}}, {}}};
  ASSERT_TRUE(mediator.DefineView(view).ok());
  auto rows = mediator.Query("v", {});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].at("_source"), "s1");
  EXPECT_EQ((*rows)[0].at("x"), "v1");
}

}  // namespace
}  // namespace netmark::baseline
