// Fuzz-style robustness for the tolerant SGML parser and entity decoder:
// arbitrary byte soup must never crash and, in HTML mode, must always yield
// a document; parse→serialize→parse must then be a fixpoint.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "xml/entities.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace netmark::xml {
namespace {

std::string RandomMarkupSoup(netmark::Rng* rng, size_t len) {
  // Bias toward markup-relevant characters so structures actually form.
  static const std::string kChars =
      "<><>///!?=\"' abcdefgij&;#xAB0123-_\n\tspanbdivh1h2li&amp;&lt;<!--]]>";
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out += kChars[rng->Uniform(kChars.size())];
  }
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, HtmlModeAlwaysProducesADocument) {
  netmark::Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup = RandomMarkupSoup(&rng, 1 + rng.Uniform(400));
    auto doc = ParseHtml(soup);
    ASSERT_TRUE(doc.ok()) << "html mode must tolerate: " << soup << "\n"
                          << doc.status().ToString();
    // And serialization of whatever came out must itself re-parse cleanly.
    std::string serialized = Serialize(*doc);
    auto again = ParseXml(serialized);
    ASSERT_TRUE(again.ok()) << "serialized form must be well-formed XML: "
                            << serialized;
    EXPECT_TRUE(Document::SubtreeEquals(*doc, doc->root(), *again, again->root()))
        << serialized;
  }
}

TEST_P(ParserFuzzTest, StrictModeNeverCrashesOnSoup) {
  netmark::Rng rng(GetParam() * 7 + 1);
  size_t accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup = RandomMarkupSoup(&rng, 1 + rng.Uniform(400));
    auto doc = ParseXml(soup);  // ok() or clean error; either is fine
    if (doc.ok()) accepted += doc->size();
  }
  // No assertion beyond "did not crash"; keep the work observable.
  SUCCEED() << accepted;
}

TEST_P(ParserFuzzTest, EntityDecoderTotalOnRandomBytes) {
  netmark::Rng rng(GetParam() * 31 + 5);
  for (int trial = 0; trial < 300; ++trial) {
    size_t len = rng.Uniform(200);
    std::string bytes;
    for (size_t i = 0; i < len; ++i) {
      bytes += static_cast<char>(rng.Uniform(256));
    }
    std::string decoded = DecodeEntities(bytes);
    EXPECT_LE(decoded.size(), bytes.size() * 4 + 4);
    // Escape/decode round trip on the same randomness.
    EXPECT_EQ(DecodeEntities(EscapeText(bytes)), bytes);
    EXPECT_EQ(DecodeEntities(EscapeAttribute(bytes)), bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Values(3, 33, 333));

}  // namespace
}  // namespace netmark::xml
