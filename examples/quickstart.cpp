// Quickstart: the 60-second tour of the NETMARK public API.
//
//   1. Open an instance.
//   2. Drop heterogeneous documents in (text, markdown, HTML).
//   3. Ask context / content / combined XDB queries.
//   4. Compose results into a new document with XSLT.
//
// Run: ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "common/temp_dir.h"
#include "core/netmark.h"

namespace {

void Check(const netmark::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(netmark::Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  auto dir = Unwrap(netmark::TempDir::Make("quickstart"), "temp dir");
  netmark::NetmarkOptions options;
  options.data_dir = dir.Sub("data").string();
  auto nm = Unwrap(netmark::Netmark::Open(options), "open");

  // --- 1. Ingest: three formats, zero schema work -------------------------
  Unwrap(nm->IngestContent("status.txt",
                           "MISSION STATUS\n"
                           "The shuttle engine review completed on schedule.\n"
                           "\n"
                           "TECHNOLOGY GAP\n"
                           "The avionics technology gap is shrinking rapidly.\n"),
         "ingest txt");
  Unwrap(nm->IngestContent("notes.md",
                           "# Mission Status\n\n"
                           "Ground telemetry shows **green** across the board.\n"),
         "ingest md");
  Unwrap(nm->IngestContent(
             "review.html",
             "<html><h1>Technology Gap</h1>"
             "<p>Flight software closes the gap with rapid iteration.</p></html>"),
         "ingest html");

  std::printf("ingested %llu documents, %llu nodes, %zu index terms\n\n",
              static_cast<unsigned long long>(nm->store()->document_count()),
              static_cast<unsigned long long>(nm->store()->node_count()),
              nm->store()->text_index().num_terms());

  // --- 2. Context search: pull the same-named section from every document -
  std::printf("== Context=Technology Gap ==\n");
  for (const auto& hit : Unwrap(nm->Query("context=Technology+Gap"), "query")) {
    std::printf("  [%s] %s: %s\n", hit.file_name.c_str(), hit.heading.c_str(),
                hit.text.c_str());
  }

  // --- 3. Content search: which documents mention a term anywhere? --------
  std::printf("\n== Content=telemetry ==\n");
  for (const auto& hit : Unwrap(nm->Query("content=telemetry"), "query")) {
    std::printf("  document #%lld (%s)\n", static_cast<long long>(hit.doc_id),
                hit.file_name.c_str());
  }

  // --- 4. Combined: sections titled X that mention Y ----------------------
  std::printf("\n== Context=Technology Gap & Content=shrinking ==\n");
  for (const auto& hit :
       Unwrap(nm->Query("context=Technology+Gap&content=shrinking"), "query")) {
    std::printf("  [%s] %s\n", hit.file_name.c_str(), hit.text.c_str());
  }

  // --- 5. Compose a brand-new document from the hits with XSLT ------------
  const char* stylesheet =
      "<xsl:stylesheet>"
      "<xsl:template match=\"/\">"
      "<briefing title=\"Technology Gap roundup\">"
      "<xsl:for-each select=\"results/result\">"
      "<xsl:sort select=\"@doc\"/>"
      "<item from=\"{@doc}\"><xsl:value-of select=\"content\"/></item>"
      "</xsl:for-each>"
      "</briefing>"
      "</xsl:template>"
      "</xsl:stylesheet>";
  std::printf("\n== XSLT-composed briefing ==\n%s\n",
              Unwrap(nm->QueryAndTransform("context=Technology+Gap", stylesheet),
                     "transform")
                  .c_str());
  return 0;
}
