#include "baseline/shredding_store.h"

#include <algorithm>

#include "common/string_util.h"

namespace netmark::baseline {

using storage::ColumnSchema;
using storage::IndexKey;
using storage::Row;
using storage::RowId;
using storage::TableSchema;
using storage::Value;
using storage::ValueType;

namespace {

// Shredded element/text row columns (same layout in every per-tag table).
enum ShredColumn : size_t {
  kDocId = 0,
  kElemId = 1,
  kParentId = 2,
  kTag = 3,
  kAttrs = 4,
  kText = 5,
};

TableSchema ShredSchema(const std::string& table_name) {
  return TableSchema(table_name,
                     {
                         ColumnSchema{"DOC_ID", ValueType::kInt64, false},
                         ColumnSchema{"ELEM_ID", ValueType::kInt64, false},
                         ColumnSchema{"PARENT_ID", ValueType::kInt64, false},
                         ColumnSchema{"TAG", ValueType::kString, false},
                         ColumnSchema{"ATTRS", ValueType::kString, true},
                         ColumnSchema{"TEXT", ValueType::kString, true},
                     });
}

constexpr const char* kDocsTable = "shred_docs";

}  // namespace

std::string SanitizeTag(std::string_view tag) {
  std::string out;
  out.reserve(tag.size());
  for (char c : tag) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      out += '_';
    }
  }
  if (out.empty()) out = "tag";
  return out;
}

std::string ShreddingStore::TableNameFor(const std::string& type,
                                         const std::string& tag) {
  return "S_" + SanitizeTag(type) + "__" + SanitizeTag(tag);
}

netmark::Result<std::unique_ptr<ShreddingStore>> ShreddingStore::Open(
    const std::string& dir) {
  NETMARK_ASSIGN_OR_RETURN(std::unique_ptr<storage::Database> db,
                           storage::Database::Open(dir));
  std::unique_ptr<ShreddingStore> store(new ShreddingStore(std::move(db)));
  NETMARK_RETURN_NOT_OK(store->EnsureCatalogTables());
  // Recover known tags and the doc-id counter.
  for (const std::string& table : store->db_->TableNames()) {
    if (!netmark::StartsWith(table, "S_")) continue;
    size_t sep = table.find("__");
    if (sep == std::string::npos) continue;
    store->known_tags_[table.substr(2, sep - 2)].insert(table.substr(sep + 2));
  }
  NETMARK_RETURN_NOT_OK(store->docs_table_->Scan(
      [&](RowId, const Row& row) -> netmark::Status {
        store->next_doc_id_ = std::max(store->next_doc_id_, row[0].AsInt() + 1);
        return netmark::Status::OK();
      }));
  return store;
}

netmark::Status ShreddingStore::EnsureCatalogTables() {
  if (!db_->HasTable(kDocsTable)) {
    NETMARK_RETURN_NOT_OK(
        db_->CreateTable(
               TableSchema(kDocsTable,
                           {
                               ColumnSchema{"DOC_ID", ValueType::kInt64, false},
                               ColumnSchema{"TYPE", ValueType::kString, false},
                               ColumnSchema{"FILE_NAME", ValueType::kString, false},
                           }))
            .status());
    NETMARK_RETURN_NOT_OK(db_->CreateIndex(kDocsTable, "shred_docs_by_id", {"DOC_ID"}));
  }
  NETMARK_ASSIGN_OR_RETURN(docs_table_, db_->GetTable(kDocsTable));
  return netmark::Status::OK();
}

netmark::Result<storage::Table*> ShreddingStore::EnsureTagTable(
    const std::string& type, const std::string& tag) {
  std::string table_name = TableNameFor(type, tag);
  if (!db_->HasTable(table_name)) {
    // The DDL the schema-centric design pays per element type.
    NETMARK_RETURN_NOT_OK(db_->CreateTable(ShredSchema(table_name)).status());
    NETMARK_RETURN_NOT_OK(
        db_->CreateIndex(table_name, table_name + "_by_doc", {"DOC_ID", "ELEM_ID"}));
    known_tags_[SanitizeTag(type)].insert(SanitizeTag(tag));
  }
  return db_->GetTable(table_name);
}

netmark::Result<int64_t> ShreddingStore::InsertDocument(
    const xml::Document& doc, const xmlstore::DocumentInfo& info) {
  xml::NodeId root = doc.DocumentElement();
  if (root == xml::kInvalidNode) {
    return netmark::Status::InvalidArgument("document has no root element");
  }
  std::string type = doc.name(root);
  int64_t doc_id = next_doc_id_++;
  NETMARK_RETURN_NOT_OK(docs_table_
                            ->Insert({Value::Int(doc_id), Value::Str(type),
                                      Value::Str(info.file_name)})
                            .status());

  // Shred: pre-order walk; elements go to their tag table, text/cdata rows
  // to the per-type "#text" table.
  struct Frame {
    xml::NodeId node;
    int64_t parent_elem;
  };
  std::vector<Frame> stack;
  std::vector<xml::NodeId> top = doc.Children(doc.root());
  for (auto it = top.rbegin(); it != top.rend(); ++it) stack.push_back({*it, 0});
  int64_t next_elem = 1;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    xml::NodeKind kind = doc.kind(f.node);
    if (kind != xml::NodeKind::kElement && kind != xml::NodeKind::kText &&
        kind != xml::NodeKind::kCData) {
      continue;  // baseline drops comments/PIs (it is a caricature, but a fair one)
    }
    int64_t elem_id = next_elem++;
    std::string tag =
        kind == xml::NodeKind::kElement ? doc.name(f.node) : "#text";
    NETMARK_ASSIGN_OR_RETURN(storage::Table * table, EnsureTagTable(type, tag));
    Row row;
    row.push_back(Value::Int(doc_id));
    row.push_back(Value::Int(elem_id));
    row.push_back(Value::Int(f.parent_elem));
    row.push_back(Value::Str(tag));
    if (kind == xml::NodeKind::kElement) {
      std::string attrs = xmlstore::EncodeAttributes(doc.attributes(f.node));
      row.push_back(attrs.empty() ? Value::Null() : Value::Str(attrs));
      row.push_back(Value::Null());
    } else {
      row.push_back(Value::Null());
      row.push_back(Value::Str(doc.data(f.node)));
    }
    NETMARK_RETURN_NOT_OK(table->Insert(row).status());
    if (kind == xml::NodeKind::kElement) {
      std::vector<xml::NodeId> kids = doc.Children(f.node);
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stack.push_back({*it, elem_id});
      }
    }
  }
  return doc_id;
}

netmark::Result<xml::Document> ShreddingStore::Reconstruct(int64_t doc_id) {
  // Find the type.
  NETMARK_ASSIGN_OR_RETURN(
      std::vector<RowId> doc_rows,
      docs_table_->IndexLookup("shred_docs_by_id", IndexKey{Value::Int(doc_id)}));
  if (doc_rows.empty()) {
    return netmark::Status::NotFound("no shredded document " + std::to_string(doc_id));
  }
  NETMARK_ASSIGN_OR_RETURN(Row doc_row, docs_table_->Get(doc_rows[0]));
  std::string type = SanitizeTag(doc_row[1].AsStr());

  // Gather rows from every table of this type — the reassembly join the
  // shredding design pays at read time.
  struct Shred {
    int64_t elem_id;
    int64_t parent;
    std::string tag;
    std::string attrs;
    std::string text;
    bool is_text;
  };
  std::vector<Shred> shreds;
  auto it = known_tags_.find(type);
  if (it == known_tags_.end()) {
    return netmark::Status::Corruption("no tables for type " + type);
  }
  for (const std::string& tag : it->second) {
    std::string table_name = "S_" + type + "__" + tag;
    NETMARK_ASSIGN_OR_RETURN(storage::Table * table, db_->GetTable(table_name));
    NETMARK_ASSIGN_OR_RETURN(
        std::vector<RowId> rows,
        table->IndexPrefix(table_name + "_by_doc", IndexKey{Value::Int(doc_id)}));
    for (RowId rid : rows) {
      NETMARK_ASSIGN_OR_RETURN(Row row, table->Get(rid));
      Shred s;
      s.elem_id = row[kElemId].AsInt();
      s.parent = row[kParentId].AsInt();
      s.tag = row[kTag].AsStr();
      s.is_text = s.tag == "#text";
      if (!row[kAttrs].is_null()) s.attrs = row[kAttrs].AsStr();
      if (!row[kText].is_null()) s.text = row[kText].AsStr();
      shreds.push_back(std::move(s));
    }
  }
  std::sort(shreds.begin(), shreds.end(),
            [](const Shred& a, const Shred& b) { return a.elem_id < b.elem_id; });

  xml::Document out;
  std::map<int64_t, xml::NodeId> by_elem;
  for (const Shred& s : shreds) {
    xml::NodeId parent = s.parent == 0 ? out.root() : by_elem.at(s.parent);
    xml::NodeId node;
    if (s.is_text) {
      node = out.CreateText(s.text);
    } else {
      node = out.CreateElement(s.tag);
      auto attrs = xmlstore::DecodeAttributes(s.attrs);
      if (attrs.ok()) {
        for (xml::Attribute& a : *attrs) {
          out.AddAttribute(node, std::move(a.name), std::move(a.value));
        }
      }
    }
    out.AppendChild(parent, node);
    by_elem[s.elem_id] = node;
  }
  return out;
}

uint64_t ShreddingStore::document_count() const { return docs_table_->row_count(); }

size_t ShreddingStore::table_count() const {
  size_t count = 0;
  for (const std::string& table : db_->TableNames()) {
    if (netmark::StartsWith(table, "S_")) ++count;
  }
  return count;
}

}  // namespace netmark::baseline
