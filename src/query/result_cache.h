// Epoch-invalidated XDB result cache.
//
// Production NETMARK traffic is read-heavy and repetitive: the same
// `Context=X&Content=Y` URLs arrive over and over. This cache memoizes
// executed hit lists keyed by (canonical query string, store commit epoch).
// The epoch is part of the key, so invalidation needs no locking at all: a
// committed mutation bumps the store's commit epoch, every subsequent
// lookup carries the new epoch, and the stale entries simply become
// unreachable until LRU pressure reclaims them.
//
// One cache serves exactly one store — the epoch sequence is the store's.
// Sharing a cache across stores would alias (query, epoch) keys between
// unrelated data sets and serve wrong results.
//
// Thread safety: all methods are safe for concurrent use (one mutex; the
// critical sections are map lookups and list splices, no query execution
// happens under the lock).

#ifndef NETMARK_QUERY_RESULT_CACHE_H_
#define NETMARK_QUERY_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "observability/metrics.h"
#include "query/query_hit.h"

namespace netmark::query {

/// Result-cache sizing knobs (the `[query]` INI section).
struct ResultCacheOptions {
  /// Maximum cached result lists (`cache_entries`; 0 disables).
  size_t max_entries = 1024;
  /// Maximum bytes across cached hits + keys (`cache_bytes`; 0 disables).
  size_t max_bytes = 8 * 1024 * 1024;
  /// Master switch (`cache_enabled`).
  bool enabled = true;
};

/// \brief LRU, byte-bounded cache of executed XDB results.
class QueryResultCache {
 public:
  using HitsPtr = std::shared_ptr<const std::vector<QueryHit>>;

  explicit QueryResultCache(ResultCacheOptions options = ResultCacheOptions())
      : options_(options) {}

  /// Replaces the sizing options and clears the cache. Call before traffic
  /// (or accept a cold cache mid-flight — correctness is unaffected).
  void Configure(ResultCacheOptions options);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// The cached hits for `canonical_query` executed at `epoch`, or null.
  /// Counts one hit or one miss.
  HitsPtr Lookup(std::string_view canonical_query, uint64_t epoch);

  /// Caches `hits` for (`canonical_query`, `epoch`). Entries larger than
  /// the byte bound are not cached; otherwise LRU entries are evicted until
  /// the entry and byte bounds hold.
  void Insert(std::string_view canonical_query, uint64_t epoch, HitsPtr hits);

  /// Drops every entry (sizing options stay).
  void Clear();

  /// Point-in-time statistics (counters are cumulative since construction).
  struct Snapshot {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
    /// hits / (hits + misses), 0 when no lookups yet.
    double hit_ratio = 0;
  };
  Snapshot snapshot() const;

  /// Publishes netmark_query_cache_{hits,misses,evictions}_total counters
  /// and netmark_query_cache_{entries,bytes} gauges on `registry`. Call
  /// before traffic; handles are read-only afterwards.
  void BindMetrics(observability::MetricsRegistry* registry);

 private:
  struct Entry {
    std::string key;  // canonical query + '\x1f' + epoch digits
    HitsPtr hits;
    size_t bytes = 0;
  };

  static std::string MakeKey(std::string_view canonical_query, uint64_t epoch);
  static size_t EntryBytes(const Entry& entry);
  /// mu_ held: pops LRU entries until the bounds hold.
  void EvictLocked();
  /// mu_ held: pushes entry/byte gauges after a mutation.
  void PublishGaugesLocked();

  mutable std::mutex mu_;
  ResultCacheOptions options_;
  /// Mirrors options_.enabled so the executor's fast-path check takes no
  /// lock.
  std::atomic<bool> enabled_{true};
  /// Most-recently-used first.
  std::list<Entry> lru_;
  std::map<std::string, std::list<Entry>::iterator, std::less<>> index_;
  size_t bytes_ = 0;
  uint64_t hit_count_ = 0;
  uint64_t miss_count_ = 0;
  uint64_t insert_count_ = 0;
  uint64_t evict_count_ = 0;

  struct MetricHandles {
    observability::Counter* hits = nullptr;
    observability::Counter* misses = nullptr;
    observability::Counter* evictions = nullptr;
    observability::Gauge* entries = nullptr;
    observability::Gauge* bytes = nullptr;
  } handles_;
};

}  // namespace netmark::query

#endif  // NETMARK_QUERY_RESULT_CACHE_H_
