// Markdown upmark converter: explicit `#` headings, paragraph blocks,
// `**bold**`/`*italic*` emphasis (INTENSE), `-` lists, fenced code blocks.

#ifndef NETMARK_CONVERT_MARKDOWN_CONVERTER_H_
#define NETMARK_CONVERT_MARKDOWN_CONVERTER_H_

#include "convert/converter.h"

namespace netmark::convert {

/// \brief Converts `.md` documents.
class MarkdownConverter : public Converter {
 public:
  std::string_view format() const override { return "md"; }
  std::vector<std::string_view> extensions() const override {
    return {"md", "markdown"};
  }
  bool Sniff(std::string_view content) const override;
  netmark::Result<xml::Document> Convert(std::string_view content,
                                         const ConvertContext& ctx) const override;
};

}  // namespace netmark::convert

#endif  // NETMARK_CONVERT_MARKDOWN_CONVERTER_H_
