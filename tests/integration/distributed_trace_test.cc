// Distributed tracing across live HTTP hops: one W3C trace id covers the
// mediator and the remote it fans out to, the remote's span subtree comes
// back grafted under the mediator's source:* span, and a fan-out worker
// that outlives its query leaves an unfinished="true" span behind.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "core/netmark.h"
#include "federation/remote_source.h"
#include "federation/source.h"
#include "observability/trace.h"
#include "server/http_client.h"
#include "workload/corpus.h"
#include "xml/parser.h"

namespace netmark {
namespace {

/// A source that leaves a span running when it returns — the trace-side
/// signature of a straggling fan-out worker.
class StragglerSource : public federation::Source {
 public:
  const std::string& name() const override { return name_; }
  federation::Capabilities capabilities() const override {
    return federation::Capabilities::Full();
  }
  using federation::Source::Execute;
  Result<std::vector<federation::FederatedHit>> Execute(
      const query::XdbQuery& query, const federation::CallContext& ctx) override {
    (void)query;
    if (ctx.trace != nullptr) {
      ctx.trace->StartSpan("fetch", ctx.span);  // never ended on purpose
    }
    return std::vector<federation::FederatedHit>{};
  }

 private:
  std::string name_ = "laggard";
};

/// Depth-first search for a <span name="..."> element.
xml::NodeId FindSpan(const xml::Document& doc, xml::NodeId node,
                     const std::string& name) {
  for (xml::NodeId child : doc.ChildElements(node)) {
    if (doc.name(child) == "span" && doc.GetAttribute(child, "name") == name) {
      return child;
    }
    xml::NodeId found = FindSpan(doc, child, name);
    if (found != xml::kInvalidNode) return found;
  }
  return xml::kInvalidNode;
}

class DistributedTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("disttrace");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));

    // The remote NETMARK instance serving real documents over HTTP.
    workload::CorpusGenerator gen(555);
    NetmarkOptions remote_options;
    remote_options.data_dir = dir_->Sub("remote").string();
    auto remote = Netmark::Open(remote_options);
    ASSERT_TRUE(remote.ok());
    remote_ = std::move(*remote);
    for (int i = 0; i < 3; ++i) {
      auto doc = gen.AnomalyReport(i);
      ASSERT_TRUE(remote_->IngestContent(doc.file_name, doc.content).ok());
    }
    ASSERT_TRUE(remote_->StartServer().ok());

    // The mediator fans out to it through a databank.
    NetmarkOptions options;
    options.data_dir = dir_->Sub("mediator").string();
    auto nm = Netmark::Open(options);
    ASSERT_TRUE(nm.ok());
    mediator_ = std::move(*nm);
    ASSERT_TRUE(mediator_
                    ->RegisterSource(std::make_shared<federation::RemoteSource>(
                        "anomaly-db", std::make_unique<server::SocketTransport>(
                                          "127.0.0.1", remote_->server_port())))
                    .ok());
    ASSERT_TRUE(mediator_->DefineDatabank("anomalies", {"anomaly-db"}).ok());
    ASSERT_TRUE(mediator_->StartServer().ok());
  }

  void TearDown() override {
    mediator_->StopServer();
    remote_->StopServer();
  }

  /// Runs a federated query on the mediator over real HTTP and returns the
  /// trace id its response advertised.
  std::string TracedQuery(const std::string& query) {
    server::HttpClient client("127.0.0.1", mediator_->server_port());
    auto resp = client.Get("/xdb?" + query);
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    if (!resp.ok()) return "";
    EXPECT_EQ(resp->status, 200) << resp->body;
    return resp->headers["X-Netmark-Trace-Id"];
  }

  Result<xml::Document> FetchTraceXml(int port, const std::string& id) {
    server::HttpClient client("127.0.0.1", port);
    auto resp = client.Get("/traces?id=" + id + "&format=xml");
    if (!resp.ok()) return resp.status();
    if (resp->status != 200) {
      return Status::NotFound("GET /traces?id= -> " +
                              std::to_string(resp->status));
    }
    return xml::ParseXml(resp->body);
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Netmark> remote_;
  std::unique_ptr<Netmark> mediator_;
};

TEST_F(DistributedTraceTest, OneTraceIdStitchesBothProcesses) {
  const std::string id =
      TracedQuery("context=Anomaly+Description&databank=anomalies");
  ASSERT_EQ(id.size(), 32u) << "mediator did not advertise a trace id";

  // The mediator retained the stitched tree: its own fan-out spans with the
  // remote's subtree grafted (remote="true") under source:anomaly-db.
  auto doc = FetchTraceXml(mediator_->server_port(), id);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  xml::NodeId root = doc->DocumentElement();
  EXPECT_EQ(doc->name(root), "netmark-trace");
  EXPECT_EQ(doc->GetAttribute(root, "id"), id);
  xml::NodeId source = FindSpan(*doc, root, "source:anomaly-db");
  ASSERT_NE(source, xml::kInvalidNode) << "no source span in mediator trace";
  // The grafted remote root keeps its name and carries the remote marker,
  // nested directly under the local source span.
  xml::NodeId remote_root = FindSpan(*doc, source, "xdb");
  ASSERT_NE(remote_root, xml::kInvalidNode) << "remote subtree not grafted";
  EXPECT_EQ(doc->GetAttribute(remote_root, "remote"), "true");
  EXPECT_NE(FindSpan(*doc, remote_root, "execute"), xml::kInvalidNode)
      << "remote subtree lost its children";

  // The remote retained the *same* trace id: its half of the request is
  // independently inspectable on its own /traces endpoint.
  auto remote_doc = FetchTraceXml(remote_->server_port(), id);
  ASSERT_TRUE(remote_doc.ok())
      << "remote did not retain the propagated trace: "
      << remote_doc.status().ToString();
  xml::NodeId remote_view = remote_doc->DocumentElement();
  EXPECT_EQ(remote_doc->GetAttribute(remote_view, "id"), id);
  xml::NodeId remote_xdb = FindSpan(*remote_doc, remote_view, "xdb");
  ASSERT_NE(remote_xdb, xml::kInvalidNode);
  // On its own instance those spans are local, not remote.
  EXPECT_EQ(remote_doc->GetAttribute(remote_xdb, "remote"), "");

  // And the listing on the remote names the shared id too.
  server::HttpClient remote_client("127.0.0.1", remote_->server_port());
  auto listing = remote_client.Get("/traces");
  ASSERT_TRUE(listing.ok());
  EXPECT_NE(listing->body.find("\"id\":\"" + id + "\""), std::string::npos)
      << listing->body;
}

TEST_F(DistributedTraceTest, StragglerSpanSurfacesAsUnfinished) {
  ASSERT_TRUE(mediator_->RegisterSource(std::make_shared<StragglerSource>()).ok());
  ASSERT_TRUE(
      mediator_->DefineDatabank("mixed", {"anomaly-db", "laggard"}).ok());

  const std::string id =
      TracedQuery("context=Anomaly+Description&databank=mixed");
  ASSERT_EQ(id.size(), 32u);

  auto doc = FetchTraceXml(mediator_->server_port(), id);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  xml::NodeId root = doc->DocumentElement();
  xml::NodeId laggard = FindSpan(*doc, root, "source:laggard");
  ASSERT_NE(laggard, xml::kInvalidNode);
  xml::NodeId fetch = FindSpan(*doc, laggard, "fetch");
  ASSERT_NE(fetch, xml::kInvalidNode);
  EXPECT_EQ(doc->GetAttribute(fetch, "unfinished"), "true")
      << "the never-ended span must render as unfinished";
  // The healthy source is unaffected by its straggling sibling.
  EXPECT_NE(FindSpan(*doc, root, "source:anomaly-db"), xml::kInvalidNode);
}

}  // namespace
}  // namespace netmark
