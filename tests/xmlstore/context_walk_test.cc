#include "xmlstore/context_walk.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "xml/parser.h"

namespace netmark::xmlstore {
namespace {

// Flat HTML-style layout: headings are siblings of their content.
constexpr const char* kFlatDoc =
    "<html>"
    "<h1>Introduction</h1>"
    "<p>Seamless integrated access is a challenge.</p>"
    "<p>Middleware technology requires investment.</p>"
    "<h1>Technology Gap</h1>"
    "<p>The technology gap is shrinking rapidly.</p>"
    "<h1>Conclusions</h1>"
    "<p>We presented a framework.</p>"
    "</html>";

class ContextWalkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("ctxwalk");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    auto store = XmlStore::Open(dir_->str());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    auto doc = xml::ParseXml(kFlatDoc);
    ASSERT_TRUE(doc.ok());
    DocumentInfo info;
    info.file_name = "flat.html";
    auto id = store_->InsertDocument(*doc, info);
    ASSERT_TRUE(id.ok());
    doc_id_ = *id;
  }

  // RowId of the unique text node containing `term`.
  storage::RowId Hit(const std::string& term) {
    auto hits = store_->TextLookup(term);
    EXPECT_EQ(hits.size(), 1u) << term;
    return hits.empty() ? storage::kInvalidRowId : hits[0];
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<XmlStore> store_;
  int64_t doc_id_ = 0;
};

TEST_F(ContextWalkTest, FindsGoverningHeadingForBodyText) {
  auto ctx = FindGoverningContext(*store_, Hit("shrinking"));
  ASSERT_TRUE(ctx.ok());
  ASSERT_TRUE(ctx->valid());
  auto heading = store_->SubtreeText(*ctx);
  ASSERT_TRUE(heading.ok());
  EXPECT_EQ(*heading, "Technology Gap");
}

TEST_F(ContextWalkTest, HeadingTextResolvesToItsOwnContext) {
  // A hit inside the heading itself governs to that heading.
  auto ctx = FindGoverningContext(*store_, Hit("conclusions"));
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ(*store_->SubtreeText(*ctx), "Conclusions");
}

TEST_F(ContextWalkTest, EarlierSectionResolved) {
  auto ctx = FindGoverningContext(*store_, Hit("middleware"));
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ(*store_->SubtreeText(*ctx), "Introduction");
}

TEST_F(ContextWalkTest, TextBeforeAnyHeadingHasNoContext) {
  auto doc = xml::ParseXml("<d><p>preamble words</p><h1>First</h1><p>body</p></d>");
  ASSERT_TRUE(doc.ok());
  DocumentInfo info;
  info.file_name = "pre.xml";
  ASSERT_TRUE(store_->InsertDocument(*doc, info).ok());
  auto ctx = FindGoverningContext(*store_, Hit("preamble"));
  ASSERT_TRUE(ctx.ok());
  EXPECT_FALSE(ctx->valid());
}

TEST_F(ContextWalkTest, IndexWalkAgreesWithRowidWalk) {
  for (const char* term : {"shrinking", "middleware", "seamless", "framework",
                           "introduction", "presented"}) {
    auto via_rowid = FindGoverningContext(*store_, Hit(term));
    auto via_index = FindGoverningContextViaIndex(*store_, Hit(term));
    ASSERT_TRUE(via_rowid.ok()) << term;
    ASSERT_TRUE(via_index.ok()) << term;
    EXPECT_EQ(*via_rowid, *via_index) << term;
  }
}

TEST_F(ContextWalkTest, SectionContentStopsAtNextHeading) {
  auto ctx = FindGoverningContext(*store_, Hit("seamless"));
  ASSERT_TRUE(ctx.ok());
  auto content = SectionContent(*store_, *ctx);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), 2u);  // the two <p> of Introduction
  auto text = SectionText(*store_, *ctx);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Seamless"), std::string::npos);
  EXPECT_NE(text->find("Middleware"), std::string::npos);
  EXPECT_EQ(text->find("shrinking"), std::string::npos);  // next section excluded
}

TEST_F(ContextWalkTest, LastSectionRunsToEnd) {
  auto ctx = FindGoverningContext(*store_, Hit("framework"));
  ASSERT_TRUE(ctx.ok());
  auto content = SectionContent(*store_, *ctx);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), 1u);
}

TEST_F(ContextWalkTest, SectionContentRejectsNonContextNode) {
  EXPECT_TRUE(SectionContent(*store_, Hit("shrinking")).status().IsInvalidArgument());
}

TEST_F(ContextWalkTest, BuildSectionAssemblesEverything) {
  auto ctx = FindGoverningContext(*store_, Hit("shrinking"));
  ASSERT_TRUE(ctx.ok());
  auto section = BuildSection(*store_, *ctx);
  ASSERT_TRUE(section.ok());
  EXPECT_EQ(section->heading, "Technology Gap");
  EXPECT_EQ(section->doc_id, doc_id_);
  EXPECT_EQ(section->content.size(), 1u);
}

TEST_F(ContextWalkTest, UpmarkedNestedContentLayout) {
  // The converter-style layout from the paper's Fig: context/content pairs.
  auto doc = xml::ParseXml(
      "<document>"
      "<context>Data Storage</context>"
      "<content>NETMARK is designed to store documents.</content>"
      "<context>Query Processing</context>"
      "<content>Keyword search uses the text index.</content>"
      "</document>");
  ASSERT_TRUE(doc.ok());
  DocumentInfo info;
  info.file_name = "upmarked.xml";
  ASSERT_TRUE(store_->InsertDocument(*doc, info).ok());
  auto ctx = FindGoverningContext(*store_, Hit("keyword"));
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ(*store_->SubtreeText(*ctx), "Query Processing");
  auto text = SectionText(*store_, *ctx);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("text index"), std::string::npos);
}

}  // namespace
}  // namespace netmark::xmlstore
