// QueryResultCache: LRU + byte-bound mechanics in isolation, then the
// executor-integrated contract — epoch-keyed entries go stale the moment a
// mutation commits, with no invalidation call anywhere.

#include "query/result_cache.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "query/executor.h"
#include "query/plan.h"
#include "xml/parser.h"

namespace netmark::query {
namespace {

QueryResultCache::HitsPtr MakeHits(size_t count, size_t padding = 0) {
  auto hits = std::make_shared<std::vector<QueryHit>>();
  for (size_t i = 0; i < count; ++i) {
    QueryHit hit;
    hit.doc_id = static_cast<int64_t>(i + 1);
    hit.heading = "H";
    hit.text = std::string(padding, 'x');
    hits->push_back(std::move(hit));
  }
  return hits;
}

TEST(ResultCacheTest, LookupReturnsInsertedEntryForSameEpoch) {
  QueryResultCache cache;
  EXPECT_EQ(cache.Lookup("context=a", 1), nullptr);
  cache.Insert("context=a", 1, MakeHits(2));
  QueryResultCache::HitsPtr got = cache.Lookup("context=a", 1);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->size(), 2u);

  QueryResultCache::Snapshot snap = cache.snapshot();
  EXPECT_EQ(snap.hits, 1u);
  EXPECT_EQ(snap.misses, 1u);
  EXPECT_EQ(snap.insertions, 1u);
  EXPECT_EQ(snap.entries, 1u);
  EXPECT_GT(snap.bytes, 0u);
  EXPECT_DOUBLE_EQ(snap.hit_ratio, 0.5);
}

TEST(ResultCacheTest, EpochIsPartOfTheKey) {
  QueryResultCache cache;
  cache.Insert("context=a", 1, MakeHits(1));
  // Same query at a later epoch: the old entry is unreachable (stale), and
  // both epochs' results can coexist.
  EXPECT_EQ(cache.Lookup("context=a", 2), nullptr);
  cache.Insert("context=a", 2, MakeHits(3));
  ASSERT_NE(cache.Lookup("context=a", 1), nullptr);
  EXPECT_EQ(cache.Lookup("context=a", 1)->size(), 1u);
  EXPECT_EQ(cache.Lookup("context=a", 2)->size(), 3u);
}

TEST(ResultCacheTest, EntryBoundEvictsLeastRecentlyUsed) {
  ResultCacheOptions options;
  options.max_entries = 2;
  QueryResultCache cache(options);
  cache.Insert("q1", 1, MakeHits(1));
  cache.Insert("q2", 1, MakeHits(1));
  ASSERT_NE(cache.Lookup("q1", 1), nullptr);  // q1 now most recent
  cache.Insert("q3", 1, MakeHits(1));         // evicts q2 (LRU tail)
  EXPECT_NE(cache.Lookup("q1", 1), nullptr);
  EXPECT_EQ(cache.Lookup("q2", 1), nullptr);
  EXPECT_NE(cache.Lookup("q3", 1), nullptr);
  EXPECT_EQ(cache.snapshot().evictions, 1u);
  EXPECT_EQ(cache.snapshot().entries, 2u);
}

TEST(ResultCacheTest, ByteBoundEvictsAndRefusesOversizedEntries) {
  ResultCacheOptions options;
  options.max_bytes = 4096;
  QueryResultCache cache(options);
  cache.Insert("q1", 1, MakeHits(1, 1500));
  cache.Insert("q2", 1, MakeHits(1, 1500));
  EXPECT_EQ(cache.snapshot().entries, 2u);
  // Third 1500-byte entry pushes past 4096: the oldest goes.
  cache.Insert("q3", 1, MakeHits(1, 1500));
  EXPECT_EQ(cache.Lookup("q1", 1), nullptr);
  EXPECT_LE(cache.snapshot().bytes, 4096u);

  // An entry bigger than the whole budget is never admitted (it would just
  // flush the cache for one unsharable result).
  cache.Insert("huge", 1, MakeHits(4, 2048));
  EXPECT_EQ(cache.Lookup("huge", 1), nullptr);
}

TEST(ResultCacheTest, ConfigureClearsAndCanDisable) {
  QueryResultCache cache;
  cache.Insert("q", 1, MakeHits(1));
  ResultCacheOptions off;
  off.max_entries = 0;
  cache.Configure(off);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.snapshot().entries, 0u);

  ResultCacheOptions disabled;
  disabled.enabled = false;
  cache.Configure(disabled);
  EXPECT_FALSE(cache.enabled());
}

TEST(ResultCacheTest, MetricsMirrorCounters) {
  observability::MetricsRegistry registry;
  QueryResultCache cache;
  cache.BindMetrics(&registry);
  cache.Insert("q", 1, MakeHits(1));
  (void)cache.Lookup("q", 1);
  (void)cache.Lookup("other", 1);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("netmark_query_cache_hits_total 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("netmark_query_cache_misses_total 1"), std::string::npos);
  EXPECT_NE(text.find("netmark_query_cache_entries 1"), std::string::npos);
}

// --- Executor integration: the invalidation contract end to end ---

class CachedExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = netmark::TempDir::Make("result_cache");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<netmark::TempDir>(std::move(*dir));
    auto store = xmlstore::XmlStore::Open(dir_->str());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    executor_ = std::make_unique<QueryExecutor>(store_.get());
    executor_->set_result_cache(&cache_);
    executor_->set_plan_cache(&plans_);
    Insert("a.xml", "<doc><h1>Budget</h1><p>engine costs</p></doc>");
  }

  void Insert(const std::string& name, const char* markup) {
    auto doc = xml::ParseXml(markup);
    ASSERT_TRUE(doc.ok());
    xmlstore::DocumentInfo info;
    info.file_name = name;
    ASSERT_TRUE(store_->InsertDocument(*doc, info).ok());
  }

  std::vector<QueryHit> Run(const std::string& qs, QueryExecutor::Stats* stats) {
    auto q = ParseXdbQuery(qs);
    EXPECT_TRUE(q.ok());
    auto hits = executor_->Execute(*q, stats);
    EXPECT_TRUE(hits.ok()) << hits.status().ToString();
    return hits.ok() ? *hits : std::vector<QueryHit>{};
  }

  std::unique_ptr<netmark::TempDir> dir_;
  std::unique_ptr<xmlstore::XmlStore> store_;
  QueryResultCache cache_;
  QueryPlanCache plans_;
  std::unique_ptr<QueryExecutor> executor_;
};

TEST_F(CachedExecutorTest, RepeatQueryHitsTheCache) {
  QueryExecutor::Stats first, second;
  auto hits1 = Run("context=Budget", &first);
  auto hits2 = Run("context=Budget", &second);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(second.cache_hits, 1u);
  // Cached calls do no execution work.
  EXPECT_EQ(second.index_probes, 0u);
  EXPECT_EQ(second.sections_built, 0u);
  ASSERT_EQ(hits1.size(), hits2.size());
  EXPECT_EQ(hits1[0].heading, hits2[0].heading);
}

TEST_F(CachedExecutorTest, EquivalentSpellingsShareOneEntry) {
  QueryExecutor::Stats a, b;
  (void)Run("Context=Budget&Content=engine", &a);
  (void)Run("content=engine&CONTEXT=Budget", &b);
  EXPECT_EQ(a.cache_hits, 0u);
  EXPECT_EQ(b.cache_hits, 1u) << "key order / case must canonicalize";
}

TEST_F(CachedExecutorTest, CommitInvalidatesWithoutAnyExplicitCall) {
  QueryExecutor::Stats stats;
  auto before = Run("context=Budget", &stats);
  ASSERT_EQ(before.size(), 1u);
  (void)Run("context=Budget", &stats);
  ASSERT_EQ(stats.cache_hits, 1u);

  // A committed mutation bumps the epoch; the very next query must see the
  // new document — never the cached pre-commit list.
  Insert("b.xml", "<doc><h1>Budget</h1><p>second budget section</p></doc>");
  QueryExecutor::Stats after_commit;
  auto after = Run("context=Budget", &after_commit);
  EXPECT_EQ(after_commit.cache_hits, 0u) << "stale hit served after commit";
  ASSERT_EQ(after.size(), 2u);

  // And the post-commit result is itself cacheable at the new epoch.
  QueryExecutor::Stats warm;
  EXPECT_EQ(Run("context=Budget", &warm).size(), 2u);
  EXPECT_EQ(warm.cache_hits, 1u);
}

TEST_F(CachedExecutorTest, DeleteAlsoInvalidates) {
  QueryExecutor::Stats stats;
  ASSERT_EQ(Run("context=Budget", &stats).size(), 1u);
  ASSERT_TRUE(store_->DeleteDocument(1).ok());
  QueryExecutor::Stats after;
  EXPECT_TRUE(Run("context=Budget", &after).empty());
  EXPECT_EQ(after.cache_hits, 0u);
}

TEST_F(CachedExecutorTest, DisabledCacheNeverHits) {
  ResultCacheOptions off;
  off.enabled = false;
  cache_.Configure(off);
  QueryExecutor::Stats a, b;
  (void)Run("context=Budget", &a);
  (void)Run("context=Budget", &b);
  EXPECT_EQ(b.cache_hits, 0u);
  EXPECT_EQ(cache_.snapshot().insertions, 0u);
}

TEST_F(CachedExecutorTest, DocScopeAndLimitAreDistinctEntries) {
  QueryExecutor::Stats stats;
  (void)Run("context=Budget", &stats);
  QueryExecutor::Stats scoped;
  (void)Run("context=Budget&doc=1", &scoped);
  EXPECT_EQ(scoped.cache_hits, 0u) << "doc scope must not alias the unscoped entry";
  QueryExecutor::Stats limited;
  (void)Run("context=Budget&limit=1", &limited);
  EXPECT_EQ(limited.cache_hits, 0u);
}

}  // namespace
}  // namespace netmark::query
