// The production SourceFactory for declarative databank configs: local
// stores open from disk; remote sources connect over HTTP.

#ifndef NETMARK_SERVER_SOURCE_FACTORY_H_
#define NETMARK_SERVER_SOURCE_FACTORY_H_

#include "federation/databank_config.h"

namespace netmark::server {

/// \brief Returns the factory used by `ApplyDatabankConfig` in servers and
/// the CLI: kind=local -> owning LocalStoreSource; kind=remote ->
/// RemoteSource over a SocketTransport.
federation::SourceFactory DefaultSourceFactory();

}  // namespace netmark::server

#endif  // NETMARK_SERVER_SOURCE_FACTORY_H_
