#!/usr/bin/env bash
# Observability smoke test: start a real server, ingest through the drop
# folder, run a traced federated-path query, then assert that /metrics and
# /healthz answer well-formed with nonzero counters. Exercises the full
# wiring (CLI -> facade -> registry -> exposition) that unit tests stub.
#
# Usage: tools/smoke_observability.sh [path/to/netmark] [port]
set -euo pipefail

BIN="${1:-./build/tools/netmark}"
PORT="${2:-18099}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
SERVER_PID=""

cleanup() {
  [[ -n "${SERVER_PID}" ]] && kill "${SERVER_PID}" 2>/dev/null || true
  [[ -n "${SERVER_PID}" ]] && wait "${SERVER_PID}" 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

fail() {
  echo "SMOKE FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "${WORK}/serve.log" >&2 || true
  exit 1
}

mkdir -p "${WORK}/data" "${WORK}/drop"
printf 'OVERVIEW\nsmoke engine nominal\n' > "${WORK}/drop/memo.txt"

"${BIN}" serve --data "${WORK}/data" --port "${PORT}" --drop "${WORK}/drop" \
  > "${WORK}/serve.log" 2>&1 &
SERVER_PID=$!

# Wait for the server to come up AND the drop sweep to ingest the memo.
up=""
for _ in $(seq 1 100); do
  if curl -fsS "${BASE}/healthz" > "${WORK}/healthz.json" 2>/dev/null &&
     grep -q '"documents":1' "${WORK}/healthz.json"; then
    up=1
    break
  fi
  sleep 0.2
done
[[ -n "${up}" ]] || fail "server did not ingest the dropped file in time"

echo "== /healthz =="
cat "${WORK}/healthz.json"; echo
grep -q '"status":"ok"' "${WORK}/healthz.json" || fail "healthz status not ok"
grep -q '"running":true' "${WORK}/healthz.json" || fail "daemon not reported running"
grep -q '"inserted":1' "${WORK}/healthz.json" || fail "daemon inserted count wrong"

echo "== traced query =="
curl -fsS "${BASE}/xdb?context=Overview&trace=1" > "${WORK}/query.xml" ||
  fail "traced query failed"
cat "${WORK}/query.xml"; echo
grep -q 'smoke engine nominal' "${WORK}/query.xml" || fail "query missing hit content"
grep -q '<trace total_us=' "${WORK}/query.xml" || fail "trace=1 did not append span tree"
grep -q 'name="xdb"' "${WORK}/query.xml" || fail "trace missing root span"

echo "== /metrics =="
curl -fsSD "${WORK}/metrics.headers" "${BASE}/metrics" > "${WORK}/metrics.txt" ||
  fail "metrics scrape failed"
grep -qi 'content-type: text/plain; version=0.0.4' "${WORK}/metrics.headers" ||
  fail "metrics content type wrong"
# Exposition shape: TYPE lines + the counters this session must have moved.
grep -q '^# TYPE netmark_http_requests_total counter' "${WORK}/metrics.txt" ||
  fail "missing http request counter TYPE line"
grep -q 'netmark_http_requests_total{route="/xdb"} 1' "${WORK}/metrics.txt" ||
  fail "xdb route counter not 1"
grep -q 'netmark_ingest_inserted_total 1' "${WORK}/metrics.txt" ||
  fail "ingest counter not on the instance registry"
grep -q '^# TYPE netmark_query_latency_micros histogram' "${WORK}/metrics.txt" ||
  fail "missing query latency histogram"
grep -q 'netmark_query_latency_micros_count 1' "${WORK}/metrics.txt" ||
  fail "query latency histogram did not observe the query"
grep -q 'netmark_ingest_prepare_micros_bucket{le="+Inf"} 1' "${WORK}/metrics.txt" ||
  fail "ingestion-stage histogram missing"

echo "SMOKE PASS"
