// Failure-injection and scale edge cases for the XML store.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/temp_dir.h"
#include "xml/parser.h"
#include "xmlstore/context_walk.h"
#include "xmlstore/xml_store.h"

namespace netmark::xmlstore {
namespace {

class StoreStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("stress");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    auto store = XmlStore::Open(dir_->str());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
  }
  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<XmlStore> store_;
};

TEST_F(StoreStressTest, HugeTextNodeGoesThroughOverflowPages) {
  // A text node far larger than a storage page must round-trip intact
  // (exercises the heap-file overflow chain through the whole store stack).
  std::string big;
  big.reserve(200 * 1024);
  for (int i = 0; i < 4000; ++i) {
    big += "sentence number " + std::to_string(i) + " about the turbopump. ";
  }
  xml::Document doc;
  xml::NodeId root = doc.CreateElement("d");
  doc.AppendChild(doc.root(), root);
  xml::NodeId h = doc.CreateElement("h1");
  doc.AppendChild(h, doc.CreateText("Big Section"));
  doc.AppendChild(root, h);
  xml::NodeId p = doc.CreateElement("p");
  doc.AppendChild(p, doc.CreateText(big));
  doc.AppendChild(root, p);

  DocumentInfo info;
  info.file_name = "big.xml";
  auto id = store_->InsertDocument(doc, info);
  ASSERT_TRUE(id.ok());
  auto rebuilt = store_->Reconstruct(*id);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(xml::Document::SubtreeEquals(doc, doc.root(), *rebuilt,
                                           rebuilt->root()));
  // The index still finds terms inside the huge node, and the context walk
  // still resolves from it.
  auto hits = store_->TextLookup("turbopump");
  ASSERT_EQ(hits.size(), 1u);
  auto ctx = FindGoverningContext(*store_, hits[0]);
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ(*store_->SubtreeText(*ctx), "Big Section");
}

TEST_F(StoreStressTest, DeeplyNestedDocument) {
  std::string markup;
  const int kDepth = 300;
  for (int i = 0; i < kDepth; ++i) markup += "<n" + std::to_string(i) + ">";
  markup += "leaf text";
  for (int i = kDepth - 1; i >= 0; --i) markup += "</n" + std::to_string(i) + ">";
  auto doc = xml::ParseXml(markup);
  ASSERT_TRUE(doc.ok());
  DocumentInfo info;
  info.file_name = "deep.xml";
  auto id = store_->InsertDocument(*doc, info);
  ASSERT_TRUE(id.ok());
  auto rebuilt = store_->Reconstruct(*id);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(xml::Document::SubtreeEquals(*doc, doc->root(), *rebuilt,
                                           rebuilt->root()));
  // The upward walk from the leaf terminates (no context present).
  auto hits = store_->TextLookup("leaf");
  ASSERT_EQ(hits.size(), 1u);
  auto ctx = FindGoverningContext(*store_, hits[0]);
  ASSERT_TRUE(ctx.ok());
  EXPECT_FALSE(ctx->valid());
}

TEST_F(StoreStressTest, WideSiblingFanout) {
  xml::Document doc;
  xml::NodeId root = doc.CreateElement("d");
  doc.AppendChild(doc.root(), root);
  const int kKids = 2000;
  for (int i = 0; i < kKids; ++i) {
    xml::NodeId p = doc.CreateElement("p");
    doc.AppendChild(p, doc.CreateText("child " + std::to_string(i)));
    doc.AppendChild(root, p);
  }
  DocumentInfo info;
  info.file_name = "wide.xml";
  auto id = store_->InsertDocument(doc, info);
  ASSERT_TRUE(id.ok());
  auto nodes = store_->DocumentNodes(*id);
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(nodes->size(), 1u + 2u * kKids);
  // Forward chain covers all children.
  auto kids = store_->Children((*nodes)[0].first);
  ASSERT_TRUE(kids.ok());
  EXPECT_EQ(kids->size(), static_cast<size_t>(kKids));
}

TEST_F(StoreStressTest, InterleavedInsertDeleteKeepsStoreConsistent) {
  netmark::Rng rng(31337);
  std::vector<int64_t> live;
  for (int step = 0; step < 120; ++step) {
    if (rng.Chance(0.65) || live.empty()) {
      std::string marker = "marker" + std::to_string(step);
      auto doc = xml::ParseXml("<d><h1>Sec</h1><p>" + marker + " words</p></d>");
      ASSERT_TRUE(doc.ok());
      DocumentInfo info;
      info.file_name = marker + ".xml";
      auto id = store_->InsertDocument(*doc, info);
      ASSERT_TRUE(id.ok());
      live.push_back(*id);
    } else {
      size_t pick = rng.Uniform(live.size());
      ASSERT_TRUE(store_->DeleteDocument(live[pick]).ok());
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  EXPECT_EQ(store_->document_count(), live.size());
  // Every surviving document reconstructs and its marker is findable.
  for (int64_t id : live) {
    auto info = store_->GetDocumentInfo(id);
    ASSERT_TRUE(info.ok());
    std::string marker = info->file_name.substr(0, info->file_name.find('.'));
    EXPECT_FALSE(store_->TextLookup(marker).empty()) << marker;
    EXPECT_TRUE(store_->Reconstruct(id).ok());
  }
  // Reopen and re-verify (index rebuild path under churn).
  ASSERT_TRUE(store_->Flush().ok());
  std::string dir = dir_->str();
  store_.reset();
  auto reopened = XmlStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->document_count(), live.size());
  for (int64_t id : live) {
    EXPECT_TRUE((*reopened)->Reconstruct(id).ok());
  }
}

TEST_F(StoreStressTest, ManySmallDocumentsScale) {
  for (int i = 0; i < 500; ++i) {
    auto doc = xml::ParseXml("<d><h1>T" + std::to_string(i) + "</h1><p>body " +
                             std::to_string(i) + "</p></d>");
    ASSERT_TRUE(doc.ok());
    DocumentInfo info;
    info.file_name = std::to_string(i) + ".xml";
    ASSERT_TRUE(store_->InsertDocument(*doc, info).ok());
  }
  EXPECT_EQ(store_->document_count(), 500u);
  // Spot-check random access.
  auto rebuilt = store_->Reconstruct(250);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_NE(rebuilt->TextContent(rebuilt->root()).find("body 249"),
            std::string::npos);
}

}  // namespace
}  // namespace netmark::xmlstore
