// GAV mediation baseline (MIX / Tukwila / Nimble style; paper §4).
//
// "Each information source is viewed as exporting an XML view (called a
// source view) of the data it contains. An integrated (global) view of the
// data is formed by defining an integrated view ... over the individual
// data source views."
//
// The mediator tracks every artifact an administrator must author — source
// schemas, global views, per-source mappings — which is exactly the cost
// curve Fig 1 plots against NETMARK's declare-a-databank model. Queries over
// a global view are answered by *view unfolding*: rewrite onto each mapped
// source, execute, rename, merge.

#ifndef NETMARK_BASELINE_GAV_MEDIATOR_H_
#define NETMARK_BASELINE_GAV_MEDIATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace netmark::baseline {

/// A flat record (attribute -> value).
using Record = std::map<std::string, std::string>;

/// Selection predicate over one attribute.
struct Predicate {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };
  std::string attribute;
  Op op = Op::kEq;
  std::string value;

  /// Numeric comparison when both sides parse as numbers, else lexicographic.
  bool Eval(const Record& record) const;
};

/// A registered source: its exported schema and its data.
struct RecordSource {
  std::string name;
  std::vector<std::string> attributes;  ///< the source view's schema
  std::vector<Record> records;
};

/// Mapping of one source into a global view.
struct SourceMapping {
  std::string source;
  /// global attribute -> source attribute.
  std::map<std::string, std::string> attribute_map;
  /// Source-local filters baked into the view definition (e.g. "rating >=
  /// 'excellent'" — the Top-Employees example).
  std::vector<Predicate> filters;
};

/// A global (integrated) view.
struct GlobalView {
  std::string name;
  std::vector<std::string> attributes;
  std::vector<SourceMapping> mappings;
};

/// \brief The mediator: schema registry + view unfolding engine.
class GavMediator {
 public:
  /// Registers a source schema (one authored artifact).
  netmark::Status RegisterSource(RecordSource source);
  /// Defines a global view (one artifact, plus one per mapping).
  netmark::Status DefineView(GlobalView view);

  /// Answers a selection query over a global view by unfolding.
  netmark::Result<std::vector<Record>> Query(
      const std::string& view, const std::vector<Predicate>& predicates) const;

  /// Direct query against one source view (used for per-source tests).
  netmark::Result<std::vector<Record>> QuerySource(
      const std::string& source, const std::vector<Predicate>& predicates) const;

  /// Total artifacts authored so far: source schemas + views + mappings.
  /// This is the Fig-1 "IT cost" proxy.
  size_t artifacts_authored() const { return artifacts_; }
  size_t source_count() const { return sources_.size(); }
  size_t view_count() const { return views_.size(); }

 private:
  std::map<std::string, RecordSource> sources_;
  std::map<std::string, GlobalView> views_;
  size_t artifacts_ = 0;
};

}  // namespace netmark::baseline

#endif  // NETMARK_BASELINE_GAV_MEDIATOR_H_
