// Thread-local trace binding: lets deep layers (WAL append/fsync, the
// result-cache probe) open spans without threading a Trace* through every
// storage and query API. The serving path and daemon writer bind the
// current trace + parent span around the call; untraced threads see a null
// trace and every ScopedSpan built from it is inert.

#ifndef NETMARK_OBSERVABILITY_THREAD_TRACE_H_
#define NETMARK_OBSERVABILITY_THREAD_TRACE_H_

#include "observability/trace.h"

namespace netmark::observability {

/// Trace bound to the calling thread, or nullptr.
Trace* CurrentThreadTrace();
/// Parent span id for new spans on this thread (-1 when unbound).
int CurrentThreadSpan();

/// \brief RAII binding; restores the previous binding at scope exit so
/// nested scopes (sweep -> insert) stack naturally.
class ThreadTraceScope {
 public:
  ThreadTraceScope(Trace* trace, int span);
  ~ThreadTraceScope();
  ThreadTraceScope(const ThreadTraceScope&) = delete;
  ThreadTraceScope& operator=(const ThreadTraceScope&) = delete;

 private:
  Trace* prev_trace_;
  int prev_span_;
};

}  // namespace netmark::observability

#endif  // NETMARK_OBSERVABILITY_THREAD_TRACE_H_
