// Property test: random documents survive store → reconstruct exactly, and
// link structure stays navigable.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/temp_dir.h"
#include "xml/serializer.h"
#include "xmlstore/xml_store.h"

namespace netmark::xmlstore {
namespace {

// Builds a random document with headings, nested elements, attributes, text.
xml::Document RandomDocument(netmark::Rng* rng, int max_nodes) {
  xml::Document doc;
  const std::vector<std::string> tags = {"p", "div", "span", "section", "table",
                                         "li", "note"};
  const std::vector<std::string> headers = {"h1", "h2", "h3", "context", "title"};
  const std::vector<std::string> words = {"budget",  "shuttle", "engine", "anomaly",
                                          "mission", "report",  "nasa",   "proposal"};
  xml::NodeId root = doc.CreateElement("doc");
  doc.AppendChild(doc.root(), root);
  std::vector<xml::NodeId> open = {root};
  int nodes = 1;
  while (nodes < max_nodes) {
    xml::NodeId parent = open[rng->Uniform(open.size())];
    double dice = rng->UniformDouble();
    if (dice < 0.35) {
      std::string text;
      size_t len = 1 + rng->Uniform(8);
      for (size_t i = 0; i < len; ++i) {
        if (i) text += ' ';
        text += words[rng->Uniform(words.size())];
      }
      doc.AppendChild(parent, doc.CreateText(text));
    } else if (dice < 0.5) {
      xml::NodeId h = doc.CreateElement(headers[rng->Uniform(headers.size())]);
      doc.AppendChild(parent, h);
      doc.AppendChild(h, doc.CreateText(words[rng->Uniform(words.size())]));
      ++nodes;
    } else {
      xml::NodeId el = doc.CreateElement(tags[rng->Uniform(tags.size())]);
      if (rng->Chance(0.4)) {
        doc.AddAttribute(el, "id", std::to_string(rng->Uniform(1000)));
      }
      if (rng->Chance(0.2)) {
        doc.AddAttribute(el, "class", words[rng->Uniform(words.size())]);
      }
      doc.AppendChild(parent, el);
      if (open.size() < 12 && rng->Chance(0.7)) open.push_back(el);
    }
    ++nodes;
  }
  return doc;
}

class StoreRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreRoundTripProperty, StoreReconstructIsIdentity) {
  auto dir = netmark::TempDir::Make("roundtrip");
  ASSERT_TRUE(dir.ok());
  auto store = XmlStore::Open(dir->str());
  ASSERT_TRUE(store.ok());

  netmark::Rng rng(GetParam());
  std::vector<std::pair<int64_t, xml::Document>> originals;
  for (int d = 0; d < 8; ++d) {
    xml::Document doc = RandomDocument(&rng, 10 + static_cast<int>(rng.Uniform(120)));
    DocumentInfo info;
    info.file_name = "doc" + std::to_string(d) + ".xml";
    auto id = (*store)->InsertDocument(doc, info);
    ASSERT_TRUE(id.ok());
    originals.emplace_back(*id, std::move(doc));
  }
  for (const auto& [id, original] : originals) {
    auto rebuilt = (*store)->Reconstruct(id);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    EXPECT_TRUE(xml::Document::SubtreeEquals(original, original.root(), *rebuilt,
                                             rebuilt->root()))
        << "doc " << id << "\noriginal: " << xml::Serialize(original)
        << "\nrebuilt: " << xml::Serialize(*rebuilt);
  }
}

TEST_P(StoreRoundTripProperty, SiblingChainsCoverAllChildren) {
  auto dir = netmark::TempDir::Make("chains");
  ASSERT_TRUE(dir.ok());
  auto store = XmlStore::Open(dir->str());
  ASSERT_TRUE(store.ok());

  netmark::Rng rng(GetParam() * 31 + 7);
  xml::Document doc = RandomDocument(&rng, 150);
  DocumentInfo info;
  info.file_name = "chains.xml";
  auto id = (*store)->InsertDocument(doc, info);
  ASSERT_TRUE(id.ok());

  auto nodes = (*store)->DocumentNodes(*id);
  ASSERT_TRUE(nodes.ok());
  for (const auto& [rowid, rec] : *nodes) {
    if (rec.is_text()) continue;
    auto kids = (*store)->Children(rowid);
    ASSERT_TRUE(kids.ok());
    if (kids->empty()) continue;
    // Walking the forward chain from the first child must enumerate exactly
    // the index-join children, in order; the backward chain the reverse.
    std::vector<storage::RowId> forward;
    storage::RowId cur = (*kids)[0];
    while (cur.valid()) {
      forward.push_back(cur);
      auto r = (*store)->GetNode(cur);
      ASSERT_TRUE(r.ok());
      cur = r->sibling_rowid;
    }
    EXPECT_EQ(forward, *kids);
    std::vector<storage::RowId> backward;
    cur = kids->back();
    while (cur.valid()) {
      backward.push_back(cur);
      auto r = (*store)->GetNode(cur);
      ASSERT_TRUE(r.ok());
      cur = r->prev_rowid;
    }
    std::vector<storage::RowId> reversed(kids->rbegin(), kids->rend());
    EXPECT_EQ(backward, reversed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreRoundTripProperty,
                         ::testing::Values(1, 7, 42, 1234, 987654));

}  // namespace
}  // namespace netmark::xmlstore
