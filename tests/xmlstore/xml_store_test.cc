#include "xmlstore/xml_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/env.h"
#include "common/temp_dir.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace netmark::xmlstore {
namespace {

constexpr const char* kUpmarked =
    "<document>"
    "<context>Abstract</context>"
    "<content>This paper describes an approach to data integration.</content>"
    "<context>Introduction</context>"
    "<content>Seamless integrated access to multiple sources.</content>"
    "</document>";

class XmlStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("xmlstore");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    OpenStore();
  }
  void OpenStore() {
    store_.reset();
    auto store = XmlStore::Open(dir_->str());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(*store);
  }
  int64_t Insert(const char* markup, const std::string& name = "test.xml") {
    auto doc = xml::ParseXml(markup);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    DocumentInfo info;
    info.file_name = name;
    info.file_date = 1118700000;
    info.file_size = static_cast<int64_t>(std::string(markup).size());
    auto id = store_->InsertDocument(*doc, info);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<XmlStore> store_;
};

TEST_F(XmlStoreTest, FreshStoreIsEmpty) {
  EXPECT_EQ(store_->document_count(), 0u);
  EXPECT_EQ(store_->node_count(), 0u);
  EXPECT_TRUE(store_->ListDocuments()->empty());
}

TEST_F(XmlStoreTest, InsertAssignsSequentialDocIds) {
  EXPECT_EQ(Insert("<a/>"), 1);
  EXPECT_EQ(Insert("<b/>"), 2);
  EXPECT_EQ(store_->document_count(), 2u);
}

TEST_F(XmlStoreTest, DocumentInfoStored) {
  int64_t id = Insert(kUpmarked, "paper.xml");
  auto info = store_->GetDocumentInfo(id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->file_name, "paper.xml");
  EXPECT_EQ(info->file_date, 1118700000);
  EXPECT_GT(info->file_size, 0);
  EXPECT_TRUE(store_->GetDocumentInfo(999).status().IsNotFound());
}

TEST_F(XmlStoreTest, SchemaIsFixedRegardlessOfDocumentShape) {
  uint64_t ddl_before = store_->database()->ddl_statements();
  Insert("<memo><to>a</to></memo>");
  Insert("<totally><different doc=\"yes\"><shape/></different></totally>");
  Insert(kUpmarked);
  // The schema-less claim: zero DDL per document type.
  EXPECT_EQ(store_->database()->ddl_statements(), ddl_before);
  EXPECT_EQ(store_->database()->TableNames().size(), 2u);  // XML + DOC only
}

TEST_F(XmlStoreTest, ReconstructMatchesOriginal) {
  auto original = xml::ParseXml(kUpmarked);
  ASSERT_TRUE(original.ok());
  int64_t id = Insert(kUpmarked);
  auto rebuilt = store_->Reconstruct(id);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(xml::Document::SubtreeEquals(*original, original->root(), *rebuilt,
                                           rebuilt->root()))
      << xml::Serialize(*rebuilt);
}

TEST_F(XmlStoreTest, ReconstructPreservesAttributes) {
  const char* markup = R"(<doc id="d1"><sec class="intro" n="2">text</sec></doc>)";
  int64_t id = Insert(markup);
  auto rebuilt = store_->Reconstruct(id);
  ASSERT_TRUE(rebuilt.ok());
  xml::NodeId docel = rebuilt->DocumentElement();
  EXPECT_EQ(rebuilt->GetAttribute(docel, "id"), "d1");
  xml::NodeId sec = rebuilt->FirstChildElement(docel, "sec");
  EXPECT_EQ(rebuilt->GetAttribute(sec, "class"), "intro");
  EXPECT_EQ(rebuilt->GetAttribute(sec, "n"), "2");
}

TEST_F(XmlStoreTest, NodeLinksFormTraversableTree) {
  int64_t id = Insert(kUpmarked);
  auto nodes = store_->DocumentNodes(id);
  ASSERT_TRUE(nodes.ok());
  // document + 4 children + 4 text nodes = 9
  ASSERT_EQ(nodes->size(), 9u);
  // First node is the root element with no parent.
  const auto& [root_rowid, root_rec] = (*nodes)[0];
  EXPECT_EQ(root_rec.node_name, "document");
  EXPECT_FALSE(root_rec.parent_rowid.valid());
  EXPECT_EQ(root_rec.parent_node_id, 0);
  // Its four children chain via sibling links.
  auto kids = store_->Children(root_rowid);
  ASSERT_TRUE(kids.ok());
  ASSERT_EQ(kids->size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    auto rec = store_->GetNode((*kids)[i]);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->parent_rowid, root_rowid);
    if (i + 1 < 4) {
      EXPECT_EQ(rec->sibling_rowid, (*kids)[i + 1]);
    } else {
      EXPECT_FALSE(rec->sibling_rowid.valid());
    }
    if (i > 0) {
      EXPECT_EQ(rec->prev_rowid, (*kids)[i - 1]);
    } else {
      EXPECT_FALSE(rec->prev_rowid.valid());
    }
  }
}

TEST_F(XmlStoreTest, NodeTypesAssignedPerConfig) {
  int64_t id = Insert("<d><h1>Head</h1><p>body <b>bold</b></p></d>");
  auto nodes = store_->DocumentNodes(id);
  ASSERT_TRUE(nodes.ok());
  int contexts = 0, intense = 0, texts = 0, elements = 0;
  for (const auto& [rowid, rec] : *nodes) {
    switch (rec.node_type) {
      case xml::NetmarkNodeType::kContext: ++contexts; break;
      case xml::NetmarkNodeType::kIntense: ++intense; break;
      case xml::NetmarkNodeType::kText: ++texts; break;
      default: ++elements; break;
    }
  }
  EXPECT_EQ(contexts, 1);  // h1
  EXPECT_EQ(intense, 1);   // b
  EXPECT_EQ(texts, 3);     // "Head", "body ", "bold"
  EXPECT_EQ(elements, 2);  // d, p
}

TEST_F(XmlStoreTest, TextIndexFindsNodes) {
  Insert(kUpmarked);
  auto hits = store_->TextLookup("seamless");
  ASSERT_EQ(hits.size(), 1u);
  auto rec = store_->GetNode(hits[0]);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->is_text());
  EXPECT_NE(rec->node_data.find("Seamless"), std::string::npos);
}

TEST_F(XmlStoreTest, TextScanAgreesWithIndex) {
  Insert(kUpmarked);
  Insert("<d><p>integration of sources</p></d>");
  for (const char* term : {"integration", "seamless", "sources", "missing"}) {
    auto indexed = store_->TextLookup(term);
    auto scanned = store_->TextScanLookup(term);
    ASSERT_TRUE(scanned.ok());
    std::sort(scanned->begin(), scanned->end());
    std::sort(indexed.begin(), indexed.end());
    EXPECT_EQ(indexed, *scanned) << term;
  }
}

TEST_F(XmlStoreTest, DeleteDocumentRemovesRowsAndIndexEntries) {
  int64_t keep = Insert(kUpmarked);
  int64_t gone = Insert("<d><p>unique-marker-word</p></d>");
  ASSERT_FALSE(store_->TextLookup("unique").empty());
  ASSERT_TRUE(store_->DeleteDocument(gone).ok());
  // Posting removal is deferred until version GC passes the delete's epoch
  // (docs/mvcc.md); with no pinned snapshot one pass drains it.
  store_->RunVersionGc();
  EXPECT_TRUE(store_->TextLookup("unique").empty());
  EXPECT_TRUE(store_->GetDocumentInfo(gone).status().IsNotFound());
  EXPECT_TRUE(store_->Reconstruct(gone).status().IsNotFound());
  // Other document untouched.
  EXPECT_TRUE(store_->Reconstruct(keep).ok());
  EXPECT_TRUE(store_->DeleteDocument(gone).IsNotFound());
}

TEST_F(XmlStoreTest, SubtreeTextConcatenates) {
  int64_t id = Insert("<d><p>alpha <b>beta</b> gamma</p></d>");
  auto nodes = store_->DocumentNodes(id);
  ASSERT_TRUE(nodes.ok());
  // Find the <p> row.
  for (const auto& [rowid, rec] : *nodes) {
    if (rec.node_name == "p") {
      auto text = store_->SubtreeText(rowid);
      ASSERT_TRUE(text.ok());
      EXPECT_EQ(*text, "alpha  beta  gamma");
      return;
    }
  }
  FAIL() << "no <p> row found";
}

TEST_F(XmlStoreTest, PersistsAcrossReopen) {
  int64_t id = Insert(kUpmarked, "persist.xml");
  ASSERT_TRUE(store_->Flush().ok());
  OpenStore();
  EXPECT_EQ(store_->document_count(), 1u);
  auto rebuilt = store_->Reconstruct(id);
  ASSERT_TRUE(rebuilt.ok());
  // Text index rebuilt from rows.
  EXPECT_EQ(store_->TextLookup("seamless").size(), 1u);
  // New documents get fresh ids.
  EXPECT_EQ(Insert("<x/>"), id + 1);
}

TEST_F(XmlStoreTest, CDataCommentsAndPiSurviveRoundTrip) {
  xml::ParseOptions opts;
  opts.keep_comments = true;
  auto doc = xml::Parse(
      "<r><![CDATA[raw <markup>]]><!--note--><?style sheet?></r>", opts);
  ASSERT_TRUE(doc.ok());
  DocumentInfo info;
  info.file_name = "mixed.xml";
  auto id = store_->InsertDocument(*doc, info);
  ASSERT_TRUE(id.ok());
  auto rebuilt = store_->Reconstruct(*id);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(xml::Document::SubtreeEquals(*doc, doc->root(), *rebuilt,
                                           rebuilt->root()))
      << xml::Serialize(*rebuilt);
}

TEST_F(XmlStoreTest, ListDocumentsSorted) {
  Insert("<a/>", "a.xml");
  Insert("<b/>", "b.xml");
  Insert("<c/>", "c.xml");
  auto docs = store_->ListDocuments();
  ASSERT_TRUE(docs.ok());
  ASSERT_EQ(docs->size(), 3u);
  EXPECT_EQ((*docs)[0].file_name, "a.xml");
  EXPECT_EQ((*docs)[2].file_name, "c.xml");
}

// Runs in the TSan CI matrix (test name matches its Scrubber filter): the
// paced background scrub thread and an on-demand ScrubAll race writers and
// readers; nothing may tear, false-quarantine, or deadlock.
TEST(XmlStoreScrubberTest, ScrubberRunsConcurrentlyWithIngestAndReads) {
  auto dir = TempDir::Make("scrubber");
  ASSERT_TRUE(dir.ok());
  storage::StorageOptions sopts;
  sopts.scrub_pages_per_sec = 5000;  // several full passes per second
  auto store =
      XmlStore::Open(dir->str(), xml::NodeTypeConfig::Default(), sopts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      (void)(*store)->ListDocuments();
      (void)(*store)->ScrubAll();
    }
  });

  for (int i = 0; i < 40; ++i) {
    auto doc = xml::ParseXml(kUpmarked);
    ASSERT_TRUE(doc.ok());
    DocumentInfo info;
    info.file_name = "doc" + std::to_string(i) + ".xml";
    auto id = (*store)->InsertDocument(*doc, info);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
  ASSERT_TRUE((*store)->Flush().ok());

  // Wait for the background thread to complete at least one full pass over
  // flushed pages (it ticks every 100ms).
  for (int tries = 0; tries < 100 && (*store)->scrub_passes() < 1; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop.store(true);
  reader.join();

  EXPECT_GE((*store)->scrub_passes(), 1u);
  EXPECT_GT((*store)->scrub_pages_scanned(), 0u);
  // A healthy disk must never scrub up errors or quarantine anything.
  EXPECT_EQ((*store)->scrub_errors_found(), 0u);
  EXPECT_EQ((*store)->quarantined_pages(), 0u);
  auto rebuilt = (*store)->Reconstruct(1);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  store->reset();  // joins the scrub thread
}

// A failed commit-path fsync must latch read-only degraded mode: the failed
// insert is not acked, later mutations are refused up front, reads keep
// working.
TEST(XmlStoreDegradedTest, FsyncFailureLatchesReadOnlyMode) {
  auto dir = TempDir::Make("degraded");
  ASSERT_TRUE(dir.ok());

  // A clean first open seeds one committed document.
  {
    auto store = XmlStore::Open(dir->str());
    ASSERT_TRUE(store.ok());
    auto doc = xml::ParseXml(kUpmarked);
    ASSERT_TRUE(doc.ok());
    DocumentInfo info;
    info.file_name = "seed.xml";
    ASSERT_TRUE((*store)->InsertDocument(*doc, info).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }

  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kFsyncFail;
  spec.nth = 1;
  spec.sticky = true;
  FaultInjectingEnv env(spec);
  storage::StorageOptions sopts;
  sopts.env = &env;
  sopts.wal_fsync = storage::WalFsyncPolicy::kCommit;
  auto store = XmlStore::Open(dir->str(), xml::NodeTypeConfig::Default(), sopts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_FALSE((*store)->degraded());

  auto doc = xml::ParseXml(kUpmarked);
  ASSERT_TRUE(doc.ok());
  DocumentInfo info;
  info.file_name = "doomed.xml";
  auto id = (*store)->InsertDocument(*doc, info);
  ASSERT_FALSE(id.ok());  // never acked after the failed fsync
  EXPECT_TRUE((*store)->degraded());
  EXPECT_NE((*store)->degraded_reason().find("injected"), std::string::npos);

  // Mutations are refused up front with the degraded status...
  auto again = (*store)->InsertDocument(*doc, info);
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsUnavailable()) << again.status().ToString();
  EXPECT_TRUE((*store)->DeleteDocument(1).IsUnavailable());

  // ...while reads keep serving the committed state.
  auto docs = (*store)->ListDocuments();
  ASSERT_TRUE(docs.ok());
  ASSERT_EQ(docs->size(), 1u);
  EXPECT_EQ((*docs)[0].file_name, "seed.xml");
  EXPECT_TRUE((*store)->Reconstruct(1).ok());
}

}  // namespace
}  // namespace netmark::xmlstore
