#include "server/netmark_service.h"

#include "common/clock.h"
#include "common/string_util.h"
#include "xml/entities.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace netmark::server {

netmark::Status NetmarkService::RegisterStylesheet(const std::string& name,
                                                   std::string_view stylesheet_text) {
  NETMARK_ASSIGN_OR_RETURN(xslt::Stylesheet sheet,
                           xslt::Stylesheet::Parse(stylesheet_text));
  stylesheets_.insert_or_assign(name, std::move(sheet));
  return netmark::Status::OK();
}

HttpResponse NetmarkService::Handle(const HttpRequest& request) {
  const std::string& path = request.path;
  if (path == "/xdb") {
    if (request.method != "GET") return HttpResponse::Text(405, "GET only");
    return HandleXdb(request);
  }
  if (path == "/status") {
    if (request.method != "GET") return HttpResponse::Text(405, "GET only");
    return HandleStatus();
  }
  if (path == "/docs" || path == "/docs/") {
    if (request.method == "GET") return HandleListDocuments(/*webdav=*/false);
    if (request.method == "PROPFIND") return HandleListDocuments(/*webdav=*/true);
    if (request.method == "PUT") {
      return HttpResponse::BadRequest("missing document name");
    }
    return HttpResponse::Text(405, "GET or PROPFIND");
  }
  if (netmark::StartsWith(path, "/docs/")) {
    std::string tail = path.substr(6);
    if (request.method == "PUT") {
      if (tail.empty()) return HttpResponse::BadRequest("missing document name");
      return HandlePutDocument(request, tail);
    }
    auto doc_id = netmark::ParseInt64(tail);
    if (!doc_id.ok()) {
      return HttpResponse::BadRequest("document id must be numeric: " + tail);
    }
    if (request.method == "GET") return HandleGetDocument(*doc_id);
    if (request.method == "DELETE") return HandleDeleteDocument(*doc_id);
    return HttpResponse::Text(405, "GET, PUT or DELETE");
  }
  return HttpResponse::NotFound("no route for " + path);
}

HttpResponse NetmarkService::HandleXdb(const HttpRequest& request) {
  auto query = query::ParseXdbQuery(request.query);
  if (!query.ok()) return HttpResponse::BadRequest(query.status().ToString());

  // Databank fan-out takes priority when requested.
  std::string databank;
  for (const std::string& pair : netmark::Split(request.query, '&')) {
    size_t eq = pair.find('=');
    if (eq != std::string::npos &&
        netmark::EqualsIgnoreCase(pair.substr(0, eq), "databank")) {
      auto value = netmark::UrlDecode(pair.substr(eq + 1));
      if (value.ok()) databank = *value;
    }
  }

  xml::Document results;
  if (!databank.empty()) {
    if (router_ == nullptr) {
      return HttpResponse::BadRequest("this instance has no databank router");
    }
    auto federated = router_->QueryFederated(databank, *query);
    if (!federated.ok()) {
      return HttpResponse::ServerError(federated.status().ToString());
    }
    results = ComposeFederatedResults(*query, *federated);
  } else {
    auto hits = executor_.Execute(*query);
    if (!hits.ok()) {
      if (hits.status().IsInvalidArgument()) {
        return HttpResponse::BadRequest(hits.status().ToString());
      }
      return HttpResponse::ServerError(hits.status().ToString());
    }
    auto composed = query::ComposeResults(*store_, *query, *hits);
    if (!composed.ok()) return HttpResponse::ServerError(composed.status().ToString());
    results = std::move(*composed);
  }

  auto body = RenderResults(results, query->xslt);
  if (!body.ok()) return HttpResponse::ServerError(body.status().ToString());
  return HttpResponse::Ok(std::move(*body));
}

netmark::Result<std::string> NetmarkService::RenderResults(
    const xml::Document& results, const std::string& xslt_name) {
  if (xslt_name.empty()) {
    return xml::Serialize(results);
  }
  auto it = stylesheets_.find(xslt_name);
  if (it == stylesheets_.end()) {
    return netmark::Status::NotFound("no stylesheet named " + xslt_name);
  }
  NETMARK_ASSIGN_OR_RETURN(xml::Document transformed,
                           xslt::Transform(it->second, results));
  return xml::Serialize(transformed);
}

HttpResponse NetmarkService::HandlePutDocument(const HttpRequest& request,
                                               const std::string& file_name) {
  auto doc = converters_.Convert(file_name, request.body);
  if (!doc.ok()) return HttpResponse::BadRequest(doc.status().ToString());
  // WebDAV PUT semantics ("collaboratively edit and manage files", paper
  // §2.1.2): putting to an existing name replaces that document.
  bool replaced = false;
  auto existing = store_->ListDocuments();
  if (existing.ok()) {
    for (const xmlstore::DocRecord& rec : *existing) {
      if (rec.file_name == file_name) {
        netmark::Status st = store_->DeleteDocument(rec.doc_id);
        if (!st.ok()) return HttpResponse::ServerError(st.ToString());
        replaced = true;
      }
    }
  }
  xmlstore::DocumentInfo info;
  info.file_name = file_name;
  info.file_date = netmark::WallSeconds();
  info.file_size = static_cast<int64_t>(request.body.size());
  auto doc_id = store_->InsertDocument(*doc, info);
  if (!doc_id.ok()) return HttpResponse::ServerError(doc_id.status().ToString());
  HttpResponse resp =
      replaced ? HttpResponse::Text(204, "") : HttpResponse::Text(201, std::to_string(*doc_id));
  resp.headers["Location"] = "/docs/" + std::to_string(*doc_id);
  return resp;
}

HttpResponse NetmarkService::HandleGetDocument(int64_t doc_id) {
  auto doc = store_->Reconstruct(doc_id);
  if (!doc.ok()) {
    if (doc.status().IsNotFound()) return HttpResponse::NotFound(doc.status().message());
    return HttpResponse::ServerError(doc.status().ToString());
  }
  xml::SerializeOptions opts;
  opts.declaration = true;
  return HttpResponse::Ok(xml::Serialize(*doc, opts));
}

HttpResponse NetmarkService::HandleDeleteDocument(int64_t doc_id) {
  netmark::Status st = store_->DeleteDocument(doc_id);
  if (st.IsNotFound()) return HttpResponse::NotFound(st.message());
  if (!st.ok()) return HttpResponse::ServerError(st.ToString());
  return HttpResponse::Text(204, "");
}

HttpResponse NetmarkService::HandleListDocuments(bool webdav) {
  auto docs = store_->ListDocuments();
  if (!docs.ok()) return HttpResponse::ServerError(docs.status().ToString());
  std::string body;
  if (webdav) {
    body = "<?xml version=\"1.0\"?><D:multistatus xmlns:D=\"DAV:\">";
    for (const xmlstore::DocRecord& doc : *docs) {
      body += "<D:response><D:href>/docs/" + std::to_string(doc.doc_id) +
              "</D:href><D:propstat><D:prop><D:displayname>" +
              xml::EscapeText(doc.file_name) +
              "</D:displayname><D:getcontentlength>" + std::to_string(doc.file_size) +
              "</D:getcontentlength></D:prop>"
              "<D:status>HTTP/1.1 200 OK</D:status></D:propstat></D:response>";
    }
    body += "</D:multistatus>";
    HttpResponse resp = HttpResponse::Text(207, std::move(body));
    resp.headers["Content-Type"] = "text/xml";
    return resp;
  }
  body = "<documents>";
  for (const xmlstore::DocRecord& doc : *docs) {
    body += "<doc id=\"" + std::to_string(doc.doc_id) + "\" name=\"" +
            xml::EscapeAttribute(doc.file_name) + "\" size=\"" +
            std::to_string(doc.file_size) + "\"/>";
  }
  body += "</documents>";
  return HttpResponse::Ok(std::move(body));
}

HttpResponse NetmarkService::HandleStatus() {
  std::string body = "<status><documents>" + std::to_string(store_->document_count()) +
                     "</documents><nodes>" + std::to_string(store_->node_count()) +
                     "</nodes><terms>" +
                     std::to_string(store_->text_index().num_terms()) + "</terms>" +
                     "</status>";
  return HttpResponse::Ok(std::move(body));
}

xml::Document ComposeFederatedResults(const query::XdbQuery& query,
                                      const federation::FederatedResult& result) {
  xml::Document out;
  xml::NodeId results = out.CreateElement("results");
  out.AddAttribute(results, "query", query.ToQueryString());
  out.AddAttribute(results, "count", std::to_string(result.hits.size()));
  out.AddAttribute(results, "complete", result.complete() ? "true" : "false");
  out.AppendChild(out.root(), results);
  // Per-source outcome report: which sources answered, which were missing
  // and why — so a partial answer is never mistaken for a full one.
  xml::NodeId sources = out.CreateElement("sources");
  out.AppendChild(results, sources);
  for (const federation::SourceOutcome& outcome : result.sources) {
    xml::NodeId src = out.CreateElement("source");
    out.AddAttribute(src, "name", outcome.source);
    out.AddAttribute(src, "outcome",
                     std::string(federation::SourceStateToString(outcome.state)));
    out.AddAttribute(src, "attempts", std::to_string(outcome.attempts));
    out.AddAttribute(src, "latency_ms",
                     std::to_string(outcome.latency_micros / 1000));
    out.AddAttribute(src, "hits", std::to_string(outcome.hits));
    if (!outcome.error.empty()) out.AddAttribute(src, "error", outcome.error);
    out.AppendChild(sources, src);
  }
  for (const federation::FederatedHit& hit : result.hits) {
    xml::NodeId result = out.CreateElement("result");
    out.AddAttribute(result, "doc", hit.file_name);
    out.AddAttribute(result, "docid", std::to_string(hit.doc_id));
    if (!hit.source.empty()) out.AddAttribute(result, "source", hit.source);
    out.AppendChild(results, result);
    if (!hit.heading.empty()) {
      xml::NodeId context = out.CreateElement("context");
      out.AppendChild(context, out.CreateText(hit.heading));
      out.AppendChild(result, context);
    }
    if (!hit.markup.empty() || !hit.text.empty()) {
      xml::NodeId content = out.CreateElement("content");
      out.AppendChild(result, content);
      bool embedded = false;
      if (!hit.markup.empty()) {
        // Wrap: the markup may be a forest.
        auto parsed = xml::ParseXml("<wrap>" + hit.markup + "</wrap>");
        if (parsed.ok()) {
          xml::NodeId wrap = parsed->DocumentElement();
          for (xml::NodeId c = parsed->first_child(wrap); c != xml::kInvalidNode;
               c = parsed->next_sibling(c)) {
            out.AppendChild(content, out.ImportSubtree(*parsed, c));
          }
          embedded = true;
        }
      }
      if (!embedded) {
        out.AppendChild(content, out.CreateText(hit.text));
      }
    }
  }
  return out;
}

}  // namespace netmark::server
