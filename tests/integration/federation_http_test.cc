// Federation over live HTTP: two NETMARK servers + a content-only source
// behind one databank router (the Anomaly Tracking topology, Fig 8).

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "core/netmark.h"
#include "federation/content_only_source.h"
#include "federation/remote_source.h"
#include "server/http_client.h"
#include "workload/corpus.h"
#include "xml/parser.h"

namespace netmark {
namespace {

class FederationHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("fedhttp");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));

    // Two remote NETMARK instances, each holding anomaly reports.
    workload::CorpusGenerator gen(555);
    for (int s = 0; s < 2; ++s) {
      NetmarkOptions options;
      options.data_dir = dir_->Sub("remote" + std::to_string(s)).string();
      auto nm = Netmark::Open(options);
      ASSERT_TRUE(nm.ok());
      for (int i = 0; i < 4; ++i) {
        auto doc = gen.AnomalyReport(s * 100 + i);
        ASSERT_TRUE((*nm)->IngestContent(doc.file_name, doc.content).ok());
      }
      ASSERT_TRUE((*nm)->StartServer().ok());
      remotes_.push_back(std::move(*nm));
    }

    // The local coordinator.
    NetmarkOptions options;
    options.data_dir = dir_->Sub("local").string();
    auto nm = Netmark::Open(options);
    ASSERT_TRUE(nm.ok());
    local_ = std::move(*nm);

    for (size_t s = 0; s < remotes_.size(); ++s) {
      ASSERT_TRUE(local_
                      ->RegisterSource(std::make_shared<federation::RemoteSource>(
                          "anomaly-db-" + std::to_string(s),
                          std::make_unique<server::SocketTransport>(
                              "127.0.0.1", remotes_[s]->server_port())))
                      .ok());
    }
    ASSERT_TRUE(local_->DefineDatabank("anomalies",
                                       {"anomaly-db-0", "anomaly-db-1"})
                    .ok());
  }

  void TearDown() override {
    for (auto& nm : remotes_) nm->StopServer();
  }

  std::unique_ptr<TempDir> dir_;
  std::vector<std::unique_ptr<Netmark>> remotes_;
  std::unique_ptr<Netmark> local_;
};

TEST_F(FederationHttpTest, SimultaneousQueryAcrossLiveServers) {
  // Every anomaly report has an "Anomaly Description" section.
  auto hits = local_->QueryDatabank("anomalies", "context=Anomaly+Description");
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_EQ(hits->size(), 8u);
  size_t from_0 = 0, from_1 = 0;
  for (const auto& hit : *hits) {
    if (hit.source == "anomaly-db-0") ++from_0;
    if (hit.source == "anomaly-db-1") ++from_1;
    EXPECT_EQ(hit.heading, "Anomaly Description");
    EXPECT_FALSE(hit.text.empty());
  }
  EXPECT_EQ(from_0, 4u);
  EXPECT_EQ(from_1, 4u);
}

TEST_F(FederationHttpTest, CombinedQueryOverHttp) {
  auto hits = local_->QueryDatabank("anomalies",
                                    "context=Disposition&content=critical");
  ASSERT_TRUE(hits.ok());
  for (const auto& hit : *hits) {
    EXPECT_EQ(hit.heading, "Disposition");
    EXPECT_NE(hit.text.find("critical"), std::string::npos);
  }
  // Sanity: the complementary severity exists too and sets differ.
  auto minor = local_->QueryDatabank("anomalies",
                                     "context=Disposition&content=minor");
  ASSERT_TRUE(minor.ok());
  EXPECT_EQ(hits->size() + minor->size(), 8u);
}

TEST_F(FederationHttpTest, DeadSourceDoesNotBreakTheDatabank) {
  // Register a source pointing at a dead port; the databank keeps serving.
  ASSERT_TRUE(local_
                  ->RegisterSource(std::make_shared<federation::RemoteSource>(
                      "dead",
                      std::make_unique<server::SocketTransport>("127.0.0.1", 1)))
                  .ok());
  ASSERT_TRUE(local_->DefineDatabank(
                      "with-dead", {"anomaly-db-0", "dead", "anomaly-db-1"})
                  .ok());
  auto hits = local_->QueryDatabank("with-dead", "context=Anomaly+Description");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 8u);
  EXPECT_EQ(local_->router()->stats().sources_queried, 3u);
}

TEST_F(FederationHttpTest, DatabankExposedThroughLocalHttpEndpoint) {
  ASSERT_TRUE(local_->StartServer().ok());
  server::HttpClient client("127.0.0.1", local_->server_port());
  auto resp =
      client.Get("/xdb?context=Corrective+Action&databank=anomalies");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  auto doc = xml::ParseXml(resp->body);
  ASSERT_TRUE(doc.ok());
  xml::NodeId results = doc->DocumentElement();
  EXPECT_EQ(doc->name(results), "results");
  // 8 <result> elements plus the <sources> outcome annotation.
  size_t result_count = 0;
  for (xml::NodeId child : doc->ChildElements(results)) {
    if (doc->name(child) == "result") ++result_count;
  }
  EXPECT_EQ(result_count, 8u);
  xml::NodeId sources = doc->FirstChildElement(results, "sources");
  ASSERT_NE(sources, xml::kInvalidNode);
  EXPECT_EQ(doc->ChildElements(sources).size(), 2u);
  for (xml::NodeId src : doc->ChildElements(sources)) {
    EXPECT_EQ(doc->GetAttribute(src, "outcome"), "ok");
  }
  local_->StopServer();
}

}  // namespace
}  // namespace netmark
