// Slow-query log: one structured line per request over a configurable
// threshold, carrying the query spec, per-span timings and per-source
// outcomes — enough to diagnose the slow request without re-running it.
//
// Threshold resolution order: NETMARK_SLOW_QUERY_MS env var, then the
// configured value (INI [server] slow_query_ms via the CLI, or
// NetmarkOptions.slow_query_ms), then the 500ms default. 0 disables.

#ifndef NETMARK_OBSERVABILITY_SLOW_LOG_H_
#define NETMARK_OBSERVABILITY_SLOW_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "observability/trace.h"

namespace netmark::observability {

/// Default threshold when nothing is configured.
inline constexpr int64_t kDefaultSlowQueryMs = 500;

/// \brief Applies the NETMARK_SLOW_QUERY_MS env override to a configured
/// threshold (returns `configured_ms` when the env var is unset or invalid).
int64_t ResolveSlowQueryThresholdMs(int64_t configured_ms);

/// \brief Renders the span tree as one compact field value:
/// "xdb:12.3ms ok; xdb/federated:10.1ms ok [sources=2]; ...". Paths are
/// parent-joined names; unfinished spans render as "...".
std::string FormatSpansCompact(const std::vector<SpanData>& spans);

/// \brief Emits the slow-query line (Warning level) when `total_micros`
/// crosses `threshold_ms`. No-op when threshold_ms <= 0.
void MaybeLogSlowQuery(std::string_view endpoint, const std::string& query_string,
                       int64_t total_micros, int64_t threshold_ms,
                       const Trace& trace);

}  // namespace netmark::observability

#endif  // NETMARK_OBSERVABILITY_SLOW_LOG_H_
