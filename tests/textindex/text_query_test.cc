#include "textindex/text_query.h"

#include <gtest/gtest.h>

namespace netmark::textindex {
namespace {

TEST(TextQueryParseTest, PlainTermsAreConjuncts) {
  TextQuery q = ParseTextQuery("shuttle engine");
  ASSERT_EQ(q.clauses.size(), 2u);
  EXPECT_EQ(q.clauses[0].kind, QueryClause::Kind::kTerm);
  EXPECT_EQ(q.clauses[0].words[0], "shuttle");
  EXPECT_EQ(q.clauses[1].words[0], "engine");
}

TEST(TextQueryParseTest, QuotedPhrase) {
  TextQuery q = ParseTextQuery("\"technology gap\" shrinking");
  ASSERT_EQ(q.clauses.size(), 2u);
  EXPECT_EQ(q.clauses[0].kind, QueryClause::Kind::kPhrase);
  ASSERT_EQ(q.clauses[0].words.size(), 2u);
  EXPECT_EQ(q.clauses[0].words[0], "technology");
  EXPECT_EQ(q.clauses[0].words[1], "gap");
  EXPECT_EQ(q.clauses[1].kind, QueryClause::Kind::kTerm);
}

TEST(TextQueryParseTest, SingleWordQuoteDegradesToTerm) {
  TextQuery q = ParseTextQuery("\"shuttle\"");
  ASSERT_EQ(q.clauses.size(), 1u);
  EXPECT_EQ(q.clauses[0].kind, QueryClause::Kind::kTerm);
}

TEST(TextQueryParseTest, PrefixStar) {
  TextQuery q = ParseTextQuery("eng*");
  ASSERT_EQ(q.clauses.size(), 1u);
  EXPECT_EQ(q.clauses[0].kind, QueryClause::Kind::kPrefix);
  EXPECT_EQ(q.clauses[0].words[0], "eng");
}

TEST(TextQueryParseTest, HyphenatedWordBecomesPhrase) {
  TextQuery q = ParseTextQuery("on-the-fly");
  ASSERT_EQ(q.clauses.size(), 1u);
  EXPECT_EQ(q.clauses[0].kind, QueryClause::Kind::kPhrase);
  EXPECT_EQ(q.clauses[0].words.size(), 3u);
}

TEST(TextQueryParseTest, EmptyAndWhitespaceYieldEmptyQuery) {
  EXPECT_TRUE(ParseTextQuery("").empty());
  EXPECT_TRUE(ParseTextQuery("   ").empty());
  EXPECT_TRUE(ParseTextQuery("...").empty());
}

TEST(TextQueryParseTest, UnterminatedQuoteIsTolerated) {
  TextQuery q = ParseTextQuery("\"unclosed phrase here");
  // Degrades to plain words after the quote.
  EXPECT_EQ(q.clauses.size(), 3u);
}

TEST(TextQueryEvaluateTest, ConjunctionAcrossClauseKinds) {
  InvertedIndex ix;
  ix.Add(1, "the technology gap is shrinking fast");
  ix.Add(2, "technology gap widening");
  ix.Add(3, "gap technology shrinking");
  TextQuery q = ParseTextQuery("\"technology gap\" shrink*");
  auto hits = Evaluate(q, ix);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

TEST(TextQueryEvaluateTest, EmptyQueryReturnsNothing) {
  InvertedIndex ix;
  ix.Add(1, "anything");
  EXPECT_TRUE(Evaluate(TextQuery{}, ix).empty());
}

TEST(TextQueryMatchesTest, AgreesWithIndexEvaluation) {
  std::vector<std::string> texts = {
      "the technology gap is shrinking fast",
      "technology gap widening",
      "gap technology shrinking",
      "engines and engineering",
      "",
  };
  InvertedIndex ix;
  for (size_t i = 0; i < texts.size(); ++i) ix.Add(i + 1, texts[i]);
  for (const char* key :
       {"technology", "\"technology gap\"", "eng*", "gap shrinking",
        "\"technology gap\" shrinking", "absent"}) {
    TextQuery q = ParseTextQuery(key);
    auto hits = Evaluate(q, ix);
    for (size_t i = 0; i < texts.size(); ++i) {
      bool in_hits = std::find(hits.begin(), hits.end(), i + 1) != hits.end();
      EXPECT_EQ(Matches(q, texts[i]), in_hits)
          << "key=" << key << " text=" << texts[i];
    }
  }
}

TEST(TextQueryMatchesTest, PhraseBoundaries) {
  TextQuery q = ParseTextQuery("\"a b\"");
  EXPECT_TRUE(Matches(q, "x a b y"));
  EXPECT_TRUE(Matches(q, "a b"));
  EXPECT_FALSE(Matches(q, "a x b"));
  EXPECT_FALSE(Matches(q, "b a"));
  EXPECT_FALSE(Matches(q, "a"));
}

}  // namespace
}  // namespace netmark::textindex
