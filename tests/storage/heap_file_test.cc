#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "common/temp_dir.h"

namespace netmark::storage {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("heaptest");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    Reopen();
  }

  void Reopen() {
    heap_.reset();
    pager_.reset();
    auto pager = Pager::Open((dir_->path() / "t.heap").string());
    ASSERT_TRUE(pager.ok());
    pager_ = std::move(*pager);
    auto heap = HeapFile::Open(pager_.get());
    ASSERT_TRUE(heap.ok());
    heap_ = std::make_unique<HeapFile>(std::move(*heap));
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<HeapFile> heap_;
};

TEST_F(HeapFileTest, InsertGetRoundTrip) {
  auto id = heap_->Insert("record one");
  ASSERT_TRUE(id.ok());
  auto got = heap_->Get(*id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "record one");
  EXPECT_EQ(heap_->live_records(), 1u);
}

TEST_F(HeapFileTest, GetMissingIsNotFound) {
  EXPECT_TRUE(heap_->Get(RowId(0, 3)).status().IsNotFound() ||
              !heap_->Get(RowId(0, 3)).ok());
  auto id = heap_->Insert("x");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(heap_->Delete(*id).ok());
  EXPECT_FALSE(heap_->Get(*id).ok());
  EXPECT_FALSE(heap_->Exists(*id));
}

TEST_F(HeapFileTest, SpillsAcrossPages) {
  std::vector<RowId> ids;
  const std::string record(1000, 'z');
  for (int i = 0; i < 50; ++i) {  // > 8KiB total, must span pages
    auto id = heap_->Insert(record + std::to_string(i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_GT(pager_->page_count(), 1u);
  for (int i = 0; i < 50; ++i) {
    auto got = heap_->Get(ids[static_cast<size_t>(i)]);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, record + std::to_string(i));
  }
}

TEST_F(HeapFileTest, OverflowRecordRoundTrip) {
  // 100 KiB record: must chain multiple overflow pages.
  std::string big;
  big.reserve(100 * 1024);
  for (int i = 0; i < 100 * 1024; ++i) big += static_cast<char>('a' + (i % 26));
  auto id = heap_->Insert(big);
  ASSERT_TRUE(id.ok());
  auto got = heap_->Get(*id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, big);
  // Normal records continue to work around it.
  auto small = heap_->Insert("small");
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(*heap_->Get(*small), "small");
}

TEST_F(HeapFileTest, UpdateInPlaceAndGrowing) {
  auto id = heap_->Insert("initial record content");
  ASSERT_TRUE(id.ok());
  // Shrink: in place.
  ASSERT_TRUE(heap_->Update(*id, "tiny but 9+ bytes").ok());
  EXPECT_EQ(*heap_->Get(*id), "tiny but 9+ bytes");
  // Grow: relocates, RowId stays valid.
  std::string grown(5000, 'g');
  ASSERT_TRUE(heap_->Update(*id, grown).ok());
  EXPECT_EQ(*heap_->Get(*id), grown);
  // Grow to overflow size through the same RowId.
  std::string huge(50000, 'h');
  ASSERT_TRUE(heap_->Update(*id, huge).ok());
  EXPECT_EQ(*heap_->Get(*id), huge);
  EXPECT_EQ(heap_->live_records(), 1u);
}

TEST_F(HeapFileTest, RepeatedGrowingUpdatesCollapseChains) {
  auto id = heap_->Insert("start record!");
  ASSERT_TRUE(id.ok());
  for (int i = 1; i <= 20; ++i) {
    std::string content(static_cast<size_t>(100 * i), 'u');
    ASSERT_TRUE(heap_->Update(*id, content).ok()) << i;
    EXPECT_EQ(heap_->Get(*id)->size(), content.size());
  }
  EXPECT_EQ(heap_->live_records(), 1u);
}

TEST_F(HeapFileTest, ScanVisitsEachLogicalRecordOnce) {
  auto a = heap_->Insert("aaaaaaaaaaaa");
  auto b = heap_->Insert("bbbbbbbbbbbb");
  auto c = heap_->Insert("cccccccccccc");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  // Relocate b so a forward pointer exists.
  ASSERT_TRUE(heap_->Update(*b, std::string(6000, 'B')).ok());
  // Delete c.
  ASSERT_TRUE(heap_->Delete(*c).ok());

  std::map<uint64_t, std::string> seen;
  ASSERT_TRUE(heap_
                  ->Scan([&](RowId id, std::string_view rec) {
                    EXPECT_EQ(seen.count(id.Pack()), 0u) << "duplicate visit";
                    seen[id.Pack()] = std::string(rec);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[a->Pack()], "aaaaaaaaaaaa");
  EXPECT_EQ(seen[b->Pack()], std::string(6000, 'B'));
}

TEST_F(HeapFileTest, PersistsAcrossReopen) {
  auto a = heap_->Insert("persist me");
  std::string big(30000, 'P');
  auto b = heap_->Insert(big);
  ASSERT_TRUE(a.ok() && b.ok());
  RowId ra = *a;
  RowId rb = *b;
  ASSERT_TRUE(pager_->Flush().ok());
  Reopen();
  EXPECT_EQ(heap_->live_records(), 2u);
  EXPECT_EQ(*heap_->Get(ra), "persist me");
  EXPECT_EQ(*heap_->Get(rb), big);
  // Appending after reopen lands in a valid position.
  auto c = heap_->Insert("after reopen");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*heap_->Get(*c), "after reopen");
}

TEST_F(HeapFileTest, RandomizedWorkloadMatchesReferenceMap) {
  netmark::Rng rng(2025);
  std::map<uint64_t, std::string> reference;
  std::vector<RowId> live;
  for (int step = 0; step < 2000; ++step) {
    double dice = rng.UniformDouble();
    if (dice < 0.55 || live.empty()) {
      size_t len = 9 + rng.Uniform(300);
      std::string rec;
      for (size_t i = 0; i < len; ++i) {
        rec += static_cast<char>('a' + rng.Uniform(26));
      }
      auto id = heap_->Insert(rec);
      ASSERT_TRUE(id.ok());
      reference[id->Pack()] = rec;
      live.push_back(*id);
    } else if (dice < 0.8) {
      size_t pick = rng.Uniform(live.size());
      size_t len = 9 + rng.Uniform(600);
      std::string rec(len, static_cast<char>('A' + rng.Uniform(26)));
      ASSERT_TRUE(heap_->Update(live[pick], rec).ok());
      reference[live[pick].Pack()] = rec;
    } else {
      size_t pick = rng.Uniform(live.size());
      ASSERT_TRUE(heap_->Delete(live[pick]).ok());
      reference.erase(live[pick].Pack());
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  EXPECT_EQ(heap_->live_records(), reference.size());
  for (const auto& [packed, expected] : reference) {
    auto got = heap_->Get(RowId::Unpack(packed));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, expected);
  }
  size_t scanned = 0;
  ASSERT_TRUE(heap_
                  ->Scan([&](RowId id, std::string_view rec) {
                    ++scanned;
                    EXPECT_EQ(reference.at(id.Pack()), std::string(rec));
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(scanned, reference.size());
}

}  // namespace
}  // namespace netmark::storage
