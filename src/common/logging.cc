#include "common/logging.h"

#include <cstdio>

namespace netmark {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::Log(LogLevel level, const char* file, int line,
                 const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  // Strip directories from __FILE__ for terse output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s] %s:%d %s\n", LevelName(level), base, line,
               message.c_str());
}

}  // namespace netmark
