// netmark — the command-line front end.
//
//   netmark ingest  --data DIR FILE...              ingest documents
//   netmark ls      --data DIR                      list stored documents
//   netmark get     --data DIR DOCID                print reconstructed XML
//   netmark rm      --data DIR DOCID                delete a document
//   netmark query   --data DIR QUERY [--xslt FILE]  run an XDB query
//   netmark serve   --data DIR [--port N] [--drop DIR] [--databanks FILE]
//                                                   run the HTTP server
//   netmark remote  --host H --port P QUERY         query a running server
//
// QUERY is an XDB query string, e.g. "context=Budget&content=engine".

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/temp_dir.h"
#include "core/netmark.h"
#include "federation/databank_config.h"
#include "server/http_client.h"
#include "server/source_factory.h"

namespace {

using namespace netmark;

int Fail(const std::string& message) {
  std::fprintf(stderr, "netmark: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  netmark ingest --data DIR FILE...\n"
               "  netmark ls     --data DIR\n"
               "  netmark get    --data DIR DOCID\n"
               "  netmark rm     --data DIR DOCID\n"
               "  netmark query  --data DIR QUERY [--xslt FILE]\n"
               "  netmark serve  --data DIR [--port N] [--drop DIR] "
               "[--databanks FILE] [--config FILE]\n"
               "  netmark remote --host H --port P QUERY\n");
  return 2;
}

// Minimal flag parsing: --key value pairs plus positional arguments.
struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;
};

Args ParseArgs(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      args.flags[arg.substr(2)] = argv[++i];
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

Result<std::unique_ptr<Netmark>> OpenFromArgs(const Args& args) {
  auto it = args.flags.find("data");
  if (it == args.flags.end()) {
    return Status::InvalidArgument("--data DIR is required");
  }
  NetmarkOptions options;
  options.data_dir = it->second;
  return Netmark::Open(options);
}

int CmdIngest(const Args& args) {
  auto nm = OpenFromArgs(args);
  if (!nm.ok()) return Fail(nm.status().ToString());
  if (args.positional.empty()) return Fail("no files given");
  for (const std::string& file : args.positional) {
    auto id = (*nm)->IngestFile(file);
    if (!id.ok()) return Fail(file + ": " + id.status().ToString());
    std::printf("%s -> doc %lld\n", file.c_str(), static_cast<long long>(*id));
  }
  Status st = (*nm)->store()->Flush();
  if (!st.ok()) return Fail(st.ToString());
  return 0;
}

int CmdLs(const Args& args) {
  auto nm = OpenFromArgs(args);
  if (!nm.ok()) return Fail(nm.status().ToString());
  auto docs = (*nm)->ListDocuments();
  if (!docs.ok()) return Fail(docs.status().ToString());
  std::printf("%6s %10s %s\n", "id", "bytes", "name");
  for (const auto& doc : *docs) {
    std::printf("%6lld %10lld %s\n", static_cast<long long>(doc.doc_id),
                static_cast<long long>(doc.file_size), doc.file_name.c_str());
  }
  return 0;
}

int CmdGet(const Args& args) {
  auto nm = OpenFromArgs(args);
  if (!nm.ok()) return Fail(nm.status().ToString());
  if (args.positional.size() != 1) return Fail("expected one DOCID");
  auto id = ParseInt64(args.positional[0]);
  if (!id.ok()) return Fail("bad document id: " + args.positional[0]);
  auto xml = (*nm)->GetDocumentXml(*id);
  if (!xml.ok()) return Fail(xml.status().ToString());
  std::printf("%s\n", xml->c_str());
  return 0;
}

int CmdRm(const Args& args) {
  auto nm = OpenFromArgs(args);
  if (!nm.ok()) return Fail(nm.status().ToString());
  if (args.positional.size() != 1) return Fail("expected one DOCID");
  auto id = ParseInt64(args.positional[0]);
  if (!id.ok()) return Fail("bad document id: " + args.positional[0]);
  Status st = (*nm)->DeleteDocument(*id);
  if (!st.ok()) return Fail(st.ToString());
  st = (*nm)->store()->Flush();
  if (!st.ok()) return Fail(st.ToString());
  std::printf("deleted doc %lld\n", static_cast<long long>(*id));
  return 0;
}

int CmdQuery(const Args& args) {
  auto nm = OpenFromArgs(args);
  if (!nm.ok()) return Fail(nm.status().ToString());
  if (args.positional.size() != 1) return Fail("expected one QUERY string");
  auto xslt_flag = args.flags.find("xslt");
  if (xslt_flag != args.flags.end()) {
    auto sheet = ReadFile(xslt_flag->second);
    if (!sheet.ok()) return Fail(sheet.status().ToString());
    auto out = (*nm)->QueryAndTransform(args.positional[0], *sheet);
    if (!out.ok()) return Fail(out.status().ToString());
    std::printf("%s\n", out->c_str());
    return 0;
  }
  auto out = (*nm)->QueryToXml(args.positional[0]);
  if (!out.ok()) return Fail(out.status().ToString());
  std::printf("%s\n", out->c_str());
  return 0;
}

int CmdServe(const Args& args) {
  auto nm = OpenFromArgs(args);
  if (!nm.ok()) return Fail(nm.status().ToString());

  // Server INI: [server] log_level / slow_query_ms. Matching env vars
  // (NETMARK_LOG_LEVEL, NETMARK_SLOW_QUERY_MS) always win over the file.
  auto config_flag = args.flags.find("config");
  if (config_flag != args.flags.end()) {
    auto config = Config::Load(config_flag->second);
    if (!config.ok()) return Fail(config.status().ToString());
    auto level = config->Get("server", "log_level");
    if (level.ok() && std::getenv("NETMARK_LOG_LEVEL") == nullptr) {
      Logger::Instance().SetLevel(
          ParseLogLevel(level->c_str(), Logger::Instance().level()));
    }
    int64_t slow_ms = config->GetIntOr("server", "slow_query_ms",
                                       (*nm)->service()->slow_query_ms());
    (*nm)->service()->set_slow_query_ms(slow_ms);
    std::printf("loaded server config from %s (slow_query_ms=%lld)\n",
                config_flag->second.c_str(),
                static_cast<long long>((*nm)->service()->slow_query_ms()));
  }

  auto banks = args.flags.find("databanks");
  if (banks != args.flags.end()) {
    auto text = ReadFile(banks->second);
    if (!text.ok()) return Fail(text.status().ToString());
    auto config = federation::ParseDatabankConfig(*text);
    if (!config.ok()) return Fail(config.status().ToString());
    Status st = federation::ApplyDatabankConfig(
        *config, server::DefaultSourceFactory(), (*nm)->router());
    if (!st.ok()) return Fail(st.ToString());
    std::printf("loaded %zu sources, %zu databanks from %s\n",
                config->sources.size(), config->databanks.size(),
                banks->second.c_str());
  }

  auto drop = args.flags.find("drop");
  if (drop != args.flags.end()) {
    Status st = (*nm)->StartDaemon(drop->second);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("watching drop folder %s\n", drop->second.c_str());
  }

  uint16_t port = 0;
  auto port_flag = args.flags.find("port");
  if (port_flag != args.flags.end()) {
    auto parsed = ParseInt64(port_flag->second);
    if (!parsed.ok() || *parsed < 0 || *parsed > 65535) {
      return Fail("bad --port value");
    }
    port = static_cast<uint16_t>(*parsed);
  }
  Status st = (*nm)->StartServer(port);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("NETMARK serving on http://127.0.0.1:%u  (Ctrl-C to stop)\n",
              (*nm)->server_port());

  static volatile std::sig_atomic_t stop_requested = 0;
  std::signal(SIGINT, [](int) { stop_requested = 1; });
  std::signal(SIGTERM, [](int) { stop_requested = 1; });
  while (stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("\nshutting down\n");
  (*nm)->StopServer();
  (*nm)->StopDaemon();
  return 0;
}

int CmdRemote(const Args& args) {
  auto host = args.flags.count("host") ? args.flags.at("host") : "127.0.0.1";
  if (args.flags.count("port") == 0) return Fail("--port is required");
  auto port = ParseInt64(args.flags.at("port"));
  if (!port.ok() || *port <= 0 || *port > 65535) return Fail("bad --port value");
  if (args.positional.size() != 1) return Fail("expected one QUERY string");
  server::HttpClient client(host, static_cast<uint16_t>(*port));
  auto resp = client.Get("/xdb?" + args.positional[0]);
  if (!resp.ok()) return Fail(resp.status().ToString());
  if (resp->status != 200) {
    return Fail("HTTP " + std::to_string(resp->status) + ": " + resp->body);
  }
  std::printf("%s\n", resp->body.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args = ParseArgs(argc, argv, 2);
  if (command == "ingest") return CmdIngest(args);
  if (command == "ls") return CmdLs(args);
  if (command == "get") return CmdGet(args);
  if (command == "rm") return CmdRm(args);
  if (command == "query") return CmdQuery(args);
  if (command == "serve") return CmdServe(args);
  if (command == "remote") return CmdRemote(args);
  return Usage();
}
