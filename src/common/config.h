// INI-style configuration files.
//
// The NETMARK daemon passes "HTML or XML configuration files" to the SGML
// parser to control node typing (paper §2.1.1); this module parses the
// sectioned key=value format those files use.

#ifndef NETMARK_COMMON_CONFIG_H_
#define NETMARK_COMMON_CONFIG_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace netmark {

/// \brief Parsed sectioned key=value configuration.
///
/// Format: `[section]` headers, `key = value` lines, `#` or `;` comments.
/// Keys outside any section land in the "" section. Section and key lookups
/// are case-insensitive; values preserve case.
class Config {
 public:
  /// Parses configuration text.
  static Result<Config> Parse(std::string_view text);
  /// Reads and parses a configuration file.
  static Result<Config> Load(const std::string& path);

  /// Value lookup; returns NotFound if absent.
  Result<std::string> Get(std::string_view section, std::string_view key) const;
  /// Value lookup with a default.
  std::string GetOr(std::string_view section, std::string_view key,
                    std::string fallback) const;
  Result<int64_t> GetInt(std::string_view section, std::string_view key) const;
  int64_t GetIntOr(std::string_view section, std::string_view key,
                   int64_t fallback) const;
  bool GetBoolOr(std::string_view section, std::string_view key, bool fallback) const;

  bool HasSection(std::string_view section) const;
  /// All keys of a section (lower-cased), in insertion order.
  std::vector<std::string> Keys(std::string_view section) const;
  /// All section names (lower-cased), in insertion order.
  std::vector<std::string> Sections() const;

  /// Sets (or overwrites) a value programmatically.
  void Set(std::string_view section, std::string_view key, std::string value);

 private:
  struct Section {
    std::string name;  // lower-cased
    std::vector<std::pair<std::string, std::string>> entries;  // key lower-cased
  };
  const Section* FindSection(std::string_view name) const;
  Section* FindOrCreateSection(std::string_view name);

  std::vector<Section> sections_;
};

}  // namespace netmark

#endif  // NETMARK_COMMON_CONFIG_H_
