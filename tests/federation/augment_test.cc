#include "federation/augment.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace netmark::federation {
namespace {

TEST(AugmentTest, ExtractsFlatSections) {
  auto doc = xml::ParseXml(
      "<html><h1>One</h1><p>first body</p><p>more</p>"
      "<h1>Two</h1><p>second body</p></html>");
  ASSERT_TRUE(doc.ok());
  auto sections = ExtractSections(*doc);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].heading, "One");
  EXPECT_EQ(sections[0].text, "first body more");
  EXPECT_EQ(sections[1].heading, "Two");
  EXPECT_EQ(sections[1].text, "second body");
  EXPECT_NE(sections[0].markup.find("<p>first body</p>"), std::string::npos);
}

TEST(AugmentTest, UpmarkedContextContentPairs) {
  auto doc = xml::ParseXml(
      "<document><context>Title</context><content>Engine lesson</content>"
      "<context>Lesson</context><content>Inspect often.</content></document>");
  ASSERT_TRUE(doc.ok());
  auto sections = ExtractSections(*doc);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].heading, "Title");
  EXPECT_EQ(sections[0].text, "Engine lesson");
}

TEST(AugmentTest, NestedHeadingsFoundAtAnyDepth) {
  auto doc = xml::ParseXml(
      "<html><body><div><h2>Deep</h2><p>deep body</p></div></body></html>");
  ASSERT_TRUE(doc.ok());
  auto sections = ExtractSections(*doc);
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].heading, "Deep");
  EXPECT_EQ(sections[0].text, "deep body");
}

TEST(AugmentTest, NoHeadingsMeansNoSections) {
  auto doc = xml::ParseXml("<d><p>just text</p></d>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(ExtractSections(*doc).empty());
}

TEST(AugmentTest, FromMarkupFallsBackToHtml) {
  // Unbalanced markup rejected by the XML parser goes through HTML parsing.
  auto sections = ExtractSectionsFromMarkup(
      "<html><h1>Loose</h1><p>unclosed paragraph</html>");
  ASSERT_TRUE(sections.ok());
  ASSERT_EQ(sections->size(), 1u);
  EXPECT_EQ((*sections)[0].heading, "Loose");
}

TEST(AugmentTest, CustomNodeTypeConfig) {
  xml::NodeTypeConfig cfg;  // empty: nothing is a context tag
  auto doc = xml::ParseXml("<d><h1>Not A Heading Now</h1><p>x</p></d>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(ExtractSections(*doc, cfg).empty());
  cfg.AddContextTag("p");
  auto sections = ExtractSections(*doc, cfg);
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].heading, "x");
}

}  // namespace
}  // namespace netmark::federation
