#include "server/http_message.h"

#include <gtest/gtest.h>

namespace netmark::server {
namespace {

TEST(HttpMessageTest, ParsesRequestLineHeadersBody) {
  auto req = ParseRequest(
      "PUT /docs/report.txt?x=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: text/plain\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "hello");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->method, "PUT");
  EXPECT_EQ(req->target, "/docs/report.txt?x=1");
  EXPECT_EQ(req->path, "/docs/report.txt");
  EXPECT_EQ(req->query, "x=1");
  EXPECT_EQ(req->Header("content-type"), "text/plain");  // case-insensitive
  EXPECT_EQ(req->Header("HOST"), "localhost");
  EXPECT_EQ(req->body, "hello");
}

TEST(HttpMessageTest, PercentEncodedPathDecoded) {
  auto req = ParseRequest("GET /docs/my%20file.txt HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->path, "/docs/my file.txt");
}

TEST(HttpMessageTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseRequest("GET /x HTTP/1.1\r\n").ok());  // no blank line
  EXPECT_FALSE(ParseRequest("GARBAGE\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequest("GET /x NOTHTTP\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequest("GET /x HTTP/1.1\r\nBadHeader\r\n\r\n").ok());
}

TEST(HttpMessageTest, RequestSerializeParseRoundTrip) {
  HttpRequest req;
  req.method = "PROPFIND";
  req.target = "/docs";
  req.headers["Depth"] = "1";
  req.body = "body bytes";
  auto parsed = ParseRequest(req.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->method, "PROPFIND");
  EXPECT_EQ(parsed->Header("Depth"), "1");
  EXPECT_EQ(parsed->Header("Content-Length"), "10");
  EXPECT_EQ(parsed->body, "body bytes");
}

TEST(HttpMessageTest, ResponseSerializeParseRoundTrip) {
  HttpResponse resp = HttpResponse::Ok("<r/>", "text/xml");
  auto parsed = ParseResponse(resp.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->reason, "OK");
  EXPECT_EQ(parsed->headers["content-type"], "text/xml");
  EXPECT_EQ(parsed->body, "<r/>");
}

TEST(HttpMessageTest, StatusFactories) {
  EXPECT_EQ(HttpResponse::NotFound("x").status, 404);
  EXPECT_EQ(HttpResponse::BadRequest("x").status, 400);
  EXPECT_EQ(HttpResponse::ServerError("x").status, 500);
  EXPECT_EQ(HttpResponse::Text(207, "").reason, "Multi-Status");
  EXPECT_EQ(HttpResponse::Text(201, "").reason, "Created");
}

TEST(HttpMessageTest, ParseResponseErrors) {
  EXPECT_FALSE(ParseResponse("junk").ok());
  EXPECT_FALSE(ParseResponse("HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(ParseResponse("HTTP/1.1 abc OK\r\n\r\n").ok());
}

TEST(HttpMessageTest, SplitTargetEdgeCases) {
  std::string path, query;
  ASSERT_TRUE(SplitTarget("/a", &path, &query).ok());
  EXPECT_EQ(path, "/a");
  EXPECT_TRUE(query.empty());
  ASSERT_TRUE(SplitTarget("/a?b=c&d=e", &path, &query).ok());
  EXPECT_EQ(query, "b=c&d=e");
  EXPECT_FALSE(SplitTarget("/bad%zz", &path, &query).ok());
}

}  // namespace
}  // namespace netmark::server
