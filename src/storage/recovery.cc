#include "storage/recovery.h"

#include <filesystem>
#include <map>
#include <memory>
#include <set>

#include "common/clock.h"
#include "storage/crash_point.h"
#include "storage/page.h"
#include "storage/wal.h"

namespace netmark::storage {

namespace fs = std::filesystem;

namespace {

class FileCache {
 public:
  explicit FileCache(netmark::Env* env) : env_(env) {}
  netmark::Result<netmark::File*> Get(const std::string& dir,
                                      const std::string& table) {
    auto it = files_.find(table);
    if (it != files_.end()) return it->second.get();
    // Must match Database::TableFilePath.
    std::string path = (fs::path(dir) / (table + ".heap")).string();
    auto opened = env_->OpenFile(path, /*create=*/true);
    if (!opened.ok()) return opened.status().WithContext("recovery open");
    netmark::File* raw = opened->get();
    files_[table] = std::move(*opened);
    return raw;
  }
  netmark::Status SyncAll() {
    for (auto& [name, file] : files_) {
      NETMARK_RETURN_NOT_OK(file->Sync().WithContext("recovery fsync"));
    }
    return netmark::Status::OK();
  }

 private:
  netmark::Env* env_;
  std::map<std::string, std::unique_ptr<netmark::File>> files_;
};

}  // namespace

netmark::Result<RecoveryStats> RecoverDatabase(const std::string& dir,
                                               const std::string& wal_path,
                                               netmark::Env* env) {
  if (env == nullptr) env = netmark::Env::Default();
  RecoveryStats stats;
  int64_t start = netmark::MonotonicMicros();
  NETMARK_ASSIGN_OR_RETURN(WalScan scan, Wal::ReadRecords(wal_path));
  stats.records_scanned = scan.records.size();
  stats.torn_tail = scan.torn_tail;
  if (scan.records.empty() && !scan.torn_tail) {
    stats.micros = netmark::MonotonicMicros() - start;
    return stats;  // empty or absent log: nothing to do
  }
  stats.performed = true;

  // Pass 1: which transactions committed?
  std::set<uint64_t> committed;
  std::set<uint64_t> seen;
  for (const WalRecord& rec : scan.records) {
    seen.insert(rec.txn_id);
    if (rec.type == WalRecordType::kCommit) committed.insert(rec.txn_id);
  }
  stats.committed_txns = committed.size();
  stats.uncommitted_txns = seen.size() - committed.size();

  // Pass 2: redo committed page images in LSN order. Full-page physical
  // redo is idempotent, so a crash during this loop just means the next
  // open replays again.
  FileCache files(env);
  for (const WalRecord& rec : scan.records) {
    if (rec.type != WalRecordType::kPageImage) continue;
    if (committed.count(rec.txn_id) == 0) continue;
    NETMARK_ASSIGN_OR_RETURN(netmark::File * file, files.Get(dir, rec.table));
    NETMARK_RETURN_NOT_OK(
        file->Write(static_cast<uint64_t>(rec.page_id) * kPageSize,
                    rec.image.data(), rec.image.size())
            .WithContext("recovery page write"));
    ++stats.pages_applied;
    stats.last_lsn = rec.lsn;
    MaybeCrashPoint("recovery_page_applied");
  }
  NETMARK_RETURN_NOT_OK(files.SyncAll());
  MaybeCrashPoint("recovery_before_truncate");

  // Heap files are durable; retire the log.
  if (env->FileExists(wal_path)) {
    NETMARK_ASSIGN_OR_RETURN(std::unique_ptr<netmark::File> wal_file,
                             env->OpenFile(wal_path, /*create=*/false));
    NETMARK_RETURN_NOT_OK(
        wal_file->Truncate(0).WithContext("recovery wal truncate"));
    NETMARK_RETURN_NOT_OK(wal_file->Sync().WithContext("recovery wal truncate"));
  }
  stats.micros = netmark::MonotonicMicros() - start;
  return stats;
}

}  // namespace netmark::storage
