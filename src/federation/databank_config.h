// Declarative databank configuration (paper §2.1.5: "a simple declarative
// process where an administrator creates a 'Databank' for an application").
//
// INI format (section and source names are case-insensitive):
//
//   [source:ames-store]
//   kind = local            ; an on-disk NETMARK store
//   path = /data/ames
//
//   [source:lessons]
//   kind = remote           ; another NETMARK instance over HTTP
//   host = 127.0.0.1
//   port = 8080
//   capabilities = content  ; optional: full (default) | content
//   timeout_ms = 2000       ; optional: per-attempt budget for this source
//   max_retries = 1         ; optional: retries beyond the first attempt
//   breaker_failures = 3    ; optional: consecutive failures that trip the
//                           ;   circuit breaker (0 disables it)
//   breaker_cooldown_ms = 5000  ; optional: open -> half-open cool-down
//
//   [databank:anomalies]
//   sources = ames-store, lessons

#ifndef NETMARK_FEDERATION_DATABANK_CONFIG_H_
#define NETMARK_FEDERATION_DATABANK_CONFIG_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/result.h"
#include "federation/router.h"

namespace netmark::federation {

/// Parsed declaration of one source.
struct SourceDecl {
  std::string name;
  std::string kind;  ///< "local" | "remote"
  std::string path;  ///< local: store directory
  std::string host;  ///< remote
  uint16_t port = 0;
  Capabilities capabilities = Capabilities::Full();
  /// Resilience overrides (timeout_ms / max_retries / breaker_* keys).
  SourcePolicy policy;
};

/// Parsed declaration of one databank.
struct DatabankDecl {
  std::string name;
  std::vector<std::string> sources;
};

/// The whole configuration.
struct DatabankConfig {
  std::vector<SourceDecl> sources;
  std::vector<DatabankDecl> databanks;
};

/// \brief Parses databank configuration text (validating kinds, ports, and
/// that databanks reference declared sources).
netmark::Result<DatabankConfig> ParseDatabankConfig(std::string_view text);

/// Factory turning a SourceDecl into a live Source. The default factory
/// (used by ApplyDatabankConfig when none is given) opens local stores from
/// disk and connects remote sources over HTTP — callers in tests inject
/// fakes here.
using SourceFactory =
    std::function<netmark::Result<std::shared_ptr<Source>>(const SourceDecl&)>;

/// \brief Instantiates every declared source and databank into `router`.
netmark::Status ApplyDatabankConfig(const DatabankConfig& config,
                                    const SourceFactory& factory, Router* router);

}  // namespace netmark::federation

#endif  // NETMARK_FEDERATION_DATABANK_CONFIG_H_
