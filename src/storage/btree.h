// In-memory B+Tree mapping composite Value keys to RowIds.
//
// Used for secondary indexes over heap tables. Duplicate keys are allowed;
// entries are unique on (key, rowid). Indexes are rebuilt from a heap scan at
// database open (the heap file is the durable representation), which keeps
// the index code free of paging concerns while the base data remains fully
// persistent — the same recovery discipline several embedded stores use for
// secondary structures.
//
// Deletion is implemented precisely (entry removal) with lazy structural
// rebalancing: leaves may underflow below the usual B+Tree minimum, which
// affects only space, never search correctness. Property tests in
// tests/storage assert ordering, balance-at-insert, and lookup equivalence
// against a reference std::multimap.

#ifndef NETMARK_STORAGE_BTREE_H_
#define NETMARK_STORAGE_BTREE_H_

#include <functional>
#include <memory>
#include <vector>

#include "storage/row_id.h"
#include "storage/value.h"

namespace netmark::storage {

/// Composite index key.
using IndexKey = std::vector<Value>;

/// Lexicographic comparison of composite keys. A shorter key that is a
/// prefix of a longer one compares less — which is exactly the behaviour
/// prefix range-scans need.
int CompareKeys(const IndexKey& a, const IndexKey& b);

/// \brief B+Tree with duplicate-key support.
class BTree {
 public:
  // Node/Entry are implementation details; they are forward-declared here
  // (rather than in the private section) so internal helper functions can
  // name them. They remain incomplete types to library users.
  struct Node;
  struct Entry;

  explicit BTree(int fanout = 64);
  ~BTree();
  BTree(BTree&&) noexcept;
  BTree& operator=(BTree&&) noexcept;
  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts (key, rid). Duplicate (key, rid) pairs are ignored.
  void Insert(const IndexKey& key, RowId rid);

  /// Removes (key, rid); returns true if it was present.
  bool Remove(const IndexKey& key, RowId rid);

  /// All RowIds whose key equals `key` exactly.
  std::vector<RowId> Lookup(const IndexKey& key) const;

  /// All RowIds with lo <= key <= hi (inclusive range).
  std::vector<RowId> Range(const IndexKey& lo, const IndexKey& hi) const;

  /// All RowIds whose key begins with `prefix` (component-wise equality on
  /// the prefix components).
  std::vector<RowId> PrefixLookup(const IndexKey& prefix) const;

  /// Visits entries in key order; return false from the visitor to stop.
  void VisitAll(const std::function<bool(const IndexKey&, RowId)>& visitor) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const;

  /// Structural invariant check (ordering within and across nodes, child
  /// counts, uniform leaf depth). Used by tests.
  bool CheckInvariants() const;

 private:
  Node* FindLeaf(const IndexKey& key) const;
  void SplitChild(Node* parent, int index);
  void InsertNonFull(Node* node, const IndexKey& key, RowId rid);

  std::unique_ptr<Node> root_;
  int fanout_;
  size_t size_ = 0;
};

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_BTREE_H_
