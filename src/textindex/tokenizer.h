// Tokenizer for the text index: lower-cased alphanumeric terms with
// positions. Bytes >= 0x80 (UTF-8 continuation/lead bytes) are treated as
// letters so non-ASCII words survive intact.

#ifndef NETMARK_TEXTINDEX_TOKENIZER_H_
#define NETMARK_TEXTINDEX_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace netmark::textindex {

/// One token with its ordinal position in the source text.
struct Token {
  std::string term;
  uint32_t position;

  bool operator==(const Token& o) const {
    return term == o.term && position == o.position;
  }
};

/// \brief Splits text into lower-cased terms. Positions are term ordinals
/// (0, 1, 2, ...), which is what phrase matching needs.
std::vector<Token> Tokenize(std::string_view text);

/// \brief Tokenizes and returns just the terms.
std::vector<std::string> TokenizeTerms(std::string_view text);

}  // namespace netmark::textindex

#endif  // NETMARK_TEXTINDEX_TOKENIZER_H_
