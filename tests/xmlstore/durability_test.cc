// Crash durability at the store level: committed documents survive a
// SIGKILL-shaped stop (nothing flushed, WAL intact), and a checkpointer
// running concurrently with a writer never tears the store.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "common/temp_dir.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xmlstore/xml_store.h"

namespace netmark::xmlstore {
namespace {

namespace fs = std::filesystem;

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("durability");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
  }

  std::unique_ptr<XmlStore> OpenAt(const std::string& path,
                                   storage::StorageOptions options = {}) {
    auto store = XmlStore::Open(path, xml::NodeTypeConfig::Default(), options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return store.ok() ? std::move(*store) : nullptr;
  }

  int64_t Insert(XmlStore* store, const std::string& markup,
                 const std::string& name) {
    auto doc = xml::ParseXml(markup);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    DocumentInfo info;
    info.file_name = name;
    info.file_date = 1118700000;
    info.file_size = static_cast<int64_t>(markup.size());
    auto id = store->InsertDocument(*doc, info);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return id.ok() ? *id : -1;
  }

  std::string Markup(int i) {
    return "<report><context>Budget</context><content>fiscal item " +
           std::to_string(i) + " for the shuttle program</content></report>";
  }

  /// Copies the live store directory — the moral equivalent of the machine
  /// dying: whatever reached the filesystem is all a restart gets.
  std::string CrashCopy() {
    fs::path copy = dir_->path() / "crash_copy";
    fs::copy(dir_->path() / "store", copy);
    return copy.string();
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(DurabilityTest, CommittedDocsSurviveCrashBeforeAnyCheckpoint) {
  std::string live = (dir_->path() / "store").string();
  std::unique_ptr<XmlStore> store = OpenAt(live);
  ASSERT_NE(store, nullptr);
  std::vector<std::string> expected;
  for (int i = 0; i < 5; ++i) {
    ASSERT_GT(Insert(store.get(), Markup(i), "doc" + std::to_string(i)), 0);
    auto doc = xml::ParseXml(Markup(i));
    expected.push_back(xml::Serialize(*doc));
  }
  // No Flush, no clean close: the dir copy sees empty heaps + a full log.
  std::string crashed = CrashCopy();

  std::unique_ptr<XmlStore> revived = OpenAt(crashed);
  ASSERT_NE(revived, nullptr);
  const storage::RecoveryStats& rec = revived->database()->recovery_stats();
  EXPECT_TRUE(rec.performed);
  EXPECT_EQ(rec.committed_txns, 5u);
  EXPECT_EQ(revived->document_count(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto doc = revived->Reconstruct(i + 1);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_EQ(xml::Serialize(*doc), expected[static_cast<size_t>(i)]);
  }
  // The text index was rebuilt from recovered rows: postings follow rows.
  EXPECT_FALSE(revived->TextLookup("fiscal").empty());
}

TEST_F(DurabilityTest, CrashMidDeleteRecoversAtomically) {
  std::string live = (dir_->path() / "store").string();
  std::unique_ptr<XmlStore> store = OpenAt(live);
  ASSERT_NE(store, nullptr);
  int64_t a = Insert(store.get(), Markup(1), "a.xml");
  int64_t b = Insert(store.get(), Markup(2), "b.xml");
  ASSERT_TRUE(store->DeleteDocument(a).ok());
  std::string crashed = CrashCopy();

  std::unique_ptr<XmlStore> revived = OpenAt(crashed);
  ASSERT_NE(revived, nullptr);
  // The committed delete is fully gone, the other doc fully present.
  EXPECT_EQ(revived->document_count(), 1u);
  EXPECT_TRUE(revived->Reconstruct(a).status().IsNotFound());
  EXPECT_TRUE(revived->Reconstruct(b).ok());
}

TEST_F(DurabilityTest, WalDisabledStillWorksWithoutDurability) {
  storage::StorageOptions options;
  options.wal_enabled = false;
  std::string live = (dir_->path() / "store").string();
  std::unique_ptr<XmlStore> store = OpenAt(live, options);
  ASSERT_NE(store, nullptr);
  ASSERT_GT(Insert(store.get(), Markup(1), "a.xml"), 0);
  EXPECT_EQ(store->database()->wal(), nullptr);
  ASSERT_TRUE(store->Flush().ok());
  store.reset();
  std::unique_ptr<XmlStore> reopened = OpenAt(live, options);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->document_count(), 1u);
}

TEST_F(DurabilityTest, ConcurrentWriterAndCheckpointConsistent) {
  std::string live = (dir_->path() / "store").string();
  std::unique_ptr<XmlStore> store = OpenAt(live);
  ASSERT_NE(store, nullptr);
  constexpr int kDocs = 24;

  std::thread writer([&] {
    for (int i = 0; i < kDocs; ++i) {
      Insert(store.get(), Markup(i), "doc" + std::to_string(i));
    }
  });
  std::thread checkpointer([&] {
    for (int i = 0; i < 12; ++i) {
      netmark::Status st = store->Checkpoint();
      EXPECT_TRUE(st.ok()) << st.ToString();
      std::this_thread::yield();
    }
  });
  writer.join();
  checkpointer.join();

  EXPECT_EQ(store->document_count(), static_cast<uint64_t>(kDocs));
  for (int i = 1; i <= kDocs; ++i) {
    EXPECT_TRUE(store->Reconstruct(i).ok());
  }
  // A final checkpoint then a clean reopen sees everything.
  ASSERT_TRUE(store->Checkpoint().ok());
  store.reset();
  std::unique_ptr<XmlStore> reopened = OpenAt(live);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->document_count(), static_cast<uint64_t>(kDocs));
  EXPECT_FALSE(reopened->database()->recovery_stats().performed);
}

}  // namespace
}  // namespace netmark::xmlstore
