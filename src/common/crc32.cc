#include "common/crc32.h"

#include <array>

namespace netmark {

namespace {

// Table for the Castagnoli polynomial 0x1EDC6F41 (reflected: 0x82F63B78).
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len) {
  const auto& table = Table();
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace netmark
