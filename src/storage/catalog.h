// Catalog: the persisted list of table schemas and index definitions.
//
// Stored as a line-oriented text file (`catalog.nmk`) in the database
// directory:
//   table <name>(<col>:<TYPE>[?],...)
//   index <table> <index-name> <col1,col2,...>

#ifndef NETMARK_STORAGE_CATALOG_H_
#define NETMARK_STORAGE_CATALOG_H_

#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace netmark::storage {

/// Catalog entry for one table.
struct TableDef {
  TableSchema schema;
  std::vector<IndexDef> indexes;
};

/// \brief In-memory catalog with load/save.
class Catalog {
 public:
  /// `env` defaults to Env::Default() in both calls.
  static netmark::Result<Catalog> Load(const std::string& path,
                                       netmark::Env* env = nullptr);
  netmark::Status Save(const std::string& path, netmark::Env* env = nullptr) const;

  const std::vector<TableDef>& tables() const { return tables_; }
  TableDef* Find(std::string_view table_name);
  const TableDef* Find(std::string_view table_name) const;

  netmark::Status AddTable(TableSchema schema);
  netmark::Status AddIndex(std::string_view table_name, IndexDef index);
  netmark::Status RemoveTable(std::string_view table_name);

 private:
  std::vector<TableDef> tables_;
};

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_CATALOG_H_
