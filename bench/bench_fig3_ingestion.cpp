// Fig 3 — the NETMARK system pipeline: daemon -> SGML parser / converters ->
// XML Store. Measures drag-and-drop ingestion throughput end to end (file in
// drop folder to queryable nodes) across document formats, and the staged
// parallel pipeline's scaling across upmark/parse worker counts.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "server/daemon.h"
#include "workload/corpus.h"

namespace {

using namespace netmark;

server::DaemonOptions SweepOptions(const std::filesystem::path& drop, int workers) {
  server::DaemonOptions opts;
  opts.drop_dir = drop;
  opts.worker_threads = workers;
  // Benchmarks pre-write every file; skip the still-being-written deferral.
  opts.stable_age = std::chrono::milliseconds(0);
  return opts;
}

// Full daemon path: k mixed-format files dropped, one sweep.
void BM_DaemonSweep(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  workload::CorpusGenerator gen(99);
  auto corpus = gen.MixedCorpus(k);
  uint64_t nodes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto dir = bench::Unwrap(TempDir::Make("ingest"), "dir");
    NetmarkOptions options;
    options.data_dir = dir.Sub("data").string();
    auto nm = bench::Unwrap(Netmark::Open(options), "open");
    std::filesystem::path drop = dir.Sub("drop");
    std::filesystem::create_directories(drop);
    for (const auto& doc : corpus) {
      bench::Check(WriteFile(drop / doc.file_name, doc.content), "write");
    }
    server::IngestionDaemon daemon(nm->store(), &nm->converters(),
                                   SweepOptions(drop, 0));
    state.ResumeTiming();

    int processed = bench::Unwrap(daemon.ProcessOnce(), "sweep");
    benchmark::DoNotOptimize(processed);

    state.PauseTiming();
    nodes = nm->store()->node_count();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(k));
  state.counters["docs"] = static_cast<double>(k);
  state.counters["nodes_stored"] = static_cast<double>(nodes);
  state.counters["docs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * static_cast<int64_t>(k)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DaemonSweep)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

// Worker-count scaling of one sweep over a fixed mixed corpus (the tentpole
// measurement: parallel upmark/parse feeding the single writer).
void BM_DaemonSweepWorkers(benchmark::State& state) {
  const size_t kDocs = 200;
  int workers = static_cast<int>(state.range(0));
  workload::CorpusGenerator gen(99);
  auto corpus = gen.MixedCorpus(kDocs);
  for (auto _ : state) {
    state.PauseTiming();
    auto dir = bench::Unwrap(TempDir::Make("ingestw"), "dir");
    NetmarkOptions options;
    options.data_dir = dir.Sub("data").string();
    auto nm = bench::Unwrap(Netmark::Open(options), "open");
    std::filesystem::path drop = dir.Sub("drop");
    std::filesystem::create_directories(drop);
    for (const auto& doc : corpus) {
      bench::Check(WriteFile(drop / doc.file_name, doc.content), "write");
    }
    server::IngestionDaemon daemon(nm->store(), &nm->converters(),
                                   SweepOptions(drop, workers));
    state.ResumeTiming();

    int processed = bench::Unwrap(daemon.ProcessOnce(), "sweep");
    benchmark::DoNotOptimize(processed);

    state.PauseTiming();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kDocs));
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["docs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * static_cast<int64_t>(kDocs)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DaemonSweepWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Per-format conversion+store cost (which converter dominates the pipeline?).
void BM_IngestOneFormat(benchmark::State& state, int kind) {
  workload::CorpusGenerator gen(7);
  std::vector<workload::GeneratedDoc> docs;
  for (int i = 0; i < 32; ++i) {
    switch (kind) {
      case 0: docs.push_back(gen.Proposal(i)); break;
      case 1: docs.push_back(gen.TaskPlan(i)); break;
      case 2: docs.push_back(gen.AnomalyReport(i)); break;
      case 3: docs.push_back(gen.LessonLearned(i)); break;
      case 4: docs.push_back(gen.RiskMemo(i)); break;
      default: docs.push_back(gen.BudgetSheet(i)); break;
    }
  }
  size_t i = 0;
  auto inst = bench::MakeLoadedInstance(0);
  for (auto _ : state) {
    const auto& doc = docs[i % docs.size()];
    // Unique names so every iteration is a fresh document.
    auto id = inst.nm->IngestContent(std::to_string(i) + "_" + doc.file_name,
                                     doc.content);
    bench::Check(id.status(), "ingest");
    benchmark::DoNotOptimize(*id);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["nodes_per_doc"] =
      static_cast<double>(inst.nm->store()->node_count()) /
      static_cast<double>(inst.nm->store()->document_count());
}
BENCHMARK_CAPTURE(BM_IngestOneFormat, nrt_word, 0)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_IngestOneFormat, plain_text, 1)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_IngestOneFormat, html, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_IngestOneFormat, xml, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_IngestOneFormat, markdown, 4)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_IngestOneFormat, csv, 5)->Unit(benchmark::kMicrosecond);

void PrintPipelineReport() {
  bench::ReportHeader("Fig 3: ingestion pipeline (daemon -> parser -> store)",
                      "any document format dropped into a folder becomes "
                      "queryable nodes with no per-format setup");
  bench::JsonLines json("fig3_ingestion");
  json.EmitConfig("wal=on,fsync=commit");
  auto dir = bench::Unwrap(TempDir::Make("fig3"), "dir");
  NetmarkOptions options;
  options.data_dir = dir.Sub("data").string();
  auto nm = bench::Unwrap(Netmark::Open(options), "open");
  std::filesystem::path drop = dir.Sub("drop");
  std::filesystem::create_directories(drop);
  workload::CorpusGenerator gen(123);
  const size_t kDocs = 300;
  for (const auto& doc : gen.MixedCorpus(kDocs)) {
    bench::Check(WriteFile(drop / doc.file_name, doc.content), "write");
  }
  server::IngestionDaemon daemon(nm->store(), &nm->converters(),
                                 SweepOptions(drop, 0));
  Stopwatch watch;
  int processed = bench::Unwrap(daemon.ProcessOnce(), "sweep");
  double seconds = watch.ElapsedSeconds();
  std::printf("%10s %10s %12s %14s %16s\n", "docs", "ok", "nodes", "docs/sec",
              "index terms");
  std::printf("%10d %10d %12llu %14.0f %16zu\n", static_cast<int>(kDocs), processed,
              static_cast<unsigned long long>(nm->store()->node_count()),
              static_cast<double>(processed) / seconds,
              nm->store()->text_index().num_terms());
  json.Emit("daemon_sweep", static_cast<double>(kDocs),
            seconds * 1e9 / static_cast<double>(processed),
            static_cast<double>(processed) / seconds, "docs/sec");
  std::printf("shape check: all %zu mixed-format documents ingested by one "
              "sweep, zero DDL.\n", kDocs);

  // Thread-count sweep over a fresh >= 200-file mixed corpus per worker
  // count: the speedup is measured, not asserted.
  std::printf("\n-- parallel pipeline: upmark/parse workers -> single writer --\n");
  std::printf("%8s %10s %14s %12s %14s %14s\n", "workers", "docs", "docs/sec",
              "speedup", "convert_ms", "insert_ms");
  const size_t kSweepDocs = 240;
  auto sweep_corpus = workload::CorpusGenerator(77).MixedCorpus(kSweepDocs);
  double base_rate = 0;
  for (int workers : {1, 2, 4, 8}) {
    auto wdir = bench::Unwrap(TempDir::Make("fig3w"), "dir");
    NetmarkOptions wopts;
    wopts.data_dir = wdir.Sub("data").string();
    auto wnm = bench::Unwrap(Netmark::Open(wopts), "open");
    std::filesystem::path wdrop = wdir.Sub("drop");
    std::filesystem::create_directories(wdrop);
    for (const auto& doc : sweep_corpus) {
      bench::Check(WriteFile(wdrop / doc.file_name, doc.content), "write");
    }
    server::IngestionDaemon wdaemon(wnm->store(), &wnm->converters(),
                                    SweepOptions(wdrop, workers));
    Stopwatch wwatch;
    int ok = bench::Unwrap(wdaemon.ProcessOnce(), "sweep");
    double wsec = wwatch.ElapsedSeconds();
    server::DaemonCounters counters = wdaemon.counters();
    double rate = static_cast<double>(ok) / wsec;
    if (workers == 1) base_rate = rate;
    std::printf("%8d %10d %14.0f %11.2fx %14.1f %14.1f\n", workers, ok, rate,
                base_rate > 0 ? rate / base_rate : 1.0,
                static_cast<double>(counters.convert_ns) * 1e-6,
                static_cast<double>(counters.insert_ns) * 1e-6);
    json.Emit("thread_sweep", static_cast<double>(workers),
              wsec * 1e9 / static_cast<double>(ok), rate, "docs/sec");
  }
  std::printf("shape check: identical doc-id assignment at every worker count "
              "(writer commits in sorted-filename order).\n");

  // Durability cost: one sweep over the same corpus under each WAL mode,
  // plus the redo-recovery time for the strongest mode (crash simulated by
  // copying the live directory before any clean close).
  std::printf("\n-- durability: WAL fsync policy vs ingest cost --\n");
  std::printf("%10s %10s %14s %16s %16s\n", "wal", "docs", "docs/sec",
              "commit_p50_us", "wal_bytes");
  const size_t kWalDocs = 120;
  auto wal_corpus = workload::CorpusGenerator(55).MixedCorpus(kWalDocs);
  struct WalMode {
    const char* name;
    bool enabled;
    storage::WalFsyncPolicy policy;
  };
  const WalMode kModes[] = {
      {"off", false, storage::WalFsyncPolicy::kNone},
      {"none", true, storage::WalFsyncPolicy::kNone},
      {"batch", true, storage::WalFsyncPolicy::kBatch},
      {"commit", true, storage::WalFsyncPolicy::kCommit},
  };
  for (const WalMode& mode : kModes) {
    auto mdir = bench::Unwrap(TempDir::Make("fig3wal"), "dir");
    NetmarkOptions mopts;
    mopts.data_dir = mdir.Sub("data").string();
    mopts.storage.wal_enabled = mode.enabled;
    mopts.storage.wal_fsync = mode.policy;
    auto mnm = bench::Unwrap(Netmark::Open(mopts), "open");
    std::filesystem::path mdrop = mdir.Sub("drop");
    std::filesystem::create_directories(mdrop);
    for (const auto& doc : wal_corpus) {
      bench::Check(WriteFile(mdrop / doc.file_name, doc.content), "write");
    }
    server::IngestionDaemon mdaemon(mnm->store(), &mnm->converters(),
                                    SweepOptions(mdrop, 1));
    Stopwatch mwatch;
    int ok = bench::Unwrap(mdaemon.ProcessOnce(), "sweep");
    double msec = mwatch.ElapsedSeconds();
    double rate = static_cast<double>(ok) / msec;

    double commit_p50 = 0;
    uint64_t wal_bytes = 0;
    auto snap = mnm->metrics()->Collect();
    for (const auto& h : snap.histograms) {
      if (h.name == "netmark_wal_commit_micros") commit_p50 = h.p50;
    }
    for (const auto& c : snap.counters) {
      if (c.name == "netmark_wal_bytes_appended_total") wal_bytes = c.value;
    }
    std::printf("%10s %10d %14.0f %16.0f %16llu\n", mode.name, ok, rate,
                commit_p50, static_cast<unsigned long long>(wal_bytes));
    json.Emit(std::string("wal_") + mode.name, static_cast<double>(ok),
              msec * 1e9 / static_cast<double>(ok), rate, "docs/sec");

    if (mode.enabled && mode.policy == storage::WalFsyncPolicy::kCommit) {
      // SIGKILL-shaped crash: copy the directory while the store is live
      // (heaps unflushed, log full), then time the reopen's redo pass.
      std::filesystem::path crash = mdir.Sub("crashed");
      std::filesystem::copy(mopts.data_dir, crash,
                            std::filesystem::copy_options::recursive);
      auto revived = bench::Unwrap(
          xmlstore::XmlStore::Open(crash.string()), "recovery open");
      const storage::RecoveryStats& rec = revived->database()->recovery_stats();
      std::printf("recovery: %llu committed txns, %llu pages in %.1f ms "
                  "(%llu docs recovered)\n",
                  static_cast<unsigned long long>(rec.committed_txns),
                  static_cast<unsigned long long>(rec.pages_applied),
                  static_cast<double>(rec.micros) / 1000.0,
                  static_cast<unsigned long long>(revived->document_count()));
      json.Emit("recovery", static_cast<double>(rec.pages_applied),
                static_cast<double>(rec.micros) * 1000.0,
                rec.micros > 0 ? static_cast<double>(rec.pages_applied) * 1e6 /
                                     static_cast<double>(rec.micros)
                               : 0,
                "pages/sec");
    }
  }
  std::printf("shape check: wal=commit stays within ~2x of wal=off on this "
              "corpus; recovery replays the whole unflushed log.\n");

  // Final snapshot of the first sweep's daemon registry (ingest counters +
  // prepare/insert histograms) into BENCH_fig3_ingestion.json.
  json.EmitMetrics(*daemon.metrics());
}

}  // namespace

int main(int argc, char** argv) {
  PrintPipelineReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
