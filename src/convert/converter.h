// Converter interface: turn a source document in any supported format into
// "upmarked" context/content XML (paper §4: parsers that "automatically
// structure and 'upmark' a document into XML based on the formatting
// information in the document").
//
// Upmarked shape (matching the paper's Fig 2 illustration):
//
//   <document>
//     <netmark:meta file="..." format="..."/>      (SIMULATION node)
//     <context>Section Heading</context>
//     <content> <p>...</p> ... </content>
//     <context>Next Heading</context>
//     <content> ... </content>
//   </document>

#ifndef NETMARK_CONVERT_CONVERTER_H_
#define NETMARK_CONVERT_CONVERTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"

namespace netmark::convert {

/// Conversion inputs beyond the raw bytes.
struct ConvertContext {
  std::string file_name;  ///< used for sniffing and provenance metadata
};

/// \brief One source-format parser.
class Converter {
 public:
  virtual ~Converter() = default;

  /// Short format tag ("txt", "md", "html", "csv", "nrt", "xml").
  virtual std::string_view format() const = 0;

  /// File extensions this converter claims (lower-case, without dot).
  virtual std::vector<std::string_view> extensions() const = 0;

  /// Content-based detection for extensionless inputs; conservative.
  virtual bool Sniff(std::string_view content) const = 0;

  /// Produces the upmarked DOM.
  virtual netmark::Result<xml::Document> Convert(std::string_view content,
                                                 const ConvertContext& ctx) const = 0;
};

/// \brief Builder shared by all converters for the upmarked skeleton.
class UpmarkBuilder {
 public:
  UpmarkBuilder(std::string_view file_name, std::string_view format);

  /// Starts a new section.
  void BeginSection(std::string heading);
  /// Adds one paragraph (plain text) to the current section.
  void AddParagraph(std::string text);
  /// Adds an arbitrary pre-built element subtree to the current section
  /// content. The subtree must come from builder-provided `doc()`.
  void AddBlock(xml::NodeId subtree);
  /// Access to the underlying document for building custom blocks.
  xml::Document* doc() { return &doc_; }

  /// Finishes and returns the document.
  xml::Document Finish();

 private:
  void EnsureContent();

  xml::Document doc_;
  xml::NodeId root_;
  xml::NodeId current_content_ = xml::kInvalidNode;
};

}  // namespace netmark::convert

#endif  // NETMARK_CONVERT_CONVERTER_H_
