// Shared helpers for the reproduction benchmarks.

#ifndef NETMARK_BENCH_BENCH_UTIL_H_
#define NETMARK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/temp_dir.h"
#include "core/netmark.h"
#include "workload/corpus.h"

namespace netmark::bench {

inline void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "bench setup: %s failed: %s\n", what,
                 st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).ValueOrDie();
}

/// A NETMARK instance pre-loaded with a mixed corpus of `n` documents.
struct LoadedInstance {
  std::unique_ptr<TempDir> dir;
  std::unique_ptr<Netmark> nm;
};

inline LoadedInstance MakeLoadedInstance(size_t corpus_size, uint64_t seed = 2025) {
  LoadedInstance inst;
  inst.dir = std::make_unique<TempDir>(Unwrap(TempDir::Make("bench"), "temp dir"));
  NetmarkOptions options;
  options.data_dir = inst.dir->Sub("data").string();
  inst.nm = Unwrap(Netmark::Open(options), "open");
  workload::CorpusGenerator gen(seed);
  for (const auto& doc : gen.MixedCorpus(corpus_size)) {
    Check(inst.nm->IngestContent(doc.file_name, doc.content).status(), "ingest");
  }
  return inst;
}

/// Header line for the paper-shape report blocks each bench prints.
inline void ReportHeader(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n", experiment);
  std::printf("paper claim: %s\n", claim);
}

}  // namespace netmark::bench

#endif  // NETMARK_BENCH_BENCH_UTIL_H_
