// Proposal Financial Management (paper Table 1, "1 hour" application).
//
// An information system for tracking proposal financials: all proposals
// submitted in response to a call (Word-format files, here NRT) land in a
// drop folder; the application answers aggregate questions — proposal counts
// by NASA division, dollar totals, largest requests — by querying Budget
// sections and doing the arithmetic client-side. No schema was designed for
// any of this: the "assembly" is this one file.
//
// Run: ./build/examples/proposal_financial [n_proposals]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "common/string_util.h"
#include "common/temp_dir.h"
#include "core/netmark.h"
#include "workload/corpus.h"

namespace {

void Check(const netmark::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(netmark::Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 40;
  auto dir = Unwrap(netmark::TempDir::Make("proposals"), "temp dir");
  netmark::NetmarkOptions options;
  options.data_dir = dir.Sub("data").string();
  auto nm = Unwrap(netmark::Netmark::Open(options), "open");

  // Simulate the submission inbox: generated Word-style proposals dropped
  // into the watched folder, picked up by the daemon path.
  std::filesystem::path drop = dir.Sub("inbox");
  std::filesystem::create_directories(drop);
  netmark::workload::CorpusGenerator gen(4242);
  for (int i = 0; i < n; ++i) {
    auto doc = gen.Proposal(i);
    Check(netmark::WriteFile(drop / doc.file_name, doc.content), "write proposal");
  }
  netmark::server::DaemonOptions daemon_opts;
  daemon_opts.drop_dir = drop;
  daemon_opts.stable_age = std::chrono::milliseconds(0);  // inbox is pre-written
  Check(nm->StartDaemon(daemon_opts), "start daemon");
  int ingested = Unwrap(nm->ProcessDropFolderOnce(), "sweep inbox");
  nm->StopDaemon();
  std::printf("ingested %d proposals from the inbox\n\n", ingested);

  // Aggregate: the Budget section of every proposal carries the requested
  // amount and division; parse them out of the query hits.
  auto hits = Unwrap(nm->Query("context=Budget"), "budget query");
  struct DivisionStats {
    int proposals = 0;
    long long total_k = 0;
    long long max_k = 0;
  };
  std::map<std::string, DivisionStats> by_division;
  for (const auto& hit : hits) {
    // "The requested amount is <N> thousand dollars for division <D>."
    size_t amount_pos = hit.text.find("requested amount is ");
    size_t division_pos = hit.text.find("for division ");
    if (amount_pos == std::string::npos || division_pos == std::string::npos) {
      continue;
    }
    long long amount = std::stoll(hit.text.substr(amount_pos + 20));
    std::string division = hit.text.substr(division_pos + 13);
    division = division.substr(0, division.find_first_of(". "));
    DivisionStats& stats = by_division[division];
    ++stats.proposals;
    stats.total_k += amount;
    stats.max_k = std::max(stats.max_k, amount);
  }

  std::printf("%-16s %10s %14s %12s\n", "division", "proposals", "total ($K)",
              "max ($K)");
  long long grand_total = 0;
  int grand_count = 0;
  for (const auto& [division, stats] : by_division) {
    std::printf("%-16s %10d %14lld %12lld\n", division.c_str(), stats.proposals,
                stats.total_k, stats.max_k);
    grand_total += stats.total_k;
    grand_count += stats.proposals;
  }
  std::printf("%-16s %10d %14lld\n", "TOTAL", grand_count, grand_total);

  // A drill-down a program manager would ask: which proposals mention a
  // specific subsystem in their technical approach?
  auto turbine =
      Unwrap(nm->Query("context=Technical+Approach&content=turbine"), "drill-down");
  std::printf("\nproposals whose Technical Approach mentions 'turbine': %zu\n",
              turbine.size());
  for (const auto& hit : turbine) {
    std::printf("  %s\n", hit.file_name.c_str());
  }
  return 0;
}
