#!/usr/bin/env python3
"""Bench-regression gate: compares a histogram metric's p50 in a fresh
BENCH_*.json against the previous run's artifact.

usage: check_bench_regression.py BASELINE_JSON CURRENT_JSON...
           [--threshold PCT] [--metric NAME]

Defaults to the ingestion insert latency (netmark_ingest_insert_micros);
pass --metric to gate another bench (e.g. netmark_http_request_micros for
bench_serving, netmark_reactor_active_request_micros for bench_reactor).

Multiple CURRENT_JSON files (e.g. one per CI seed) are compared best-of:
the gate takes the lowest current p50, so one noisy seed on a shared
runner cannot fail the build while a real regression — which shifts every
seed — still does.

Exit codes: 0 = ok (or no comparable baseline), 1 = regression, 2 = usage.

Tolerant by design: a missing baseline file, an empty file, a baseline
without the metric, or a baseline produced under a different configuration
(no/mismatched "config" marker line) all SKIP the check with a note instead
of failing — the first run after a bench-format change must not brick CI.
Only a like-for-like comparison that exceeds the threshold fails.
"""

import argparse
import json
import sys

DEFAULT_METRIC = "netmark_ingest_insert_micros"


def load_lines(path):
    """Parses a JSONL file; returns [] if the file is missing/unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            out = []
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    pass  # half-written tail line; ignore
            return out
    except OSError:
        return []


def find_config(lines):
    for obj in lines:
        if "config" in obj:
            return obj["config"]
    return None


def find_p50(lines, metric):
    for obj in lines:
        if obj.get("metric") == metric and "p50" in obj:
            return float(obj["p50"])
    return None


def main(argv):
    parser = argparse.ArgumentParser(
        description="Compare a bench JSONL metric p50 against a baseline.")
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="+",
                        help="one or more current-run JSONL files; the "
                             "lowest p50 across them is gated (best-of-seeds)")
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="allowed p50 increase in percent (default 15)")
    parser.add_argument("--metric", default=DEFAULT_METRIC,
                        help=f"histogram metric to gate (default {DEFAULT_METRIC})")
    try:
        args = parser.parse_args(argv[1:])
    except SystemExit:
        return 2
    metric = args.metric
    threshold = args.threshold

    currents = [(path, load_lines(path)) for path in args.current]
    currents = [(path, lines) for path, lines in currents if lines]
    if not currents:
        print(f"bench-regression: no current results at {args.current}; skipping")
        return 0
    baseline = load_lines(args.baseline)
    if not baseline:
        print(f"bench-regression: no baseline at {args.baseline}; skipping "
              "(first run or expired artifact)")
        return 0

    base_config = find_config(baseline)
    cur_configs = {find_config(lines) for _, lines in currents}
    if cur_configs != {base_config}:
        print(f"bench-regression: baseline config {base_config!r} != current "
              f"{sorted(map(repr, cur_configs))}; bench setup changed, "
              "skipping comparison")
        return 0

    base_p50 = find_p50(baseline, metric)
    seed_p50s = [(path, find_p50(lines, metric)) for path, lines in currents]
    missing = [path for path, p50 in seed_p50s if p50 is None]
    if base_p50 is None or missing:
        print(f"bench-regression: metric {metric} missing "
              f"(baseline={base_p50}, current missing in {missing}); skipping")
        return 0
    cur_path, cur_p50 = min(seed_p50s, key=lambda item: item[1])
    if len(seed_p50s) > 1:
        shown = ", ".join(f"{path}={p50:.1f}us" for path, p50 in seed_p50s)
        print(f"bench-regression: best-of-{len(seed_p50s)} seeds: {shown} "
              f"-> using {cur_path}")
    if base_p50 <= 0:
        print(f"bench-regression: degenerate baseline p50={base_p50}; skipping")
        return 0

    delta_pct = (cur_p50 - base_p50) / base_p50 * 100.0
    print(f"bench-regression: {metric} p50 baseline={base_p50:.1f}us "
          f"current={cur_p50:.1f}us delta={delta_pct:+.1f}% "
          f"(threshold +{threshold:.0f}%)")
    if delta_pct > threshold:
        print(f"bench-regression: FAIL — {metric} p50 regressed "
              f"{delta_pct:.1f}% > {threshold:.0f}%", file=sys.stderr)
        return 1
    print("bench-regression: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
