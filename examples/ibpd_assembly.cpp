// Integrated Budget Performance Document assembly (paper Table 1, §3).
//
// "While manual assembly of the IBPD can take several weeks, NETMARK was
// used to extract and integrate information from thousands of NASA task
// plans containing the required budget information and compose an
// integrated IBPD document."
//
// This example ingests task plans (plain-text documents with numbered
// sections), pulls every "Budget Summary" section with one context query,
// and composes the integrated document with an XSLT stylesheet — the Fig 6/7
// pipeline end to end. The result is written next to the data directory.
//
// Run: ./build/examples/ibpd_assembly [n_task_plans]

#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "common/temp_dir.h"
#include "core/netmark.h"
#include "workload/corpus.h"
#include "xml/parser.h"

namespace {

void Check(const netmark::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(netmark::Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).ValueOrDie();
}

constexpr const char* kIbpdStylesheet =
    "<xsl:stylesheet>"
    "<xsl:template match=\"/\">"
    "<ibpd title=\"Integrated Budget Performance Document\" fiscal-year=\"2005\">"
    "<summary>"
    "<xsl:text>Integrated from </xsl:text>"
    "<xsl:value-of select=\"results/@count\"/>"
    "<xsl:text> task plans.</xsl:text>"
    "</summary>"
    "<xsl:for-each select=\"results/result\">"
    "<xsl:sort select=\"@doc\"/>"
    "<budget-entry source=\"{@doc}\">"
    "<xsl:value-of select=\"content\"/>"
    "</budget-entry>"
    "</xsl:for-each>"
    "</ibpd>"
    "</xsl:template>"
    "</xsl:stylesheet>";

}  // namespace

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 200;
  auto dir = Unwrap(netmark::TempDir::Make("ibpd"), "temp dir");
  netmark::NetmarkOptions options;
  options.data_dir = dir.Sub("data").string();
  auto nm = Unwrap(netmark::Netmark::Open(options), "open");

  netmark::Stopwatch ingest_watch;
  netmark::workload::CorpusGenerator gen(1964);
  for (int i = 0; i < n; ++i) {
    auto doc = gen.TaskPlan(i);
    Unwrap(nm->IngestContent(doc.file_name, doc.content), "ingest task plan");
  }
  double ingest_s = ingest_watch.ElapsedSeconds();

  netmark::Stopwatch assemble_watch;
  std::string ibpd = Unwrap(
      nm->QueryAndTransform("context=%22Budget+Summary%22", kIbpdStylesheet),
      "assemble IBPD");
  double assemble_s = assemble_watch.ElapsedSeconds();

  std::string out_path = dir.Sub("ibpd.xml").string();
  Check(netmark::WriteFile(out_path, ibpd), "write IBPD");

  // Validate the assembled artifact.
  auto parsed = Unwrap(netmark::xml::ParseXml(ibpd), "parse IBPD");
  auto entries = parsed.ChildElements(parsed.DocumentElement());
  std::printf("task plans ingested:  %d (%.3f s)\n", n, ingest_s);
  std::printf("IBPD sections:        %zu (assembled in %.3f s)\n",
              entries.size() - 1 /* minus <summary> */, assemble_s);
  std::printf("IBPD written to:      %s (%zu bytes)\n", out_path.c_str(),
              ibpd.size());
  std::printf("\nfirst entries:\n");
  int shown = 0;
  for (netmark::xml::NodeId entry : entries) {
    if (parsed.name(entry) != "budget-entry") continue;
    std::printf("  [%s] %.60s...\n",
                std::string(parsed.GetAttribute(entry, "source")).c_str(),
                parsed.TextContent(entry).c_str());
    if (++shown == 5) break;
  }
  std::printf(
      "\nThe paper reports manual IBPD assembly taking weeks; the NETMARK\n"
      "pipeline above is one query plus one stylesheet.\n");
  return 0;
}
