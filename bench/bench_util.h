// Shared helpers for the reproduction benchmarks.

#ifndef NETMARK_BENCH_BENCH_UTIL_H_
#define NETMARK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/temp_dir.h"
#include "core/netmark.h"
#include "workload/corpus.h"

namespace netmark::bench {

inline void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "bench setup: %s failed: %s\n", what,
                 st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).ValueOrDie();
}

/// A NETMARK instance pre-loaded with a mixed corpus of `n` documents.
struct LoadedInstance {
  std::unique_ptr<TempDir> dir;
  std::unique_ptr<Netmark> nm;
};

/// Overload taking a base NetmarkOptions (data_dir is overwritten) — for
/// benches that need non-default serving knobs, e.g. bench_reactor's
/// reactor model and idle-timeout configuration.
inline LoadedInstance MakeLoadedInstance(size_t corpus_size,
                                         NetmarkOptions options,
                                         uint64_t seed = 2025) {
  LoadedInstance inst;
  inst.dir = std::make_unique<TempDir>(Unwrap(TempDir::Make("bench"), "temp dir"));
  options.data_dir = inst.dir->Sub("data").string();
  inst.nm = Unwrap(Netmark::Open(options), "open");
  workload::CorpusGenerator gen(seed);
  for (const auto& doc : gen.MixedCorpus(corpus_size)) {
    Check(inst.nm->IngestContent(doc.file_name, doc.content).status(), "ingest");
  }
  return inst;
}

inline LoadedInstance MakeLoadedInstance(size_t corpus_size, uint64_t seed = 2025) {
  return MakeLoadedInstance(corpus_size, NetmarkOptions{}, seed);
}

/// Header line for the paper-shape report blocks each bench prints.
inline void ReportHeader(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n", experiment);
  std::printf("paper claim: %s\n", claim);
}

/// \brief Machine-readable results sink: one JSON object per line, written to
/// `BENCH_<bench>.json` (in $NETMARK_BENCH_JSON_DIR, default cwd) and echoed
/// to stdout — so per-PR trajectory tracking can diff the files while humans
/// still read the table.
class JsonLines {
 public:
  explicit JsonLines(const std::string& bench) : bench_(bench) {
    const char* dir = std::getenv("NETMARK_BENCH_JSON_DIR");
    path_ = (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string()) +
            "BENCH_" + bench + ".json";
    file_ = std::fopen(path_.c_str(), "w");  // fresh file per run
    if (file_ == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s (results still on stdout)\n",
                   path_.c_str());
    }
  }
  ~JsonLines() {
    if (file_ != nullptr) std::fclose(file_);
  }
  JsonLines(const JsonLines&) = delete;
  JsonLines& operator=(const JsonLines&) = delete;

  /// Emits a {"bench","config"} marker describing the setup that produced
  /// this file. The regression gate (tools/check_bench_regression.py) only
  /// compares runs whose markers match, so a deliberate configuration change
  /// resets the baseline instead of tripping the gate.
  void EmitConfig(const std::string& config) {
    char line[512];
    std::snprintf(line, sizeof(line), "{\"bench\":\"%s\",\"config\":\"%s\"}",
                  bench_.c_str(), config.c_str());
    std::printf("JSONL %s\n", line);
    if (file_ != nullptr) {
      std::fprintf(file_, "%s\n", line);
      std::fflush(file_);
    }
  }

  /// Emits {"bench","name","param","ns_per_op","throughput","unit"}.
  void Emit(const std::string& name, double param, double ns_per_op,
            double throughput, const std::string& unit) {
    char line[512];
    std::snprintf(line, sizeof(line),
                  "{\"bench\":\"%s\",\"name\":\"%s\",\"param\":%.6g,"
                  "\"ns_per_op\":%.6g,\"throughput\":%.6g,\"unit\":\"%s\"}",
                  bench_.c_str(), name.c_str(), param, ns_per_op, throughput,
                  unit.c_str());
    std::printf("JSONL %s\n", line);
    if (file_ != nullptr) {
      std::fprintf(file_, "%s\n", line);
      std::fflush(file_);
    }
  }

  /// Emits a bench-computed latency distribution in the same shape as the
  /// histogram lines EmitMetrics writes ({"metric",...,"count","p50","p95",
  /// "p99"}), so tools/check_bench_regression.py --metric can gate on it.
  void EmitSummary(const std::string& metric, uint64_t count, double p50,
                   double p95, double p99) {
    char line[512];
    std::snprintf(line, sizeof(line),
                  "{\"bench\":\"%s\",\"metric\":\"%s\",\"count\":%llu,"
                  "\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g}",
                  bench_.c_str(), metric.c_str(),
                  static_cast<unsigned long long>(count), p50, p95, p99);
    std::printf("JSONL %s\n", line);
    if (file_ != nullptr) {
      std::fprintf(file_, "%s\n", line);
      std::fflush(file_);
    }
  }

  /// Dumps a final metrics-registry snapshot: one line per counter/gauge
  /// ({"bench","metric","labels","value"}) and per histogram
  /// ({...,"count","sum","p50","p95","p99"}). Written at the end of a run so
  /// the JSONL file carries the instance's internal counters alongside the
  /// measured figures.
  void EmitMetrics(const observability::MetricsRegistry& registry) {
    observability::MetricsSnapshot snap = registry.Collect();
    auto label_str = [](const observability::Labels& labels) {
      std::string out;
      for (const auto& [k, v] : labels) {
        if (!out.empty()) out += ",";
        out += k + "=" + v;
      }
      return out;
    };
    auto write = [this](const char* line) {
      std::printf("JSONL %s\n", line);
      if (file_ != nullptr) {
        std::fprintf(file_, "%s\n", line);
        std::fflush(file_);
      }
    };
    char line[768];
    for (const auto& c : snap.counters) {
      std::snprintf(line, sizeof(line),
                    "{\"bench\":\"%s\",\"metric\":\"%s\",\"labels\":\"%s\","
                    "\"value\":%llu}",
                    bench_.c_str(), c.name.c_str(), label_str(c.labels).c_str(),
                    static_cast<unsigned long long>(c.value));
      write(line);
    }
    for (const auto& g : snap.gauges) {
      std::snprintf(line, sizeof(line),
                    "{\"bench\":\"%s\",\"metric\":\"%s\",\"labels\":\"%s\","
                    "\"value\":%.6g}",
                    bench_.c_str(), g.name.c_str(), label_str(g.labels).c_str(),
                    g.value);
      write(line);
    }
    for (const auto& h : snap.histograms) {
      std::snprintf(line, sizeof(line),
                    "{\"bench\":\"%s\",\"metric\":\"%s\",\"labels\":\"%s\","
                    "\"count\":%llu,\"sum\":%lld,\"p50\":%.6g,\"p95\":%.6g,"
                    "\"p99\":%.6g}",
                    bench_.c_str(), h.name.c_str(), label_str(h.labels).c_str(),
                    static_cast<unsigned long long>(h.count),
                    static_cast<long long>(h.sum), h.p50, h.p95, h.p99);
      write(line);
    }
  }

  const std::string& path() const { return path_; }

 private:
  std::string bench_;
  std::string path_;
  std::FILE* file_ = nullptr;
};

}  // namespace netmark::bench

#endif  // NETMARK_BENCH_BENCH_UTIL_H_
