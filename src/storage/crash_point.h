// Deterministic crash injection for the crash-torture harness.
//
// A process run with
//
//   NETMARK_CRASH_POINT=<name>  NETMARK_CRASH_AFTER=<n>
//
// SIGKILLs itself the <n>-th time execution passes the crash point named
// <name> — no destructors, no flush, exactly like a power cut at that spot.
// Points are compiled into the durability-critical paths (WAL append, commit
// fsync, checkpoint page write, WAL truncate) so tools/crash_torture.sh can
// aim kills at every interesting state transition. With the env vars unset
// the check is one branch on an already-loaded atomic.

#ifndef NETMARK_STORAGE_CRASH_POINT_H_
#define NETMARK_STORAGE_CRASH_POINT_H_

#include <string_view>

namespace netmark::storage {

/// Dies via SIGKILL when this call is the configured crash point's n-th hit.
/// No-op (fast) when crash injection is not configured.
void MaybeCrashPoint(std::string_view point);

/// True when NETMARK_CRASH_POINT is set (used by tools to log the plan).
bool CrashInjectionConfigured();

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_CRASH_POINT_H_
