#include "server/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/clock.h"
#include "observability/trace.h"

namespace netmark::server {

namespace {

/// RAII socket closer.
struct FdGuard {
  int fd;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

/// Waits until `fd` is ready for `events` or `deadline_micros` passes.
/// OK on ready; DeadlineExceeded on timeout; IOError on poll failure.
netmark::Status PollUntil(int fd, short events, int64_t deadline_micros,
                          const char* what) {
  while (true) {
    int64_t remaining_ms = (deadline_micros - netmark::MonotonicMicros()) / 1000;
    if (remaining_ms <= 0) {
      return netmark::Status::DeadlineExceeded(std::string(what) + " timed out");
    }
    pollfd pfd{fd, events, 0};
    int rc = ::poll(&pfd, 1, static_cast<int>(std::min<int64_t>(remaining_ms,
                                                                 60 * 1000)));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return netmark::Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (rc > 0) return netmark::Status::OK();
    // rc == 0: poll slice elapsed; loop re-checks the deadline.
  }
}

}  // namespace

netmark::Result<HttpResponse> HttpClient::Send(const HttpRequest& request,
                                               int64_t deadline_micros) const {
  const int64_t now = netmark::MonotonicMicros();
  // The effective deadline is the tightest of: caller deadline, total
  // timeout. Connect additionally honours its own (shorter) budget.
  int64_t deadline = deadline_micros;
  if (options_.total_timeout_ms > 0) {
    int64_t total = now + options_.total_timeout_ms * 1000;
    if (deadline == 0 || total < deadline) deadline = total;
  }
  if (deadline == 0) {
    // Belt and braces: never run truly unbounded.
    deadline = now + int64_t{24} * 3600 * 1000 * 1000;
  }
  int64_t connect_deadline = deadline;
  if (options_.connect_timeout_ms > 0) {
    connect_deadline =
        std::min(deadline, now + options_.connect_timeout_ms * 1000);
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return netmark::Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  FdGuard guard{fd};
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return netmark::Status::IOError(std::string("fcntl: ") + std::strerror(errno));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_ == "localhost" ? "127.0.0.1" : host_.c_str(),
                  &addr.sin_addr) != 1) {
    return netmark::Status::InvalidArgument("bad host address: " + host_);
  }

  // Non-blocking connect raced against the connect deadline.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      return netmark::Status::Unavailable("connect " + host_ + ":" +
                                          std::to_string(port_) + ": " +
                                          std::strerror(errno));
    }
    NETMARK_RETURN_NOT_OK(PollUntil(fd, POLLOUT, connect_deadline, "connect"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      return netmark::Status::Unavailable("connect " + host_ + ":" +
                                          std::to_string(port_) + ": " +
                                          std::strerror(err != 0 ? err : errno));
    }
  }

  std::string wire = request.Serialize();
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        NETMARK_RETURN_NOT_OK(PollUntil(fd, POLLOUT, deadline, "send"));
        continue;
      }
      return netmark::Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }

  // Server closes after the response; read to EOF under the deadline.
  std::string raw;
  char chunk[4096];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        NETMARK_RETURN_NOT_OK(PollUntil(fd, POLLIN, deadline, "recv"));
        continue;
      }
      return netmark::Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  return ParseResponse(raw);
}

netmark::Result<HttpResponse> HttpClient::Get(const std::string& target) const {
  HttpRequest req;
  req.method = "GET";
  req.target = target;
  return Send(req);
}

netmark::Result<HttpResponse> HttpClient::Put(const std::string& target,
                                              std::string body,
                                              std::string content_type) const {
  HttpRequest req;
  req.method = "PUT";
  req.target = target;
  req.body = std::move(body);
  req.headers["Content-Type"] = std::move(content_type);
  return Send(req);
}

netmark::Result<HttpResponse> HttpClient::Delete(const std::string& target) const {
  HttpRequest req;
  req.method = "DELETE";
  req.target = target;
  return Send(req);
}

netmark::Result<HttpResponse> HttpClient::Propfind(const std::string& target) const {
  HttpRequest req;
  req.method = "PROPFIND";
  req.target = target;
  req.headers["Depth"] = "1";
  return Send(req);
}

netmark::Result<std::string> SocketTransport::Get(
    const std::string& path_and_query, const federation::CallContext& ctx) {
  observability::ScopedSpan span(ctx.trace, "http_get", ctx.span);
  span.Annotate("target", path_and_query);
  HttpRequest req;
  req.method = "GET";
  req.target = path_and_query;
  auto sent = client_.Send(req, ctx.deadline_micros);
  if (!sent.ok()) {
    span.End(false, sent.status().ToString());
    return sent.status();
  }
  HttpResponse resp = std::move(*sent);
  span.Annotate("status", std::to_string(resp.status));
  span.End(resp.status == 200,
           resp.status == 200 ? "" : "HTTP " + std::to_string(resp.status));
  if (resp.status >= 500) {
    return netmark::Status::Unavailable("remote returned HTTP " +
                                        std::to_string(resp.status) + ": " + resp.body);
  }
  if (resp.status != 200) {
    return netmark::Status::InvalidArgument("remote returned HTTP " +
                                            std::to_string(resp.status) + ": " +
                                            resp.body);
  }
  return resp.body;
}

}  // namespace netmark::server
