// Minimal leveled logger. Thread-safe; writes to stderr by default.

#ifndef NETMARK_COMMON_LOGGING_H_
#define NETMARK_COMMON_LOGGING_H_

#include <mutex>
#include <sstream>
#include <string>

namespace netmark {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// \brief Process-wide logging configuration.
class Logger {
 public:
  static Logger& Instance();

  void SetLevel(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// \brief Emits one formatted line ("[LEVEL] file:line message").
  void Log(LogLevel level, const char* file, int line, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarning;
  std::mutex mu_;
};

namespace internal {
/// Stream-collecting helper behind the NETMARK_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Instance().Log(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace netmark

#define NETMARK_LOG(severity)                                                   \
  if (static_cast<int>(::netmark::LogLevel::k##severity) <                      \
      static_cast<int>(::netmark::Logger::Instance().level()))                  \
    ;                                                                           \
  else                                                                          \
    ::netmark::internal::LogMessage(::netmark::LogLevel::k##severity, __FILE__, \
                                    __LINE__)                                   \
        .stream()

#endif  // NETMARK_COMMON_LOGGING_H_
