#include "observability/thread_trace.h"

namespace netmark::observability {

namespace {
thread_local Trace* g_trace = nullptr;
thread_local int g_span = -1;
}  // namespace

Trace* CurrentThreadTrace() { return g_trace; }
int CurrentThreadSpan() { return g_span; }

ThreadTraceScope::ThreadTraceScope(Trace* trace, int span)
    : prev_trace_(g_trace), prev_span_(g_span) {
  g_trace = trace;
  g_span = span;
}

ThreadTraceScope::~ThreadTraceScope() {
  g_trace = prev_trace_;
  g_span = prev_span_;
}

}  // namespace netmark::observability
