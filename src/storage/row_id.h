// RowId: the physical row address.
//
// The paper leans on Oracle physical ROWIDs "for very fast traversal between
// nodes that are related" (§2.1.1). Our equivalent is (page, slot): a stable
// physical address that fetches a record with one page lookup and one slot
// dereference — no index involved.

#ifndef NETMARK_STORAGE_ROW_ID_H_
#define NETMARK_STORAGE_ROW_ID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace netmark::storage {

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

/// \brief Physical address of a record: page number + slot index.
struct RowId {
  PageId page = kInvalidPage;
  uint16_t slot = 0;

  constexpr RowId() = default;
  constexpr RowId(PageId p, uint16_t s) : page(p), slot(s) {}

  bool valid() const { return page != kInvalidPage; }

  /// Packs into a single integer (for storing RowIds inside records —
  /// this is how PARENTROWID/SIBLINGID columns hold links).
  uint64_t Pack() const {
    return (static_cast<uint64_t>(page) << 16) | slot;
  }
  static RowId Unpack(uint64_t v) {
    RowId r;
    r.page = static_cast<PageId>(v >> 16);
    r.slot = static_cast<uint16_t>(v & 0xFFFF);
    return r;
  }
  /// Packed representation of the invalid RowId.
  static constexpr uint64_t kInvalidPacked = 0xFFFFFFFF0000ull;

  bool operator==(const RowId& o) const { return page == o.page && slot == o.slot; }
  bool operator!=(const RowId& o) const { return !(*this == o); }
  bool operator<(const RowId& o) const {
    return page != o.page ? page < o.page : slot < o.slot;
  }

  std::string ToString() const {
    return "(" + std::to_string(page) + "," + std::to_string(slot) + ")";
  }
};

inline constexpr RowId kInvalidRowId{};

}  // namespace netmark::storage

template <>
struct std::hash<netmark::storage::RowId> {
  size_t operator()(const netmark::storage::RowId& r) const noexcept {
    return std::hash<uint64_t>{}(r.Pack());
  }
};

#endif  // NETMARK_STORAGE_ROW_ID_H_
