// CSV ("spreadsheet") upmark converter.
//
// The first row is treated as a header; each data row becomes a <row>
// element whose cells are <cell name="<header>">value</cell> children. The
// sheet gets one CONTEXT per header column group? No — per the paper,
// spreadsheets are just another document source: the whole sheet is one
// section titled by the file name, and the cell names make column-targeted
// context queries possible (a <cell name=...> can be promoted to CONTEXT
// through the node-type configuration when applications want per-column
// sections).

#ifndef NETMARK_CONVERT_CSV_CONVERTER_H_
#define NETMARK_CONVERT_CSV_CONVERTER_H_

#include "convert/converter.h"

namespace netmark::convert {

/// \brief Converts `.csv` spreadsheets.
class CsvConverter : public Converter {
 public:
  std::string_view format() const override { return "csv"; }
  std::vector<std::string_view> extensions() const override { return {"csv", "tsv"}; }
  bool Sniff(std::string_view content) const override;
  netmark::Result<xml::Document> Convert(std::string_view content,
                                         const ConvertContext& ctx) const override;
};

/// \brief RFC-4180-ish CSV line parsing (quoted fields, embedded commas,
/// doubled quotes). Exposed for tests and the workload generators.
std::vector<std::vector<std::string>> ParseCsv(std::string_view content, char sep = ',');

/// \brief Emits rows as CSV, quoting fields that need it (the inverse of
/// ParseCsv; round-trip property-tested).
std::string EmitCsv(const std::vector<std::vector<std::string>>& rows, char sep = ',');

}  // namespace netmark::convert

#endif  // NETMARK_CONVERT_CSV_CONVERTER_H_
