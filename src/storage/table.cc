#include "storage/table.h"

#include <algorithm>
#include <mutex>

namespace netmark::storage {

netmark::Result<std::unique_ptr<Table>> Table::Open(
    TableSchema schema, const std::string& file_path,
    const std::vector<IndexDef>& indexes, PagerOptions pager_options) {
  NETMARK_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager,
                           Pager::Open(file_path, pager_options));
  NETMARK_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Open(pager.get()));
  std::unique_ptr<Table> table(new Table(std::move(schema), std::move(pager),
                                         std::make_unique<HeapFile>(std::move(heap))));
  for (const IndexDef& def : indexes) {
    NETMARK_RETURN_NOT_OK(table->CreateIndex(def.name, def.columns));
  }
  return table;
}

IndexKey Table::ExtractKey(const Index& index, const Row& row) const {
  IndexKey key;
  key.reserve(index.column_indexes.size());
  for (size_t ci : index.column_indexes) key.push_back(row[ci]);
  return key;
}

netmark::Status Table::IndexInsert(const Row& row, RowId id) {
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  for (auto& [name, index] : indexes_) {
    index.tree.Insert(ExtractKey(index, row), id);
  }
  return netmark::Status::OK();
}

netmark::Status Table::IndexRemove(const Row& row, RowId id) {
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  for (auto& [name, index] : indexes_) {
    index.tree.Remove(ExtractKey(index, row), id);
  }
  return netmark::Status::OK();
}

void Table::DeferRemoval(const std::string& name, IndexKey key, RowId id) {
  PendingRemoval removal;
  removal.index = name;
  removal.key = std::move(key);
  removal.id = id;
  pending_removals_.push_back(std::move(removal));
}

netmark::Result<RowId> Table::Insert(const Row& row) {
  NETMARK_RETURN_NOT_OK(schema_.Validate(row));
  NETMARK_ASSIGN_OR_RETURN(RowId id, heap_->Insert(EncodeRow(row)));
  NETMARK_RETURN_NOT_OK(IndexInsert(row, id));
  return id;
}

netmark::Result<Row> Table::Get(RowId id, Epoch epoch) const {
  NETMARK_ASSIGN_OR_RETURN(std::string bytes, heap_->Get(id, epoch));
  return DecodeRow(bytes);
}

netmark::Status Table::Update(RowId id, const Row& row) {
  NETMARK_RETURN_NOT_OK(schema_.Validate(row));
  NETMARK_ASSIGN_OR_RETURN(Row old_row, Get(id, kWriterEpoch));
  NETMARK_RETURN_NOT_OK(heap_->Update(id, EncodeRow(row)));
  // Only touch B-trees whose key actually changed — updates to unindexed
  // columns (e.g. the XML store's sibling-link patches) skip all index work.
  const bool mvcc = pager_->mvcc_enabled();
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  for (auto& [name, index] : indexes_) {
    IndexKey old_key = ExtractKey(index, old_row);
    IndexKey new_key = ExtractKey(index, row);
    if (old_key == new_key) continue;
    if (mvcc) {
      // Snapshot readers may still resolve the row through its old key;
      // the removal applies after the commit epoch passes the GC watermark.
      DeferRemoval(name, std::move(old_key), id);
    } else {
      index.tree.Remove(old_key, id);
    }
    index.tree.Insert(std::move(new_key), id);
  }
  return netmark::Status::OK();
}

netmark::Status Table::Delete(RowId id) {
  NETMARK_ASSIGN_OR_RETURN(Row old_row, Get(id, kWriterEpoch));
  NETMARK_RETURN_NOT_OK(heap_->Delete(id));
  if (!pager_->mvcc_enabled()) return IndexRemove(old_row, id);
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  for (auto& [name, index] : indexes_) {
    DeferRemoval(name, ExtractKey(index, old_row), id);
  }
  return netmark::Status::OK();
}

netmark::Status Table::Scan(
    const std::function<netmark::Status(RowId, const Row&)>& fn,
    Epoch epoch) const {
  return heap_->Scan(
      [&](RowId id, std::string_view bytes) -> netmark::Status {
        NETMARK_ASSIGN_OR_RETURN(Row row, DecodeRow(bytes));
        return fn(id, row);
      },
      epoch);
}

netmark::Status Table::CreateIndex(const std::string& name,
                                   const std::vector<std::string>& columns) {
  if (indexes_.count(name) != 0) {
    return netmark::Status::AlreadyExists("index " + name + " already exists on " +
                                          schema_.name());
  }
  Index index;
  for (const std::string& col : columns) {
    NETMARK_ASSIGN_OR_RETURN(size_t ci, schema_.ColumnIndex(col));
    index.column_indexes.push_back(ci);
  }
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  auto [it, inserted] = indexes_.emplace(name, std::move(index));
  Index& ix = it->second;
  // Build from existing rows — the writer's view, so rows of an in-flight
  // transaction are indexed like committed ones.
  netmark::Status st = Scan(
      [&](RowId id, const Row& row) -> netmark::Status {
        ix.tree.Insert(ExtractKey(ix, row), id);
        return netmark::Status::OK();
      },
      kWriterEpoch);
  if (!st.ok()) {
    indexes_.erase(it);
    return st;
  }
  return netmark::Status::OK();
}

std::vector<IndexDef> Table::IndexDefs() const {
  std::vector<IndexDef> out;
  for (const auto& [name, index] : indexes_) {
    IndexDef def;
    def.name = name;
    for (size_t ci : index.column_indexes) {
      def.columns.push_back(schema_.columns()[ci].name);
    }
    out.push_back(std::move(def));
  }
  return out;
}

netmark::Result<std::vector<RowId>> Table::VerifyCandidates(
    const Index& index, std::vector<RowId> candidates, Epoch epoch,
    const std::function<bool(const IndexKey&)>& matches) const {
  std::vector<RowId> out;
  out.reserve(candidates.size());
  for (RowId id : candidates) {
    auto row_or = Get(id, epoch);
    if (!row_or.ok()) {
      // Row invisible at this epoch: deleted, or inserted after it. Stale
      // tree entries (deferred removals, writer-latest inserts) fall out
      // here. Real faults (DataLoss etc.) still propagate.
      if (row_or.status().IsNotFound()) continue;
      return row_or.status();
    }
    if (matches(ExtractKey(index, *row_or))) out.push_back(id);
  }
  return out;
}

netmark::Result<std::vector<RowId>> Table::IndexLookup(const std::string& index,
                                                       const IndexKey& key,
                                                       Epoch epoch) const {
  auto it = indexes_.find(index);
  if (it == indexes_.end()) {
    return netmark::Status::NotFound("no index " + index + " on " + schema_.name());
  }
  std::vector<RowId> candidates;
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    candidates = it->second.tree.Lookup(key);
  }
  if (!pager_->mvcc_enabled()) return candidates;
  return VerifyCandidates(it->second, std::move(candidates), epoch,
                          [&](const IndexKey& k) {
                            return CompareKeys(k, key) == 0;
                          });
}

netmark::Result<std::vector<RowId>> Table::IndexRange(const std::string& index,
                                                      const IndexKey& lo,
                                                      const IndexKey& hi,
                                                      Epoch epoch) const {
  auto it = indexes_.find(index);
  if (it == indexes_.end()) {
    return netmark::Status::NotFound("no index " + index + " on " + schema_.name());
  }
  std::vector<RowId> candidates;
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    candidates = it->second.tree.Range(lo, hi);
  }
  if (!pager_->mvcc_enabled()) return candidates;
  return VerifyCandidates(it->second, std::move(candidates), epoch,
                          [&](const IndexKey& k) {
                            return CompareKeys(lo, k) <= 0 &&
                                   CompareKeys(k, hi) <= 0;
                          });
}

netmark::Result<std::vector<RowId>> Table::IndexPrefix(const std::string& index,
                                                       const IndexKey& prefix,
                                                       Epoch epoch) const {
  auto it = indexes_.find(index);
  if (it == indexes_.end()) {
    return netmark::Status::NotFound("no index " + index + " on " + schema_.name());
  }
  std::vector<RowId> candidates;
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    candidates = it->second.tree.PrefixLookup(prefix);
  }
  if (!pager_->mvcc_enabled()) return candidates;
  return VerifyCandidates(it->second, std::move(candidates), epoch,
                          [&](const IndexKey& k) {
                            if (k.size() < prefix.size()) return false;
                            IndexKey head(k.begin(),
                                          k.begin() + static_cast<std::ptrdiff_t>(
                                                          prefix.size()));
                            return CompareKeys(head, prefix) == 0;
                          });
}

void Table::SealPendingRemovals(Epoch epoch) {
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  for (PendingRemoval& removal : pending_removals_) {
    if (!removal.sealed) {
      removal.sealed = true;
      removal.sealed_epoch = epoch;
    }
  }
}

uint64_t Table::ApplyPendingRemovals(Epoch watermark) {
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  uint64_t applied = 0;
  auto keep = pending_removals_.begin();
  for (auto it = pending_removals_.begin(); it != pending_removals_.end(); ++it) {
    if (it->sealed && it->sealed_epoch <= watermark) {
      auto ix = indexes_.find(it->index);
      if (ix != indexes_.end()) ix->second.tree.Remove(it->key, it->id);
      ++applied;
      continue;
    }
    if (keep != it) *keep = std::move(*it);
    ++keep;
  }
  pending_removals_.erase(keep, pending_removals_.end());
  return applied;
}

uint64_t Table::pending_removals() const {
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  return pending_removals_.size();
}

const BTree* Table::GetIndex(const std::string& name) const {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : &it->second.tree;
}

}  // namespace netmark::storage
