#include "observability/trace_store.h"

#include <algorithm>
#include <utility>

#include "common/clock.h"

namespace netmark::observability {

TraceStore::TraceStore(TraceStoreOptions options)
    : options_(options),
      rng_(options.rng_seed != 0
               ? options.rng_seed
               : static_cast<uint64_t>(netmark::MonotonicMicros()) | 1) {
  owned_metrics_ = std::make_unique<MetricsRegistry>();
  metrics_ = owned_metrics_.get();
  BindHandles();
}

void TraceStore::BindHandles() {
  sampled_total_ = metrics_->GetCounter("netmark_traces_sampled_total");
  retained_total_ = metrics_->GetCounter("netmark_traces_retained_total");
  dropped_total_ = metrics_->GetCounter("netmark_traces_dropped_total");
}

void TraceStore::BindMetrics(MetricsRegistry* registry) {
  if (registry == nullptr || registry == metrics_) return;
  metrics_ = registry;
  BindHandles();
}

void TraceStore::Configure(TraceStoreOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options.rng_seed != 0) rng_ = netmark::Rng(options.rng_seed);
  options_ = options;
}

bool TraceStore::ShouldSample() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.sample_rate >= 1.0) {
    sampled_total_->Increment();
    return true;
  }
  if (options_.sample_rate <= 0.0) return false;
  if (!rng_.Chance(options_.sample_rate)) return false;
  sampled_total_->Increment();
  return true;
}

bool TraceStore::Record(std::shared_ptr<Trace> trace, bool head_sampled,
                        bool error) {
  if (trace == nullptr) return false;
  TraceSummary meta;
  meta.id = trace->trace_id();
  if (meta.id.empty()) return false;  // nothing to look it up by
  const std::vector<SpanData> spans = trace->Snapshot();
  if (!spans.empty()) {
    meta.root = spans.front().name;
    meta.ok = spans.front().ok;
  }
  meta.duration_micros = trace->RootDurationMicros();
  meta.error = error || !meta.ok;
  meta.wall_seconds = netmark::WallSeconds();

  std::lock_guard<std::mutex> lock(mu_);
  meta.slow = options_.slow_keep_ms > 0 &&
              meta.duration_micros >= options_.slow_keep_ms * 1000;
  const bool keep = head_sampled || meta.error || meta.slow;
  if (!keep) {
    dropped_total_->Increment();
    return false;
  }
  retained_total_->Increment();
  std::deque<Entry>& ring = meta.error || meta.slow ? important_ : recent_;
  const size_t cap = std::max<size_t>(
      meta.error || meta.slow ? options_.important_capacity : options_.capacity,
      1);
  ring.push_back(Entry{std::move(meta), std::move(trace)});
  while (ring.size() > cap) {
    ring.pop_front();
    dropped_total_->Increment();  // evictions count as drops too
  }
  return true;
}

std::vector<TraceSummary> TraceStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSummary> out;
  out.reserve(important_.size() + recent_.size());
  for (auto it = important_.rbegin(); it != important_.rend(); ++it) {
    out.push_back(it->meta);
  }
  for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
    out.push_back(it->meta);
  }
  return out;
}

std::shared_ptr<Trace> TraceStore::Find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = important_.rbegin(); it != important_.rend(); ++it) {
    if (it->meta.id == id) return it->trace;
  }
  for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
    if (it->meta.id == id) return it->trace;
  }
  return nullptr;
}

size_t TraceStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return important_.size() + recent_.size();
}

double TraceStore::sample_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.sample_rate;
}

}  // namespace netmark::observability
