// Result<T>: value-or-Status, the return type for fallible value-producing
// functions throughout NETMARK (Arrow idiom).

#ifndef NETMARK_COMMON_RESULT_H_
#define NETMARK_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace netmark {

/// \brief Holds either a T or an error Status.
///
/// Constructing from an OK Status is a programming error (asserted); use the
/// value constructor instead.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs from an error status (implicit, so `return st;` works).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK Status");
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error Status, or OK when a value is held.
  Status status() const& {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Value accessors; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` on error.
  T ValueOr(T fallback) const& { return ok() ? std::get<T>(repr_) : std::move(fallback); }
  T ValueOr(T fallback) && {
    return ok() ? std::get<T>(std::move(repr_)) : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace netmark

#endif  // NETMARK_COMMON_RESULT_H_
