#include "server/epoll_reactor.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/clock.h"
#include "common/logging.h"

namespace netmark::server {

namespace {

/// How long the listener stays parked after EMFILE/ENFILE before the
/// reactor retries registration (a CloseConn in the meantime unparks it
/// immediately — a slot just freed).
constexpr int64_t kListenerParkMicros = 50 * 1000;
/// epoll_wait timeout cap: bounds staleness of the draining_ re-check even
/// if a wake were ever missed.
constexpr int64_t kMaxWaitMicros = 1000 * 1000;

/// One-shot, non-blocking response write for reactor-thread error paths
/// (503 shed, 408 timeout). The payloads are far below a loopback socket
/// buffer; a client too stalled to take them gets the close alone.
void SendBestEffort(int fd, const HttpResponse& response) {
  std::string wire = response.Serialize();
  (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
}

}  // namespace

EpollReactor::~EpollReactor() {
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

netmark::Status EpollReactor::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return netmark::Status::IOError(std::string("epoll_create1: ") +
                                    std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return netmark::Status::IOError(std::string("eventfd: ") +
                                    std::strerror(errno));
  }
  // The reactor must never block in accept(); the threadpool path keeps the
  // listener blocking, so flip it here rather than in HttpServer::Start.
  int flags = ::fcntl(server_->listen_fd_, F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(server_->listen_fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    return netmark::Status::IOError(std::string("fcntl(listen): ") +
                                    std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered; OnAccept drains to EAGAIN anyway
  ev.data.fd = server_->listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, server_->listen_fd_, &ev) != 0) {
    return netmark::Status::IOError(std::string("epoll_ctl(listen): ") +
                                    std::strerror(errno));
  }
  listener_registered_ = true;
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return netmark::Status::IOError(std::string("epoll_ctl(wake): ") +
                                    std::strerror(errno));
  }
  return netmark::Status::OK();
}

void EpollReactor::Wake() {
  uint64_t one = 1;
  (void)::write(wake_fd_, &one, sizeof(one));
}

void EpollReactor::Complete(HttpServer::Completion done) {
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(done);
  }
  Wake();
}

void EpollReactor::Run() {
  std::vector<epoll_event> events(256);
  while (true) {
    int64_t now = netmark::MonotonicMicros();
    if (!drain_started_ && server_->draining_.load(std::memory_order_acquire)) {
      StartDrain(now);
    }
    ProcessCompletions(now);
    FireTimers(now);
    if (drain_started_ && conns_.empty()) break;

    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()),
                         NextTimeoutMs(netmark::MonotonicMicros()));
    if (n < 0) {
      if (errno == EINTR) continue;
      NETMARK_LOG(Error) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    server_->epoll_wakeups_.fetch_add(1);
    server_->handles_.epoll_wakeups->Increment();
    now = netmark::MonotonicMicros();
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
      } else if (fd == server_->listen_fd_) {
        OnAccept(now);
      } else {
        OnConnEvent(fd, now);
      }
    }
  }
  // Normal exit leaves no connections (the drain retires them all); after
  // an epoll failure, release whatever is left so Stop() can still join.
  for (auto& [fd, conn] : conns_) {
    ::close(fd);
    server_->open_connections_.fetch_sub(1);
  }
  conns_.clear();
}

int EpollReactor::NextTimeoutMs(int64_t now) const {
  int64_t wait = kMaxWaitMicros;
  if (!timers_.empty()) {
    wait = std::min(wait, timers_.top().deadline - now);
  }
  // +999: round up so a timer due in 100us does not busy-spin at timeout 0.
  return static_cast<int>(std::max<int64_t>(wait + 999, 0) / 1000);
}

void EpollReactor::OnAccept(int64_t now) {
  while (true) {
    int fd = ::accept4(server_->listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      server_->accept_errors_.fetch_add(1);
      server_->handles_.accept_errors->Increment();
      NETMARK_LOG(Warning) << "accept: " << std::strerror(errno);
      if (errno == EMFILE || errno == ENFILE) ParkListener(now);
      return;
    }
    server_->connections_accepted_.fetch_add(1);
    server_->open_connections_.fetch_add(1);
    Conn& conn = conns_[fd];
    conn = Conn{};
    conn.fd = fd;
    conn.id = ++next_conn_id_;
    conn.idle_deadline =
        now + int64_t{server_->options_.idle_timeout_ms} * 1000;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      NETMARK_LOG(Warning) << "epoll_ctl(conn): " << std::strerror(errno);
      CloseConn(fd);
      continue;
    }
    ArmDeadline(conn);
  }
}

void EpollReactor::OnConnEvent(int fd, int64_t now) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;  // stale event for a retired connection
  Conn& conn = it->second;
  // EPOLLONESHOT delivered at most this one event: drain the socket to
  // EAGAIN or no more bytes arrive until the next re-arm.
  bool peer_eof = false;
  char chunk[16384];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.buffer.append(chunk, static_cast<size_t>(n));
      if (conn.buffer.size() > kMaxHttpMessageBytes) {
        CloseConn(fd);
        return;
      }
      continue;
    }
    if (n == 0) {
      peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(fd);
    return;
  }
  if (!conn.message_started && !conn.buffer.empty()) {
    // First byte of a request: the (fresher) read deadline takes over from
    // the idle deadline, exactly as the threadpool read loop does.
    conn.message_started = true;
    conn.read_deadline =
        now + int64_t{server_->options_.read_timeout_ms} * 1000;
  }
  size_t frame_len = CompleteMessageBytes(conn.buffer, &conn.head_end);
  if (frame_len > 0) {
    Dispatch(conn, frame_len, now);
    return;
  }
  if (peer_eof) {
    // EOF without a complete request: clean close at a boundary or a
    // mid-request abort — nothing to answer either way.
    CloseConn(fd);
    return;
  }
  ArmDeadline(conn);
  if (!RearmEpoll(conn)) CloseConn(fd);
}

void EpollReactor::Dispatch(Conn& conn, size_t frame_len, int64_t now) {
  HttpServer::FramedRequest request;
  request.fd = conn.fd;
  request.conn_id = conn.id;
  request.raw.assign(conn.buffer, 0, frame_len);
  request.served_before = conn.served;
  request.enqueued_micros = now;
  conn.buffer.erase(0, frame_len);
  conn.head_end = std::string::npos;
  conn.message_started = false;  // leftover bytes restart at completion
  if (!server_->request_queue_->TryPush(std::move(request))) {
    // Queue full (or closing): shed this request with an immediate 503
    // instead of queueing unboundedly behind slow requests.
    server_->connections_shed_.fetch_add(1);
    server_->handles_.shed->Increment();
    HttpResponse resp =
        HttpResponse::Text(503, "server overloaded, retry shortly");
    resp.headers["Connection"] = "close";
    resp.headers["Retry-After"] = "1";
    SendBestEffort(conn.fd, resp);
    CloseConn(conn.fd);
    return;
  }
  server_->queue_depth_.fetch_add(1, std::memory_order_relaxed);
  conn.served += 1;
  conn.in_flight = true;
  ++conn.timer_gen;  // no reactor deadline while a worker owns the request
}

void EpollReactor::ProcessCompletions(int64_t now) {
  std::vector<HttpServer::Completion> done;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    done.swap(completions_);
  }
  for (const HttpServer::Completion& fin : done) {
    auto it = conns_.find(fin.fd);
    if (it == conns_.end() || it->second.id != fin.conn_id) continue;
    Conn& conn = it->second;
    conn.in_flight = false;
    if (!fin.keep) {
      CloseConn(fin.fd);
      continue;
    }
    // Pipelined carryover: the client may have sent the next request while
    // the previous one executed — frame it straight from the buffer.
    size_t frame_len = CompleteMessageBytes(conn.buffer, &conn.head_end);
    if (frame_len > 0) {
      Dispatch(conn, frame_len, now);
      continue;
    }
    if (!conn.buffer.empty()) {
      conn.message_started = true;
      conn.read_deadline =
          now + int64_t{server_->options_.read_timeout_ms} * 1000;
    } else {
      conn.message_started = false;
      conn.idle_deadline =
          now + int64_t{server_->options_.idle_timeout_ms} * 1000;
    }
    ArmDeadline(conn);
    if (!RearmEpoll(conn)) CloseConn(fin.fd);
  }
}

void EpollReactor::FireTimers(int64_t now) {
  while (!timers_.empty() && timers_.top().deadline <= now) {
    TimerEntry entry = timers_.top();
    timers_.pop();
    if (entry.fd < 0) {
      UnparkListener();
      continue;
    }
    auto it = conns_.find(entry.fd);
    if (it == conns_.end() || it->second.id != entry.conn_id ||
        it->second.timer_gen != entry.gen || it->second.in_flight) {
      continue;  // lazily cancelled: the connection advanced since arming
    }
    if (it->second.message_started) {
      // Request started but stalled past the read deadline: answer 408.
      server_->read_timeouts_.fetch_add(1);
      server_->handles_.read_timeouts->Increment();
      HttpResponse resp = HttpResponse::Text(408, "request read timed out");
      resp.headers["Connection"] = "close";
      SendBestEffort(entry.fd, resp);
    }
    CloseConn(entry.fd);  // idle expiry reaps quietly
  }
}

void EpollReactor::StartDrain(int64_t now) {
  drain_started_ = true;
  drain_deadline_ = now + kDrainGraceMicros;
  if (listener_registered_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, server_->listen_fd_, nullptr);
    listener_registered_ = false;
  }
  // Idle keep-alive connections have nothing in progress: retire them now.
  // Mid-read connections keep their (clamped) deadline — a request that
  // completes inside the grace window is still served, with
  // Connection: close; in-flight requests finish at their own pace and
  // retire through their completions.
  std::vector<int> idle;
  for (auto& [fd, conn] : conns_) {
    if (!conn.in_flight && !conn.message_started && conn.buffer.empty()) {
      idle.push_back(fd);
    }
  }
  for (int fd : idle) CloseConn(fd);
  for (auto& [fd, conn] : conns_) {
    if (!conn.in_flight) ArmDeadline(conn);  // re-arm with the drain clamp
  }
}

void EpollReactor::ArmDeadline(Conn& conn) {
  int64_t deadline =
      conn.message_started ? conn.read_deadline : conn.idle_deadline;
  if (drain_started_) deadline = std::min(deadline, drain_deadline_);
  ++conn.timer_gen;
  timers_.push(TimerEntry{deadline, conn.fd, conn.id, conn.timer_gen});
}

bool EpollReactor::RearmEpoll(const Conn& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
  ev.data.fd = conn.fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0;
}

void EpollReactor::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
  server_->open_connections_.fetch_sub(1);
  // An fd slot just freed: if EMFILE parked the listener, resume accepting
  // without waiting out the retry timer.
  if (!listener_registered_ && !drain_started_) UnparkListener();
}

void EpollReactor::ParkListener(int64_t now) {
  if (!listener_registered_) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, server_->listen_fd_, nullptr);
  listener_registered_ = false;
  timers_.push(TimerEntry{now + kListenerParkMicros, -1, 0, 0});
}

void EpollReactor::UnparkListener() {
  if (listener_registered_ || drain_started_) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = server_->listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, server_->listen_fd_, &ev) == 0) {
    listener_registered_ = true;
  }
}

}  // namespace netmark::server
