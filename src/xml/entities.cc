#include "xml/entities.h"

#include <cstdint>
#include <map>

namespace netmark::xml {

namespace {

// UTF-8 encodes a code point (best effort; invalid points become U+FFFD).
void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) cp = 0xFFFD;
  if (cp < 0x80) {
    *out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    *out += static_cast<char>(0xC0 | (cp >> 6));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    *out += static_cast<char>(0xE0 | (cp >> 12));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    *out += static_cast<char>(0xF0 | (cp >> 18));
    *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

const std::map<std::string, uint32_t, std::less<>>& NamedEntities() {
  static const std::map<std::string, uint32_t, std::less<>> kTable = {
      {"amp", '&'},      {"lt", '<'},      {"gt", '>'},      {"quot", '"'},
      {"apos", '\''},    {"nbsp", 0xA0},   {"copy", 0xA9},   {"reg", 0xAE},
      {"trade", 0x2122}, {"mdash", 0x2014}, {"ndash", 0x2013}, {"hellip", 0x2026},
      {"lsquo", 0x2018}, {"rsquo", 0x2019}, {"ldquo", 0x201C}, {"rdquo", 0x201D},
      {"bull", 0x2022},  {"deg", 0xB0},    {"plusmn", 0xB1}, {"times", 0xD7},
      {"divide", 0xF7},  {"frac12", 0xBD}, {"sect", 0xA7},   {"para", 0xB6},
      {"middot", 0xB7},  {"laquo", 0xAB},  {"raquo", 0xBB},  {"euro", 0x20AC},
      {"pound", 0xA3},   {"yen", 0xA5},    {"cent", 0xA2},
  };
  return kTable;
}

}  // namespace

std::string DecodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    if (c != '&') {
      out += c;
      ++i;
      continue;
    }
    size_t semi = s.find(';', i + 1);
    // Tolerate a lone '&' or an unterminated/overlong entity.
    if (semi == std::string_view::npos || semi - i > 12) {
      out += '&';
      ++i;
      continue;
    }
    std::string_view body = s.substr(i + 1, semi - i - 1);
    if (!body.empty() && body[0] == '#') {
      uint32_t cp = 0;
      bool valid = body.size() > 1;
      if (body.size() > 2 && (body[1] == 'x' || body[1] == 'X')) {
        for (size_t k = 2; k < body.size() && valid; ++k) {
          char h = body[k];
          if (h >= '0' && h <= '9') cp = cp * 16 + static_cast<uint32_t>(h - '0');
          else if (h >= 'a' && h <= 'f') cp = cp * 16 + static_cast<uint32_t>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') cp = cp * 16 + static_cast<uint32_t>(h - 'A' + 10);
          else valid = false;
        }
        valid = valid && body.size() > 2;
      } else {
        for (size_t k = 1; k < body.size() && valid; ++k) {
          char d = body[k];
          if (d >= '0' && d <= '9') cp = cp * 10 + static_cast<uint32_t>(d - '0');
          else valid = false;
        }
      }
      if (valid) {
        AppendUtf8(&out, cp);
        i = semi + 1;
        continue;
      }
    } else {
      auto it = NamedEntities().find(body);
      if (it != NamedEntities().end()) {
        AppendUtf8(&out, it->second);
        i = semi + 1;
        continue;
      }
    }
    // Unknown entity: pass through verbatim.
    out += '&';
    ++i;
  }
  return out;
}

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace netmark::xml
