#include "storage/database.h"

#include <filesystem>

#include "common/string_util.h"
#include "common/temp_dir.h"

namespace netmark::storage {

namespace fs = std::filesystem;

netmark::Result<std::unique_ptr<Database>> Database::Open(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return netmark::Status::IOError("cannot create database directory " + dir + ": " +
                                    ec.message());
  }
  std::unique_ptr<Database> db(new Database(dir));
  NETMARK_ASSIGN_OR_RETURN(db->catalog_, Catalog::Load(db->CatalogPath()));
  for (const TableDef& def : db->catalog_.tables()) {
    NETMARK_ASSIGN_OR_RETURN(
        std::unique_ptr<Table> table,
        Table::Open(def.schema, db->TableFilePath(def.schema.name()), def.indexes));
    db->tables_[def.schema.name()] = std::move(table);
  }
  // DDL counter survives restarts so assembly-cost benchmarks can account
  // full lifetimes.
  auto counter = netmark::ReadFile(db->DdlCounterPath());
  if (counter.ok()) {
    auto v = netmark::ParseInt64(*counter);
    if (v.ok()) db->ddl_statements_ = static_cast<uint64_t>(*v);
  }
  return db;
}

Database::~Database() { (void)Flush(); }

std::string Database::TableFilePath(std::string_view table) const {
  return (fs::path(dir_) / (std::string(table) + ".heap")).string();
}
std::string Database::CatalogPath() const {
  return (fs::path(dir_) / "catalog.nmk").string();
}
std::string Database::DdlCounterPath() const {
  return (fs::path(dir_) / "ddl_count.nmk").string();
}

netmark::Result<Table*> Database::CreateTable(TableSchema schema) {
  if (tables_.count(schema.name()) != 0) {
    return netmark::Status::AlreadyExists("table " + schema.name() + " exists");
  }
  std::string name = schema.name();
  NETMARK_RETURN_NOT_OK(catalog_.AddTable(schema));
  NETMARK_ASSIGN_OR_RETURN(std::unique_ptr<Table> table,
                           Table::Open(std::move(schema), TableFilePath(name)));
  Table* raw = table.get();
  tables_[name] = std::move(table);
  ++ddl_statements_;
  NETMARK_RETURN_NOT_OK(catalog_.Save(CatalogPath()));
  return raw;
}

netmark::Result<Table*> Database::GetTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return netmark::Status::NotFound("no table " + std::string(name));
  }
  return it->second.get();
}

netmark::Status Database::CreateIndex(std::string_view table,
                                      const std::string& index_name,
                                      const std::vector<std::string>& columns) {
  NETMARK_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  NETMARK_RETURN_NOT_OK(t->CreateIndex(index_name, columns));
  NETMARK_RETURN_NOT_OK(catalog_.AddIndex(table, IndexDef{index_name, columns}));
  ++ddl_statements_;
  return catalog_.Save(CatalogPath());
}

netmark::Status Database::DropTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return netmark::Status::NotFound("no table " + std::string(name));
  }
  tables_.erase(it);
  NETMARK_RETURN_NOT_OK(catalog_.RemoveTable(name));
  std::error_code ec;
  fs::remove(TableFilePath(name), ec);
  ++ddl_statements_;
  return catalog_.Save(CatalogPath());
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  for (const auto& [name, t] : tables_) out.push_back(name);
  return out;
}

netmark::Status Database::Flush() {
  for (auto& [name, table] : tables_) {
    NETMARK_RETURN_NOT_OK(table->Flush());
  }
  NETMARK_RETURN_NOT_OK(catalog_.Save(CatalogPath()));
  return netmark::WriteFile(DdlCounterPath(), std::to_string(ddl_statements_));
}

}  // namespace netmark::storage
