#include "server/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/clock.h"
#include "common/string_util.h"
#include "observability/trace.h"
#include "observability/trace_context.h"

namespace netmark::server {

namespace {

/// RAII socket closer.
struct FdGuard {
  int fd;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
  int Release() {
    int out = fd;
    fd = -1;
    return out;
  }
};

/// Waits until `fd` is ready for `events` or `deadline_micros` passes.
/// OK on ready; DeadlineExceeded on timeout; IOError on poll failure.
netmark::Status PollUntil(int fd, short events, int64_t deadline_micros,
                          const char* what) {
  while (true) {
    int64_t remaining_ms = (deadline_micros - netmark::MonotonicMicros()) / 1000;
    if (remaining_ms <= 0) {
      return netmark::Status::DeadlineExceeded(std::string(what) + " timed out");
    }
    pollfd pfd{fd, events, 0};
    int rc = ::poll(&pfd, 1, static_cast<int>(std::min<int64_t>(remaining_ms,
                                                                 60 * 1000)));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return netmark::Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (rc > 0) return netmark::Status::OK();
    // rc == 0: poll slice elapsed; loop re-checks the deadline.
  }
}

/// Content-Length from a raw head (bytes [0, head_end)); -1 when absent.
int64_t HeadContentLength(const std::string& raw, size_t head_end) {
  std::string head = netmark::ToLower(raw.substr(0, head_end));
  size_t cl = head.find("content-length:");
  if (cl == std::string::npos) return -1;
  size_t eol = head.find("\r\n", cl);
  auto value = netmark::ParseInt64(head.substr(
      cl + 15, eol == std::string::npos ? std::string::npos : eol - cl - 15));
  if (value.ok() && *value >= 0) return *value;
  return -1;
}

}  // namespace

HttpClient::~HttpClient() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  for (int fd : idle_) ::close(fd);
  idle_.clear();
}

int HttpClient::PopIdle() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (idle_.empty()) return -1;
  int fd = idle_.back();
  idle_.pop_back();
  return fd;
}

void HttpClient::ReturnIdle(int fd) const {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (idle_.size() < options_.max_idle_connections) {
      idle_.push_back(fd);
      return;
    }
  }
  ::close(fd);
}

netmark::Result<int> HttpClient::Connect(int64_t connect_deadline) const {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return netmark::Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  FdGuard guard{fd};
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return netmark::Status::IOError(std::string("fcntl: ") + std::strerror(errno));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_ == "localhost" ? "127.0.0.1" : host_.c_str(),
                  &addr.sin_addr) != 1) {
    return netmark::Status::InvalidArgument("bad host address: " + host_);
  }

  // Non-blocking connect raced against the connect deadline.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      return netmark::Status::Unavailable("connect " + host_ + ":" +
                                          std::to_string(port_) + ": " +
                                          std::strerror(errno));
    }
    NETMARK_RETURN_NOT_OK(PollUntil(fd, POLLOUT, connect_deadline, "connect"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      return netmark::Status::Unavailable("connect " + host_ + ":" +
                                          std::to_string(port_) + ": " +
                                          std::strerror(err != 0 ? err : errno));
    }
  }
  opened_.fetch_add(1);
  return guard.Release();
}

netmark::Result<HttpResponse> HttpClient::Exchange(int fd,
                                                   const std::string& wire,
                                                   int64_t deadline,
                                                   bool* reusable,
                                                   bool* stale) const {
  *reusable = false;
  *stale = false;
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        NETMARK_RETURN_NOT_OK(PollUntil(fd, POLLOUT, deadline, "send"));
        continue;
      }
      // EPIPE/ECONNRESET on a pooled socket means the server closed it
      // between requests; the caller retries on a fresh connection.
      *stale = (errno == EPIPE || errno == ECONNRESET);
      return netmark::Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }

  // Read the head, then exactly Content-Length body bytes — keep-alive
  // servers do not close after the response, so read-to-EOF would hang
  // until the idle timeout. Responses without Content-Length fall back to
  // EOF-delimited reads and mark the socket non-reusable.
  std::string raw;
  char chunk[4096];
  size_t head_end = std::string::npos;
  int64_t body_len = -1;
  while (true) {
    if (head_end == std::string::npos) {
      head_end = raw.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        body_len = HeadContentLength(raw, head_end);
      }
    }
    if (head_end != std::string::npos && body_len >= 0 &&
        raw.size() >= head_end + 4 + static_cast<size_t>(body_len)) {
      break;  // complete framed response
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        NETMARK_RETURN_NOT_OK(PollUntil(fd, POLLIN, deadline, "recv"));
        continue;
      }
      *stale = raw.empty() && (errno == ECONNRESET || errno == EPIPE);
      return netmark::Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (raw.empty()) {
        // EOF before any response byte: a pooled socket the server had
        // already closed. Retryable on a fresh connection.
        *stale = true;
        return netmark::Status::Unavailable("connection closed before response");
      }
      if (head_end != std::string::npos && body_len < 0) break;  // EOF-framed
      if (head_end != std::string::npos && body_len >= 0) {
        return netmark::Status::IOError("connection closed mid-response");
      }
      return netmark::Status::ParseError("incomplete HTTP response head");
    }
    raw.append(chunk, static_cast<size_t>(n));
  }

  auto response = ParseResponse(raw);
  if (response.ok()) {
    *reusable = body_len >= 0 &&
                !netmark::EqualsIgnoreCase(response->Header("Connection"), "close");
  }
  return response;
}

netmark::Result<HttpResponse> HttpClient::Send(const HttpRequest& request,
                                               int64_t deadline_micros) const {
  const int64_t now = netmark::MonotonicMicros();
  // The effective deadline is the tightest of: caller deadline, total
  // timeout. Connect additionally honours its own (shorter) budget.
  int64_t deadline = deadline_micros;
  if (options_.total_timeout_ms > 0) {
    int64_t total = now + options_.total_timeout_ms * 1000;
    if (deadline == 0 || total < deadline) deadline = total;
  }
  if (deadline == 0) {
    // Belt and braces: never run truly unbounded.
    deadline = now + int64_t{24} * 3600 * 1000 * 1000;
  }
  int64_t connect_deadline = deadline;
  if (options_.connect_timeout_ms > 0) {
    connect_deadline =
        std::min(deadline, now + options_.connect_timeout_ms * 1000);
  }

  std::string wire;
  if (options_.reuse_connections &&
      request.headers.find("Connection") == request.headers.end()) {
    HttpRequest keep = request;
    keep.headers["Connection"] = "keep-alive";
    wire = keep.Serialize();
  } else {
    wire = request.Serialize();
  }

  bool reusable = false;
  bool stale = false;
  if (options_.reuse_connections) {
    int pooled = PopIdle();
    if (pooled >= 0) {
      FdGuard guard{pooled};
      auto response = Exchange(pooled, wire, deadline, &reusable, &stale);
      if (response.ok() || !stale) {
        if (response.ok()) reused_.fetch_add(1);
        if (response.ok() && reusable) ReturnIdle(guard.Release());
        return response;
      }
      // Stale pooled socket: fall through to a fresh connection.
    }
  }

  NETMARK_ASSIGN_OR_RETURN(int fd, Connect(connect_deadline));
  FdGuard guard{fd};
  auto response = Exchange(fd, wire, deadline, &reusable, &stale);
  if (response.ok() && reusable && options_.reuse_connections) {
    ReturnIdle(guard.Release());
  }
  if (!response.ok() && stale) {
    // A fresh connection that died before any response byte is a server
    // restart/crash — surface it as retryable for the PR 2 backoff rules.
    return netmark::Status::Unavailable(response.status().ToString());
  }
  return response;
}

netmark::Result<HttpResponse> HttpClient::Get(const std::string& target) const {
  HttpRequest req;
  req.method = "GET";
  req.target = target;
  return Send(req);
}

netmark::Result<HttpResponse> HttpClient::Put(const std::string& target,
                                              std::string body,
                                              std::string content_type) const {
  HttpRequest req;
  req.method = "PUT";
  req.target = target;
  req.body = std::move(body);
  req.headers["Content-Type"] = std::move(content_type);
  return Send(req);
}

netmark::Result<HttpResponse> HttpClient::Delete(const std::string& target) const {
  HttpRequest req;
  req.method = "DELETE";
  req.target = target;
  return Send(req);
}

netmark::Result<HttpResponse> HttpClient::Propfind(const std::string& target) const {
  HttpRequest req;
  req.method = "PROPFIND";
  req.target = target;
  req.headers["Depth"] = "1";
  return Send(req);
}

netmark::Result<std::string> SocketTransport::Get(
    const std::string& path_and_query, const federation::CallContext& ctx) {
  observability::ScopedSpan span(ctx.trace, "http_get", ctx.span);
  span.Annotate("target", path_and_query);
  HttpRequest req;
  req.method = "GET";
  req.target = path_and_query;
  if (ctx.trace != nullptr) {
    // W3C trace context: the remote NETMARK adopts this id and returns its
    // span subtree in the response's <trace> block for stitching.
    const std::string trace_id = ctx.trace->trace_id();
    if (!trace_id.empty()) {
      req.headers["traceparent"] = observability::FormatTraceparent(
          trace_id, observability::DeriveSpanId(trace_id, span.id()));
    }
  }
  auto sent = client_.Send(req, ctx.deadline_micros);
  if (!sent.ok()) {
    span.End(false, sent.status().ToString());
    return sent.status();
  }
  HttpResponse resp = std::move(*sent);
  span.Annotate("status", std::to_string(resp.status));
  span.End(resp.status == 200,
           resp.status == 200 ? "" : "HTTP " + std::to_string(resp.status));
  if (resp.status >= 500) {
    return netmark::Status::Unavailable("remote returned HTTP " +
                                        std::to_string(resp.status) + ": " + resp.body);
  }
  if (resp.status != 200) {
    return netmark::Status::InvalidArgument("remote returned HTTP " +
                                            std::to_string(resp.status) + ": " +
                                            resp.body);
  }
  return resp.body;
}

}  // namespace netmark::server
