// Wall/steady clock helpers and a stopwatch used by benches and the daemon.

#ifndef NETMARK_COMMON_CLOCK_H_
#define NETMARK_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace netmark {

/// Microseconds since the steady-clock epoch (monotonic).
inline int64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Seconds since the Unix epoch (wall clock).
inline int64_t WallSeconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// \brief Simple monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicMicros()) {}
  void Restart() { start_ = MonotonicMicros(); }
  int64_t ElapsedMicros() const { return MonotonicMicros() - start_; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedMicros()) * 1e-6; }

 private:
  int64_t start_;
};

}  // namespace netmark

#endif  // NETMARK_COMMON_CLOCK_H_
