#include "xml/entities.h"

#include <gtest/gtest.h>

namespace netmark::xml {
namespace {

TEST(EntitiesTest, DecodesCoreXmlEntities) {
  EXPECT_EQ(DecodeEntities("&lt;&gt;&amp;&quot;&apos;"), "<>&\"'");
}

TEST(EntitiesTest, DecodesNumericReferences) {
  EXPECT_EQ(DecodeEntities("&#65;&#66;"), "AB");
  EXPECT_EQ(DecodeEntities("&#x41;&#X42;"), "AB");
}

TEST(EntitiesTest, DecodesNumericToUtf8) {
  EXPECT_EQ(DecodeEntities("&#233;"), "\xC3\xA9");       // é
  EXPECT_EQ(DecodeEntities("&#x20AC;"), "\xE2\x82\xAC");  // €
  EXPECT_EQ(DecodeEntities("&#x1F600;"), "\xF0\x9F\x98\x80");  // emoji
}

TEST(EntitiesTest, InvalidCodePointsBecomeReplacementChar) {
  EXPECT_EQ(DecodeEntities("&#xD800;"), "\xEF\xBF\xBD");
  EXPECT_EQ(DecodeEntities("&#x110000;"), "\xEF\xBF\xBD");
}

TEST(EntitiesTest, CommonHtmlNamedEntities) {
  EXPECT_EQ(DecodeEntities("&nbsp;"), "\xC2\xA0");
  EXPECT_EQ(DecodeEntities("&mdash;"), "\xE2\x80\x94");
  EXPECT_EQ(DecodeEntities("&copy;"), "\xC2\xA9");
}

TEST(EntitiesTest, UnknownAndMalformedPassThrough) {
  EXPECT_EQ(DecodeEntities("&unknown;"), "&unknown;");
  EXPECT_EQ(DecodeEntities("a & b"), "a & b");
  EXPECT_EQ(DecodeEntities("trailing &"), "trailing &");
  EXPECT_EQ(DecodeEntities("&toolongentityname1234;"), "&toolongentityname1234;");
  EXPECT_EQ(DecodeEntities("&#;"), "&#;");
  EXPECT_EQ(DecodeEntities("&#xG;"), "&#xG;");
}

TEST(EntitiesTest, EscapeTextMinimal) {
  EXPECT_EQ(EscapeText("a<b>&c\"'"), "a&lt;b&gt;&amp;c\"'");
}

TEST(EntitiesTest, EscapeAttributeAlsoQuotes) {
  EXPECT_EQ(EscapeAttribute("a<b>&\"c"), "a&lt;b&gt;&amp;&quot;c");
}

TEST(EntitiesTest, EscapeDecodeRoundTrip) {
  const std::string original = "if (a < b && c > d) say \"hi\"";
  EXPECT_EQ(DecodeEntities(EscapeText(original)), original);
  EXPECT_EQ(DecodeEntities(EscapeAttribute(original)), original);
}

}  // namespace
}  // namespace netmark::xml
