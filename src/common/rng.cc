#include "common/rng.h"

#include <cmath>

namespace netmark {

size_t Rng::Zipf(size_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse-CDF over the generalized harmonic number, computed incrementally.
  // O(n) worst case but typically exits early for skewed theta; n here is the
  // vocabulary/document-count scale used in workloads, so this stays cheap
  // relative to the work done per pick.
  double h = 0.0;
  for (size_t i = 0; i < n; ++i) h += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  double u = UniformDouble() * h;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    if (acc >= u) return i;
  }
  return n - 1;
}

}  // namespace netmark
