// Redo recovery: replays committed write-ahead-log transactions into the
// heap files. Database::Open runs this automatically before opening tables
// whenever it finds a non-empty log.

#ifndef NETMARK_STORAGE_RECOVERY_H_
#define NETMARK_STORAGE_RECOVERY_H_

#include <cstdint>
#include <string>

#include "common/env.h"
#include "common/result.h"

namespace netmark::storage {

struct RecoveryStats {
  bool performed = false;       ///< a non-empty log was found and replayed
  uint64_t records_scanned = 0;
  uint64_t committed_txns = 0;
  uint64_t uncommitted_txns = 0;  ///< trailing txns dropped (never committed)
  uint64_t pages_applied = 0;
  bool torn_tail = false;         ///< log ended in a torn/CRC-bad record
  uint64_t last_lsn = 0;          ///< highest replayed LSN
  int64_t micros = 0;             ///< wall time of the recovery pass
};

/// Replays every committed transaction of `wal_path` into the `<table>.heap`
/// files under `dir`, fsyncs them, then truncates the log. Idempotent:
/// running it twice (e.g. a crash during recovery itself) converges to the
/// same state, because replay writes full page images in LSN order.
/// `env` defaults to Env::Default().
netmark::Result<RecoveryStats> RecoverDatabase(const std::string& dir,
                                               const std::string& wal_path,
                                               netmark::Env* env = nullptr);

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_RECOVERY_H_
