// W3C Trace Context (traceparent) support: parse/format the header that
// carries a trace across process boundaries, plus id generation.
//
// Header shape (https://www.w3.org/TR/trace-context/):
//
//   traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// The mediator generates a fresh trace id per request (or adopts the
// inbound one), and SocketTransport stamps the header on every federated
// GET so the remote NETMARK joins the same trace. All-zero ids are invalid
// per spec and rejected.

#ifndef NETMARK_OBSERVABILITY_TRACE_CONTEXT_H_
#define NETMARK_OBSERVABILITY_TRACE_CONTEXT_H_

#include <optional>
#include <string>
#include <string_view>

namespace netmark::observability {

/// Parsed traceparent header.
struct TraceContext {
  std::string trace_id;  ///< 32 lowercase hex chars, never all-zero
  std::string span_id;   ///< 16 lowercase hex chars (the caller's span)
  bool sampled = true;   ///< flags bit 0
};

/// Parses a traceparent header value. Returns nullopt on any malformation
/// (wrong length, bad hex, all-zero ids, unknown version ff) — an invalid
/// header means "start a fresh trace", never an error.
std::optional<TraceContext> ParseTraceparent(std::string_view header);

/// Renders `00-<trace_id>-<span_id>-01|00`.
std::string FormatTraceparent(const std::string& trace_id,
                              const std::string& span_id, bool sampled = true);

/// Fresh random 128-bit trace id (32 lowercase hex, nonzero). Seeded from
/// the monotonic clock, pid, and a process-wide counter so two instances
/// started in the same microsecond still diverge.
std::string GenerateTraceId();

/// Deterministic 16-hex span id for the wire, derived from the trace id and
/// the local span index — the remote only echoes it back, so it needs to be
/// unique per hop, not cryptographic.
std::string DeriveSpanId(const std::string& trace_id, int span_index);

}  // namespace netmark::observability

#endif  // NETMARK_OBSERVABILITY_TRACE_CONTEXT_H_
