#include "xml/serializer.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace netmark::xml {
namespace {

TEST(SerializerTest, EmptyElementSelfCloses) {
  Document doc;
  doc.AppendChild(doc.root(), doc.CreateElement("e"));
  EXPECT_EQ(Serialize(doc), "<e/>");
}

TEST(SerializerTest, EscapesTextAndAttributes) {
  Document doc;
  NodeId e = doc.CreateElement("e");
  doc.AddAttribute(e, "a", "x<y>\"z\"&");
  doc.AppendChild(doc.root(), e);
  doc.AppendChild(e, doc.CreateText("1 < 2 & 3 > 0"));
  EXPECT_EQ(Serialize(doc),
            "<e a=\"x&lt;y&gt;&quot;z&quot;&amp;\">1 &lt; 2 &amp; 3 &gt; 0</e>");
}

TEST(SerializerTest, DeclarationOption) {
  Document doc;
  doc.AppendChild(doc.root(), doc.CreateElement("r"));
  SerializeOptions opts;
  opts.declaration = true;
  EXPECT_EQ(Serialize(doc, opts), "<?xml version=\"1.0\" encoding=\"UTF-8\"?><r/>");
}

TEST(SerializerTest, PrettyPrintsElementOnlyContent) {
  auto doc = ParseXml("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(doc.ok());
  SerializeOptions opts;
  opts.pretty = true;
  EXPECT_EQ(Serialize(*doc, opts),
            "<a>\n"
            "  <b>\n"
            "    <c/>\n"
            "  </b>\n"
            "  <d/>\n"
            "</a>");
}

TEST(SerializerTest, PrettyPreservesMixedContentExactly) {
  auto doc = ParseXml("<p>before<b>bold</b>after</p>");
  ASSERT_TRUE(doc.ok());
  SerializeOptions opts;
  opts.pretty = true;
  // Mixed content must not gain whitespace.
  EXPECT_EQ(Serialize(*doc, opts), "<p>before<b>bold</b>after</p>");
}

TEST(SerializerTest, SerializesSubtreeOnly) {
  auto doc = ParseXml("<a><b>inner</b><c/></a>");
  ASSERT_TRUE(doc.ok());
  NodeId b = doc->FirstChildElement(doc->DocumentElement(), "b");
  EXPECT_EQ(Serialize(*doc, b), "<b>inner</b>");
}

TEST(SerializerTest, CDataAndPi) {
  Document doc;
  NodeId r = doc.CreateElement("r");
  doc.AppendChild(doc.root(), r);
  doc.AppendChild(r, doc.CreateCData("a<b"));
  doc.AppendChild(doc.root(), doc.CreateProcessingInstruction("target", "data"));
  EXPECT_EQ(Serialize(doc), "<r><![CDATA[a<b]]></r><?target data?>");
}

}  // namespace
}  // namespace netmark::xml
