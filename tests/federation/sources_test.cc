#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "federation/content_only_source.h"
#include "federation/local_source.h"
#include "federation/remote_source.h"
#include "xml/parser.h"

namespace netmark::federation {
namespace {

TEST(ContentOnlySourceTest, IgnoresContextAndMatchesKeywords) {
  ContentOnlySource source("lessons");
  auto doc = xml::ParseXml(
      "<document><context>Title</context><content>turbine wear</content>"
      "</document>");
  ASSERT_TRUE(doc.ok());
  source.AddDocument("l1.xml", *doc);
  EXPECT_EQ(source.document_count(), 1u);

  query::XdbQuery q;
  q.content = "turbine";
  q.context = "Completely Ignored";
  auto hits = source.Execute(q);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].file_name, "l1.xml");
  EXPECT_FALSE((*hits)[0].markup.empty());

  // No content key -> nothing (it cannot do context search at all).
  query::XdbQuery ctx_only;
  ctx_only.context = "Title";
  EXPECT_TRUE(source.Execute(ctx_only)->empty());
}

TEST(ContentOnlySourceTest, PhraseDegradesToConjunction) {
  ContentOnlySource source("s");
  auto doc = xml::ParseXml(
      "<document><content>gap technology report</content></document>");
  ASSERT_TRUE(doc.ok());
  source.AddDocument("d.xml", *doc);
  query::XdbQuery q;
  q.content = "\"technology gap\"";  // words present but not adjacent
  auto hits = source.Execute(q);
  ASSERT_TRUE(hits.ok());
  // The limited source returns it anyway (false positive by design)...
  EXPECT_EQ(hits->size(), 1u);
  // ...and its capabilities say so, which is what tells the router to
  // re-verify.
  EXPECT_FALSE(source.capabilities().phrase_search);
}

TEST(LocalSourceTest, FullCapabilityExecution) {
  auto dir = netmark::TempDir::Make("localsource");
  ASSERT_TRUE(dir.ok());
  auto store = xmlstore::XmlStore::Open(dir->str());
  ASSERT_TRUE(store.ok());
  auto doc = xml::ParseXml("<d><h1>Budget</h1><p>amount 100</p></d>");
  ASSERT_TRUE(doc.ok());
  xmlstore::DocumentInfo info;
  info.file_name = "d.xml";
  ASSERT_TRUE((*store)->InsertDocument(*doc, info).ok());

  LocalStoreSource source("local", store->get());
  EXPECT_TRUE(source.capabilities().context_search);
  query::XdbQuery q;
  q.context = "Budget";
  auto hits = source.Execute(q);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].heading, "Budget");
  EXPECT_NE((*hits)[0].markup.find("<h1>Budget</h1>"), std::string::npos);
}

TEST(RemoteSourceTest, ParsesResultsDocuments) {
  const char* body =
      "<results query=\"context=Budget\" count=\"2\">"
      "<result doc=\"a.xml\" docid=\"1\"><context>Budget</context>"
      "<content><p>one <b>hundred</b></p></content></result>"
      "<result doc=\"b.xml\" docid=\"2\"/>"
      "</results>";
  auto hits = ParseResultsDocument(body);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 2u);
  EXPECT_EQ((*hits)[0].file_name, "a.xml");
  EXPECT_EQ((*hits)[0].doc_id, 1);
  EXPECT_EQ((*hits)[0].heading, "Budget");
  EXPECT_EQ((*hits)[0].text, "one hundred");
  EXPECT_NE((*hits)[0].markup.find("<b>hundred</b>"), std::string::npos);
  EXPECT_EQ((*hits)[1].file_name, "b.xml");
  EXPECT_TRUE((*hits)[1].heading.empty());
}

TEST(RemoteSourceTest, RejectsNonResultsPayload) {
  EXPECT_FALSE(ParseResultsDocument("<error>boom</error>").ok());
  EXPECT_FALSE(ParseResultsDocument("not xml at all").ok());
}

class FakeTransport : public HttpTransport {
 public:
  explicit FakeTransport(std::string body) : body_(std::move(body)) {}
  using HttpTransport::Get;
  netmark::Result<std::string> Get(const std::string& path_and_query,
                                   const CallContext& ctx) override {
    (void)ctx;
    last_path = path_and_query;
    return body_;
  }
  std::string last_path;

 private:
  std::string body_;
};

TEST(RemoteSourceTest, BuildsXdbUrlsAndParses) {
  auto transport = std::make_unique<FakeTransport>(
      "<results><result doc=\"r.xml\" docid=\"3\"><context>C</context>"
      "<content>body</content></result></results>");
  FakeTransport* raw = transport.get();
  RemoteSource source("remote", std::move(transport));
  query::XdbQuery q;
  q.context = "Technology Gap";
  auto hits = source.Execute(q);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(raw->last_path, "/xdb?context=Technology+Gap");
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].doc_id, 3);
}

}  // namespace
}  // namespace netmark::federation
