#include "convert/converter.h"

namespace netmark::convert {

UpmarkBuilder::UpmarkBuilder(std::string_view file_name, std::string_view format) {
  root_ = doc_.CreateElement("document");
  doc_.AppendChild(doc_.root(), root_);
  xml::NodeId meta = doc_.CreateElement("netmark:meta");
  doc_.AddAttribute(meta, "file", std::string(file_name));
  doc_.AddAttribute(meta, "format", std::string(format));
  doc_.AppendChild(root_, meta);
}

void UpmarkBuilder::BeginSection(std::string heading) {
  xml::NodeId ctx = doc_.CreateElement("context");
  doc_.AppendChild(ctx, doc_.CreateText(std::move(heading)));
  doc_.AppendChild(root_, ctx);
  current_content_ = xml::kInvalidNode;  // fresh <content> on next block
}

void UpmarkBuilder::EnsureContent() {
  if (current_content_ == xml::kInvalidNode) {
    current_content_ = doc_.CreateElement("content");
    doc_.AppendChild(root_, current_content_);
  }
}

void UpmarkBuilder::AddParagraph(std::string text) {
  EnsureContent();
  xml::NodeId p = doc_.CreateElement("p");
  doc_.AppendChild(p, doc_.CreateText(std::move(text)));
  doc_.AppendChild(current_content_, p);
}

void UpmarkBuilder::AddBlock(xml::NodeId subtree) {
  EnsureContent();
  doc_.AppendChild(current_content_, subtree);
}

xml::Document UpmarkBuilder::Finish() { return std::move(doc_); }

}  // namespace netmark::convert
