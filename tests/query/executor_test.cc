#include "query/executor.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "query/plan.h"
#include "query/result_cache.h"
#include "xml/parser.h"

namespace netmark::query {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = netmark::TempDir::Make("executor");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<netmark::TempDir>(std::move(*dir));
    auto store = xmlstore::XmlStore::Open(dir_->str());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);

    Insert("paper.xml",
           "<doc>"
           "<h1>Introduction</h1><p>Integration middleware is heavy.</p>"
           "<h1>Technology Gap</h1><p>The technology gap is shrinking.</p>"
           "<h1>Conclusions</h1><p>Lean middleware wins.</p>"
           "</doc>");
    Insert("report.xml",
           "<doc>"
           "<h1>Budget</h1><p>The shuttle program budget is large.</p>"
           "<h1>Technology Gap</h1><p>Still widening in avionics.</p>"
           "</doc>");
    Insert("memo.xml", "<doc><h1>Notes</h1><p>shuttle avionics telemetry</p></doc>");
  }

  void Insert(const std::string& name, const char* markup) {
    auto doc = xml::ParseXml(markup);
    ASSERT_TRUE(doc.ok());
    xmlstore::DocumentInfo info;
    info.file_name = name;
    ASSERT_TRUE(store_->InsertDocument(*doc, info).ok());
  }

  std::vector<QueryHit> Run(const std::string& query_string,
                            ExecuteOptions options = {}) {
    auto q = ParseXdbQuery(query_string);
    EXPECT_TRUE(q.ok());
    QueryExecutor executor(store_.get(), options);
    auto hits = executor.Execute(*q);
    EXPECT_TRUE(hits.ok()) << hits.status().ToString();
    return hits.ok() ? *hits : std::vector<QueryHit>{};
  }

  std::unique_ptr<netmark::TempDir> dir_;
  std::unique_ptr<xmlstore::XmlStore> store_;
};

TEST_F(ExecutorTest, ContextSearchReturnsMatchingSectionsAcrossDocs) {
  auto hits = Run("context=Technology+Gap");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].file_name, "paper.xml");
  EXPECT_EQ(hits[0].heading, "Technology Gap");
  EXPECT_NE(hits[0].text.find("shrinking"), std::string::npos);
  EXPECT_EQ(hits[1].file_name, "report.xml");
  EXPECT_NE(hits[1].text.find("widening"), std::string::npos);
}

TEST_F(ExecutorTest, ContextSearchDoesNotMatchBodyMentions) {
  // "technology" appears in paper.xml body text; only headings qualify.
  auto hits = Run("context=Introduction");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].heading, "Introduction");
}

TEST_F(ExecutorTest, ContentSearchReturnsWholeDocuments) {
  auto hits = Run("content=shuttle");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].file_name, "report.xml");
  EXPECT_EQ(hits[1].file_name, "memo.xml");
  EXPECT_FALSE(hits[0].context.valid());
}

TEST_F(ExecutorTest, ContentHitsCarrySnippets) {
  auto hits = Run("content=shuttle");
  ASSERT_EQ(hits.size(), 2u);
  // The report.xml match sits in its Budget section.
  EXPECT_EQ(hits[0].heading, "Budget");
  EXPECT_NE(hits[0].text.find("shuttle program"), std::string::npos);
  EXPECT_EQ(hits[1].heading, "Notes");
}

TEST_F(ExecutorTest, MultiTermContentIsDocumentConjunction) {
  // "shuttle" and "telemetry" co-occur only in memo.xml (different docs
  // otherwise).
  auto hits = Run("content=shuttle+telemetry");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file_name, "memo.xml");
}

TEST_F(ExecutorTest, CombinedQueryScopesContentToSection) {
  auto hits = Run("context=Technology+Gap&content=shrinking");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file_name, "paper.xml");
  // "budget" is in report.xml's Budget section, not its Technology Gap one.
  EXPECT_TRUE(Run("context=Technology+Gap&content=budget").empty());
}

TEST_F(ExecutorTest, PhraseQueries) {
  auto hits = Run("context=%22Technology+Gap%22");
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(Run("context=%22Gap+Technology%22").empty());
}

TEST_F(ExecutorTest, DocScopeFilters) {
  auto hits = Run("context=Technology+Gap&doc=1");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc_id, 1);
}

TEST_F(ExecutorTest, LimitTruncates) {
  EXPECT_EQ(Run("context=Technology+Gap&limit=1").size(), 1u);
}

TEST_F(ExecutorTest, EmptyQueryIsInvalid) {
  QueryExecutor executor(store_.get());
  EXPECT_TRUE(executor.Execute(XdbQuery{}).status().IsInvalidArgument());
}

TEST_F(ExecutorTest, NoMatchesIsEmptyNotError) {
  EXPECT_TRUE(Run("context=Nonexistent").empty());
  EXPECT_TRUE(Run("content=zzzzzz").empty());
}

TEST_F(ExecutorTest, ScanFallbackAgreesWithIndex) {
  ExecuteOptions scan;
  scan.use_text_index = false;
  for (const char* qs :
       {"context=Technology+Gap", "content=shuttle",
        "context=Technology+Gap&content=shrinking", "content=shuttle+telemetry"}) {
    auto indexed = Run(qs);
    auto scanned = Run(qs, scan);
    ASSERT_EQ(indexed.size(), scanned.size()) << qs;
    for (size_t i = 0; i < indexed.size(); ++i) {
      EXPECT_EQ(indexed[i].doc_id, scanned[i].doc_id) << qs;
      EXPECT_EQ(indexed[i].heading, scanned[i].heading) << qs;
    }
  }
}

TEST_F(ExecutorTest, IndexJoinWalksAgreeWithRowidWalks) {
  ExecuteOptions joins;
  joins.use_index_joins_for_walks = true;
  for (const char* qs :
       {"context=Technology+Gap", "context=Budget&content=shuttle"}) {
    auto rowid_hits = Run(qs);
    auto join_hits = Run(qs, joins);
    ASSERT_EQ(rowid_hits.size(), join_hits.size()) << qs;
    for (size_t i = 0; i < rowid_hits.size(); ++i) {
      EXPECT_EQ(rowid_hits[i].context, join_hits[i].context) << qs;
    }
  }
}

TEST_F(ExecutorTest, IntenseMarkupBoostsContentRanking) {
  // Same term frequency, but one document emphasizes the term.
  Insert("plain.xml", "<doc><h1>A</h1><p>turbopump mentioned casually</p></doc>");
  Insert("intense.xml", "<doc><h1>A</h1><p><b>turbopump</b> is critical</p></doc>");
  auto hits = Run("content=turbopump");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].file_name, "intense.xml");  // emphasized match ranks first
  EXPECT_GT(hits[0].score, hits[1].score);
  EXPECT_EQ(hits[1].file_name, "plain.xml");
}

TEST_F(ExecutorTest, HigherTermFrequencyRanksFirst) {
  Insert("once.xml", "<doc><p>gyroscope</p></doc>");
  Insert("thrice.xml",
         "<doc><p>gyroscope</p><p>gyroscope</p><p>gyroscope</p></doc>");
  auto hits = Run("content=gyroscope");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].file_name, "thrice.xml");
  EXPECT_EQ(hits[0].score, 3.0);
  EXPECT_EQ(hits[1].score, 1.0);
}

TEST_F(ExecutorTest, StatsAreReturnedPerCall) {
  QueryExecutor executor(store_.get());
  auto q = ParseXdbQuery("context=Technology+Gap");
  ASSERT_TRUE(q.ok());
  QueryExecutor::Stats stats;
  ASSERT_TRUE(executor.Execute(*q, &stats).ok());
  EXPECT_GT(stats.index_probes, 0u);
  EXPECT_GT(stats.nodes_walked, 0u);
  EXPECT_EQ(stats.sections_built, 2u);
  // No caches attached: both cache counters stay zero.
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.plan_cache_hits, 0u);
}

TEST_F(ExecutorTest, StatsReportCacheAndPlanCacheHits) {
  QueryResultCache cache;
  QueryPlanCache plans;
  QueryExecutor executor(store_.get());
  executor.set_result_cache(&cache);
  executor.set_plan_cache(&plans);
  auto q = ParseXdbQuery("context=Technology+Gap");
  ASSERT_TRUE(q.ok());

  QueryExecutor::Stats cold;
  ASSERT_TRUE(executor.Execute(*q, &cold).ok());
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.plan_cache_hits, 0u);
  EXPECT_GT(cold.sections_built, 0u);

  QueryExecutor::Stats warm;
  ASSERT_TRUE(executor.Execute(*q, &warm).ok());
  EXPECT_EQ(warm.cache_hits, 1u);
  // A result-cache hit short-circuits execution entirely.
  EXPECT_EQ(warm.index_probes, 0u);
  EXPECT_EQ(warm.sections_built, 0u);

  // Same shape, different limit: result cache misses, plan cache hits.
  auto limited = ParseXdbQuery("context=Technology+Gap&limit=1");
  ASSERT_TRUE(limited.ok());
  QueryExecutor::Stats replanned;
  ASSERT_TRUE(executor.Execute(*limited, &replanned).ok());
  EXPECT_EQ(replanned.cache_hits, 0u);
  EXPECT_EQ(replanned.plan_cache_hits, 1u);
}

TEST_F(ExecutorTest, ExecuteAcceptsCallerSnapshot) {
  QueryExecutor executor(store_.get());
  auto q = ParseXdbQuery("context=Technology+Gap");
  ASSERT_TRUE(q.ok());
  xmlstore::XmlStore::ReadSnapshot snapshot = store_->BeginRead();
  auto hits = executor.Execute(*q, snapshot);
  ASSERT_TRUE(hits.ok());
  EXPECT_FALSE(hits->empty());
  EXPECT_TRUE(snapshot.valid());
}

}  // namespace
}  // namespace netmark::query
