#include "query/compose.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace netmark::query {
namespace {

class ComposeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = netmark::TempDir::Make("compose");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<netmark::TempDir>(std::move(*dir));
    auto store = xmlstore::XmlStore::Open(dir_->str());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    auto doc = xml::ParseXml(
        "<doc><h1>Budget</h1><p>Amount is <b>100</b> thousand.</p>"
        "<table><row>data</row></table>"
        "<h1>Schedule</h1><p>Q3 delivery.</p></doc>");
    ASSERT_TRUE(doc.ok());
    xmlstore::DocumentInfo info;
    info.file_name = "plan.xml";
    ASSERT_TRUE(store_->InsertDocument(*doc, info).ok());
  }

  std::unique_ptr<netmark::TempDir> dir_;
  std::unique_ptr<xmlstore::XmlStore> store_;
};

TEST_F(ComposeTest, BuildsResultsDocumentWithSectionMarkup) {
  auto q = ParseXdbQuery("context=Budget");
  ASSERT_TRUE(q.ok());
  QueryExecutor executor(store_.get());
  auto hits = executor.Execute(*q);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);

  auto composed = ComposeResults(*store_, *q, *hits);
  ASSERT_TRUE(composed.ok());
  std::string xml_text = xml::Serialize(*composed);
  EXPECT_NE(xml_text.find("<results"), std::string::npos);
  EXPECT_NE(xml_text.find("count=\"1\""), std::string::npos);
  EXPECT_NE(xml_text.find("doc=\"plan.xml\""), std::string::npos);
  EXPECT_NE(xml_text.find("<context>Budget</context>"), std::string::npos);
  // Full markup embedded, including nested intense markup and the table —
  // but not the next section.
  EXPECT_NE(xml_text.find("<b>100</b>"), std::string::npos);
  EXPECT_NE(xml_text.find("<row>data</row>"), std::string::npos);
  EXPECT_EQ(xml_text.find("Q3"), std::string::npos);
}

TEST_F(ComposeTest, TextOnlyModeSkipsMarkup) {
  auto q = ParseXdbQuery("context=Budget");
  ASSERT_TRUE(q.ok());
  QueryExecutor executor(store_.get());
  auto hits = executor.Execute(*q);
  ASSERT_TRUE(hits.ok());
  ComposeOptions opts;
  opts.include_markup = false;
  auto composed = ComposeResults(*store_, *q, *hits, opts);
  ASSERT_TRUE(composed.ok());
  std::string xml_text = xml::Serialize(*composed);
  EXPECT_EQ(xml_text.find("<b>"), std::string::npos);
  EXPECT_NE(xml_text.find("100"), std::string::npos);
}

TEST_F(ComposeTest, DocumentLevelHitsAreReferences) {
  auto q = ParseXdbQuery("content=thousand");
  ASSERT_TRUE(q.ok());
  QueryExecutor executor(store_.get());
  auto hits = executor.Execute(*q);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  auto composed = ComposeResults(*store_, *q, *hits);
  ASSERT_TRUE(composed.ok());
  std::string xml_text = xml::Serialize(*composed);
  EXPECT_NE(xml_text.find("docid=\"1\""), std::string::npos);
  EXPECT_EQ(xml_text.find("<context>"), std::string::npos);
}

TEST_F(ComposeTest, EmptyHitsStillWellFormed) {
  auto q = ParseXdbQuery("context=Nothing");
  ASSERT_TRUE(q.ok());
  auto composed = ComposeResults(*store_, *q, {});
  ASSERT_TRUE(composed.ok());
  std::string xml_text = xml::Serialize(*composed);
  EXPECT_NE(xml_text.find("count=\"0\""), std::string::npos);
  // Round-trips through the parser.
  EXPECT_TRUE(xml::ParseXml(xml_text).ok());
}

}  // namespace
}  // namespace netmark::query
