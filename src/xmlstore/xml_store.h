// The NETMARK XML Store.
//
// Any XML/HTML document — regardless of schema — is decomposed into node
// rows stored in the same two tables (XML + DOC; paper Fig 5). The store is
// "schema-less": zero DDL happens per new document type. Parent and sibling
// links hold *physical RowIds*, reproducing the paper's Oracle-rowid fast
// traversal.

#ifndef NETMARK_XMLSTORE_XML_STORE_H_
#define NETMARK_XMLSTORE_XML_STORE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "observability/metrics.h"
#include "storage/database.h"
#include "textindex/inverted_index.h"
#include "textindex/snapshot.h"
#include "textindex/text_query.h"
#include "xml/dom.h"
#include "xml/node_type_config.h"
#include "xmlstore/node_record.h"
#include "xmlstore/prepared_document.h"

namespace netmark::xmlstore {

/// \brief Schema-less document store over the relational engine.
///
/// MVCC serving (docs/mvcc.md): the storage layer runs in multi-version
/// mode — every commit publishes an immutable, epoch-tagged version set of
/// its pages. Mutators (InsertDocument / InsertPrepared / DeleteDocument /
/// Flush / Checkpoint) serialize on a plain writer mutex; readers never
/// touch it. BeginRead() pins the current commit epoch in a wait-free slot
/// table and every read issued while the snapshot is held resolves pages,
/// index candidates, and text hits as of that epoch — queries never observe
/// a half-committed document, never block a writer, and never wait for one.
/// A background GC reclaims page versions once no snapshot pins them.
///
/// Each document mutation is one write-ahead-log transaction: its XML + DOC
/// rows (and therefore the text-index postings, which are rebuilt from those
/// rows after a crash) land atomically or not at all.
class XmlStore {
 public:
  /// \brief RAII token pinning a consistent read view of the store.
  ///
  /// BeginRead() pins the current commit epoch in a wait-free slot table —
  /// no lock is taken, so held snapshots never block mutations, checkpoints,
  /// or each other; version GC simply retains every page version the pinned
  /// epoch can see. Re-entrant: a nested BeginRead() on the same thread
  /// shares the outer pin (same epoch), so helpers may defensively take
  /// their own snapshot. Thread-affine: release (destroy) the snapshot on
  /// the thread that created it. Movable, not copyable.
  class ReadSnapshot {
   public:
    ReadSnapshot() = default;
    ReadSnapshot(ReadSnapshot&& other) noexcept
        : store_(std::exchange(other.store_, nullptr)), epoch_(other.epoch_) {}
    ReadSnapshot& operator=(ReadSnapshot&& other) noexcept {
      if (this != &other) {
        Release();
        store_ = std::exchange(other.store_, nullptr);
        epoch_ = other.epoch_;
      }
      return *this;
    }
    ReadSnapshot(const ReadSnapshot&) = delete;
    ReadSnapshot& operator=(const ReadSnapshot&) = delete;
    ~ReadSnapshot() { Release(); }

    bool valid() const { return store_ != nullptr; }
    /// Commit epoch this snapshot pinned (advances once per committed
    /// mutation; two snapshots with equal epochs observed identical data).
    uint64_t epoch() const { return epoch_; }

   private:
    friend class XmlStore;
    ReadSnapshot(const XmlStore* store, uint64_t epoch)
        : store_(store), epoch_(epoch) {}
    void Release();

    const XmlStore* store_ = nullptr;
    uint64_t epoch_ = 0;
  };

  /// Pins a consistent view for a batch of reads (see ReadSnapshot).
  ReadSnapshot BeginRead() const;

  /// Commit epoch: bumped once per committed mutation (storage epoch 0 is
  /// the state at Open). A reader that sees the same epoch across two
  /// snapshots saw identical store contents.
  uint64_t commit_epoch() const { return db_->commit_epoch(); }

  /// Opens (creating on first use) a store under `dir`. The fixed two-table
  /// schema is created exactly once; reopening rebuilds the text index from
  /// the stored nodes. `storage` selects the durability mode (WAL on by
  /// default; crash recovery runs inside storage::Database::Open). The
  /// storage layer always runs in MVCC mode under the XML store.
  static netmark::Result<std::unique_ptr<XmlStore>> Open(
      const std::string& dir, xml::NodeTypeConfig node_types = xml::NodeTypeConfig::Default(),
      const storage::StorageOptions& storage = {});

  // --- Document lifecycle ---

  /// Decomposes `doc` into node rows and indexes its text. Returns the new
  /// document id. Equivalent to InsertPrepared(PrepareDocument(...)).
  netmark::Result<int64_t> InsertDocument(const xml::Document& doc,
                                          const DocumentInfo& info);

  /// Commits a worker-prepared document: assigns doc/node ids, writes rows,
  /// patches sibling RowId links, and bulk-merges the pre-tokenized postings
  /// into the text index. This is the single-writer half of the parallel
  /// ingestion pipeline; like every mutator it must be called from one
  /// thread at a time.
  netmark::Result<int64_t> InsertPrepared(const PreparedDocument& prepared);

  /// Removes a document's rows and index entries.
  netmark::Status DeleteDocument(int64_t doc_id);

  netmark::Result<DocRecord> GetDocumentInfo(int64_t doc_id) const;
  netmark::Result<std::vector<DocRecord>> ListDocuments() const;
  uint64_t document_count() const;
  uint64_t node_count() const;

  /// Rebuilds the full DOM of a stored document (round-trip fidelity is
  /// property-tested: store → reconstruct → structural equality).
  netmark::Result<xml::Document> Reconstruct(int64_t doc_id) const;

  /// Reconstructs only the subtree rooted at `node` (used to render one
  /// section of a document).
  netmark::Result<xml::Document> ReconstructSubtree(storage::RowId node) const;

  // --- Node access ---
  //
  // Every read method resolves its storage epoch from the calling thread's
  // innermost live ReadSnapshot on this store (writer-latest when none is
  // held), so signatures stay epoch-free.

  /// Fetches one node row by physical address — the O(1) hop everything
  /// else builds on.
  netmark::Result<NodeRecord> GetNode(storage::RowId id) const;

  /// RowIds of `node`'s children, in document order (index join on
  /// PARENTNODEID; the rowid links only cover parent/sibling hops, as in the
  /// paper).
  netmark::Result<std::vector<storage::RowId>> Children(storage::RowId node) const;

  /// RowIds of all nodes whose PARENTNODEID equals `parent_node_id`
  /// (unordered; logical-id join used by the rowid-ablation walk).
  netmark::Result<std::vector<storage::RowId>> NodesWithParent(
      int64_t parent_node_id) const;

  /// RowId of the node with the given logical (doc, node) ids.
  netmark::Result<storage::RowId> NodeByDocAndId(int64_t doc_id,
                                                 int64_t node_id) const;

  /// Concatenated text of the subtree rooted at `node`.
  netmark::Result<std::string> SubtreeText(storage::RowId node) const;

  /// All node rows of a document in pre-order (NODEID order).
  netmark::Result<std::vector<std::pair<storage::RowId, NodeRecord>>> DocumentNodes(
      int64_t doc_id) const;

  // --- Text index ---

  /// The positional inverted index over TEXT-node contents. Writer-latest
  /// (not versioned): snapshot readers must re-verify every hit against the
  /// store at their epoch (the query executor does).
  const textindex::InvertedIndex& text_index() const { return text_index_; }

  /// All TEXT-node RowIds whose content contains `term` (writer-latest; see
  /// text_index()).
  std::vector<storage::RowId> TextLookup(std::string_view term) const;

  /// Full scan fallback (for the index-ablation benchmark): TEXT-node RowIds
  /// whose content contains `term`, found without the index.
  netmark::Result<std::vector<storage::RowId>> TextScanLookup(
      std::string_view term) const;

  /// Full-scan evaluation of an arbitrary text query (index ablation).
  netmark::Result<std::vector<storage::RowId>> TextScanMatch(
      const textindex::TextQuery& query) const;

  const xml::NodeTypeConfig& node_types() const { return node_types_; }
  storage::Database* database() { return db_.get(); }
  const storage::Database* database() const { return db_.get(); }

  /// Flushes the tables and writes a text-index snapshot so the next Open
  /// can skip the rebuild scan. With the WAL enabled this is a full
  /// checkpoint (heap fsync + log truncation).
  netmark::Status Flush();

  /// Explicit checkpoint: Flush() plus wal/checkpoint metric accounting.
  /// Triggered automatically when the log passes `checkpoint_bytes`, by the
  /// daemon's idle sweep, and at close.
  netmark::Status Checkpoint();

  /// Group commit: fsyncs the log once for a whole ingestion batch (no-op
  /// unless `wal_fsync = batch`). The daemon calls this at sweep end.
  netmark::Status SyncWal();

  // --- MVCC version GC (docs/mvcc.md) -------------------------------------

  /// One synchronous version-GC pass: drops page versions and applies
  /// sealed index/posting removals that no live snapshot can still see.
  /// The background GC thread (`[storage] mvcc_gc_interval_ms`) runs this
  /// on a timer; tests and the CLI may call it directly. Returns the number
  /// of page versions reclaimed.
  uint64_t RunVersionGc();

  /// Oldest epoch any live snapshot pins (the current epoch when none do) —
  /// the GC watermark, exported as netmark_mvcc_oldest_pinned_epoch.
  uint64_t OldestPinnedEpoch() const;

  /// Published page versions currently retained across both tables.
  uint64_t mvcc_versions_retained() const { return db_->retained_versions(); }
  /// Total page versions dropped by GC or the retention cap.
  uint64_t mvcc_versions_reclaimed() const { return db_->versions_reclaimed(); }

  // --- Disk-fault containment (docs/durability.md) ------------------------

  /// True once a failed WAL/heap write forced the store read-only; reads
  /// keep serving the last good state while mutations are rejected.
  bool degraded() const { return db_->degraded(); }
  std::string degraded_reason() const { return db_->degraded_reason(); }
  /// The status mutations are rejected with while degraded (CapacityExceeded
  /// when the cause was a full disk, Unavailable otherwise).
  netmark::Status DegradedError() const { return db_->DegradedError(); }

  /// Result of one scrub pass (also folded into the cumulative
  /// netmark_scrub_* metrics).
  struct ScrubStats {
    uint64_t pages_scanned = 0;
    uint64_t errors_found = 0;
  };
  /// Synchronous CRC sweep over every heap page of both tables (the CLI's
  /// `scrub` verb). The background scrubber does the same work paced by
  /// `[storage] scrub_pages_per_sec`.
  ScrubStats ScrubAll() const;
  uint64_t scrub_pages_scanned() const {
    return scrub_pages_scanned_.load(std::memory_order_relaxed);
  }
  uint64_t scrub_errors_found() const {
    return scrub_errors_.load(std::memory_order_relaxed);
  }
  uint64_t scrub_passes() const {
    return scrub_passes_.load(std::memory_order_relaxed);
  }

  /// Heap pages currently quarantined (CRC mismatch) across both tables.
  uint64_t quarantined_pages() const;
  /// Documents observed (lazily, at read time) to have at least one node on
  /// a quarantined page. Queries skip them and mark results partial.
  uint64_t quarantined_doc_count() const;
  std::vector<int64_t> QuarantinedDocs() const;
  /// Records that `doc_id` hit a quarantined page (called from the read
  /// path, hence const; quarantine bookkeeping is logically mutable).
  void NoteQuarantinedDoc(int64_t doc_id) const;

  /// Re-homes the store's durability metrics (netmark_wal_* /
  /// netmark_checkpoint_* / recovery / mvcc gauges) onto `registry`.
  void BindMetrics(observability::MetricsRegistry* registry);
  observability::MetricsRegistry* metrics() const { return metrics_; }

  /// Stops the background GC and scrubber threads (if running) before
  /// tearing down the database.
  ~XmlStore();

 private:
  /// Reader pin slots: lock-free fast path for up to kPinSlots concurrent
  /// snapshots; the rest spill into a mutex-guarded multiset.
  static constexpr size_t kPinSlots = 256;
  /// ReadSnapshot pin bookkeeping: epoch was pinned in the overflow
  /// multiset rather than a slot.
  static constexpr int kOverflowSlot = -1;

  /// RAII: registers the calling thread as the writer for the scope, so
  /// internal reads (DocumentNodes during a delete, the purge after a
  /// failed commit) resolve to storage::kWriterEpoch and see the open
  /// transaction's uncommitted writes.
  class WriterView {
   public:
    explicit WriterView(const XmlStore* store);
    ~WriterView();
    WriterView(const WriterView&) = delete;
    WriterView& operator=(const WriterView&) = delete;

   private:
    const XmlStore* store_;
  };

  /// One deferred text-index posting removal: queued at delete time, sealed
  /// with the commit epoch, applied once the GC watermark passes it — so
  /// snapshot readers keep resolving old text hits until no one needs them.
  struct PendingTextRemoval {
    textindex::DocKey key;
    std::string text;
    storage::Epoch sealed_epoch = 0;
    bool sealed = false;
  };

  XmlStore(std::unique_ptr<storage::Database> db, xml::NodeTypeConfig node_types)
      : db_(std::move(db)), node_types_(std::move(node_types)) {
    for (auto& slot : pin_slots_) slot.store(0, std::memory_order_relaxed);
  }

  netmark::Status EnsureTables();
  netmark::Status RebuildTextIndex();
  textindex::SnapshotToken CurrentToken() const;
  /// Insert body (write_mu_ held, transaction open).
  netmark::Result<int64_t> InsertPreparedLocked(const PreparedDocument& prepared);
  /// Delete body (write_mu_ held, transaction open).
  netmark::Status DeleteDocumentLocked(int64_t doc_id);
  /// Commit + publish + metric deltas + size-triggered checkpoint
  /// (write_mu_ held).
  netmark::Status CommitTransactionLocked();
  netmark::Status CheckpointLocked();
  void BindHandles();
  void PublishWalCounters();

  // --- Snapshot pin plumbing (bodies in xml_store.cc, where the
  // thread-local pin registry lives) --------------------------------------

  /// Storage epoch reads on this thread should use: the innermost live
  /// ReadSnapshot's pin on this store, kWriterEpoch inside a WriterView
  /// scope, else kLatestEpoch.
  storage::Epoch ResolveReadEpoch() const;
  /// Pins the current commit epoch (claim-recheck protocol; see
  /// docs/mvcc.md). Returns the epoch; *slot_out gets the slot index or
  /// kOverflowSlot.
  uint64_t PinEpoch(int* slot_out) const;
  void UnpinEpoch(int slot, uint64_t epoch) const;
  /// Releases the calling thread's innermost pin on this store (possibly
  /// just a nesting decrement).
  void EndRead() const;
  /// Every currently pinned epoch (unsorted, may repeat).
  std::vector<storage::Epoch> CollectPins() const;

  /// Background GC body: RunVersionGc() every `interval_ms`.
  void GcLoop(int interval_ms);
  void DeferTextRemoval(textindex::DocKey key, std::string text);
  void SealPendingTextRemovals(storage::Epoch epoch);
  uint64_t ApplyPendingTextRemovals(storage::Epoch watermark);

  /// Background scrubber body: verifies ~pages_per_sec pages per second in
  /// 100ms batches, round-robin across both tables, under write_mu_ so it
  /// never races a flush.
  void ScrubberLoop(int pages_per_sec);
  /// Verifies up to `budget` pages starting at the (table, page) cursor;
  /// advances the cursor and the scrub counters.
  void ScrubBatch(int budget, size_t* table_idx, storage::PageId* next_page) const;

  storage::Table* xml_table() const { return xml_table_; }
  storage::Table* doc_table() const { return doc_table_; }

  /// Writer lock: mutators, checkpoints, and the scrubber's disk probes
  /// serialize on it. Readers never take it — they pin epochs instead
  /// (the commit lock this replaces is gone; docs/mvcc.md).
  mutable std::mutex write_mu_;

  /// Wait-free reader pin table: 0 = free, else pinned epoch + 1.
  mutable std::array<std::atomic<uint64_t>, kPinSlots> pin_slots_;
  /// Spill for more than kPinSlots concurrent snapshots (rare).
  mutable std::mutex pin_overflow_mu_;
  mutable std::multiset<uint64_t> pin_overflow_;

  /// MonotonicMicros of the last commit (or Open) — the snapshot-age gauge.
  std::atomic<int64_t> last_commit_micros_{0};
  /// Live ReadSnapshot count (netmark_snapshot_active_readers gauge).
  mutable std::atomic<int64_t> active_readers_{0};

  std::unique_ptr<storage::Database> db_;
  xml::NodeTypeConfig node_types_;
  storage::Table* xml_table_ = nullptr;
  storage::Table* doc_table_ = nullptr;
  textindex::InvertedIndex text_index_;
  std::string snapshot_path_;
  int64_t next_doc_id_ = 1;
  int64_t next_node_id_ = 1;

  /// Deferred text-index removals (writer queues/seals, GC applies).
  std::mutex pending_text_mu_;
  std::vector<PendingTextRemoval> pending_text_removals_;

  /// Background version GC (interval from `[storage] mvcc_gc_interval_ms`).
  std::thread gc_thread_;
  std::atomic<bool> gc_stop_{false};
  std::mutex gc_mu_;
  std::condition_variable gc_cv_;

  /// Private fallback registry so a standalone store works unwired; the
  /// facade rebinds onto its own registry via BindMetrics().
  std::unique_ptr<observability::MetricsRegistry> owned_metrics_;
  observability::MetricsRegistry* metrics_ = nullptr;
  struct MetricHandles {
    observability::Counter* wal_bytes = nullptr;
    observability::Counter* wal_records = nullptr;
    observability::Counter* wal_fsyncs = nullptr;
    observability::Counter* wal_commits = nullptr;
    observability::Counter* checkpoints = nullptr;
    observability::Histogram* commit_micros = nullptr;
    observability::Histogram* checkpoint_micros = nullptr;
  } handles_;
  // Last-published cumulative wal counter values (write_mu_ held when
  // updated): the registry counters advance by deltas.
  struct WalSeen {
    uint64_t bytes = 0, records = 0, fsyncs = 0, commits = 0;
  } wal_seen_;

  // --- Scrubber + quarantine bookkeeping ---------------------------------
  // Cumulative scrub totals are atomics (not registry counters) because the
  // scrubber thread may race a BindMetrics() re-home; the registry reads
  // them through callback gauges instead.
  mutable std::atomic<uint64_t> scrub_pages_scanned_{0};
  mutable std::atomic<uint64_t> scrub_errors_{0};
  mutable std::atomic<uint64_t> scrub_passes_{0};
  std::thread scrub_thread_;
  std::atomic<bool> scrub_stop_{false};
  std::mutex scrub_mu_;
  std::condition_variable scrub_cv_;
  /// Doc ids seen (at read time) to touch a quarantined page.
  mutable std::mutex quarantine_mu_;
  mutable std::set<int64_t> quarantined_docs_;
};

/// Encodes element attributes into the NODEDATA blob ("k=v&k2=v2",
/// URL-escaped) and back.
std::string EncodeAttributes(const std::vector<xml::Attribute>& attrs);
netmark::Result<std::vector<xml::Attribute>> DecodeAttributes(std::string_view blob);

}  // namespace netmark::xmlstore

#endif  // NETMARK_XMLSTORE_XML_STORE_H_
