// Lock-cheap metrics registry: named counters, gauges, and fixed-bucket
// latency histograms, with Prometheus text exposition (served at GET
// /metrics) and structured snapshots (served at GET /healthz, dumped into
// BENCH_*.json).
//
// Design (DESIGN.md §"Observability"):
//   - Registration is rare and takes a mutex; the hot path (Increment /
//     Observe) is a handful of relaxed atomic ops on a stable handle.
//   - Handles returned by the registry stay valid for the registry's
//     lifetime; components fetch them once at construction, never per event.
//   - Quantiles (p50/p95/p99) are derived from cumulative bucket counts by
//     linear interpolation inside the winning bucket — no per-sample storage.
//   - A registry can be disabled (NETMARK_METRICS_DISABLED=1 or
//     set_enabled(false)): every recording call degrades to one relaxed
//     atomic load, which is how the <3%-overhead acceptance bound is checked.

#ifndef NETMARK_OBSERVABILITY_METRICS_H_
#define NETMARK_OBSERVABILITY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace netmark::observability {

/// Metric labels: ordered key=value pairs (order is part of the identity).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonic counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> value_{0};
};

/// \brief Settable gauge (current value, not a rate).
class Gauge {
 public:
  void Set(int64_t v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t d) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<int64_t> value_{0};
};

/// One OpenMetrics exemplar: the last sample that landed in a bucket while
/// carrying a retained trace id. Scrapes jump from a p99 bucket straight to
/// GET /traces?id=<trace_id>.
struct Exemplar {
  int64_t value = 0;
  std::string trace_id;
  int64_t timestamp_seconds = 0;
};

/// \brief Fixed-bucket histogram over int64 samples (convention:
/// microseconds for latencies). Buckets are cumulative-upper-bound style
/// (Prometheus `le`); an implicit overflow bucket catches everything above
/// the last bound.
class Histogram {
 public:
  /// Default latency buckets: ~exponential from 50us to 60s.
  static const std::vector<int64_t>& LatencyBucketsMicros();

  void Observe(int64_t value);

  /// Observe() plus an exemplar on the winning bucket when `trace_id` is
  /// non-empty. The exemplar slot is taken with a try_lock — under
  /// contention the sample still counts and only the exemplar is skipped,
  /// keeping the hot path wait-free.
  void ObserveWithExemplar(int64_t value, std::string_view trace_id);

  /// Exemplar per bucket (empty trace_id = none); size = bounds().size()+1.
  std::vector<Exemplar> Exemplars() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// bucket containing the q-th sample. Samples in the overflow bucket
  /// report the last finite bound (a floor, clearly marked by saturation).
  /// Returns 0 for an empty histogram.
  double Quantile(double q) const;

  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size = bounds().size() + 1, the
  /// last entry being the overflow bucket.
  std::vector<uint64_t> BucketCounts() const;

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, std::vector<int64_t> bounds);

  struct ExemplarSlot {
    std::mutex mu;
    Exemplar exemplar;
  };

  const std::atomic<bool>* enabled_;
  std::vector<int64_t> bounds_;  // sorted, strictly increasing upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::unique_ptr<ExemplarSlot[]> exemplars_;         // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// \brief RAII timer observing elapsed wall time (microseconds) into a
/// histogram at scope exit. Null histogram = inert.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(netmark::MonotonicMicros()) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(netmark::MonotonicMicros() - start_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  int64_t elapsed_micros() const { return netmark::MonotonicMicros() - start_; }

 private:
  Histogram* histogram_;
  int64_t start_;
};

/// One rendered sample of each kind (snapshot API: /healthz, bench dumps).
struct CounterSample {
  std::string name;
  Labels labels;
  uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  Labels labels;
  double value = 0;
};
struct HistogramSample {
  std::string name;
  Labels labels;
  uint64_t count = 0;
  int64_t sum = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  /// (upper bound, cumulative count) pairs; the final entry is (+inf ≡
  /// INT64_MAX, total count).
  std::vector<std::pair<int64_t, uint64_t>> buckets;
  /// Parallel to `buckets`; entries with an empty trace_id have no exemplar.
  std::vector<Exemplar> exemplars;
};
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// \brief Named metric registry; one per NETMARK instance (components
/// standing alone fall back to a private one so their accessors keep
/// working).
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under (name, labels), creating it on
  /// first use. Repeated calls return the same handle; a name registered as
  /// one kind cannot be re-registered as another (returns the existing
  /// handle of the right kind or aborts the program on a kind clash — a
  /// programming error, caught in tests).
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          const std::vector<int64_t>& bounds =
                              Histogram::LatencyBucketsMicros());

  /// Registers a gauge whose value is computed at collection time (breaker
  /// states, store sizes). Re-registering the same (name, labels) replaces
  /// the callback.
  void SetCallbackGauge(const std::string& name, const Labels& labels,
                        std::function<double()> callback);

  /// Like SetCallbackGauge but exposed as `# TYPE ... counter` — for
  /// monotonic totals kept in component-owned atomics (the page scrubber),
  /// where handing out a Counter handle would race the owner's thread
  /// against a BindMetrics re-home.
  void SetCallbackCounter(const std::string& name, const Labels& labels,
                          std::function<uint64_t()> callback);

  /// Recording on/off switch (collection still works when disabled).
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Structured snapshot of every metric, sorted by (name, labels).
  MetricsSnapshot Collect() const;

  /// Prometheus text exposition format (version 0.0.4).
  std::string RenderPrometheus() const;

 private:
  enum class Kind {
    kCounter,
    kGauge,
    kHistogram,
    kCallbackGauge,
    kCallbackCounter
  };
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& other) const {
      if (name != other.name) return name < other.name;
      return labels < other.labels;
    }
  };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;
    std::function<uint64_t()> counter_callback;
  };

  std::atomic<bool> enabled_{true};
  bool exemplars_enabled_ = true;  // NETMARK_METRICS_EXEMPLARS=0 opts out
  mutable std::mutex mu_;
  std::map<Key, Entry> metrics_;
};

}  // namespace netmark::observability

#endif  // NETMARK_OBSERVABILITY_METRICS_H_
