#include "convert/registry.h"

#include "common/string_util.h"
#include "convert/csv_converter.h"
#include "convert/html_converter.h"
#include "convert/json_converter.h"
#include "convert/markdown_converter.h"
#include "convert/nrt_converter.h"
#include "convert/text_converter.h"

namespace netmark::convert {

std::string FileExtension(const std::string& file_name) {
  size_t slash = file_name.find_last_of('/');
  size_t dot = file_name.find_last_of('.');
  if (dot == std::string::npos) return "";
  if (slash != std::string::npos && dot < slash) return "";
  return netmark::ToLower(file_name.substr(dot + 1));
}

ConverterRegistry ConverterRegistry::Default() {
  ConverterRegistry registry;
  registry.Register(std::make_unique<XmlConverter>());
  registry.Register(std::make_unique<HtmlConverter>());
  registry.Register(std::make_unique<JsonConverter>());
  registry.Register(std::make_unique<MarkdownConverter>());
  registry.Register(std::make_unique<CsvConverter>());
  registry.Register(std::make_unique<NrtConverter>());
  registry.Register(std::make_unique<TextConverter>());
  return registry;
}

void ConverterRegistry::Register(std::unique_ptr<Converter> converter) {
  converters_.push_back(std::move(converter));
}

netmark::Result<const Converter*> ConverterRegistry::Select(
    const std::string& file_name, std::string_view content) const {
  std::string ext = FileExtension(file_name);
  if (!ext.empty()) {
    // Later registrations win: scan backwards.
    for (auto it = converters_.rbegin(); it != converters_.rend(); ++it) {
      for (std::string_view claimed : (*it)->extensions()) {
        if (claimed == ext) return it->get();
      }
    }
  }
  for (const auto& converter : converters_) {
    if (converter->Sniff(content)) return converter.get();
  }
  return netmark::Status::NotFound("no converter accepts '" + file_name + "'");
}

netmark::Result<xml::Document> ConverterRegistry::Convert(
    const std::string& file_name, std::string_view content) const {
  NETMARK_ASSIGN_OR_RETURN(const Converter* converter, Select(file_name, content));
  ConvertContext ctx;
  ctx.file_name = file_name;
  auto result = converter->Convert(content, ctx);
  if (!result.ok()) {
    return result.status().WithContext("converting " + file_name + " as " +
                                       std::string(converter->format()));
  }
  return result;
}

std::vector<std::string> ConverterRegistry::SupportedFormats() const {
  std::vector<std::string> out;
  for (const auto& converter : converters_) {
    out.emplace_back(converter->format());
  }
  return out;
}

}  // namespace netmark::convert
