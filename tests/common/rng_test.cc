#include "common/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace netmark {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ChanceRespectsProbabilityRoughly) {
  Rng rng(42);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(11);
  std::map<size_t, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[rng.Zipf(100, 1.0)];
  // Rank 0 should dominate rank 50 heavily under theta=1.
  EXPECT_GT(counts[0], counts[50] * 3);
  for (const auto& [rank, count] : counts) EXPECT_LT(rank, 100u);
}

TEST(RngTest, PickCoversAllElements) {
  Rng rng(3);
  std::vector<int> v = {10, 20, 30};
  std::map<int, int> seen;
  for (int i = 0; i < 300; ++i) ++seen[rng.Pick(v)];
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace netmark
