#include "server/daemon.h"

#include <algorithm>
#include <condition_variable>
#include <optional>

#include "common/clock.h"
#include "common/logging.h"
#include "common/temp_dir.h"
#include "common/work_queue.h"
#include "observability/thread_trace.h"
#include "observability/trace_context.h"

namespace netmark::server {

namespace fs = std::filesystem;

IngestionDaemon::IngestionDaemon(xmlstore::XmlStore* store,
                                 const convert::ConverterRegistry* converters,
                                 DaemonOptions options)
    : store_(store), converters_(converters), options_(std::move(options)) {
  owned_metrics_ = std::make_unique<observability::MetricsRegistry>();
  metrics_ = owned_metrics_.get();
  BindHandles();
}

void IngestionDaemon::BindHandles() {
  handles_.queued = metrics_->GetCounter("netmark_ingest_queued_total");
  handles_.converted = metrics_->GetCounter("netmark_ingest_converted_total");
  handles_.inserted = metrics_->GetCounter("netmark_ingest_inserted_total");
  handles_.failed = metrics_->GetCounter("netmark_ingest_failed_total");
  handles_.deferred = metrics_->GetCounter("netmark_ingest_deferred_total");
  handles_.prepare_micros =
      metrics_->GetHistogram("netmark_ingest_prepare_micros");
  handles_.insert_micros = metrics_->GetHistogram("netmark_ingest_insert_micros");
}

void IngestionDaemon::BindMetrics(observability::MetricsRegistry* registry) {
  if (registry == nullptr || registry == metrics_) return;
  // owned_metrics_ stays alive so counts recorded before the rebind remain
  // readable there (they are not carried over).
  metrics_ = registry;
  BindHandles();
}

netmark::Status IngestionDaemon::Start() {
  if (running_.load()) return netmark::Status::AlreadyExists("daemon already running");
  std::error_code ec;
  fs::create_directories(options_.drop_dir, ec);
  if (ec) {
    return netmark::Status::IOError("cannot create drop dir: " + ec.message());
  }
  running_.store(true);
  thread_ = std::thread([this] { Loop(); });
  return netmark::Status::OK();
}

void IngestionDaemon::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void IngestionDaemon::Loop() {
  while (running_.load()) {
    // Sampled sweep tracing: the daemon has no request to piggyback on, so
    // it rolls the shared ring's head sampler itself. Only sweeps that did
    // work (or failed) are recorded — idle polls would flood the ring.
    std::shared_ptr<observability::Trace> trace;
    if (trace_store_ != nullptr && trace_store_->ShouldSample()) {
      trace = std::make_shared<observability::Trace>();
      trace->set_trace_id(observability::GenerateTraceId());
    }
    auto processed = ProcessOnce(trace.get(), -1);
    if (trace != nullptr && (!processed.ok() || *processed > 0)) {
      trace_store_->Record(trace, /*head_sampled=*/true,
                           /*error=*/!processed.ok());
    }
    if (!processed.ok()) {
      NETMARK_LOG(Warning) << "daemon sweep failed: " << processed.status();
    } else if (*processed == 0) {
      // Idle sweep: fold outstanding log into a checkpoint so a later crash
      // recovers instantly and the log does not sit un-truncated overnight.
      // A degraded (read-only) store cannot checkpoint; retrying every poll
      // would only spam the log, so wait for an operator restart instead.
      const storage::Wal* wal = store_->database()->wal();
      if (wal != nullptr && wal->size_bytes() > 0 && !store_->degraded()) {
        netmark::Status st = store_->Checkpoint();
        if (!st.ok()) {
          NETMARK_LOG(Warning) << "idle checkpoint failed: " << st;
        }
      }
    }
    std::this_thread::sleep_for(options_.poll_interval);
  }
}

DaemonCounters IngestionDaemon::counters() const {
  DaemonCounters c;
  c.queued = handles_.queued->value();
  c.converted = handles_.converted->value();
  c.inserted = handles_.inserted->value();
  c.failed = handles_.failed->value();
  c.deferred = handles_.deferred->value();
  // Stage wall time is kept in the histograms (microsecond samples).
  c.convert_ns = static_cast<uint64_t>(handles_.prepare_micros->sum()) * 1000;
  c.insert_ns = static_cast<uint64_t>(handles_.insert_micros->sum()) * 1000;
  return c;
}

int IngestionDaemon::EffectiveWorkers() const {
  if (options_.worker_threads > 0) return options_.worker_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::vector<fs::path> IngestionDaemon::CollectStable() {
  std::error_code ec;
  std::vector<fs::path> eligible;
  if (!fs::exists(options_.drop_dir, ec)) return eligible;
  std::chrono::milliseconds stable_age =
      options_.stable_age.count() < 0 ? options_.poll_interval : options_.stable_age;
  auto now = fs::file_time_type::clock::now();
  std::map<fs::path, FileSig> still_unstable;
  for (const auto& entry : fs::directory_iterator(options_.drop_dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.empty() || name[0] == '.') continue;  // editors' temp files
    if (stable_age.count() == 0) {
      eligible.push_back(entry.path());
      continue;
    }
    FileSig sig;
    std::error_code stat_ec;
    sig.size = entry.file_size(stat_ec);
    if (!stat_ec) sig.mtime = entry.last_write_time(stat_ec);
    if (stat_ec) continue;  // vanished mid-scan; next sweep decides
    if (now - sig.mtime >= stable_age) {
      // Old enough that no writer is plausibly mid-copy.
      eligible.push_back(entry.path());
      continue;
    }
    auto it = unstable_.find(entry.path());
    if (it != unstable_.end() && it->second.size == sig.size &&
        it->second.mtime == sig.mtime) {
      // Unchanged since the previous sweep: size-stable across two polls.
      eligible.push_back(entry.path());
      continue;
    }
    still_unstable.emplace(entry.path(), sig);
    handles_.deferred->Increment();
  }
  // Forget files that were ingested or removed; remember fresh signatures.
  unstable_ = std::move(still_unstable);
  std::sort(eligible.begin(), eligible.end());  // deterministic order
  return eligible;
}

IngestionDaemon::PreparedFile IngestionDaemon::PrepareFile(
    const fs::path& path, observability::Trace* trace, int parent_span) {
  PreparedFile out;
  observability::ScopedSpan span(trace, "prepare", parent_span);
  span.Annotate("file", path.filename().string());
  observability::ScopedTimer timer(handles_.prepare_micros);
  auto prepare = [&]() -> netmark::Status {
    NETMARK_ASSIGN_OR_RETURN(std::string content, netmark::ReadFile(path));
    NETMARK_ASSIGN_OR_RETURN(
        xml::Document doc, converters_->Convert(path.filename().string(), content));
    xmlstore::DocumentInfo info;
    info.file_name = path.filename().string();
    info.file_date = netmark::WallSeconds();
    info.file_size = static_cast<int64_t>(content.size());
    out.prepared = xmlstore::PrepareDocument(doc, info, store_->node_types());
    return netmark::Status::OK();
  };
  out.status = prepare();
  if (out.status.ok()) handles_.converted->Increment();
  span.End(out.status.ok(), out.status.ok() ? "" : out.status.ToString());
  return out;
}

bool IngestionDaemon::CommitFile(const fs::path& path, PreparedFile result,
                                 observability::Trace* trace, int parent_span) {
  netmark::Status st = result.status;
  if (st.ok()) {
    observability::ScopedSpan span(trace, "insert", parent_span);
    span.Annotate("file", path.filename().string());
    observability::ScopedTimer timer(handles_.insert_micros);
    // WAL append/fsync spans bind via the thread-local trace, under "insert".
    observability::ThreadTraceScope wal_nest(trace, span.id());
    st = store_->InsertPrepared(result.prepared).status();
    span.End(st.ok(), st.ok() ? "" : st.ToString());
  }
  if (st.ok()) {
    handles_.inserted->Increment();
  } else if (st.IsUnavailable() || st.IsCapacityExceeded() || st.IsIOError()) {
    // Storage-level failure (degraded read-only store, full disk, transient
    // I/O): the file itself is fine, so leave it in the drop dir — a later
    // sweep retries it once the operator restores the disk. Moving it to
    // failed/ would misfile good input as bad.
    handles_.deferred->Increment();
    NETMARK_LOG(Warning) << "deferring ingest of " << path.string() << ": " << st;
    return false;
  } else {
    handles_.failed->Increment();
    NETMARK_LOG(Warning) << "failed to ingest " << path.string() << ": " << st;
  }
  std::error_code ec;
  if (options_.keep_processed) {
    fs::path target_dir = options_.drop_dir / (st.ok() ? "processed" : "failed");
    fs::create_directories(target_dir, ec);
    fs::rename(path, target_dir / path.filename(), ec);
    if (ec) fs::remove(path, ec);
  } else {
    fs::remove(path, ec);
  }
  return st.ok();
}

netmark::Result<int> IngestionDaemon::ProcessOnce(observability::Trace* trace,
                                                  int parent_span) {
  std::lock_guard<std::mutex> lock(sweep_mu_);
  observability::ScopedSpan sweep(trace, "sweep", parent_span);
  // Storage spans recorded below the store's API surface (FinishSweep's
  // batch WAL fsync) land under "sweep" via the thread-local binding;
  // CommitFile narrows it to the per-file "insert" span.
  observability::ThreadTraceScope thread_trace(trace, sweep.id());
  std::vector<fs::path> pending = CollectStable();
  sweep.Annotate("files", std::to_string(pending.size()));
  if (pending.empty()) return 0;
  handles_.queued->Increment(pending.size());

  const size_t n = pending.size();
  const int workers = std::min<int>(EffectiveWorkers(), static_cast<int>(n));
  int count = 0;

  if (workers <= 1) {
    // Inline pipeline: same prepare/commit stages, no threads. Byte-identical
    // output to the threaded path because commits happen in `pending` order
    // either way.
    for (const fs::path& path : pending) {
      if (CommitFile(path, PrepareFile(path, trace, sweep.id()), trace,
                     sweep.id())) {
        ++count;
      }
    }
    sweep.Annotate("ingested", std::to_string(count));
    FinishSweep(count);
    return count;
  }

  struct WorkItem {
    size_t seq;
    fs::path path;
  };
  // Bounded: backpressure keeps at most ~2 batches of read file contents and
  // prepared documents in flight per worker.
  WorkQueue<WorkItem> queue(static_cast<size_t>(workers) * 2);

  // Reorder buffer: workers finish in arbitrary order; the writer commits
  // strictly in sequence so doc ids follow sorted-filename order.
  std::mutex results_mu;
  std::condition_variable results_cv;
  std::map<size_t, PreparedFile> results;

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers) + 1);
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, trace, sweep_id = sweep.id()] {
      while (std::optional<WorkItem> item = queue.Pop()) {
        PreparedFile result = PrepareFile(item->path, trace, sweep_id);
        {
          std::lock_guard<std::mutex> results_lock(results_mu);
          results.emplace(item->seq, std::move(result));
        }
        results_cv.notify_all();
      }
    });
  }
  // Feeding the bounded queue would block once it fills, so it runs on its
  // own thread while this thread drains results as the writer.
  pool.emplace_back([&] {
    for (size_t i = 0; i < n; ++i) {
      if (!queue.Push(WorkItem{i, pending[i]})) break;
    }
    queue.Close();
  });

  for (size_t seq = 0; seq < n; ++seq) {
    PreparedFile result;
    {
      std::unique_lock<std::mutex> results_lock(results_mu);
      results_cv.wait(results_lock, [&] { return results.count(seq) > 0; });
      auto it = results.find(seq);
      result = std::move(it->second);
      results.erase(it);
    }
    if (CommitFile(pending[seq], std::move(result), trace, sweep.id())) ++count;
  }
  for (std::thread& t : pool) t.join();
  sweep.Annotate("ingested", std::to_string(count));
  FinishSweep(count);
  return count;
}

void IngestionDaemon::FinishSweep(int committed) {
  if (committed <= 0) return;
  // Group commit: with `wal_fsync = batch` the whole sweep's transactions
  // share this one fsync; with `commit` or `none` this is a no-op.
  netmark::Status st = store_->SyncWal();
  if (!st.ok()) NETMARK_LOG(Warning) << "wal batch sync failed: " << st;
}

}  // namespace netmark::server
