// MVCC snapshot tests (docs/mvcc.md). The suite name carries "Mvcc" on
// purpose: the CI TSan job selects it by regex, so every test here doubles
// as a data-race probe for the pin/commit/GC/checkpoint interleavings.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/temp_dir.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xmlstore/xml_store.h"

namespace netmark::xmlstore {
namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoll(value, nullptr, 10);
}

std::string BeaconMarkup(int k) {
  std::string id = std::to_string(k);
  return "<document>"
         "<context>BEGIN" + id + "</context>"
         "<content>beacon payload revision " + id + "</content>"
         "<context>END" + id + "</context>"
         "</document>";
}

class XmlStoreMvccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("mvcc");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    OpenStore();
  }
  void OpenStore(const storage::StorageOptions& storage = {}) {
    store_.reset();
    auto store = XmlStore::Open(dir_->str(), xml::NodeTypeConfig::Default(),
                                storage);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(*store);
  }
  int64_t Insert(const std::string& markup,
                 const std::string& name = "beacon.xml") {
    auto doc = xml::ParseXml(markup);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    DocumentInfo info;
    info.file_name = name;
    info.file_date = 1118700000;
    info.file_size = static_cast<int64_t>(markup.size());
    auto id = store_->InsertDocument(*doc, info);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }
  std::string Render(int64_t doc_id) {
    auto doc = store_->Reconstruct(doc_id);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    return xml::Serialize(*doc);
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<XmlStore> store_;
};

// Satellite regression for the old commit-lock recursion hazard: BeginRead()
// used to self-deadlock when a reader helper defensively pinned its own
// snapshot. Nested pins on one thread must now share the outer epoch and
// release without leaking a pin slot.
TEST_F(XmlStoreMvccTest, NestedSnapshotsShareEpochAndReleaseCleanly) {
  Insert(BeaconMarkup(1));
  {
    auto outer = store_->BeginRead();
    // A commit between the two pins must NOT leak into the nested view.
    Insert(BeaconMarkup(2), "beacon2.xml");
    auto inner = store_->BeginRead();
    EXPECT_EQ(inner.epoch(), outer.epoch());
    EXPECT_LT(inner.epoch(), store_->commit_epoch());
    {
      auto third = store_->BeginRead();
      EXPECT_EQ(third.epoch(), outer.epoch());
    }
    // Inner releases don't drop the outer pin: the GC watermark stays at
    // the pinned epoch while `outer` is alive.
    EXPECT_EQ(store_->OldestPinnedEpoch(), outer.epoch());
  }
  // All pins gone: the watermark catches up to the current commit epoch and
  // a fresh snapshot sees the latest data.
  EXPECT_EQ(store_->OldestPinnedEpoch(), store_->commit_epoch());
  auto fresh = store_->BeginRead();
  EXPECT_EQ(fresh.epoch(), store_->commit_epoch());
  EXPECT_EQ(store_->document_count(), 2u);
}

// The acceptance bar for the refactor: a reader pinned at epoch E gets
// byte-identical documents no matter how many commits, GC passes, and
// checkpoints land after the pin — including deletion of the very document
// it is reading.
TEST_F(XmlStoreMvccTest, PinnedReaderStaysByteIdenticalUnderWritesGcCheckpoint) {
  int64_t doc_a = Insert(BeaconMarkup(1));
  auto pin = store_->BeginRead();
  const std::string frozen = Render(doc_a);

  ASSERT_TRUE(store_->DeleteDocument(doc_a).ok());
  for (int k = 2; k < 20; ++k) {
    Insert(BeaconMarkup(k), "beacon" + std::to_string(k) + ".xml");
    if (k % 5 == 0) {
      store_->RunVersionGc();
      ASSERT_TRUE(store_->Checkpoint().ok());
    }
  }
  store_->RunVersionGc();

  // Still pinned: every byte of the deleted document is reproducible.
  EXPECT_EQ(Render(doc_a), frozen);
  EXPECT_EQ(pin.epoch(), store_->OldestPinnedEpoch());
  pin = XmlStore::ReadSnapshot();  // release

  // Unpinned, the deletion is visible and GC may reclaim the history.
  store_->RunVersionGc();
  EXPECT_FALSE(store_->Reconstruct(doc_a).ok());
  EXPECT_GT(store_->mvcc_versions_reclaimed(), 0u);
}

// Version GC respects pins: history needed by a live snapshot survives a GC
// pass, and is reclaimed once the snapshot releases.
TEST_F(XmlStoreMvccTest, GcRetainsPinnedHistoryAndReclaimsAfterRelease) {
  int64_t doc_a = Insert(BeaconMarkup(1));
  const std::string frozen = [&] {
    auto s = store_->BeginRead();
    return Render(doc_a);
  }();

  auto pin = store_->BeginRead();
  ASSERT_TRUE(store_->DeleteDocument(doc_a).ok());
  Insert(BeaconMarkup(2), "beacon2.xml");

  uint64_t before = store_->mvcc_versions_retained();
  store_->RunVersionGc();
  // The pinned epoch's versions must survive the pass; the pinned read still
  // reproduces the original bytes.
  EXPECT_EQ(Render(doc_a), frozen);

  pin = XmlStore::ReadSnapshot();  // release the pin
  store_->RunVersionGc();
  EXPECT_LT(store_->mvcc_versions_retained(), before);
  EXPECT_GT(store_->mvcc_versions_reclaimed(), 0u);
}

// The retention cap is a hard bound enforced at publish time: a reader
// pinned before the surviving window gets SnapshotTooOld, never silently
// wrong bytes.
TEST_F(XmlStoreMvccTest, RetentionCapTurnsStalePinsIntoSnapshotTooOld) {
  storage::StorageOptions opts;
  opts.mvcc_max_retained_versions = 1;
  opts.mvcc_gc_interval_ms = 0;  // only the cap reclaims here
  OpenStore(opts);

  int64_t doc_a = Insert(BeaconMarkup(1));
  auto pin = store_->BeginRead();
  ASSERT_TRUE(store_->DeleteDocument(doc_a).ok());
  for (int k = 2; k < 6; ++k) {
    Insert(BeaconMarkup(k), "beacon" + std::to_string(k) + ".xml");
  }

  // The delete republished the document's pages and the cap (1) dropped the
  // pinned version, so the stale read must fail loudly.
  auto doc = store_->Reconstruct(doc_a);
  ASSERT_FALSE(doc.ok());
  EXPECT_TRUE(doc.status().IsSnapshotTooOld()) << doc.status().ToString();

  pin = XmlStore::ReadSnapshot();
  // A fresh snapshot is unaffected by the cap.
  auto fresh = store_->BeginRead();
  EXPECT_EQ(store_->document_count(), 4u);
}

// TSan workhorse: wait-free pin/unpin churn racing committed mutations, the
// version GC, and checkpoints. Readers assert snapshot consistency — every
// document listed under a pin reconstructs fully and its BEGIN/END markers
// match (a torn read would mix revisions or hit NotFound mid-snapshot).
TEST_F(XmlStoreMvccTest, MvccPinsCommitsGcAndCheckpointsRaceCleanly) {
  const int64_t duration_ms = EnvInt("NETMARK_MVCC_STRESS_MS", 400);
  Insert(BeaconMarkup(0));
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread writer([&] {
    int k = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      auto docs = store_->ListDocuments();
      if (docs.ok() && !docs->empty()) {
        ASSERT_TRUE(store_->DeleteDocument(docs->front().doc_id).ok());
      }
      Insert(BeaconMarkup(k++));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread gc([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      store_->RunVersionGc();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::thread checkpointer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(store_->Checkpoint().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = store_->BeginRead();
        auto docs = store_->ListDocuments();
        if (!docs.ok()) {
          torn.fetch_add(1);
          continue;
        }
        for (const auto& rec : *docs) {
          auto doc = store_->Reconstruct(rec.doc_id);
          if (!doc.ok()) {  // listed under this pin => must reconstruct
            torn.fetch_add(1);
            continue;
          }
          std::string xml = xml::Serialize(*doc);
          auto begin = xml.find("BEGIN");
          auto end = xml.find("END");
          if (begin == std::string::npos || end == std::string::npos ||
              xml.substr(begin + 5, xml.find('<', begin) - begin - 5) !=
                  xml.substr(end + 3, xml.find('<', end) - end - 3)) {
            torn.fetch_add(1);
          }
        }
      }
    });
  }
  // Pure pin churn: stresses the slot CAS against the GC's pin scan without
  // ever reading a page.
  std::thread churn([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto a = store_->BeginRead();
      auto b = store_->BeginRead();  // nested: shares a's epoch
      ASSERT_EQ(a.epoch(), b.epoch());
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  gc.join();
  checkpointer.join();
  churn.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0) << "readers observed torn or vanishing snapshots";
  // The store survives the churn in a committed, queryable state.
  EXPECT_EQ(store_->document_count(), 1u);
}

}  // namespace
}  // namespace netmark::xmlstore
