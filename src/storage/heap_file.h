// Heap file: unordered record storage with stable RowIds.
//
// Records live in slotted pages. Three complications are handled so that a
// RowId handed out at insert time stays valid for the record's lifetime:
//
//  * updates that no longer fit in place leave a *forward pointer* at the
//    original slot and relocate the bytes (Get/Update/Delete chase pointers;
//    chains are collapsed on re-update);
//  * records larger than a page spill to chained *overflow pages*;
//  * deleted slots tombstone rather than compact, so neighbours keep their
//    addresses.
//
// Space freed by deletes/relocations is not reused — NETMARK's workload is
// append-mostly bulk ingest, matching the paper's usage. No-reuse is also
// what makes MVCC reads simple here: bytes reachable from a page version at
// epoch E are never overwritten by later commits, so reading every page at
// `epoch` yields a consistent record (docs/mvcc.md).
//
// Read methods take an Epoch: kLatestEpoch (default) serves the newest
// published state, a pinned epoch serves that snapshot, and mutators pass
// kWriterEpoch internally so a transaction sees its own uncommitted writes.

#ifndef NETMARK_STORAGE_HEAP_FILE_H_
#define NETMARK_STORAGE_HEAP_FILE_H_

#include <atomic>
#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/page.h"
#include "storage/pager.h"
#include "storage/row_id.h"

namespace netmark::storage {

/// \brief Record store over a Pager.
class HeapFile {
 public:
  /// Wraps an open pager; recovers the append position by scanning page
  /// headers (overflow pages are marked and skipped).
  static netmark::Result<HeapFile> Open(Pager* pager);

  HeapFile(HeapFile&& other) noexcept
      : pager_(other.pager_),
        tail_(other.tail_),
        live_records_(other.live_records_.load(std::memory_order_relaxed)) {}
  HeapFile& operator=(HeapFile&& other) noexcept {
    pager_ = other.pager_;
    tail_ = other.tail_;
    live_records_.store(other.live_records_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    return *this;
  }

  /// Stores a record, returning its permanent RowId.
  netmark::Result<RowId> Insert(std::string_view record);

  /// Fetches a record (assembling overflow chains, chasing forwards) as of
  /// `epoch`. NotFound covers both "no record" and "page born after epoch".
  netmark::Result<std::string> Get(RowId id, Epoch epoch = kLatestEpoch) const;

  /// Replaces a record's bytes; the RowId remains valid.
  netmark::Status Update(RowId id, std::string_view record);

  /// Removes a record.
  netmark::Status Delete(RowId id);

  /// True if `id` addresses a live record as of `epoch`.
  bool Exists(RowId id, Epoch epoch = kLatestEpoch) const;

  /// Visits every record live as of `epoch` in physical order with its
  /// canonical RowId. Pages born after `epoch` are skipped (they hold only
  /// records the snapshot cannot see). Stops early if `fn` returns a non-OK
  /// status (propagated).
  netmark::Status Scan(
      const std::function<netmark::Status(RowId, std::string_view)>& fn,
      Epoch epoch = kLatestEpoch) const;

  /// Number of live records (maintained incrementally; recomputed at Open).
  /// Counts the writer's view — unpublished inserts included.
  uint64_t live_records() const {
    return live_records_.load(std::memory_order_relaxed);
  }

 private:
  explicit HeapFile(Pager* pager) : pager_(pager) {}

  // Record tag flags (first byte of every slot payload).
  static constexpr uint8_t kForwardFlag = 0x1;    // payload = packed RowId (8B)
  static constexpr uint8_t kRelocatedFlag = 0x2;  // reached only via forward
  static constexpr uint8_t kOverflowFlag = 0x4;   // payload = page id + length

  netmark::Result<RowId> InsertTagged(std::string_view record, uint8_t extra_flags);
  netmark::Result<RowId> AppendSlot(std::string_view payload);
  netmark::Result<std::string> ReadOverflow(std::string_view payload,
                                            Epoch epoch) const;
  netmark::Result<std::string> WriteOverflowPayload(std::string_view record);
  /// Follows forward pointers from `id` to the slot holding the data.
  netmark::Result<RowId> Resolve(RowId id, Epoch epoch) const;

  Pager* pager_;
  PageId tail_ = kInvalidPage;  // current append page
  /// Atomic so metrics/healthz threads may read while the writer inserts.
  std::atomic<uint64_t> live_records_{0};
};

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_HEAP_FILE_H_
