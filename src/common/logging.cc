#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace netmark {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

bool EqualsIgnoreCaseAscii(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

int64_t WallMicrosNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LogLevel ParseLogLevel(const char* text, LogLevel fallback) {
  if (text == nullptr) return fallback;
  std::string_view v(text);
  if (EqualsIgnoreCaseAscii(v, "debug")) return LogLevel::kDebug;
  if (EqualsIgnoreCaseAscii(v, "info")) return LogLevel::kInfo;
  if (EqualsIgnoreCaseAscii(v, "warning") || EqualsIgnoreCaseAscii(v, "warn")) {
    return LogLevel::kWarning;
  }
  if (EqualsIgnoreCaseAscii(v, "error")) return LogLevel::kError;
  if (EqualsIgnoreCaseAscii(v, "off") || EqualsIgnoreCaseAscii(v, "none")) {
    return LogLevel::kOff;
  }
  return fallback;
}

std::string FormatIso8601Millis(int64_t wall_micros) {
  const std::time_t seconds = static_cast<std::time_t>(wall_micros / 1000000);
  const int millis = static_cast<int>((wall_micros % 1000000) / 1000);
  std::tm tm_utc{};
  gmtime_r(&seconds, &tm_utc);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  return buf;
}

Logger::Logger() {
  SetLevel(ParseLogLevel(std::getenv("NETMARK_LOG_LEVEL"), LogLevel::kWarning));
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::SetSink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void Logger::Log(LogLevel level, const char* file, int line,
                 const std::string& message) {
  // Strip directories from __FILE__ for terse output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::string out = FormatIso8601Millis(WallMicrosNow());
  out += " [";
  out += LevelName(level);
  out += "] ";
  out += base;
  out += ':';
  out += std::to_string(line);
  out += ' ';
  out += message;
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    sink_(out);
  } else {
    std::fprintf(stderr, "%s\n", out.c_str());
  }
}

namespace internal {

namespace {

bool NeedsQuoting(std::string_view value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t') return true;
  }
  return false;
}

}  // namespace

StructuredMessage::StructuredMessage(LogLevel level, const char* file, int line,
                                     std::string_view event)
    : level_(level), file_(file), line_(line) {
  line_text_ = "event=";
  line_text_ += event;
}

StructuredMessage& StructuredMessage::Field(std::string_view key,
                                            std::string_view value) {
  line_text_ += ' ';
  line_text_ += key;
  line_text_ += '=';
  if (NeedsQuoting(value)) {
    line_text_ += '"';
    for (char c : value) {
      if (c == '"' || c == '\\') line_text_ += '\\';
      if (c == '\n') {
        line_text_ += "\\n";
        continue;
      }
      line_text_ += c;
    }
    line_text_ += '"';
  } else {
    line_text_ += value;
  }
  return *this;
}

StructuredMessage::~StructuredMessage() {
  Logger::Instance().Log(level_, file_, line_, line_text_);
}

}  // namespace internal

}  // namespace netmark
