// HTML/XML upmark converters.
//
// HTML is parsed tolerantly and stored as-is: the default node-type
// configuration already classifies <h1>..<h6>/<title> as CONTEXT and
// emphasis tags as INTENSE, so no restructuring is needed — the structure
// *is* the upmark. XML is parsed strictly (falling back to the tolerant
// parser for near-XML data).

#ifndef NETMARK_CONVERT_HTML_CONVERTER_H_
#define NETMARK_CONVERT_HTML_CONVERTER_H_

#include "convert/converter.h"

namespace netmark::convert {

/// \brief Converts `.html`/`.htm` documents.
class HtmlConverter : public Converter {
 public:
  std::string_view format() const override { return "html"; }
  std::vector<std::string_view> extensions() const override {
    return {"html", "htm"};
  }
  bool Sniff(std::string_view content) const override;
  netmark::Result<xml::Document> Convert(std::string_view content,
                                         const ConvertContext& ctx) const override;
};

/// \brief Passes through well-formed `.xml` documents.
class XmlConverter : public Converter {
 public:
  std::string_view format() const override { return "xml"; }
  std::vector<std::string_view> extensions() const override { return {"xml"}; }
  bool Sniff(std::string_view content) const override;
  netmark::Result<xml::Document> Convert(std::string_view content,
                                         const ConvertContext& ctx) const override;
};

}  // namespace netmark::convert

#endif  // NETMARK_CONVERT_HTML_CONVERTER_H_
