// Fig 7 — the XDB Query search-and-transformation process: URL query ->
// context/content search -> result composition -> XSLT rendering, end to
// end, with a per-stage latency breakdown and an over-HTTP variant.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "query/compose.h"
#include "query/executor.h"
#include "server/http_client.h"
#include "xml/serializer.h"
#include "xslt/stylesheet.h"

namespace {

using namespace netmark;

constexpr const char* kReportSheet =
    "<xsl:stylesheet>"
    "<xsl:template match=\"/\">"
    "<report count=\"{results/@count}\">"
    "<xsl:for-each select=\"results/result\"><xsl:sort select=\"@doc\"/>"
    "<section doc=\"{@doc}\"><h><xsl:value-of select=\"context\"/></h>"
    "<body><xsl:value-of select=\"content\"/></body></section>"
    "</xsl:for-each></report>"
    "</xsl:template>"
    "</xsl:stylesheet>";

void BM_XdbParse(benchmark::State& state) {
  for (auto _ : state) {
    auto q = query::ParseXdbQuery("context=Budget+Summary&content=FY2005&limit=50");
    bench::Check(q.status(), "parse");
    benchmark::DoNotOptimize(q->context.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XdbParse);

void BM_EndToEndPipeline(benchmark::State& state) {
  auto inst = bench::MakeLoadedInstance(static_cast<size_t>(state.range(0)));
  auto sheet = bench::Unwrap(xslt::Stylesheet::Parse(kReportSheet), "sheet");
  query::QueryExecutor executor(inst.nm->store());
  for (auto _ : state) {
    auto q = bench::Unwrap(query::ParseXdbQuery("context=Budget"), "parse");
    auto hits = bench::Unwrap(executor.Execute(q), "execute");
    auto results = bench::Unwrap(query::ComposeResults(*inst.nm->store(), q, hits),
                                 "compose");
    auto transformed = bench::Unwrap(xslt::Transform(sheet, results), "transform");
    std::string rendered = xml::Serialize(transformed);
    benchmark::DoNotOptimize(rendered.size());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["corpus_docs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EndToEndPipeline)->Arg(120)->Arg(480)->Unit(benchmark::kMicrosecond);

void BM_EndToEndOverHttp(benchmark::State& state) {
  auto inst = bench::MakeLoadedInstance(static_cast<size_t>(state.range(0)));
  bench::Check(inst.nm->RegisterStylesheet("report", kReportSheet), "stylesheet");
  bench::Check(inst.nm->StartServer(), "server");
  server::HttpClient client("127.0.0.1", inst.nm->server_port());
  for (auto _ : state) {
    auto resp = client.Get("/xdb?context=Budget&xslt=report");
    bench::Check(resp.status(), "http");
    if (resp->status != 200) {
      std::fprintf(stderr, "unexpected HTTP %d\n", resp->status);
      std::exit(1);
    }
    benchmark::DoNotOptimize(resp->body.size());
  }
  state.SetItemsProcessed(state.iterations());
  inst.nm->StopServer();
}
BENCHMARK(BM_EndToEndOverHttp)->Arg(120)->Unit(benchmark::kMicrosecond);

void PrintBreakdownTable() {
  bench::ReportHeader("Fig 7: XDB Query search & transformation process",
                      "query parse -> search -> compose -> XSLT is an "
                      "interactive, on-the-fly pipeline");
  const size_t kDocs = 480;
  auto inst = bench::MakeLoadedInstance(kDocs);
  auto sheet = bench::Unwrap(xslt::Stylesheet::Parse(kReportSheet), "sheet");
  query::QueryExecutor executor(inst.nm->store());
  const int kReps = 25;
  double parse_ms = 0, search_ms = 0, compose_ms = 0, transform_ms = 0;
  size_t hits_count = 0;
  for (int i = 0; i < kReps; ++i) {
    Stopwatch w;
    auto q = bench::Unwrap(query::ParseXdbQuery("context=Budget"), "parse");
    parse_ms += w.ElapsedSeconds() * 1000;
    w.Restart();
    auto hits = bench::Unwrap(executor.Execute(q), "execute");
    search_ms += w.ElapsedSeconds() * 1000;
    hits_count = hits.size();
    w.Restart();
    auto results =
        bench::Unwrap(query::ComposeResults(*inst.nm->store(), q, hits), "compose");
    compose_ms += w.ElapsedSeconds() * 1000;
    w.Restart();
    auto transformed = bench::Unwrap(xslt::Transform(sheet, results), "transform");
    transform_ms += w.ElapsedSeconds() * 1000;
    benchmark::DoNotOptimize(xml::Serialize(transformed).size());
  }
  std::printf("corpus: %zu docs; query context=Budget; hits per query: %zu\n",
              kDocs, hits_count);
  std::printf("%14s %12s\n", "stage", "avg (ms)");
  std::printf("%14s %12.3f\n", "URL parse", parse_ms / kReps);
  std::printf("%14s %12.3f\n", "search", search_ms / kReps);
  std::printf("%14s %12.3f\n", "compose", compose_ms / kReps);
  std::printf("%14s %12.3f\n", "XSLT", transform_ms / kReps);
  std::printf("shape check: search dominates; parse is negligible; the whole\n"
              "pipeline is interactive (ms range), matching the on-the-fly\n"
              "composition story.\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintBreakdownTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
