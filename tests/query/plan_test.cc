// Compiled query plans: strategy selection, the shape-keyed plan cache, and
// the specialized context+content loop agreeing with the generic path.

#include "query/plan.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "query/executor.h"
#include "xml/parser.h"

namespace netmark::query {
namespace {

XdbQuery Parse(const std::string& qs) {
  auto q = ParseXdbQuery(qs);
  EXPECT_TRUE(q.ok()) << qs;
  return q.ok() ? *q : XdbQuery{};
}

TEST(QueryPlanTest, StrategySelection) {
  auto content = BuildQueryPlan(Parse("content=engine"));
  ASSERT_TRUE(content.ok());
  EXPECT_EQ((*content)->kind, QueryPlan::Kind::kContentOnly);

  auto context = BuildQueryPlan(Parse("context=Budget"));
  ASSERT_TRUE(context.ok());
  EXPECT_EQ((*context)->kind, QueryPlan::Kind::kSection);

  // The dominant production shape — context + plain term content — gets the
  // specialized postings-intersection loop.
  auto combined = BuildQueryPlan(Parse("context=Budget&content=engine+cost"));
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ((*combined)->kind, QueryPlan::Kind::kSectionSpecialized);

  // Phrase/prefix content keys keep the generic verify path (the index
  // intersection alone does not prove word adjacency).
  auto phrase = BuildQueryPlan(Parse("context=Budget&content=%22engine+cost%22"));
  ASSERT_TRUE(phrase.ok());
  EXPECT_EQ((*phrase)->kind, QueryPlan::Kind::kSection);

  auto xpath = BuildQueryPlan(Parse("xpath=//h1"));
  ASSERT_TRUE(xpath.ok());
  EXPECT_EQ((*xpath)->kind, QueryPlan::Kind::kXPath);
  ASSERT_NE((*xpath)->xpath, nullptr);
}

TEST(QueryPlanTest, Errors) {
  EXPECT_TRUE(BuildQueryPlan(XdbQuery{}).status().IsInvalidArgument());
  EXPECT_TRUE(
      BuildQueryPlan(Parse("context=A&xpath=//h1")).status().IsInvalidArgument());
  EXPECT_FALSE(BuildQueryPlan(Parse("xpath=//h1[")).ok());
}

TEST(QueryPlanTest, ShapeKeyIgnoresRuntimeParameters) {
  // doc scope, limit, xslt and timeout do not change the compiled plan.
  EXPECT_EQ(QueryPlanShapeKey(Parse("context=A&content=b")),
            QueryPlanShapeKey(Parse("context=A&content=b&doc=7&limit=5&xslt=s")));
  EXPECT_NE(QueryPlanShapeKey(Parse("context=A")),
            QueryPlanShapeKey(Parse("content=A")));
  EXPECT_NE(QueryPlanShapeKey(Parse("context=A&content=b")),
            QueryPlanShapeKey(Parse("context=A&content=c")));
}

TEST(QueryPlanCacheTest, LookupInsertAndEviction) {
  QueryPlanCache::Options options;
  options.max_entries = 2;
  QueryPlanCache cache(options);
  auto plan = BuildQueryPlan(Parse("context=A"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(cache.Lookup("k1"), nullptr);
  cache.Insert("k1", *plan);
  cache.Insert("k2", *plan);
  EXPECT_NE(cache.Lookup("k1"), nullptr);  // k1 most recent
  cache.Insert("k3", *plan);               // evicts k2
  EXPECT_NE(cache.Lookup("k1"), nullptr);
  EXPECT_EQ(cache.Lookup("k2"), nullptr);
  QueryPlanCache::Snapshot snap = cache.snapshot();
  EXPECT_EQ(snap.entries, 2u);
  EXPECT_EQ(snap.evictions, 1u);
  EXPECT_GT(snap.hits, 0u);
}

TEST(QueryPlanCacheTest, DisabledCacheStoresNothing) {
  QueryPlanCache::Options options;
  options.enabled = false;
  QueryPlanCache cache(options);
  auto plan = BuildQueryPlan(Parse("context=A"));
  ASSERT_TRUE(plan.ok());
  cache.Insert("k", *plan);
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_EQ(cache.snapshot().entries, 0u);
}

// --- Specialized plan correctness against the generic path ---

class SpecializedPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = netmark::TempDir::Make("plan_exec");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<netmark::TempDir>(std::move(*dir));
    auto store = xmlstore::XmlStore::Open(dir_->str());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    // Terms split across heading/body, repeated terms, nested sections, and
    // near-miss documents where terms land in different sections.
    Insert("paper.xml",
           "<doc>"
           "<h1>Engine Overview</h1><p>turbopump schematics and thrust data</p>"
           "<h1>Budget</h1><p>turbopump costs dominate</p>"
           "<h2>Forecast</h2><p>thrust margins shrink yearly</p>"
           "</doc>");
    Insert("report.xml",
           "<doc>"
           "<h1>Budget</h1><p>launch costs only</p>"
           "<h1>Engine</h1><p>turbopump thrust analysis</p>"
           "</doc>");
    Insert("memo.xml",
           "<doc><h1>Notes</h1><p>budget turbopump thrust in one line</p></doc>");
  }

  void Insert(const std::string& name, const char* markup) {
    auto doc = xml::ParseXml(markup);
    ASSERT_TRUE(doc.ok());
    xmlstore::DocumentInfo info;
    info.file_name = name;
    ASSERT_TRUE(store_->InsertDocument(*doc, info).ok());
  }

  std::vector<QueryHit> Run(const std::string& qs, bool specialized) {
    auto q = ParseXdbQuery(qs);
    EXPECT_TRUE(q.ok());
    ExecuteOptions options;
    options.use_specialized_section_plan = specialized;
    QueryExecutor executor(store_.get(), options);
    auto hits = executor.Execute(*q);
    EXPECT_TRUE(hits.ok()) << hits.status().ToString();
    return hits.ok() ? *hits : std::vector<QueryHit>{};
  }

  std::unique_ptr<netmark::TempDir> dir_;
  std::unique_ptr<xmlstore::XmlStore> store_;
};

TEST_F(SpecializedPlanTest, AgreesWithGenericPathOnEveryShape) {
  // Same query, same compiled plan, two strategies: the specialized
  // postings-intersection loop vs the generic seed + full-verify path (the
  // use_specialized_section_plan ablation knob).
  const char* queries[] = {
      "context=Budget&content=turbopump",
      "context=Budget&content=turbopump+costs",
      "context=Engine&content=thrust",
      "context=Forecast&content=thrust",
      "context=Budget&content=thrust",
      "context=Notes&content=budget+turbopump+thrust",
      "context=Budget&content=nonexistent",
      "context=Budget&content=turbopump&doc=2",
      "context=Overview&content=turbopump",
  };
  for (const char* qs : queries) {
    ASSERT_EQ((*BuildQueryPlan(Parse(qs)))->kind,
              QueryPlan::Kind::kSectionSpecialized)
        << qs;
    auto fast = Run(qs, /*specialized=*/true);
    auto generic = Run(qs, /*specialized=*/false);
    ASSERT_EQ(fast.size(), generic.size()) << qs;
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].doc_id, generic[i].doc_id) << qs;
      EXPECT_EQ(fast[i].context, generic[i].context) << qs;
      EXPECT_EQ(fast[i].heading, generic[i].heading) << qs;
      EXPECT_EQ(fast[i].text, generic[i].text) << qs;
    }
  }
}

TEST_F(SpecializedPlanTest, ContentTermInHeadingCountsForItsSection) {
  // "engine" appears only in headings; the section scope is heading + body
  // on both paths.
  auto fast = Run("context=Engine&content=engine", /*specialized=*/true);
  auto generic = Run("context=Engine&content=engine", /*specialized=*/false);
  ASSERT_EQ(fast.size(), generic.size());
  EXPECT_EQ(fast.size(), 2u);
}

TEST_F(SpecializedPlanTest, ExecutorSharesPlansThroughTheCache) {
  QueryPlanCache plans;
  QueryExecutor executor(store_.get());
  executor.set_plan_cache(&plans);
  auto q = ParseXdbQuery("context=Budget&content=turbopump");
  ASSERT_TRUE(q.ok());
  QueryExecutor::Stats first, second, third;
  ASSERT_TRUE(executor.Execute(*q, &first).ok());
  ASSERT_TRUE(executor.Execute(*q, &second).ok());
  EXPECT_EQ(first.plan_cache_hits, 0u);
  EXPECT_EQ(second.plan_cache_hits, 1u);
  // Different doc scope, same shape: still one compiled plan.
  auto scoped = ParseXdbQuery("context=Budget&content=turbopump&doc=2&limit=1");
  ASSERT_TRUE(scoped.ok());
  ASSERT_TRUE(executor.Execute(*scoped, &third).ok());
  EXPECT_EQ(third.plan_cache_hits, 1u);
  EXPECT_EQ(plans.snapshot().entries, 1u);
}

}  // namespace
}  // namespace netmark::query
