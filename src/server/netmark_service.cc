#include "server/netmark_service.h"

#include <algorithm>
#include <cstdio>

#include "common/build_info.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "observability/thread_trace.h"
#include "observability/trace_context.h"
#include "server/daemon.h"
#include "xml/entities.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace netmark::server {

namespace {

/// Minimal JSON string escaping for /healthz values.
std::string EscapeJson(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Maps storage-layer failures onto HTTP statuses (docs/durability.md): a
/// full disk is 507 Insufficient Storage, a degraded (read-only) store is
/// 503 + Retry-After, and detected corruption is a 500 that carries the
/// DataLoss detail so operators can tell rot from a plain server error.
HttpResponse StorageErrorResponse(const netmark::Status& status) {
  if (status.IsCapacityExceeded()) {
    HttpResponse resp = HttpResponse::Text(507, status.ToString());
    resp.reason = "Insufficient Storage";
    resp.headers["Retry-After"] = "30";
    return resp;
  }
  if (status.IsUnavailable()) {
    HttpResponse resp = HttpResponse::Text(503, status.ToString());
    resp.reason = "Service Unavailable";
    resp.headers["Retry-After"] = "10";
    return resp;
  }
  if (status.IsDataLoss()) {
    HttpResponse resp = HttpResponse::ServerError(status.ToString());
    resp.headers["X-Netmark-Data-Loss"] = "true";
    return resp;
  }
  return HttpResponse::ServerError(status.ToString());
}

}  // namespace

NetmarkService::NetmarkService(xmlstore::XmlStore* store)
    : store_(store),
      executor_(store),
      converters_(convert::ConverterRegistry::Default()),
      slow_query_ms_(observability::ResolveSlowQueryThresholdMs(
          observability::kDefaultSlowQueryMs)) {
  executor_.set_result_cache(&result_cache_);
  executor_.set_plan_cache(&plan_cache_);
  owned_metrics_ = std::make_unique<observability::MetricsRegistry>();
  metrics_ = owned_metrics_.get();
  BindHandles();
}

void NetmarkService::BindHandles() {
  request_micros_ = metrics_->GetHistogram("netmark_http_request_micros");
  query_latency_micros_ = metrics_->GetHistogram("netmark_query_latency_micros");
  route_counters_.clear();
  for (const char* route :
       {"/xdb", "/status", "/docs", "/metrics", "/healthz", "/traces", "other"}) {
    route_counters_[route] = metrics_->GetCounter("netmark_http_requests_total",
                                                  {{"route", route}});
  }
  // Constant-1 gauge whose labels carry the build identity — the standard
  // Prometheus idiom for joining any series against version/sha.
  metrics_->SetCallbackGauge("netmark_build_info",
                             {{"version", std::string(netmark::BuildVersion())},
                              {"git_sha", std::string(netmark::BuildGitSha())}},
                             [] { return 1.0; });
  executor_.BindMetrics(metrics_);
  result_cache_.BindMetrics(metrics_);
  plan_cache_.BindMetrics(metrics_);
  trace_store_.BindMetrics(metrics_);
}

void NetmarkService::BindMetrics(observability::MetricsRegistry* registry) {
  if (registry == nullptr || registry == metrics_) return;
  metrics_ = registry;
  BindHandles();
}

observability::Counter* NetmarkService::RouteCounter(
    const std::string& path) const {
  std::string route = "other";
  if (path == "/xdb" || path == "/status" || path == "/metrics" ||
      path == "/healthz" || path == "/traces") {
    route = path;
  } else if (path == "/docs" || netmark::StartsWith(path, "/docs/")) {
    route = "/docs";
  }
  auto it = route_counters_.find(route);
  return it == route_counters_.end() ? nullptr : it->second;
}

netmark::Status NetmarkService::RegisterStylesheet(const std::string& name,
                                                   std::string_view stylesheet_text) {
  NETMARK_ASSIGN_OR_RETURN(xslt::Stylesheet sheet,
                           xslt::Stylesheet::Parse(stylesheet_text));
  stylesheets_.insert_or_assign(name, std::move(sheet));
  return netmark::Status::OK();
}

HttpResponse NetmarkService::Handle(const HttpRequest& request) {
  observability::ScopedTimer timer(request_micros_);
  if (observability::Counter* counter = RouteCounter(request.path)) {
    counter->Increment();
  }
  return Dispatch(request);
}

HttpResponse NetmarkService::Dispatch(const HttpRequest& request) {
  const std::string& path = request.path;
  if (path == "/xdb") {
    if (request.method != "GET") return HttpResponse::Text(405, "GET only");
    return HandleXdb(request);
  }
  if (path == "/status") {
    if (request.method != "GET") return HttpResponse::Text(405, "GET only");
    return HandleStatus();
  }
  if (path == "/metrics") {
    if (request.method != "GET") return HttpResponse::Text(405, "GET only");
    return HandleMetrics();
  }
  if (path == "/healthz") {
    if (request.method != "GET") return HttpResponse::Text(405, "GET only");
    return HandleHealthz();
  }
  if (path == "/traces") {
    if (request.method != "GET") return HttpResponse::Text(405, "GET only");
    return HandleTraces(request);
  }
  if (path == "/docs" || path == "/docs/") {
    if (request.method == "GET") return HandleListDocuments(/*webdav=*/false);
    if (request.method == "PROPFIND") return HandleListDocuments(/*webdav=*/true);
    if (request.method == "PUT") {
      return HttpResponse::BadRequest("missing document name");
    }
    return HttpResponse::Text(405, "GET or PROPFIND");
  }
  if (netmark::StartsWith(path, "/docs/")) {
    std::string tail = path.substr(6);
    if (request.method == "PUT") {
      if (tail.empty()) return HttpResponse::BadRequest("missing document name");
      return HandlePutDocument(request, tail);
    }
    auto doc_id = netmark::ParseInt64(tail);
    if (!doc_id.ok()) {
      return HttpResponse::BadRequest("document id must be numeric: " + tail);
    }
    if (request.method == "GET") return HandleGetDocument(*doc_id);
    if (request.method == "DELETE") return HandleDeleteDocument(*doc_id);
    return HttpResponse::Text(405, "GET, PUT or DELETE");
  }
  return HttpResponse::NotFound("no route for " + path);
}

HttpResponse NetmarkService::HandleXdb(const HttpRequest& request) {
  auto query = query::ParseXdbQuery(request.query);
  if (!query.ok()) return HttpResponse::BadRequest(query.status().ToString());

  // Service-level parameters the XDB parser does not consume: `databank`
  // routes through the federation fan-out, `trace=1` appends the span tree.
  std::string databank;
  bool want_trace = false;
  for (const std::string& pair : netmark::Split(request.query, '&')) {
    size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;
    std::string key = pair.substr(0, eq);
    auto value = netmark::UrlDecode(pair.substr(eq + 1));
    if (!value.ok()) continue;
    if (netmark::EqualsIgnoreCase(key, "databank")) {
      databank = *value;
    } else if (netmark::EqualsIgnoreCase(key, "trace")) {
      want_trace = (*value == "1" || netmark::EqualsIgnoreCase(*value, "true"));
    }
  }

  // An inbound W3C traceparent means a mediator upstream is already tracing
  // this request: adopt its id (so both processes' trace stores key the same
  // trace) and always build the span tree — the response carries it back in
  // a <trace> block for stitching.
  auto inbound =
      observability::ParseTraceparent(request.Header("traceparent"));
  const bool remote_child = inbound.has_value();

  // Head-sampling roll happens up front so the decision can gate span
  // bookkeeping entirely; tail rules (error / slow) still apply at Record
  // time whenever a trace exists for another reason.
  const bool sampled = trace_store_.ShouldSample();

  // One trace serves every consumer: the trace=1 response annotation, the
  // slow-query log, the upstream mediator's stitch, and the /traces ring.
  std::shared_ptr<observability::Trace> trace;
  if (want_trace || remote_child || sampled || slow_query_ms_ > 0) {
    trace = std::make_shared<observability::Trace>();
    trace->set_trace_id(remote_child ? inbound->trace_id
                                     : observability::GenerateTraceId());
  }
  const int64_t start_micros = netmark::MonotonicMicros();
  observability::ScopedSpan root(trace.get(), "xdb");
  root.Annotate("query", request.query);
  if (remote_child) root.Annotate("caller_span", inbound->span_id);
  // Synthetic spans for time already spent before this handler ran: the
  // accept-queue wait and HTTP parsing, measured by the server loop.
  if (trace != nullptr && request.queue_wait_micros > 0) {
    trace->AddCompletedSpan("queue_wait", root.id(), request.queue_wait_micros);
  }
  if (trace != nullptr && request.parse_micros > 0) {
    trace->AddCompletedSpan("parse", root.id(), request.parse_micros);
  }

  // Every return funnels through here so the trace id header, the retention
  // decision, the exemplar and the slow-query log cover error paths too —
  // a 500 with X-Netmark-Data-Loss is exactly the response whose trace id
  // an operator wants to chase.
  auto finish = [&](HttpResponse resp) {
    const int64_t total = netmark::MonotonicMicros() - start_micros;
    bool retained = false;
    if (trace != nullptr) {
      resp.headers["X-Netmark-Trace-Id"] = trace->trace_id();
      retained = trace_store_.Record(trace, sampled, resp.status >= 500);
      observability::MaybeLogSlowQuery("/xdb", request.query, total,
                                       slow_query_ms_, *trace);
    }
    if (query_latency_micros_ != nullptr) {
      // Exemplars only reference retained traces — a bucket link that 404s
      // on /traces?id= would be worse than none.
      if (retained) {
        query_latency_micros_->ObserveWithExemplar(total, trace->trace_id());
      } else {
        query_latency_micros_->Observe(total);
      }
    }
    return resp;
  };

  xml::Document results;
  if (!databank.empty()) {
    if (router_ == nullptr) {
      root.End(false, "no databank router");
      return finish(HttpResponse::BadRequest("this instance has no databank router"));
    }
    auto federated = router_->QueryFederated(databank, *query, trace, root.id());
    if (!federated.ok()) {
      root.End(false, federated.status().ToString());
      return finish(HttpResponse::ServerError(federated.status().ToString()));
    }
    root.Annotate("hits", std::to_string(federated->hits.size()));
    observability::ScopedSpan compose_span(trace.get(), "compose", root.id());
    results = ComposeFederatedResults(*query, *federated);
  } else {
    observability::ScopedSpan exec_span(trace.get(), "execute", root.id());
    // One snapshot spans execute + compose, so the hits and the section
    // bodies composed from them come from the same committed state even
    // with ingestion running concurrently.
    xmlstore::XmlStore::ReadSnapshot snapshot = store_->BeginRead();
    query::QueryExecutor::Stats exec_stats;
    netmark::Result<std::vector<query::QueryHit>> hits = [&] {
      // Bind the trace to this thread so layers below the executor's API
      // (result-cache probe, storage) can attach spans under "execute".
      observability::ThreadTraceScope thread_trace(trace.get(), exec_span.id());
      return executor_.Execute(*query, snapshot, &exec_stats);
    }();
    // Tag the trace (and thereby any slow-query log line) with the cache
    // outcome, so a slow miss is attributable at a glance.
    root.Annotate("cache", exec_stats.cache_hits > 0 ? "hit" : "miss");
    if (!hits.ok()) {
      exec_span.End(false, hits.status().ToString());
      root.End(false, hits.status().ToString());
      if (hits.status().IsInvalidArgument()) {
        return finish(HttpResponse::BadRequest(hits.status().ToString()));
      }
      return finish(StorageErrorResponse(hits.status()));
    }
    exec_span.Annotate("hits", std::to_string(hits->size()));
    exec_span.End();
    root.Annotate("hits", std::to_string(hits->size()));
    observability::ScopedSpan compose_span(trace.get(), "compose", root.id());
    auto composed = query::ComposeResults(*store_, *query, *hits);
    if (!composed.ok()) {
      compose_span.End(false, composed.status().ToString());
      root.End(false, composed.status().ToString());
      return finish(StorageErrorResponse(composed.status()));
    }
    results = std::move(*composed);
  }

  root.End();
  if ((want_trace || remote_child) && trace != nullptr) {
    xml::NodeId results_el = results.DocumentElement();
    if (results_el != xml::kInvalidNode) {
      AppendTraceElement(results, results_el, trace->Snapshot());
    }
  }

  // The serialize span lands after root ends, so it shows up in the stored
  // trace and slow logs but not in this response's own <trace> block.
  observability::ScopedSpan serialize_span(trace.get(), "serialize", root.id());
  auto body = RenderResults(results, query->xslt);
  if (!body.ok()) {
    serialize_span.End(false, body.status().ToString());
    return finish(HttpResponse::ServerError(body.status().ToString()));
  }
  serialize_span.Annotate("bytes", std::to_string(body->size()));
  serialize_span.End();
  return finish(HttpResponse::Ok(std::move(*body)));
}

HttpResponse NetmarkService::HandleMetrics() {
  return HttpResponse::Ok(metrics_->RenderPrometheus(),
                          "text/plain; version=0.0.4; charset=utf-8");
}

HttpResponse NetmarkService::HandleHealthz() {
  // Snapshot for the store/storage figures below (counts, WAL size) so a
  // concurrent commit or checkpoint cannot be observed half-applied.
  xmlstore::XmlStore::ReadSnapshot snapshot = store_->BeginRead();
  // Degraded = any open breaker (a federated source is being skipped) or a
  // read-only store (a disk fault stopped mutations). Still HTTP 200 — the
  // instance itself answers; "status" carries the nuance.
  bool degraded = false;
  std::string breakers = "[";
  if (router_ != nullptr) {
    bool first = true;
    for (const std::string& name : router_->SourceNames()) {
      federation::CircuitBreaker* breaker = router_->GetBreaker(name);
      if (breaker == nullptr) continue;
      auto state = breaker->state(netmark::MonotonicMicros());
      if (state == federation::CircuitBreaker::State::kOpen) degraded = true;
      if (!first) breakers += ",";
      first = false;
      breakers += "{\"source\":\"" + EscapeJson(name) + "\",\"state\":\"" +
                  std::string(federation::CircuitStateToString(state)) +
                  "\",\"consecutive_failures\":" +
                  std::to_string(breaker->consecutive_failures()) + "}";
    }
  }
  breakers += "]";

  std::string daemon_json = "null";
  if (daemon_ != nullptr) {
    DaemonCounters c = daemon_->counters();
    daemon_json = std::string("{\"running\":") +
                  (daemon_->running() ? "true" : "false") +
                  ",\"queued\":" + std::to_string(c.queued) +
                  ",\"converted\":" + std::to_string(c.converted) +
                  ",\"inserted\":" + std::to_string(c.inserted) +
                  ",\"failed\":" + std::to_string(c.failed) +
                  ",\"deferred\":" + std::to_string(c.deferred) + "}";
  }

  const storage::Database* db = store_->database();
  const storage::Wal* wal = db->wal();
  const storage::RecoveryStats& rec = db->recovery_stats();
  // Disk-fault posture: read-only degradation and the quarantine inventory
  // (checksum-failed pages and the documents they took with them).
  bool store_degraded = store_->degraded();
  if (store_degraded) degraded = true;
  std::string quarantine_json =
      std::string("{\"pages\":") + std::to_string(store_->quarantined_pages()) +
      ",\"docs\":" + std::to_string(store_->quarantined_doc_count()) +
      ",\"scrub_pages_scanned\":" + std::to_string(store_->scrub_pages_scanned()) +
      ",\"scrub_errors_found\":" + std::to_string(store_->scrub_errors_found()) +
      ",\"scrub_passes\":" + std::to_string(store_->scrub_passes()) + "}";
  std::string storage_json =
      std::string("{\"wal_enabled\":") + (wal != nullptr ? "true" : "false") +
      ",\"wal_fsync\":\"" +
      std::string(storage::WalFsyncPolicyName(db->options().wal_fsync)) +
      "\",\"wal_size_bytes\":" +
      std::to_string(wal != nullptr ? wal->size_bytes() : 0) +
      ",\"last_checkpoint_lsn\":" + std::to_string(db->last_checkpoint_lsn()) +
      ",\"checkpoints\":" + std::to_string(db->checkpoints()) +
      ",\"degraded\":" + (store_degraded ? "true" : "false") +
      ",\"degraded_reason\":\"" + EscapeJson(store_->degraded_reason()) + "\"" +
      // MVCC version lifecycle (docs/mvcc.md): how much history the pager is
      // holding, the GC watermark, and total reclaim work done.
      ",\"mvcc\":{\"epoch\":" + std::to_string(store_->commit_epoch()) +
      ",\"versions_retained\":" +
      std::to_string(store_->mvcc_versions_retained()) +
      ",\"oldest_pinned_epoch\":" +
      std::to_string(store_->OldestPinnedEpoch()) +
      ",\"gc_reclaimed_total\":" +
      std::to_string(store_->mvcc_versions_reclaimed()) + "}" +
      ",\"quarantine\":" + quarantine_json +
      ",\"recovery\":{\"performed\":" + (rec.performed ? "true" : "false") +
      ",\"committed_txns\":" + std::to_string(rec.committed_txns) +
      ",\"uncommitted_txns\":" + std::to_string(rec.uncommitted_txns) +
      ",\"pages_applied\":" + std::to_string(rec.pages_applied) +
      ",\"torn_tail\":" + (rec.torn_tail ? "true" : "false") +
      ",\"micros\":" + std::to_string(rec.micros) + "}}";

  query::QueryResultCache::Snapshot cache = result_cache_.snapshot();
  query::QueryPlanCache::Snapshot plans = plan_cache_.snapshot();
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.4f", cache.hit_ratio);
  std::string cache_json =
      std::string("{\"enabled\":") + (result_cache_.enabled() ? "true" : "false") +
      ",\"entries\":" + std::to_string(cache.entries) +
      ",\"bytes\":" + std::to_string(cache.bytes) +
      ",\"hits\":" + std::to_string(cache.hits) +
      ",\"misses\":" + std::to_string(cache.misses) +
      ",\"evictions\":" + std::to_string(cache.evictions) +
      ",\"hit_ratio\":" + ratio +
      ",\"plan_entries\":" + std::to_string(plans.entries) +
      ",\"plan_hits\":" + std::to_string(plans.hits) +
      ",\"plan_misses\":" + std::to_string(plans.misses) + "}";

  std::string body = std::string("{\"status\":\"") +
                     (degraded ? "degraded" : "ok") + "\"," +
                     "\"build\":{\"version\":\"" +
                     EscapeJson(netmark::BuildVersion()) + "\",\"git_sha\":\"" +
                     EscapeJson(netmark::BuildGitSha()) + "\"}," +
                     "\"store\":{\"documents\":" +
                     std::to_string(store_->document_count()) +
                     ",\"nodes\":" + std::to_string(store_->node_count()) +
                     ",\"terms\":" +
                     std::to_string(store_->text_index().num_terms()) + "}," +
                     "\"query_cache\":" + cache_json + "," +
                     "\"storage\":" + storage_json + "," +
                     "\"daemon\":" + daemon_json + "," +
                     "\"breakers\":" + breakers + "}";
  return HttpResponse::Ok(std::move(body), "application/json");
}

HttpResponse NetmarkService::HandleTraces(const HttpRequest& request) {
  std::string id;
  std::string format;
  for (const std::string& pair : netmark::Split(request.query, '&')) {
    size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;
    std::string key = pair.substr(0, eq);
    auto value = netmark::UrlDecode(pair.substr(eq + 1));
    if (!value.ok()) continue;
    if (netmark::EqualsIgnoreCase(key, "id")) {
      id = *value;
    } else if (netmark::EqualsIgnoreCase(key, "format")) {
      format = *value;
    }
  }

  if (id.empty()) {
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.4f", trace_store_.sample_rate());
    std::string body = std::string("{\"sample_rate\":") + rate +
                       ",\"retained\":" + std::to_string(trace_store_.size()) +
                       ",\"traces\":[";
    bool first = true;
    for (const observability::TraceSummary& t : trace_store_.List()) {
      if (!first) body += ",";
      first = false;
      body += "{\"id\":\"" + EscapeJson(t.id) + "\",\"root\":\"" +
              EscapeJson(t.root) +
              "\",\"duration_us\":" + std::to_string(t.duration_micros) +
              ",\"ok\":" + (t.ok ? "true" : "false") +
              ",\"error\":" + (t.error ? "true" : "false") +
              ",\"slow\":" + (t.slow ? "true" : "false") +
              ",\"wall_seconds\":" + std::to_string(t.wall_seconds) + "}";
    }
    body += "]}";
    return HttpResponse::Ok(std::move(body), "application/json");
  }

  std::shared_ptr<observability::Trace> trace = trace_store_.Find(id);
  if (trace == nullptr) {
    return HttpResponse::NotFound("no retained trace with id " + id);
  }
  const std::vector<observability::SpanData> spans = trace->Snapshot();

  if (netmark::EqualsIgnoreCase(format, "xml")) {
    // The same <trace> block the trace=1 annotation emits, standalone — the
    // `netmark traces` CLI renders its flame view from this.
    xml::Document doc;
    xml::NodeId root = doc.CreateElement("netmark-trace");
    doc.AddAttribute(root, "id", id);
    doc.AppendChild(doc.root(), root);
    AppendTraceElement(doc, root, spans);
    return HttpResponse::Ok(xml::Serialize(doc));
  }

  std::string body = "{\"id\":\"" + EscapeJson(id) + "\",\"spans\":[";
  bool first = true;
  for (const observability::SpanData& span : spans) {
    if (!first) body += ",";
    first = false;
    body += "{\"id\":" + std::to_string(span.id) +
            ",\"parent\":" + std::to_string(span.parent) + ",\"name\":\"" +
            EscapeJson(span.name) +
            "\",\"us\":" + std::to_string(span.duration_micros()) +
            ",\"ok\":" + (span.ok ? "true" : "false") +
            ",\"unfinished\":" + (span.finished() ? "false" : "true") +
            ",\"remote\":" + (span.remote ? "true" : "false");
    if (!span.note.empty()) body += ",\"note\":\"" + EscapeJson(span.note) + "\"";
    if (!span.annotations.empty()) {
      body += ",\"annotations\":[";
      bool first_ann = true;
      for (const auto& [key, value] : span.annotations) {
        if (!first_ann) body += ",";
        first_ann = false;
        body += "{\"key\":\"" + EscapeJson(key) + "\",\"value\":\"" +
                EscapeJson(value) + "\"}";
      }
      body += "]";
    }
    body += "}";
  }
  body += "]}";
  return HttpResponse::Ok(std::move(body), "application/json");
}

netmark::Result<std::string> NetmarkService::RenderResults(
    const xml::Document& results, const std::string& xslt_name) {
  if (xslt_name.empty()) {
    return xml::Serialize(results);
  }
  auto it = stylesheets_.find(xslt_name);
  if (it == stylesheets_.end()) {
    return netmark::Status::NotFound("no stylesheet named " + xslt_name);
  }
  NETMARK_ASSIGN_OR_RETURN(xml::Document transformed,
                           xslt::Transform(it->second, results));
  return xml::Serialize(transformed);
}

HttpResponse NetmarkService::HandlePutDocument(const HttpRequest& request,
                                               const std::string& file_name) {
  auto doc = converters_.Convert(file_name, request.body);
  if (!doc.ok()) return HttpResponse::BadRequest(doc.status().ToString());
  // WebDAV PUT semantics ("collaboratively edit and manage files", paper
  // §2.1.2): putting to an existing name replaces that document.
  bool replaced = false;
  auto existing = ([this] {
    xmlstore::XmlStore::ReadSnapshot snapshot = store_->BeginRead();
    return store_->ListDocuments();
  })();
  if (existing.ok()) {
    for (const xmlstore::DocRecord& rec : *existing) {
      if (rec.file_name == file_name) {
        netmark::Status st = store_->DeleteDocument(rec.doc_id);
        // A concurrent PUT/DELETE may have removed it between the listing
        // and now; the replace still proceeds.
        if (st.IsNotFound()) continue;
        if (!st.ok()) return StorageErrorResponse(st);
        replaced = true;
      }
    }
  }
  xmlstore::DocumentInfo info;
  info.file_name = file_name;
  info.file_date = netmark::WallSeconds();
  info.file_size = static_cast<int64_t>(request.body.size());
  auto doc_id = store_->InsertDocument(*doc, info);
  if (!doc_id.ok()) return StorageErrorResponse(doc_id.status());
  HttpResponse resp =
      replaced ? HttpResponse::Text(204, "") : HttpResponse::Text(201, std::to_string(*doc_id));
  resp.headers["Location"] = "/docs/" + std::to_string(*doc_id);
  return resp;
}

HttpResponse NetmarkService::HandleGetDocument(int64_t doc_id) {
  xmlstore::XmlStore::ReadSnapshot snapshot = store_->BeginRead();
  auto doc = store_->Reconstruct(doc_id);
  if (!doc.ok()) {
    if (doc.status().IsNotFound()) return HttpResponse::NotFound(doc.status().message());
    if (doc.status().IsDataLoss()) store_->NoteQuarantinedDoc(doc_id);
    return StorageErrorResponse(doc.status());
  }
  xml::SerializeOptions opts;
  opts.declaration = true;
  return HttpResponse::Ok(xml::Serialize(*doc, opts));
}

HttpResponse NetmarkService::HandleDeleteDocument(int64_t doc_id) {
  netmark::Status st = store_->DeleteDocument(doc_id);
  if (st.IsNotFound()) return HttpResponse::NotFound(st.message());
  if (!st.ok()) return StorageErrorResponse(st);
  return HttpResponse::Text(204, "");
}

HttpResponse NetmarkService::HandleListDocuments(bool webdav) {
  xmlstore::XmlStore::ReadSnapshot snapshot = store_->BeginRead();
  auto docs = store_->ListDocuments();
  if (!docs.ok()) return HttpResponse::ServerError(docs.status().ToString());
  std::string body;
  if (webdav) {
    body = "<?xml version=\"1.0\"?><D:multistatus xmlns:D=\"DAV:\">";
    for (const xmlstore::DocRecord& doc : *docs) {
      body += "<D:response><D:href>/docs/" + std::to_string(doc.doc_id) +
              "</D:href><D:propstat><D:prop><D:displayname>" +
              xml::EscapeText(doc.file_name) +
              "</D:displayname><D:getcontentlength>" + std::to_string(doc.file_size) +
              "</D:getcontentlength></D:prop>"
              "<D:status>HTTP/1.1 200 OK</D:status></D:propstat></D:response>";
    }
    body += "</D:multistatus>";
    HttpResponse resp = HttpResponse::Text(207, std::move(body));
    resp.headers["Content-Type"] = "text/xml";
    return resp;
  }
  body = "<documents>";
  for (const xmlstore::DocRecord& doc : *docs) {
    body += "<doc id=\"" + std::to_string(doc.doc_id) + "\" name=\"" +
            xml::EscapeAttribute(doc.file_name) + "\" size=\"" +
            std::to_string(doc.file_size) + "\"/>";
  }
  body += "</documents>";
  return HttpResponse::Ok(std::move(body));
}

HttpResponse NetmarkService::HandleStatus() {
  xmlstore::XmlStore::ReadSnapshot snapshot = store_->BeginRead();
  std::string body = "<status><documents>" + std::to_string(store_->document_count()) +
                     "</documents><nodes>" + std::to_string(store_->node_count()) +
                     "</nodes><terms>" +
                     std::to_string(store_->text_index().num_terms()) + "</terms>" +
                     "</status>";
  return HttpResponse::Ok(std::move(body));
}

void AppendTraceElement(xml::Document& doc, xml::NodeId parent,
                        const std::vector<observability::SpanData>& spans) {
  xml::NodeId trace_el = doc.CreateElement("trace");
  if (!spans.empty()) {
    doc.AddAttribute(trace_el, "total_us",
                     std::to_string(spans[0].duration_micros()));
  }
  doc.AppendChild(parent, trace_el);
  // Span ids are indices and parents always precede children, so one pass
  // rebuilds the nesting.
  std::vector<xml::NodeId> span_els(spans.size(), xml::kInvalidNode);
  for (const observability::SpanData& span : spans) {
    xml::NodeId el = doc.CreateElement("span");
    doc.AddAttribute(el, "name", span.name);
    doc.AddAttribute(el, "us", std::to_string(span.duration_micros()));
    doc.AddAttribute(el, "ok", span.ok ? "true" : "false");
    if (!span.finished()) doc.AddAttribute(el, "unfinished", "true");
    if (span.remote) doc.AddAttribute(el, "remote", "true");
    if (!span.note.empty()) doc.AddAttribute(el, "note", span.note);
    for (const auto& [key, value] : span.annotations) {
      xml::NodeId ann = doc.CreateElement("annotation");
      doc.AddAttribute(ann, "key", key);
      doc.AddAttribute(ann, "value", value);
      doc.AppendChild(el, ann);
    }
    xml::NodeId parent_el =
        (span.parent >= 0 && static_cast<size_t>(span.parent) < spans.size())
            ? span_els[span.parent]
            : trace_el;
    if (parent_el == xml::kInvalidNode) parent_el = trace_el;
    doc.AppendChild(parent_el, el);
    if (span.id >= 0 && static_cast<size_t>(span.id) < span_els.size()) {
      span_els[span.id] = el;
    }
  }
}

xml::Document ComposeFederatedResults(const query::XdbQuery& query,
                                      const federation::FederatedResult& result) {
  xml::Document out;
  xml::NodeId results = out.CreateElement("results");
  out.AddAttribute(results, "query", query.ToQueryString());
  out.AddAttribute(results, "count", std::to_string(result.hits.size()));
  out.AddAttribute(results, "complete", result.complete() ? "true" : "false");
  out.AppendChild(out.root(), results);
  // Per-source outcome report: which sources answered, which were missing
  // and why — so a partial answer is never mistaken for a full one.
  xml::NodeId sources = out.CreateElement("sources");
  out.AppendChild(results, sources);
  for (const federation::SourceOutcome& outcome : result.sources) {
    xml::NodeId src = out.CreateElement("source");
    out.AddAttribute(src, "name", outcome.source);
    out.AddAttribute(src, "outcome",
                     std::string(federation::SourceStateToString(outcome.state)));
    out.AddAttribute(src, "attempts", std::to_string(outcome.attempts));
    out.AddAttribute(src, "latency_ms",
                     std::to_string(outcome.latency_micros / 1000));
    out.AddAttribute(src, "hits", std::to_string(outcome.hits));
    if (!outcome.error.empty()) out.AddAttribute(src, "error", outcome.error);
    out.AppendChild(sources, src);
  }
  for (const federation::FederatedHit& hit : result.hits) {
    xml::NodeId result = out.CreateElement("result");
    out.AddAttribute(result, "doc", hit.file_name);
    out.AddAttribute(result, "docid", std::to_string(hit.doc_id));
    if (!hit.source.empty()) out.AddAttribute(result, "source", hit.source);
    out.AppendChild(results, result);
    if (!hit.heading.empty()) {
      xml::NodeId context = out.CreateElement("context");
      out.AppendChild(context, out.CreateText(hit.heading));
      out.AppendChild(result, context);
    }
    if (!hit.markup.empty() || !hit.text.empty()) {
      xml::NodeId content = out.CreateElement("content");
      out.AppendChild(result, content);
      bool embedded = false;
      if (!hit.markup.empty()) {
        // Wrap: the markup may be a forest.
        auto parsed = xml::ParseXml("<wrap>" + hit.markup + "</wrap>");
        if (parsed.ok()) {
          xml::NodeId wrap = parsed->DocumentElement();
          for (xml::NodeId c = parsed->first_child(wrap); c != xml::kInvalidNode;
               c = parsed->next_sibling(c)) {
            out.AppendChild(content, out.ImportSubtree(*parsed, c));
          }
          embedded = true;
        }
      }
      if (!embedded) {
        out.AppendChild(content, out.CreateText(hit.text));
      }
    }
  }
  return out;
}

}  // namespace netmark::server
