#include "convert/json_converter.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "convert/registry.h"
#include "query/executor.h"
#include "xml/serializer.h"
#include "xmlstore/xml_store.h"

namespace netmark::convert {
namespace {

// --- JSON parser ---

TEST(JsonParserTest, Scalars) {
  EXPECT_EQ(ParseJson("null")->kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(ParseJson("true")->boolean);
  EXPECT_FALSE(ParseJson("false")->boolean);
  EXPECT_DOUBLE_EQ(ParseJson("-12.5e2")->number, -1250.0);
  EXPECT_EQ(ParseJson("\"hi\"")->string, "hi");
}

TEST(JsonParserTest, NestedStructures) {
  auto v = ParseJson(R"({"a": [1, {"b": "x"}, null], "c": {}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_EQ(v->object.size(), 2u);
  EXPECT_EQ(v->object[0].first, "a");
  const JsonValue& arr = v->object[0].second;
  ASSERT_EQ(arr.array.size(), 3u);
  EXPECT_DOUBLE_EQ(arr.array[0].number, 1.0);
  EXPECT_EQ(arr.array[1].object[0].second.string, "x");
  EXPECT_EQ(arr.array[2].kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(v->object[1].second.object.empty());
}

TEST(JsonParserTest, StringEscapes) {
  EXPECT_EQ(ParseJson(R"("a\"b\\c\/d\n")")->string, "a\"b\\c/d\n");
  EXPECT_EQ(ParseJson(R"("Aé")")->string, "A\xC3\xA9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(ParseJson(R"("😀")")->string, "\xF0\x9F\x98\x80");
}

TEST(JsonParserTest, Errors) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("truex").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson(R"("\q")").ok());
  EXPECT_FALSE(ParseJson(R"("\ud83dAx)").ok());  // bad low surrogate
}

// --- Converter ---

ConvertContext Ctx() {
  ConvertContext ctx;
  ctx.file_name = "data.json";
  return ctx;
}

TEST(JsonConverterTest, ObjectFieldsBecomeElements) {
  JsonConverter conv;
  auto doc = conv.Convert(
      R"({"title": "Engine Report", "status": "green", "fiscal year": 2005,)"
      R"( "readings": [1, 2]})",
      Ctx());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  std::string markup = xml::Serialize(*doc);
  EXPECT_NE(markup.find("<context>Engine Report</context>"), std::string::npos);
  EXPECT_NE(markup.find("<status>green</status>"), std::string::npos);
  EXPECT_NE(markup.find("<fiscal_year name=\"fiscal year\">2005</fiscal_year>"),
            std::string::npos);
  EXPECT_NE(markup.find("<readings><item>1</item><item>2</item></readings>"),
            std::string::npos);
}

TEST(JsonConverterTest, SniffsRealJsonOnly) {
  JsonConverter conv;
  EXPECT_TRUE(conv.Sniff(R"({"a": 1})"));
  EXPECT_TRUE(conv.Sniff("[1, 2, 3]"));
  EXPECT_FALSE(conv.Sniff("{not json at all"));
  EXPECT_FALSE(conv.Sniff("plain words"));
  EXPECT_FALSE(conv.Sniff("<xml/>"));
}

TEST(JsonConverterTest, RegistryRoutesJson) {
  ConverterRegistry registry = ConverterRegistry::Default();
  EXPECT_EQ((*registry.Select("x.json", ""))->format(), "json");
  EXPECT_EQ((*registry.Select("noext", R"({"k": "v"})"))->format(), "json");
}

TEST(JsonConverterTest, JsonDocumentsAreQueryable) {
  auto dir = TempDir::Make("jsonq");
  ASSERT_TRUE(dir.ok());
  auto store = xmlstore::XmlStore::Open(dir->str());
  ASSERT_TRUE(store.ok());
  ConverterRegistry registry = ConverterRegistry::Default();
  auto doc = registry.Convert(
      "anomaly.json",
      R"({"title": "Valve Anomaly", "description": "unexpected valve chatter",)"
      R"( "severity": "critical"})");
  ASSERT_TRUE(doc.ok());
  xmlstore::DocumentInfo info;
  info.file_name = "anomaly.json";
  ASSERT_TRUE((*store)->InsertDocument(*doc, info).ok());

  query::QueryExecutor executor(store->get());
  auto q = query::ParseXdbQuery("context=Valve+Anomaly&content=chatter");
  ASSERT_TRUE(q.ok());
  auto hits = executor.Execute(*q);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].heading, "Valve Anomaly");
}

}  // namespace
}  // namespace netmark::convert
