#include "textindex/text_query.h"

#include <algorithm>

#include "common/string_util.h"

namespace netmark::textindex {

TextQuery ParseTextQuery(std::string_view key) {
  TextQuery query;
  size_t i = 0;
  while (i < key.size()) {
    while (i < key.size() && std::isspace(static_cast<unsigned char>(key[i]))) ++i;
    if (i >= key.size()) break;
    if (key[i] == '"') {
      size_t close = key.find('"', i + 1);
      if (close != std::string_view::npos) {
        QueryClause clause;
        clause.kind = QueryClause::Kind::kPhrase;
        clause.words = TokenizeTerms(key.substr(i + 1, close - i - 1));
        if (clause.words.size() == 1) {
          clause.kind = QueryClause::Kind::kTerm;
        }
        if (!clause.words.empty()) query.clauses.push_back(std::move(clause));
        i = close + 1;
        continue;
      }
      // Unterminated quote: treat the rest as plain words.
      ++i;
      continue;
    }
    size_t start = i;
    while (i < key.size() && !std::isspace(static_cast<unsigned char>(key[i]))) ++i;
    std::string_view word = key.substr(start, i - start);
    bool prefix = word.size() > 1 && word.back() == '*';
    if (prefix) word.remove_suffix(1);
    std::vector<std::string> terms = TokenizeTerms(word);
    if (terms.empty()) continue;
    if (terms.size() > 1) {
      // A hyphenated/punctuated word tokenizes to several terms: require them
      // as a phrase so "on-the-fly" matches exactly.
      QueryClause clause;
      clause.kind = QueryClause::Kind::kPhrase;
      clause.words = std::move(terms);
      query.clauses.push_back(std::move(clause));
    } else {
      QueryClause clause;
      clause.kind = prefix ? QueryClause::Kind::kPrefix : QueryClause::Kind::kTerm;
      clause.words = std::move(terms);
      query.clauses.push_back(std::move(clause));
    }
  }
  return query;
}

std::vector<DocKey> Evaluate(const TextQuery& query, const InvertedIndex& index) {
  if (query.empty()) return {};
  std::vector<DocKey> acc;
  bool first = true;
  for (const QueryClause& clause : query.clauses) {
    std::vector<DocKey> keys;
    switch (clause.kind) {
      case QueryClause::Kind::kTerm:
        keys = index.LookupTerm(clause.words[0]);
        break;
      case QueryClause::Kind::kPhrase:
        keys = index.MatchPhrase(clause.words);
        break;
      case QueryClause::Kind::kPrefix:
        keys = index.MatchPrefix(clause.words[0]);
        break;
    }
    if (first) {
      acc = std::move(keys);
      first = false;
    } else {
      std::vector<DocKey> merged;
      std::set_intersection(acc.begin(), acc.end(), keys.begin(), keys.end(),
                            std::back_inserter(merged));
      acc = std::move(merged);
    }
    if (acc.empty()) break;
  }
  return acc;
}

bool Matches(const TextQuery& query, std::string_view text) {
  if (query.empty()) return false;
  std::vector<Token> tokens = Tokenize(text);
  for (const QueryClause& clause : query.clauses) {
    bool hit = false;
    switch (clause.kind) {
      case QueryClause::Kind::kTerm:
        for (const Token& t : tokens) {
          if (t.term == clause.words[0]) {
            hit = true;
            break;
          }
        }
        break;
      case QueryClause::Kind::kPrefix:
        for (const Token& t : tokens) {
          if (netmark::StartsWith(t.term, clause.words[0])) {
            hit = true;
            break;
          }
        }
        break;
      case QueryClause::Kind::kPhrase: {
        for (size_t i = 0; i + clause.words.size() <= tokens.size() && !hit; ++i) {
          bool all = true;
          for (size_t k = 0; k < clause.words.size(); ++k) {
            if (tokens[i + k].term != clause.words[k]) {
              all = false;
              break;
            }
          }
          hit = all;
        }
        break;
      }
    }
    if (!hit) return false;
  }
  return true;
}

}  // namespace netmark::textindex
