// CRC-32C (Castagnoli polynomial, software slice-by-one) — used to frame
// write-ahead-log records so a torn or bit-rotted tail is detected instead
// of replayed.

#ifndef NETMARK_COMMON_CRC32_H_
#define NETMARK_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace netmark {

/// Extends a running CRC-32C with `len` bytes. Start from `crc = 0`.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

/// CRC-32C of one buffer.
inline uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(0, data, len);
}
inline uint32_t Crc32c(std::string_view s) { return Crc32c(s.data(), s.size()); }

}  // namespace netmark

#endif  // NETMARK_COMMON_CRC32_H_
