#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/temp_dir.h"

namespace netmark {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("env");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    path_ = (dir_->path() / "file.bin").string();
  }
  std::unique_ptr<TempDir> dir_;
  std::string path_;
};

TEST_F(EnvTest, DefaultEnvRoundTrip) {
  Env* env = Env::Default();
  auto file = env->OpenFile(path_, /*create=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(0, "hello world", 11).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  auto size = (*file)->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);
  char buf[11];
  ASSERT_TRUE((*file)->Read(0, 11, buf).ok());
  EXPECT_EQ(std::string(buf, 11), "hello world");
  // Reading past EOF is a loud short-read error, never silent zeros.
  netmark::Status st = (*file)->Read(6, 11, buf);
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.ToString().find(path_), std::string::npos)
      << "error must carry the file path: " << st.ToString();
  ASSERT_TRUE((*file)->Truncate(5).ok());
  size = (*file)->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5u);
}

TEST_F(EnvTest, DefaultEnvMissingFileErrorsCarryPath) {
  Env* env = Env::Default();
  std::string missing = (dir_->path() / "nope.bin").string();
  auto file = env->OpenFile(missing, /*create=*/false);
  ASSERT_FALSE(file.ok());
  EXPECT_NE(file.status().ToString().find(missing), std::string::npos);
  EXPECT_FALSE(env->FileExists(missing));
  EXPECT_TRUE(env->ReadFileToString(missing).status().IsNotFound() ||
              env->ReadFileToString(missing).status().IsIOError());
}

TEST(FaultSpecTest, ParseAcceptsEveryKindAndRejectsGarbage) {
  auto spec = FaultSpec::Parse("read_eio:3");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->kind, FaultSpec::Kind::kReadEio);
  EXPECT_EQ(spec->nth, 3u);
  EXPECT_FALSE(spec->sticky);

  spec = FaultSpec::Parse("write_eio:1");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->kind, FaultSpec::Kind::kWriteEio);
  EXPECT_TRUE(spec->sticky);

  spec = FaultSpec::Parse("write_enospc:9");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->sticky);

  spec = FaultSpec::Parse("fsync_fail:2");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->sticky);

  ASSERT_TRUE(FaultSpec::Parse("write_short:5").ok());
  ASSERT_TRUE(FaultSpec::Parse("write_torn:5").ok());

  // The ":nth" suffix is optional and defaults to the first operation.
  spec = FaultSpec::Parse("write_eio");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->nth, 1u);

  EXPECT_FALSE(FaultSpec::Parse("").ok());
  EXPECT_FALSE(FaultSpec::Parse("write_eio:").ok());
  EXPECT_FALSE(FaultSpec::Parse("write_eio:0").ok());
  EXPECT_FALSE(FaultSpec::Parse("write_eio:abc").ok());
  EXPECT_FALSE(FaultSpec::Parse("bad_kind:1").ok());
}

TEST_F(EnvTest, ReadEioFiresOnceOnTheNthRead) {
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kReadEio;
  spec.nth = 2;
  FaultInjectingEnv env(spec);
  auto file = env.OpenFile(path_, /*create=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(0, "abcdef", 6).ok());
  char buf[6];
  ASSERT_TRUE((*file)->Read(0, 6, buf).ok());  // read #1 passes
  netmark::Status st = (*file)->Read(0, 6, buf);  // read #2 injected
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.ToString().find("(injected)"), std::string::npos);
  EXPECT_TRUE((*file)->Read(0, 6, buf).ok());  // one-shot: read #3 passes
  EXPECT_EQ(env.faults_injected(), 1u);
  EXPECT_EQ(env.reads(), 3u);
}

TEST_F(EnvTest, WriteEnospcIsStickyAndMapsToCapacityExceeded) {
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kWriteEnospc;
  spec.nth = 2;
  spec.sticky = true;
  FaultInjectingEnv env(spec);
  auto file = env.OpenFile(path_, /*create=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(0, "ok", 2).ok());
  netmark::Status st = (*file)->Write(2, "xx", 2);
  EXPECT_TRUE(st.IsCapacityExceeded()) << st.ToString();
  // Sticky: every later write keeps failing.
  EXPECT_TRUE((*file)->Write(4, "yy", 2).IsCapacityExceeded());
  EXPECT_EQ(env.faults_injected(), 2u);
}

TEST_F(EnvTest, FsyncFailIsSticky) {
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kFsyncFail;
  spec.nth = 1;
  spec.sticky = true;
  FaultInjectingEnv env(spec);
  auto file = env.OpenFile(path_, /*create=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(0, "data", 4).ok());
  EXPECT_TRUE((*file)->Sync().IsIOError());
  EXPECT_TRUE((*file)->Sync().IsIOError());
  EXPECT_EQ(env.syncs(), 2u);
}

TEST_F(EnvTest, ShortWriteIsTransparentlyCompleted) {
  // The injector splits the Nth write in two; File's retry loop must leave
  // callers none the wiser and the bytes intact.
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kWriteShort;
  spec.nth = 1;
  FaultInjectingEnv env(spec);
  auto file = env.OpenFile(path_, /*create=*/true);
  ASSERT_TRUE(file.ok());
  std::string payload(1000, 'z');
  ASSERT_TRUE((*file)->Write(0, payload.data(), payload.size()).ok());
  EXPECT_EQ(env.faults_injected(), 1u);
  std::string back(1000, '\0');
  ASSERT_TRUE((*file)->Read(0, back.size(), back.data()).ok());
  EXPECT_EQ(back, payload);
}

TEST_F(EnvTest, CountersSpanAllFilesOfTheEnv) {
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kWriteEio;
  spec.nth = 3;
  spec.sticky = true;
  FaultInjectingEnv env(spec);
  auto a = env.OpenFile((dir_->path() / "a.bin").string(), true);
  auto b = env.OpenFile((dir_->path() / "b.bin").string(), true);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*a)->Write(0, "1", 1).ok());  // write #1 (file a)
  ASSERT_TRUE((*b)->Write(0, "2", 1).ok());  // write #2 (file b)
  // Write #3 fires even though it is file a's second write: the count is
  // env-wide, matching "the 3rd write the storage layer issues".
  EXPECT_TRUE((*a)->Write(1, "3", 1).IsIOError());
}

TEST_F(EnvTest, TornWriteGarblesPrefixAndExits) {
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kWriteTorn;
  spec.nth = 1;
  std::string path = path_;
  EXPECT_EXIT(
      {
        FaultInjectingEnv env(spec);
        auto file = env.OpenFile(path, /*create=*/true);
        if (!file.ok()) ::_exit(99);
        std::string payload(512, 'A');
        (void)(*file)->Write(0, payload.data(), payload.size());
        ::_exit(0);  // unreachable: the torn write _exit()s first
      },
      ::testing::ExitedWithCode(41), "");
  // The child persisted (and synced) only a garbled prefix — the simulated
  // power cut mid-write that recovery and checksums must catch.
  auto contents = Env::Default()->ReadFileToString(path_);
  ASSERT_TRUE(contents.ok());
  EXPECT_LT(contents->size(), 512u);
  EXPECT_GT(contents->size(), 0u);
  EXPECT_NE((*contents)[0], 'A');  // first byte of the prefix is garbled
}

TEST_F(EnvTest, MaybeFaultInjectingEnvFromEnvironment) {
  ASSERT_EQ(::setenv("NETMARK_DISK_FAULT", "write_eio:5", 1), 0);
  auto env = MaybeFaultInjectingEnvFromEnvironment();
  EXPECT_NE(env, nullptr);
  ASSERT_EQ(::setenv("NETMARK_DISK_FAULT", "not-a-spec", 1), 0);
  EXPECT_EQ(MaybeFaultInjectingEnvFromEnvironment(), nullptr);
  ASSERT_EQ(::unsetenv("NETMARK_DISK_FAULT"), 0);
  EXPECT_EQ(MaybeFaultInjectingEnvFromEnvironment(), nullptr);
}

TEST_F(EnvTest, WriteFileAtomicReplacesContentsDurably) {
  Env* env = Env::Default();
  ASSERT_TRUE(env->WriteFileAtomic(path_, "first").ok());
  auto got = env->ReadFileToString(path_);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "first");
  ASSERT_TRUE(env->WriteFileAtomic(path_, "second").ok());
  got = env->ReadFileToString(path_);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "second");
  EXPECT_TRUE(env->FileExists(path_));
}

}  // namespace
}  // namespace netmark
