#include "query/plan.h"

#include <algorithm>

namespace netmark::query {

namespace {

/// The specialized loop proves the content predicate through the inverted
/// index, which answers exact-term membership. Phrase and prefix clauses
/// need the generic verify pass (phrases span positions, prefixes expand),
/// so only all-term content keys specialize.
bool AllTermClauses(const textindex::TextQuery& query) {
  return std::all_of(query.clauses.begin(), query.clauses.end(),
                     [](const textindex::QueryClause& clause) {
                       return clause.kind ==
                              textindex::QueryClause::Kind::kTerm;
                     });
}

}  // namespace

netmark::Result<std::shared_ptr<const QueryPlan>> BuildQueryPlan(
    const XdbQuery& query) {
  if (query.empty()) {
    return netmark::Status::InvalidArgument(
        "XDB query needs a Context, Content or XPath key");
  }
  auto plan = std::make_shared<QueryPlan>();
  if (query.has_xpath()) {
    if (query.has_context()) {
      return netmark::Status::InvalidArgument(
          "XPath and Context keys cannot be combined (use Content to "
          "pre-select documents)");
    }
    NETMARK_ASSIGN_OR_RETURN(xslt::XPath path, xslt::XPath::Parse(query.xpath));
    plan->kind = QueryPlan::Kind::kXPath;
    plan->xpath = std::make_shared<const xslt::XPath>(std::move(path));
    plan->content_query = textindex::ParseTextQuery(query.content);
    return std::shared_ptr<const QueryPlan>(std::move(plan));
  }
  plan->context_query = textindex::ParseTextQuery(query.context);
  plan->content_query = textindex::ParseTextQuery(query.content);
  if (query.has_context()) {
    plan->kind = (!plan->content_query.empty() &&
                  AllTermClauses(plan->content_query))
                     ? QueryPlan::Kind::kSectionSpecialized
                     : QueryPlan::Kind::kSection;
  } else {
    plan->kind = QueryPlan::Kind::kContentOnly;
  }
  return std::shared_ptr<const QueryPlan>(std::move(plan));
}

std::string QueryPlanShapeKey(const XdbQuery& query) {
  std::string key;
  key.reserve(query.context.size() + query.content.size() +
              query.xpath.size() + 3);
  key += query.context;
  key += '\x1f';
  key += query.content;
  key += '\x1f';
  key += query.xpath;
  return key;
}

void QueryPlanCache::Configure(Options options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  lru_.clear();
  index_.clear();
  if (handles_.entries != nullptr) handles_.entries->Set(0);
}

bool QueryPlanCache::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.enabled && options_.max_entries > 0;
}

std::shared_ptr<const QueryPlan> QueryPlanCache::Lookup(
    const std::string& shape_key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled || options_.max_entries == 0) return nullptr;
  auto it = index_.find(shape_key);
  if (it == index_.end()) {
    ++miss_count_;
    if (handles_.misses != nullptr) handles_.misses->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hit_count_;
  if (handles_.hits != nullptr) handles_.hits->Increment();
  return it->second->plan;
}

void QueryPlanCache::Insert(const std::string& shape_key,
                            std::shared_ptr<const QueryPlan> plan) {
  if (plan == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled || options_.max_entries == 0) return;
  if (index_.find(shape_key) != index_.end()) return;  // racing build, keep
  lru_.push_front(Entry{shape_key, std::move(plan)});
  index_.emplace(lru_.front().key, lru_.begin());
  while (lru_.size() > options_.max_entries) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evict_count_;
  }
  if (handles_.entries != nullptr) {
    handles_.entries->Set(static_cast<int64_t>(lru_.size()));
  }
}

QueryPlanCache::Snapshot QueryPlanCache::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.hits = hit_count_;
  snap.misses = miss_count_;
  snap.evictions = evict_count_;
  snap.entries = lru_.size();
  return snap;
}

void QueryPlanCache::BindMetrics(observability::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    handles_ = MetricHandles{};
    return;
  }
  handles_.hits = registry->GetCounter("netmark_query_plan_cache_hits_total");
  handles_.misses =
      registry->GetCounter("netmark_query_plan_cache_misses_total");
  handles_.entries = registry->GetGauge("netmark_query_plan_cache_entries");
  handles_.entries->Set(static_cast<int64_t>(lru_.size()));
}

}  // namespace netmark::query
