#include "federation/local_source.h"

#include "xml/serializer.h"

namespace netmark::federation {

netmark::Result<std::shared_ptr<LocalStoreSource>> LocalStoreSource::OpenOwned(
    std::string name, const std::string& dir) {
  NETMARK_ASSIGN_OR_RETURN(std::unique_ptr<xmlstore::XmlStore> store,
                           xmlstore::XmlStore::Open(dir));
  return std::shared_ptr<LocalStoreSource>(
      new LocalStoreSource(std::move(name), std::move(store)));
}

netmark::Result<std::vector<FederatedHit>> LocalStoreSource::Execute(
    const query::XdbQuery& query, const CallContext& ctx) {
  if (ctx.expired()) {
    return netmark::Status::DeadlineExceeded("local source " + name_ +
                                             ": deadline expired");
  }
  // One snapshot spans the query and the per-hit markup reconstruction so
  // the fragments match the hits even under concurrent ingestion.
  xmlstore::XmlStore::ReadSnapshot snapshot = store_->BeginRead();
  NETMARK_ASSIGN_OR_RETURN(std::vector<query::QueryHit> hits,
                           executor_.Execute(query, snapshot));
  std::vector<FederatedHit> out;
  out.reserve(hits.size());
  for (const query::QueryHit& hit : hits) {
    FederatedHit fh;
    fh.doc_id = hit.doc_id;
    fh.file_name = hit.file_name;
    fh.heading = hit.heading;
    fh.text = hit.text;
    if (hit.context.valid()) {
      // Include the section markup so downstream composition can embed it.
      auto fragment = store_->ReconstructSubtree(hit.context);
      if (fragment.ok()) {
        fh.markup = xml::Serialize(*fragment, fragment->root());
      }
    }
    out.push_back(std::move(fh));
  }
  return out;
}

}  // namespace netmark::federation
