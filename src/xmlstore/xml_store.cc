#include "xmlstore/xml_store.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <functional>
#include <iterator>
#include <map>
#include <thread>

#include "common/clock.h"
#include "common/string_util.h"

namespace netmark::xmlstore {

using storage::IndexKey;
using storage::Row;
using storage::RowId;
using storage::Value;

namespace {

/// One live pin held by this thread: either a ReadSnapshot's epoch pin or a
/// WriterView's kWriterEpoch marker. The registry is thread-local, so
/// resolving the calling thread's read epoch costs a short vector scan — no
/// shared state, no atomics, and snapshot nesting is a depth bump.
struct ThreadPin {
  const void* store;
  uint64_t epoch;
  int depth;
  int slot;  // pin_slots_ index, kOverflowSlot, or kWriterSlot
};

thread_local std::vector<ThreadPin> t_pins;

/// Sentinel slot for WriterView entries (no slot-table pin to release: the
/// writer reads its own working copies, which GC never touches).
constexpr int kWriterSlot = -2;

}  // namespace

std::string EncodeAttributes(const std::vector<xml::Attribute>& attrs) {
  std::string out;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i != 0) out += '&';
    out += netmark::UrlEncode(attrs[i].name);
    out += '=';
    out += netmark::UrlEncode(attrs[i].value);
  }
  return out;
}

netmark::Result<std::vector<xml::Attribute>> DecodeAttributes(std::string_view blob) {
  std::vector<xml::Attribute> out;
  if (blob.empty()) return out;
  for (const std::string& pair : netmark::Split(blob, '&')) {
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return netmark::Status::Corruption("bad attribute blob: " + pair);
    }
    xml::Attribute a;
    NETMARK_ASSIGN_OR_RETURN(a.name, netmark::UrlDecode(pair.substr(0, eq)));
    NETMARK_ASSIGN_OR_RETURN(a.value, netmark::UrlDecode(pair.substr(eq + 1)));
    out.push_back(std::move(a));
  }
  return out;
}

netmark::Result<std::unique_ptr<XmlStore>> XmlStore::Open(
    const std::string& dir, xml::NodeTypeConfig node_types,
    const storage::StorageOptions& storage_options) {
  // The XML store is built around epoch-pinned snapshots: MVCC is not
  // optional here (plain Database users may still opt out).
  storage::StorageOptions opts = storage_options;
  opts.mvcc_snapshots = true;
  NETMARK_ASSIGN_OR_RETURN(std::unique_ptr<storage::Database> db,
                           storage::Database::Open(dir, opts));
  std::unique_ptr<XmlStore> store(new XmlStore(std::move(db), std::move(node_types)));
  store->owned_metrics_ = std::make_unique<observability::MetricsRegistry>();
  store->metrics_ = store->owned_metrics_.get();
  store->BindHandles();
  store->snapshot_path_ = (std::filesystem::path(dir) / "textindex.snap").string();
  NETMARK_RETURN_NOT_OK(store->EnsureTables());
  // Fast path: a fresh snapshot skips the full rebuild scan. Any doubt —
  // missing, corrupt, or stale (row counts changed since it was written) —
  // falls back to rebuilding from the tables, which are the durable truth.
  auto snapshot =
      textindex::LoadIndexSnapshot(store->snapshot_path_, store->CurrentToken());
  if (snapshot.ok()) {
    store->text_index_ = std::move(snapshot->index);
    store->next_node_id_ = static_cast<int64_t>(snapshot->token.extra_a);
    store->next_doc_id_ = static_cast<int64_t>(snapshot->token.extra_b);
  } else {
    NETMARK_RETURN_NOT_OK(store->RebuildTextIndex());
  }
  store->last_commit_micros_.store(netmark::MonotonicMicros(),
                                   std::memory_order_relaxed);
  if (opts.mvcc_gc_interval_ms > 0) {
    store->gc_thread_ = std::thread(&XmlStore::GcLoop, store.get(),
                                    opts.mvcc_gc_interval_ms);
  }
  if (opts.scrub_pages_per_sec > 0) {
    store->scrub_thread_ = std::thread(&XmlStore::ScrubberLoop, store.get(),
                                       opts.scrub_pages_per_sec);
  }
  return store;
}

XmlStore::~XmlStore() {
  if (gc_thread_.joinable()) {
    gc_stop_.store(true, std::memory_order_release);
    gc_cv_.notify_all();
    gc_thread_.join();
  }
  if (scrub_thread_.joinable()) {
    scrub_stop_.store(true, std::memory_order_release);
    scrub_cv_.notify_all();
    scrub_thread_.join();
  }
}

// --- Snapshot pins ----------------------------------------------------------

XmlStore::ReadSnapshot XmlStore::BeginRead() const {
  active_readers_.fetch_add(1, std::memory_order_relaxed);
  // Re-entrant: share the thread's existing pin (reader or writer) so nested
  // snapshots observe the same view and cost one integer bump.
  for (auto it = t_pins.rbegin(); it != t_pins.rend(); ++it) {
    if (it->store == this) {
      ++it->depth;
      return ReadSnapshot(this, it->epoch);
    }
  }
  int slot = 0;
  uint64_t epoch = PinEpoch(&slot);
  t_pins.push_back(ThreadPin{this, epoch, 1, slot});
  return ReadSnapshot(this, epoch);
}

void XmlStore::ReadSnapshot::Release() {
  if (store_ != nullptr) {
    store_->EndRead();
    store_ = nullptr;
  }
}

void XmlStore::EndRead() const {
  active_readers_.fetch_sub(1, std::memory_order_relaxed);
  for (auto it = t_pins.rbegin(); it != t_pins.rend(); ++it) {
    if (it->store != this) continue;
    if (--it->depth == 0 && it->slot != kWriterSlot) {
      UnpinEpoch(it->slot, it->epoch);
      t_pins.erase(std::next(it).base());
    }
    return;
  }
}

uint64_t XmlStore::PinEpoch(int* slot_out) const {
  // Claim-recheck protocol (docs/mvcc.md): publish the pin first, then
  // verify the epoch did not advance past it. Everything is seq_cst, so if
  // the recheck passes, any GC pass that could drop this epoch's versions
  // either sees the pin in its scan or loaded its cap at/after our epoch —
  // both keep the versions alive.
  const size_t start =
      std::hash<std::thread::id>()(std::this_thread::get_id()) % kPinSlots;
  for (;;) {
    const uint64_t epoch = db_->commit_epoch();
    bool raced = false;
    for (size_t i = 0; i < kPinSlots; ++i) {
      const size_t s = (start + i) % kPinSlots;
      uint64_t expected = 0;
      if (!pin_slots_[s].compare_exchange_strong(expected, epoch + 1,
                                                 std::memory_order_seq_cst)) {
        continue;  // slot occupied
      }
      if (db_->commit_epoch() == epoch) {
        *slot_out = static_cast<int>(s);
        return epoch;
      }
      // A commit landed between the load and the claim: the pin might be
      // too late for the GC's cap argument. Undo and retry at the new epoch.
      pin_slots_[s].store(0, std::memory_order_seq_cst);
      raced = true;
      break;
    }
    if (raced) continue;
    // Every slot is taken (>= kPinSlots concurrent snapshots): spill into
    // the mutex-guarded overflow set, same claim-recheck.
    std::lock_guard<std::mutex> lock(pin_overflow_mu_);
    auto it = pin_overflow_.insert(epoch);
    if (db_->commit_epoch() == epoch) {
      *slot_out = kOverflowSlot;
      return epoch;
    }
    pin_overflow_.erase(it);
  }
}

void XmlStore::UnpinEpoch(int slot, uint64_t epoch) const {
  if (slot == kOverflowSlot) {
    std::lock_guard<std::mutex> lock(pin_overflow_mu_);
    auto it = pin_overflow_.find(epoch);
    if (it != pin_overflow_.end()) pin_overflow_.erase(it);
    return;
  }
  pin_slots_[static_cast<size_t>(slot)].store(0, std::memory_order_seq_cst);
}

std::vector<storage::Epoch> XmlStore::CollectPins() const {
  std::vector<storage::Epoch> pins;
  for (const auto& slot : pin_slots_) {
    uint64_t v = slot.load(std::memory_order_seq_cst);
    if (v != 0) pins.push_back(v - 1);
  }
  std::lock_guard<std::mutex> lock(pin_overflow_mu_);
  pins.insert(pins.end(), pin_overflow_.begin(), pin_overflow_.end());
  return pins;
}

uint64_t XmlStore::OldestPinnedEpoch() const {
  uint64_t oldest = db_->commit_epoch();
  for (const auto& slot : pin_slots_) {
    uint64_t v = slot.load(std::memory_order_seq_cst);
    if (v != 0) oldest = std::min(oldest, v - 1);
  }
  std::lock_guard<std::mutex> lock(pin_overflow_mu_);
  if (!pin_overflow_.empty()) oldest = std::min(oldest, *pin_overflow_.begin());
  return oldest;
}

storage::Epoch XmlStore::ResolveReadEpoch() const {
  for (auto it = t_pins.rbegin(); it != t_pins.rend(); ++it) {
    if (it->store == this) return it->epoch;
  }
  return storage::kLatestEpoch;
}

XmlStore::WriterView::WriterView(const XmlStore* store) : store_(store) {
  t_pins.push_back(
      ThreadPin{store, storage::kWriterEpoch, 1, kWriterSlot});
}

XmlStore::WriterView::~WriterView() {
  for (auto it = t_pins.rbegin(); it != t_pins.rend(); ++it) {
    if (it->store == store_ && it->slot == kWriterSlot) {
      t_pins.erase(std::next(it).base());
      return;
    }
  }
}

// --- Version GC -------------------------------------------------------------

uint64_t XmlStore::RunVersionGc() {
  // Load the cap BEFORE scanning pins: a reader whose pin races the scan is
  // then provably safe — its claim-recheck guarantees its epoch >= cap, and
  // the pager never drops a version whose successor postdates the cap.
  const storage::Epoch cap = db_->commit_epoch();
  std::vector<storage::Epoch> pins = CollectPins();
  pins.push_back(cap);
  std::sort(pins.begin(), pins.end());
  uint64_t reclaimed = db_->ReclaimVersions(pins, cap);
  ApplyPendingTextRemovals(pins.front());
  return reclaimed;
}

void XmlStore::GcLoop(int interval_ms) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(gc_mu_);
      gc_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms), [this] {
        return gc_stop_.load(std::memory_order_acquire);
      });
    }
    if (gc_stop_.load(std::memory_order_acquire)) return;
    RunVersionGc();
  }
}

void XmlStore::DeferTextRemoval(textindex::DocKey key, std::string text) {
  std::lock_guard<std::mutex> lock(pending_text_mu_);
  pending_text_removals_.push_back(
      PendingTextRemoval{key, std::move(text), 0, false});
}

void XmlStore::SealPendingTextRemovals(storage::Epoch epoch) {
  std::lock_guard<std::mutex> lock(pending_text_mu_);
  for (PendingTextRemoval& p : pending_text_removals_) {
    if (!p.sealed) {
      p.sealed = true;
      p.sealed_epoch = epoch;
    }
  }
}

uint64_t XmlStore::ApplyPendingTextRemovals(storage::Epoch watermark) {
  std::vector<PendingTextRemoval> ready;
  {
    std::lock_guard<std::mutex> lock(pending_text_mu_);
    auto keep = std::partition(
        pending_text_removals_.begin(), pending_text_removals_.end(),
        [&](const PendingTextRemoval& p) {
          return !p.sealed || p.sealed_epoch > watermark;
        });
    ready.assign(std::make_move_iterator(keep),
                 std::make_move_iterator(pending_text_removals_.end()));
    pending_text_removals_.erase(keep, pending_text_removals_.end());
  }
  // Outside pending_text_mu_: Remove takes the index's own lock.
  for (const PendingTextRemoval& p : ready) {
    text_index_.Remove(p.key, p.text);
  }
  return ready.size();
}

// --- Tables -----------------------------------------------------------------

textindex::SnapshotToken XmlStore::CurrentToken() const {
  textindex::SnapshotToken token;
  token.a = xml_table_ == nullptr ? 0 : xml_table_->row_count();
  token.b = doc_table_ == nullptr ? 0 : doc_table_->row_count();
  token.extra_a = static_cast<uint64_t>(next_node_id_);
  token.extra_b = static_cast<uint64_t>(next_doc_id_);
  return token;
}

netmark::Status XmlStore::EnsureTables() {
  if (!db_->HasTable("XML")) {
    // The *only* DDL NETMARK ever issues — independent of what documents
    // arrive later (the schema-less claim measured in bench_fig5_storage).
    NETMARK_RETURN_NOT_OK(db_->CreateTable(NodeRecord::Schema()).status());
    NETMARK_RETURN_NOT_OK(db_->CreateTable(DocRecord::Schema()).status());
    NETMARK_RETURN_NOT_OK(db_->CreateIndex("XML", "xml_by_doc", {"DOC_ID", "NODEID"}));
    NETMARK_RETURN_NOT_OK(db_->CreateIndex("XML", "xml_by_parent", {"PARENTNODEID"}));
    NETMARK_RETURN_NOT_OK(db_->CreateIndex("DOC", "doc_by_id", {"DOC_ID"}));
  }
  NETMARK_ASSIGN_OR_RETURN(xml_table_, db_->GetTable("XML"));
  NETMARK_ASSIGN_OR_RETURN(doc_table_, db_->GetTable("DOC"));
  return netmark::Status::OK();
}

netmark::Status XmlStore::RebuildTextIndex() {
  next_node_id_ = 1;
  next_doc_id_ = 1;
  NETMARK_RETURN_NOT_OK(xml_table_->Scan([&](RowId id, const Row& row) -> netmark::Status {
    NETMARK_ASSIGN_OR_RETURN(NodeRecord rec, NodeRecord::FromRow(row));
    next_node_id_ = std::max(next_node_id_, rec.node_id + 1);
    if (rec.is_text()) text_index_.Add(id.Pack(), rec.node_data);
    return netmark::Status::OK();
  }));
  NETMARK_RETURN_NOT_OK(doc_table_->Scan([&](RowId, const Row& row) -> netmark::Status {
    NETMARK_ASSIGN_OR_RETURN(DocRecord rec, DocRecord::FromRow(row));
    next_doc_id_ = std::max(next_doc_id_, rec.doc_id + 1);
    return netmark::Status::OK();
  }));
  return netmark::Status::OK();
}

netmark::Result<int64_t> XmlStore::InsertDocument(const xml::Document& doc,
                                                  const DocumentInfo& info) {
  return InsertPrepared(PrepareDocument(doc, info, node_types_));
}

netmark::Result<int64_t> XmlStore::InsertPrepared(const PreparedDocument& prepared) {
  std::lock_guard<std::mutex> lock(write_mu_);
  WriterView writer(this);
  NETMARK_RETURN_NOT_OK(db_->BeginTransaction());
  netmark::Result<int64_t> doc_id = InsertPreparedLocked(prepared);
  if (!doc_id.ok()) {
    db_->AbandonTransaction();
    return doc_id;
  }
  uint64_t epoch_before = db_->commit_epoch();
  netmark::Status committed = CommitTransactionLocked();
  if (!committed.ok()) {
    if (db_->commit_epoch() == epoch_before) {
      // The commit itself failed: nothing was published or acknowledged, so
      // the half-inserted in-memory rows must not become servable either.
      // Purge them before releasing the writer lock; the WriterView makes
      // the purge read its own uncommitted rows.
      (void)DeleteDocumentLocked(*doc_id);
      return committed;
    }
    // The commit landed durably; only the piggybacked size-triggered
    // checkpoint failed (and degraded the store). The document is on the
    // log and will survive a restart — acknowledge it.
  }
  return doc_id;
}

netmark::Result<int64_t> XmlStore::InsertPreparedLocked(const PreparedDocument& prepared) {
  int64_t doc_id = next_doc_id_++;
  DocRecord doc_rec;
  doc_rec.doc_id = doc_id;
  doc_rec.file_name = prepared.info.file_name;
  doc_rec.file_date = prepared.info.file_date;
  doc_rec.file_size = prepared.info.file_size;
  doc_rec.node_count = static_cast<int64_t>(prepared.nodes.size());
  NETMARK_RETURN_NOT_OK(doc_table_->Insert(doc_rec.ToRow()).status());

  // Pass 1: pre-order insert (`prepared.nodes` is in document order, parents
  // before children). Parent/prev links are known on the way down; SIBLINGID
  // (next sibling) is patched in pass 2.
  struct Inserted {
    RowId rowid;
    NodeRecord rec;
    bool needs_sibling_patch = false;
  };
  std::vector<Inserted> inserted;
  inserted.reserve(prepared.nodes.size());
  std::map<int64_t, size_t> last_child_of;  // parent_node_id -> index in `inserted`

  for (const PreparedNode& node : prepared.nodes) {
    NodeRecord rec;
    rec.node_id = next_node_id_++;
    rec.doc_id = doc_id;
    rec.node_type = node.node_type;
    rec.node_name = node.node_name;
    rec.node_data = node.node_data;
    if (node.parent == PreparedNode::kNoParent) {
      rec.parent_rowid = storage::kInvalidRowId;
      rec.parent_node_id = 0;
    } else {
      rec.parent_rowid = inserted[node.parent].rowid;
      rec.parent_node_id = inserted[node.parent].rec.node_id;
    }

    // Previous-sibling link.
    auto last_it = last_child_of.find(rec.parent_node_id);
    if (last_it != last_child_of.end()) {
      rec.prev_rowid = inserted[last_it->second].rowid;
    }

    NETMARK_ASSIGN_OR_RETURN(RowId rowid, xml_table_->Insert(rec.ToRow()));
    if (last_it != last_child_of.end()) {
      inserted[last_it->second].rec.sibling_rowid = rowid;
      inserted[last_it->second].needs_sibling_patch = true;
    }
    size_t my_index = inserted.size();
    int64_t parent_node_id = rec.parent_node_id;
    inserted.push_back(Inserted{rowid, std::move(rec), false});
    last_child_of[parent_node_id] = my_index;
  }

  // Pass 2: write back the forward sibling links.
  for (const Inserted& ins : inserted) {
    if (ins.needs_sibling_patch) {
      NETMARK_RETURN_NOT_OK(xml_table_->Update(ins.rowid, ins.rec.ToRow()));
    }
  }

  // Index text content under the final rowids, from the pre-tokenized
  // postings (no re-tokenization on the writer).
  for (size_t i = 0; i < prepared.nodes.size(); ++i) {
    if (prepared.nodes[i].is_text()) {
      text_index_.AddPrepared(inserted[i].rowid.Pack(), prepared.nodes[i].postings);
    }
  }
  return doc_id;
}

netmark::Result<std::vector<std::pair<RowId, NodeRecord>>> XmlStore::DocumentNodes(
    int64_t doc_id) const {
  const storage::Epoch epoch = ResolveReadEpoch();
  NETMARK_ASSIGN_OR_RETURN(
      std::vector<RowId> rowids,
      xml_table_->IndexPrefix("xml_by_doc", IndexKey{Value::Int(doc_id)}, epoch));
  std::vector<std::pair<RowId, NodeRecord>> out;
  out.reserve(rowids.size());
  for (RowId id : rowids) {
    NETMARK_ASSIGN_OR_RETURN(Row row, xml_table_->Get(id, epoch));
    NETMARK_ASSIGN_OR_RETURN(NodeRecord rec, NodeRecord::FromRow(row));
    out.emplace_back(id, std::move(rec));
  }
  return out;
}

netmark::Status XmlStore::DeleteDocument(int64_t doc_id) {
  std::lock_guard<std::mutex> lock(write_mu_);
  WriterView writer(this);
  NETMARK_RETURN_NOT_OK(db_->BeginTransaction());
  netmark::Status st = DeleteDocumentLocked(doc_id);
  if (!st.ok()) {
    db_->AbandonTransaction();
    return st;
  }
  return CommitTransactionLocked();
}

netmark::Status XmlStore::DeleteDocumentLocked(int64_t doc_id) {
  NETMARK_ASSIGN_OR_RETURN(auto nodes, DocumentNodes(doc_id));
  for (const auto& [rowid, rec] : nodes) {
    // Text postings are removed *deferred*: pinned snapshot readers must
    // keep resolving this document's text hits until GC passes their epoch.
    if (rec.is_text()) DeferTextRemoval(rowid.Pack(), rec.node_data);
    NETMARK_RETURN_NOT_OK(xml_table_->Delete(rowid));
  }
  NETMARK_ASSIGN_OR_RETURN(
      std::vector<RowId> doc_rows,
      doc_table_->IndexLookup("doc_by_id", IndexKey{Value::Int(doc_id)},
                              ResolveReadEpoch()));
  if (doc_rows.empty()) {
    return netmark::Status::NotFound(
        netmark::StringPrintf("no document %lld", static_cast<long long>(doc_id)));
  }
  for (RowId id : doc_rows) {
    NETMARK_RETURN_NOT_OK(doc_table_->Delete(id));
  }
  return netmark::Status::OK();
}

netmark::Result<DocRecord> XmlStore::GetDocumentInfo(int64_t doc_id) const {
  const storage::Epoch epoch = ResolveReadEpoch();
  NETMARK_ASSIGN_OR_RETURN(
      std::vector<RowId> doc_rows,
      doc_table_->IndexLookup("doc_by_id", IndexKey{Value::Int(doc_id)}, epoch));
  if (doc_rows.empty()) {
    return netmark::Status::NotFound(
        netmark::StringPrintf("no document %lld", static_cast<long long>(doc_id)));
  }
  NETMARK_ASSIGN_OR_RETURN(Row row, doc_table_->Get(doc_rows[0], epoch));
  return DocRecord::FromRow(row);
}

netmark::Result<std::vector<DocRecord>> XmlStore::ListDocuments() const {
  std::vector<DocRecord> out;
  NETMARK_RETURN_NOT_OK(doc_table_->Scan(
      [&](RowId, const Row& row) -> netmark::Status {
        NETMARK_ASSIGN_OR_RETURN(DocRecord rec, DocRecord::FromRow(row));
        out.push_back(std::move(rec));
        return netmark::Status::OK();
      },
      ResolveReadEpoch()));
  std::sort(out.begin(), out.end(),
            [](const DocRecord& a, const DocRecord& b) { return a.doc_id < b.doc_id; });
  return out;
}

uint64_t XmlStore::document_count() const { return doc_table_->row_count(); }
uint64_t XmlStore::node_count() const { return xml_table_->row_count(); }

namespace {

// Materializes one stored node into `target` under `parent`.
xml::NodeId MaterializeNode(const NodeRecord& rec, xml::Document* target,
                            xml::NodeId parent) {
  xml::NodeId id;
  if (rec.node_type == xml::NetmarkNodeType::kText) {
    if (rec.node_name == kCDataName) {
      id = target->CreateCData(rec.node_data);
    } else {
      id = target->CreateText(rec.node_data);
    }
  } else if (rec.node_name == kCommentName) {
    id = target->CreateComment(rec.node_data);
  } else if (!rec.node_name.empty() && rec.node_name[0] == kPiPrefix) {
    id = target->CreateProcessingInstruction(rec.node_name.substr(1), rec.node_data);
  } else {
    id = target->CreateElement(rec.node_name);
    auto attrs = DecodeAttributes(rec.node_data);
    if (attrs.ok()) {
      for (xml::Attribute& a : *attrs) {
        target->AddAttribute(id, std::move(a.name), std::move(a.value));
      }
    }
  }
  target->AppendChild(parent, id);
  return id;
}

}  // namespace

netmark::Result<xml::Document> XmlStore::Reconstruct(int64_t doc_id) const {
  NETMARK_ASSIGN_OR_RETURN(DocRecord info, GetDocumentInfo(doc_id));
  NETMARK_ASSIGN_OR_RETURN(auto nodes, DocumentNodes(doc_id));
  // Completeness gate: the index the lookup ran over is rebuilt at Open by
  // scanning the heap, and that scan skips quarantined (checksum-failed)
  // pages — rows lost that way are silently absent here, not errors. The
  // stored node count turns the silence back into a detectable failure.
  if (info.node_count > 0 &&
      static_cast<int64_t>(nodes.size()) != info.node_count) {
    if (quarantined_pages() > 0) {
      NoteQuarantinedDoc(doc_id);
      return netmark::Status::DataLoss(netmark::StringPrintf(
          "document %lld: %lld of %lld nodes lost to quarantined pages",
          static_cast<long long>(doc_id),
          static_cast<long long>(info.node_count -
                                 static_cast<int64_t>(nodes.size())),
          static_cast<long long>(info.node_count)));
    }
    return netmark::Status::Corruption(netmark::StringPrintf(
        "document %lld has %zu nodes, expected %lld",
        static_cast<long long>(doc_id), nodes.size(),
        static_cast<long long>(info.node_count)));
  }
  xml::Document out;
  std::map<int64_t, xml::NodeId> by_node_id;  // stored NODEID -> DOM id
  // `nodes` is in NODEID (pre-order) order, so parents precede children.
  for (const auto& [rowid, rec] : nodes) {
    xml::NodeId parent = out.root();
    if (rec.parent_node_id != 0) {
      auto it = by_node_id.find(rec.parent_node_id);
      if (it == by_node_id.end()) {
        return netmark::Status::Corruption(netmark::StringPrintf(
            "node %lld references missing parent %lld",
            static_cast<long long>(rec.node_id),
            static_cast<long long>(rec.parent_node_id)));
      }
      parent = it->second;
    }
    by_node_id[rec.node_id] = MaterializeNode(rec, &out, parent);
  }
  return out;
}

netmark::Result<xml::Document> XmlStore::ReconstructSubtree(RowId node) const {
  xml::Document out;
  struct Pending {
    RowId rowid;
    xml::NodeId parent;
  };
  std::vector<Pending> stack = {{node, out.root()}};
  while (!stack.empty()) {
    Pending p = stack.back();
    stack.pop_back();
    NETMARK_ASSIGN_OR_RETURN(NodeRecord rec, GetNode(p.rowid));
    xml::NodeId dom_id = MaterializeNode(rec, &out, p.parent);
    NETMARK_ASSIGN_OR_RETURN(std::vector<RowId> kids, Children(p.rowid));
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(Pending{*it, dom_id});
    }
  }
  return out;
}

netmark::Result<NodeRecord> XmlStore::GetNode(RowId id) const {
  NETMARK_ASSIGN_OR_RETURN(Row row, xml_table_->Get(id, ResolveReadEpoch()));
  return NodeRecord::FromRow(row);
}

netmark::Result<std::vector<RowId>> XmlStore::Children(RowId node) const {
  const storage::Epoch epoch = ResolveReadEpoch();
  NETMARK_ASSIGN_OR_RETURN(NodeRecord rec, GetNode(node));
  NETMARK_ASSIGN_OR_RETURN(
      std::vector<RowId> rowids,
      xml_table_->IndexLookup("xml_by_parent", IndexKey{Value::Int(rec.node_id)},
                              epoch));
  // Order by NODEID (document order).
  std::vector<std::pair<int64_t, RowId>> keyed;
  keyed.reserve(rowids.size());
  for (RowId id : rowids) {
    NETMARK_ASSIGN_OR_RETURN(NodeRecord child, GetNode(id));
    keyed.emplace_back(child.node_id, id);
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<RowId> out;
  out.reserve(keyed.size());
  for (const auto& [node_id, id] : keyed) out.push_back(id);
  return out;
}

netmark::Result<std::vector<RowId>> XmlStore::NodesWithParent(
    int64_t parent_node_id) const {
  return xml_table_->IndexLookup("xml_by_parent",
                                 IndexKey{Value::Int(parent_node_id)},
                                 ResolveReadEpoch());
}

netmark::Result<RowId> XmlStore::NodeByDocAndId(int64_t doc_id, int64_t node_id) const {
  NETMARK_ASSIGN_OR_RETURN(
      std::vector<RowId> hits,
      xml_table_->IndexLookup("xml_by_doc",
                              IndexKey{Value::Int(doc_id), Value::Int(node_id)},
                              ResolveReadEpoch()));
  if (hits.empty()) {
    return netmark::Status::NotFound(netmark::StringPrintf(
        "no node %lld in document %lld", static_cast<long long>(node_id),
        static_cast<long long>(doc_id)));
  }
  return hits[0];
}

netmark::Result<std::string> XmlStore::SubtreeText(RowId node) const {
  std::string out;
  std::vector<RowId> stack = {node};
  while (!stack.empty()) {
    RowId id = stack.back();
    stack.pop_back();
    NETMARK_ASSIGN_OR_RETURN(NodeRecord rec, GetNode(id));
    if (rec.is_text()) {
      if (!out.empty()) out += ' ';
      out += rec.node_data;
      continue;
    }
    NETMARK_ASSIGN_OR_RETURN(std::vector<RowId> kids, Children(id));
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

std::vector<RowId> XmlStore::TextLookup(std::string_view term) const {
  std::vector<RowId> out;
  for (textindex::DocKey key : text_index_.LookupTerm(term)) {
    out.push_back(RowId::Unpack(key));
  }
  return out;
}

netmark::Result<std::vector<RowId>> XmlStore::TextScanLookup(
    std::string_view term) const {
  std::string folded = netmark::ToLower(term);
  std::vector<RowId> out;
  NETMARK_RETURN_NOT_OK(xml_table_->Scan(
      [&](RowId id, const Row& row) -> netmark::Status {
        NETMARK_ASSIGN_OR_RETURN(NodeRecord rec, NodeRecord::FromRow(row));
        if (!rec.is_text()) return netmark::Status::OK();
        for (const std::string& tok : textindex::TokenizeTerms(rec.node_data)) {
          if (tok == folded) {
            out.push_back(id);
            break;
          }
        }
        return netmark::Status::OK();
      },
      ResolveReadEpoch()));
  return out;
}

netmark::Status XmlStore::Flush() {
  std::lock_guard<std::mutex> lock(write_mu_);
  return CheckpointLocked();
}

netmark::Status XmlStore::Checkpoint() {
  std::lock_guard<std::mutex> lock(write_mu_);
  return CheckpointLocked();
}

netmark::Status XmlStore::CheckpointLocked() {
  observability::ScopedTimer timer(handles_.checkpoint_micros);
  NETMARK_RETURN_NOT_OK(db_->Flush());  // full checkpoint when the WAL is on
  handles_.checkpoints->Increment();
  PublishWalCounters();
  // Best effort: a failed snapshot write is not fatal (the next Open simply
  // rebuilds), but surface real I/O errors so operators notice.
  return textindex::SaveIndexSnapshot(text_index_, CurrentToken(), snapshot_path_);
}

netmark::Status XmlStore::CommitTransactionLocked() {
  {
    observability::ScopedTimer timer(handles_.commit_micros);
    NETMARK_RETURN_NOT_OK(db_->CommitTransaction());
  }
  // Publish the new consistent view: pages become visible under the next
  // epoch atomically, queued index/posting removals are sealed with it, and
  // snapshots taken from here on observe this mutation. Readers pinned at
  // older epochs are untouched — no lock is involved.
  storage::Epoch epoch = db_->PublishVersions();
  SealPendingTextRemovals(epoch);
  last_commit_micros_.store(netmark::MonotonicMicros(), std::memory_order_relaxed);
  PublishWalCounters();
  // Size-triggered checkpoint: bounds both log growth and recovery time.
  if (db_->ShouldCheckpoint()) return CheckpointLocked();
  return netmark::Status::OK();
}

netmark::Status XmlStore::SyncWal() {
  std::lock_guard<std::mutex> lock(write_mu_);
  netmark::Status st = db_->SyncWal();
  PublishWalCounters();
  return st;
}

void XmlStore::ScrubBatch(int budget, size_t* table_idx,
                          storage::PageId* next_page) const {
  storage::Table* tables[2] = {xml_table_, doc_table_};
  for (int i = 0; i < budget; ++i) {
    storage::Pager* pager = tables[*table_idx]->mutable_pager();
    if (*next_page >= pager->page_count()) {
      *table_idx = (*table_idx + 1) % 2;
      *next_page = 0;
      if (*table_idx == 0) scrub_passes_.fetch_add(1, std::memory_order_relaxed);
      pager = tables[*table_idx]->mutable_pager();
      if (pager->page_count() == 0) break;  // wrapped onto an empty table
    }
    auto verified = pager->VerifyOnDisk((*next_page)++);
    scrub_pages_scanned_.fetch_add(1, std::memory_order_relaxed);
    // A transient read error is not corruption, but it is a page the scrub
    // could not vouch for — count both so operators see movement.
    if (!verified.ok() || !*verified) {
      scrub_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void XmlStore::ScrubberLoop(int pages_per_sec) {
  // 100ms ticks: small batches keep the writer-lock hold short, so scrubbing
  // never stalls a mutation for long (readers are unaffected either way —
  // they pin epochs, not locks).
  const int batch = std::max(1, pages_per_sec / 10);
  size_t table_idx = 0;
  storage::PageId next_page = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(scrub_mu_);
      scrub_cv_.wait_for(lock, std::chrono::milliseconds(100), [this] {
        return scrub_stop_.load(std::memory_order_acquire);
      });
    }
    if (scrub_stop_.load(std::memory_order_acquire)) return;
    // Holding write_mu_ excludes Flush: no write can land between the
    // disk read and the CRC check, so a mismatch is real disk rot.
    std::lock_guard<std::mutex> lock(write_mu_);
    ScrubBatch(batch, &table_idx, &next_page);
  }
}

XmlStore::ScrubStats XmlStore::ScrubAll() const {
  // See ScrubberLoop: the writer lock keeps the CRC probe honest.
  std::lock_guard<std::mutex> lock(write_mu_);
  ScrubStats stats;
  for (storage::Table* table : {xml_table_, doc_table_}) {
    storage::Pager* pager = table->mutable_pager();
    for (storage::PageId id = 0; id < pager->page_count(); ++id) {
      auto verified = pager->VerifyOnDisk(id);
      ++stats.pages_scanned;
      if (!verified.ok() || !*verified) ++stats.errors_found;
    }
  }
  scrub_pages_scanned_.fetch_add(stats.pages_scanned, std::memory_order_relaxed);
  scrub_errors_.fetch_add(stats.errors_found, std::memory_order_relaxed);
  scrub_passes_.fetch_add(1, std::memory_order_relaxed);
  return stats;
}

uint64_t XmlStore::quarantined_pages() const {
  return xml_table_->pager().quarantined_count() +
         doc_table_->pager().quarantined_count();
}

uint64_t XmlStore::quarantined_doc_count() const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return quarantined_docs_.size();
}

std::vector<int64_t> XmlStore::QuarantinedDocs() const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return std::vector<int64_t>(quarantined_docs_.begin(), quarantined_docs_.end());
}

void XmlStore::NoteQuarantinedDoc(int64_t doc_id) const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  quarantined_docs_.insert(doc_id);
}

void XmlStore::BindMetrics(observability::MetricsRegistry* registry) {
  if (registry == nullptr || registry == metrics_) return;
  metrics_ = registry;
  BindHandles();
}

void XmlStore::BindHandles() {
  handles_.wal_bytes = metrics_->GetCounter("netmark_wal_bytes_appended_total");
  handles_.wal_records = metrics_->GetCounter("netmark_wal_records_total");
  handles_.wal_fsyncs = metrics_->GetCounter("netmark_wal_fsyncs_total");
  handles_.wal_commits = metrics_->GetCounter("netmark_wal_commits_total");
  handles_.checkpoints = metrics_->GetCounter("netmark_checkpoints_total");
  handles_.commit_micros = metrics_->GetHistogram("netmark_wal_commit_micros");
  handles_.checkpoint_micros =
      metrics_->GetHistogram("netmark_checkpoint_micros");
  metrics_->SetCallbackGauge("netmark_wal_size_bytes", {}, [this] {
    const storage::Wal* wal = db_->wal();
    return wal == nullptr ? 0.0 : static_cast<double>(wal->size_bytes());
  });
  metrics_->SetCallbackGauge("netmark_wal_last_checkpoint_lsn", {}, [this] {
    return static_cast<double>(db_->last_checkpoint_lsn());
  });
  metrics_->SetCallbackGauge("netmark_storage_recovery_performed", {}, [this] {
    return db_->recovery_stats().performed ? 1.0 : 0.0;
  });
  metrics_->SetCallbackGauge("netmark_storage_recovery_micros", {}, [this] {
    return static_cast<double>(db_->recovery_stats().micros);
  });
  metrics_->SetCallbackGauge("netmark_storage_recovery_pages_applied", {}, [this] {
    return static_cast<double>(db_->recovery_stats().pages_applied);
  });
  // Snapshot-isolation view of the serving path (docs/serving.md,
  // docs/mvcc.md).
  metrics_->SetCallbackGauge("netmark_snapshot_epoch", {}, [this] {
    return static_cast<double>(db_->commit_epoch());
  });
  metrics_->SetCallbackGauge("netmark_snapshot_active_readers", {}, [this] {
    return static_cast<double>(active_readers_.load(std::memory_order_relaxed));
  });
  metrics_->SetCallbackGauge("netmark_snapshot_age_seconds", {}, [this] {
    int64_t last = last_commit_micros_.load(std::memory_order_relaxed);
    if (last == 0) return 0.0;
    return static_cast<double>(netmark::MonotonicMicros() - last) / 1e6;
  });
  // MVCC version lifecycle (docs/mvcc.md).
  metrics_->SetCallbackGauge("netmark_mvcc_versions_retained", {}, [this] {
    return static_cast<double>(db_->retained_versions());
  });
  metrics_->SetCallbackGauge("netmark_mvcc_oldest_pinned_epoch", {}, [this] {
    return static_cast<double>(OldestPinnedEpoch());
  });
  metrics_->SetCallbackCounter("netmark_mvcc_gc_reclaimed_total", {}, [this] {
    return db_->versions_reclaimed();
  });
  // Disk-fault containment (docs/durability.md). Scrub totals live in
  // atomics (the scrubber thread must not race a BindMetrics re-home), so
  // they surface as callback counters — the `_total` names are monotonic
  // and must carry `# TYPE ... counter`, not gauge.
  metrics_->SetCallbackCounter("netmark_scrub_pages_total", {}, [this] {
    return scrub_pages_scanned_.load(std::memory_order_relaxed);
  });
  metrics_->SetCallbackCounter("netmark_scrub_errors_total", {}, [this] {
    return scrub_errors_.load(std::memory_order_relaxed);
  });
  metrics_->SetCallbackCounter("netmark_scrub_passes_total", {}, [this] {
    return scrub_passes_.load(std::memory_order_relaxed);
  });
  metrics_->SetCallbackGauge("netmark_storage_quarantined_pages", {}, [this] {
    return static_cast<double>(quarantined_pages());
  });
  metrics_->SetCallbackGauge("netmark_storage_quarantined_docs", {}, [this] {
    return static_cast<double>(quarantined_doc_count());
  });
  metrics_->SetCallbackGauge("netmark_storage_degraded", {}, [this] {
    return db_->degraded() ? 1.0 : 0.0;
  });
}

void XmlStore::PublishWalCounters() {
  const storage::Wal* wal = db_->wal();
  if (wal == nullptr) return;
  // Single-writer deltas: wal counters only advance under write_mu_, which
  // the caller holds.
  uint64_t bytes = wal->bytes_appended();
  uint64_t records = wal->records_appended();
  uint64_t fsyncs = wal->fsyncs();
  uint64_t commits = wal->commits();
  handles_.wal_bytes->Increment(bytes - wal_seen_.bytes);
  handles_.wal_records->Increment(records - wal_seen_.records);
  handles_.wal_fsyncs->Increment(fsyncs - wal_seen_.fsyncs);
  handles_.wal_commits->Increment(commits - wal_seen_.commits);
  wal_seen_ = {bytes, records, fsyncs, commits};
}

netmark::Result<std::vector<RowId>> XmlStore::TextScanMatch(
    const textindex::TextQuery& query) const {
  std::vector<RowId> out;
  if (query.empty()) return out;
  NETMARK_RETURN_NOT_OK(xml_table_->Scan(
      [&](RowId id, const Row& row) -> netmark::Status {
        NETMARK_ASSIGN_OR_RETURN(NodeRecord rec, NodeRecord::FromRow(row));
        if (rec.is_text() && textindex::Matches(query, rec.node_data)) {
          out.push_back(id);
        }
        return netmark::Status::OK();
      },
      ResolveReadEpoch()));
  return out;
}

}  // namespace netmark::xmlstore
