#include "textindex/tokenizer.h"

#include <gtest/gtest.h>

namespace netmark::textindex {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnum) {
  auto terms = TokenizeTerms("The Shuttle, engine #3 (anomaly).");
  ASSERT_EQ(terms.size(), 5u);
  EXPECT_EQ(terms[0], "the");
  EXPECT_EQ(terms[1], "shuttle");
  EXPECT_EQ(terms[2], "engine");
  EXPECT_EQ(terms[3], "3");
  EXPECT_EQ(terms[4], "anomaly");
}

TEST(TokenizerTest, PositionsAreOrdinals) {
  auto tokens = Tokenize("alpha  beta,gamma");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 1u);
  EXPECT_EQ(tokens[2].position, 2u);
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   ,.;:!?()[]").empty());
}

TEST(TokenizerTest, CaseFolded) {
  auto terms = TokenizeTerms("NASA NeTmArK");
  EXPECT_EQ(terms[0], "nasa");
  EXPECT_EQ(terms[1], "netmark");
}

TEST(TokenizerTest, Utf8BytesStayInTerms) {
  auto terms = TokenizeTerms("caf\xC3\xA9 m\xC3\xBCnchen");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "caf\xC3\xA9");
  EXPECT_EQ(terms[1], "m\xC3\xBCnchen");
}

TEST(TokenizerTest, HyphenationSplits) {
  auto terms = TokenizeTerms("on-the-fly schema-less");
  ASSERT_EQ(terms.size(), 5u);
  EXPECT_EQ(terms[2], "fly");
  EXPECT_EQ(terms[3], "schema");
}

TEST(TokenizerTest, DigitsAndMixedTokens) {
  auto terms = TokenizeTerms("FY2005 budget is 12.5 million");
  ASSERT_EQ(terms.size(), 6u);
  EXPECT_EQ(terms[0], "fy2005");
  EXPECT_EQ(terms[3], "12");
  EXPECT_EQ(terms[4], "5");
}

}  // namespace
}  // namespace netmark::textindex
