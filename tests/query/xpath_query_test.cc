// Tests for the xpath= XDB query mode ("full-fledged XML querying",
// paper §2.1.5).

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "query/compose.h"
#include "query/executor.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace netmark::query {
namespace {

class XPathQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = netmark::TempDir::Make("xpathq");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<netmark::TempDir>(std::move(*dir));
    auto store = xmlstore::XmlStore::Open(dir_->str());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    Insert("sheet1.xml",
           "<document><table>"
           "<row n=\"1\"><cell name=\"task\">alpha</cell>"
           "<cell name=\"fy2005\">100</cell></row>"
           "<row n=\"2\"><cell name=\"task\">beta</cell>"
           "<cell name=\"fy2005\">250</cell></row>"
           "</table></document>");
    Insert("sheet2.xml",
           "<document><table>"
           "<row n=\"1\"><cell name=\"task\">gamma shuttle</cell>"
           "<cell name=\"fy2005\">300</cell></row>"
           "</table></document>");
  }

  void Insert(const std::string& name, const char* markup) {
    auto doc = xml::ParseXml(markup);
    ASSERT_TRUE(doc.ok());
    xmlstore::DocumentInfo info;
    info.file_name = name;
    ASSERT_TRUE(store_->InsertDocument(*doc, info).ok());
  }

  std::vector<QueryHit> Run(const std::string& query_string) {
    auto q = ParseXdbQuery(query_string);
    EXPECT_TRUE(q.ok());
    QueryExecutor executor(store_.get());
    auto hits = executor.Execute(*q);
    EXPECT_TRUE(hits.ok()) << hits.status().ToString();
    return hits.ok() ? *hits : std::vector<QueryHit>{};
  }

  std::unique_ptr<netmark::TempDir> dir_;
  std::unique_ptr<xmlstore::XmlStore> store_;
};

TEST_F(XPathQueryTest, SelectsNodesAcrossAllDocuments) {
  auto hits = Run("xpath=//row");
  EXPECT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].file_name, "sheet1.xml");
  EXPECT_EQ(hits[2].file_name, "sheet2.xml");
}

TEST_F(XPathQueryTest, PredicatesAndAttributesWork) {
  auto hits = Run("xpath=//cell%5B%40name%3D%27fy2005%27%5D");  // //cell[@name='fy2005']
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].text, "100");
  EXPECT_EQ(hits[1].text, "250");
  EXPECT_EQ(hits[2].text, "300");
  EXPECT_NE(hits[0].markup.find("<cell name=\"fy2005\">100</cell>"),
            std::string::npos);
}

TEST_F(XPathQueryTest, ContentKeyPreselectsDocuments) {
  // Only sheet2 mentions "shuttle"; xpath applies within it.
  auto hits = Run("xpath=//row&content=shuttle");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file_name, "sheet2.xml");
}

TEST_F(XPathQueryTest, DocScopeApplies) {
  auto hits = Run("xpath=//row&doc=1");
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(XPathQueryTest, CombiningWithContextIsRejected) {
  QueryExecutor executor(store_.get());
  XdbQuery q;
  q.xpath = "//row";
  q.context = "Budget";
  EXPECT_TRUE(executor.Execute(q).status().IsInvalidArgument());
}

TEST_F(XPathQueryTest, BadXPathIsAnError) {
  QueryExecutor executor(store_.get());
  XdbQuery q;
  q.xpath = "//row[";
  EXPECT_TRUE(executor.Execute(q).status().IsParseError());
}

TEST_F(XPathQueryTest, ComposedResultsEmbedFragments) {
  auto q = ParseXdbQuery("xpath=//row%5B%40n%3D%272%27%5D");  // //row[@n='2']
  ASSERT_TRUE(q.ok());
  QueryExecutor executor(store_.get());
  auto hits = executor.Execute(*q);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  auto composed = ComposeResults(*store_, *q, *hits);
  ASSERT_TRUE(composed.ok());
  std::string xml_text = xml::Serialize(*composed);
  EXPECT_NE(xml_text.find("<row n=\"2\">"), std::string::npos);
  EXPECT_NE(xml_text.find("beta"), std::string::npos);
  EXPECT_EQ(xml_text.find("alpha"), std::string::npos);
}

TEST_F(XPathQueryTest, QueryStringRoundTripIncludesXPath) {
  XdbQuery q;
  q.xpath = "//cell[@name='task']";
  auto parsed = ParseXdbQuery(q.ToQueryString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->xpath, q.xpath);
}

}  // namespace
}  // namespace netmark::query
