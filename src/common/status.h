// Status: the error-reporting type used across all NETMARK libraries.
//
// NETMARK follows the Arrow/RocksDB idiom: functions that can fail return a
// Status (or a Result<T>, see result.h) instead of throwing. Exceptions never
// cross library boundaries.

#ifndef NETMARK_COMMON_STATUS_H_
#define NETMARK_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace netmark {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIOError = 4,
  kCorruption = 5,
  kNotImplemented = 6,
  kParseError = 7,
  kCapacityExceeded = 8,
  kUnavailable = 9,
  kTimeout = 10,
  kInternal = 11,
  kDeadlineExceeded = 12,
  kDataLoss = 13,
  kSnapshotTooOld = 14,
};

/// \brief Human-readable name of a StatusCode ("Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or a code plus message.
///
/// An OK Status carries no allocation; error states allocate a small state
/// block. Status is cheap to move and to test.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(message)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory for the (stateless) OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status SnapshotTooOld(std::string msg) {
    return Status(StatusCode::kSnapshotTooOld, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsCapacityExceeded() const { return code() == StatusCode::kCapacityExceeded; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const { return code() == StatusCode::kDeadlineExceeded; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  bool IsSnapshotTooOld() const { return code() == StatusCode::kSnapshotTooOld; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// \brief Returns this status with `context` prefixed to the message.
  Status WithContext(std::string_view context) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // nullptr means OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace netmark

/// Propagates an error Status from an expression; evaluates to void on OK.
#define NETMARK_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::netmark::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define NETMARK_ASSIGN_OR_RETURN(lhs, rexpr)        \
  NETMARK_ASSIGN_OR_RETURN_IMPL(                    \
      NETMARK_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define NETMARK_CONCAT_INNER_(a, b) a##b
#define NETMARK_CONCAT_(a, b) NETMARK_CONCAT_INNER_(a, b)

#define NETMARK_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie();

#endif  // NETMARK_COMMON_STATUS_H_
