// W3C traceparent parsing/formatting and id generation: the wire format
// that carries a trace across NETMARK instances.

#include "observability/trace_context.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace netmark::observability {
namespace {

TEST(TraceContextTest, ParsesWellFormedHeader) {
  auto ctx = ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01");
  ASSERT_TRUE(ctx.has_value());
  EXPECT_EQ(ctx->trace_id, "4bf92f3577b34da6a3ce929d0e0e4736");
  EXPECT_EQ(ctx->span_id, "00f067aa0ba902b7");
  EXPECT_TRUE(ctx->sampled);
}

TEST(TraceContextTest, ReadsSampledFlag) {
  auto ctx = ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00");
  ASSERT_TRUE(ctx.has_value());
  EXPECT_FALSE(ctx->sampled);
}

TEST(TraceContextTest, RejectsMalformedHeaders) {
  // Per spec: an invalid header means "start a fresh trace", so all of
  // these must come back empty rather than half-parsed.
  const char* bad[] = {
      "",
      "00",
      // Wrong lengths.
      "00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01",
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b-01",
      // Uppercase hex is invalid on the wire.
      "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
      // Non-hex garbage.
      "00-zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
      // All-zero ids are explicitly invalid.
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
      "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
      // Version ff is reserved.
      "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
      // Wrong separators.
      "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
      // Version 00 allows no trailing data.
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
  };
  for (const char* header : bad) {
    EXPECT_FALSE(ParseTraceparent(header).has_value()) << header;
  }
}

TEST(TraceContextTest, FutureVersionWithExtraFieldsParses) {
  // Forward compatibility: a later version may append fields after the
  // flags, separated by a dash.
  auto ctx = ParseTraceparent(
      "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-what-else");
  ASSERT_TRUE(ctx.has_value());
  EXPECT_EQ(ctx->trace_id, "4bf92f3577b34da6a3ce929d0e0e4736");
}

TEST(TraceContextTest, FormatRoundTrips) {
  std::string header = FormatTraceparent("4bf92f3577b34da6a3ce929d0e0e4736",
                                         "00f067aa0ba902b7");
  EXPECT_EQ(header, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01");
  auto ctx = ParseTraceparent(header);
  ASSERT_TRUE(ctx.has_value());
  EXPECT_EQ(ctx->trace_id, "4bf92f3577b34da6a3ce929d0e0e4736");
  EXPECT_EQ(FormatTraceparent("4bf92f3577b34da6a3ce929d0e0e4736",
                              "00f067aa0ba902b7", /*sampled=*/false)
                .back(),
            '0');
}

TEST(TraceContextTest, GeneratedIdsAreValidAndDistinct) {
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) {
    std::string id = GenerateTraceId();
    ASSERT_EQ(id.size(), 32u);
    for (char c : id) {
      ASSERT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << id;
    }
    EXPECT_NE(id, "00000000000000000000000000000000");
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 200u);
}

TEST(TraceContextTest, DerivedSpanIdsAreStableAndPerSpan) {
  const std::string trace_id = "4bf92f3577b34da6a3ce929d0e0e4736";
  std::string a = DeriveSpanId(trace_id, 0);
  std::string b = DeriveSpanId(trace_id, 1);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_NE(a, b);
  EXPECT_NE(a, "0000000000000000");
  // Deterministic: the remote only echoes it, so re-deriving must agree.
  EXPECT_EQ(a, DeriveSpanId(trace_id, 0));
}

}  // namespace
}  // namespace netmark::observability
