#include "convert/nrt_converter.h"

#include "common/string_util.h"

namespace netmark::convert {

namespace {

struct FontState {
  int size = 11;
  bool bold = false;
  bool italic = false;

  bool IsHeading() const { return size >= 16 || (bold && size >= 12); }
};

}  // namespace

bool NrtConverter::Sniff(std::string_view content) const {
  std::string_view t = netmark::TrimView(content);
  return netmark::StartsWith(t, ".font") || netmark::StartsWith(t, ".meta") ||
         netmark::StartsWith(t, ".page");
}

netmark::Result<xml::Document> NrtConverter::Convert(std::string_view content,
                                                     const ConvertContext& ctx) const {
  UpmarkBuilder builder(ctx.file_name, format());
  xml::Document* doc = builder.doc();
  FontState font;
  std::string paragraph;
  bool paragraph_emphasis = false;
  int page = 1;

  auto flush = [&]() {
    if (paragraph.empty()) return;
    xml::NodeId p = doc->CreateElement("p");
    if (paragraph_emphasis) {
      // Whole-paragraph emphasis becomes INTENSE markup.
      xml::NodeId b = doc->CreateElement(font.bold ? "b" : "em");
      doc->AppendChild(b, doc->CreateText(std::move(paragraph)));
      doc->AppendChild(p, b);
    } else {
      doc->AppendChild(p, doc->CreateText(std::move(paragraph)));
    }
    builder.AddBlock(p);
    paragraph.clear();
    paragraph_emphasis = false;
  };

  for (const std::string& raw : netmark::Split(content, '\n')) {
    std::string_view line = netmark::TrimView(raw);
    if (line.empty()) {
      flush();
      continue;
    }
    if (line[0] == '.') {
      std::vector<std::string> parts = netmark::SplitAndTrim(line, ' ');
      const std::string& directive = parts[0];
      if (directive == ".font") {
        flush();
        FontState next;
        if (parts.size() >= 2) {
          auto size = netmark::ParseInt64(parts[1]);
          if (!size.ok()) {
            return netmark::Status::ParseError("bad .font size in " + ctx.file_name +
                                               ": " + parts[1]);
          }
          next.size = static_cast<int>(*size);
        }
        for (size_t i = 2; i < parts.size(); ++i) {
          if (parts[i] == "bold") next.bold = true;
          else if (parts[i] == "italic") next.italic = true;
        }
        font = next;
        continue;
      }
      if (directive == ".page") {
        flush();
        ++page;
        continue;
      }
      if (directive == ".meta") {
        if (parts.size() >= 3) {
          xml::NodeId meta = doc->CreateElement("netmark:meta");
          doc->AddAttribute(meta, parts[1],
                            netmark::Join({parts.begin() + 2, parts.end()}, " "));
          builder.AddBlock(meta);
        }
        continue;
      }
      // Unknown directive: preserve as text (tolerance).
    }
    if (font.IsHeading()) {
      flush();
      builder.BeginSection(std::string(line));
      continue;
    }
    if (!paragraph.empty()) paragraph += ' ';
    paragraph += line;
    paragraph_emphasis = font.bold || font.italic;
  }
  flush();
  (void)page;
  return builder.Finish();
}

}  // namespace netmark::convert
