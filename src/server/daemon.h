// The NETMARK DAEMON (paper Fig 3): watches a drop folder, runs the SGML
// parser / upmark converters on new files, and inserts them into the XML
// Store — the drag-and-drop ingestion path.
//
// Ingestion is a staged pipeline (DESIGN.md §"Parallel ingestion"):
//
//   enumerate (sorted) -> bounded work queue -> N upmark/parse workers
//     -> reorder buffer -> single writer -> XML Store + text index
//
// Workers do the CPU-heavy, state-free half (read file, convert, flatten,
// tokenize: xmlstore::PrepareDocument); the sweep thread is the only one
// that touches the store (XmlStore::InsertPrepared), committing results in
// sorted-filename order so doc-id assignment is deterministic regardless of
// worker count or completion order.
//
// Pipeline counters and per-stage latency histograms live on a
// MetricsRegistry (netmark_ingest_* — see docs/observability.md);
// DaemonCounters is a thin view over those handles.

#ifndef NETMARK_SERVER_DAEMON_H_
#define NETMARK_SERVER_DAEMON_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "convert/registry.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "observability/trace_store.h"
#include "xmlstore/xml_store.h"

namespace netmark::server {

/// Daemon configuration.
struct DaemonOptions {
  std::filesystem::path drop_dir;
  /// Poll period for the background thread.
  std::chrono::milliseconds poll_interval{200};
  /// Move ingested files into drop_dir/processed (failures to drop_dir/failed)
  /// instead of deleting them.
  bool keep_processed = true;
  /// Upmark/parse worker threads per sweep. 0 = hardware_concurrency.
  /// 1 runs the same prepare/commit code inline (no threads) — output is
  /// identical either way.
  int worker_threads = 0;
  /// Half-copied drop protection: a file whose mtime is younger than this is
  /// deferred (neither ingested nor failed) until a later sweep observes the
  /// same size+mtime — i.e. size-stable across two polls. Negative = use
  /// poll_interval; zero disables the check (every file is taken as-is,
  /// which is what single-sweep tests and benchmarks want).
  std::chrono::milliseconds stable_age{-1};
};

/// Per-stage pipeline counters (cumulative since construction). A snapshot
/// of the registry counters — the registry is the source of truth.
struct DaemonCounters {
  uint64_t queued = 0;     ///< files handed to the worker stage
  uint64_t converted = 0;  ///< files successfully upmarked + prepared
  uint64_t inserted = 0;   ///< documents committed by the writer stage
  uint64_t failed = 0;     ///< files that failed conversion or insert
  uint64_t deferred = 0;   ///< files skipped as possibly still being written
  uint64_t convert_ns = 0; ///< summed worker wall time (read+convert+prepare)
  uint64_t insert_ns = 0;  ///< summed writer wall time (store+index commit)
};

/// \brief Folder-watching ingestion daemon.
class IngestionDaemon {
 public:
  IngestionDaemon(xmlstore::XmlStore* store,
                  const convert::ConverterRegistry* converters,
                  DaemonOptions options);
  ~IngestionDaemon() { Stop(); }

  /// Re-homes the daemon's metrics (netmark_ingest_* counters and stage
  /// histograms) onto `registry`. Must be called before Start()/ProcessOnce()
  /// — counts recorded earlier stay in the private fallback registry.
  void BindMetrics(observability::MetricsRegistry* registry);
  observability::MetricsRegistry* metrics() const { return metrics_; }

  /// Optional: sample background sweeps into `store` (the service's ring),
  /// so ingestion stalls are debuggable from GET /traces like queries are.
  /// Must be set before Start(). Idle sweeps are never recorded.
  void set_trace_store(observability::TraceStore* store) {
    trace_store_ = store;
  }

  /// Creates the folder structure and starts the polling thread.
  netmark::Status Start();
  /// Stops the thread (joins). Idempotent.
  void Stop();

  /// One synchronous sweep of the drop folder; returns the number of files
  /// ingested. Usable without Start() for deterministic tests/benchmarks.
  netmark::Result<int> ProcessOnce() { return ProcessOnce(nullptr, -1); }

  /// Traced sweep: stage spans (sweep -> prepare/insert per file) are
  /// parented under `parent_span`. `trace` may be null. Thread-safe Trace:
  /// prepare spans are recorded from worker threads.
  netmark::Result<int> ProcessOnce(observability::Trace* trace, int parent_span);

  uint64_t files_ingested() const { return handles_.inserted->value(); }
  uint64_t files_failed() const { return handles_.failed->value(); }
  bool running() const { return running_.load(); }
  DaemonCounters counters() const;

 private:
  /// Worker-stage product for one file, awaiting its turn at the writer.
  struct PreparedFile {
    netmark::Status status = netmark::Status::OK();
    xmlstore::PreparedDocument prepared;
  };

  /// Registry handles behind DaemonCounters (single source of truth).
  struct MetricHandles {
    observability::Counter* queued = nullptr;
    observability::Counter* converted = nullptr;
    observability::Counter* inserted = nullptr;
    observability::Counter* failed = nullptr;
    observability::Counter* deferred = nullptr;
    observability::Histogram* prepare_micros = nullptr;
    observability::Histogram* insert_micros = nullptr;
  };

  /// (Re-)resolves every metric handle against metrics_.
  void BindHandles();
  /// Resolved worker count (>= 1).
  int EffectiveWorkers() const;
  /// Enumerates the drop folder and applies the stability filter; returns
  /// eligible paths sorted by filename.
  std::vector<std::filesystem::path> CollectStable();
  /// Read + convert + flatten + tokenize one file (runs on workers).
  PreparedFile PrepareFile(const std::filesystem::path& path,
                           observability::Trace* trace, int parent_span);
  /// Commits one worker result and moves the source file (writer stage).
  bool CommitFile(const std::filesystem::path& path, PreparedFile result,
                  observability::Trace* trace, int parent_span);
  /// End-of-sweep group commit: one WAL fsync covering every transaction the
  /// sweep committed (only does I/O under `wal_fsync = batch`).
  void FinishSweep(int committed);
  void Loop();

  xmlstore::XmlStore* store_;
  const convert::ConverterRegistry* converters_;
  DaemonOptions options_;
  std::mutex sweep_mu_;  // serializes ProcessOnce vs the polling thread

  // Signature of a possibly-still-being-written file seen last sweep
  // (guarded by sweep_mu_).
  struct FileSig {
    uintmax_t size = 0;
    std::filesystem::file_time_type mtime;
  };
  std::map<std::filesystem::path, FileSig> unstable_;

  /// Private fallback registry so a standalone daemon works unwired; the
  /// facade rebinds onto its own registry via BindMetrics().
  std::unique_ptr<observability::MetricsRegistry> owned_metrics_;
  observability::MetricsRegistry* metrics_ = nullptr;
  MetricHandles handles_;
  observability::TraceStore* trace_store_ = nullptr;

  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace netmark::server

#endif  // NETMARK_SERVER_DAEMON_H_
