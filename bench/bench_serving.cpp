// Serving-path benchmark: closed-loop loopback clients against the
// worker-pool HTTP server, mixed GET /docs/<id> + /xdb traffic, with a
// concurrent ingestion writer mutating the store the whole time.
//
// Sweeps client-thread counts and compares keep-alive against
// Connection: close (the per-request reconnect tax keep-alive removes).
// Emits JSONL figures plus the instance metrics snapshot, so the CI
// regression gate can watch the netmark_http_request_micros p50.
//
// Knobs: NETMARK_BENCH_SERVING_SECONDS (per config point, default 1).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "server/http_client.h"

namespace netmark {
namespace {

constexpr size_t kCorpusSize = 120;

struct RunResult {
  double ops_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t ops = 0;
  uint64_t failures = 0;
};

double Percentile(std::vector<double>& latencies, double q) {
  if (latencies.empty()) return 0;
  size_t idx = std::min(latencies.size() - 1,
                        static_cast<size_t>(q * static_cast<double>(latencies.size())));
  std::nth_element(latencies.begin(), latencies.begin() + static_cast<ptrdiff_t>(idx),
                   latencies.end());
  return latencies[idx];
}

/// Closed loop: each client thread issues the next request as soon as the
/// previous response arrives, alternating document fetches and XDB queries.
RunResult RunClosedLoop(uint16_t port, int threads, bool keepalive,
                        double seconds, const std::vector<int64_t>& doc_ids) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::vector<std::vector<double>> latencies(static_cast<size_t>(threads));
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      server::HttpClientOptions copts;
      copts.reuse_connections = keepalive;
      server::HttpClient client("127.0.0.1", port, copts);
      size_t i = static_cast<size_t>(t);  // desync the request mix per thread
      while (!stop.load(std::memory_order_relaxed)) {
        int64_t start = MonotonicMicros();
        auto response =
            (i % 2 == 0)
                ? client.Get("/docs/" + std::to_string(doc_ids[i % doc_ids.size()]))
                : client.Get("/xdb?context=Budget&limit=10");
        int64_t micros = MonotonicMicros() - start;
        if (response.ok() && response->status == 200) {
          latencies[static_cast<size_t>(t)].push_back(static_cast<double>(micros));
        } else {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
      }
    });
  }
  int64_t t0 = MonotonicMicros();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& c : clients) c.join();
  double elapsed = static_cast<double>(MonotonicMicros() - t0) / 1e6;

  RunResult result;
  std::vector<double> all;
  for (std::vector<double>& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  result.ops = all.size();
  result.failures = failures.load();
  result.ops_per_sec = elapsed > 0 ? static_cast<double>(all.size()) / elapsed : 0;
  result.p50_us = Percentile(all, 0.5);
  result.p99_us = Percentile(all, 0.99);
  return result;
}

}  // namespace
}  // namespace netmark

int main() {
  using namespace netmark;

  double seconds = 1.0;
  if (const char* env = std::getenv("NETMARK_BENCH_SERVING_SECONDS")) {
    double parsed = std::atof(env);
    if (parsed > 0) seconds = parsed;
  }

  bench::LoadedInstance inst = bench::MakeLoadedInstance(kCorpusSize);
  bench::Check(inst.nm->StartServer(0), "start server");
  uint16_t port = inst.nm->server_port();
  auto docs = bench::Unwrap(inst.nm->ListDocuments(), "list docs");
  std::vector<int64_t> doc_ids;
  doc_ids.reserve(docs.size());
  for (const auto& doc : docs) doc_ids.push_back(doc.doc_id);

  // Background ingestion writer: keeps commits (exclusive lock holds)
  // flowing while the readers measure, so the figures reflect the
  // contended reader/writer path, not an idle store.
  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    workload::CorpusGenerator gen(7);
    size_t i = 0;
    while (!stop_writer.load(std::memory_order_relaxed)) {
      auto doc = gen.MixedCorpus(1);
      bench::Check(inst.nm
                       ->IngestContent("bench-writer-" + std::to_string(i++) + ".txt",
                                       doc[0].content)
                       .status(),
                   "writer ingest");
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  bench::ReportHeader("Serving path (worker pool, keep-alive)",
                      "simple HTTP requests stay fast under concurrent "
                      "clients and live ingestion");
  bench::JsonLines jsonl("serving");
  char config[160];
  std::snprintf(config, sizeof(config),
                "corpus=%zu,workers=%d,mix=docs+xdb,writer=50ops/s,seconds=%g",
                kCorpusSize, server::HttpServerOptions{}.worker_threads, seconds);
  jsonl.EmitConfig(config);

  std::printf("%-22s %8s %12s %10s %10s %8s\n", "config", "threads", "ops/s",
              "p50_us", "p99_us", "errors");
  for (int threads : {1, 2, 4}) {
    RunResult r = RunClosedLoop(port, threads, /*keepalive=*/true, seconds, doc_ids);
    std::printf("%-22s %8d %12.0f %10.0f %10.0f %8llu\n", "keep-alive", threads,
                r.ops_per_sec, r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.failures));
    jsonl.Emit("mixed_keepalive", threads, r.p50_us * 1000.0, r.ops_per_sec,
               "ops/s");
    jsonl.Emit("mixed_keepalive_p99", threads, r.p99_us * 1000.0, r.ops_per_sec,
               "ops/s");
  }
  {
    // Connection: close comparison — the reconnect tax keep-alive removes.
    RunResult r = RunClosedLoop(port, 1, /*keepalive=*/false, seconds, doc_ids);
    std::printf("%-22s %8d %12.0f %10.0f %10.0f %8llu\n", "connection-close", 1,
                r.ops_per_sec, r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.failures));
    jsonl.Emit("mixed_close", 1, r.p50_us * 1000.0, r.ops_per_sec, "ops/s");
  }

  stop_writer.store(true);
  writer.join();
  jsonl.EmitMetrics(*inst.nm->metrics());
  inst.nm->StopServer();
  std::printf("results: %s\n", jsonl.path().c_str());
  return 0;
}
