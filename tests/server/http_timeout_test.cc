// HttpClient deadline behaviour: a silent or slow server must cost the caller
// its configured budget, never an indefinite hang (the pre-resilience client
// blocked forever on recv()).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "common/clock.h"
#include "server/http_client.h"
#include "server/http_server.h"

namespace netmark::server {
namespace {

/// A TCP endpoint that accepts connections (kernel backlog) but never reads
/// or writes — the classic "server went silent" hang.
class SilentServer {
 public:
  SilentServer() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
  }
  ~SilentServer() {
    if (fd_ >= 0) ::close(fd_);
  }
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

TEST(HttpClientTimeoutTest, SilentServerHitsTotalTimeout) {
  SilentServer silent;
  HttpClientOptions options;
  options.total_timeout_ms = 200;
  HttpClient client("127.0.0.1", silent.port(), options);

  const int64_t start = netmark::MonotonicMicros();
  auto resp = client.Get("/never-answers");
  const int64_t elapsed_ms = (netmark::MonotonicMicros() - start) / 1000;

  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsDeadlineExceeded()) << resp.status().ToString();
  EXPECT_GE(elapsed_ms, 150);
  EXPECT_LT(elapsed_ms, 5000) << "must give up near the budget, not hang";
}

TEST(HttpClientTimeoutTest, CallerDeadlineTightensTheDefaults) {
  SilentServer silent;
  // Default options carry a 30s total timeout; the per-call deadline must win.
  HttpClient client("127.0.0.1", silent.port());
  HttpRequest req;
  req.method = "GET";
  req.target = "/slow";

  const int64_t start = netmark::MonotonicMicros();
  auto resp = client.Send(req, /*deadline_micros=*/start + 150 * 1000);
  const int64_t elapsed_ms = (netmark::MonotonicMicros() - start) / 1000;

  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsDeadlineExceeded());
  EXPECT_LT(elapsed_ms, 5000);
}

TEST(HttpClientTimeoutTest, HealthyServerUnaffectedByTightTimeouts) {
  HttpServer server([](const HttpRequest&) { return HttpResponse::Ok("fast"); });
  ASSERT_TRUE(server.Start().ok());
  HttpClientOptions options;
  options.connect_timeout_ms = 1000;
  options.total_timeout_ms = 2000;
  HttpClient client("127.0.0.1", server.port(), options);
  auto resp = client.Get("/quick");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "fast");
}

TEST(SocketTransportTest, DeadPortMapsToRetryableUnavailable) {
  // Nothing listens on the silent server's port once it closes.
  uint16_t dead_port;
  {
    SilentServer scratch;
    dead_port = scratch.port();
  }
  SocketTransport transport("127.0.0.1", dead_port);
  auto body = transport.Get("/xdb?content=x");
  ASSERT_FALSE(body.ok());
  EXPECT_TRUE(body.status().IsUnavailable()) << body.status().ToString();
}

TEST(SocketTransportTest, ServerErrorsMapToRetryableUnavailable) {
  HttpServer server(
      [](const HttpRequest&) { return HttpResponse::ServerError("boom"); });
  ASSERT_TRUE(server.Start().ok());
  SocketTransport transport("127.0.0.1", server.port());
  auto body = transport.Get("/xdb?content=x");
  ASSERT_FALSE(body.ok());
  EXPECT_TRUE(body.status().IsUnavailable()) << body.status().ToString();
  EXPECT_NE(body.status().ToString().find("500"), std::string::npos);
}

TEST(SocketTransportTest, ClientErrorsAreNotRetryable) {
  HttpServer server(
      [](const HttpRequest&) { return HttpResponse::BadRequest("nope"); });
  ASSERT_TRUE(server.Start().ok());
  SocketTransport transport("127.0.0.1", server.port());
  auto body = transport.Get("/xdb?content=x");
  ASSERT_FALSE(body.ok());
  EXPECT_TRUE(body.status().IsInvalidArgument()) << body.status().ToString();
}

TEST(SocketTransportTest, ExpiredContextShortCircuits) {
  HttpServer server([](const HttpRequest&) { return HttpResponse::Ok("late"); });
  ASSERT_TRUE(server.Start().ok());
  SocketTransport transport("127.0.0.1", server.port());
  federation::CallContext expired;
  expired.deadline_micros = netmark::MonotonicMicros() - 1000;
  auto body = transport.Get("/xdb?content=x", expired);
  ASSERT_FALSE(body.ok());
  EXPECT_TRUE(body.status().IsDeadlineExceeded()) << body.status().ToString();
}

}  // namespace
}  // namespace netmark::server
