// Physical write-ahead log (ARIES-lite, redo-only).
//
// Durability contract (docs/durability.md): a transaction's page images are
// staged in memory and hit the log in ONE append at commit — followed by an
// fsync per the configured policy. Pages reach the heap files only at
// checkpoint, strictly after their images are on the log, so any crash
// leaves either (a) a committed transaction fully reconstructible from the
// log, or (b) an uncommitted transaction with zero bytes on disk. Recovery
// (storage/recovery.h) replays committed page images in LSN order and
// truncates the log; a CRC-invalid or short tail record marks the torn end
// and is dropped, never replayed.
//
// On-disk record framing (little-endian, native — the log never moves
// between hosts):
//
//   u32 body_len | u32 crc32c(body) | body
//   body = u64 lsn | u64 txn_id | u8 type | payload
//   payload(kPageImage) = u16 table_len | table | u32 page_id | 8 KiB image
//   payload(kCommit)    = (empty)

#ifndef NETMARK_STORAGE_WAL_H_
#define NETMARK_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "storage/page.h"
#include "storage/row_id.h"

namespace netmark::storage {

/// When the log is fsynced.
enum class WalFsyncPolicy {
  kCommit,  ///< fsync inside every commit (strongest; the default)
  kBatch,   ///< fsync once per ingestion batch (group commit)
  kNone,    ///< never fsync explicitly (OS decides; weakest)
};

/// Parses "commit" | "batch" | "none" (the `[storage] wal_fsync` INI value).
netmark::Result<WalFsyncPolicy> ParseWalFsyncPolicy(std::string_view text);
const char* WalFsyncPolicyName(WalFsyncPolicy policy);

enum class WalRecordType : uint8_t {
  kPageImage = 1,
  kCommit = 2,
};

/// One decoded log record (reader side).
struct WalRecord {
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  WalRecordType type = WalRecordType::kCommit;
  // kPageImage only:
  std::string table;
  PageId page_id = 0;
  std::string image;  // kPageSize bytes
};

/// Result of scanning a log file.
struct WalScan {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;  ///< offset of the first invalid byte (tail cut)
  bool torn_tail = false;    ///< file had bytes past valid_bytes
  std::string torn_reason;
};

/// \brief Append-side write-ahead log.
///
/// Not thread-safe: callers serialize (the XML store's write mutex).
/// Cumulative counters are atomics so metrics collection may read them from
/// other threads.
class Wal {
 public:
  /// Opens (creating if absent) the log at `path`, scanning existing records
  /// to position the append offset after the last valid record (a torn tail
  /// is truncated away here). `env` defaults to Env::Default().
  static netmark::Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                                    WalFsyncPolicy policy,
                                                    netmark::Env* env = nullptr);
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Scans a log file without opening it for append (recovery, tests).
  static netmark::Result<WalScan> ReadRecords(const std::string& path);

  /// Stages one page image for the open transaction (memory only — nothing
  /// reaches the file until AppendCommit).
  void StagePageImage(uint64_t txn_id, std::string_view table, PageId page_id,
                      const uint8_t* image);

  /// Appends the staged images plus a commit record in a single write, then
  /// fsyncs when the policy is kCommit.
  netmark::Status AppendCommit(uint64_t txn_id);

  /// Drops staged, uncommitted images (transaction abandon).
  void DiscardStaged();

  /// Unconditional fsync of appended-but-unsynced bytes.
  netmark::Status Sync();
  /// Group commit: fsync only under the kBatch policy (the ingestion daemon
  /// calls this once per sweep).
  netmark::Status BatchSync();

  /// Truncates the log to zero length after a checkpoint made the heap files
  /// durable. LSNs keep counting up across truncation.
  netmark::Status TruncateAll();

  WalFsyncPolicy policy() const { return policy_; }
  const std::string& path() const { return path_; }

  /// Current log file size (appended bytes since last truncation).
  uint64_t size_bytes() const { return size_bytes_.load(std::memory_order_relaxed); }
  /// LSN of the most recently appended record (0 = none ever).
  uint64_t last_lsn() const { return last_lsn_.load(std::memory_order_relaxed); }

  // Cumulative counters (monotonic since open; metrics reads these).
  uint64_t bytes_appended() const { return bytes_appended_.load(std::memory_order_relaxed); }
  uint64_t records_appended() const { return records_appended_.load(std::memory_order_relaxed); }
  uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }
  uint64_t truncations() const { return truncations_.load(std::memory_order_relaxed); }

 private:
  Wal(std::string path, std::unique_ptr<netmark::File> file, WalFsyncPolicy policy)
      : path_(std::move(path)), file_(std::move(file)), policy_(policy) {}

  void EncodeRecord(uint64_t txn_id, WalRecordType type, std::string_view payload,
                    std::string* out);

  std::string path_;
  std::unique_ptr<netmark::File> file_;
  WalFsyncPolicy policy_;
  uint64_t append_offset_ = 0;
  std::string staged_;        // encoded records awaiting the commit append
  uint64_t staged_records_ = 0;
  uint64_t next_lsn_ = 1;
  bool unsynced_ = false;     // bytes appended since the last fsync

  std::atomic<uint64_t> size_bytes_{0};
  std::atomic<uint64_t> last_lsn_{0};
  std::atomic<uint64_t> bytes_appended_{0};
  std::atomic<uint64_t> records_appended_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> truncations_{0};
};

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_WAL_H_
