#include "common/config.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace netmark {

Result<Config> Config::Parse(std::string_view text) {
  Config cfg;
  Section* current = cfg.FindOrCreateSection("");
  size_t line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = TrimView(raw);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        return Status::ParseError(
            StringPrintf("config line %zu: unterminated section header", line_no));
      }
      std::string name = ToLower(TrimView(line.substr(1, line.size() - 2)));
      current = cfg.FindOrCreateSection(name);
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError(
          StringPrintf("config line %zu: expected key=value", line_no));
    }
    std::string key = ToLower(TrimView(line.substr(0, eq)));
    std::string value = Trim(line.substr(eq + 1));
    if (key.empty()) {
      return Status::ParseError(StringPrintf("config line %zu: empty key", line_no));
    }
    current->entries.emplace_back(std::move(key), std::move(value));
  }
  return cfg;
}

Result<Config> Config::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open config file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  auto result = Parse(ss.str());
  if (!result.ok()) return result.status().WithContext(path);
  return result;
}

const Config::Section* Config::FindSection(std::string_view name) const {
  std::string lower = ToLower(name);
  for (const Section& s : sections_) {
    if (s.name == lower) return &s;
  }
  return nullptr;
}

Config::Section* Config::FindOrCreateSection(std::string_view name) {
  std::string lower = ToLower(name);
  for (Section& s : sections_) {
    if (s.name == lower) return &s;
  }
  sections_.push_back(Section{lower, {}});
  return &sections_.back();
}

Result<std::string> Config::Get(std::string_view section, std::string_view key) const {
  const Section* s = FindSection(section);
  if (s == nullptr) {
    return Status::NotFound("no config section [" + std::string(section) + "]");
  }
  std::string lower = ToLower(key);
  for (const auto& [k, v] : s->entries) {
    if (k == lower) return v;
  }
  return Status::NotFound("no config key '" + std::string(key) + "' in [" +
                          std::string(section) + "]");
}

std::string Config::GetOr(std::string_view section, std::string_view key,
                          std::string fallback) const {
  auto r = Get(section, key);
  return r.ok() ? *r : std::move(fallback);
}

Result<int64_t> Config::GetInt(std::string_view section, std::string_view key) const {
  NETMARK_ASSIGN_OR_RETURN(std::string v, Get(section, key));
  return ParseInt64(v);
}

int64_t Config::GetIntOr(std::string_view section, std::string_view key,
                         int64_t fallback) const {
  auto r = GetInt(section, key);
  return r.ok() ? *r : fallback;
}

bool Config::GetBoolOr(std::string_view section, std::string_view key,
                       bool fallback) const {
  auto r = Get(section, key);
  if (!r.ok()) return fallback;
  std::string v = ToLower(*r);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  return fallback;
}

bool Config::HasSection(std::string_view section) const {
  return FindSection(section) != nullptr;
}

std::vector<std::string> Config::Keys(std::string_view section) const {
  std::vector<std::string> out;
  const Section* s = FindSection(section);
  if (s == nullptr) return out;
  for (const auto& [k, v] : s->entries) out.push_back(k);
  return out;
}

std::vector<std::string> Config::Sections() const {
  std::vector<std::string> out;
  for (const Section& s : sections_) {
    if (!s.name.empty() || !s.entries.empty()) out.push_back(s.name);
  }
  return out;
}

void Config::Set(std::string_view section, std::string_view key, std::string value) {
  Section* s = FindOrCreateSection(section);
  std::string lower = ToLower(key);
  for (auto& [k, v] : s->entries) {
    if (k == lower) {
      v = std::move(value);
      return;
    }
  }
  s->entries.emplace_back(std::move(lower), std::move(value));
}

}  // namespace netmark
