#include "storage/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"

namespace netmark::storage {
namespace {

IndexKey K(int64_t v) { return {Value::Int(v)}; }
IndexKey K(const std::string& s) { return {Value::Str(s)}; }
IndexKey K2(int64_t a, int64_t b) { return {Value::Int(a), Value::Int(b)}; }
RowId R(uint32_t n) { return RowId(n, 0); }

TEST(CompareKeysTest, Lexicographic) {
  EXPECT_LT(CompareKeys(K(1), K(2)), 0);
  EXPECT_EQ(CompareKeys(K(5), K(5)), 0);
  EXPECT_LT(CompareKeys(K2(1, 9), K2(2, 0)), 0);
  EXPECT_LT(CompareKeys(K(1), K2(1, 0)), 0);  // prefix sorts first
  EXPECT_GT(CompareKeys(K2(1, 0), K(1)), 0);
}

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Lookup(K(1)).empty());
  EXPECT_FALSE(tree.Remove(K(1), R(1)));
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.height(), 1);
}

TEST(BTreeTest, InsertLookupSingle) {
  BTree tree;
  tree.Insert(K(42), R(7));
  auto hits = tree.Lookup(K(42));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], R(7));
  EXPECT_TRUE(tree.Lookup(K(41)).empty());
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, DuplicateKeysKeepAllRowIds) {
  BTree tree;
  tree.Insert(K(5), R(1));
  tree.Insert(K(5), R(2));
  tree.Insert(K(5), R(3));
  tree.Insert(K(5), R(2));  // exact duplicate ignored
  auto hits = tree.Lookup(K(5));
  EXPECT_EQ(hits.size(), 3u);
  EXPECT_EQ(tree.size(), 3u);
}

TEST(BTreeTest, SplitsGrowHeightAndPreserveAll) {
  BTree tree(8);  // small fanout forces splits early
  for (int64_t i = 0; i < 1000; ++i) tree.Insert(K(i), R(static_cast<uint32_t>(i)));
  EXPECT_GT(tree.height(), 2);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), 1000u);
  for (int64_t i = 0; i < 1000; ++i) {
    auto hits = tree.Lookup(K(i));
    ASSERT_EQ(hits.size(), 1u) << "key " << i;
    EXPECT_EQ(hits[0], R(static_cast<uint32_t>(i)));
  }
}

TEST(BTreeTest, ReverseAndInterleavedInsertOrders) {
  BTree rev(8);
  for (int64_t i = 999; i >= 0; --i) rev.Insert(K(i), R(static_cast<uint32_t>(i)));
  EXPECT_TRUE(rev.CheckInvariants());
  EXPECT_EQ(rev.size(), 1000u);

  BTree mix(8);
  for (int64_t i = 0; i < 500; ++i) {
    mix.Insert(K(i), R(static_cast<uint32_t>(i)));
    mix.Insert(K(999 - i), R(static_cast<uint32_t>(999 - i)));
  }
  EXPECT_TRUE(mix.CheckInvariants());
  EXPECT_EQ(mix.size(), 1000u);
}

TEST(BTreeTest, RangeInclusive) {
  BTree tree(8);
  for (int64_t i = 0; i < 100; ++i) tree.Insert(K(i), R(static_cast<uint32_t>(i)));
  auto hits = tree.Range(K(10), K(20));
  ASSERT_EQ(hits.size(), 11u);
  EXPECT_EQ(hits.front(), R(10));
  EXPECT_EQ(hits.back(), R(20));
  EXPECT_TRUE(tree.Range(K(200), K(300)).empty());
  EXPECT_EQ(tree.Range(K(0), K(99)).size(), 100u);
}

TEST(BTreeTest, PrefixLookupOnCompositeKeys) {
  BTree tree(8);
  for (int64_t doc = 1; doc <= 5; ++doc) {
    for (int64_t node = 0; node < 20; ++node) {
      tree.Insert(K2(doc, node), R(static_cast<uint32_t>(doc * 100 + node)));
    }
  }
  auto hits = tree.PrefixLookup(K(3));
  ASSERT_EQ(hits.size(), 20u);
  // Results come back in key order -> node order.
  EXPECT_EQ(hits.front(), R(300));
  EXPECT_EQ(hits.back(), R(319));
  EXPECT_TRUE(tree.PrefixLookup(K(9)).empty());
}

TEST(BTreeTest, StringKeys) {
  BTree tree(8);
  std::vector<std::string> words = {"shuttle", "engine", "anomaly", "budget", "gap"};
  for (size_t i = 0; i < words.size(); ++i) {
    tree.Insert(K(words[i]), R(static_cast<uint32_t>(i)));
  }
  EXPECT_EQ(tree.Lookup(K(std::string("budget"))).size(), 1u);
  auto range = tree.Range(K(std::string("a")), K(std::string("f")));
  EXPECT_EQ(range.size(), 3u);  // anomaly, budget, engine
}

TEST(BTreeTest, RemoveExactPairOnly) {
  BTree tree;
  tree.Insert(K(1), R(1));
  tree.Insert(K(1), R(2));
  EXPECT_FALSE(tree.Remove(K(1), R(3)));
  EXPECT_TRUE(tree.Remove(K(1), R(1)));
  EXPECT_FALSE(tree.Remove(K(1), R(1)));  // already gone
  auto hits = tree.Lookup(K(1));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], R(2));
}

TEST(BTreeTest, VisitAllIsSorted) {
  BTree tree(8);
  netmark::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    tree.Insert(K(static_cast<int64_t>(rng.Uniform(100))),
                R(static_cast<uint32_t>(i)));
  }
  IndexKey prev;
  bool first = true;
  size_t count = 0;
  tree.VisitAll([&](const IndexKey& key, RowId) {
    if (!first) EXPECT_LE(CompareKeys(prev, key), 0);
    prev = key;
    first = false;
    ++count;
    return true;
  });
  EXPECT_EQ(count, tree.size());
}

TEST(BTreeTest, VisitAllEarlyStop) {
  BTree tree;
  for (int64_t i = 0; i < 10; ++i) tree.Insert(K(i), R(static_cast<uint32_t>(i)));
  size_t count = 0;
  tree.VisitAll([&](const IndexKey&, RowId) { return ++count < 3; });
  EXPECT_EQ(count, 3u);
}

// Property test: random workload must match a reference multimap.
class BTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreePropertyTest, MatchesReferenceMultimap) {
  netmark::Rng rng(GetParam());
  BTree tree(static_cast<int>(4 + rng.Uniform(60)));
  // Reference: set of (key, rowid) pairs.
  std::set<std::pair<int64_t, uint64_t>> ref;
  for (int step = 0; step < 5000; ++step) {
    int64_t key = static_cast<int64_t>(rng.Uniform(200));
    auto rid = R(static_cast<uint32_t>(rng.Uniform(50)));
    if (rng.Chance(0.7)) {
      tree.Insert(K(key), rid);
      ref.insert({key, rid.Pack()});
    } else {
      bool removed = tree.Remove(K(key), rid);
      bool ref_removed = ref.erase({key, rid.Pack()}) > 0;
      EXPECT_EQ(removed, ref_removed);
    }
  }
  EXPECT_EQ(tree.size(), ref.size());
  EXPECT_TRUE(tree.CheckInvariants());
  for (int64_t key = 0; key < 200; ++key) {
    auto hits = tree.Lookup(K(key));
    std::set<uint64_t> expected;
    for (auto it = ref.lower_bound({key, 0}); it != ref.end() && it->first == key; ++it) {
      expected.insert(it->second);
    }
    std::set<uint64_t> actual;
    for (RowId r : hits) actual.insert(r.Pack());
    EXPECT_EQ(actual, expected) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreePropertyTest,
                         ::testing::Values(1, 2, 3, 42, 99, 12345));

}  // namespace
}  // namespace netmark::storage
