// Compiled XDB query plans.
//
// Execute used to re-interpret every request: parse the context/content
// search keys, parse the XPath, and pick a strategy, per call. This module
// splits that work out into an immutable QueryPlan built once per query
// *shape* (the context/content/xpath triple — doc scope and limit stay
// runtime parameters), cached and shared across threads.
//
// The planner also specializes the dominant production shape —
// `Context=X&Content=Y` with plain term keys — into a single
// postings-intersection + RowId-walk loop (kSectionSpecialized): each
// content term's postings are walked to their governing CONTEXT rows and
// intersected at section granularity, which already proves the content
// predicate, so the per-candidate verification only needs to match the
// heading — no second full-text pass over the section body.
//
// Plans are store-independent (parsed search keys and compiled XPath only),
// so one plan cache may serve executors over different stores.

#ifndef NETMARK_QUERY_PLAN_H_
#define NETMARK_QUERY_PLAN_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "observability/metrics.h"
#include "query/xdb_query.h"
#include "textindex/text_query.h"
#include "xslt/xpath.h"

namespace netmark::query {

/// \brief One compiled query: parsed keys plus the chosen strategy.
/// Immutable after construction; share freely across threads.
struct QueryPlan {
  enum class Kind {
    kContentOnly,         ///< document-granularity content search
    kSection,             ///< generic seed + verify section search
    kSectionSpecialized,  ///< postings-intersection + RowId-walk loop
    kXPath,               ///< XPath over reconstructed documents
  };

  Kind kind = Kind::kContentOnly;
  textindex::TextQuery context_query;
  textindex::TextQuery content_query;
  /// Compiled path expression (kXPath only).
  std::shared_ptr<const xslt::XPath> xpath;
};

/// \brief Compiles `query` into a plan. Fails on XPath syntax errors and on
/// the Context+XPath combination (which has no execution strategy).
netmark::Result<std::shared_ptr<const QueryPlan>> BuildQueryPlan(
    const XdbQuery& query);

/// \brief The plan-cache key: the query fields that determine the compiled
/// plan (context, content, xpath), independent of doc scope/limit/xslt.
std::string QueryPlanShapeKey(const XdbQuery& query);

/// \brief Entry-bounded LRU cache of compiled plans, keyed by shape.
/// Plans never go stale (they hold no store state), so there is no epoch in
/// the key; bounded only to keep adversarial query streams from growing it.
/// Thread-safe.
class QueryPlanCache {
 public:
  struct Options {
    size_t max_entries = 256;
    bool enabled = true;
  };

  QueryPlanCache() = default;
  explicit QueryPlanCache(Options options) : options_(options) {}

  /// Replaces the options and clears the cache (call before traffic).
  void Configure(Options options);

  bool enabled() const;

  std::shared_ptr<const QueryPlan> Lookup(const std::string& shape_key);
  void Insert(const std::string& shape_key,
              std::shared_ptr<const QueryPlan> plan);

  struct Snapshot {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };
  Snapshot snapshot() const;

  /// Publishes netmark_query_plan_cache_{hits,misses}_total counters and the
  /// netmark_query_plan_cache_entries gauge on `registry`.
  void BindMetrics(observability::MetricsRegistry* registry);

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const QueryPlan> plan;
  };

  mutable std::mutex mu_;
  Options options_;
  std::list<Entry> lru_;  // most-recently-used first
  std::map<std::string, std::list<Entry>::iterator, std::less<>> index_;
  uint64_t hit_count_ = 0;
  uint64_t miss_count_ = 0;
  uint64_t evict_count_ = 0;

  struct MetricHandles {
    observability::Counter* hits = nullptr;
    observability::Counter* misses = nullptr;
    observability::Gauge* entries = nullptr;
  } handles_;
};

}  // namespace netmark::query

#endif  // NETMARK_QUERY_PLAN_H_
