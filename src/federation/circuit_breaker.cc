#include "federation/circuit_breaker.h"

#include "common/logging.h"

namespace netmark::federation {

CircuitBreaker::State CircuitBreaker::StateLocked(int64_t now_micros) const {
  if (state_ == State::kOpen &&
      now_micros - opened_at_micros_ >= config_.cooldown_ms * 1000) {
    return State::kHalfOpen;
  }
  return state_;
}

void CircuitBreaker::TransitionLocked(State to) {
  if (state_ == to) return;
  NETMARK_SLOG(Warning, "breaker_transition")
      .Field("source", name_.empty() ? "?" : name_)
      .Field("from", CircuitStateToString(state_))
      .Field("to", CircuitStateToString(to))
      .Field("consecutive_failures", consecutive_failures_)
      .Field("cooldown_ms", config_.cooldown_ms);
  state_ = to;
  ++transitions_;
}

bool CircuitBreaker::Allow(int64_t now_micros) {
  if (!config_.enabled()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  switch (StateLocked(now_micros)) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      if (state_ == State::kOpen) {
        // Cooldown elapsed right now: commit the transition.
        TransitionLocked(State::kHalfOpen);
        probe_in_flight_ = false;
        half_open_successes_ = 0;
      }
      if (probe_in_flight_) return false;  // one probe at a time
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(int64_t now_micros) {
  if (!config_.enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  (void)now_micros;
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    probe_in_flight_ = false;
    if (++half_open_successes_ >= config_.half_open_successes) {
      TransitionLocked(State::kClosed);
      half_open_successes_ = 0;
    }
  }
}

void CircuitBreaker::RecordFailure(int64_t now_micros) {
  if (!config_.enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // The probe failed: reopen and restart the cooldown.
    TransitionLocked(State::kOpen);
    probe_in_flight_ = false;
    opened_at_micros_ = now_micros;
    return;
  }
  if (++consecutive_failures_ >= config_.failure_threshold &&
      state_ == State::kClosed) {
    TransitionLocked(State::kOpen);
    opened_at_micros_ = now_micros;
  }
}

CircuitBreaker::State CircuitBreaker::state(int64_t now_micros) const {
  std::lock_guard<std::mutex> lock(mu_);
  return StateLocked(now_micros);
}

std::string_view CircuitStateToString(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace netmark::federation
