#include "federation/router.h"

#include <algorithm>

#include "textindex/text_query.h"

namespace netmark::federation {

netmark::Status Router::RegisterSource(std::shared_ptr<Source> source) {
  const std::string& name = source->name();
  if (sources_.count(name) != 0) {
    return netmark::Status::AlreadyExists("source " + name + " already registered");
  }
  sources_[name] = std::move(source);
  return netmark::Status::OK();
}

netmark::Status Router::DefineDatabank(const std::string& name,
                                       std::vector<std::string> source_names) {
  if (databanks_.count(name) != 0) {
    return netmark::Status::AlreadyExists("databank " + name + " already defined");
  }
  if (source_names.empty()) {
    return netmark::Status::InvalidArgument("databank " + name + " needs sources");
  }
  for (const std::string& src : source_names) {
    if (sources_.count(src) == 0) {
      return netmark::Status::NotFound("databank " + name +
                                       " references unknown source " + src);
    }
  }
  databanks_[name] = Databank{name, std::move(source_names)};
  return netmark::Status::OK();
}

std::vector<std::string> Router::DatabankNames() const {
  std::vector<std::string> out;
  for (const auto& [name, bank] : databanks_) out.push_back(name);
  return out;
}

std::vector<std::string> Router::SourceNames() const {
  std::vector<std::string> out;
  for (const auto& [name, src] : sources_) out.push_back(name);
  return out;
}

Source* Router::GetSource(const std::string& name) {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : it->second.get();
}

netmark::Result<std::vector<FederatedHit>> Router::QueryOneSource(
    Source* source, const query::XdbQuery& query) {
  Capabilities caps = source->capabilities();
  const bool needs_context = !query.context.empty();
  bool needs_phrase = false;
  {
    textindex::TextQuery parsed = textindex::ParseTextQuery(query.content);
    for (const textindex::QueryClause& clause : parsed.clauses) {
      if (clause.kind == textindex::QueryClause::Kind::kPhrase) needs_phrase = true;
    }
  }

  if ((!needs_context || caps.context_search) &&
      (query.content.empty() || caps.content_search) &&
      (!needs_phrase || caps.phrase_search)) {
    // Full push-down.
    ++stats_.pushed_down_full;
    NETMARK_ASSIGN_OR_RETURN(std::vector<FederatedHit> hits, source->Execute(query));
    stats_.raw_hits += hits.size();
    return hits;
  }

  // Capability-limited source: push down the supported sub-query, augment
  // the remainder locally (the paper's Context=Title&Content=Engine walk-
  // through against the Lessons Learned server).
  ++stats_.augmented;
  query::XdbQuery pushed;
  pushed.limit = 0;  // fetch everything; we filter locally
  if (caps.content_search) {
    // Best effort: if the user gave a content key push that; otherwise use
    // the context key as a content probe (documents mentioning the heading
    // words are the superset we refine).
    pushed.content = !query.content.empty() ? query.content : query.context;
  } else {
    return netmark::Status::Unavailable("source " + source->name() +
                                        " supports no usable search capability");
  }
  NETMARK_ASSIGN_OR_RETURN(std::vector<FederatedHit> raw, source->Execute(pushed));
  stats_.raw_hits += raw.size();

  textindex::TextQuery context_query = textindex::ParseTextQuery(query.context);
  textindex::TextQuery content_query = textindex::ParseTextQuery(query.content);
  std::vector<FederatedHit> out;
  for (FederatedHit& hit : raw) {
    if (!needs_context) {
      // Content-only query: re-verify phrases the source degraded.
      if (!content_query.empty() && !textindex::Matches(content_query, hit.text)) {
        continue;
      }
      out.push_back(std::move(hit));
      continue;
    }
    // Context clause: extract sections from the returned markup and keep the
    // ones whose heading matches (and whose body satisfies the content key).
    if (hit.markup.empty()) continue;
    auto sections = ExtractSectionsFromMarkup(hit.markup);
    if (!sections.ok()) continue;  // unparseable remote payload: skip the hit
    for (DomSection& section : *sections) {
      if (!textindex::Matches(context_query, section.heading)) continue;
      if (!content_query.empty()) {
        std::string scope = section.heading + " " + section.text;
        if (!textindex::Matches(content_query, scope)) continue;
      }
      FederatedHit refined;
      refined.doc_id = hit.doc_id;
      refined.file_name = hit.file_name;
      refined.heading = std::move(section.heading);
      refined.text = std::move(section.text);
      refined.markup = std::move(section.markup);
      out.push_back(std::move(refined));
    }
  }
  return out;
}

netmark::Result<std::vector<FederatedHit>> Router::Query(
    const std::string& databank, const query::XdbQuery& query) {
  stats_ = Stats{};
  auto bank_it = databanks_.find(databank);
  if (bank_it == databanks_.end()) {
    return netmark::Status::NotFound("no databank " + databank);
  }
  std::vector<FederatedHit> merged;
  for (const std::string& source_name : bank_it->second.source_names) {
    Source* source = sources_.at(source_name).get();
    ++stats_.sources_queried;
    auto hits = QueryOneSource(source, query);
    if (!hits.ok()) {
      // A failing source must not take down the whole databank query; the
      // paper's applications keep serving from the remaining sources.
      continue;
    }
    for (FederatedHit& hit : *hits) {
      hit.source = source_name;
      merged.push_back(std::move(hit));
    }
  }
  if (query.limit != 0 && merged.size() > query.limit) {
    merged.resize(query.limit);
  }
  stats_.final_hits = merged.size();
  return merged;
}

}  // namespace netmark::federation
