// XDB query execution over an XmlStore (paper §2.1.4).
//
// Pipeline: text-index probe -> RowId context walks -> heading filter ->
// section assembly. Content-only queries return whole documents; context
// queries (with or without content) return sections.

#ifndef NETMARK_QUERY_EXECUTOR_H_
#define NETMARK_QUERY_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "observability/metrics.h"
#include "query/xdb_query.h"
#include "xmlstore/context_walk.h"
#include "xmlstore/xml_store.h"

namespace netmark::query {

/// One query hit. Context/combined queries produce one hit per matched
/// section; content-only queries one hit per matched document (with an
/// invalid context RowId).
struct QueryHit {
  int64_t doc_id = 0;
  std::string file_name;
  storage::RowId context;  ///< heading node; invalid for document-level hits
  std::string heading;     ///< section heading ("" for document-level hits)
  std::string text;        ///< section body text (or "" for document hits)
  std::string markup;      ///< serialized fragment (XPath hits only)
  /// Relevance score for content searches: matching nodes count 1 each,
  /// doubled when the match sits inside INTENSE (emphasis) markup — the use
  /// NETMARK's INTENSE node type exists for. Document-level hits are ordered
  /// by descending score, then doc id.
  double score = 0;
};

/// Execution knobs.
struct ExecuteOptions {
  /// Use the inverted index (default). When false, falls back to full scans
  /// — the ablation path for bench_fig6.
  bool use_text_index = true;
  /// Resolve context walks through logical-id index joins instead of RowId
  /// links — the ablation path for bench_ablation_rowid.
  bool use_index_joins_for_walks = false;
};

/// \brief Evaluates XDB queries against one store.
///
/// Execute is const and carries no per-call state, so one executor instance
/// serves many threads concurrently (the worker-pool serving path). Each
/// call runs under a store ReadSnapshot — taken internally, or passed in by
/// a caller that needs the same consistent view across execute + compose.
class QueryExecutor {
 public:
  explicit QueryExecutor(const xmlstore::XmlStore* store,
                         ExecuteOptions options = {})
      : store_(store), options_(options) {}

  /// Per-call statistics, returned through the optional `stats` out-param
  /// (never stored on the executor — Execute stays thread-safe).
  struct Stats {
    size_t index_probes = 0;
    size_t nodes_walked = 0;
    size_t sections_built = 0;
  };

  /// Opts into cumulative instrumentation: every Execute then also bumps
  /// netmark_xdb_* counters and observes netmark_xdb_execute_micros on
  /// `registry` (null = back to uninstrumented). Call before concurrent
  /// traffic; the handles are read-only afterwards.
  void BindMetrics(observability::MetricsRegistry* registry);

  /// Runs the query under a self-acquired ReadSnapshot; hits are ordered by
  /// (doc_id, position). Do not call while already holding a snapshot on
  /// this thread — use the snapshot overload instead.
  netmark::Result<std::vector<QueryHit>> Execute(const XdbQuery& query,
                                                 Stats* stats = nullptr) const;

  /// Runs the query under a snapshot the caller already holds (so the same
  /// consistent view spans execute + result composition).
  netmark::Result<std::vector<QueryHit>> Execute(
      const XdbQuery& query, const xmlstore::XmlStore::ReadSnapshot& snapshot,
      Stats* stats = nullptr) const;

 private:
  netmark::Result<std::vector<QueryHit>> ExecuteUnderSnapshot(
      const XdbQuery& query, Stats* stats) const;
  netmark::Result<std::vector<storage::RowId>> ClauseNodes(
      const textindex::QueryClause& clause, Stats& stats) const;
  /// True when `node` sits under INTENSE markup (emphasis-boosted scoring).
  netmark::Result<bool> InsideIntense(storage::RowId node) const;
  netmark::Result<std::vector<QueryHit>> ContentOnly(const XdbQuery& query,
                                                     Stats& stats) const;
  netmark::Result<std::vector<QueryHit>> SectionQuery(const XdbQuery& query,
                                                      Stats& stats) const;
  netmark::Result<std::vector<QueryHit>> XPathQuery(const XdbQuery& query,
                                                    Stats& stats) const;
  netmark::Result<storage::RowId> Walk(storage::RowId start, Stats& stats) const;

  /// Registry handles (all null when unbound): cumulative mirrors of Stats
  /// plus the execute latency histogram.
  struct MetricHandles {
    observability::Counter* executes = nullptr;
    observability::Counter* index_probes = nullptr;
    observability::Counter* nodes_walked = nullptr;
    observability::Counter* sections_built = nullptr;
    observability::Histogram* execute_micros = nullptr;
  };

  const xmlstore::XmlStore* store_;
  ExecuteOptions options_;
  MetricHandles handles_;
};

}  // namespace netmark::query

#endif  // NETMARK_QUERY_EXECUTOR_H_
