#include "storage/pager.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/temp_dir.h"

namespace netmark::storage {
namespace {

class PagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("pager");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    path_ = (dir_->path() / "pages.bin").string();
  }
  std::unique_ptr<TempDir> dir_;
  std::string path_;
};

TEST_F(PagerTest, FreshFileHasNoPages) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->page_count(), 0u);
  EXPECT_TRUE((*pager)->Fetch(0).status().IsInvalidArgument());
}

TEST_F(PagerTest, AllocateInitializesAndFetches) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  auto id = (*pager)->Allocate();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  auto page = (*pager)->Fetch(*id);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->slot_count(), 0);
  EXPECT_EQ(page->free_end(), kPageSize);
  EXPECT_EQ((*pager)->page_count(), 1u);
}

TEST_F(PagerTest, DirtyPagesPersistAcrossReopen) {
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    for (int i = 0; i < 5; ++i) {
      auto id = (*pager)->Allocate();
      ASSERT_TRUE(id.ok());
      auto page = (*pager)->Fetch(*id);
      ASSERT_TRUE(page.ok());
      page->Insert("page " + std::to_string(i));
      (*pager)->MarkDirty(*id);
    }
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->page_count(), 5u);
  for (PageId i = 0; i < 5; ++i) {
    auto page = (*pager)->Fetch(i);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->Get(0), "page " + std::to_string(i));
  }
}

TEST_F(PagerTest, UnflushedChangesWrittenByDestructor) {
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    auto page = (*pager)->Fetch(*id);
    page->Insert("auto-flushed");
    (*pager)->MarkDirty(*id);
    // no explicit Flush: the destructor must write back
  }
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  auto page = (*pager)->Fetch(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->Get(0), "auto-flushed");
}

TEST_F(PagerTest, ReadCountsTrackCacheMisses) {
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE((*pager)->Allocate().ok());
    ASSERT_TRUE((*pager)->Flush().ok());
    EXPECT_EQ((*pager)->pages_written(), 3u);
    // Freshly allocated pages are cached: no reads.
    EXPECT_EQ((*pager)->pages_read(), 0u);
  }
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  ASSERT_TRUE((*pager)->Fetch(1).ok());
  ASSERT_TRUE((*pager)->Fetch(1).ok());  // second fetch hits the cache
  EXPECT_EQ((*pager)->pages_read(), 1u);
}

TEST_F(PagerTest, CorruptSizeRejected) {
  ASSERT_TRUE(WriteFile(path_, std::string(kPageSize + 17, 'x')).ok());
  EXPECT_TRUE(Pager::Open(path_).status().IsCorruption());
}

TEST_F(PagerTest, ManyPagesSurviveRoundTrip) {
  const int kPages = 300;  // ~2.4 MB file
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    for (int i = 0; i < kPages; ++i) {
      auto id = (*pager)->Allocate();
      ASSERT_TRUE(id.ok());
      auto page = (*pager)->Fetch(*id);
      std::string payload = "payload-" + std::to_string(i);
      page->Insert(payload);
      (*pager)->MarkDirty(*id);
    }
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  ASSERT_EQ((*pager)->page_count(), static_cast<PageId>(kPages));
  for (int i = 0; i < kPages; i += 37) {
    auto page = (*pager)->Fetch(static_cast<PageId>(i));
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->Get(0), "payload-" + std::to_string(i));
  }
}

TEST_F(PagerTest, FlushPropagatesWriteErrorAndKeepsPageDirty) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  for (int i = 0; i < 3; ++i) {
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    auto page = (*pager)->Fetch(*id);
    page->Insert("page " + std::to_string(i));
    (*pager)->MarkDirty(*id);
  }
  // Page 1's write fails with EIO; pages 0 and 2 must still be attempted.
  int failures = 0;
  (*pager)->set_write_fn_for_test(
      [&failures](int fd, const void* buf, size_t count, off_t offset) -> ssize_t {
        if (offset == static_cast<off_t>(1) * kPageSize) {
          ++failures;
          errno = EIO;
          return -1;
        }
        return ::pwrite(fd, buf, count, offset);
      });
  netmark::Status st = (*pager)->Flush();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_EQ(failures, 1);
  EXPECT_EQ((*pager)->pages_written(), 2u);

  // The failed page stayed dirty: an unimpeded retry completes the flush.
  (*pager)->set_write_fn_for_test(nullptr);
  ASSERT_TRUE((*pager)->Flush().ok());
  EXPECT_EQ((*pager)->pages_written(), 3u);
  pager->reset();

  auto reopened = Pager::Open(path_);
  ASSERT_TRUE(reopened.ok());
  for (PageId i = 0; i < 3; ++i) {
    auto page = (*reopened)->Fetch(i);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->Get(0), "page " + std::to_string(i));
  }
}

TEST_F(PagerTest, PartialWriteIsAnErrorNotSilentSuccess) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  auto id = (*pager)->Allocate();
  ASSERT_TRUE(id.ok());
  auto page = (*pager)->Fetch(*id);
  page->Insert("short write victim");
  (*pager)->MarkDirty(*id);
  // First attempt writes only half the page (e.g. ENOSPC mid-page).
  bool first = true;
  (*pager)->set_write_fn_for_test(
      [&first](int fd, const void* buf, size_t count, off_t offset) -> ssize_t {
        if (first) {
          first = false;
          return ::pwrite(fd, buf, count / 2, offset);
        }
        return ::pwrite(fd, buf, count, offset);
      });
  netmark::Status st = (*pager)->Flush();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_EQ((*pager)->pages_written(), 0u);
  // Retry rewrites the whole page, not just the missing tail.
  ASSERT_TRUE((*pager)->Flush().ok());
  EXPECT_EQ((*pager)->pages_written(), 1u);
}

TEST_F(PagerTest, TakeDirtySinceMarkTracksAllocationsAndDirties) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  EXPECT_TRUE((*pager)->TakeDirtySinceMark().empty());
  auto a = (*pager)->Allocate();
  auto b = (*pager)->Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  (*pager)->MarkDirty(*a);
  std::vector<PageId> taken = (*pager)->TakeDirtySinceMark();
  EXPECT_EQ(taken, (std::vector<PageId>{*a, *b}));  // sorted, deduplicated
  // The call clears the mark; flushing does not repopulate it.
  EXPECT_TRUE((*pager)->TakeDirtySinceMark().empty());
  (*pager)->MarkDirty(*b);
  EXPECT_EQ((*pager)->TakeDirtySinceMark(), (std::vector<PageId>{*b}));
}

TEST(RowIdTest, PackUnpackRoundTrip) {
  for (RowId id : {RowId(0, 0), RowId(1, 2), RowId(123456, 65535),
                   RowId(0xFFFFFFFE, 1)}) {
    EXPECT_EQ(RowId::Unpack(id.Pack()), id);
  }
  EXPECT_FALSE(RowId::Unpack(RowId::kInvalidPacked).valid());
  EXPECT_EQ(kInvalidRowId.Pack(), RowId::kInvalidPacked);
  EXPECT_LT(RowId(1, 5), RowId(2, 0));
  EXPECT_LT(RowId(1, 5), RowId(1, 6));
}

}  // namespace
}  // namespace netmark::storage
