// Fig 5 — the NETMARK generated schema: ONE fixed pair of tables (XML+DOC)
// stores any document type, vs. the shredding approach that generates
// relations per element type (Shanmugasundaram-style, paper §2.1.1).
//
// Reproduced series:
//   - DDL statements as heterogeneous document types arrive
//     (NETMARK constant, shredder grows with type/tag diversity);
//   - insert throughput for both stores;
//   - reconstruction cost (the shredder pays a multi-table reassembly join).

#include <benchmark/benchmark.h>

#include "baseline/shredding_store.h"
#include "bench/bench_util.h"
#include "convert/registry.h"
#include "workload/corpus.h"
#include "xml/parser.h"

namespace {

using namespace netmark;

// Converts a mixed corpus into DOMs once (both stores consume DOMs).
std::vector<std::pair<std::string, xml::Document>> ConvertedCorpus(size_t n,
                                                                   uint64_t seed) {
  workload::CorpusGenerator gen(seed);
  convert::ConverterRegistry registry = convert::ConverterRegistry::Default();
  std::vector<std::pair<std::string, xml::Document>> out;
  for (const auto& doc : gen.MixedCorpus(n)) {
    auto converted = registry.Convert(doc.file_name, doc.content);
    bench::Check(converted.status(), "convert");
    out.emplace_back(doc.file_name, std::move(*converted));
  }
  return out;
}

void BM_NetmarkInsert(benchmark::State& state) {
  auto corpus = ConvertedCorpus(static_cast<size_t>(state.range(0)), 5);
  uint64_t ddl = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto dir = bench::Unwrap(TempDir::Make("nmstore"), "dir");
    auto store = bench::Unwrap(xmlstore::XmlStore::Open(dir.Sub("s").string()),
                               "open");
    state.ResumeTiming();
    for (const auto& [name, doc] : corpus) {
      xmlstore::DocumentInfo info;
      info.file_name = name;
      bench::Check(store->InsertDocument(doc, info).status(), "insert");
    }
    state.PauseTiming();
    ddl = store->database()->ddl_statements();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["ddl_statements"] = static_cast<double>(ddl);
}
BENCHMARK(BM_NetmarkInsert)->Arg(60)->Arg(240)->Unit(benchmark::kMillisecond);

void BM_ShredderInsert(benchmark::State& state) {
  auto corpus = ConvertedCorpus(static_cast<size_t>(state.range(0)), 5);
  uint64_t ddl = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto dir = bench::Unwrap(TempDir::Make("shred"), "dir");
    auto store = bench::Unwrap(baseline::ShreddingStore::Open(dir.Sub("s").string()),
                               "open");
    state.ResumeTiming();
    for (const auto& [name, doc] : corpus) {
      xmlstore::DocumentInfo info;
      info.file_name = name;
      bench::Check(store->InsertDocument(doc, info).status(), "insert");
    }
    state.PauseTiming();
    ddl = store->ddl_statements();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["ddl_statements"] = static_cast<double>(ddl);
}
BENCHMARK(BM_ShredderInsert)->Arg(60)->Arg(240)->Unit(benchmark::kMillisecond);

void BM_NetmarkReconstruct(benchmark::State& state) {
  auto corpus = ConvertedCorpus(60, 5);
  auto dir = bench::Unwrap(TempDir::Make("nmrec"), "dir");
  auto store = bench::Unwrap(xmlstore::XmlStore::Open(dir.Sub("s").string()), "open");
  std::vector<int64_t> ids;
  for (const auto& [name, doc] : corpus) {
    xmlstore::DocumentInfo info;
    info.file_name = name;
    ids.push_back(bench::Unwrap(store->InsertDocument(doc, info), "insert"));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto doc = store->Reconstruct(ids[i % ids.size()]);
    bench::Check(doc.status(), "reconstruct");
    benchmark::DoNotOptimize(doc->size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetmarkReconstruct)->Unit(benchmark::kMicrosecond);

void BM_ShredderReconstruct(benchmark::State& state) {
  auto corpus = ConvertedCorpus(60, 5);
  auto dir = bench::Unwrap(TempDir::Make("shrec"), "dir");
  auto store =
      bench::Unwrap(baseline::ShreddingStore::Open(dir.Sub("s").string()), "open");
  std::vector<int64_t> ids;
  for (const auto& [name, doc] : corpus) {
    xmlstore::DocumentInfo info;
    info.file_name = name;
    ids.push_back(bench::Unwrap(store->InsertDocument(doc, info), "insert"));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto doc = store->Reconstruct(ids[i % ids.size()]);
    bench::Check(doc.status(), "reconstruct");
    benchmark::DoNotOptimize(doc->size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShredderReconstruct)->Unit(benchmark::kMicrosecond);

void PrintDdlGrowthTable() {
  bench::ReportHeader(
      "Fig 5: schema-less two-table storage vs schema-per-type shredding",
      "NETMARK stores any document type with a constant schema; shredding "
      "pays DDL per new document type and per new tag");
  std::printf("%12s %22s %22s %18s\n", "documents", "NETMARK DDL stmts",
              "shredder DDL stmts", "shredder tables");
  for (size_t n : {6, 12, 30, 60, 120, 240}) {
    auto corpus = ConvertedCorpus(n, 5);
    auto dir = bench::Unwrap(TempDir::Make("fig5"), "dir");
    auto nm = bench::Unwrap(xmlstore::XmlStore::Open(dir.Sub("nm").string()), "nm");
    auto shred =
        bench::Unwrap(baseline::ShreddingStore::Open(dir.Sub("sh").string()), "sh");
    for (const auto& [name, doc] : corpus) {
      xmlstore::DocumentInfo info;
      info.file_name = name;
      bench::Check(nm->InsertDocument(doc, info).status(), "nm insert");
      bench::Check(shred->InsertDocument(doc, info).status(), "shred insert");
    }
    std::printf("%12zu %22llu %22llu %18zu\n", n,
                static_cast<unsigned long long>(nm->database()->ddl_statements()),
                static_cast<unsigned long long>(shred->ddl_statements()),
                shred->table_count());
  }
  std::printf("shape check: NETMARK column constant (the 5 statements that\n"
              "create XML, DOC and their indexes); shredder DDL tracks the\n"
              "corpus's type/tag diversity (saturated here at 6 fixed types).\n");
}

// The unbounded case: enterprises keep inventing document shapes. Feed both
// stores batches where every batch introduces brand-new element types.
void PrintUnboundedDiversityTable() {
  bench::ReportHeader(
      "Fig 5 (continued): unbounded document-shape diversity",
      "new document shapes keep arriving forever; only the schema-less store "
      "has a bounded schema");
  auto dir = bench::Unwrap(TempDir::Make("fig5u"), "dir");
  auto nm = bench::Unwrap(xmlstore::XmlStore::Open(dir.Sub("nm").string()), "nm");
  auto shred =
      bench::Unwrap(baseline::ShreddingStore::Open(dir.Sub("sh").string()), "sh");
  std::printf("%16s %22s %22s\n", "novel doc types", "NETMARK DDL stmts",
              "shredder DDL stmts");
  int type_counter = 0;
  for (int batch : {4, 8, 16, 32, 64}) {
    while (type_counter < batch) {
      // Each "department" mints its own vocabulary: unique root + field tags.
      std::string t = std::to_string(type_counter++);
      std::string markup = "<form" + t + "><field" + t + "_a>v</field" + t +
                           "_a><field" + t + "_b>w</field" + t + "_b></form" + t +
                           ">";
      auto doc = xml::ParseXml(markup);
      bench::Check(doc.status(), "parse");
      xmlstore::DocumentInfo info;
      info.file_name = "form" + t + ".xml";
      bench::Check(nm->InsertDocument(*doc, info).status(), "nm insert");
      bench::Check(shred->InsertDocument(*doc, info).status(), "shred insert");
    }
    std::printf("%16d %22llu %22llu\n", batch,
                static_cast<unsigned long long>(nm->database()->ddl_statements()),
                static_cast<unsigned long long>(shred->ddl_statements()));
  }
  std::printf("shape check: shredder DDL grows without bound (~8 statements per\n"
              "novel type: a table + index per tag); NETMARK stays at 5 forever.\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintDdlGrowthTable();
  PrintUnboundedDiversityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
