// Reactor scalability benchmark: N idle keep-alive connections held open
// against the epoll server while a closed-loop query load and a concurrent
// ingestion writer run. The point of the reactor is that quiet sockets cost
// one epoll registration, not a parked worker — so active-request latency
// with 10k idle connections must stay close to the PR 5 worker-pool
// baseline measured with no idle connections at all.
//
// Phases:
//   A (optional, NETMARK_BENCH_REACTOR_COMPARE=1): threadpool baseline —
//     closed-loop clients only, the old connection model.
//   B: epoll — prime N idle keep-alive connections, run the same closed
//     loop plus the ingestion writer, then verify sampled idle connections
//     still answer and the open_connections gauge saw them all.
//
// Emits JSONL including a {"metric":"netmark_reactor_active_request_micros",
// "p50",...} summary line the CI serving-stress job gates with
// tools/check_bench_regression.py --metric.
//
// Knobs (env): NETMARK_BENCH_REACTOR_CONNS (default 10000, auto-capped to
// the fd limit), _CLIENTS (4), _SECONDS (2), _SEED (1), _COMPARE (1),
// _MAX_RATIO (0 = report only; CI sets 1.25 to enforce the 25% bound).

#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "server/http_client.h"
#include "server/http_message.h"

namespace netmark {
namespace {

constexpr size_t kCorpusSize = 60;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  int64_t parsed = std::atoll(value);
  return parsed > 0 ? parsed : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  double parsed = std::atof(value);
  return parsed > 0 ? parsed : fallback;
}

double Percentile(std::vector<double>& latencies, double q) {
  if (latencies.empty()) return 0;
  size_t idx = std::min(latencies.size() - 1,
                        static_cast<size_t>(q * static_cast<double>(latencies.size())));
  std::nth_element(latencies.begin(), latencies.begin() + static_cast<ptrdiff_t>(idx),
                   latencies.end());
  return latencies[idx];
}

/// Raises RLIMIT_NOFILE to the hard limit; returns the resulting soft limit.
size_t RaiseFdLimit() {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  rl.rlim_cur = rl.rlim_max;
  ::setrlimit(RLIMIT_NOFILE, &rl);
  ::getrlimit(RLIMIT_NOFILE, &rl);
  return static_cast<size_t>(rl.rlim_cur);
}

/// Sends one keep-alive GET on an already-connected socket and reads the
/// complete response (framed exactly as the server frames requests).
/// Returns true on a 200 with the connection left open.
bool RoundTrip(int fd, const char* target) {
  std::string request = std::string("GET ") + target +
                        " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                        "Connection: keep-alive\r\nContent-Length: 0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  std::string buffer;
  size_t head_end = std::string::npos;
  char chunk[4096];
  while (server::CompleteMessageBytes(buffer, &head_end) == 0) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF or timeout before a complete response
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  return buffer.compare(0, 12, "HTTP/1.1 200") == 0;
}

/// Connects to the server (with retries — 10k connects can transiently
/// overflow the listen backlog) and primes one keep-alive request so the
/// connection is a real, served, idle keep-alive socket. Returns the fd or
/// -1.
int DialIdleConn(uint16_t port) {
  for (int attempt = 0; attempt < 5; ++attempt) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    timeval tv{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
        RoundTrip(fd, "/healthz")) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(5 * (attempt + 1)));
  }
  return -1;
}

struct RunResult {
  double ops_per_sec = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  uint64_t ops = 0;
  uint64_t failures = 0;
};

/// Closed loop: each client issues the next request as soon as the previous
/// response arrives (mixed document fetch + XDB query), with an ingestion
/// writer committing concurrently — the measured "active requests".
RunResult RunActiveLoad(Netmark* nm, int clients, double seconds,
                        const std::vector<int64_t>& doc_ids) {
  uint16_t port = nm->server_port();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::vector<std::vector<double>> latencies(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      server::HttpClient client("127.0.0.1", port);
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        int64_t start = MonotonicMicros();
        auto response =
            (i % 2 == 0)
                ? client.Get("/docs/" + std::to_string(doc_ids[i % doc_ids.size()]))
                : client.Get("/xdb?context=Budget&limit=10");
        int64_t micros = MonotonicMicros() - start;
        if (response.ok() && response->status == 200) {
          latencies[static_cast<size_t>(t)].push_back(static_cast<double>(micros));
        } else {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
      }
    });
  }
  // Ingestion writer: keeps exclusive-lock commits flowing so the figures
  // reflect the contended serving path, not an idle store.
  std::thread writer([&] {
    workload::CorpusGenerator gen(11);
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto doc = gen.MixedCorpus(1);
      bench::Check(nm->IngestContent("reactor-writer-" + std::to_string(i++) + ".txt",
                                     doc[0].content)
                       .status(),
                   "writer ingest");
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  int64_t t0 = MonotonicMicros();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  writer.join();
  double elapsed = static_cast<double>(MonotonicMicros() - t0) / 1e6;

  RunResult result;
  std::vector<double> all;
  for (std::vector<double>& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  result.ops = all.size();
  result.failures = failures.load();
  result.ops_per_sec = elapsed > 0 ? static_cast<double>(all.size()) / elapsed : 0;
  result.p50_us = Percentile(all, 0.5);
  result.p95_us = Percentile(all, 0.95);
  result.p99_us = Percentile(all, 0.99);
  return result;
}

double GaugeValue(const observability::MetricsRegistry& registry,
                  const std::string& name) {
  observability::MetricsSnapshot snap = registry.Collect();
  for (const auto& g : snap.gauges) {
    if (g.name == name) return g.value;
  }
  return -1;
}

}  // namespace
}  // namespace netmark

int main() {
  using namespace netmark;

  size_t fd_limit = RaiseFdLimit();
  size_t conns = static_cast<size_t>(EnvInt("NETMARK_BENCH_REACTOR_CONNS", 10000));
  // Client and server ends both live in this process: two fds per idle
  // connection, plus slack for the store, clients, and epoll plumbing.
  size_t max_conns = fd_limit > 1024 ? (fd_limit - 512) / 2 : 128;
  if (conns > max_conns) {
    std::printf("fd limit %zu caps idle connections at %zu (asked %zu)\n",
                fd_limit, max_conns, conns);
    conns = max_conns;
  }
  int clients = static_cast<int>(EnvInt("NETMARK_BENCH_REACTOR_CLIENTS", 4));
  double seconds = EnvDouble("NETMARK_BENCH_REACTOR_SECONDS", 2.0);
  uint64_t seed = static_cast<uint64_t>(EnvInt("NETMARK_BENCH_REACTOR_SEED", 1));
  bool compare = EnvInt("NETMARK_BENCH_REACTOR_COMPARE", 1) != 0;
  double max_ratio = EnvDouble("NETMARK_BENCH_REACTOR_MAX_RATIO", 0.0);

  bench::ReportHeader("Reactor scalability (idle keep-alive fan-in)",
                      "a lean mediator multiplexes thousands of quiet client "
                      "connections without a per-connection thread");
  bench::JsonLines jsonl("reactor");
  char config[200];
  std::snprintf(config, sizeof(config),
                "conns=%zu,clients=%d,workers=%d,seconds=%g,compare=%d,"
                "mix=docs+xdb,writer=50ops/s",
                conns, clients, server::HttpServerOptions{}.worker_threads,
                seconds, compare ? 1 : 0);
  jsonl.EmitConfig(config);
  std::printf("%-28s %10s %12s %10s %10s %8s\n", "phase", "idle_conns",
              "ops/s", "p50_us", "p99_us", "errors");

  double baseline_p50 = 0;
  if (compare) {
    // Phase A: the PR 5 worker-per-connection model, no idle connections —
    // the latency bar the reactor must stay within 25% of.
    NetmarkOptions options;
    options.http_server.reactor = server::ReactorModel::kThreadPool;
    bench::LoadedInstance base =
        bench::MakeLoadedInstance(kCorpusSize, options, 2025 + seed);
    bench::Check(base.nm->StartServer(0), "start threadpool server");
    auto docs = bench::Unwrap(base.nm->ListDocuments(), "list docs");
    std::vector<int64_t> doc_ids;
    for (const auto& doc : docs) doc_ids.push_back(doc.doc_id);
    RunResult r = RunActiveLoad(base.nm.get(), clients, seconds, doc_ids);
    baseline_p50 = r.p50_us;
    std::printf("%-28s %10d %12.0f %10.0f %10.0f %8llu\n",
                "threadpool-baseline", 0, r.ops_per_sec, r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.failures));
    jsonl.Emit("threadpool_baseline_p50", static_cast<double>(clients),
               r.p50_us * 1000.0, r.ops_per_sec, "ops/s");
    base.nm->StopServer();
  }

  // Phase B: epoll reactor with `conns` primed idle keep-alive connections.
  NetmarkOptions options;
  options.http_server.reactor = server::ReactorModel::kEpoll;
  // Idle connections must survive the whole run, and priming counts one
  // request per connection — neither may trigger reap or rotation.
  options.http_server.idle_timeout_ms = 600000;
  options.http_server.max_requests_per_connection = 1 << 30;
  bench::LoadedInstance inst =
      bench::MakeLoadedInstance(kCorpusSize, options, 2025 + seed);
  bench::Check(inst.nm->StartServer(0), "start epoll server");
  uint16_t port = inst.nm->server_port();
  auto docs = bench::Unwrap(inst.nm->ListDocuments(), "list docs");
  std::vector<int64_t> doc_ids;
  for (const auto& doc : docs) doc_ids.push_back(doc.doc_id);

  // Prime the idle fleet from a few threads (a serial loop of 10k
  // roundtrips would dominate the run).
  int primers = static_cast<int>(
      std::min<size_t>(8, std::max<size_t>(1, conns / 256 + 1)));
  std::vector<std::vector<int>> fleet_parts(static_cast<size_t>(primers));
  std::atomic<size_t> failed_dials{0};
  {
    std::vector<std::thread> threads;
    int64_t prime_start = MonotonicMicros();
    for (int p = 0; p < primers; ++p) {
      threads.emplace_back([&, p] {
        size_t share = conns / static_cast<size_t>(primers) +
                       (static_cast<size_t>(p) < conns % static_cast<size_t>(primers) ? 1 : 0);
        fleet_parts[static_cast<size_t>(p)].reserve(share);
        for (size_t i = 0; i < share; ++i) {
          int fd = DialIdleConn(port);
          if (fd < 0) {
            failed_dials.fetch_add(1);
            continue;
          }
          fleet_parts[static_cast<size_t>(p)].push_back(fd);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    std::printf("primed %zu/%zu idle connections in %.2fs (%zu dial failures)\n",
                conns - failed_dials.load(), conns,
                static_cast<double>(MonotonicMicros() - prime_start) / 1e6,
                failed_dials.load());
  }
  std::vector<int> fleet;
  fleet.reserve(conns);
  for (auto& part : fleet_parts) {
    fleet.insert(fleet.end(), part.begin(), part.end());
  }
  double open_gauge_primed =
      GaugeValue(*inst.nm->metrics(), "netmark_http_server_open_connections");

  RunResult r = RunActiveLoad(inst.nm.get(), clients, seconds, doc_ids);
  std::printf("%-28s %10zu %12.0f %10.0f %10.0f %8llu\n", "epoll+idle-fleet",
              fleet.size(), r.ops_per_sec, r.p50_us, r.p99_us,
              static_cast<unsigned long long>(r.failures));

  // The fleet must have survived the load: spot-check that sampled idle
  // connections still answer on the same socket.
  size_t sample = std::min<size_t>(64, fleet.size());
  size_t alive = 0;
  for (size_t i = 0; i < sample; ++i) {
    size_t idx = i * (fleet.size() / std::max<size_t>(sample, 1));
    if (RoundTrip(fleet[idx], "/healthz")) ++alive;
  }
  std::printf("idle-fleet spot check: %zu/%zu sampled connections alive; "
              "open_connections gauge at prime time: %.0f\n",
              alive, sample, open_gauge_primed);

  jsonl.Emit("epoll_active_p50", static_cast<double>(fleet.size()),
             r.p50_us * 1000.0, r.ops_per_sec, "ops/s");
  jsonl.Emit("epoll_active_p99", static_cast<double>(fleet.size()),
             r.p99_us * 1000.0, r.ops_per_sec, "ops/s");
  jsonl.Emit("sustained_idle_conns", static_cast<double>(conns),
             0.0, static_cast<double>(fleet.size()), "conns");
  jsonl.EmitSummary("netmark_reactor_active_request_micros", r.ops, r.p50_us,
                    r.p95_us, r.p99_us);
  jsonl.EmitMetrics(*inst.nm->metrics());

  bool ok = true;
  if (fleet.size() < conns) {
    std::printf("FAIL: sustained only %zu of %zu idle connections\n",
                fleet.size(), conns);
    ok = false;
  }
  if (alive < sample) {
    std::printf("FAIL: %zu of %zu sampled idle connections died under load\n",
                sample - alive, sample);
    ok = false;
  }
  if (open_gauge_primed >= 0 &&
      open_gauge_primed < static_cast<double>(fleet.size())) {
    std::printf("FAIL: open_connections gauge %.0f below fleet size %zu\n",
                open_gauge_primed, fleet.size());
    ok = false;
  }
  if (compare && max_ratio > 0 && baseline_p50 > 0 &&
      r.p50_us > baseline_p50 * max_ratio) {
    std::printf("FAIL: epoll p50 %.0fus exceeds %.2fx threadpool baseline "
                "%.0fus\n",
                r.p50_us, max_ratio, baseline_p50);
    ok = false;
  } else if (compare && baseline_p50 > 0) {
    std::printf("epoll p50 / threadpool p50 = %.2f\n", r.p50_us / baseline_p50);
  }

  inst.nm->StopServer();  // drain retires the idle fleet server-side
  for (int fd : fleet) ::close(fd);
  std::printf("results: %s\n", jsonl.path().c_str());
  return ok ? 0 : 1;
}
