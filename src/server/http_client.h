// Deadline-bounded HTTP/1.1 client (loopback-oriented) plus the federation
// transport adapter.
//
// Every call is bounded: non-blocking connect raced against a connect
// timeout, then poll()-gated send/recv loops raced against a total-request
// deadline. No caller can block indefinitely — the conservative defaults
// apply even when no explicit deadline is given.

#ifndef NETMARK_SERVER_HTTP_CLIENT_H_
#define NETMARK_SERVER_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "federation/remote_source.h"
#include "server/http_message.h"

namespace netmark::server {

/// Client-side timeout knobs. A zero disables that bound (not recommended).
struct HttpClientOptions {
  int64_t connect_timeout_ms = 5000;  ///< TCP connect budget
  int64_t total_timeout_ms = 30000;   ///< whole request (connect+send+recv)
};

/// \brief One-request-per-connection HTTP client with deadlines.
class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port, HttpClientOptions options = {})
      : host_(std::move(host)), port_(port), options_(options) {}

  /// Sends one request. `deadline_micros` (MonotonicMicros time, 0 = none)
  /// further tightens the option timeouts; on expiry the call returns
  /// Status::DeadlineExceeded.
  netmark::Result<HttpResponse> Send(const HttpRequest& request,
                                     int64_t deadline_micros = 0) const;

  netmark::Result<HttpResponse> Get(const std::string& target) const;
  netmark::Result<HttpResponse> Put(const std::string& target,
                                    std::string body,
                                    std::string content_type = "text/plain") const;
  netmark::Result<HttpResponse> Delete(const std::string& target) const;
  netmark::Result<HttpResponse> Propfind(const std::string& target) const;

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  const HttpClientOptions& options() const { return options_; }

 private:
  std::string host_;
  uint16_t port_;
  HttpClientOptions options_;
};

/// \brief federation::HttpTransport over HttpClient — wires RemoteSource to
/// real sockets. Maps HTTP 5xx to retryable Unavailable and 4xx to
/// non-retryable InvalidArgument.
class SocketTransport : public federation::HttpTransport {
 public:
  SocketTransport(std::string host, uint16_t port, HttpClientOptions options = {})
      : client_(std::move(host), port, options) {}

  using federation::HttpTransport::Get;
  netmark::Result<std::string> Get(const std::string& path_and_query,
                                   const federation::CallContext& ctx) override;

 private:
  HttpClient client_;
};

}  // namespace netmark::server

#endif  // NETMARK_SERVER_HTTP_CLIENT_H_
