#include "baseline/gav_mediator.h"

#include "common/string_util.h"

namespace netmark::baseline {

bool Predicate::Eval(const Record& record) const {
  auto it = record.find(attribute);
  if (it == record.end()) return false;
  const std::string& actual = it->second;
  auto lhs_num = netmark::ParseDouble(actual);
  auto rhs_num = netmark::ParseDouble(value);
  int cmp;
  if (lhs_num.ok() && rhs_num.ok()) {
    double a = *lhs_num;
    double b = *rhs_num;
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else {
    cmp = actual.compare(value);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (op) {
    case Op::kEq:
      return cmp == 0;
    case Op::kNe:
      return cmp != 0;
    case Op::kLt:
      return cmp < 0;
    case Op::kLe:
      return cmp <= 0;
    case Op::kGt:
      return cmp > 0;
    case Op::kGe:
      return cmp >= 0;
  }
  return false;
}

netmark::Status GavMediator::RegisterSource(RecordSource source) {
  if (sources_.count(source.name) != 0) {
    return netmark::Status::AlreadyExists("source " + source.name +
                                          " already registered");
  }
  if (source.attributes.empty()) {
    return netmark::Status::InvalidArgument("source " + source.name +
                                            " needs a schema");
  }
  // Validate records against the declared schema — the rigidity the paper
  // complains about is enforced, not just counted.
  for (const Record& record : source.records) {
    for (const auto& [attr, value] : record) {
      bool declared = false;
      for (const std::string& a : source.attributes) {
        if (a == attr) {
          declared = true;
          break;
        }
      }
      if (!declared) {
        return netmark::Status::InvalidArgument(
            "record attribute '" + attr + "' not in schema of " + source.name);
      }
    }
  }
  std::string name = source.name;
  sources_[name] = std::move(source);
  ++artifacts_;  // one authored source schema
  return netmark::Status::OK();
}

netmark::Status GavMediator::DefineView(GlobalView view) {
  if (views_.count(view.name) != 0) {
    return netmark::Status::AlreadyExists("view " + view.name + " already defined");
  }
  for (const SourceMapping& mapping : view.mappings) {
    auto src = sources_.find(mapping.source);
    if (src == sources_.end()) {
      return netmark::Status::NotFound("view " + view.name +
                                       " maps unknown source " + mapping.source);
    }
    // Every global attribute must be mapped to a declared source attribute.
    for (const std::string& attr : view.attributes) {
      auto m = mapping.attribute_map.find(attr);
      if (m == mapping.attribute_map.end()) {
        return netmark::Status::InvalidArgument(
            "mapping for " + mapping.source + " misses global attribute " + attr);
      }
      bool declared = false;
      for (const std::string& a : src->second.attributes) {
        if (a == m->second) {
          declared = true;
          break;
        }
      }
      if (!declared) {
        return netmark::Status::InvalidArgument(
            "mapping for " + mapping.source + " targets unknown attribute " +
            m->second);
      }
    }
  }
  artifacts_ += 1 + view.mappings.size();  // the view + one mapping per source
  std::string name = view.name;
  views_[name] = std::move(view);
  return netmark::Status::OK();
}

netmark::Result<std::vector<Record>> GavMediator::QuerySource(
    const std::string& source, const std::vector<Predicate>& predicates) const {
  auto it = sources_.find(source);
  if (it == sources_.end()) {
    return netmark::Status::NotFound("no source " + source);
  }
  std::vector<Record> out;
  for (const Record& record : it->second.records) {
    bool keep = true;
    for (const Predicate& p : predicates) {
      if (!p.Eval(record)) {
        keep = false;
        break;
      }
    }
    if (keep) out.push_back(record);
  }
  return out;
}

netmark::Result<std::vector<Record>> GavMediator::Query(
    const std::string& view, const std::vector<Predicate>& predicates) const {
  auto it = views_.find(view);
  if (it == views_.end()) {
    return netmark::Status::NotFound("no view " + view);
  }
  std::vector<Record> out;
  for (const SourceMapping& mapping : it->second.mappings) {
    // View unfolding: rewrite global predicates into source attribute space
    // and conjoin the mapping's baked-in filters.
    std::vector<Predicate> source_predicates = mapping.filters;
    bool mappable = true;
    for (const Predicate& p : predicates) {
      auto m = mapping.attribute_map.find(p.attribute);
      if (m == mapping.attribute_map.end()) {
        mappable = false;  // source cannot answer; contributes nothing
        break;
      }
      Predicate rewritten = p;
      rewritten.attribute = m->second;
      source_predicates.push_back(std::move(rewritten));
    }
    if (!mappable) continue;
    NETMARK_ASSIGN_OR_RETURN(std::vector<Record> rows,
                             QuerySource(mapping.source, source_predicates));
    // Rename back to the global schema.
    for (Record& row : rows) {
      Record global;
      for (const std::string& attr : it->second.attributes) {
        auto m = mapping.attribute_map.find(attr);
        auto v = row.find(m->second);
        if (v != row.end()) global[attr] = v->second;
      }
      global["_source"] = mapping.source;
      out.push_back(std::move(global));
    }
  }
  return out;
}

}  // namespace netmark::baseline
