// FaultInjectingTransport: a chaos-engineering wrapper over any HttpTransport.
//
// Injects seeded, reproducible faults — connection errors, HTTP 5xx-style
// failures, added latency, hangs that burn the caller's whole deadline, and
// truncated or malformed response bodies. The deterministic chaos-test suite
// drives the federation router through this wrapper to prove the resilience
// layer (deadlines, retries, breakers, partial results) under every failure
// mode the paper's "databank keeps serving" claim implies.

#ifndef NETMARK_FEDERATION_FAULT_INJECTION_H_
#define NETMARK_FEDERATION_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "federation/remote_source.h"

namespace netmark::federation {

/// Probabilities and shapes of the injected faults. All rates are in [0, 1]
/// and evaluated in the order they are declared; at most one fault fires per
/// call.
struct FaultSpec {
  /// Fail the first N calls unconditionally with Unavailable("connection
  /// refused") — the flaky-then-healthy recovery scenario.
  int fail_first_n = 0;
  /// Connection-level failure (refused / reset): retryable Unavailable.
  double error_rate = 0.0;
  /// Server-side failure: retryable Unavailable carrying "HTTP 500".
  double http_500_rate = 0.0;
  /// Body cut off mid-stream: retryable IOError("truncated body").
  double truncate_rate = 0.0;
  /// Body replaced with non-XML garbage: surfaces as a ParseError upstream
  /// (never retried).
  double malformed_rate = 0.0;
  /// Hang until the caller's deadline expires (DeadlineExceeded); with no
  /// deadline, hang for `hang_ms` and then fail.
  double hang_rate = 0.0;
  int64_t hang_ms = 100;
  /// Fixed latency added to every call that reaches the inner transport.
  int64_t latency_ms = 0;

  static FaultSpec Healthy() { return FaultSpec{}; }
};

/// \brief HttpTransport decorator injecting seeded faults.
///
/// Thread-safe: concurrent fan-out may issue overlapping calls; the fault
/// dice and counters are mutex-guarded. The sequence of fault decisions is a
/// pure function of (seed, call order), so single-threaded chaos tests replay
/// exactly.
class FaultInjectingTransport : public HttpTransport {
 public:
  FaultInjectingTransport(std::unique_ptr<HttpTransport> inner, FaultSpec spec,
                          uint64_t seed)
      : inner_(std::move(inner)), spec_(spec), rng_(seed) {}

  using HttpTransport::Get;
  netmark::Result<std::string> Get(const std::string& path_and_query,
                                   const CallContext& ctx) override;

  /// Total calls observed (including faulted ones).
  int calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_;
  }

  /// Re-arms the fail-first-N counter (e.g. to re-break a recovered source).
  void FailNext(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    remaining_forced_failures_ = n;
  }

 private:
  enum class Fault { kNone, kError, kHttp500, kTruncate, kMalformed, kHang };
  Fault Roll();  // consumes rng under mu_

  std::unique_ptr<HttpTransport> inner_;
  const FaultSpec spec_;
  mutable std::mutex mu_;
  netmark::Rng rng_;
  int calls_ = 0;
  int remaining_forced_failures_ = -1;  // -1: use spec_.fail_first_n
};

}  // namespace netmark::federation

#endif  // NETMARK_FEDERATION_FAULT_INJECTION_H_
