#include "observability/trace_context.h"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>

#include "common/clock.h"
#include "common/rng.h"

namespace netmark::observability {

namespace {

bool IsLowerHex(std::string_view s) {
  for (char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

bool AllZero(std::string_view s) {
  for (char c : s) {
    if (c != '0') return false;
  }
  return true;
}

std::string Hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

uint64_t NextRandom64() {
  static std::atomic<uint64_t> counter{0};
  uint64_t seed = static_cast<uint64_t>(netmark::MonotonicMicros());
  seed ^= static_cast<uint64_t>(::getpid()) << 32;
  seed ^= counter.fetch_add(0x9E3779B97F4A7C15ULL, std::memory_order_relaxed);
  netmark::Rng rng(seed);
  return rng.Next();
}

}  // namespace

std::optional<TraceContext> ParseTraceparent(std::string_view header) {
  // 00-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx-xxxxxxxxxxxxxxxx-xx = 55 chars.
  if (header.size() < 55) return std::nullopt;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') {
    return std::nullopt;
  }
  std::string_view version = header.substr(0, 2);
  std::string_view trace_id = header.substr(3, 32);
  std::string_view span_id = header.substr(36, 16);
  std::string_view flags = header.substr(53, 2);
  if (!IsLowerHex(version) || !IsLowerHex(trace_id) || !IsLowerHex(span_id) ||
      !IsLowerHex(flags)) {
    return std::nullopt;
  }
  if (version == "ff") return std::nullopt;  // reserved per spec
  // Version 00 is exactly 55 chars; future versions may append fields after
  // another dash, which we'd ignore — but trailing garbage is malformed.
  if (header.size() > 55 && (version == "00" || header[55] != '-')) {
    return std::nullopt;
  }
  if (AllZero(trace_id) || AllZero(span_id)) return std::nullopt;
  TraceContext ctx;
  ctx.trace_id = std::string(trace_id);
  ctx.span_id = std::string(span_id);
  const int low_nibble = flags[1] <= '9' ? flags[1] - '0' : flags[1] - 'a' + 10;
  ctx.sampled = (low_nibble & 1) != 0;
  return ctx;
}

std::string FormatTraceparent(const std::string& trace_id,
                              const std::string& span_id, bool sampled) {
  return "00-" + trace_id + "-" + span_id + (sampled ? "-01" : "-00");
}

std::string GenerateTraceId() {
  uint64_t hi = NextRandom64();
  uint64_t lo = NextRandom64();
  if (hi == 0 && lo == 0) lo = 1;  // all-zero is invalid per spec
  return Hex64(hi) + Hex64(lo);
}

std::string DeriveSpanId(const std::string& trace_id, int span_index) {
  // FNV-1a over the trace id, perturbed by the span index; nonzero by
  // construction of the final mix.
  uint64_t h = 1469598103934665603ULL;
  for (char c : trace_id) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  h ^= static_cast<uint64_t>(span_index) + 0x9E3779B97F4A7C15ULL;
  h *= 1099511628211ULL;
  if (h == 0) h = 1;
  return Hex64(h);
}

}  // namespace netmark::observability
