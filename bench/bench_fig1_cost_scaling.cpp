// Fig 1 — "Costs of data integration": schema-centric middleware cost grows
// linearly with the number of integrated sources; NETMARK's declare-a-
// databank model stays flat (economies of scale).
//
// Cost proxy (what an administrator must author + measured setup time):
//   GAV mediator:   n source schemas + 1 global view + n mappings
//   NETMARK:        n one-line source registrations + 1 databank declaration
//
// The *shape* the figure plots: GAV artifacts grow ~2n while NETMARK's
// schema artifacts stay at zero regardless of n (registrations are not
// schema work — no attributes, mappings, or filters are authored).

#include <benchmark/benchmark.h>

#include "baseline/gav_mediator.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "federation/content_only_source.h"
#include "federation/router.h"
#include "workload/query_workload.h"
#include "xml/parser.h"

namespace {

using namespace netmark;

// Builds a GAV integration over n heterogeneous employee sources; returns
// artifacts authored.
size_t BuildGavIntegration(int n, baseline::GavMediator* mediator) {
  std::vector<std::string> centers = {"Ames", "Johnson", "Kennedy"};
  baseline::GlobalView view;
  view.name = "AllEmployees";
  view.attributes = {"name", "division"};
  for (int i = 0; i < n; ++i) {
    // Every source arrives with its own schema that must be registered and
    // mapped — the per-source administrative work Fig 1's linear line shows.
    auto source = workload::EmployeeSource(static_cast<uint64_t>(i) + 1,
                                           centers[static_cast<size_t>(i) % 3], 20);
    source.name += "_" + std::to_string(i);
    baseline::SourceMapping mapping;
    mapping.source = source.name;
    mapping.attribute_map = {{"name", source.attributes[0]},
                             {"division", "division"}};
    bench::Check(mediator->RegisterSource(std::move(source)), "register source");
    view.mappings.push_back(std::move(mapping));
  }
  bench::Check(mediator->DefineView(view), "define view");
  return mediator->artifacts_authored();
}

// Builds the NETMARK equivalent: n sources registered, one databank.
// Returns the number of *schema* artifacts authored (always zero) while
// registrations are counted separately by the caller.
void BuildNetmarkIntegration(int n, federation::Router* router) {
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) {
    auto source = std::make_shared<federation::ContentOnlySource>(
        "src" + std::to_string(i));
    auto doc = xml::ParseXml(
        "<document><context>Records</context><content>employee data " +
        std::to_string(i) + "</content></document>");
    source->AddDocument("records.xml", *doc);
    bench::Check(router->RegisterSource(source), "register source");
    names.push_back("src" + std::to_string(i));
  }
  bench::Check(router->DefineDatabank("all", names), "define databank");
}

void BM_GavIntegrationSetup(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  size_t artifacts = 0;
  for (auto _ : state) {
    baseline::GavMediator mediator;
    artifacts = BuildGavIntegration(n, &mediator);
  }
  state.counters["sources"] = n;
  state.counters["artifacts_authored"] = static_cast<double>(artifacts);
  state.counters["artifacts_per_source"] =
      static_cast<double>(artifacts) / static_cast<double>(n);
}
BENCHMARK(BM_GavIntegrationSetup)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_NetmarkIntegrationSetup(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    federation::Router router;
    BuildNetmarkIntegration(n, &router);
    benchmark::DoNotOptimize(router.HasDatabank("all"));
  }
  state.counters["sources"] = n;
  state.counters["schema_artifacts_authored"] = 0;  // the point of the paper
  state.counters["declarations"] = static_cast<double>(n) + 1;
}
BENCHMARK(BM_NetmarkIntegrationSetup)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void PrintCostTable() {
  bench::ReportHeader(
      "Fig 1: costs of data integration",
      "schema-centric cost grows linearly with #sources; NETMARK flat");
  std::printf("%8s %26s %30s\n", "sources", "GAV artifacts (schemas,",
              "NETMARK schema artifacts");
  std::printf("%8s %26s %30s\n", "", "views, mappings)", "(databank decls excluded)");
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    baseline::GavMediator mediator;
    size_t gav = BuildGavIntegration(n, &mediator);
    federation::Router router;
    BuildNetmarkIntegration(n, &router);
    std::printf("%8d %26zu %30d\n", n, gav, 0);
  }
  std::printf("shape check: GAV column ~ 2n+1 (linear); NETMARK column flat 0.\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintCostTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
