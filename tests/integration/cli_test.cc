// End-to-end tests driving the actual `netmark` CLI binary (path injected at
// compile time via NETMARK_BIN_PATH).

#include <gtest/gtest.h>

#include <array>
#include <cstdio>

#include "common/temp_dir.h"

namespace netmark {
namespace {

#ifndef NETMARK_BIN_PATH
#define NETMARK_BIN_PATH "netmark"
#endif

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult RunCli(const std::string& args) {
  std::string command = std::string(NETMARK_BIN_PATH) + " " + args + " 2>&1";
  CommandResult result;
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 1024> chunk;
  while (::fgets(chunk.data(), chunk.size(), pipe) != nullptr) {
    result.output += chunk.data();
  }
  int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("cli");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    data_ = dir_->Sub("data").string();
  }
  std::unique_ptr<TempDir> dir_;
  std::string data_;
};

TEST_F(CliTest, NoArgsPrintsUsage) {
  CommandResult r = RunCli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, IngestLsQueryGetRmLifecycle) {
  auto report = dir_->Sub("report.txt");
  ASSERT_TRUE(WriteFile(report,
                        "OVERVIEW\nThe shuttle passed review.\n\n"
                        "BUDGET\nTotal 500 thousand.\n")
                  .ok());

  CommandResult ingest = RunCli("ingest --data " + data_ + " " + report.string());
  EXPECT_EQ(ingest.exit_code, 0) << ingest.output;
  EXPECT_NE(ingest.output.find("doc 1"), std::string::npos);

  CommandResult ls = RunCli("ls --data " + data_);
  EXPECT_EQ(ls.exit_code, 0);
  EXPECT_NE(ls.output.find("report.txt"), std::string::npos);

  CommandResult query = RunCli("query --data " + data_ + " \"context=Budget\"");
  EXPECT_EQ(query.exit_code, 0) << query.output;
  EXPECT_NE(query.output.find("<context>BUDGET</context>"), std::string::npos);
  EXPECT_NE(query.output.find("500 thousand"), std::string::npos);

  CommandResult get = RunCli("get --data " + data_ + " 1");
  EXPECT_EQ(get.exit_code, 0);
  EXPECT_NE(get.output.find("shuttle passed review"), std::string::npos);

  CommandResult rm = RunCli("rm --data " + data_ + " 1");
  EXPECT_EQ(rm.exit_code, 0);
  CommandResult get_gone = RunCli("get --data " + data_ + " 1");
  EXPECT_NE(get_gone.exit_code, 0);
}

TEST_F(CliTest, QueryWithStylesheetFile) {
  auto doc = dir_->Sub("memo.md");
  ASSERT_TRUE(WriteFile(doc, "# Findings\n\nall systems nominal\n").ok());
  ASSERT_EQ(RunCli("ingest --data " + data_ + " " + doc.string()).exit_code, 0);

  auto sheet = dir_->Sub("report.xsl");
  ASSERT_TRUE(WriteFile(sheet,
                        "<xsl:stylesheet><xsl:template match=\"/\">"
                        "<count><xsl:value-of select=\"results/@count\"/></count>"
                        "</xsl:template></xsl:stylesheet>")
                  .ok());
  CommandResult r = RunCli("query --data " + data_ + " \"context=Findings\" --xslt " +
                           sheet.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("<count>1</count>"), std::string::npos);
}

TEST_F(CliTest, ErrorsAreReportedCleanly) {
  EXPECT_NE(RunCli("query \"context=x\"").exit_code, 0);       // missing --data
  EXPECT_NE(RunCli("get --data " + data_ + " abc").exit_code, 0);  // bad id
  EXPECT_NE(RunCli("ingest --data " + data_ + " /no/such/file.txt").exit_code, 0);
  EXPECT_NE(RunCli("frobnicate").exit_code, 0);                 // unknown command
}

}  // namespace
}  // namespace netmark
