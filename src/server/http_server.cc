#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/clock.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "server/epoll_reactor.h"

namespace netmark::server {

namespace {

/// Poll slice so blocked reads re-check draining_ promptly.
constexpr int kPollSliceMs = 100;

/// Writes all of `data`, polling through EAGAIN until `deadline_micros`
/// (monotonic). Bounds how long a worker can be held by a client that
/// stops reading its response.
netmark::Status WriteAll(int fd, std::string_view data,
                         int64_t deadline_micros) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        int64_t now = netmark::MonotonicMicros();
        if (now >= deadline_micros) {
          return netmark::Status::IOError("send: response write deadline");
        }
        pollfd pfd{fd, POLLOUT, 0};
        int slice = static_cast<int>(std::min<int64_t>(
            (deadline_micros - now) / 1000 + 1, kPollSliceMs));
        if (::poll(&pfd, 1, slice) >= 0) continue;
      }
      return netmark::Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return netmark::Status::OK();
}

enum class ReadOutcome {
  kMessage,     ///< one complete request extracted into *message
  kIdleClose,   ///< no request started before the idle deadline (quiet reap)
  kTimeout,     ///< request started but stalled past the read deadline
  kPeerClosed,  ///< clean EOF at a request boundary (client went away)
  kError,       ///< mid-request EOF or socket error (close quietly)
};

/// Reads one full HTTP message (framed by CompleteMessageBytes) from `fd`
/// into `*message`. `buffer` carries leftover bytes between calls, so
/// pipelined requests on a keep-alive connection are handled. The idle
/// deadline applies while waiting for the request's first byte, the
/// (fresher) read deadline from then on; `draining` cuts both short so
/// Stop() never waits a full idle timeout. Threadpool model only — the
/// epoll reactor frames incrementally off readiness events instead.
ReadOutcome ReadOneMessage(int fd, std::string& buffer,
                           const HttpServerOptions& options,
                           const std::atomic<bool>& draining,
                           std::string* message) {
  const int64_t start = netmark::MonotonicMicros();
  const int64_t idle_deadline = start + int64_t{options.idle_timeout_ms} * 1000;
  int64_t read_deadline = 0;  // set once the request's first byte is in
  int64_t drain_deadline = 0;
  size_t head_end = std::string::npos;
  bool message_started = !buffer.empty();
  if (message_started) {
    read_deadline = start + int64_t{options.read_timeout_ms} * 1000;
  }

  char chunk[4096];
  while (true) {
    size_t total = CompleteMessageBytes(buffer, &head_end);
    if (total > 0) {
      message->assign(buffer, 0, total);
      buffer.erase(0, total);
      return ReadOutcome::kMessage;
    }
    if (buffer.size() > kMaxHttpMessageBytes) return ReadOutcome::kError;

    int64_t now = netmark::MonotonicMicros();
    int64_t deadline = message_started ? read_deadline : idle_deadline;
    if (draining.load(std::memory_order_relaxed)) {
      if (drain_deadline == 0) drain_deadline = now + kDrainGraceMicros;
      deadline = std::min(deadline, drain_deadline);
    }
    if (now >= deadline) {
      return message_started ? ReadOutcome::kTimeout : ReadOutcome::kIdleClose;
    }
    pollfd pfd{fd, POLLIN, 0};
    int slice = static_cast<int>(
        std::min<int64_t>((deadline - now) / 1000 + 1, kPollSliceMs));
    int ready = ::poll(&pfd, 1, slice);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ReadOutcome::kError;
    }
    if (ready == 0) continue;  // slice elapsed; loop re-checks deadlines

    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ReadOutcome::kError;
    }
    if (n == 0) {
      return message_started ? ReadOutcome::kError : ReadOutcome::kPeerClosed;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    if (!message_started) {
      message_started = true;
      read_deadline =
          netmark::MonotonicMicros() + int64_t{options.read_timeout_ms} * 1000;
    }
  }
}

}  // namespace

netmark::Result<ReactorModel> ParseReactorModel(std::string_view text) {
  std::string lower = netmark::ToLower(netmark::Trim(text));
  if (lower == "epoll") return ReactorModel::kEpoll;
  if (lower == "threadpool") return ReactorModel::kThreadPool;
  return netmark::Status::InvalidArgument(
      "unknown reactor model: '" + std::string(text) +
      "' (expected epoll|threadpool)");
}

std::string_view ReactorModelName(ReactorModel model) {
  return model == ReactorModel::kEpoll ? "epoll" : "threadpool";
}

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(options) {
  options_.worker_threads = std::max(1, options_.worker_threads);
  options_.accept_queue_capacity = std::max<size_t>(1, options_.accept_queue_capacity);
  options_.max_requests_per_connection =
      std::max(1, options_.max_requests_per_connection);
  options_.idle_timeout_ms = std::max(1, options_.idle_timeout_ms);
  options_.read_timeout_ms = std::max(1, options_.read_timeout_ms);
  owned_metrics_ = std::make_unique<observability::MetricsRegistry>();
  metrics_ = owned_metrics_.get();
  BindHandles();
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::BindMetrics(observability::MetricsRegistry* registry) {
  if (registry == nullptr || registry == metrics_) return;
  metrics_ = registry;
  BindHandles();
}

void HttpServer::BindHandles() {
  handles_.requests = metrics_->GetCounter("netmark_http_server_requests_total");
  handles_.shed = metrics_->GetCounter("netmark_http_shed_total");
  handles_.accept_errors =
      metrics_->GetCounter("netmark_http_accept_errors_total");
  handles_.read_timeouts =
      metrics_->GetCounter("netmark_http_read_timeouts_total");
  handles_.keepalive_reuses =
      metrics_->GetCounter("netmark_http_keepalive_reuses_total");
  handles_.epoll_wakeups =
      metrics_->GetCounter("netmark_http_server_epoll_wakeups_total");
  metrics_->SetCallbackGauge("netmark_http_pool_threads", {}, [this] {
    return static_cast<double>(options_.worker_threads);
  });
  metrics_->SetCallbackGauge("netmark_http_queue_depth", {}, [this] {
    return static_cast<double>(queue_depth_.load(std::memory_order_relaxed));
  });
  metrics_->SetCallbackGauge("netmark_http_active_connections", {}, [this] {
    return static_cast<double>(
        active_connections_.load(std::memory_order_relaxed));
  });
  metrics_->SetCallbackGauge("netmark_http_server_open_connections", {}, [this] {
    return static_cast<double>(
        open_connections_.load(std::memory_order_relaxed));
  });
}

netmark::Status HttpServer::Start(uint16_t port) {
  if (running_.load()) return netmark::Status::AlreadyExists("server already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return netmark::Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return netmark::Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return netmark::Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  queue_depth_.store(0);
  draining_.store(false);
  running_.store(true);
  workers_.reserve(static_cast<size_t>(options_.worker_threads));
  if (options_.reactor == ReactorModel::kEpoll) {
    request_queue_ =
        std::make_unique<WorkQueue<FramedRequest>>(options_.accept_queue_capacity);
    reactor_ = std::make_unique<EpollReactor>(this);
    netmark::Status init = reactor_->Init();
    if (!init.ok()) {
      running_.store(false);
      reactor_.reset();
      request_queue_.reset();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return init;
    }
    accept_thread_ = std::thread([this] { reactor_->Run(); });
    for (int i = 0; i < options_.worker_threads; ++i) {
      workers_.emplace_back([this] { ReactorWorkerLoop(); });
    }
  } else {
    queue_ = std::make_unique<WorkQueue<QueuedConn>>(options_.accept_queue_capacity);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    for (int i = 0; i < options_.worker_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
  return netmark::Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Drain: stop accepting first, then let workers finish the queued and
  // in-flight requests (their responses switch to Connection: close). Under
  // epoll the reactor thread additionally waits for every dispatched
  // request's completion before exiting, so no connection is torn down with
  // a worker still writing on it.
  draining_.store(true);
  if (reactor_ != nullptr) reactor_->Wake();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (queue_ != nullptr) queue_->Close();
  if (request_queue_ != nullptr) request_queue_->Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  reactor_.reset();  // after worker join: workers post completions into it
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  draining_.store(false);
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready < 0) {
      if (errno == EINTR) {
        // A signal is not a timeout: re-check the stop flag explicitly so a
        // drain that lands mid-poll is honored before the next wait.
        if (!running_.load()) return;
        continue;
      }
      accept_errors_.fetch_add(1);
      handles_.accept_errors->Increment();
      NETMARK_LOG(Warning) << "poll(listen): " << std::strerror(errno);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    if (ready == 0) continue;  // timeout: loop condition re-checks running_
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      // Real accept failures (EMFILE and friends) used to vanish silently;
      // count them, log them, and back off so the loop cannot spin hot.
      accept_errors_.fetch_add(1);
      handles_.accept_errors->Increment();
      NETMARK_LOG(Warning) << "accept: " << std::strerror(errno);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    connections_accepted_.fetch_add(1);
    open_connections_.fetch_add(1);
    if (queue_->TryPush(QueuedConn{fd, netmark::MonotonicMicros()})) {
      queue_depth_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Queue full (or closing): shed immediately with a 503 instead of
      // queueing unboundedly behind slow requests.
      connections_shed_.fetch_add(1);
      handles_.shed->Increment();
      HttpResponse resp =
          HttpResponse::Text(503, "server overloaded, retry shortly");
      resp.headers["Connection"] = "close";
      resp.headers["Retry-After"] = "1";
      (void)WriteAll(fd, resp.Serialize(),
                     netmark::MonotonicMicros() +
                         int64_t{options_.read_timeout_ms} * 1000);
      ::close(fd);
      open_connections_.fetch_sub(1);
    }
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    std::optional<QueuedConn> conn = queue_->Pop();
    if (!conn.has_value()) return;  // closed and drained
    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    ServeConnection(conn->fd,
                    std::max<int64_t>(
                        netmark::MonotonicMicros() - conn->accepted_micros, 1));
  }
}

void HttpServer::ServeConnection(int fd, int64_t queue_wait_micros) {
  active_connections_.fetch_add(1);
  // Belt and braces under the poll-based deadlines: a kernel-level receive/
  // send timeout so no syscall can block a worker unboundedly.
  timeval tv{};
  tv.tv_sec = options_.read_timeout_ms / 1000;
  tv.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  std::string buffer;  // leftover bytes between keep-alive requests
  int served = 0;
  while (true) {
    std::string raw;
    ReadOutcome outcome =
        ReadOneMessage(fd, buffer, options_, draining_, &raw);
    if (outcome == ReadOutcome::kTimeout) {
      read_timeouts_.fetch_add(1);
      handles_.read_timeouts->Increment();
      HttpResponse resp = HttpResponse::Text(408, "request read timed out");
      resp.headers["Connection"] = "close";
      (void)WriteAll(fd, resp.Serialize(),
                     netmark::MonotonicMicros() +
                         int64_t{options_.read_timeout_ms} * 1000);
      break;
    }
    if (outcome != ReadOutcome::kMessage) break;  // idle reap / EOF / error

    HttpResponse response;
    bool parsed = false;
    bool client_close = false;
    const int64_t parse_start = netmark::MonotonicMicros();
    auto request = ParseRequest(raw);
    const int64_t parse_micros =
        std::max<int64_t>(netmark::MonotonicMicros() - parse_start, 1);
    if (!request.ok()) {
      NETMARK_LOG(Debug) << "bad request: " << request.status();
      response = HttpResponse::BadRequest(request.status().ToString());
    } else {
      parsed = true;
      // Queue wait belongs to the connection's first request; later
      // keep-alive requests never sat in the accept queue.
      request->queue_wait_micros = served == 0 ? queue_wait_micros : 0;
      request->parse_micros = parse_micros;
      client_close =
          netmark::EqualsIgnoreCase(request->Header("Connection"), "close");
      response = handler_(*request);
    }
    ++served;
    requests_served_.fetch_add(1);
    handles_.requests->Increment();
    if (served > 1) {
      keepalive_reuses_.fetch_add(1);
      handles_.keepalive_reuses->Increment();
    }
    bool keep = parsed && !client_close &&
                served < options_.max_requests_per_connection &&
                !draining_.load(std::memory_order_relaxed);
    response.headers["Connection"] = keep ? "keep-alive" : "close";
    netmark::Status written =
        WriteAll(fd, response.Serialize(),
                 netmark::MonotonicMicros() +
                     int64_t{options_.read_timeout_ms} * 1000);
    if (!written.ok() || !keep) break;
  }
  ::close(fd);
  open_connections_.fetch_sub(1);
  active_connections_.fetch_sub(1);
}

void HttpServer::ReactorWorkerLoop() {
  while (true) {
    std::optional<FramedRequest> request = request_queue_->Pop();
    if (!request.has_value()) return;  // closed and drained
    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    active_connections_.fetch_add(1);
    bool keep = ServeFramedRequest(*request);
    active_connections_.fetch_sub(1);
    reactor_->Complete(Completion{request->fd, request->conn_id, keep});
  }
}

bool HttpServer::ServeFramedRequest(const FramedRequest& framed) {
  const int64_t popped = netmark::MonotonicMicros();
  HttpResponse response;
  bool parsed = false;
  bool client_close = false;
  auto request = ParseRequest(framed.raw);
  const int64_t parse_micros =
      std::max<int64_t>(netmark::MonotonicMicros() - popped, 1);
  if (!request.ok()) {
    NETMARK_LOG(Debug) << "bad request: " << request.status();
    response = HttpResponse::BadRequest(request.status().ToString());
  } else {
    parsed = true;
    // Under the reactor every request sits in the handoff queue, so every
    // request carries a real queue_wait span (the threadpool model only
    // queued whole connections, so only the first request had one).
    request->queue_wait_micros =
        std::max<int64_t>(popped - framed.enqueued_micros, 1);
    request->parse_micros = parse_micros;
    client_close =
        netmark::EqualsIgnoreCase(request->Header("Connection"), "close");
    response = handler_(*request);
  }
  const int served = framed.served_before + 1;
  requests_served_.fetch_add(1);
  handles_.requests->Increment();
  if (served > 1) {
    keepalive_reuses_.fetch_add(1);
    handles_.keepalive_reuses->Increment();
  }
  bool keep = parsed && !client_close &&
              served < options_.max_requests_per_connection &&
              !draining_.load(std::memory_order_relaxed);
  response.headers["Connection"] = keep ? "keep-alive" : "close";
  netmark::Status written =
      WriteAll(framed.fd, response.Serialize(),
               netmark::MonotonicMicros() +
                   int64_t{options_.read_timeout_ms} * 1000);
  return keep && written.ok();
}

}  // namespace netmark::server
