#include "federation/router.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "federation/content_only_source.h"
#include "federation/local_source.h"
#include "query/xdb_query.h"
#include "xml/parser.h"

namespace netmark::federation {
namespace {

class RouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = netmark::TempDir::Make("router");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<netmark::TempDir>(std::move(*dir));

    auto store_a = xmlstore::XmlStore::Open(dir_->Sub("a").string());
    auto store_b = xmlstore::XmlStore::Open(dir_->Sub("b").string());
    ASSERT_TRUE(store_a.ok() && store_b.ok());
    store_a_ = std::move(*store_a);
    store_b_ = std::move(*store_b);

    InsertInto(store_a_.get(), "a1.xml",
               "<doc><h1>Budget</h1><p>alpha store budget text engine</p>"
               "<h1>Schedule</h1><p>alpha schedule</p></doc>");
    InsertInto(store_b_.get(), "b1.xml",
               "<doc><h1>Budget</h1><p>beta store cost table</p></doc>");

    // Content-only source with upmarked documents (Lessons Learned style).
    auto lessons = std::make_shared<ContentOnlySource>("lessons");
    auto lesson_doc = xml::ParseXml(
        "<document><context>Title</context>"
        "<content>Engine turbine lesson</content>"
        "<context>Lesson</context>"
        "<content>Inspect the engine nozzle before flight.</content>"
        "</document>");
    ASSERT_TRUE(lesson_doc.ok());
    lessons->AddDocument("lesson1.xml", *lesson_doc);
    auto other_doc = xml::ParseXml(
        "<document><context>Title</context>"
        "<content>Software verification lesson</content>"
        "<context>Lesson</context>"
        "<content>Review the software budget early.</content></document>");
    ASSERT_TRUE(other_doc.ok());
    lessons->AddDocument("lesson2.xml", *other_doc);

    ASSERT_TRUE(router_.RegisterSource(
        std::make_shared<LocalStoreSource>("store-a", store_a_.get())).ok());
    ASSERT_TRUE(router_.RegisterSource(
        std::make_shared<LocalStoreSource>("store-b", store_b_.get())).ok());
    ASSERT_TRUE(router_.RegisterSource(lessons).ok());
    ASSERT_TRUE(router_.DefineDatabank("all", {"store-a", "store-b", "lessons"}).ok());
    ASSERT_TRUE(router_.DefineDatabank("stores", {"store-a", "store-b"}).ok());
  }

  void InsertInto(xmlstore::XmlStore* store, const std::string& name,
                  const char* markup) {
    auto doc = xml::ParseXml(markup);
    ASSERT_TRUE(doc.ok());
    xmlstore::DocumentInfo info;
    info.file_name = name;
    ASSERT_TRUE(store->InsertDocument(*doc, info).ok());
  }

  std::vector<FederatedHit> Query(const std::string& bank, const std::string& qs) {
    auto q = query::ParseXdbQuery(qs);
    EXPECT_TRUE(q.ok());
    auto hits = router_.Query(bank, *q);
    EXPECT_TRUE(hits.ok()) << hits.status().ToString();
    return hits.ok() ? *hits : std::vector<FederatedHit>{};
  }

  std::unique_ptr<netmark::TempDir> dir_;
  std::unique_ptr<xmlstore::XmlStore> store_a_;
  std::unique_ptr<xmlstore::XmlStore> store_b_;
  Router router_;
};

TEST_F(RouterTest, DeclarativeSetupValidation) {
  Router r;
  EXPECT_TRUE(r.DefineDatabank("empty", {}).IsInvalidArgument());
  EXPECT_TRUE(r.DefineDatabank("bad", {"ghost"}).IsNotFound());
  auto src = std::make_shared<ContentOnlySource>("s");
  ASSERT_TRUE(r.RegisterSource(src).ok());
  EXPECT_TRUE(r.RegisterSource(src).IsAlreadyExists());
  ASSERT_TRUE(r.DefineDatabank("ok", {"s"}).ok());
  EXPECT_TRUE(r.DefineDatabank("ok", {"s"}).IsAlreadyExists());
  EXPECT_TRUE(r.HasDatabank("ok"));
  EXPECT_EQ(r.SourceNames().size(), 1u);
}

TEST_F(RouterTest, FanOutMergesAcrossStores) {
  auto hits = Query("stores", "context=Budget");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].source, "store-a");
  EXPECT_EQ(hits[1].source, "store-b");
  EXPECT_EQ(router_.stats().sources_queried, 2u);
  EXPECT_EQ(router_.stats().pushed_down_full, 2u);
  EXPECT_EQ(router_.stats().augmented, 0u);
}

TEST_F(RouterTest, ContentOnlySourceGetsAugmentedForContextQueries) {
  // The paper's Context=Title&Content=Engine walkthrough: the lessons source
  // can only run the content part; the router extracts Title sections.
  auto hits = Query("all", "context=Title&content=engine");
  // store-a has no section titled Title; lesson1 matches.
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].source, "lessons");
  EXPECT_EQ(hits[0].heading, "Title");
  EXPECT_NE(hits[0].text.find("Engine turbine"), std::string::npos);
  EXPECT_EQ(router_.stats().augmented, 1u);
}

TEST_F(RouterTest, AugmentationFiltersHeadingsLocally) {
  // "budget" appears in lesson2's Lesson section; context=Lesson must match
  // only that section, not the Title one.
  auto hits = Query("all", "context=Lesson&content=budget");
  std::vector<FederatedHit> lesson_hits;
  for (auto& h : hits) {
    if (h.source == "lessons") lesson_hits.push_back(h);
  }
  ASSERT_EQ(lesson_hits.size(), 1u);
  EXPECT_EQ(lesson_hits[0].file_name, "lesson2.xml");
  EXPECT_NE(lesson_hits[0].text.find("software budget"), std::string::npos);
}

TEST_F(RouterTest, ContentOnlyQueriesPushDownToAllSources) {
  auto hits = Query("all", "content=engine");
  // store-a doc mentions engine; lesson1 mentions engine.
  ASSERT_EQ(hits.size(), 2u);
  // A content-only query is within every source's capabilities, so all three
  // sources take the full push-down path — no augmentation needed.
  EXPECT_EQ(router_.stats().pushed_down_full, 3u);
  EXPECT_EQ(router_.stats().augmented, 0u);
}

TEST_F(RouterTest, UnknownDatabankFails) {
  query::XdbQuery q;
  q.content = "x";
  EXPECT_TRUE(router_.Query("nope", q).status().IsNotFound());
}

TEST_F(RouterTest, LimitAppliesAcrossMergedResults) {
  auto hits = Query("stores", "context=Budget&limit=1");
  EXPECT_EQ(hits.size(), 1u);
}

TEST_F(RouterTest, ArbitrarySourceCountsCompose) {
  // "we can take arbitrary numbers of sources and compose applications"
  Router r;
  for (int i = 0; i < 16; ++i) {
    auto src = std::make_shared<ContentOnlySource>("s" + std::to_string(i));
    auto doc = xml::ParseXml("<document><context>Sec</context><content>word" +
                             std::to_string(i) + " shared</content></document>");
    ASSERT_TRUE(doc.ok());
    src->AddDocument("d" + std::to_string(i) + ".xml", *doc);
    ASSERT_TRUE(r.RegisterSource(src).ok());
  }
  std::vector<std::string> names;
  for (int i = 0; i < 16; ++i) names.push_back("s" + std::to_string(i));
  ASSERT_TRUE(r.DefineDatabank("wide", names).ok());
  query::XdbQuery q;
  q.content = "shared";
  auto hits = r.Query("wide", q);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 16u);
  EXPECT_EQ(r.stats().sources_queried, 16u);
}

}  // namespace
}  // namespace netmark::federation
