// Synthetic NASA-style corpora (the substitution for the paper's internal
// document collections; see DESIGN.md §2).
//
// Generators are fully deterministic given a seed, emit documents in the
// source formats the converters ingest (.doc/.pdf as NRT, .txt, .md, .html,
// .xml, .csv), and embed known section headings and vocabulary so query
// workloads have verifiable answers.

#ifndef NETMARK_WORKLOAD_CORPUS_H_
#define NETMARK_WORKLOAD_CORPUS_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace netmark::workload {

/// One generated source document (raw bytes in its native format).
struct GeneratedDoc {
  std::string file_name;
  std::string content;
};

/// \brief Deterministic document factory.
class CorpusGenerator {
 public:
  explicit CorpusGenerator(uint64_t seed) : rng_(seed) {}

  /// NASA proposal in NRT "Word" format: Title/Abstract/Technical
  /// Approach/Budget/Management Plan sections, a division, and a requested
  /// dollar amount (the Proposal Financial Management inputs).
  GeneratedDoc Proposal(int index);

  /// Task plan in plain text (the thousands of inputs IBPD integrates):
  /// numbered sections including "Budget Summary" with fiscal-year amounts.
  GeneratedDoc TaskPlan(int index);

  /// Anomaly tracking record as messy HTML (the web-accessible anomaly
  /// databases of the Anomaly Tracking application).
  GeneratedDoc AnomalyReport(int index);

  /// Lessons-learned entry as upmarked XML (the content-search-only server).
  GeneratedDoc LessonLearned(int index);

  /// Risk assessment memo in Markdown.
  GeneratedDoc RiskMemo(int index);

  /// Budget spreadsheet in CSV.
  GeneratedDoc BudgetSheet(int index);

  /// A corpus of `n` documents cycling through all generators/formats.
  std::vector<GeneratedDoc> MixedCorpus(size_t n);

  /// Section headings the generators emit (targets for context queries).
  static const std::vector<std::string>& StandardHeadings();
  /// Topic vocabulary the bodies draw from (targets for content queries).
  static const std::vector<std::string>& TopicTerms();
  /// NASA division names used by proposals.
  static const std::vector<std::string>& Divisions();

  /// A term that appears somewhere in generated bodies (Zipf-skewed pick).
  std::string RandomTopicTerm();
  /// A heading from the standard set.
  std::string RandomHeading();

  netmark::Rng* rng() { return &rng_; }

 private:
  std::string Sentence(size_t words);
  std::string ParagraphText(size_t sentences);

  netmark::Rng rng_;
};

}  // namespace netmark::workload

#endif  // NETMARK_WORKLOAD_CORPUS_H_
