#include "observability/trace.h"

#include <algorithm>

namespace netmark::observability {

int Trace::StartSpan(std::string name, int parent) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanData span;
  span.id = static_cast<int>(spans_.size());
  span.parent = parent >= 0 && parent < span.id ? parent : -1;
  span.name = std::move(name);
  span.start_micros = netmark::MonotonicMicros();
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

void Trace::EndSpan(int id, bool ok, std::string note) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  SpanData& span = spans_[static_cast<size_t>(id)];
  if (span.end_micros != 0) return;  // already ended
  span.end_micros = netmark::MonotonicMicros();
  span.ok = ok;
  span.note = std::move(note);
}

void Trace::Annotate(int id, std::string key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  spans_[static_cast<size_t>(id)].annotations.emplace_back(std::move(key),
                                                           std::move(value));
}

int Trace::AddCompletedSpan(std::string name, int parent,
                            int64_t duration_micros, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanData span;
  span.id = static_cast<int>(spans_.size());
  span.parent = parent >= 0 && parent < span.id ? parent : -1;
  span.name = std::move(name);
  span.end_micros = netmark::MonotonicMicros();
  span.start_micros = span.end_micros - std::max<int64_t>(duration_micros, 0);
  span.ok = ok;
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

int Trace::Graft(int parent, const std::vector<SpanData>& foreign) {
  std::lock_guard<std::mutex> lock(mu_);
  if (foreign.empty()) return -1;
  const int base = static_cast<int>(spans_.size());
  // Foreign parents must reference earlier foreign indices (the invariant
  // StartSpan enforces); anything else re-parents to `parent`.
  for (size_t i = 0; i < foreign.size(); ++i) {
    SpanData span = foreign[i];
    span.id = static_cast<int>(spans_.size());
    const int fp = span.parent;
    if (fp >= 0 && fp < static_cast<int>(i)) {
      span.parent = base + fp;
    } else {
      span.parent = parent >= 0 && parent < span.id ? parent : -1;
    }
    span.remote = true;
    spans_.push_back(std::move(span));
  }
  return base;
}

void Trace::set_trace_id(std::string id) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_id_ = std::move(id);
}

std::string Trace::trace_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_id_;
}

std::vector<SpanData> Trace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

int64_t Trace::RootDurationMicros() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.empty()) return 0;
  const SpanData& root = spans_.front();
  if (root.end_micros != 0) return root.end_micros - root.start_micros;
  return netmark::MonotonicMicros() - root.start_micros;
}

}  // namespace netmark::observability
