#include "query/executor.h"

#include <algorithm>
#include <map>
#include <set>

#include "observability/thread_trace.h"
#include "query/plan.h"
#include "query/result_cache.h"
#include "xml/serializer.h"
#include "xslt/xpath.h"

namespace netmark::query {

using storage::RowId;
using textindex::QueryClause;
using textindex::TextQuery;
using xmlstore::NodeRecord;

// Quarantine containment: a read that lands on a checksum-failed page
// returns Status::DataLoss. Query execution skips the affected node or
// document (counting it in Stats::quarantined_skips, so the HTTP layer can
// mark the result partial) instead of failing the whole query; any other
// error still propagates. `on_skip` must exit the enclosing scope
// (continue/break).
#define NETMARK_SKIP_ON_DATALOSS(lhs, expr, stats, on_skip) \
  auto lhs##_or = (expr);                                   \
  if (!lhs##_or.ok()) {                                     \
    if (lhs##_or.status().IsDataLoss()) {                   \
      ++(stats).quarantined_skips;                          \
      on_skip;                                              \
    }                                                       \
    return lhs##_or.status();                               \
  }                                                         \
  auto lhs = std::move(*lhs##_or);

// Text-index candidate verification: postings are writer-latest (docs/
// mvcc.md), so a seed RowId may point at a row that is deleted, not yet
// committed, or simply invisible at this snapshot's epoch — the store
// answers NotFound, and the candidate is silently dropped (it is not data
// loss, just MVCC staleness). DataLoss still counts as a quarantine skip.
#define NETMARK_SKIP_STALE_OR_DATALOSS(lhs, expr, stats, on_skip) \
  auto lhs##_or = (expr);                                         \
  if (!lhs##_or.ok()) {                                           \
    if (lhs##_or.status().IsNotFound()) {                         \
      on_skip;                                                    \
    }                                                             \
    if (lhs##_or.status().IsDataLoss()) {                         \
      ++(stats).quarantined_skips;                                \
      on_skip;                                                    \
    }                                                             \
    return lhs##_or.status();                                     \
  }                                                               \
  auto lhs = std::move(*lhs##_or);

netmark::Result<std::vector<RowId>> QueryExecutor::ClauseNodes(
    const QueryClause& clause, Stats& stats) const {
  ++stats.index_probes;
  if (!options_.use_text_index) {
    TextQuery single;
    single.clauses.push_back(clause);
    return store_->TextScanMatch(single);
  }
  std::vector<textindex::DocKey> keys;
  switch (clause.kind) {
    case QueryClause::Kind::kTerm:
      keys = store_->text_index().LookupTerm(clause.words[0]);
      break;
    case QueryClause::Kind::kPhrase:
      keys = store_->text_index().MatchPhrase(clause.words);
      break;
    case QueryClause::Kind::kPrefix:
      keys = store_->text_index().MatchPrefix(clause.words[0]);
      break;
  }
  std::vector<RowId> out;
  out.reserve(keys.size());
  for (textindex::DocKey key : keys) out.push_back(RowId::Unpack(key));
  return out;
}

netmark::Result<RowId> QueryExecutor::Walk(RowId start, Stats& stats) const {
  ++stats.nodes_walked;
  if (options_.use_index_joins_for_walks) {
    return xmlstore::FindGoverningContextViaIndex(*store_, start);
  }
  return xmlstore::FindGoverningContext(*store_, start);
}

netmark::Result<bool> QueryExecutor::InsideIntense(RowId node) const {
  // A text node "is emphasized" when an enclosing element within a few
  // parent hops is INTENSE-typed (<b>term</b> nests at most a couple of
  // levels in practice).
  RowId cur = node;
  for (int hop = 0; hop < 4; ++hop) {
    NETMARK_ASSIGN_OR_RETURN(NodeRecord rec, store_->GetNode(cur));
    if (rec.node_type == xml::NetmarkNodeType::kIntense) return true;
    if (!rec.parent_rowid.valid()) return false;
    cur = rec.parent_rowid;
  }
  return false;
}

netmark::Result<std::vector<QueryHit>> QueryExecutor::ContentOnly(
    const TextQuery& content, int64_t doc_scope, Stats& stats) const {
  if (content.empty()) return std::vector<QueryHit>{};

  // Per clause: matched nodes -> the documents containing them; then AND
  // across clauses at document granularity ("all documents that contain the
  // term", paper §2.1.3). Scores accumulate per matching node, with INTENSE
  // (emphasis) matches counting double.
  std::set<int64_t> docs;
  std::map<int64_t, double> scores;
  std::map<int64_t, RowId> first_match;  // snippet anchor per document
  bool first = true;
  for (const QueryClause& clause : content.clauses) {
    NETMARK_ASSIGN_OR_RETURN(std::vector<RowId> nodes, ClauseNodes(clause, stats));
    std::set<int64_t> clause_docs;
    for (RowId id : nodes) {
      NETMARK_SKIP_STALE_OR_DATALOSS(rec, store_->GetNode(id), stats, continue);
      if (doc_scope != 0 && rec.doc_id != doc_scope) continue;
      clause_docs.insert(rec.doc_id);
      first_match.emplace(rec.doc_id, id);
      bool intense = false;
      auto intense_or = InsideIntense(id);
      if (intense_or.ok()) {
        intense = *intense_or;
      } else if (!intense_or.status().IsDataLoss()) {
        return intense_or.status();
      }  // quarantined ancestor: score without the emphasis boost
      scores[rec.doc_id] += intense ? 2.0 : 1.0;
    }
    if (first) {
      docs = std::move(clause_docs);
      first = false;
    } else {
      std::set<int64_t> merged;
      std::set_intersection(docs.begin(), docs.end(), clause_docs.begin(),
                            clause_docs.end(), std::inserter(merged, merged.end()));
      docs = std::move(merged);
    }
    if (docs.empty()) break;
  }

  std::vector<QueryHit> hits;
  for (int64_t doc_id : docs) {
    NETMARK_SKIP_ON_DATALOSS(info, store_->GetDocumentInfo(doc_id), stats, {
      store_->NoteQuarantinedDoc(doc_id);
      continue;
    });
    QueryHit hit;
    hit.doc_id = doc_id;
    hit.file_name = info.file_name;
    hit.score = scores[doc_id];
    // Snippet: the heading of the section the (first) match sits in, plus a
    // truncated slice of the matching node's text — enough for a result
    // list. Assembly is best-effort: a quarantined page costs the snippet,
    // not the hit.
    auto anchor = first_match.find(doc_id);
    if (anchor != first_match.end()) {
      bool snippet_loss = false;
      auto ctx = Walk(anchor->second, stats);
      if (!ctx.ok() && !ctx.status().IsDataLoss()) return ctx.status();
      if (ctx.ok() && ctx->valid()) {
        auto heading = store_->SubtreeText(*ctx);
        if (!heading.ok() && !heading.status().IsDataLoss()) {
          return heading.status();
        }
        if (heading.ok()) hit.heading = std::move(*heading);
        snippet_loss |= !heading.ok();
      }
      auto rec = store_->GetNode(anchor->second);
      if (!rec.ok() && !rec.status().IsDataLoss()) return rec.status();
      if (rec.ok()) {
        constexpr size_t kSnippetChars = 160;
        hit.text = rec->node_data.substr(0, kSnippetChars);
      }
      snippet_loss |= !ctx.ok() || !rec.ok();
      if (snippet_loss) {
        ++stats.quarantined_skips;
        store_->NoteQuarantinedDoc(doc_id);
      }
    }
    hits.push_back(std::move(hit));
  }
  std::stable_sort(hits.begin(), hits.end(), [](const QueryHit& a, const QueryHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  return hits;
}

netmark::Result<std::vector<QueryHit>> QueryExecutor::SectionQuery(
    const QueryPlan& plan, const XdbQuery& query, Stats& stats) const {
  const TextQuery& context_query = plan.context_query;
  if (context_query.empty()) return std::vector<QueryHit>{};

  // Candidate contexts: sections whose governing heading we must verify.
  // With a content key, candidates come from content hits; otherwise from
  // hits on the heading text itself.
  std::set<uint64_t> candidates;  // packed context RowIds
  const TextQuery& content_query = plan.content_query;
  const TextQuery& seed = query.has_content() ? content_query : context_query;

  bool first = true;
  for (const QueryClause& clause : seed.clauses) {
    NETMARK_ASSIGN_OR_RETURN(std::vector<RowId> nodes, ClauseNodes(clause, stats));
    std::set<uint64_t> clause_contexts;
    for (RowId node : nodes) {
      NETMARK_SKIP_STALE_OR_DATALOSS(rec, store_->GetNode(node), stats, continue);
      if (query.doc_id != 0 && rec.doc_id != query.doc_id) continue;
      NETMARK_SKIP_ON_DATALOSS(ctx, Walk(node, stats), stats, continue);
      if (ctx.valid()) clause_contexts.insert(ctx.Pack());
    }
    if (first) {
      candidates = std::move(clause_contexts);
      first = false;
    } else {
      std::set<uint64_t> merged;
      std::set_intersection(candidates.begin(), candidates.end(),
                            clause_contexts.begin(), clause_contexts.end(),
                            std::inserter(merged, merged.end()));
      candidates = std::move(merged);
    }
    if (candidates.empty()) break;
  }

  // Verify headings and assemble sections.
  std::vector<std::pair<std::pair<int64_t, int64_t>, QueryHit>> ordered;
  for (uint64_t packed : candidates) {
    RowId ctx = RowId::Unpack(packed);
    NETMARK_SKIP_ON_DATALOSS(section, xmlstore::BuildSection(*store_, ctx),
                             stats, continue);
    if (!textindex::Matches(context_query, section.heading)) continue;
    NETMARK_SKIP_ON_DATALOSS(body, xmlstore::SectionText(*store_, ctx), stats, {
      store_->NoteQuarantinedDoc(section.doc_id);
      continue;
    });
    // With a content key, the *section body* (or heading) must satisfy it.
    if (query.has_content()) {
      std::string scope = section.heading + " " + body;
      if (!textindex::Matches(content_query, scope)) continue;
    }
    ++stats.sections_built;
    NETMARK_SKIP_ON_DATALOSS(info, store_->GetDocumentInfo(section.doc_id),
                             stats, {
                               store_->NoteQuarantinedDoc(section.doc_id);
                               continue;
                             });
    NETMARK_SKIP_ON_DATALOSS(head, store_->GetNode(ctx), stats, {
      store_->NoteQuarantinedDoc(section.doc_id);
      continue;
    });
    QueryHit hit;
    hit.doc_id = section.doc_id;
    hit.file_name = info.file_name;
    hit.context = ctx;
    hit.heading = std::move(section.heading);
    hit.text = std::move(body);
    ordered.push_back({{section.doc_id, head.node_id}, std::move(hit)});
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<QueryHit> hits;
  hits.reserve(ordered.size());
  for (auto& [key, hit] : ordered) hits.push_back(std::move(hit));
  return hits;
}

netmark::Result<std::vector<QueryHit>> QueryExecutor::SectionQuerySpecialized(
    const QueryPlan& plan, const XdbQuery& query, Stats& stats) const {
  if (plan.context_query.empty()) return std::vector<QueryHit>{};

  // One loop per content term: postings probe -> RowId walk to the
  // governing CONTEXT -> intersect at section granularity. A section that
  // survives the intersection contains every content term (in its heading
  // or body), so the content predicate is already proven — no second
  // full-text pass over the section body.
  std::set<uint64_t> candidates;  // packed context RowIds
  bool first = true;
  for (const QueryClause& clause : plan.content_query.clauses) {
    NETMARK_ASSIGN_OR_RETURN(std::vector<RowId> nodes, ClauseNodes(clause, stats));
    std::set<uint64_t> clause_contexts;
    for (RowId node : nodes) {
      NETMARK_SKIP_STALE_OR_DATALOSS(rec, store_->GetNode(node), stats, continue);
      if (query.doc_id != 0 && rec.doc_id != query.doc_id) continue;
      NETMARK_SKIP_ON_DATALOSS(ctx, Walk(node, stats), stats, continue);
      if (ctx.valid()) clause_contexts.insert(ctx.Pack());
    }
    if (first) {
      candidates = std::move(clause_contexts);
      first = false;
    } else {
      std::set<uint64_t> merged;
      std::set_intersection(candidates.begin(), candidates.end(),
                            clause_contexts.begin(), clause_contexts.end(),
                            std::inserter(merged, merged.end()));
      candidates = std::move(merged);
    }
    if (candidates.empty()) return std::vector<QueryHit>{};
  }

  // Heading-only verification + section assembly (body text built once,
  // straight into the hit).
  std::vector<std::pair<std::pair<int64_t, int64_t>, QueryHit>> ordered;
  for (uint64_t packed : candidates) {
    RowId ctx = RowId::Unpack(packed);
    NETMARK_SKIP_ON_DATALOSS(section, xmlstore::BuildSection(*store_, ctx),
                             stats, continue);
    if (!textindex::Matches(plan.context_query, section.heading)) continue;
    ++stats.sections_built;
    NETMARK_SKIP_ON_DATALOSS(info, store_->GetDocumentInfo(section.doc_id),
                             stats, {
                               store_->NoteQuarantinedDoc(section.doc_id);
                               continue;
                             });
    NETMARK_SKIP_ON_DATALOSS(head, store_->GetNode(ctx), stats, {
      store_->NoteQuarantinedDoc(section.doc_id);
      continue;
    });
    NETMARK_SKIP_ON_DATALOSS(body, xmlstore::SectionText(*store_, ctx), stats, {
      store_->NoteQuarantinedDoc(section.doc_id);
      continue;
    });
    QueryHit hit;
    hit.doc_id = section.doc_id;
    hit.file_name = info.file_name;
    hit.context = ctx;
    hit.heading = std::move(section.heading);
    hit.text = std::move(body);
    ordered.push_back({{section.doc_id, head.node_id}, std::move(hit)});
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<QueryHit> hits;
  hits.reserve(ordered.size());
  for (auto& [key, hit] : ordered) hits.push_back(std::move(hit));
  return hits;
}

netmark::Result<std::vector<QueryHit>> QueryExecutor::XPathQuery(
    const QueryPlan& plan, const XdbQuery& query, Stats& stats) const {
  // Candidate documents: content-key pre-selection when given, else the doc
  // scope, else the whole collection (XPath has no index; the content key is
  // how users keep this selective).
  std::vector<int64_t> docs;
  if (query.has_content()) {
    NETMARK_ASSIGN_OR_RETURN(
        std::vector<QueryHit> doc_hits,
        ContentOnly(plan.content_query, query.doc_id, stats));
    for (const QueryHit& hit : doc_hits) docs.push_back(hit.doc_id);
    std::sort(docs.begin(), docs.end());
  } else if (query.doc_id != 0) {
    docs.push_back(query.doc_id);
  } else {
    NETMARK_ASSIGN_OR_RETURN(std::vector<xmlstore::DocRecord> all,
                             store_->ListDocuments());
    for (const auto& rec : all) docs.push_back(rec.doc_id);
  }

  std::vector<QueryHit> hits;
  for (int64_t doc_id : docs) {
    NETMARK_SKIP_ON_DATALOSS(info, store_->GetDocumentInfo(doc_id), stats, {
      store_->NoteQuarantinedDoc(doc_id);
      continue;
    });
    NETMARK_SKIP_ON_DATALOSS(doc, store_->Reconstruct(doc_id), stats, {
      store_->NoteQuarantinedDoc(doc_id);
      continue;
    });
    for (xml::NodeId node : plan.xpath->SelectNodes(doc, doc.root())) {
      QueryHit hit;
      hit.doc_id = doc_id;
      hit.file_name = info.file_name;
      hit.text = doc.TextContent(node);
      hit.markup = xml::Serialize(doc, node);
      hits.push_back(std::move(hit));
    }
  }
  return hits;
}

void QueryExecutor::BindMetrics(observability::MetricsRegistry* registry) {
  if (registry == nullptr) {
    handles_ = MetricHandles{};
    return;
  }
  handles_.executes = registry->GetCounter("netmark_xdb_executes_total");
  handles_.index_probes = registry->GetCounter("netmark_xdb_index_probes_total");
  handles_.nodes_walked = registry->GetCounter("netmark_xdb_nodes_walked_total");
  handles_.sections_built =
      registry->GetCounter("netmark_xdb_sections_built_total");
  handles_.execute_micros = registry->GetHistogram("netmark_xdb_execute_micros");
}

netmark::Result<std::vector<QueryHit>> QueryExecutor::Execute(
    const XdbQuery& query, Stats* stats) const {
  xmlstore::XmlStore::ReadSnapshot snapshot = store_->BeginRead();
  return ExecuteUnderSnapshot(query, snapshot.epoch(), stats);
}

netmark::Result<std::vector<QueryHit>> QueryExecutor::Execute(
    const XdbQuery& query, const xmlstore::XmlStore::ReadSnapshot& snapshot,
    Stats* stats) const {
  // The caller's snapshot already pins the view (and supplies the commit
  // epoch the result cache keys on); nothing to acquire. Taking the
  // parameter (rather than a bare flag) makes "I hold a snapshot" a
  // compile-time claim at every call site.
  return ExecuteUnderSnapshot(query, snapshot.epoch(), stats);
}

netmark::Result<std::shared_ptr<const QueryPlan>> QueryExecutor::GetPlan(
    const XdbQuery& query, Stats& stats) const {
  if (plan_cache_ == nullptr) return BuildQueryPlan(query);
  std::string shape = QueryPlanShapeKey(query);
  if (std::shared_ptr<const QueryPlan> plan = plan_cache_->Lookup(shape)) {
    stats.plan_cache_hits = 1;
    return plan;
  }
  NETMARK_ASSIGN_OR_RETURN(std::shared_ptr<const QueryPlan> plan,
                           BuildQueryPlan(query));
  plan_cache_->Insert(shape, plan);
  return plan;
}

netmark::Result<std::vector<QueryHit>> QueryExecutor::RunPlan(
    const QueryPlan& plan, const XdbQuery& query, Stats& stats) const {
  switch (plan.kind) {
    case QueryPlan::Kind::kXPath:
      return XPathQuery(plan, query, stats);
    case QueryPlan::Kind::kSectionSpecialized:
      // The specialized plan carries the same parsed queries, so the
      // generic path can run it too (the ablation/equivalence knob).
      if (!options_.use_specialized_section_plan) {
        return SectionQuery(plan, query, stats);
      }
      return SectionQuerySpecialized(plan, query, stats);
    case QueryPlan::Kind::kSection:
      return SectionQuery(plan, query, stats);
    case QueryPlan::Kind::kContentOnly:
      break;
  }
  return ContentOnly(plan.content_query, query.doc_id, stats);
}

netmark::Result<std::vector<QueryHit>> QueryExecutor::ExecuteUnderSnapshot(
    const XdbQuery& query, uint64_t epoch, Stats* stats) const {
  Stats local;
  observability::ScopedTimer timer(handles_.execute_micros);
  if (query.empty()) {
    return netmark::Status::InvalidArgument(
        "XDB query needs a Context, Content or XPath key");
  }

  // Result-cache consult: the canonical query string + the snapshot's
  // commit epoch identify the answer exactly (a commit bumps the epoch, so
  // stale entries can never be reached — no invalidation locking).
  std::string cache_key;
  const bool use_cache = result_cache_ != nullptr && result_cache_->enabled();
  if (use_cache) {
    cache_key = query.ToQueryString();
    // The probe rides whatever trace the serving thread bound (inert when
    // untraced) — cache cost shows up as its own span, not folded into
    // "execute".
    observability::ScopedSpan probe(observability::CurrentThreadTrace(),
                                    "cache_probe",
                                    observability::CurrentThreadSpan());
    if (QueryResultCache::HitsPtr cached =
            result_cache_->Lookup(cache_key, epoch)) {
      probe.Annotate("outcome", "hit");
      local.cache_hits = 1;
      if (handles_.executes != nullptr) handles_.executes->Increment();
      if (stats != nullptr) *stats = local;
      return *cached;
    }
    probe.Annotate("outcome", "miss");
  }

  NETMARK_ASSIGN_OR_RETURN(std::shared_ptr<const QueryPlan> plan,
                           GetPlan(query, local));
  NETMARK_ASSIGN_OR_RETURN(std::vector<QueryHit> hits,
                           RunPlan(*plan, query, local));
  if (query.limit != 0 && hits.size() > query.limit) {
    hits.resize(query.limit);
  }
  if (use_cache) {
    result_cache_->Insert(
        cache_key, epoch,
        std::make_shared<const std::vector<QueryHit>>(hits));
  }
  if (handles_.executes != nullptr) {
    handles_.executes->Increment();
    handles_.index_probes->Increment(local.index_probes);
    handles_.nodes_walked->Increment(local.nodes_walked);
    handles_.sections_built->Increment(local.sections_built);
  }
  if (stats != nullptr) *stats = local;
  return hits;
}

}  // namespace netmark::query
