#include "query/compose.h"

#include "xml/parser.h"
#include "xmlstore/context_walk.h"

namespace netmark::query {

netmark::Result<xml::Document> ComposeResults(const xmlstore::XmlStore& store,
                                              const XdbQuery& query,
                                              const std::vector<QueryHit>& hits,
                                              const ComposeOptions& options) {
  xml::Document out;
  xml::NodeId results = out.CreateElement("results");
  out.AddAttribute(results, "query", query.ToQueryString());
  out.AddAttribute(results, "count", std::to_string(hits.size()));
  out.AppendChild(out.root(), results);

  for (const QueryHit& hit : hits) {
    xml::NodeId result = out.CreateElement("result");
    out.AddAttribute(result, "doc", hit.file_name);
    out.AddAttribute(result, "docid", std::to_string(hit.doc_id));
    out.AppendChild(results, result);

    if (!hit.context.valid()) {
      if (!hit.markup.empty()) {
        // XPath hit: embed the selected fragment.
        xml::NodeId content = out.CreateElement("content");
        out.AppendChild(result, content);
        auto fragment = xml::ParseXml(hit.markup);
        if (fragment.ok()) {
          for (xml::NodeId c = fragment->first_child(fragment->root());
               c != xml::kInvalidNode; c = fragment->next_sibling(c)) {
            out.AppendChild(content, out.ImportSubtree(*fragment, c));
          }
        } else {
          out.AppendChild(content, out.CreateText(hit.text));
        }
      }
      // Document-level hit (content-only query): a reference plus its
      // snippet (section heading + matched text slice) when available.
      if (!hit.heading.empty() || !hit.text.empty()) {
        xml::NodeId snippet = out.CreateElement("snippet");
        if (!hit.heading.empty()) out.AddAttribute(snippet, "section", hit.heading);
        if (!hit.text.empty()) {
          out.AppendChild(snippet, out.CreateText(hit.text));
        }
        out.AppendChild(result, snippet);
      }
      continue;
    }
    xml::NodeId context = out.CreateElement("context");
    out.AppendChild(context, out.CreateText(hit.heading));
    out.AppendChild(result, context);

    xml::NodeId content = out.CreateElement("content");
    out.AppendChild(result, content);
    if (options.include_markup) {
      NETMARK_ASSIGN_OR_RETURN(std::vector<storage::RowId> body,
                               xmlstore::SectionContent(store, hit.context));
      for (storage::RowId node : body) {
        NETMARK_ASSIGN_OR_RETURN(xml::Document fragment,
                                 store.ReconstructSubtree(node));
        for (xml::NodeId child = fragment.first_child(fragment.root());
             child != xml::kInvalidNode; child = fragment.next_sibling(child)) {
          out.AppendChild(content, out.ImportSubtree(fragment, child));
        }
      }
    } else {
      out.AppendChild(content, out.CreateText(hit.text));
    }
  }
  return out;
}

}  // namespace netmark::query
