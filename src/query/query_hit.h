// QueryHit: the result unit every XDB read-path component exchanges.
//
// Lives in its own header so the result cache can speak in hits without
// pulling in the executor (and vice versa).

#ifndef NETMARK_QUERY_QUERY_HIT_H_
#define NETMARK_QUERY_QUERY_HIT_H_

#include <cstdint>
#include <string>

#include "storage/row_id.h"

namespace netmark::query {

/// One query hit. Context/combined queries produce one hit per matched
/// section; content-only queries one hit per matched document (with an
/// invalid context RowId).
struct QueryHit {
  int64_t doc_id = 0;
  std::string file_name;
  storage::RowId context;  ///< heading node; invalid for document-level hits
  std::string heading;     ///< section heading ("" for document-level hits)
  std::string text;        ///< section body text (or "" for document hits)
  std::string markup;      ///< serialized fragment (XPath hits only)
  /// Relevance score for content searches: matching nodes count 1 each,
  /// doubled when the match sits inside INTENSE (emphasis) markup — the use
  /// NETMARK's INTENSE node type exists for. Document-level hits are ordered
  /// by descending score, then doc id.
  double score = 0;

  /// Approximate heap + struct footprint — the unit of the result cache's
  /// byte accounting.
  size_t ApproxBytes() const {
    return sizeof(QueryHit) + file_name.size() + heading.size() + text.size() +
           markup.size();
  }
};

}  // namespace netmark::query

#endif  // NETMARK_QUERY_QUERY_HIT_H_
