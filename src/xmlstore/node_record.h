// NodeRecord: one row of the XML table (paper Fig 5).
//
// Columns follow the published NETMARK-generated schema — NODEID (PK),
// DOC_ID (FK), PARENTROWID, PARENTNODEID, NODETYPE, NODENAME, NODEDATA,
// SIBLINGID — plus one addition, PREVROWID (previous sibling). The paper's
// walk "up the tree structure via its parent or sibling node until the first
// context is found" (§2.1.4) needs a *preceding*-sibling hop, and the
// published column list only identifies a single SIBLINGID; we keep SIBLINGID
// as the forward link (used to walk a section's content) and add the backward
// link explicitly. See DESIGN.md.

#ifndef NETMARK_XMLSTORE_NODE_RECORD_H_
#define NETMARK_XMLSTORE_NODE_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/row_id.h"
#include "storage/schema.h"
#include "xml/node_type_config.h"

namespace netmark::xmlstore {

// Sentinel node names for DOM kinds the Fig-5 schema has no column for
// (shared between document flattening and reconstruction).
inline constexpr std::string_view kCDataName = "#cdata";
inline constexpr std::string_view kCommentName = "#comment";
inline constexpr char kPiPrefix = '?';

/// \brief Decoded XML-table row.
struct NodeRecord {
  int64_t node_id = 0;
  int64_t doc_id = 0;
  storage::RowId parent_rowid;   ///< physical address of the parent node row
  int64_t parent_node_id = -1;   ///< logical id of the parent (for index joins)
  xml::NetmarkNodeType node_type = xml::NetmarkNodeType::kElement;
  std::string node_name;         ///< element/PI name ("" for text)
  std::string node_data;         ///< text payload; attributes blob for elements
  storage::RowId sibling_rowid;  ///< next sibling (forward walk over content)
  storage::RowId prev_rowid;     ///< previous sibling (upward context walk)

  /// Schema of the XML table.
  static storage::TableSchema Schema();
  /// Column order constants.
  enum Column : size_t {
    kNodeId = 0,
    kDocId = 1,
    kParentRowId = 2,
    kParentNodeId = 3,
    kNodeType = 4,
    kNodeName = 5,
    kNodeData = 6,
    kSiblingId = 7,
    kPrevRowId = 8,
  };

  storage::Row ToRow() const;
  static netmark::Result<NodeRecord> FromRow(const storage::Row& row);

  bool is_context() const { return node_type == xml::NetmarkNodeType::kContext; }
  bool is_text() const { return node_type == xml::NetmarkNodeType::kText; }
};

/// \brief Decoded DOC-table row (paper Fig 5: FILE_NAME, FILE_DATE,
/// FILE_SIZE, DOC_ID), plus NODE_COUNT — the number of XML rows the document
/// was stored with. Reconstruction compares against it so rows silently
/// absent from a rebuilt index (their page failed its checksum and was
/// quarantined) surface as detected data loss, never as a truncated
/// document.
struct DocRecord {
  int64_t doc_id = 0;
  std::string file_name;
  int64_t file_date = 0;  ///< seconds since epoch
  int64_t file_size = 0;  ///< bytes of the original source file
  int64_t node_count = 0;  ///< XML rows stored for this doc (0 = legacy row)

  static storage::TableSchema Schema();
  enum Column : size_t {
    kDocId = 0,
    kFileName = 1,
    kFileDate = 2,
    kFileSize = 3,
    kNodeCount = 4,
  };

  storage::Row ToRow() const;
  static netmark::Result<DocRecord> FromRow(const storage::Row& row);
};

}  // namespace netmark::xmlstore

#endif  // NETMARK_XMLSTORE_NODE_RECORD_H_
