#!/usr/bin/env bash
# Crash-torture harness: repeatedly SIGKILLs the ingestion pipeline at a
# seeded random WAL/checkpoint/recovery crash point, restarts it, and runs
# the recovery referee (netmark torture-verify) after every kill. A seed
# passes when the corpus drains with zero torn, mismatched, or missing
# documents after every single crash.
#
# usage: crash_torture.sh NETMARK_BIN SEED [DOCS]
#
# The kill schedule is fully determined by SEED, so a failing seed replays
# exactly in CI and locally.
set -u

BIN=${1:?usage: crash_torture.sh NETMARK_BIN SEED [DOCS]}
SEED=${2:?usage: crash_torture.sh NETMARK_BIN SEED [DOCS]}
DOCS=${3:-24}

WORK=$(mktemp -d "${TMPDIR:-/tmp}/netmark_torture.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# Crash points spanning the whole durability surface: the commit append and
# fsync, both checkpoint phases, log truncation, and recovery itself (a
# crash *during* recovery must also recover).
POINTS=(
  wal_before_append
  wal_after_append
  wal_after_commit_sync
  checkpoint_after_flush
  checkpoint_before_truncate
  wal_before_truncate
  wal_after_truncate
  recovery_page_applied
  recovery_before_truncate
)

# Deterministic PRNG (LCG) so the kill schedule is a pure function of SEED.
STATE=$((SEED + 0x9E3779B9))
rand() { # rand N -> [0, N)
  STATE=$(( (STATE * 6364136223846793005 + 1442695040888963407) & 0x7FFFFFFFFFFFFFFF ))
  echo $(( (STATE >> 17) % $1 ))
}

run_verify() {
  "$BIN" torture-verify --data "$WORK/data" --drop "$WORK/drop"
}

"$BIN" torture-gen --drop "$WORK/drop" --count "$DOCS" --seed "$SEED" || exit 1

MAX_ROUNDS=60
round=0
while :; do
  round=$((round + 1))
  if [ "$round" -gt "$MAX_ROUNDS" ]; then
    echo "crash_torture: corpus did not drain in $MAX_ROUNDS rounds" >&2
    exit 1
  fi
  point=${POINTS[$(rand ${#POINTS[@]})]}
  after=$(( $(rand 6) + 1 ))
  echo "--- round $round: SIGKILL at ${point} (hit ${after})"
  # Small checkpoint trigger so automatic checkpoints (and their crash
  # points) actually fire within a tiny corpus.
  NETMARK_CRASH_POINT=$point NETMARK_CRASH_AFTER=$after \
    "$BIN" torture-ingest --data "$WORK/data" --drop "$WORK/drop" \
      --fsync commit --checkpoint-bytes 65536
  rc=$?
  if ! run_verify; then
    echo "crash_torture: VERIFY FAILED after round $round (seed $SEED, ${point}/${after})" >&2
    exit 1
  fi
  [ "$rc" -eq 0 ] && break  # drained before the kill point fired
done

# One guaranteed-clean pass: whatever the last kill left behind must drain
# and still verify.
"$BIN" torture-ingest --data "$WORK/data" --drop "$WORK/drop" \
  --fsync commit --checkpoint-bytes 65536 >/dev/null || exit 1
if ! run_verify; then
  echo "crash_torture: FINAL VERIFY FAILED (seed $SEED)" >&2
  exit 1
fi
echo "crash_torture: seed $SEED passed ($round rounds)"
