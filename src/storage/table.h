// Table: schema-checked rows over a heap file, with secondary B+Tree indexes.

#ifndef NETMARK_STORAGE_TABLE_H_
#define NETMARK_STORAGE_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/btree.h"
#include "storage/heap_file.h"
#include "storage/pager.h"
#include "storage/schema.h"

namespace netmark::storage {

/// Definition of a secondary index.
struct IndexDef {
  std::string name;
  std::vector<std::string> columns;
};

/// \brief One relational table: typed rows addressed by RowId.
class Table {
 public:
  /// Opens (or creates) the table's heap file at `file_path`. Indexes in
  /// `indexes` are (re)built from a full scan. `pager_options` carries the
  /// I/O environment and the checksum-verification knob.
  static netmark::Result<std::unique_ptr<Table>> Open(
      TableSchema schema, const std::string& file_path,
      const std::vector<IndexDef>& indexes = {}, PagerOptions pager_options = {});

  const TableSchema& schema() const { return schema_; }
  uint64_t row_count() const { return heap_->live_records(); }

  /// Validates against the schema and stores the row.
  netmark::Result<RowId> Insert(const Row& row);
  netmark::Result<Row> Get(RowId id) const;
  netmark::Status Update(RowId id, const Row& row);
  netmark::Status Delete(RowId id);

  /// Visits every live row. Stops on non-OK from `fn`.
  netmark::Status Scan(
      const std::function<netmark::Status(RowId, const Row&)>& fn) const;

  /// Adds an index over `columns` and builds it from current rows.
  netmark::Status CreateIndex(const std::string& name,
                              const std::vector<std::string>& columns);
  bool HasIndex(const std::string& name) const { return indexes_.count(name) != 0; }
  std::vector<IndexDef> IndexDefs() const;

  /// Exact-match lookup on an index.
  netmark::Result<std::vector<RowId>> IndexLookup(const std::string& index,
                                                  const IndexKey& key) const;
  /// Inclusive range lookup on an index.
  netmark::Result<std::vector<RowId>> IndexRange(const std::string& index,
                                                 const IndexKey& lo,
                                                 const IndexKey& hi) const;
  /// Prefix lookup (first k components equal) on an index.
  netmark::Result<std::vector<RowId>> IndexPrefix(const std::string& index,
                                                  const IndexKey& prefix) const;

  /// Direct access to the underlying B+Tree (tests/benchmarks).
  const BTree* GetIndex(const std::string& name) const;

  netmark::Status Flush() { return pager_->Flush(); }
  const Pager& pager() const { return *pager_; }
  /// Mutable pager access (the database's commit/checkpoint paths capture
  /// dirty pages for the write-ahead log and fsync the heap file).
  Pager* mutable_pager() { return pager_.get(); }

 private:
  struct Index {
    std::vector<size_t> column_indexes;
    BTree tree;
  };

  Table(TableSchema schema, std::unique_ptr<Pager> pager,
        std::unique_ptr<HeapFile> heap)
      : schema_(std::move(schema)), pager_(std::move(pager)), heap_(std::move(heap)) {}

  IndexKey ExtractKey(const Index& index, const Row& row) const;
  netmark::Status IndexInsert(const Row& row, RowId id);
  netmark::Status IndexRemove(const Row& row, RowId id);

  TableSchema schema_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<HeapFile> heap_;
  std::map<std::string, Index> indexes_;
};

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_TABLE_H_
