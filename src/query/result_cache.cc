#include "query/result_cache.h"

namespace netmark::query {

std::string QueryResultCache::MakeKey(std::string_view canonical_query,
                                      uint64_t epoch) {
  std::string key;
  key.reserve(canonical_query.size() + 24);
  key.append(canonical_query);
  key += '\x1f';  // cannot appear in a URL-encoded query string
  key += std::to_string(epoch);
  return key;
}

size_t QueryResultCache::EntryBytes(const Entry& entry) {
  size_t bytes = sizeof(Entry) + entry.key.size();
  if (entry.hits != nullptr) {
    bytes += sizeof(std::vector<QueryHit>);
    for (const QueryHit& hit : *entry.hits) bytes += hit.ApproxBytes();
  }
  return bytes;
}

void QueryResultCache::Configure(ResultCacheOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  enabled_.store(options.enabled && options.max_entries > 0 &&
                     options.max_bytes > 0,
                 std::memory_order_relaxed);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  PublishGaugesLocked();
}

QueryResultCache::HitsPtr QueryResultCache::Lookup(
    std::string_view canonical_query, uint64_t epoch) {
  if (!enabled()) return nullptr;
  std::string key = MakeKey(canonical_query, epoch);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++miss_count_;
    if (handles_.misses != nullptr) handles_.misses->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hit_count_;
  if (handles_.hits != nullptr) handles_.hits->Increment();
  return it->second->hits;
}

void QueryResultCache::Insert(std::string_view canonical_query, uint64_t epoch,
                              HitsPtr hits) {
  if (!enabled() || hits == nullptr) return;
  Entry entry;
  entry.key = MakeKey(canonical_query, epoch);
  entry.hits = std::move(hits);
  entry.bytes = EntryBytes(entry);
  std::lock_guard<std::mutex> lock(mu_);
  if (entry.bytes > options_.max_bytes) return;  // would evict everything
  auto existing = index_.find(entry.key);
  if (existing != index_.end()) {
    // Concurrent executors raced on the same (query, epoch); both computed
    // the same result under snapshot isolation, keep the incumbent.
    return;
  }
  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_.emplace(lru_.front().key, lru_.begin());
  ++insert_count_;
  EvictLocked();
  PublishGaugesLocked();
}

void QueryResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  PublishGaugesLocked();
}

void QueryResultCache::EvictLocked() {
  while (!lru_.empty() &&
         (lru_.size() > options_.max_entries || bytes_ > options_.max_bytes)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evict_count_;
    if (handles_.evictions != nullptr) handles_.evictions->Increment();
  }
}

void QueryResultCache::PublishGaugesLocked() {
  if (handles_.entries != nullptr) {
    handles_.entries->Set(static_cast<int64_t>(lru_.size()));
  }
  if (handles_.bytes != nullptr) {
    handles_.bytes->Set(static_cast<int64_t>(bytes_));
  }
}

QueryResultCache::Snapshot QueryResultCache::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.hits = hit_count_;
  snap.misses = miss_count_;
  snap.insertions = insert_count_;
  snap.evictions = evict_count_;
  snap.entries = lru_.size();
  snap.bytes = bytes_;
  uint64_t lookups = hit_count_ + miss_count_;
  snap.hit_ratio =
      lookups == 0 ? 0.0 : static_cast<double>(hit_count_) / lookups;
  return snap;
}

void QueryResultCache::BindMetrics(observability::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    handles_ = MetricHandles{};
    return;
  }
  handles_.hits = registry->GetCounter("netmark_query_cache_hits_total");
  handles_.misses = registry->GetCounter("netmark_query_cache_misses_total");
  handles_.evictions =
      registry->GetCounter("netmark_query_cache_evictions_total");
  handles_.entries = registry->GetGauge("netmark_query_cache_entries");
  handles_.bytes = registry->GetGauge("netmark_query_cache_bytes");
  PublishGaugesLocked();
}

}  // namespace netmark::query
