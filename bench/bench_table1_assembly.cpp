// Table 1 — "NASA integration applications" and their assembly times:
//
//   Proposal Financial Management          1 hour
//   Risk Assessment                        1 day
//   Integrated Budget Performance Document 1 week
//   Anomaly Tracking                       (short; two live sources)
//
// We cannot re-measure human assembly hours; what the table *claims* is that
// each application reduces to a handful of declarative steps over NETMARK
// instead of schema engineering. This bench scripts each application's full
// assembly (ingest + declarations + first query) and reports:
//   - assembly_steps: discrete administrator actions (the human-cost proxy)
//   - wall-clock for the scripted assembly
//   - the GAV-baseline artifact count for the same integration, for contrast.

#include <benchmark/benchmark.h>

#include "baseline/gav_mediator.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "federation/content_only_source.h"
#include "federation/local_source.h"
#include "workload/query_workload.h"
#include "xml/parser.h"

namespace {

using namespace netmark;

struct AssemblyResult {
  int steps = 0;        // administrator actions (declarations, stylesheets)
  size_t documents = 0;
  size_t first_query_hits = 0;
};

// Application 1: Proposal Financial Management.
AssemblyResult AssembleProposalFinancial(int n_proposals) {
  auto inst = bench::MakeLoadedInstance(0);
  workload::CorpusGenerator gen(1);
  for (int i = 0; i < n_proposals; ++i) {
    auto doc = gen.Proposal(i);
    bench::Check(inst.nm->IngestContent(doc.file_name, doc.content).status(),
                 "ingest");
  }
  AssemblyResult r;
  r.steps = 1;  // the single aggregate query the application runs
  r.documents = inst.nm->store()->document_count();
  r.first_query_hits = bench::Unwrap(inst.nm->Query("context=Budget"), "query").size();
  return r;
}

// Application 2: Risk Assessment (markdown memos + combined queries).
AssemblyResult AssembleRiskAssessment(int n_memos) {
  auto inst = bench::MakeLoadedInstance(0);
  workload::CorpusGenerator gen(2);
  for (int i = 0; i < n_memos; ++i) {
    auto doc = gen.RiskMemo(i);
    bench::Check(inst.nm->IngestContent(doc.file_name, doc.content).status(),
                 "ingest");
  }
  AssemblyResult r;
  r.steps = 2;  // one query per report view (risks overview + mitigations)
  r.documents = inst.nm->store()->document_count();
  r.first_query_hits =
      bench::Unwrap(inst.nm->Query("context=Risk+Assessment"), "query").size();
  return r;
}

// Application 3: IBPD (extract Budget Summary from task plans + XSLT).
AssemblyResult AssembleIbpd(int n_task_plans) {
  auto inst = bench::MakeLoadedInstance(0);
  workload::CorpusGenerator gen(3);
  for (int i = 0; i < n_task_plans; ++i) {
    auto doc = gen.TaskPlan(i);
    bench::Check(inst.nm->IngestContent(doc.file_name, doc.content).status(),
                 "ingest");
  }
  const char* sheet =
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<ibpd><xsl:for-each select=\"results/result\"><xsl:sort select=\"@doc\"/>"
      "<entry source=\"{@doc}\"><xsl:value-of select=\"content\"/></entry>"
      "</xsl:for-each></ibpd></xsl:template></xsl:stylesheet>";
  AssemblyResult r;
  r.steps = 2;  // one query + one stylesheet
  r.documents = inst.nm->store()->document_count();
  std::string ibpd = bench::Unwrap(
      inst.nm->QueryAndTransform("context=%22Budget+Summary%22", sheet), "ibpd");
  auto parsed = bench::Unwrap(xml::ParseXml(ibpd), "parse");
  r.first_query_hits = parsed.ChildElements(parsed.DocumentElement()).size();
  return r;
}

// Application 4: Anomaly Tracking (two stores + one databank).
AssemblyResult AssembleAnomalyTracking(int reports_per_source) {
  auto a = bench::MakeLoadedInstance(0, 10);
  auto b = bench::MakeLoadedInstance(0, 11);
  workload::CorpusGenerator gen(4);
  for (int i = 0; i < reports_per_source; ++i) {
    auto doc_a = gen.AnomalyReport(i);
    auto doc_b = gen.AnomalyReport(1000 + i);
    bench::Check(a.nm->IngestContent(doc_a.file_name, doc_a.content).status(), "a");
    bench::Check(b.nm->IngestContent(doc_b.file_name, doc_b.content).status(), "b");
  }
  federation::Router router;
  bench::Check(router.RegisterSource(std::make_shared<federation::LocalStoreSource>(
                   "johnson", a.nm->store())),
               "register");
  bench::Check(router.RegisterSource(std::make_shared<federation::LocalStoreSource>(
                   "marshall", b.nm->store())),
               "register");
  bench::Check(router.DefineDatabank("anomalies", {"johnson", "marshall"}),
               "databank");
  AssemblyResult r;
  r.steps = 3;  // two registrations + one databank declaration
  r.documents = a.nm->store()->document_count() + b.nm->store()->document_count();
  query::XdbQuery q;
  q.context = "Anomaly Description";
  r.first_query_hits = bench::Unwrap(router.Query("anomalies", q), "query").size();
  return r;
}

// GAV contrast: the same four integrations via schemas/views/mappings.
size_t GavArtifactsForSources(int n_sources) {
  baseline::GavMediator mediator;
  baseline::GlobalView view;
  view.name = "v";
  view.attributes = {"name", "division"};
  std::vector<std::string> centers = {"Ames", "Johnson", "Kennedy"};
  for (int i = 0; i < n_sources; ++i) {
    auto src = workload::EmployeeSource(static_cast<uint64_t>(i) + 1,
                                        centers[static_cast<size_t>(i) % 3], 5);
    src.name += std::to_string(i);
    baseline::SourceMapping mapping;
    mapping.source = src.name;
    mapping.attribute_map = {{"name", src.attributes[0]}, {"division", "division"}};
    bench::Check(mediator.RegisterSource(std::move(src)), "register");
    view.mappings.push_back(std::move(mapping));
  }
  bench::Check(mediator.DefineView(view), "view");
  return mediator.artifacts_authored();
}

template <AssemblyResult (*Fn)(int)>
void BM_Assembly(benchmark::State& state) {
  AssemblyResult result;
  for (auto _ : state) {
    result = Fn(static_cast<int>(state.range(0)));
  }
  state.counters["documents"] = static_cast<double>(result.documents);
  state.counters["assembly_steps"] = result.steps;
  state.counters["first_query_hits"] = static_cast<double>(result.first_query_hits);
}
BENCHMARK(BM_Assembly<AssembleProposalFinancial>)
    ->Name("BM_Assemble/ProposalFinancial")->Arg(50)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Assembly<AssembleRiskAssessment>)
    ->Name("BM_Assemble/RiskAssessment")->Arg(50)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Assembly<AssembleIbpd>)
    ->Name("BM_Assemble/IBPD")->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Assembly<AssembleAnomalyTracking>)
    ->Name("BM_Assemble/AnomalyTracking")->Arg(25)->Unit(benchmark::kMillisecond);

void PrintAssemblyTable() {
  bench::ReportHeader("Table 1: NASA integration applications",
                      "applications assemble in hours-days, not the weeks/months "
                      "schema-centric integration needs");
  struct Row {
    const char* name;
    const char* paper_time;
    AssemblyResult result;
    double seconds;
    int equivalent_sources;  // sources a GAV build would need to map
  };
  std::vector<Row> rows;
  {
    Stopwatch w;
    auto r = AssembleProposalFinancial(50);
    rows.push_back({"Proposal Financial Mgmt", "1 hour", r, w.ElapsedSeconds(), 1});
  }
  {
    Stopwatch w;
    auto r = AssembleRiskAssessment(50);
    rows.push_back({"Risk Assessment", "1 day", r, w.ElapsedSeconds(), 1});
  }
  {
    Stopwatch w;
    auto r = AssembleIbpd(200);
    rows.push_back({"Integrated Budget Perf Doc", "1 week", r, w.ElapsedSeconds(), 1});
  }
  {
    Stopwatch w;
    auto r = AssembleAnomalyTracking(25);
    rows.push_back({"Anomaly Tracking", "(2 sources)", r, w.ElapsedSeconds(), 2});
  }
  std::printf("%-28s %-12s %6s %8s %10s %14s\n", "application", "paper-time",
              "docs", "steps", "wall (s)", "GAV artifacts");
  for (const Row& row : rows) {
    std::printf("%-28s %-12s %6zu %8d %10.3f %14zu\n", row.name, row.paper_time,
                row.result.documents, row.result.steps, row.seconds,
                GavArtifactsForSources(row.equivalent_sources));
  }
  std::printf("shape check: every application assembles in <= 3 declarative\n"
              "steps; the GAV route pays schemas+views+mappings before the\n"
              "first document is even queryable.\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintAssemblyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
