#include "storage/schema.h"

#include <gtest/gtest.h>

namespace netmark::storage {
namespace {

TableSchema MakeSchema() {
  return TableSchema("T", {
                              ColumnSchema{"id", ValueType::kInt64, false},
                              ColumnSchema{"name", ValueType::kString, true},
                              ColumnSchema{"score", ValueType::kDouble, true},
                          });
}

TEST(SchemaTest, ColumnIndexLookup) {
  TableSchema s = MakeSchema();
  EXPECT_EQ(*s.ColumnIndex("id"), 0u);
  EXPECT_EQ(*s.ColumnIndex("score"), 2u);
  EXPECT_TRUE(s.ColumnIndex("missing").status().IsNotFound());
}

TEST(SchemaTest, ValidateAcceptsConformingRows) {
  TableSchema s = MakeSchema();
  EXPECT_TRUE(s.Validate({Value::Int(1), Value::Str("a"), Value::Real(0.5)}).ok());
  EXPECT_TRUE(s.Validate({Value::Int(1), Value::Null(), Value::Null()}).ok());
}

TEST(SchemaTest, ValidateRejectsArityMismatch) {
  TableSchema s = MakeSchema();
  EXPECT_TRUE(s.Validate({Value::Int(1)}).IsInvalidArgument());
  EXPECT_TRUE(s.Validate({Value::Int(1), Value::Null(), Value::Null(), Value::Null()})
                  .IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsTypeMismatch) {
  TableSchema s = MakeSchema();
  EXPECT_TRUE(
      s.Validate({Value::Str("not-int"), Value::Null(), Value::Null()}).IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsNullInNonNullable) {
  TableSchema s = MakeSchema();
  EXPECT_TRUE(s.Validate({Value::Null(), Value::Null(), Value::Null()}).IsInvalidArgument());
}

TEST(SchemaTest, EncodeDecodeRoundTrip) {
  TableSchema s = MakeSchema();
  std::string encoded = s.Encode();
  EXPECT_EQ(encoded, "T(id:INT,name:TEXT?,score:REAL?)");
  auto decoded = TableSchema::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name(), "T");
  ASSERT_EQ(decoded->num_columns(), 3u);
  EXPECT_EQ(decoded->columns()[0].name, "id");
  EXPECT_FALSE(decoded->columns()[0].nullable);
  EXPECT_TRUE(decoded->columns()[1].nullable);
  EXPECT_EQ(decoded->columns()[2].type, ValueType::kDouble);
}

TEST(SchemaTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(TableSchema::Decode("no parens").ok());
  EXPECT_FALSE(TableSchema::Decode("T(col-without-type)").ok());
  EXPECT_FALSE(TableSchema::Decode("T(a:BOGUS)").ok());
}

TEST(RowCodecTest, RoundTripsAllTypes) {
  Row row = {Value::Null(), Value::Int(-42), Value::Real(3.25),
             Value::Str("hello world"), Value::Int(0),
             Value::Str(std::string("\0binary\xFF", 8))};
  auto decoded = DecodeRow(EncodeRow(row));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ((*decoded)[i].Compare(row[i]), 0) << "cell " << i;
  }
}

TEST(RowCodecTest, RoundTripsEmptyRowAndEmptyString) {
  auto empty = DecodeRow(EncodeRow({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  auto one = DecodeRow(EncodeRow({Value::Str("")}));
  ASSERT_TRUE(one.ok());
  EXPECT_EQ((*one)[0].AsStr(), "");
}

TEST(RowCodecTest, RoundTripsExtremeIntegers) {
  Row row = {Value::Int(INT64_MIN), Value::Int(INT64_MAX), Value::Int(-1)};
  auto decoded = DecodeRow(EncodeRow(row));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0].AsInt(), INT64_MIN);
  EXPECT_EQ((*decoded)[1].AsInt(), INT64_MAX);
  EXPECT_EQ((*decoded)[2].AsInt(), -1);
}

TEST(RowCodecTest, DetectsTruncationAndTrailingBytes) {
  std::string bytes = EncodeRow({Value::Str("hello")});
  EXPECT_TRUE(DecodeRow(bytes.substr(0, bytes.size() - 2)).status().IsCorruption());
  EXPECT_TRUE(DecodeRow(bytes + "x").status().IsCorruption());
  EXPECT_TRUE(DecodeRow("").status().IsCorruption());
}

TEST(RowCodecTest, LargeStringSurvives) {
  std::string big(100000, 'q');
  auto decoded = DecodeRow(EncodeRow({Value::Str(big)}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0].AsStr(), big);
}

}  // namespace
}  // namespace netmark::storage
