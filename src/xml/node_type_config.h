// The five NETMARK node data types and the configuration mapping tag names
// to them.
//
// Paper §2.1.1: "The SGML parser is governed by five different node data
// types, which are specified in the HTML or XML configuration files passed
// by the daemon. The five NETMARK node data types ... are: (1) ELEMENT,
// (2) TEXT, (3) CONTEXT, (4) INTENSE, and (5) SIMULATION."
//
// The paper skips the semantics of the non-obvious types; this reproduction
// fixes them as follows (documented in DESIGN.md):
//   ELEMENT    — ordinary structural element.
//   TEXT       — character data.
//   CONTEXT    — a heading element: its text names the section whose body is
//                the run of following siblings (the unit of "context search").
//   INTENSE    — emphasis markup (bold/italic/strong); transparent for
//                context walks but preserved for rendering and ranked higher
//                by content search.
//   SIMULATION — synthesized metadata nodes the parser fabricates (file
//                name/date/size, converter provenance); they "simulate"
//                markup that was not present in the source document.

#ifndef NETMARK_XML_NODE_TYPE_CONFIG_H_
#define NETMARK_XML_NODE_TYPE_CONFIG_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

#include "common/config.h"
#include "common/result.h"
#include "xml/dom.h"

namespace netmark::xml {

/// NETMARK node type identifiers as stored in the NODETYPE column (Fig 5).
enum class NetmarkNodeType : int32_t {
  kElement = 1,
  kText = 2,
  kContext = 3,
  kIntense = 4,
  kSimulation = 5,
};

std::string_view NetmarkNodeTypeToString(NetmarkNodeType t);
Result<NetmarkNodeType> NetmarkNodeTypeFromInt(int32_t v);

/// \brief Classification rules: which element names are CONTEXT, INTENSE or
/// SIMULATION. Everything else is ELEMENT; text nodes are TEXT.
class NodeTypeConfig {
 public:
  /// The built-in default ruleset (HTML heading/emphasis conventions plus
  /// the `context`/`netmark:*` tags emitted by the upmark converters).
  static NodeTypeConfig Default();

  /// Loads rules from an INI config with sections [context], [intense],
  /// [simulation], each listing `tags = a, b, c`. Missing sections fall back
  /// to the defaults for that class.
  static Result<NodeTypeConfig> FromConfig(const Config& config);

  /// Classifies a DOM node.
  NetmarkNodeType Classify(const Document& doc, NodeId node) const;
  /// Classifies an element by (lower-case folded) tag name.
  NetmarkNodeType ClassifyElementName(std::string_view name) const;

  bool IsContextTag(std::string_view name) const;
  bool IsIntenseTag(std::string_view name) const;
  bool IsSimulationTag(std::string_view name) const;

  void AddContextTag(std::string tag);
  void AddIntenseTag(std::string tag);
  void AddSimulationTag(std::string tag);

 private:
  std::set<std::string, std::less<>> context_tags_;
  std::set<std::string, std::less<>> intense_tags_;
  std::set<std::string, std::less<>> simulation_tags_;
};

}  // namespace netmark::xml

#endif  // NETMARK_XML_NODE_TYPE_CONFIG_H_
