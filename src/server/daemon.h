// The NETMARK DAEMON (paper Fig 3): watches a drop folder, runs the SGML
// parser / upmark converters on new files, and inserts them into the XML
// Store — the drag-and-drop ingestion path.

#ifndef NETMARK_SERVER_DAEMON_H_
#define NETMARK_SERVER_DAEMON_H_

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <thread>

#include "common/result.h"
#include "convert/registry.h"
#include "xmlstore/xml_store.h"

namespace netmark::server {

/// Daemon configuration.
struct DaemonOptions {
  std::filesystem::path drop_dir;
  /// Poll period for the background thread.
  std::chrono::milliseconds poll_interval{200};
  /// Move ingested files into drop_dir/processed (failures to drop_dir/failed)
  /// instead of deleting them.
  bool keep_processed = true;
};

/// \brief Folder-watching ingestion daemon.
class IngestionDaemon {
 public:
  IngestionDaemon(xmlstore::XmlStore* store,
                  const convert::ConverterRegistry* converters,
                  DaemonOptions options)
      : store_(store), converters_(converters), options_(std::move(options)) {}
  ~IngestionDaemon() { Stop(); }

  /// Creates the folder structure and starts the polling thread.
  netmark::Status Start();
  /// Stops the thread (joins). Idempotent.
  void Stop();

  /// One synchronous sweep of the drop folder; returns the number of files
  /// ingested. Usable without Start() for deterministic tests/benchmarks.
  netmark::Result<int> ProcessOnce();

  uint64_t files_ingested() const { return files_ingested_.load(); }
  uint64_t files_failed() const { return files_failed_.load(); }

 private:
  netmark::Status IngestFile(const std::filesystem::path& path);
  void Loop();

  xmlstore::XmlStore* store_;
  const convert::ConverterRegistry* converters_;
  DaemonOptions options_;
  std::mutex sweep_mu_;  // serializes ProcessOnce vs the polling thread
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> files_ingested_{0};
  std::atomic<uint64_t> files_failed_{0};
  std::thread thread_;
};

}  // namespace netmark::server

#endif  // NETMARK_SERVER_DAEMON_H_
