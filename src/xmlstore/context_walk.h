// Context walks (paper §2.1.4, "Processing Queries Internally").
//
// "The processing of the node involves traversing up the tree structure via
// its parent or sibling node until the first context is found. ... Once a
// particular CONTEXT is found, traversing back down the tree structure via
// the sibling node retrieves the corresponding content text."
//
// The upward walk hops previous-sibling links, falling back to the parent
// link when a node is its parent's first child, and stops at the first
// CONTEXT-typed node — the section heading governing the start node. The
// downward walk then follows forward-sibling links from the heading,
// collecting content until the next CONTEXT sibling (the next section) or
// the end of the sibling run.
//
// Every hop is one physical RowId fetch — the paper's Oracle-rowid trick.
// FindGoverningContextViaIndex is the ablation twin that does the same walk
// with logical-id index joins instead (bench_ablation_rowid).

#ifndef NETMARK_XMLSTORE_CONTEXT_WALK_H_
#define NETMARK_XMLSTORE_CONTEXT_WALK_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "xmlstore/xml_store.h"

namespace netmark::xmlstore {

/// A located section: the CONTEXT node plus its content run.
struct Section {
  storage::RowId context;                  ///< the heading node
  std::string heading;                     ///< heading text
  std::vector<storage::RowId> content;     ///< sibling nodes forming the body
  int64_t doc_id = 0;
};

/// \brief Nearest enclosing/preceding CONTEXT node of `start`, or invalid
/// RowId when the node precedes any heading. Pure RowId-link hops.
netmark::Result<storage::RowId> FindGoverningContext(const XmlStore& store,
                                                     storage::RowId start);

/// \brief Same result computed with PARENTNODEID index joins instead of
/// physical links (ablation baseline; see DESIGN.md Ablation A).
netmark::Result<storage::RowId> FindGoverningContextViaIndex(const XmlStore& store,
                                                             storage::RowId start);

/// \brief The content run of a CONTEXT node: following siblings up to (not
/// including) the next CONTEXT sibling.
netmark::Result<std::vector<storage::RowId>> SectionContent(const XmlStore& store,
                                                            storage::RowId context);

/// \brief Materializes a full Section (heading text + content + doc).
netmark::Result<Section> BuildSection(const XmlStore& store, storage::RowId context);

/// \brief Concatenated text of a section's content run.
netmark::Result<std::string> SectionText(const XmlStore& store,
                                         storage::RowId context);

}  // namespace netmark::xmlstore

#endif  // NETMARK_XMLSTORE_CONTEXT_WALK_H_
