// Readiness-driven connection engine behind HttpServer's `reactor=epoll`
// mode (the default). One reactor thread owns every socket:
//
//            ┌──────────────── epoll (LT + EPOLLONESHOT) ───────────────┐
//   accept ──┤ register conn ── readable ── frame bytes ── complete? ───┤
//            │      │                │          │             │yes      │
//            │   idle timer      read timer   re-arm      dispatch to   │
//            │   (quiet reap)    (408)        oneshot     worker queue  │
//            └──────────────────────────────────────────────────────────┘
//
// The reactor thread is the only code that touches the epoll set, the
// per-connection buffers, and the timer heap — no locks on the hot path.
// Workers receive fully framed requests (HttpServer::FramedRequest), write
// the response on the connection's fd themselves, and post a Completion
// back through a mutex-guarded vector + eventfd wake. EPOLLONESHOT
// guarantees the reactor never reads a connection while a worker owns its
// in-flight request, so the fd is never shared concurrently.

#ifndef NETMARK_SERVER_EPOLL_REACTOR_H_
#define NETMARK_SERVER_EPOLL_REACTOR_H_

#include <cstdint>
#include <mutex>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "server/http_server.h"

namespace netmark::server {

/// \brief Single-threaded epoll state machine driving all connections.
///
/// Lifecycle (all driven by HttpServer): Init() after the listen socket is
/// bound, Run() as the dedicated reactor thread body (returns once a drain
/// completes), Wake() + the server's draining_ flag to start a drain.
/// Complete() is the one cross-thread entry point, called by pool workers.
class EpollReactor {
 public:
  explicit EpollReactor(HttpServer* server) : server_(server) {}
  ~EpollReactor();
  EpollReactor(const EpollReactor&) = delete;
  EpollReactor& operator=(const EpollReactor&) = delete;

  /// Creates the epoll set + wake eventfd and registers the (made
  /// non-blocking) listen socket. Call before spawning Run().
  netmark::Status Init();

  /// Reactor loop: accepts, reads, frames, dispatches, and fires timers
  /// until the server drains (draining_ set + all connections retired).
  void Run();

  /// Pokes the reactor out of epoll_wait (drain signal, completions).
  /// Thread-safe.
  void Wake();

  /// Worker → reactor: the response for (fd, conn_id) was written; keep
  /// says whether to re-arm the connection for its next request or close
  /// it. Thread-safe.
  void Complete(HttpServer::Completion done);

 private:
  /// Per-connection state. Owned exclusively by the reactor thread; workers
  /// refer to a connection only by its (fd, id) pair.
  struct Conn {
    int fd = -1;
    uint64_t id = 0;     ///< monotonic; guards completions against fd reuse
    std::string buffer;  ///< bytes received but not yet dispatched
    /// Cached "\r\n\r\n" scan state for CompleteMessageBytes (avoids
    /// rescanning the whole head on every trickled byte).
    size_t head_end = std::string::npos;
    int served = 0;             ///< requests dispatched on this connection
    bool in_flight = false;     ///< a worker owns the current request
    bool message_started = false;  ///< first byte of the next request seen
    int64_t idle_deadline = 0;  ///< applies while message_started is false
    int64_t read_deadline = 0;  ///< applies once message_started
    /// Bumped whenever the deadline changes; heap entries with a stale gen
    /// are skipped on pop (lazy timer cancellation).
    uint64_t timer_gen = 0;
  };

  /// Timer heap entry. fd < 0 marks the listener re-registration retry
  /// used after EMFILE parks the listen socket.
  struct TimerEntry {
    int64_t deadline = 0;
    int fd = -1;
    uint64_t conn_id = 0;
    uint64_t gen = 0;
  };
  struct TimerLater {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      return a.deadline > b.deadline;
    }
  };

  void OnAccept(int64_t now);
  void OnConnEvent(int fd, int64_t now);
  void FireTimers(int64_t now);
  void ProcessCompletions(int64_t now);
  void StartDrain(int64_t now);
  /// Hands buffer[0, frame_len) to the worker queue, or sheds with 503 and
  /// closes when the queue is full. May erase the connection.
  void Dispatch(Conn& conn, size_t frame_len, int64_t now);
  /// Pushes a timer entry for the connection's current effective deadline
  /// (read vs idle, clamped by the drain grace window).
  void ArmDeadline(Conn& conn);
  bool RearmEpoll(const Conn& conn);
  void CloseConn(int fd);
  void ParkListener(int64_t now);
  void UnparkListener();
  /// epoll_wait timeout until the next timer (capped; ms).
  int NextTimeoutMs(int64_t now) const;

  HttpServer* server_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool listener_registered_ = false;
  bool drain_started_ = false;
  int64_t drain_deadline_ = 0;
  uint64_t next_conn_id_ = 0;
  std::unordered_map<int, Conn> conns_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerLater> timers_;

  std::mutex completions_mu_;
  std::vector<HttpServer::Completion> completions_;  ///< guarded by mu
};

}  // namespace netmark::server

#endif  // NETMARK_SERVER_EPOLL_REACTOR_H_
