// Property test: EmitCsv ∘ ParseCsv is the identity on arbitrary tables.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "convert/csv_converter.h"

namespace netmark::convert {
namespace {

std::string RandomField(netmark::Rng* rng) {
  static const std::string kAlphabet =
      "abcXYZ089 ,\"\n\r;|'\t-_=%&";
  size_t len = rng->Uniform(12);
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng->Uniform(kAlphabet.size())];
  }
  return out;
}

class CsvRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripProperty, EmitParseIsIdentity) {
  netmark::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    size_t n_rows = 1 + rng.Uniform(10);
    size_t n_cols = 1 + rng.Uniform(6);
    std::vector<std::vector<std::string>> table(n_rows);
    for (auto& row : table) {
      for (size_t c = 0; c < n_cols; ++c) row.push_back(RandomField(&rng));
      // ParseCsv drops fully-empty rows; ensure at least one non-empty field.
      if (row.back().empty()) row.back() = "x";
    }
    std::string csv = EmitCsv(table);
    auto parsed = ParseCsv(csv);
    ASSERT_EQ(parsed.size(), table.size()) << "trial " << trial << "\n" << csv;
    for (size_t r = 0; r < table.size(); ++r) {
      ASSERT_EQ(parsed[r].size(), table[r].size()) << "row " << r << "\n" << csv;
      for (size_t c = 0; c < table[r].size(); ++c) {
        EXPECT_EQ(parsed[r][c], table[r][c])
            << "cell (" << r << "," << c << ")\n" << csv;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripProperty,
                         ::testing::Values(1, 17, 23, 99, 4096));

TEST(EmitCsvTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(EmitCsv({{"plain", "a,b", "say \"hi\"", "line\nbreak"}}),
            "plain,\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
  EXPECT_EQ(EmitCsv({}), "");
}

}  // namespace
}  // namespace netmark::convert
