#include "xslt/stylesheet.h"

#include <algorithm>

#include "common/string_util.h"
#include "xml/parser.h"
#include "xslt/xpath.h"

namespace netmark::xslt {

netmark::Result<Stylesheet> Stylesheet::Parse(std::string_view text) {
  // Whitespace-only text must survive parsing so <xsl:text> </xsl:text> can
  // emit it; the engine strips it everywhere else (XSLT whitespace rules).
  xml::ParseOptions opts;
  opts.keep_whitespace_text = true;
  NETMARK_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(text, opts));
  Stylesheet sheet;
  sheet.doc_ = std::make_shared<xml::Document>(std::move(doc));
  const xml::Document& d = *sheet.doc_;
  xml::NodeId root = d.DocumentElement();
  if (root == xml::kInvalidNode ||
      (d.name(root) != "xsl:stylesheet" && d.name(root) != "xsl:transform")) {
    return netmark::Status::ParseError(
        "stylesheet root must be xsl:stylesheet or xsl:transform");
  }
  int order = 0;
  for (xml::NodeId child = d.first_child(root); child != xml::kInvalidNode;
       child = d.next_sibling(child)) {
    if (d.kind(child) != xml::NodeKind::kElement) continue;
    if (d.name(child) != "xsl:template") {
      return netmark::Status::ParseError("unsupported top-level element: " +
                                         d.name(child));
    }
    std::string match(d.GetAttribute(child, "match"));
    if (match.empty()) {
      return netmark::Status::ParseError("xsl:template requires match=");
    }
    Template t;
    t.body = child;
    t.order = order++;
    if (match == "/") {
      t.matches_root = true;
      t.priority = 0.5;
    } else {
      for (const std::string& step : netmark::Split(match, '/')) {
        std::string trimmed = netmark::Trim(step);
        if (trimmed.empty()) {
          return netmark::Status::ParseError("bad match pattern: " + match);
        }
        t.match_chain.push_back(trimmed);
      }
      const std::string& last = t.match_chain.back();
      if (last == "*" || last == "text()") {
        t.priority = -0.5;
      } else {
        t.priority = static_cast<double>(t.match_chain.size());
      }
    }
    sheet.templates_.push_back(std::move(t));
  }
  return sheet;
}

bool Stylesheet::Matches(const Template& t, const xml::Document& source,
                         xml::NodeId node) {
  if (t.matches_root) return node == source.root();
  // Walk the chain from the node upwards.
  xml::NodeId cur = node;
  for (auto it = t.match_chain.rbegin(); it != t.match_chain.rend(); ++it) {
    if (cur == xml::kInvalidNode) return false;
    const std::string& test = *it;
    if (test == "text()") {
      if (source.kind(cur) != xml::NodeKind::kText &&
          source.kind(cur) != xml::NodeKind::kCData) {
        return false;
      }
    } else if (test == "*") {
      if (source.kind(cur) != xml::NodeKind::kElement) return false;
    } else {
      if (source.kind(cur) != xml::NodeKind::kElement || source.name(cur) != test) {
        return false;
      }
    }
    cur = source.parent(cur);
  }
  return true;
}

const Stylesheet::Template* Stylesheet::FindTemplate(const xml::Document& source,
                                                     xml::NodeId node) const {
  const Template* best = nullptr;
  for (const Template& t : templates_) {
    if (!Matches(t, source, node)) continue;
    if (best == nullptr || t.priority > best->priority ||
        (t.priority == best->priority && t.order > best->order)) {
      best = &t;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Transform engine
// ---------------------------------------------------------------------------

namespace {

class Engine {
 public:
  Engine(const Stylesheet& sheet, const xml::Document& source)
      : sheet_(sheet), sdoc_(sheet.doc()), source_(source) {}

  netmark::Result<xml::Document> Run() {
    ApplyTemplates(source_.root(), out_.root());
    if (!error_.ok()) return error_;
    return std::move(out_);
  }

 private:
  // Applies template rules to one source node, emitting into `out_parent`.
  void ApplyTemplates(xml::NodeId src, xml::NodeId out_parent) {
    const Stylesheet::Template* t = sheet_.FindTemplate(source_, src);
    if (t != nullptr) {
      InstantiateChildren(t->body, src, out_parent);
      return;
    }
    // Built-in rules: recurse through elements/root, copy text.
    switch (source_.kind(src)) {
      case xml::NodeKind::kDocument:
      case xml::NodeKind::kElement:
        for (xml::NodeId c = source_.first_child(src); c != xml::kInvalidNode;
             c = source_.next_sibling(c)) {
          ApplyTemplates(c, out_parent);
        }
        break;
      case xml::NodeKind::kText:
      case xml::NodeKind::kCData:
        AppendText(out_parent, source_.data(src));
        break;
      default:
        break;
    }
  }

  void AppendText(xml::NodeId out_parent, const std::string& text) {
    if (text.empty()) return;
    out_.AppendChild(out_parent, out_.CreateText(text));
  }

  void Fail(netmark::Status status) {
    if (error_.ok()) error_ = std::move(status);
  }

  netmark::Result<XPath> CompilePath(std::string_view expr) {
    auto path = XPath::Parse(expr);
    if (!path.ok()) Fail(path.status());
    return path;
  }

  // Instantiates the children of a stylesheet element against `src`.
  void InstantiateChildren(xml::NodeId sheet_node, xml::NodeId src,
                           xml::NodeId out_parent) {
    for (xml::NodeId c = sdoc_.first_child(sheet_node); c != xml::kInvalidNode;
         c = sdoc_.next_sibling(c)) {
      if (!error_.ok()) return;
      Instantiate(c, src, out_parent);
    }
  }

  void Instantiate(xml::NodeId inst, xml::NodeId src, xml::NodeId out_parent) {
    switch (sdoc_.kind(inst)) {
      case xml::NodeKind::kText:
      case xml::NodeKind::kCData:
        // Whitespace-only text in stylesheet bodies is stripped (XSLT rule);
        // meaningful whitespace goes through <xsl:text>.
        if (netmark::TrimView(sdoc_.data(inst)).empty()) return;
        AppendText(out_parent, sdoc_.data(inst));
        return;
      case xml::NodeKind::kElement:
        break;
      default:
        return;  // comments/PIs in stylesheets are ignored
    }
    const std::string& name = sdoc_.name(inst);
    if (!netmark::StartsWith(name, "xsl:")) {
      LiteralElement(inst, src, out_parent);
      return;
    }
    if (name == "xsl:apply-templates") {
      std::string select(sdoc_.GetAttribute(inst, "select"));
      if (select.empty()) {
        for (xml::NodeId c = source_.first_child(src); c != xml::kInvalidNode;
             c = source_.next_sibling(c)) {
          ApplyTemplates(c, out_parent);
        }
      } else {
        auto path = CompilePath(select);
        if (!path.ok()) return;
        for (xml::NodeId n : Sorted(inst, path->SelectNodes(source_, src))) {
          ApplyTemplates(n, out_parent);
        }
      }
      return;
    }
    if (name == "xsl:value-of") {
      auto path = CompilePath(sdoc_.GetAttribute(inst, "select"));
      if (!path.ok()) return;
      AppendText(out_parent, path->EvaluateString(source_, src));
      return;
    }
    if (name == "xsl:for-each") {
      auto path = CompilePath(sdoc_.GetAttribute(inst, "select"));
      if (!path.ok()) return;
      for (xml::NodeId n : Sorted(inst, path->SelectNodes(source_, src))) {
        InstantiateChildren(inst, n, out_parent);
      }
      return;
    }
    if (name == "xsl:sort") {
      return;  // handled by Sorted()
    }
    if (name == "xsl:if") {
      if (EvaluateTest(sdoc_.GetAttribute(inst, "test"), src)) {
        InstantiateChildren(inst, src, out_parent);
      }
      return;
    }
    if (name == "xsl:choose") {
      for (xml::NodeId c = sdoc_.first_child(inst); c != xml::kInvalidNode;
           c = sdoc_.next_sibling(c)) {
        if (sdoc_.kind(c) != xml::NodeKind::kElement) continue;
        if (sdoc_.name(c) == "xsl:when") {
          if (EvaluateTest(sdoc_.GetAttribute(c, "test"), src)) {
            InstantiateChildren(c, src, out_parent);
            return;
          }
        } else if (sdoc_.name(c) == "xsl:otherwise") {
          InstantiateChildren(c, src, out_parent);
          return;
        }
      }
      return;
    }
    if (name == "xsl:text") {
      AppendText(out_parent, sdoc_.TextContent(inst));
      return;
    }
    if (name == "xsl:element") {
      std::string el_name = ExpandAvt(sdoc_.GetAttribute(inst, "name"), src);
      if (el_name.empty()) {
        Fail(netmark::Status::InvalidArgument("xsl:element produced empty name"));
        return;
      }
      xml::NodeId el = out_.CreateElement(el_name);
      out_.AppendChild(out_parent, el);
      InstantiateChildren(inst, src, el);
      return;
    }
    if (name == "xsl:attribute") {
      std::string attr_name(sdoc_.GetAttribute(inst, "name"));
      // Instantiate the content into a detached scratch element, then take
      // its text as the attribute value.
      xml::NodeId tmp = out_.CreateElement("netmark:attr-scratch");
      InstantiateChildren(inst, src, tmp);
      out_.SetAttribute(out_parent, attr_name, out_.TextContent(tmp));
      // tmp stays detached and unreachable.
      return;
    }
    if (name == "xsl:copy-of") {
      auto path = CompilePath(sdoc_.GetAttribute(inst, "select"));
      if (!path.ok()) return;
      for (xml::NodeId n : path->SelectNodes(source_, src)) {
        out_.AppendChild(out_parent, out_.ImportSubtree(source_, n));
      }
      return;
    }
    if (name == "xsl:comment") {
      xml::NodeId tmp = out_.CreateElement("netmark:comment-scratch");
      InstantiateChildren(inst, src, tmp);
      out_.AppendChild(out_parent, out_.CreateComment(out_.TextContent(tmp)));
      return;
    }
    Fail(netmark::Status::NotImplemented("unsupported XSLT instruction: " + name));
  }

  void LiteralElement(xml::NodeId inst, xml::NodeId src, xml::NodeId out_parent) {
    xml::NodeId el = out_.CreateElement(sdoc_.name(inst));
    for (const xml::Attribute& a : sdoc_.attributes(inst)) {
      out_.AddAttribute(el, a.name, ExpandAvt(a.value, src));
    }
    out_.AppendChild(out_parent, el);
    InstantiateChildren(inst, src, el);
  }

  // Expands {path} attribute value templates.
  std::string ExpandAvt(std::string_view value, xml::NodeId src) {
    std::string out;
    size_t i = 0;
    while (i < value.size()) {
      if (value[i] == '{') {
        size_t close = value.find('}', i);
        if (close != std::string_view::npos) {
          auto path = CompilePath(value.substr(i + 1, close - i - 1));
          if (path.ok()) out += path->EvaluateString(source_, src);
          i = close + 1;
          continue;
        }
      }
      out += value[i];
      ++i;
    }
    return out;
  }

  // test= expressions: path, path='v', path!='v', not(path).
  bool EvaluateTest(std::string_view expr, xml::NodeId src) {
    std::string_view t = netmark::TrimView(expr);
    if (t.empty()) {
      Fail(netmark::Status::InvalidArgument("empty test expression"));
      return false;
    }
    if (netmark::StartsWith(t, "not(") && t.back() == ')') {
      return !EvaluateTest(t.substr(4, t.size() - 5), src);
    }
    // Find a top-level comparison.
    size_t eq = t.find("!=");
    bool negated = eq != std::string_view::npos;
    if (!negated) eq = t.find('=');
    if (eq != std::string_view::npos) {
      std::string_view lhs = netmark::TrimView(t.substr(0, eq));
      std::string_view rhs = netmark::TrimView(t.substr(eq + (negated ? 2 : 1)));
      if (rhs.size() >= 2 && (rhs.front() == '\'' || rhs.front() == '"') &&
          rhs.back() == rhs.front()) {
        auto path = CompilePath(lhs);
        if (!path.ok()) return false;
        std::string value(rhs.substr(1, rhs.size() - 2));
        // XPath semantics: true if *any* node's string-value compares equal
        // (or, for !=, any compares unequal).
        std::vector<std::string> strings = path->EvaluateStrings(source_, src);
        for (const std::string& s : strings) {
          if (negated ? s != value : s == value) return true;
        }
        return false;
      }
    }
    auto path = CompilePath(t);
    if (!path.ok()) return false;
    return path->EvaluateBool(source_, src);
  }

  // Applies any xsl:sort children of `inst` to a node-set.
  std::vector<xml::NodeId> Sorted(xml::NodeId inst, std::vector<xml::NodeId> nodes) {
    xml::NodeId sort = sdoc_.FirstChildElement(inst, "xsl:sort");
    if (sort == xml::kInvalidNode) return nodes;
    auto path = CompilePath(sdoc_.GetAttribute(sort, "select"));
    if (!path.ok()) return nodes;
    bool descending = sdoc_.GetAttribute(sort, "order") == "descending";
    bool numeric = sdoc_.GetAttribute(sort, "data-type") == "number";
    struct Keyed {
      std::string key;
      double number;
      xml::NodeId node;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(nodes.size());
    for (xml::NodeId n : nodes) {
      Keyed k;
      k.node = n;
      k.key = path->EvaluateString(source_, n);
      k.number = numeric ? netmark::ParseDouble(k.key).ValueOr(0.0) : 0.0;
      keyed.push_back(std::move(k));
    }
    std::stable_sort(keyed.begin(), keyed.end(), [&](const Keyed& a, const Keyed& b) {
      bool less = numeric ? a.number < b.number : a.key < b.key;
      bool greater = numeric ? b.number < a.number : b.key < a.key;
      return descending ? greater : less;
    });
    std::vector<xml::NodeId> out;
    out.reserve(keyed.size());
    for (const Keyed& k : keyed) out.push_back(k.node);
    return out;
  }

  const Stylesheet& sheet_;
  const xml::Document& sdoc_;
  const xml::Document& source_;
  xml::Document out_;
  netmark::Status error_;
};

}  // namespace

netmark::Result<xml::Document> Transform(const Stylesheet& stylesheet,
                                         const xml::Document& source) {
  return Engine(stylesheet, source).Run();
}

netmark::Result<xml::Document> Transform(std::string_view stylesheet_text,
                                         const xml::Document& source) {
  NETMARK_ASSIGN_OR_RETURN(Stylesheet sheet, Stylesheet::Parse(stylesheet_text));
  return Transform(sheet, source);
}

}  // namespace netmark::xslt
