// Plain-text upmark converter: infers sections from heading-looking lines.

#ifndef NETMARK_CONVERT_TEXT_CONVERTER_H_
#define NETMARK_CONVERT_TEXT_CONVERTER_H_

#include "convert/converter.h"

namespace netmark::convert {

/// \brief Converts `.txt` documents using the heading heuristics.
class TextConverter : public Converter {
 public:
  std::string_view format() const override { return "txt"; }
  std::vector<std::string_view> extensions() const override { return {"txt", "text"}; }
  bool Sniff(std::string_view content) const override;
  netmark::Result<xml::Document> Convert(std::string_view content,
                                         const ConvertContext& ctx) const override;
};

}  // namespace netmark::convert

#endif  // NETMARK_CONVERT_TEXT_CONVERTER_H_
