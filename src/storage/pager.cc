#include "storage/pager.h"

#include <cstring>

#include "common/string_util.h"

namespace netmark::storage {

netmark::Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                                    PagerOptions options) {
  netmark::Env* env = options.env != nullptr ? options.env : netmark::Env::Default();
  NETMARK_ASSIGN_OR_RETURN(std::unique_ptr<netmark::File> file,
                           env->OpenFile(path, /*create=*/true));
  NETMARK_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size % kPageSize != 0) {
    return netmark::Status::Corruption(
        netmark::StringPrintf("page file %s has size %llu not a multiple of %zu",
                              path.c_str(), static_cast<unsigned long long>(size),
                              kPageSize));
  }
  auto count = static_cast<PageId>(size / kPageSize);
  return std::unique_ptr<Pager>(
      new Pager(std::move(file), count, options.verify_checksums));
}

Pager::~Pager() { (void)Flush(); }

netmark::Result<PageId> Pager::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  PageId count = page_count_.load(std::memory_order_relaxed);
  if (count == kInvalidPage) {
    return netmark::Status::CapacityExceeded("page file full: " + file_->path());
  }
  PageId id = count;
  auto buf = std::make_unique<uint8_t[]>(kPageSize);
  std::memset(buf.get(), 0, kPageSize);
  Page(buf.get()).Init();
  cache_[id] = std::move(buf);
  dirty_[id] = true;
  dirty_since_mark_.insert(id);
  page_count_.store(count + 1, std::memory_order_release);
  return id;
}

netmark::Result<uint8_t*> Pager::Buffer(PageId id) {
  // The lock covers the cache probe and (on a miss) the read + insert. A
  // miss therefore serializes concurrent readers briefly, but buffers are
  // never evicted so the common case — cache hit — is one map lookup, and
  // the returned pointer stays stable after the lock is released.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(id);
  if (it != cache_.end()) return it->second.get();
  if (quarantined_.count(id) != 0) {
    return netmark::Status::DataLoss(netmark::StringPrintf(
        "page %u of %s is quarantined (bad checksum)", id, file_->path().c_str()));
  }
  PageId count = page_count_.load(std::memory_order_relaxed);
  if (id >= count) {
    return netmark::Status::InvalidArgument(
        netmark::StringPrintf("page %u out of range (%u pages)", id, count));
  }
  auto buf = std::make_unique<uint8_t[]>(kPageSize);
  NETMARK_RETURN_NOT_OK(
      file_->Read(static_cast<uint64_t>(id) * kPageSize, kPageSize, buf.get()));
  pages_read_.fetch_add(1, std::memory_order_relaxed);
  if (verify_checksums_ && !PageVerifyChecksum(buf.get())) {
    quarantined_.insert(id);
    return netmark::Status::DataLoss(netmark::StringPrintf(
        "page %u of %s failed checksum verification", id, file_->path().c_str()));
  }
  uint8_t* raw = buf.get();
  cache_[id] = std::move(buf);
  return raw;
}

netmark::Result<Page> Pager::Fetch(PageId id) {
  NETMARK_ASSIGN_OR_RETURN(uint8_t* buf, Buffer(id));
  return Page(buf);
}

void Pager::MarkDirty(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  dirty_[id] = true;
  dirty_since_mark_.insert(id);
}

std::vector<PageId> Pager::TakeDirtySinceMark() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PageId> out(dirty_since_mark_.begin(), dirty_since_mark_.end());
  dirty_since_mark_.clear();
  return out;
}

netmark::Status Pager::Flush() {
  // Attempt every dirty page even after a failure so one bad write doesn't
  // strand the rest; the failing page stays dirty (it will be retried by the
  // next Flush) and the first error is propagated.
  netmark::Status first_error = netmark::Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, is_dirty] : dirty_) {
    if (!is_dirty) continue;
    auto it = cache_.find(id);
    if (it == cache_.end()) continue;
    PageStampChecksum(it->second.get());
    netmark::Status st = file_->Write(static_cast<uint64_t>(id) * kPageSize,
                                      it->second.get(), kPageSize);
    if (!st.ok()) {
      if (first_error.ok()) {
        first_error = st.WithContext(netmark::StringPrintf("write of page %u", id));
      }
      continue;  // page stays dirty
    }
    is_dirty = false;
    pages_written_.fetch_add(1, std::memory_order_relaxed);
  }
  return first_error;
}

netmark::Status Pager::SyncToDisk() { return file_->Sync(); }

netmark::Result<bool> Pager::VerifyOnDisk(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (quarantined_.count(id) != 0) return true;  // already known bad
  PageId count = page_count_.load(std::memory_order_relaxed);
  if (id >= count) {
    return netmark::Status::InvalidArgument(
        netmark::StringPrintf("page %u out of range (%u pages)", id, count));
  }
  // A dirty page's on-disk copy is legitimately stale; skip it. The lock
  // keeps Flush from racing this check.
  auto dit = dirty_.find(id);
  if (dit != dirty_.end() && dit->second) return true;
  uint8_t buf[kPageSize];
  NETMARK_RETURN_NOT_OK(
      file_->Read(static_cast<uint64_t>(id) * kPageSize, kPageSize, buf));
  if (!PageVerifyChecksum(buf)) {
    if (cache_.count(id) != 0) {
      // The cached copy is authoritative and intact; the disk copy rotted
      // underneath it. Re-dirty the page so the next flush heals the disk
      // instead of quarantining data we still hold.
      dirty_[id] = true;
      dirty_since_mark_.insert(id);
      return false;
    }
    quarantined_.insert(id);
    return false;
  }
  return true;
}

bool Pager::IsQuarantined(PageId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_.count(id) != 0;
}

std::vector<PageId> Pager::QuarantinedPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<PageId>(quarantined_.begin(), quarantined_.end());
}

uint64_t Pager::quarantined_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_.size();
}

}  // namespace netmark::storage
