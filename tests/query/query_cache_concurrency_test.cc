// The cached read path under concurrency (the TSan matrix runs this suite):
// one shared executor + result/plan caches, reader threads hammering a
// repetitive query mix while a writer commits new documents — every commit
// must be visible to the very next query (epoch keying means no stale hits),
// and the cache counters must stay coherent.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "query/executor.h"
#include "query/plan.h"
#include "query/result_cache.h"
#include "xml/parser.h"

namespace netmark::query {
namespace {

class QueryCacheConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = netmark::TempDir::Make("query_cache_conc");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<netmark::TempDir>(std::move(*dir));
    auto store = xmlstore::XmlStore::Open(dir_->str());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    executor_ = std::make_unique<QueryExecutor>(store_.get());
    executor_->set_result_cache(&cache_);
    executor_->set_plan_cache(&plans_);
    Insert("seed.xml",
           "<doc><h1>Budget</h1><p>baseline engine costs</p>"
           "<h1>Overview</h1><p>steady state corpus</p></doc>");
  }

  void Insert(const std::string& name, const std::string& markup) {
    auto doc = xml::ParseXml(markup);
    ASSERT_TRUE(doc.ok());
    xmlstore::DocumentInfo info;
    info.file_name = name;
    ASSERT_TRUE(store_->InsertDocument(*doc, info).ok());
  }

  std::unique_ptr<netmark::TempDir> dir_;
  std::unique_ptr<xmlstore::XmlStore> store_;
  QueryResultCache cache_;
  QueryPlanCache plans_;
  std::unique_ptr<QueryExecutor> executor_;
};

TEST_F(QueryCacheConcurrencyTest, ConcurrentReadersShareCachesSafely) {
  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      const char* mix[] = {"context=Budget", "context=Overview",
                           "context=Budget&content=engine"};
      for (int i = 0; i < kQueriesPerReader; ++i) {
        auto q = ParseXdbQuery(mix[(r + i) % 3]);
        if (!q.ok()) { ++failures; continue; }
        auto hits = executor_->Execute(*q);
        if (!hits.ok()) ++failures;
      }
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  QueryResultCache::Snapshot snap = cache_.snapshot();
  // Steady epoch + 3 distinct queries: all but the first executions hit.
  EXPECT_EQ(snap.hits + snap.misses,
            static_cast<uint64_t>(kReaders * kQueriesPerReader));
  EXPECT_GT(snap.hits, snap.misses);
}

TEST_F(QueryCacheConcurrencyTest, CommitsAreNeverServedStale) {
  constexpr int kDocs = 30;
  std::atomic<bool> done{false};
  std::atomic<int> reader_failures{0};

  // Background readers keep the repetitive mix hot (forcing the cache to
  // straddle every epoch bump) while the main thread ingests and checks.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      const char* mix[] = {"context=Budget", "context=Budget&content=engine",
                           "content=corpus"};
      int i = 0;
      while (!done.load(std::memory_order_relaxed)) {
        auto q = ParseXdbQuery(mix[i++ % 3]);
        if (!q.ok() || !executor_->Execute(*q).ok()) ++reader_failures;
      }
    });
  }

  for (int d = 0; d < kDocs; ++d) {
    std::string term = "uniqterm" + std::to_string(d);
    Insert("doc" + std::to_string(d) + ".xml",
           "<doc><h1>Budget</h1><p>" + term + " expansion</p></doc>");
    // The insert committed, so the epoch advanced: the next query MUST see
    // the new document even though "context=Budget" answers were cached a
    // moment ago at the old epoch.
    auto q = ParseXdbQuery("context=Budget&content=" + term);
    ASSERT_TRUE(q.ok());
    auto hits = executor_->Execute(*q);
    ASSERT_TRUE(hits.ok()) << hits.status().ToString();
    ASSERT_EQ(hits->size(), 1u) << "post-commit query missed doc " << d;
    // The repetitive query also reflects the commit immediately.
    auto budget = ParseXdbQuery("context=Budget");
    ASSERT_TRUE(budget.ok());
    auto budget_hits = executor_->Execute(*budget);
    ASSERT_TRUE(budget_hits.ok());
    EXPECT_EQ(budget_hits->size(), static_cast<size_t>(d) + 2u);
  }

  done.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(reader_failures.load(), 0);
}

TEST_F(QueryCacheConcurrencyTest, ConcurrentConfigureIsSafe) {
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      auto q = ParseXdbQuery("context=Budget");
      if (q.ok()) (void)executor_->Execute(*q);
    }
  });
  for (int i = 0; i < 50; ++i) {
    ResultCacheOptions options;
    options.enabled = (i % 2 == 0);
    options.max_entries = 16;
    cache_.Configure(options);
  }
  done.store(true);
  reader.join();
}

}  // namespace
}  // namespace netmark::query
