// Exponential backoff with jitter for retrying transient failures.
//
// The schedule is deterministic given an Rng seed, so retry-heavy chaos
// tests reproduce exactly: delay(attempt) = min(max_ms, initial_ms *
// multiplier^attempt), of which a `jitter` fraction is re-randomized
// uniformly. Jitter de-synchronizes retry storms across sources without
// sacrificing reproducibility.

#ifndef NETMARK_COMMON_BACKOFF_H_
#define NETMARK_COMMON_BACKOFF_H_

#include <cstdint>

#include "common/rng.h"

namespace netmark {

/// Parameters of an exponential backoff schedule.
struct BackoffPolicy {
  int64_t initial_ms = 50;   ///< delay before the first retry
  double multiplier = 2.0;   ///< growth factor per further retry
  int64_t max_ms = 2000;     ///< cap on any single delay
  double jitter = 0.5;       ///< fraction of the delay that is randomized

  static BackoffPolicy None() { return {0, 1.0, 0, 0.0}; }
};

/// \brief Delay in milliseconds before retry number `attempt` (0-based).
///
/// With jitter j, the result lies in [base*(1-j), base*(1-j) + base*j] where
/// base is the capped exponential term; j = 0 gives the exact schedule.
inline int64_t BackoffDelayMs(const BackoffPolicy& policy, int attempt, Rng* rng) {
  if (policy.initial_ms <= 0) return 0;
  double base = static_cast<double>(policy.initial_ms);
  for (int i = 0; i < attempt; ++i) {
    base *= policy.multiplier;
    if (base >= static_cast<double>(policy.max_ms)) break;
  }
  if (base > static_cast<double>(policy.max_ms)) {
    base = static_cast<double>(policy.max_ms);
  }
  double fixed = base * (1.0 - policy.jitter);
  double random = rng != nullptr && policy.jitter > 0.0
                      ? rng->UniformDouble() * base * policy.jitter
                      : 0.0;
  int64_t delay = static_cast<int64_t>(fixed + random);
  return delay < 0 ? 0 : delay;
}

}  // namespace netmark

#endif  // NETMARK_COMMON_BACKOFF_H_
