// Round-trip edge cases for the NODEDATA attribute blob codec
// ("k=v&k2=v2", URL-escaped): the separators themselves, empty values,
// unicode, and corrupt blobs.

#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xmlstore/xml_store.h"

namespace netmark::xmlstore {
namespace {

std::vector<xml::Attribute> Attrs(
    std::initializer_list<std::pair<std::string, std::string>> pairs) {
  std::vector<xml::Attribute> out;
  for (const auto& [name, value] : pairs) {
    out.push_back(xml::Attribute{name, value});
  }
  return out;
}

void ExpectRoundTrip(const std::vector<xml::Attribute>& attrs) {
  std::string blob = EncodeAttributes(attrs);
  auto decoded = DecodeAttributes(blob);
  ASSERT_TRUE(decoded.ok()) << "blob: " << blob;
  ASSERT_EQ(decoded->size(), attrs.size()) << "blob: " << blob;
  for (size_t i = 0; i < attrs.size(); ++i) {
    EXPECT_EQ((*decoded)[i].name, attrs[i].name) << "blob: " << blob;
    EXPECT_EQ((*decoded)[i].value, attrs[i].value) << "blob: " << blob;
  }
}

TEST(AttributeBlobTest, EmptyListYieldsEmptyBlob) {
  EXPECT_EQ(EncodeAttributes({}), "");
  auto decoded = DecodeAttributes("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(AttributeBlobTest, EmptyValues) {
  ExpectRoundTrip(Attrs({{"checked", ""}, {"id", "x"}, {"alt", ""}}));
}

TEST(AttributeBlobTest, SeparatorCharactersInValues) {
  ExpectRoundTrip(Attrs({{"href", "http://x/?a=1&b=2"},
                         {"query", "k=v&k2=v2"},
                         {"pct", "100%&rising"}}));
}

TEST(AttributeBlobTest, SeparatorCharactersInKeys) {
  ExpectRoundTrip(Attrs({{"a&b", "1"}, {"c=d", "2"}, {"e%f", "3"}, {"g h", "4"}}));
}

TEST(AttributeBlobTest, PercentEscapesSurviveDoubleMeaning) {
  // Values that *look* like escapes must not be decoded twice.
  ExpectRoundTrip(Attrs({{"v", "%20"}, {"w", "%%"}, {"x", "a%2Bb"}}));
}

TEST(AttributeBlobTest, UnicodeKeysAndValues) {
  ExpectRoundTrip(Attrs({{"título", "naïve café ☕"},
                         {"日本語", "名前"},
                         {"emoji", "🚀 liftoff"}}));
}

TEST(AttributeBlobTest, NewlinesTabsAndQuotes) {
  ExpectRoundTrip(Attrs({{"text", "line1\nline2\tend"}, {"q", "she said \"hi\""}}));
}

TEST(AttributeBlobTest, RepeatedNamesPreserveOrder) {
  ExpectRoundTrip(Attrs({{"class", "a"}, {"class", "b"}, {"class", "c"}}));
}

TEST(AttributeBlobTest, CorruptBlobWithoutEqualsRejected) {
  EXPECT_FALSE(DecodeAttributes("justakey").ok());
  EXPECT_FALSE(DecodeAttributes("a=1&nokey").ok());
}

}  // namespace
}  // namespace netmark::xmlstore
