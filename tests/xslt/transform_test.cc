#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xslt/stylesheet.h"

namespace netmark::xslt {
namespace {

std::string ApplySheet(const char* sheet, const char* source) {
  auto doc = xml::ParseXml(source);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  auto out = Transform(sheet, *doc);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (!out.ok()) return "";
  return xml::Serialize(*out);
}

TEST(TransformTest, BuiltInRulesCopyTextThroughElements) {
  EXPECT_EQ(ApplySheet("<xsl:stylesheet></xsl:stylesheet>", "<a><b>hi</b> there</a>"),
            "hi there");
}

TEST(TransformTest, RootTemplateAndValueOf) {
  const char* sheet =
      "<xsl:stylesheet>"
      "<xsl:template match=\"/\">"
      "<out><xsl:value-of select=\"doc/title\"/></out>"
      "</xsl:template>"
      "</xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet, "<doc><title>T</title><body>B</body></doc>"),
            "<out>T</out>");
}

TEST(TransformTest, ApplyTemplatesWithMatchRules) {
  const char* sheet =
      "<xsl:stylesheet>"
      "<xsl:template match=\"/\"><report><xsl:apply-templates/></report>"
      "</xsl:template>"
      "<xsl:template match=\"section\">"
      "<sec name=\"{title}\"><xsl:apply-templates select=\"body\"/></sec>"
      "</xsl:template>"
      "<xsl:template match=\"title\"/>"
      "</xsl:stylesheet>";
  std::string out = ApplySheet(sheet,
                        "<doc>"
                        "<section><title>One</title><body>first</body></section>"
                        "<section><title>Two</title><body>second</body></section>"
                        "</doc>");
  EXPECT_EQ(out,
            "<report><sec name=\"One\">first</sec>"
            "<sec name=\"Two\">second</sec></report>");
}

TEST(TransformTest, SpecificTemplateBeatsWildcard) {
  const char* sheet =
      "<xsl:stylesheet>"
      "<xsl:template match=\"*\"><any/></xsl:template>"
      "<xsl:template match=\"b\"><bee/></xsl:template>"
      "</xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet, "<a/>"), "<any/>");
  EXPECT_EQ(ApplySheet(sheet, "<b/>"), "<bee/>");
}

TEST(TransformTest, ParentQualifiedPatternWins) {
  const char* sheet =
      "<xsl:stylesheet>"
      "<xsl:template match=\"title\"><t/></xsl:template>"
      "<xsl:template match=\"book/title\"><bt/></xsl:template>"
      "</xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet, "<book><title>x</title></book>"), "<bt/>");
  EXPECT_EQ(ApplySheet(sheet, "<film><title>x</title></film>"), "<t/>");
}

TEST(TransformTest, ForEachIteratesInOrder) {
  const char* sheet =
      "<xsl:stylesheet>"
      "<xsl:template match=\"/\">"
      "<ul><xsl:for-each select=\"list/item\">"
      "<li><xsl:value-of select=\".\"/></li>"
      "</xsl:for-each></ul>"
      "</xsl:template>"
      "</xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet, "<list><item>a</item><item>b</item><item>c</item></list>"),
            "<ul><li>a</li><li>b</li><li>c</li></ul>");
}

TEST(TransformTest, SortAscendingDescendingNumeric) {
  const char* source =
      "<list><e k=\"banana\" n=\"10\"/><e k=\"apple\" n=\"2\"/>"
      "<e k=\"cherry\" n=\"1\"/></list>";
  const char* text_sort =
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<xsl:for-each select=\"list/e\"><xsl:sort select=\"@k\"/>"
      "<v><xsl:value-of select=\"@k\"/></v></xsl:for-each>"
      "</xsl:template></xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(text_sort, source), "<v>apple</v><v>banana</v><v>cherry</v>");
  const char* num_desc =
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<xsl:for-each select=\"list/e\">"
      "<xsl:sort select=\"@n\" data-type=\"number\" order=\"descending\"/>"
      "<v><xsl:value-of select=\"@n\"/></v></xsl:for-each>"
      "</xsl:template></xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(num_desc, source), "<v>10</v><v>2</v><v>1</v>");
  // Text sort of the numbers would give 1,10,2 — verify numeric differs.
  const char* num_asc =
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<xsl:for-each select=\"list/e\"><xsl:sort select=\"@n\"/>"
      "<v><xsl:value-of select=\"@n\"/></v></xsl:for-each>"
      "</xsl:template></xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(num_asc, source), "<v>1</v><v>10</v><v>2</v>");
}

TEST(TransformTest, IfAndChoose) {
  const char* sheet =
      "<xsl:stylesheet>"
      "<xsl:template match=\"item\">"
      "<xsl:if test=\"@keep='yes'\"><kept><xsl:value-of select=\".\"/></kept>"
      "</xsl:if>"
      "<xsl:choose>"
      "<xsl:when test=\"@kind='a'\"><a/></xsl:when>"
      "<xsl:when test=\"@kind='b'\"><b/></xsl:when>"
      "<xsl:otherwise><other/></xsl:otherwise>"
      "</xsl:choose>"
      "</xsl:template>"
      "</xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet, "<item keep=\"yes\" kind=\"a\">x</item>"),
            "<kept>x</kept><a/>");
  EXPECT_EQ(ApplySheet(sheet, "<item kind=\"b\">x</item>"), "<b/>");
  EXPECT_EQ(ApplySheet(sheet, "<item kind=\"z\">x</item>"), "<other/>");
}

TEST(TransformTest, TestExpressions) {
  const char* sheet =
      "<xsl:stylesheet>"
      "<xsl:template match=\"r\">"
      "<xsl:if test=\"child\"><has-child/></xsl:if>"
      "<xsl:if test=\"not(child)\"><no-child/></xsl:if>"
      "<xsl:if test=\"name!='x'\"><name-not-x/></xsl:if>"
      "</xsl:template>"
      "</xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet, "<r><child/><name>y</name></r>"),
            "<has-child/><name-not-x/>");
  EXPECT_EQ(ApplySheet(sheet, "<r><name>x</name></r>"), "<no-child/>");
}

TEST(TransformTest, ElementAttributeTextCopyOf) {
  const char* sheet =
      "<xsl:stylesheet>"
      "<xsl:template match=\"/\">"
      "<xsl:element name=\"dyn-{root/@kind}\">"
      "<xsl:attribute name=\"computed\"><xsl:value-of select=\"root/v\"/>"
      "</xsl:attribute>"
      "<xsl:text>literal </xsl:text>"
      "<xsl:copy-of select=\"root/deep\"/>"
      "</xsl:element>"
      "</xsl:template>"
      "</xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet, "<root kind=\"r\"><v>42</v><deep><x a=\"1\">t</x></deep></root>"),
            "<dyn-r computed=\"42\">literal <deep><x a=\"1\">t</x></deep></dyn-r>");
}

TEST(TransformTest, XslTextPreservesWhitespace) {
  const char* sheet =
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<o><xsl:value-of select=\"a/x\"/><xsl:text> </xsl:text>"
      "<xsl:value-of select=\"a/y\"/></o>"
      "</xsl:template></xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet, "<a><x>1</x><y>2</y></a>"), "<o>1 2</o>");
}

TEST(TransformTest, TemplateMatchingTextNodes) {
  const char* sheet =
      "<xsl:stylesheet>"
      "<xsl:template match=\"text()\"><t/></xsl:template>"
      "</xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet, "<a>one<b>two</b></a>"), "<t/><t/>");
}

TEST(TransformTest, ErrorsPropagate) {
  auto doc = xml::ParseXml("<a/>");
  ASSERT_TRUE(doc.ok());
  // Not a stylesheet.
  EXPECT_FALSE(Transform("<not-a-sheet/>", *doc).ok());
  // Template without match.
  EXPECT_FALSE(
      Transform("<xsl:stylesheet><xsl:template/></xsl:stylesheet>", *doc).ok());
  // Unknown instruction.
  auto bad = Transform(
      "<xsl:stylesheet><xsl:template match=\"/\"><xsl:unknown/></xsl:template>"
      "</xsl:stylesheet>",
      *doc);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotImplemented());
  // Bad XPath inside value-of.
  EXPECT_FALSE(Transform(
                   "<xsl:stylesheet><xsl:template match=\"/\">"
                   "<xsl:value-of select=\"a[\"/></xsl:template></xsl:stylesheet>",
                   *doc)
                   .ok());
}

TEST(TransformTest, PaperStyleResultComposition) {
  // The Fig-7 flow: a <results> document rendered into a new integrated
  // report document.
  const char* sheet =
      "<xsl:stylesheet>"
      "<xsl:template match=\"/\">"
      "<integrated-report title=\"Budget sections\">"
      "<xsl:for-each select=\"results/result\">"
      "<xsl:sort select=\"@doc\"/>"
      "<entry from=\"{@doc}\">"
      "<heading><xsl:value-of select=\"context\"/></heading>"
      "<body><xsl:value-of select=\"content\"/></body>"
      "</entry>"
      "</xsl:for-each>"
      "</integrated-report>"
      "</xsl:template>"
      "</xsl:stylesheet>";
  const char* results =
      "<results query=\"context=Budget\" count=\"2\">"
      "<result doc=\"b.xml\" docid=\"2\"><context>Budget</context>"
      "<content>two hundred</content></result>"
      "<result doc=\"a.xml\" docid=\"1\"><context>Budget</context>"
      "<content>one hundred</content></result>"
      "</results>";
  EXPECT_EQ(ApplySheet(sheet, results),
            "<integrated-report title=\"Budget sections\">"
            "<entry from=\"a.xml\"><heading>Budget</heading>"
            "<body>one hundred</body></entry>"
            "<entry from=\"b.xml\"><heading>Budget</heading>"
            "<body>two hundred</body></entry>"
            "</integrated-report>");
}

}  // namespace
}  // namespace netmark::xslt
