#!/usr/bin/env bash
# Disk-fault torture harness: runs the ingestion pipeline against a storage
# Env that injects seeded disk faults (EIO, ENOSPC, failed fsync, torn page
# writes) and then corrupts pages at rest, verifying after every phase that
#   - no acknowledged document is ever lost or silently altered,
#   - a failed WAL fsync is never followed by an ack (fail-stop: the store
#     latches read-only degraded mode, torture-ingest exits 3),
#   - at-rest corruption is *detected* (checksum quarantine via scrub or
#     open-time verification), never served as a truncated document.
#
# usage: disk_torture.sh NETMARK_BIN SEED [DOCS]
#
# The fault schedule is a pure function of SEED, so a failing seed replays
# exactly in CI and locally (same contract as crash_torture.sh).
set -u

BIN=${1:?usage: disk_torture.sh NETMARK_BIN SEED [DOCS]}
SEED=${2:?usage: disk_torture.sh NETMARK_BIN SEED [DOCS]}
DOCS=${3:-24}

WORK=$(mktemp -d "${TMPDIR:-/tmp}/netmark_disk.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# Deterministic PRNG (LCG), identical to crash_torture.sh.
STATE=$((SEED + 0x9E3779B9))
rand() { # rand N -> [0, N)
  STATE=$(( (STATE * 6364136223846793005 + 1442695040888963407) & 0x7FFFFFFFFFFFFFFF ))
  echo $(( (STATE >> 17) % $1 ))
}

fail() {
  echo "disk_torture: $1 (seed $SEED)" >&2
  exit 1
}

ingest() { # ingest DATA DROP -> torture-ingest exit code
  "$BIN" torture-ingest --data "$1" --drop "$2" \
    --fsync commit --checkpoint-bytes "${3:-65536}"
}

# --- Phase A: sticky write-path fault must fail-stop, never lose an ack. ---
# After the Nth matching op every write (or every fsync) fails; the store
# must latch degraded mode and refuse further mutations. Exit 0 means the
# corpus drained before the fault fired (large nth) — equally fine.
KINDS=(write_eio write_enospc fsync_fail)
kind=${KINDS[$(rand 3)]}
if [ "$kind" = fsync_fail ]; then nth=$(( $(rand 6) + 1 )); else nth=$(( $(rand 70) + 10 )); fi
echo "--- phase A: NETMARK_DISK_FAULT=${kind}:${nth}"
"$BIN" torture-gen --drop "$WORK/a_drop" --count "$DOCS" --seed "$SEED" >/dev/null || exit 1
NETMARK_DISK_FAULT="${kind}:${nth}" ingest "$WORK/a_data" "$WORK/a_drop"
rc=$?
case "$rc" in
  0|3) ;;          # drained clean, or fail-stopped into degraded mode
  1) ;;            # fault fired inside the very first Open; nothing acked yet
  *) fail "phase A: unexpected torture-ingest exit $rc (${kind}:${nth})" ;;
esac
if [ "$rc" -ne 1 ]; then
  # Acked set at fail-stop time must already be intact and readable.
  "$BIN" torture-verify --data "$WORK/a_data" --drop "$WORK/a_drop" >/dev/null \
    || fail "phase A: VERIFY FAILED after ${kind}:${nth} (rc $rc)"
fi
# The fault is gone (fresh process, no NETMARK_DISK_FAULT): deferred files
# must drain and everything must verify.
ingest "$WORK/a_data" "$WORK/a_drop" >/dev/null \
  || fail "phase A: clean drain failed after ${kind}:${nth}"
"$BIN" torture-verify --data "$WORK/a_data" --drop "$WORK/a_drop" \
  || fail "phase A: FINAL VERIFY FAILED after ${kind}:${nth}"

# --- Phase B: torn page write (garbled first half synced to disk, then ---
# SIGKILL-equivalent _exit). Recovery must repair or discard the torn page
# from the WAL; no acked document may be affected.
nth=$(( $(rand 60) + 10 ))
echo "--- phase B: NETMARK_DISK_FAULT=write_torn:${nth}"
"$BIN" torture-gen --drop "$WORK/b_drop" --count "$DOCS" --seed "$((SEED + 1))" >/dev/null || exit 1
NETMARK_DISK_FAULT="write_torn:${nth}" ingest "$WORK/b_data" "$WORK/b_drop" 2>/dev/null
rc=$?
case "$rc" in
  0|41) ;;         # 41 = the injector's post-tear exit code
  *) fail "phase B: unexpected torture-ingest exit $rc (write_torn:${nth})" ;;
esac
"$BIN" torture-verify --data "$WORK/b_data" --drop "$WORK/b_drop" >/dev/null \
  || fail "phase B: VERIFY FAILED after write_torn:${nth}"
ingest "$WORK/b_data" "$WORK/b_drop" >/dev/null \
  || fail "phase B: clean drain failed after write_torn:${nth}"
"$BIN" torture-verify --data "$WORK/b_data" --drop "$WORK/b_drop" \
  || fail "phase B: FINAL VERIFY FAILED after write_torn:${nth}"

# --- Phase C: at-rest bit rot. Flip one byte of a committed heap page; ---
# the checksum must catch it (scrub errors or open-time quarantine), the
# affected documents must fail loudly as quarantined, and every other acked
# document must still verify byte-identical. checkpoint-bytes 1 forces a
# checkpoint+truncate on every commit so the WAL cannot mask the flip by
# replaying a clean page image over it.
offset=$(( 64 + $(rand 4000) ))
echo "--- phase C: corrupt XML.heap page 0 offset ${offset}"
"$BIN" torture-gen --drop "$WORK/c_drop" --count "$DOCS" --seed "$((SEED + 2))" >/dev/null || exit 1
ingest "$WORK/c_data" "$WORK/c_drop" 1 >/dev/null \
  || fail "phase C: clean ingest failed"
"$BIN" torture-verify --data "$WORK/c_data" --drop "$WORK/c_drop" >/dev/null \
  || fail "phase C: pre-corruption verify failed"
"$BIN" corrupt --data "$WORK/c_data" --table XML --page 0 --offset "$offset" >/dev/null \
  || fail "phase C: corrupt command failed"
scrub_out=$("$BIN" scrub --data "$WORK/c_data") || fail "phase C: scrub failed"
echo "$scrub_out"
errors=$(echo "$scrub_out" | sed -n 's/.*"errors_found":\([0-9]*\).*/\1/p')
qpages=$(echo "$scrub_out" | sed -n 's/.*"quarantined_pages":\([0-9]*\).*/\1/p')
if [ "$(( ${errors:-0} + ${qpages:-0} ))" -lt 1 ]; then
  fail "phase C: corruption NOT DETECTED (errors_found=$errors quarantined_pages=$qpages)"
fi
# Detected loss is tolerated (reported as quarantined); silent mismatches
# remain fatal inside torture-verify regardless of the flag.
"$BIN" torture-verify --data "$WORK/c_data" --drop "$WORK/c_drop" --allow-quarantine 1 \
  || fail "phase C: VERIFY FAILED after corruption"

echo "disk_torture: seed $SEED passed"
