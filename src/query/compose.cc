#include "query/compose.h"

#include "xml/parser.h"
#include "xmlstore/context_walk.h"

namespace netmark::query {

netmark::Result<xml::Document> ComposeResults(const xmlstore::XmlStore& store,
                                              const XdbQuery& query,
                                              const std::vector<QueryHit>& hits,
                                              const ComposeOptions& options) {
  xml::Document out;
  xml::NodeId results = out.CreateElement("results");
  out.AddAttribute(results, "query", query.ToQueryString());
  out.AppendChild(out.root(), results);

  size_t emitted = 0;
  size_t quarantined = 0;
  for (const QueryHit& hit : hits) {
    // Read the section body BEFORE emitting the <result> element: a hit
    // whose section touches a quarantined (checksum-failed) page is dropped
    // whole — never a silently truncated section — and the result set is
    // marked partial below.
    std::vector<xml::Document> fragments;
    if (hit.context.valid() && options.include_markup) {
      bool data_loss = false;
      auto body = xmlstore::SectionContent(store, hit.context);
      if (!body.ok()) {
        if (!body.status().IsDataLoss()) return body.status();
        data_loss = true;
      } else {
        for (storage::RowId node : *body) {
          auto fragment = store.ReconstructSubtree(node);
          if (!fragment.ok()) {
            if (!fragment.status().IsDataLoss()) return fragment.status();
            data_loss = true;
            break;
          }
          fragments.push_back(std::move(*fragment));
        }
      }
      if (data_loss) {
        ++quarantined;
        store.NoteQuarantinedDoc(hit.doc_id);
        continue;
      }
    }

    xml::NodeId result = out.CreateElement("result");
    out.AddAttribute(result, "doc", hit.file_name);
    out.AddAttribute(result, "docid", std::to_string(hit.doc_id));
    out.AppendChild(results, result);
    ++emitted;

    if (!hit.context.valid()) {
      if (!hit.markup.empty()) {
        // XPath hit: embed the selected fragment.
        xml::NodeId content = out.CreateElement("content");
        out.AppendChild(result, content);
        auto fragment = xml::ParseXml(hit.markup);
        if (fragment.ok()) {
          for (xml::NodeId c = fragment->first_child(fragment->root());
               c != xml::kInvalidNode; c = fragment->next_sibling(c)) {
            out.AppendChild(content, out.ImportSubtree(*fragment, c));
          }
        } else {
          out.AppendChild(content, out.CreateText(hit.text));
        }
      }
      // Document-level hit (content-only query): a reference plus its
      // snippet (section heading + matched text slice) when available.
      if (!hit.heading.empty() || !hit.text.empty()) {
        xml::NodeId snippet = out.CreateElement("snippet");
        if (!hit.heading.empty()) out.AddAttribute(snippet, "section", hit.heading);
        if (!hit.text.empty()) {
          out.AppendChild(snippet, out.CreateText(hit.text));
        }
        out.AppendChild(result, snippet);
      }
      continue;
    }
    xml::NodeId context = out.CreateElement("context");
    out.AppendChild(context, out.CreateText(hit.heading));
    out.AppendChild(result, context);

    xml::NodeId content = out.CreateElement("content");
    out.AppendChild(result, content);
    if (options.include_markup) {
      for (const xml::Document& fragment : fragments) {
        for (xml::NodeId child = fragment.first_child(fragment.root());
             child != xml::kInvalidNode; child = fragment.next_sibling(child)) {
          out.AppendChild(content, out.ImportSubtree(fragment, child));
        }
      }
    } else {
      out.AppendChild(content, out.CreateText(hit.text));
    }
  }
  out.AddAttribute(results, "count", std::to_string(emitted));
  if (quarantined > 0) {
    // Same contract as federated partial results: the caller always learns
    // what it did NOT get (here: sections lost to disk corruption).
    out.AddAttribute(results, "complete", "false");
    out.AddAttribute(results, "quarantined", std::to_string(quarantined));
  }
  return out;
}

}  // namespace netmark::query
