// The NETMARK HTTP service: XDB queries, WebDAV-lite document authoring, and
// XSLT result composition behind "simple HTTP requests" (paper §2.1.2-2.1.3).
//
// Routes:
//   GET      /xdb?Context=..&Content=..[&xslt=name][&databank=name][&limit=n]
//                                       [&trace=1]  append the span tree
//   PUT      /docs/<file-name>          ingest a document (any format)
//   GET      /docs/<doc-id>             reconstructed document XML
//   DELETE   /docs/<doc-id>
//   GET      /docs                      document listing (XML)
//   PROPFIND /docs                      WebDAV-style multistatus listing
//   GET      /status                    store statistics
//   GET      /metrics                   Prometheus text exposition
//   GET      /healthz                   JSON health (store/daemon/breakers)
//   GET      /traces                    retained-trace listing (JSON)
//   GET      /traces?id=<trace-id>      one span tree (JSON; &format=xml for
//                                       the <trace> block the CLI renders)
//
// Observability (docs/observability.md): every request bumps
// netmark_http_requests_total{route=} and observes
// netmark_http_request_micros; /xdb additionally observes
// netmark_query_latency_micros and — when the request exceeds the slow-query
// threshold — emits one structured slow_query log line with per-span
// timings. Distributed tracing: every /xdb request rolls the TraceStore's
// head sampler, adopts an inbound W3C `traceparent` id (returning its span
// subtree in the response's <trace> block for cross-hop stitching), and
// echoes the trace id in an X-Netmark-Trace-Id response header.

#ifndef NETMARK_SERVER_NETMARK_SERVICE_H_
#define NETMARK_SERVER_NETMARK_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "convert/registry.h"
#include "federation/router.h"
#include "observability/metrics.h"
#include "observability/slow_log.h"
#include "observability/trace.h"
#include "observability/trace_store.h"
#include "query/compose.h"
#include "query/executor.h"
#include "query/plan.h"
#include "query/result_cache.h"
#include "server/http_message.h"
#include "xmlstore/xml_store.h"
#include "xslt/stylesheet.h"

namespace netmark::server {

class IngestionDaemon;

/// \brief Request router for one NETMARK instance.
class NetmarkService {
 public:
  explicit NetmarkService(xmlstore::XmlStore* store);

  /// Optional: enable `databank=` fan-out queries.
  void set_router(federation::Router* router) { router_ = router; }
  /// Optional: report the ingestion daemon's state on /healthz.
  void set_daemon(IngestionDaemon* daemon) { daemon_ = daemon; }

  /// Re-homes the service's metrics (request counters, latency histograms)
  /// onto `registry` — which is then also what GET /metrics renders. Must be
  /// called before traffic. Also instruments the local query executor.
  void BindMetrics(observability::MetricsRegistry* registry);
  observability::MetricsRegistry* metrics() const { return metrics_; }

  /// Configures the slow-query threshold (ms; 0 disables). The
  /// NETMARK_SLOW_QUERY_MS env var always wins over this value.
  void set_slow_query_ms(int64_t ms) {
    slow_query_ms_ = observability::ResolveSlowQueryThresholdMs(ms);
  }
  int64_t slow_query_ms() const { return slow_query_ms_; }

  /// Registers a stylesheet for `xslt=` result composition.
  netmark::Status RegisterStylesheet(const std::string& name,
                                     std::string_view stylesheet_text);

  /// The service-owned read-path caches (docs/query_cache.md). The facade
  /// shares these with its ad-hoc executors and the self-registered
  /// federation source; /healthz reports their state. The result cache is
  /// bound to this service's store — never share it with another store.
  query::QueryResultCache* result_cache() { return &result_cache_; }
  query::QueryPlanCache* plan_cache() { return &plan_cache_; }

  /// Applies the `[query]` INI knobs (cache_entries / cache_bytes /
  /// cache_enabled). Clears both caches; call before traffic.
  void ConfigureQueryCache(const query::ResultCacheOptions& results,
                           const query::QueryPlanCache::Options& plans) {
    result_cache_.Configure(results);
    plan_cache_.Configure(plans);
  }

  /// Applies the `[observability]` INI knobs (trace_sample_rate,
  /// trace_store_capacity, trace_slow_keep_ms). Call before traffic.
  void ConfigureTracing(const observability::TraceStoreOptions& options) {
    trace_store_.Configure(options);
  }

  /// The retained-trace ring backing GET /traces; the facade shares it with
  /// the ingestion daemon so sampled sweep traces land there too.
  observability::TraceStore* trace_store() { return &trace_store_; }

  /// Dispatches one request. Thread-safe for concurrent requests (the
  /// worker-pool server calls it from many threads): store reads run under
  /// an XmlStore::ReadSnapshot, so every response reflects one committed
  /// state even with ingestion or checkpointing in flight. Configuration
  /// (set_router, RegisterStylesheet, BindMetrics, ...) must still finish
  /// before traffic starts.
  HttpResponse Handle(const HttpRequest& request);

  xmlstore::XmlStore* store() { return store_; }

 private:
  HttpResponse Dispatch(const HttpRequest& request);
  HttpResponse HandleXdb(const HttpRequest& request);
  HttpResponse HandlePutDocument(const HttpRequest& request,
                                 const std::string& file_name);
  HttpResponse HandleGetDocument(int64_t doc_id);
  HttpResponse HandleDeleteDocument(int64_t doc_id);
  HttpResponse HandleListDocuments(bool webdav);
  HttpResponse HandleStatus();
  HttpResponse HandleMetrics();
  HttpResponse HandleHealthz();
  HttpResponse HandleTraces(const HttpRequest& request);

  /// Applies the named stylesheet (if any) and serializes.
  netmark::Result<std::string> RenderResults(const xml::Document& results,
                                             const std::string& xslt_name);

  /// (Re-)resolves metric handles against metrics_.
  void BindHandles();
  /// The pre-registered request counter for `path` ("other" if unknown).
  observability::Counter* RouteCounter(const std::string& path) const;

  xmlstore::XmlStore* store_;
  /// Declared before executor_ (which holds raw pointers into both).
  query::QueryResultCache result_cache_;
  query::QueryPlanCache plan_cache_;
  query::QueryExecutor executor_;
  convert::ConverterRegistry converters_;
  federation::Router* router_ = nullptr;
  IngestionDaemon* daemon_ = nullptr;
  std::map<std::string, xslt::Stylesheet> stylesheets_;
  observability::TraceStore trace_store_;

  /// Private fallback registry (BindMetrics re-homes onto the facade's).
  std::unique_ptr<observability::MetricsRegistry> owned_metrics_;
  observability::MetricsRegistry* metrics_ = nullptr;
  observability::Histogram* request_micros_ = nullptr;
  observability::Histogram* query_latency_micros_ = nullptr;
  /// Pre-registered per-route request counters (read-only after bind).
  std::map<std::string, observability::Counter*> route_counters_;
  int64_t slow_query_ms_ = 0;
};

/// \brief Builds a `<results>` document from a federated query (mirror of
/// query::ComposeResults for the databank path). Alongside the `<result>`
/// elements it emits a `<sources>` annotation reporting each source's
/// outcome (ok / timed-out / failed / breaker-open), attempts and latency —
/// the partial-result contract: callers always learn what they did NOT get.
xml::Document ComposeFederatedResults(const query::XdbQuery& query,
                                      const federation::FederatedResult& result);

/// \brief Appends a `<trace>` element (nested `<span>` tree with `us`
/// wall-time, `ok` outcome and `<annotation>` children) under `parent` —
/// the `trace=1` response annotation, mirroring the `<sources>` block.
void AppendTraceElement(xml::Document& doc, xml::NodeId parent,
                        const std::vector<observability::SpanData>& spans);

}  // namespace netmark::server

#endif  // NETMARK_SERVER_NETMARK_SERVICE_H_
