// RemoteSource: a source reached over HTTP — another NETMARK server's XDB
// endpoint ("users can access NETMARK documents by simple HTTP requests").
//
// The transport is abstract so federation does not depend on the server
// module; netmark::server provides the socket-backed implementation.

#ifndef NETMARK_FEDERATION_REMOTE_SOURCE_H_
#define NETMARK_FEDERATION_REMOTE_SOURCE_H_

#include <memory>
#include <string>
#include <vector>

#include "federation/source.h"
#include "observability/trace.h"

namespace netmark::federation {

/// \brief Minimal HTTP GET transport.
class HttpTransport {
 public:
  virtual ~HttpTransport() = default;
  /// Fetches `path_and_query` ("/xdb?context=..."), returning the body.
  /// Implementations must give up with Status::DeadlineExceeded once
  /// `ctx.deadline_micros` passes instead of blocking indefinitely.
  virtual netmark::Result<std::string> Get(const std::string& path_and_query,
                                           const CallContext& ctx) = 0;

  /// Convenience: fetch with no deadline.
  netmark::Result<std::string> Get(const std::string& path_and_query) {
    return Get(path_and_query, CallContext::Unbounded());
  }
};

/// \brief Federated source proxied over HTTP to a remote NETMARK instance.
class RemoteSource : public Source {
 public:
  RemoteSource(std::string name, std::unique_ptr<HttpTransport> transport,
               Capabilities capabilities = Capabilities::Full())
      : name_(std::move(name)),
        transport_(std::move(transport)),
        capabilities_(capabilities) {}

  const std::string& name() const override { return name_; }
  Capabilities capabilities() const override { return capabilities_; }
  using Source::Execute;
  netmark::Result<std::vector<FederatedHit>> Execute(
      const query::XdbQuery& query, const CallContext& ctx) override;

 private:
  std::string name_;
  std::unique_ptr<HttpTransport> transport_;
  Capabilities capabilities_;
};

/// \brief Parses a `<results>` document (the XDB endpoint's response format;
/// see query::ComposeResults) back into federated hits. Exposed for tests.
/// When `remote_spans` is non-null and the document carries a `<trace>`
/// block (the remote saw our traceparent header), the remote's span subtree
/// is decoded into it — ids/parents are indices into the output vector,
/// timestamps are synthetic (duration-only; remote clocks don't align) —
/// ready for Trace::Graft under the local `source:*` span.
netmark::Result<std::vector<FederatedHit>> ParseResultsDocument(
    std::string_view body,
    std::vector<observability::SpanData>* remote_spans = nullptr);

}  // namespace netmark::federation

#endif  // NETMARK_FEDERATION_REMOTE_SOURCE_H_
