#include "server/http_message.h"

#include "common/string_util.h"

namespace netmark::server {

bool CaseInsensitiveLess::operator()(const std::string& a, const std::string& b) const {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return ca < cb;
  }
  return a.size() < b.size();
}

netmark::Status SplitTarget(std::string_view target, std::string* path,
                            std::string* query) {
  size_t qmark = target.find('?');
  std::string_view raw_path =
      qmark == std::string_view::npos ? target : target.substr(0, qmark);
  *query = qmark == std::string_view::npos ? "" : std::string(target.substr(qmark + 1));
  NETMARK_ASSIGN_OR_RETURN(*path, netmark::UrlDecode(raw_path));
  return netmark::Status::OK();
}

namespace {

netmark::Status ParseHeaders(std::string_view head, size_t start_line_end,
                             HeaderMap* headers) {
  size_t pos = start_line_end;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) break;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return netmark::Status::ParseError("malformed header line: " + std::string(line));
    }
    std::string name = netmark::Trim(line.substr(0, colon));
    std::string value = netmark::Trim(line.substr(colon + 1));
    (*headers)[name] = value;
  }
  return netmark::Status::OK();
}

/// Parses Content-Length out of a raw head (bytes [0, head_end)). Missing
/// or malformed values frame as 0 — ParseRequest rejects the message later.
size_t ParseContentLength(std::string_view buffer, size_t head_end) {
  std::string head = netmark::ToLower(std::string(buffer.substr(0, head_end)));
  size_t cl = head.find("content-length:");
  if (cl == std::string::npos) return 0;
  size_t eol = head.find("\r\n", cl);
  auto value = netmark::ParseInt64(head.substr(
      cl + 15, eol == std::string::npos ? std::string::npos : eol - cl - 15));
  if (value.ok() && *value >= 0) return static_cast<size_t>(*value);
  return 0;
}

}  // namespace

size_t CompleteMessageBytes(std::string_view buffer, size_t* head_end) {
  if (*head_end == std::string_view::npos || *head_end + 4 > buffer.size()) {
    *head_end = buffer.find("\r\n\r\n");
  }
  if (*head_end == std::string_view::npos) return 0;
  size_t total = *head_end + 4 + ParseContentLength(buffer, *head_end);
  return buffer.size() >= total ? total : 0;
}

netmark::Result<HttpRequest> ParseRequest(std::string_view raw) {
  size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return netmark::Status::ParseError("incomplete HTTP request head");
  }
  std::string_view head = raw.substr(0, head_end + 2);
  size_t line_end = head.find("\r\n");
  std::string_view request_line = head.substr(0, line_end);

  HttpRequest req;
  std::vector<std::string> parts = netmark::SplitAndTrim(request_line, ' ');
  if (parts.size() != 3 || !netmark::StartsWith(parts[2], "HTTP/")) {
    return netmark::Status::ParseError("malformed request line: " +
                                       std::string(request_line));
  }
  req.method = parts[0];
  req.target = parts[1];
  NETMARK_RETURN_NOT_OK(SplitTarget(req.target, &req.path, &req.query));
  NETMARK_RETURN_NOT_OK(ParseHeaders(head, line_end + 2, &req.headers));
  req.body = std::string(raw.substr(head_end + 4));
  return req;
}

netmark::Result<HttpResponse> ParseResponse(std::string_view raw) {
  size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return netmark::Status::ParseError("incomplete HTTP response head");
  }
  std::string_view head = raw.substr(0, head_end + 2);
  size_t line_end = head.find("\r\n");
  std::string_view status_line = head.substr(0, line_end);

  HttpResponse resp;
  if (!netmark::StartsWith(status_line, "HTTP/")) {
    return netmark::Status::ParseError("malformed status line");
  }
  size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos) {
    return netmark::Status::ParseError("malformed status line");
  }
  size_t sp2 = status_line.find(' ', sp1 + 1);
  std::string_view code = status_line.substr(
      sp1 + 1, sp2 == std::string_view::npos ? std::string_view::npos : sp2 - sp1 - 1);
  NETMARK_ASSIGN_OR_RETURN(int64_t status, netmark::ParseInt64(code));
  resp.status = static_cast<int>(status);
  resp.reason = sp2 == std::string_view::npos ? "" : netmark::Trim(status_line.substr(sp2 + 1));
  NETMARK_RETURN_NOT_OK(ParseHeaders(head, line_end + 2, &resp.headers));
  resp.body = std::string(raw.substr(head_end + 4));
  return resp;
}

std::string HttpRequest::Serialize() const {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  HeaderMap all = headers;
  all["Content-Length"] = std::to_string(body.size());
  if (all.find("Connection") == all.end()) all["Connection"] = "close";
  for (const auto& [name, value] : all) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

std::string HttpResponse::Serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  HeaderMap all = headers;
  all["Content-Length"] = std::to_string(body.size());
  // Keep-alive negotiation: the server sets Connection explicitly per
  // request; a response without one (handler-constructed) closes, matching
  // the pre-keep-alive behavior.
  if (all.find("Connection") == all.end()) all["Connection"] = "close";
  if (all.find("Content-Type") == all.end()) {
    all["Content-Type"] = "text/plain";
  }
  for (const auto& [name, value] : all) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

HttpResponse HttpResponse::Ok(std::string body, std::string content_type) {
  HttpResponse resp;
  resp.body = std::move(body);
  resp.headers["Content-Type"] = std::move(content_type);
  return resp;
}

HttpResponse HttpResponse::Text(int status, std::string message) {
  HttpResponse resp;
  resp.status = status;
  switch (status) {
    case 200: resp.reason = "OK"; break;
    case 201: resp.reason = "Created"; break;
    case 204: resp.reason = "No Content"; break;
    case 207: resp.reason = "Multi-Status"; break;
    case 400: resp.reason = "Bad Request"; break;
    case 404: resp.reason = "Not Found"; break;
    case 405: resp.reason = "Method Not Allowed"; break;
    case 408: resp.reason = "Request Timeout"; break;
    case 500: resp.reason = "Internal Server Error"; break;
    case 503: resp.reason = "Service Unavailable"; break;
    default: resp.reason = "Status"; break;
  }
  resp.body = std::move(message);
  return resp;
}

HttpResponse HttpResponse::NotFound(std::string message) {
  return Text(404, std::move(message));
}
HttpResponse HttpResponse::BadRequest(std::string message) {
  return Text(400, std::move(message));
}
HttpResponse HttpResponse::ServerError(std::string message) {
  return Text(500, std::move(message));
}

}  // namespace netmark::server
