// DefaultSourceFactory: config-declared local and remote sources wired to
// real stores and live HTTP servers.

#include "server/source_factory.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "core/netmark.h"

namespace netmark {
namespace {

TEST(SourceFactoryTest, LocalAndRemoteDeclarationsResolve) {
  auto dir = TempDir::Make("factory");
  ASSERT_TRUE(dir.ok());

  // A disk store the config will reference.
  {
    NetmarkOptions options;
    options.data_dir = dir->Sub("disk").string();
    auto nm = Netmark::Open(options);
    ASSERT_TRUE(nm.ok());
    ASSERT_TRUE((*nm)->IngestContent("a.txt", "ALPHA SECTION\nlocal words\n").ok());
    ASSERT_TRUE((*nm)->store()->Flush().ok());
  }
  // A live server the config will reference.
  NetmarkOptions remote_options;
  remote_options.data_dir = dir->Sub("remote").string();
  auto remote = Netmark::Open(remote_options);
  ASSERT_TRUE(remote.ok());
  ASSERT_TRUE(
      (*remote)->IngestContent("b.txt", "ALPHA SECTION\nremote words\n").ok());
  ASSERT_TRUE((*remote)->StartServer().ok());

  std::string config_text =
      "[source:disk]\nkind = local\npath = " + dir->Sub("disk").string() +
      "\n[source:wire]\nkind = remote\nhost = 127.0.0.1\nport = " +
      std::to_string((*remote)->server_port()) +
      "\n[databank:both]\nsources = disk, wire\n";
  auto config = federation::ParseDatabankConfig(config_text);
  ASSERT_TRUE(config.ok()) << config.status().ToString();

  federation::Router router;
  Status st = federation::ApplyDatabankConfig(
      *config, server::DefaultSourceFactory(), &router);
  ASSERT_TRUE(st.ok()) << st.ToString();

  query::XdbQuery q;
  q.context = "Alpha Section";
  auto hits = router.Query("both", q);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 2u);
  EXPECT_EQ((*hits)[0].source, "disk");
  EXPECT_EQ((*hits)[1].source, "wire");
  EXPECT_NE((*hits)[0].text.find("local words"), std::string::npos);
  EXPECT_NE((*hits)[1].text.find("remote words"), std::string::npos);
  (*remote)->StopServer();
}

TEST(SourceFactoryTest, UnknownKindRejected) {
  federation::SourceDecl decl;
  decl.name = "x";
  decl.kind = "carrier-pigeon";
  auto source = server::DefaultSourceFactory()(decl);
  EXPECT_TRUE(source.status().IsInvalidArgument());
}

TEST(SourceFactoryTest, MissingLocalStoreStillOpens) {
  // Opening a local source on a fresh directory creates an empty store —
  // the same semantics as opening a Netmark instance.
  auto dir = TempDir::Make("factory-fresh");
  ASSERT_TRUE(dir.ok());
  federation::SourceDecl decl;
  decl.name = "fresh";
  decl.kind = "local";
  decl.path = dir->Sub("newstore").string();
  auto source = server::DefaultSourceFactory()(decl);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  query::XdbQuery q;
  q.content = "anything";
  auto hits = (*source)->Execute(q);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

}  // namespace
}  // namespace netmark
