#include "storage/catalog.h"

#include <filesystem>

#include "common/string_util.h"
#include "common/temp_dir.h"

namespace netmark::storage {

netmark::Result<Catalog> Catalog::Load(const std::string& path,
                                       netmark::Env* env) {
  if (env == nullptr) env = netmark::Env::Default();
  Catalog catalog;
  if (!env->FileExists(path)) return catalog;  // fresh database
  NETMARK_ASSIGN_OR_RETURN(std::string text, env->ReadFileToString(path));
  size_t line_no = 0;
  for (const std::string& raw : netmark::Split(text, '\n')) {
    ++line_no;
    std::string_view line = netmark::TrimView(raw);
    if (line.empty() || line[0] == '#') continue;
    if (netmark::StartsWith(line, "table ")) {
      NETMARK_ASSIGN_OR_RETURN(TableSchema schema, TableSchema::Decode(line.substr(6)));
      NETMARK_RETURN_NOT_OK(catalog.AddTable(std::move(schema)));
    } else if (netmark::StartsWith(line, "index ")) {
      std::vector<std::string> parts = netmark::SplitAndTrim(line.substr(6), ' ');
      if (parts.size() != 3) {
        return netmark::Status::ParseError(
            netmark::StringPrintf("catalog line %zu: bad index entry", line_no));
      }
      IndexDef def;
      def.name = parts[1];
      def.columns = netmark::SplitAndTrim(parts[2], ',');
      NETMARK_RETURN_NOT_OK(catalog.AddIndex(parts[0], std::move(def)));
    } else {
      return netmark::Status::ParseError(
          netmark::StringPrintf("catalog line %zu: unknown entry kind", line_no));
    }
  }
  return catalog;
}

netmark::Status Catalog::Save(const std::string& path, netmark::Env* env) const {
  if (env == nullptr) env = netmark::Env::Default();
  std::string out = "# NETMARK catalog\n";
  for (const TableDef& t : tables_) {
    out += "table ";
    out += t.schema.Encode();
    out += '\n';
    for (const IndexDef& ix : t.indexes) {
      out += "index ";
      out += t.schema.name();
      out += ' ';
      out += ix.name;
      out += ' ';
      out += netmark::Join(ix.columns, ",");
      out += '\n';
    }
  }
  // Atomic replace: a crash mid-save must leave the old catalog readable.
  return env->WriteFileAtomic(path, out);
}

TableDef* Catalog::Find(std::string_view table_name) {
  for (TableDef& t : tables_) {
    if (t.schema.name() == table_name) return &t;
  }
  return nullptr;
}

const TableDef* Catalog::Find(std::string_view table_name) const {
  for (const TableDef& t : tables_) {
    if (t.schema.name() == table_name) return &t;
  }
  return nullptr;
}

netmark::Status Catalog::AddTable(TableSchema schema) {
  if (Find(schema.name()) != nullptr) {
    return netmark::Status::AlreadyExists("table " + schema.name() +
                                          " already in catalog");
  }
  tables_.push_back(TableDef{std::move(schema), {}});
  return netmark::Status::OK();
}

netmark::Status Catalog::AddIndex(std::string_view table_name, IndexDef index) {
  TableDef* t = Find(table_name);
  if (t == nullptr) {
    return netmark::Status::NotFound("no table " + std::string(table_name) +
                                     " in catalog");
  }
  for (const IndexDef& ix : t->indexes) {
    if (ix.name == index.name) {
      return netmark::Status::AlreadyExists("index " + index.name + " already on " +
                                            std::string(table_name));
    }
  }
  t->indexes.push_back(std::move(index));
  return netmark::Status::OK();
}

netmark::Status Catalog::RemoveTable(std::string_view table_name) {
  for (auto it = tables_.begin(); it != tables_.end(); ++it) {
    if (it->schema.name() == table_name) {
      tables_.erase(it);
      return netmark::Status::OK();
    }
  }
  return netmark::Status::NotFound("no table " + std::string(table_name) +
                                   " in catalog");
}

}  // namespace netmark::storage
