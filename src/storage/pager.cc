#include "storage/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace netmark::storage {

netmark::Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return netmark::Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return netmark::Status::IOError("lseek " + path + ": " + std::strerror(errno));
  }
  if (static_cast<size_t>(size) % kPageSize != 0) {
    ::close(fd);
    return netmark::Status::Corruption(
        netmark::StringPrintf("page file %s has size %lld not a multiple of %zu",
                              path.c_str(), static_cast<long long>(size), kPageSize));
  }
  auto count = static_cast<PageId>(static_cast<size_t>(size) / kPageSize);
  return std::unique_ptr<Pager>(new Pager(path, fd, count));
}

Pager::~Pager() {
  (void)Flush();
  if (fd_ >= 0) ::close(fd_);
}

netmark::Result<PageId> Pager::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  PageId count = page_count_.load(std::memory_order_relaxed);
  if (count == kInvalidPage) {
    return netmark::Status::CapacityExceeded("page file full");
  }
  PageId id = count;
  auto buf = std::make_unique<uint8_t[]>(kPageSize);
  std::memset(buf.get(), 0, kPageSize);
  Page(buf.get()).Init();
  cache_[id] = std::move(buf);
  dirty_[id] = true;
  dirty_since_mark_.insert(id);
  page_count_.store(count + 1, std::memory_order_release);
  return id;
}

netmark::Result<uint8_t*> Pager::Buffer(PageId id) {
  // The lock covers the cache probe and (on a miss) the pread + insert. A
  // miss therefore serializes concurrent readers briefly, but buffers are
  // never evicted so the common case — cache hit — is one map lookup, and
  // the returned pointer stays stable after the lock is released.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(id);
  if (it != cache_.end()) return it->second.get();
  PageId count = page_count_.load(std::memory_order_relaxed);
  if (id >= count) {
    return netmark::Status::InvalidArgument(
        netmark::StringPrintf("page %u out of range (%u pages)", id, count));
  }
  auto buf = std::make_unique<uint8_t[]>(kPageSize);
  ssize_t n = ::pread(fd_, buf.get(), kPageSize,
                      static_cast<off_t>(id) * static_cast<off_t>(kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return netmark::Status::IOError(
        netmark::StringPrintf("short read of page %u from %s", id, path_.c_str()));
  }
  pages_read_.fetch_add(1, std::memory_order_relaxed);
  uint8_t* raw = buf.get();
  cache_[id] = std::move(buf);
  return raw;
}

netmark::Result<Page> Pager::Fetch(PageId id) {
  NETMARK_ASSIGN_OR_RETURN(uint8_t* buf, Buffer(id));
  return Page(buf);
}

void Pager::MarkDirty(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  dirty_[id] = true;
  dirty_since_mark_.insert(id);
}

std::vector<PageId> Pager::TakeDirtySinceMark() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PageId> out(dirty_since_mark_.begin(), dirty_since_mark_.end());
  dirty_since_mark_.clear();
  return out;
}

netmark::Status Pager::Flush() {
  // Attempt every dirty page even after a failure so one bad write doesn't
  // strand the rest; the failing page stays dirty (it will be retried by the
  // next Flush) and the first error is propagated.
  netmark::Status first_error = netmark::Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, is_dirty] : dirty_) {
    if (!is_dirty) continue;
    auto it = cache_.find(id);
    if (it == cache_.end()) continue;
    off_t offset = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
    ssize_t n = write_fn_ ? write_fn_(fd_, it->second.get(), kPageSize, offset)
                          : ::pwrite(fd_, it->second.get(), kPageSize, offset);
    if (n != static_cast<ssize_t>(kPageSize)) {
      netmark::Status err =
          n < 0 ? netmark::Status::IOError(
                      netmark::StringPrintf("write of page %u to %s: %s", id,
                                            path_.c_str(), std::strerror(errno)))
                : netmark::Status::IOError(netmark::StringPrintf(
                      "short write of page %u to %s (%zd of %zu bytes)", id,
                      path_.c_str(), n, kPageSize));
      if (first_error.ok()) first_error = std::move(err);
      continue;  // page stays dirty
    }
    is_dirty = false;
    pages_written_.fetch_add(1, std::memory_order_relaxed);
  }
  return first_error;
}

netmark::Status Pager::SyncToDisk() {
  if (::fdatasync(fd_) != 0) {
    return netmark::Status::IOError(
        netmark::StringPrintf("fsync %s: %s", path_.c_str(), std::strerror(errno)));
  }
  return netmark::Status::OK();
}

}  // namespace netmark::storage
