#include "xml/dom.h"

#include <cassert>

namespace netmark::xml {

std::string_view NodeKindToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDocument:
      return "document";
    case NodeKind::kElement:
      return "element";
    case NodeKind::kText:
      return "text";
    case NodeKind::kComment:
      return "comment";
    case NodeKind::kCData:
      return "cdata";
    case NodeKind::kProcessingInstruction:
      return "pi";
  }
  return "?";
}

Document::Document() { NewNode(NodeKind::kDocument, "", ""); }

NodeId Document::NewNode(NodeKind kind, std::string name, std::string data) {
  Node n;
  n.kind = kind;
  n.name = std::move(name);
  n.data = std::move(data);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Document::CreateElement(std::string name) {
  return NewNode(NodeKind::kElement, std::move(name), "");
}
NodeId Document::CreateText(std::string data) {
  return NewNode(NodeKind::kText, "", std::move(data));
}
NodeId Document::CreateComment(std::string data) {
  return NewNode(NodeKind::kComment, "", std::move(data));
}
NodeId Document::CreateCData(std::string data) {
  return NewNode(NodeKind::kCData, "", std::move(data));
}
NodeId Document::CreateProcessingInstruction(std::string name, std::string data) {
  return NewNode(NodeKind::kProcessingInstruction, std::move(name), std::move(data));
}

void Document::AppendChild(NodeId parent, NodeId child) {
  assert(parent >= 0 && child > 0);
  Node& c = nodes_[child];
  assert(c.parent == kInvalidNode && "child must be detached");
  Node& p = nodes_[parent];
  c.parent = parent;
  c.prev_sibling = p.last_child;
  c.next_sibling = kInvalidNode;
  if (p.last_child != kInvalidNode) {
    nodes_[p.last_child].next_sibling = child;
  } else {
    p.first_child = child;
  }
  p.last_child = child;
}

void Document::InsertBefore(NodeId parent, NodeId child, NodeId before) {
  assert(parent >= 0 && child > 0);
  if (before == kInvalidNode) {
    AppendChild(parent, child);
    return;
  }
  Node& c = nodes_[child];
  assert(c.parent == kInvalidNode && "child must be detached");
  Node& b = nodes_[before];
  assert(b.parent == parent);
  c.parent = parent;
  c.next_sibling = before;
  c.prev_sibling = b.prev_sibling;
  if (b.prev_sibling != kInvalidNode) {
    nodes_[b.prev_sibling].next_sibling = child;
  } else {
    nodes_[parent].first_child = child;
  }
  b.prev_sibling = child;
}

void Document::Detach(NodeId node) {
  Node& n = nodes_[node];
  if (n.parent == kInvalidNode) return;
  Node& p = nodes_[n.parent];
  if (n.prev_sibling != kInvalidNode) {
    nodes_[n.prev_sibling].next_sibling = n.next_sibling;
  } else {
    p.first_child = n.next_sibling;
  }
  if (n.next_sibling != kInvalidNode) {
    nodes_[n.next_sibling].prev_sibling = n.prev_sibling;
  } else {
    p.last_child = n.prev_sibling;
  }
  n.parent = kInvalidNode;
  n.prev_sibling = kInvalidNode;
  n.next_sibling = kInvalidNode;
}

void Document::AddAttribute(NodeId id, std::string name, std::string value) {
  nodes_[id].attributes.push_back(Attribute{std::move(name), std::move(value)});
}

std::string_view Document::GetAttribute(NodeId id, std::string_view name) const {
  for (const Attribute& a : nodes_[id].attributes) {
    if (a.name == name) return a.value;
  }
  return {};
}

bool Document::HasAttribute(NodeId id, std::string_view name) const {
  for (const Attribute& a : nodes_[id].attributes) {
    if (a.name == name) return true;
  }
  return false;
}

void Document::SetAttribute(NodeId id, std::string_view name, std::string value) {
  for (Attribute& a : nodes_[id].attributes) {
    if (a.name == name) {
      a.value = std::move(value);
      return;
    }
  }
  AddAttribute(id, std::string(name), std::move(value));
}

std::vector<NodeId> Document::Children(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child(id); c != kInvalidNode; c = next_sibling(c)) {
    out.push_back(c);
  }
  return out;
}

std::vector<NodeId> Document::ChildElements(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child(id); c != kInvalidNode; c = next_sibling(c)) {
    if (kind(c) == NodeKind::kElement) out.push_back(c);
  }
  return out;
}

NodeId Document::FirstChildElement(NodeId id, std::string_view name) const {
  for (NodeId c = first_child(id); c != kInvalidNode; c = next_sibling(c)) {
    if (kind(c) == NodeKind::kElement && nodes_[c].name == name) return c;
  }
  return kInvalidNode;
}

NodeId Document::DocumentElement() const {
  for (NodeId c = first_child(root()); c != kInvalidNode; c = next_sibling(c)) {
    if (kind(c) == NodeKind::kElement) return c;
  }
  return kInvalidNode;
}

std::string Document::TextContent(NodeId id) const {
  std::string out;
  for (NodeId n : Descendants(id)) {
    if (kind(n) == NodeKind::kText || kind(n) == NodeKind::kCData) {
      out += nodes_[n].data;
    }
  }
  return out;
}

std::vector<NodeId> Document::Descendants(NodeId id) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack = {id};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    // Push children in reverse so the walk is pre-order left-to-right.
    std::vector<NodeId> kids = Children(n);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

size_t Document::SubtreeSize(NodeId id) const { return Descendants(id).size(); }

int Document::Depth(NodeId id) const {
  int d = 0;
  for (NodeId p = parent(id); p != kInvalidNode; p = parent(p)) ++d;
  return d;
}

NodeId Document::ImportSubtree(const Document& from, NodeId src) {
  NodeId copy;
  const NodeKind k = from.kind(src);
  switch (k) {
    case NodeKind::kElement:
      copy = CreateElement(from.name(src));
      for (const Attribute& a : from.attributes(src)) {
        AddAttribute(copy, a.name, a.value);
      }
      break;
    case NodeKind::kText:
      copy = CreateText(from.data(src));
      break;
    case NodeKind::kComment:
      copy = CreateComment(from.data(src));
      break;
    case NodeKind::kCData:
      copy = CreateCData(from.data(src));
      break;
    case NodeKind::kProcessingInstruction:
      copy = CreateProcessingInstruction(from.name(src), from.data(src));
      break;
    case NodeKind::kDocument:
      // Importing a document node imports its children under a fresh element-less
      // wrapper is meaningless; treat as importing children under a new element.
      copy = CreateElement("imported-document");
      break;
  }
  for (NodeId c = from.first_child(src); c != kInvalidNode; c = from.next_sibling(c)) {
    AppendChild(copy, ImportSubtree(from, c));
  }
  return copy;
}

bool Document::SubtreeEquals(const Document& a, NodeId ida, const Document& b,
                             NodeId idb) {
  if (a.kind(ida) != b.kind(idb)) return false;
  if (a.name(ida) != b.name(idb)) return false;
  if (a.data(ida) != b.data(idb)) return false;
  const auto& attrs_a = a.attributes(ida);
  const auto& attrs_b = b.attributes(idb);
  if (attrs_a.size() != attrs_b.size()) return false;
  for (size_t i = 0; i < attrs_a.size(); ++i) {
    if (attrs_a[i].name != attrs_b[i].name || attrs_a[i].value != attrs_b[i].value) {
      return false;
    }
  }
  NodeId ca = a.first_child(ida);
  NodeId cb = b.first_child(idb);
  while (ca != kInvalidNode && cb != kInvalidNode) {
    if (!SubtreeEquals(a, ca, b, cb)) return false;
    ca = a.next_sibling(ca);
    cb = b.next_sibling(cb);
  }
  return ca == kInvalidNode && cb == kInvalidNode;
}

}  // namespace netmark::xml
