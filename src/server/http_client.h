// Deadline-bounded HTTP/1.1 client (loopback-oriented) plus the federation
// transport adapter.
//
// Every call is bounded: non-blocking connect raced against a connect
// timeout, then poll()-gated send/recv loops raced against a total-request
// deadline. No caller can block indefinitely — the conservative defaults
// apply even when no explicit deadline is given.
//
// Connections are pooled per client (so per federation source): after a
// keep-alive response the socket returns to a small idle pool and the next
// Send reuses it, skipping the TCP handshake. A pooled socket the server
// closed in the meantime is detected (failure before any response byte) and
// retried once on a fresh connection, so reuse is transparent to callers —
// including the PR 2 retry/backoff machinery above SocketTransport.

#ifndef NETMARK_SERVER_HTTP_CLIENT_H_
#define NETMARK_SERVER_HTTP_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "federation/remote_source.h"
#include "server/http_message.h"

namespace netmark::server {

/// Client-side timeout knobs. A zero disables that bound (not recommended).
struct HttpClientOptions {
  int64_t connect_timeout_ms = 5000;  ///< TCP connect budget
  int64_t total_timeout_ms = 30000;   ///< whole request (connect+send+recv)
  /// Keep-alive: pool connections across Send calls. When false every
  /// request opens (and closes) its own socket — the pre-pooling behavior.
  bool reuse_connections = true;
  /// Idle sockets kept per client; excess connections close after use.
  size_t max_idle_connections = 4;
};

/// \brief Pooled keep-alive HTTP client with deadlines. Thread-safe.
class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port, HttpClientOptions options = {})
      : host_(std::move(host)), port_(port), options_(options) {}
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Sends one request. `deadline_micros` (MonotonicMicros time, 0 = none)
  /// further tightens the option timeouts; on expiry the call returns
  /// Status::DeadlineExceeded. Reuses a pooled connection when available; a
  /// stale pooled socket is retried once on a fresh one.
  netmark::Result<HttpResponse> Send(const HttpRequest& request,
                                     int64_t deadline_micros = 0) const;

  netmark::Result<HttpResponse> Get(const std::string& target) const;
  netmark::Result<HttpResponse> Put(const std::string& target,
                                    std::string body,
                                    std::string content_type = "text/plain") const;
  netmark::Result<HttpResponse> Delete(const std::string& target) const;
  netmark::Result<HttpResponse> Propfind(const std::string& target) const;

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  const HttpClientOptions& options() const { return options_; }

  // --- Pooling counters (tests/benchmarks) ---
  uint64_t connections_opened() const { return opened_.load(); }
  uint64_t connections_reused() const { return reused_.load(); }

 private:
  /// Opens a fresh non-blocking connection, racing `connect_deadline`.
  netmark::Result<int> Connect(int64_t connect_deadline) const;
  /// One request/response exchange on an open socket. `*reusable` reports
  /// whether the socket can serve another request; `*stale` is set when the
  /// failure happened before any response byte arrived (pooled socket the
  /// server had already closed — safe to retry on a fresh connection).
  netmark::Result<HttpResponse> Exchange(int fd, const std::string& wire,
                                         int64_t deadline, bool* reusable,
                                         bool* stale) const;
  /// Pops an idle pooled socket (-1 when none).
  int PopIdle() const;
  /// Returns `fd` to the pool, or closes it when the pool is full.
  void ReturnIdle(int fd) const;

  std::string host_;
  uint16_t port_;
  HttpClientOptions options_;

  mutable std::mutex pool_mu_;
  mutable std::vector<int> idle_;  ///< guarded by pool_mu_
  mutable std::atomic<uint64_t> opened_{0};
  mutable std::atomic<uint64_t> reused_{0};
};

/// \brief federation::HttpTransport over HttpClient — wires RemoteSource to
/// real sockets. Maps HTTP 5xx to retryable Unavailable and 4xx to
/// non-retryable InvalidArgument. Connection pooling in the underlying
/// client makes reuse per-source automatically.
class SocketTransport : public federation::HttpTransport {
 public:
  SocketTransport(std::string host, uint16_t port, HttpClientOptions options = {})
      : client_(std::move(host), port, options) {}

  using federation::HttpTransport::Get;
  netmark::Result<std::string> Get(const std::string& path_and_query,
                                   const federation::CallContext& ctx) override;

  const HttpClient& client() const { return client_; }

 private:
  HttpClient client_;
};

}  // namespace netmark::server

#endif  // NETMARK_SERVER_HTTP_CLIENT_H_
