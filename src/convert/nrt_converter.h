// NRT ("NETMARK Rich Text") converter — the stand-in for the paper's Word,
// PDF and PowerPoint parsers.
//
// The paper's binary-format parsers recover structure "based on the
// formatting information in the document": font size and weight runs mark
// headings. NRT is a plain-text carrier for exactly those signals, so the
// same heuristic code path is exercised without a binary codec:
//
//   .font <size> [bold] [italic]    formatting directive for following lines
//   .page                           page break (PowerPoint slide boundary)
//   .meta <key> <value>             document property
//   <text lines>
//
// Heading rule (mirrors the Word/PDF heuristics the paper alludes to): a
// line rendered at size >= 16, or bold at size >= 12, begins a new section.
// Bold/italic runs inside body text become INTENSE markup.

#ifndef NETMARK_CONVERT_NRT_CONVERTER_H_
#define NETMARK_CONVERT_NRT_CONVERTER_H_

#include "convert/converter.h"

namespace netmark::convert {

/// \brief Converts `.nrt` rich-text documents (and `.doc`/`.pdf`/`.ppt`
/// files written in NRT syntax by the workload generators).
class NrtConverter : public Converter {
 public:
  std::string_view format() const override { return "nrt"; }
  std::vector<std::string_view> extensions() const override {
    // The synthetic corpora emit NASA-style "word"/"pdf"/"powerpoint" files
    // whose payload is NRT; claiming those extensions keeps the ingest flow
    // identical to the paper's drag-and-drop story.
    return {"nrt", "doc", "pdf", "ppt"};
  }
  bool Sniff(std::string_view content) const override;
  netmark::Result<xml::Document> Convert(std::string_view content,
                                         const ConvertContext& ctx) const override;
};

}  // namespace netmark::convert

#endif  // NETMARK_CONVERT_NRT_CONVERTER_H_
