// Tests for the staged parallel ingestion pipeline: worker-count determinism
// (same corpus -> same doc ids -> same reconstructed bytes) and thread safety
// of the daemon/registry/store-writer composition (run under TSan in CI).

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/temp_dir.h"
#include "server/daemon.h"
#include "workload/corpus.h"
#include "xml/serializer.h"

namespace netmark::server {
namespace {

namespace fs = std::filesystem;

struct Instance {
  std::unique_ptr<netmark::TempDir> dir;
  std::unique_ptr<xmlstore::XmlStore> store;
  convert::ConverterRegistry converters = convert::ConverterRegistry::Default();
  std::unique_ptr<IngestionDaemon> daemon;
  fs::path drop;
};

Instance MakeInstance(
    int worker_threads,
    std::chrono::milliseconds stable_age = std::chrono::milliseconds(0)) {
  Instance inst;
  auto dir = netmark::TempDir::Make("pingest");
  EXPECT_TRUE(dir.ok());
  inst.dir = std::make_unique<netmark::TempDir>(std::move(*dir));
  auto store = xmlstore::XmlStore::Open(inst.dir->Sub("store").string());
  EXPECT_TRUE(store.ok());
  inst.store = std::move(*store);
  inst.drop = inst.dir->Sub("drop");
  fs::create_directories(inst.drop);
  DaemonOptions options;
  options.drop_dir = inst.drop;
  options.poll_interval = std::chrono::milliseconds(10);
  options.stable_age = stable_age;
  options.worker_threads = worker_threads;
  inst.daemon = std::make_unique<IngestionDaemon>(inst.store.get(),
                                                  &inst.converters, options);
  return inst;
}

/// doc_id -> (file name, serialized reconstruction) for every stored doc.
std::map<int64_t, std::pair<std::string, std::string>> Snapshot(
    const xmlstore::XmlStore& store) {
  std::map<int64_t, std::pair<std::string, std::string>> out;
  auto docs = store.ListDocuments();
  EXPECT_TRUE(docs.ok());
  for (const auto& rec : *docs) {
    auto doc = store.Reconstruct(rec.doc_id);
    EXPECT_TRUE(doc.ok()) << "reconstruct " << rec.doc_id;
    out[rec.doc_id] = {rec.file_name, xml::Serialize(*doc)};
  }
  return out;
}

TEST(ParallelIngestTest, WorkerCountDoesNotChangeDocIdsOrContent) {
  workload::CorpusGenerator gen(31337);
  auto corpus = gen.MixedCorpus(60);

  Instance serial = MakeInstance(1);
  Instance parallel = MakeInstance(4);
  for (const auto& doc : corpus) {
    ASSERT_TRUE(netmark::WriteFile(serial.drop / doc.file_name, doc.content).ok());
    ASSERT_TRUE(netmark::WriteFile(parallel.drop / doc.file_name, doc.content).ok());
  }

  auto a = serial.daemon->ProcessOnce();
  auto b = parallel.daemon->ProcessOnce();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, static_cast<int>(corpus.size()));
  EXPECT_EQ(*b, static_cast<int>(corpus.size()));

  auto snap_serial = Snapshot(*serial.store);
  auto snap_parallel = Snapshot(*parallel.store);
  ASSERT_EQ(snap_serial.size(), corpus.size());
  // Same doc-id -> filename mapping and byte-identical reconstructions.
  EXPECT_EQ(snap_serial, snap_parallel);
  // Identical text-index shape too (postings built from the same rowids).
  EXPECT_EQ(serial.store->text_index().num_terms(),
            parallel.store->text_index().num_terms());
  EXPECT_EQ(serial.store->text_index().num_postings(),
            parallel.store->text_index().num_postings());
}

TEST(ParallelIngestTest, FailuresLandInFailedRegardlessOfWorkers) {
  Instance inst = MakeInstance(4);
  std::string binary("\x7f"
                     "ELF\x00\x01\x02",
                     7);
  ASSERT_TRUE(netmark::WriteFile(inst.drop / "bad1.bin", binary).ok());
  ASSERT_TRUE(netmark::WriteFile(inst.drop / "good1.txt", "HEADING\nalpha\n").ok());
  ASSERT_TRUE(netmark::WriteFile(inst.drop / "good2.md", "# H\n\nbeta\n").ok());
  ASSERT_EQ(*inst.daemon->ProcessOnce(), 2);
  EXPECT_EQ(inst.daemon->files_failed(), 1u);
  EXPECT_TRUE(fs::exists(inst.drop / "failed" / "bad1.bin"));
  EXPECT_TRUE(fs::exists(inst.drop / "processed" / "good1.txt"));
  EXPECT_EQ(inst.store->document_count(), 2u);
}

// TSan target: background poll thread + worker pool + concurrent droppers +
// a synchronous sweep all running against one store writer.
TEST(ParallelIngestTest, ConcurrentDropsWithBackgroundDaemon) {
  // stable_age = poll_interval: the poll thread defers files it catches
  // mid-write instead of failing them — drops race the sweeps safely.
  Instance inst = MakeInstance(4, std::chrono::milliseconds(-1));
  ASSERT_TRUE(inst.daemon->Start().ok());

  constexpr int kPerProducer = 20;
  workload::CorpusGenerator gen_a(7);
  workload::CorpusGenerator gen_b(11);
  auto corpus_a = gen_a.MixedCorpus(kPerProducer);
  auto corpus_b = gen_b.MixedCorpus(kPerProducer);
  std::thread producer_a([&] {
    for (int i = 0; i < kPerProducer; ++i) {
      const auto& doc = corpus_a[i];
      EXPECT_TRUE(
          netmark::WriteFile(inst.drop / ("a_" + std::to_string(i) + "_" + doc.file_name),
                             doc.content)
              .ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread producer_b([&] {
    for (int i = 0; i < kPerProducer; ++i) {
      const auto& doc = corpus_b[i];
      EXPECT_TRUE(
          netmark::WriteFile(inst.drop / ("b_" + std::to_string(i) + "_" + doc.file_name),
                             doc.content)
              .ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  producer_a.join();
  producer_b.join();

  // A synchronous sweep racing the poll thread must be safe (sweep_mu_).
  ASSERT_TRUE(inst.daemon->ProcessOnce().ok());
  for (int i = 0; i < 500 && inst.daemon->files_ingested() < 2 * kPerProducer; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  inst.daemon->Stop();
  EXPECT_EQ(inst.daemon->files_ingested(), 2u * kPerProducer);
  EXPECT_EQ(inst.daemon->files_failed(), 0u);
  EXPECT_EQ(inst.store->document_count(), 2u * kPerProducer);
  DaemonCounters c = inst.daemon->counters();
  EXPECT_EQ(c.inserted, 2u * kPerProducer);
  EXPECT_EQ(c.converted, c.inserted);
}

}  // namespace
}  // namespace netmark::server
