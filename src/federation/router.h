// Databanks and the thin query router (paper §2.1.5, Fig 8).
//
// "Integration can be specified (and executed) at the client side by
// specifying databanks. ... Middleware requirements are reduced to needing
// just a thin router capability across the various information sources."
//
// A databank is a named list of sources created by a *declarative* step —
// no schemas, no views, no mappings. The router decomposes each query per
// source capability, pushes down the supported part, and augments the rest.

#ifndef NETMARK_FEDERATION_ROUTER_H_
#define NETMARK_FEDERATION_ROUTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "federation/augment.h"
#include "federation/source.h"

namespace netmark::federation {

/// A named source list — the whole "integration specification".
struct Databank {
  std::string name;
  std::vector<std::string> source_names;
};

/// \brief Registry of sources + databanks, and the fan-out query engine.
class Router {
 public:
  /// Registers a source (owned by the router).
  netmark::Status RegisterSource(std::shared_ptr<Source> source);
  /// Declares a databank over registered sources.
  netmark::Status DefineDatabank(const std::string& name,
                                 std::vector<std::string> source_names);

  bool HasDatabank(const std::string& name) const {
    return databanks_.count(name) != 0;
  }
  std::vector<std::string> DatabankNames() const;
  std::vector<std::string> SourceNames() const;
  Source* GetSource(const std::string& name);

  /// Runs `query` against every source of `databank`, augmenting
  /// capability-limited sources, and merges the results.
  netmark::Result<std::vector<FederatedHit>> Query(const std::string& databank,
                                                   const query::XdbQuery& query);

  /// Per-query accounting (read after Query; benches use this).
  struct Stats {
    size_t sources_queried = 0;
    size_t pushed_down_full = 0;   ///< sources that ran the whole query
    size_t augmented = 0;          ///< sources whose results needed local work
    size_t raw_hits = 0;           ///< hits fetched from sources
    size_t final_hits = 0;         ///< hits after augmentation/merging
  };
  const Stats& stats() const { return stats_; }

 private:
  netmark::Result<std::vector<FederatedHit>> QueryOneSource(
      Source* source, const query::XdbQuery& query);

  std::map<std::string, std::shared_ptr<Source>> sources_;
  std::map<std::string, Databank> databanks_;
  Stats stats_;
};

}  // namespace netmark::federation

#endif  // NETMARK_FEDERATION_ROUTER_H_
