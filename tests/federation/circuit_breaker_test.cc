#include "federation/circuit_breaker.h"

#include <gtest/gtest.h>

namespace netmark::federation {
namespace {

constexpr int64_t kMs = 1000;  // micros per milli

CircuitBreakerConfig SmallConfig() {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.cooldown_ms = 100;
  config.half_open_successes = 1;
  return config;
}

TEST(CircuitBreakerTest, StartsClosedAndAllows) {
  CircuitBreaker breaker(SmallConfig());
  EXPECT_EQ(breaker.state(0), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(0));
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreaker breaker(SmallConfig());
  breaker.RecordFailure(1 * kMs);
  breaker.RecordFailure(2 * kMs);
  EXPECT_EQ(breaker.state(2 * kMs), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(2 * kMs));
  breaker.RecordFailure(3 * kMs);  // third consecutive: trips
  EXPECT_EQ(breaker.state(3 * kMs), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow(4 * kMs));
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreaker breaker(SmallConfig());
  breaker.RecordFailure(1 * kMs);
  breaker.RecordFailure(2 * kMs);
  breaker.RecordSuccess(3 * kMs);
  breaker.RecordFailure(4 * kMs);
  breaker.RecordFailure(5 * kMs);
  // Streak was broken: still closed after 2 more failures.
  EXPECT_EQ(breaker.state(5 * kMs), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(6 * kMs);
  EXPECT_EQ(breaker.state(6 * kMs), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, CooldownAdmitsOneHalfOpenProbe) {
  CircuitBreaker breaker(SmallConfig());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(10 * kMs);
  EXPECT_FALSE(breaker.Allow(10 * kMs));
  // Before the cooldown: still open.
  EXPECT_FALSE(breaker.Allow(10 * kMs + 99 * kMs));
  // After the cooldown: half-open, exactly one probe admitted.
  int64_t t = 10 * kMs + 101 * kMs;
  EXPECT_EQ(breaker.state(t), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.Allow(t));
  EXPECT_FALSE(breaker.Allow(t)) << "second concurrent probe must be rejected";
}

TEST(CircuitBreakerTest, HalfOpenProbeSuccessCloses) {
  CircuitBreaker breaker(SmallConfig());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(0);
  int64_t t = 200 * kMs;
  ASSERT_TRUE(breaker.Allow(t));
  breaker.RecordSuccess(t + kMs);
  EXPECT_EQ(breaker.state(t + kMs), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(t + 2 * kMs));
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopensAndRestartsCooldown) {
  CircuitBreaker breaker(SmallConfig());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(0);
  int64_t t = 200 * kMs;
  ASSERT_TRUE(breaker.Allow(t));
  breaker.RecordFailure(t + kMs);
  EXPECT_EQ(breaker.state(t + kMs), CircuitBreaker::State::kOpen);
  // The cooldown restarted at the probe failure, not the original trip.
  EXPECT_FALSE(breaker.Allow(t + 50 * kMs));
  EXPECT_TRUE(breaker.Allow(t + kMs + 101 * kMs));
}

TEST(CircuitBreakerTest, MultipleHalfOpenSuccessesRequired) {
  CircuitBreakerConfig config = SmallConfig();
  config.half_open_successes = 2;
  CircuitBreaker breaker(config);
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(0);
  int64_t t = 200 * kMs;
  ASSERT_TRUE(breaker.Allow(t));
  breaker.RecordSuccess(t);
  EXPECT_EQ(breaker.state(t), CircuitBreaker::State::kHalfOpen);
  ASSERT_TRUE(breaker.Allow(t + kMs));
  breaker.RecordSuccess(t + kMs);
  EXPECT_EQ(breaker.state(t + kMs), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, DisabledBreakerNeverOpens) {
  CircuitBreaker breaker(CircuitBreakerConfig::Disabled());
  for (int i = 0; i < 100; ++i) breaker.RecordFailure(i);
  EXPECT_TRUE(breaker.Allow(1000));
  EXPECT_EQ(breaker.state(1000), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_EQ(CircuitStateToString(CircuitBreaker::State::kClosed), "closed");
  EXPECT_EQ(CircuitStateToString(CircuitBreaker::State::kOpen), "open");
  EXPECT_EQ(CircuitStateToString(CircuitBreaker::State::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace netmark::federation
