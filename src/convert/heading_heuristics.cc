#include "convert/heading_heuristics.h"

#include <cctype>

#include "common/string_util.h"

namespace netmark::convert {

namespace {

bool IsNumberedHeading(std::string_view line) {
  // "3. Title", "2.1 Title", "IV. Title", "A. Title"
  size_t i = 0;
  bool saw_digit = false;
  while (i < line.size() &&
         (std::isdigit(static_cast<unsigned char>(line[i])) || line[i] == '.')) {
    if (std::isdigit(static_cast<unsigned char>(line[i]))) saw_digit = true;
    ++i;
  }
  if (saw_digit && i > 0 && i < line.size() && line[i] == ' ') return true;
  // Roman numeral or single letter followed by a dot.
  size_t roman = 0;
  while (roman < line.size() && std::string_view("IVXLC").find(line[roman]) !=
                                    std::string_view::npos) {
    ++roman;
  }
  if (roman > 0 && roman < line.size() && line[roman] == '.') return true;
  if (line.size() > 2 && std::isupper(static_cast<unsigned char>(line[0])) &&
      line[1] == '.' && line[2] == ' ') {
    return true;
  }
  return false;
}

bool IsAllCaps(std::string_view line) {
  bool saw_letter = false;
  for (char c : line) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) saw_letter = true;
  }
  return saw_letter;
}

bool IsTitleCase(std::string_view line) {
  // Every word of >= 4 chars starts with a capital; at most 8 words.
  int words = 0;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) break;
    size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    std::string_view word = line.substr(start, i - start);
    ++words;
    if (words > 8) return false;
    if (word.size() >= 4 && !std::isupper(static_cast<unsigned char>(word[0]))) {
      return false;
    }
  }
  return words > 0;
}

}  // namespace

bool LooksLikeHeading(std::string_view raw) {
  std::string_view line = netmark::TrimView(raw);
  if (line.empty() || line.size() > 70) return false;
  // Headings do not end sentences.
  char last = line.back();
  if (last == '.' || last == ',' || last == ';' || last == '!' || last == '?') {
    // ...unless the whole line is a numbered label like "3." (rare; reject).
    return false;
  }
  if (IsNumberedHeading(line)) return true;
  if (IsAllCaps(line)) return true;
  // Title Case alone is weak; require it to also be short.
  if (line.size() <= 48 && IsTitleCase(line)) return true;
  return false;
}

std::vector<std::string> SplitParagraphs(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  for (const std::string& raw : netmark::Split(text, '\n')) {
    std::string_view line = netmark::TrimView(raw);
    if (line.empty()) {
      if (!current.empty()) {
        out.push_back(std::move(current));
        current.clear();
      }
      continue;
    }
    if (!current.empty()) current += ' ';
    current += line;
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

}  // namespace netmark::convert
