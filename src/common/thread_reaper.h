// ThreadReaper: owns short-lived worker threads whose results may be
// abandoned by their spawner.
//
// The federation router's concurrent fan-out must return at its deadline
// even while a slow source is still executing. Detaching such threads is
// unsafe (they may outlive main and race static destruction), so workers are
// parked here instead: finished threads are joined opportunistically on the
// next Launch, and the destructor joins whatever is left. Callers guarantee
// every launched function terminates eventually (all source calls are
// deadline-bounded), so destruction is bounded too.

#ifndef NETMARK_COMMON_THREAD_REAPER_H_
#define NETMARK_COMMON_THREAD_REAPER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace netmark {

/// \brief Join-on-destruction pool for abandonable worker threads.
class ThreadReaper {
 public:
  ThreadReaper() = default;
  ThreadReaper(const ThreadReaper&) = delete;
  ThreadReaper& operator=(const ThreadReaper&) = delete;

  ~ThreadReaper() { JoinAll(); }

  /// Starts `fn` on a new thread. Also reaps any already-finished threads.
  void Launch(std::function<void()> fn) {
    auto finished = std::make_shared<std::atomic<bool>>(false);
    std::thread t([fn = std::move(fn), finished] {
      fn();
      finished->store(true, std::memory_order_release);
    });
    std::lock_guard<std::mutex> lock(mu_);
    ReapLocked();
    threads_.emplace_back(std::move(t), std::move(finished));
  }

  /// Joins every thread that has already finished; never blocks on live ones.
  void Reap() {
    std::lock_guard<std::mutex> lock(mu_);
    ReapLocked();
  }

  /// Blocks until every launched thread has terminated.
  void JoinAll() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [thread, finished] : threads_) {
      if (thread.joinable()) thread.join();
    }
    threads_.clear();
  }

  size_t live_threads() const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t live = 0;
    for (const auto& [thread, finished] : threads_) {
      if (!finished->load(std::memory_order_acquire)) ++live;
    }
    return live;
  }

 private:
  void ReapLocked() {
    for (auto it = threads_.begin(); it != threads_.end();) {
      if (it->second->load(std::memory_order_acquire)) {
        if (it->first.joinable()) it->first.join();
        it = threads_.erase(it);
      } else {
        ++it;
      }
    }
  }

  mutable std::mutex mu_;
  std::vector<std::pair<std::thread, std::shared_ptr<std::atomic<bool>>>> threads_;
};

}  // namespace netmark

#endif  // NETMARK_COMMON_THREAD_REAPER_H_
