// Arena-based XML document object model.
//
// Nodes live in a flat arena owned by the Document and are addressed by
// NodeId. The tree is linked with parent / first-child / next-sibling /
// prev-sibling pointers — deliberately the same navigation structure the
// NETMARK XML Store persists as PARENTROWID / SIBLINGID columns (paper
// Fig 5), so an in-memory walk and a stored walk are step-for-step
// equivalent.

#ifndef NETMARK_XML_DOM_H_
#define NETMARK_XML_DOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace netmark::xml {

/// Index of a node within its Document's arena.
using NodeId = int32_t;
/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = -1;

/// Structural kind of a DOM node.
enum class NodeKind : uint8_t {
  kDocument,               ///< The (single) document root.
  kElement,                ///< `<name attr="...">...</name>`
  kText,                   ///< Character data.
  kComment,                ///< `<!-- ... -->`
  kCData,                  ///< `<![CDATA[ ... ]]>`
  kProcessingInstruction,  ///< `<?name data?>`
};

std::string_view NodeKindToString(NodeKind kind);

/// One element attribute.
struct Attribute {
  std::string name;
  std::string value;
};

/// \brief A parsed XML/HTML document: a node arena plus tree links.
///
/// All mutation goes through the Document so links stay consistent. NodeIds
/// are stable for the lifetime of the Document (nodes are never compacted).
class Document {
 public:
  /// Creates an empty document containing only the document root node.
  Document();

  Document(const Document&) = default;
  Document(Document&&) noexcept = default;
  Document& operator=(const Document&) = default;
  Document& operator=(Document&&) noexcept = default;

  /// The document root (kind kDocument); id 0 by construction.
  NodeId root() const { return 0; }
  /// Number of nodes in the arena (including the root).
  size_t size() const { return nodes_.size(); }

  // --- Node construction (detached; attach with AppendChild etc.) ---
  NodeId CreateElement(std::string name);
  NodeId CreateText(std::string data);
  NodeId CreateComment(std::string data);
  NodeId CreateCData(std::string data);
  NodeId CreateProcessingInstruction(std::string name, std::string data);

  // --- Tree mutation ---
  /// Appends `child` (which must be detached) as the last child of `parent`.
  void AppendChild(NodeId parent, NodeId child);
  /// Inserts detached `child` before `before` (a child of `parent`).
  void InsertBefore(NodeId parent, NodeId child, NodeId before);
  /// Unlinks `node` from its parent; the node and its subtree stay alive
  /// (the arena never frees) but become unreachable from the root.
  void Detach(NodeId node);

  // --- Accessors ---
  NodeKind kind(NodeId id) const { return nodes_[id].kind; }
  /// Element/PI name; empty for other kinds.
  const std::string& name(NodeId id) const { return nodes_[id].name; }
  /// Text/comment/CDATA/PI payload; empty for elements.
  const std::string& data(NodeId id) const { return nodes_[id].data; }
  void set_data(NodeId id, std::string data) { nodes_[id].data = std::move(data); }
  void set_name(NodeId id, std::string name) { nodes_[id].name = std::move(name); }

  NodeId parent(NodeId id) const { return nodes_[id].parent; }
  NodeId first_child(NodeId id) const { return nodes_[id].first_child; }
  NodeId last_child(NodeId id) const { return nodes_[id].last_child; }
  NodeId next_sibling(NodeId id) const { return nodes_[id].next_sibling; }
  NodeId prev_sibling(NodeId id) const { return nodes_[id].prev_sibling; }

  const std::vector<Attribute>& attributes(NodeId id) const {
    return nodes_[id].attributes;
  }
  /// Appends an attribute (does not deduplicate).
  void AddAttribute(NodeId id, std::string name, std::string value);
  /// First attribute value with the given (case-sensitive) name, or "".
  std::string_view GetAttribute(NodeId id, std::string_view name) const;
  bool HasAttribute(NodeId id, std::string_view name) const;
  /// Sets (replacing if present) an attribute.
  void SetAttribute(NodeId id, std::string_view name, std::string value);

  // --- Convenience queries ---
  /// All children of `id`, in order.
  std::vector<NodeId> Children(NodeId id) const;
  /// Child elements only.
  std::vector<NodeId> ChildElements(NodeId id) const;
  /// First child element with the given name (case-sensitive), or kInvalidNode.
  NodeId FirstChildElement(NodeId id, std::string_view name) const;
  /// Root element of the document (first element child of the root).
  NodeId DocumentElement() const;
  /// Concatenated text of all descendant text/CDATA nodes.
  std::string TextContent(NodeId id) const;
  /// Pre-order walk of the subtree rooted at `id` (inclusive).
  std::vector<NodeId> Descendants(NodeId id) const;
  /// Number of nodes in the subtree rooted at `id` (inclusive).
  size_t SubtreeSize(NodeId id) const;
  /// Depth of `id` (root is depth 0).
  int Depth(NodeId id) const;

  /// Deep-copies the subtree rooted at `src` in `from` into this document,
  /// returning the new (detached) subtree root.
  NodeId ImportSubtree(const Document& from, NodeId src);

  /// Structural equality of two subtrees (kind, name, data, attributes,
  /// children — recursively).
  static bool SubtreeEquals(const Document& a, NodeId ida, const Document& b,
                            NodeId idb);

 private:
  struct Node {
    NodeKind kind = NodeKind::kDocument;
    std::string name;
    std::string data;
    std::vector<Attribute> attributes;
    NodeId parent = kInvalidNode;
    NodeId first_child = kInvalidNode;
    NodeId last_child = kInvalidNode;
    NodeId next_sibling = kInvalidNode;
    NodeId prev_sibling = kInvalidNode;
  };

  NodeId NewNode(NodeKind kind, std::string name, std::string data);

  std::vector<Node> nodes_;
};

}  // namespace netmark::xml

#endif  // NETMARK_XML_DOM_H_
