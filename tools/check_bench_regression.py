#!/usr/bin/env python3
"""Bench-regression gate: compares the p50 insert latency in a fresh
BENCH_fig3_ingestion.json against the previous run's artifact.

usage: check_bench_regression.py BASELINE_JSON CURRENT_JSON [--threshold PCT]

Exit codes: 0 = ok (or no comparable baseline), 1 = regression, 2 = usage.

Tolerant by design: a missing baseline file, an empty file, a baseline
without the metric, or a baseline produced under a different storage
configuration (no/mismatched "config" marker line) all SKIP the check with a
note instead of failing — the first run after a bench-format change must not
brick CI. Only a like-for-like comparison that exceeds the threshold fails.
"""

import json
import sys

METRIC = "netmark_ingest_insert_micros"


def load_lines(path):
    """Parses a JSONL file; returns [] if the file is missing/unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            out = []
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    pass  # half-written tail line; ignore
            return out
    except OSError:
        return []


def find_config(lines):
    for obj in lines:
        if "config" in obj:
            return obj["config"]
    return None


def find_p50(lines):
    for obj in lines:
        if obj.get("metric") == METRIC and "p50" in obj:
            return float(obj["p50"])
    return None


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_path, current_path = argv[1], argv[2]
    threshold = 15.0
    if len(argv) >= 5 and argv[3] == "--threshold":
        threshold = float(argv[4])

    current = load_lines(current_path)
    if not current:
        print(f"bench-regression: no current results at {current_path}; skipping")
        return 0
    baseline = load_lines(baseline_path)
    if not baseline:
        print(f"bench-regression: no baseline at {baseline_path}; skipping "
              "(first run or expired artifact)")
        return 0

    base_config, cur_config = find_config(baseline), find_config(current)
    if base_config != cur_config:
        print(f"bench-regression: baseline config {base_config!r} != current "
              f"{cur_config!r}; storage setup changed, skipping comparison")
        return 0

    base_p50, cur_p50 = find_p50(baseline), find_p50(current)
    if base_p50 is None or cur_p50 is None:
        print(f"bench-regression: metric {METRIC} missing "
              f"(baseline={base_p50}, current={cur_p50}); skipping")
        return 0
    if base_p50 <= 0:
        print(f"bench-regression: degenerate baseline p50={base_p50}; skipping")
        return 0

    delta_pct = (cur_p50 - base_p50) / base_p50 * 100.0
    print(f"bench-regression: {METRIC} p50 baseline={base_p50:.1f}us "
          f"current={cur_p50:.1f}us delta={delta_pct:+.1f}% "
          f"(threshold +{threshold:.0f}%)")
    if delta_pct > threshold:
        print(f"bench-regression: FAIL — p50 insert latency regressed "
              f"{delta_pct:.1f}% > {threshold:.0f}%", file=sys.stderr)
        return 1
    print("bench-regression: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
