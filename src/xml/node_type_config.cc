#include "xml/node_type_config.h"

#include "common/string_util.h"

namespace netmark::xml {

std::string_view NetmarkNodeTypeToString(NetmarkNodeType t) {
  switch (t) {
    case NetmarkNodeType::kElement:
      return "ELEMENT";
    case NetmarkNodeType::kText:
      return "TEXT";
    case NetmarkNodeType::kContext:
      return "CONTEXT";
    case NetmarkNodeType::kIntense:
      return "INTENSE";
    case NetmarkNodeType::kSimulation:
      return "SIMULATION";
  }
  return "?";
}

Result<NetmarkNodeType> NetmarkNodeTypeFromInt(int32_t v) {
  if (v < 1 || v > 5) {
    return Status::Corruption(StringPrintf("bad NODETYPE value %d", v));
  }
  return static_cast<NetmarkNodeType>(v);
}

NodeTypeConfig NodeTypeConfig::Default() {
  NodeTypeConfig c;
  for (const char* t : {"h1", "h2", "h3", "h4", "h5", "h6", "title", "context",
                        "heading", "caption"}) {
    c.context_tags_.insert(t);
  }
  for (const char* t : {"b", "strong", "em", "i", "u", "mark", "intense"}) {
    c.intense_tags_.insert(t);
  }
  for (const char* t : {"netmark:meta", "netmark:file", "netmark:provenance",
                        "simulation"}) {
    c.simulation_tags_.insert(t);
  }
  return c;
}

Result<NodeTypeConfig> NodeTypeConfig::FromConfig(const Config& config) {
  NodeTypeConfig defaults = Default();
  NodeTypeConfig out;
  auto load = [&](std::string_view section,
                  std::set<std::string, std::less<>>* target,
                  const std::set<std::string, std::less<>>& fallback) {
    if (!config.HasSection(section)) {
      *target = fallback;
      return;
    }
    auto tags = config.Get(section, "tags");
    if (!tags.ok()) {
      *target = fallback;
      return;
    }
    for (const std::string& tag : SplitAndTrim(*tags, ',')) {
      target->insert(ToLower(tag));
    }
  };
  load("context", &out.context_tags_, defaults.context_tags_);
  load("intense", &out.intense_tags_, defaults.intense_tags_);
  load("simulation", &out.simulation_tags_, defaults.simulation_tags_);
  return out;
}

NetmarkNodeType NodeTypeConfig::Classify(const Document& doc, NodeId node) const {
  switch (doc.kind(node)) {
    case NodeKind::kText:
    case NodeKind::kCData:
      return NetmarkNodeType::kText;
    case NodeKind::kElement:
      return ClassifyElementName(doc.name(node));
    default:
      return NetmarkNodeType::kElement;
  }
}

NetmarkNodeType NodeTypeConfig::ClassifyElementName(std::string_view name) const {
  std::string lower = ToLower(name);
  if (context_tags_.count(lower) != 0) return NetmarkNodeType::kContext;
  if (intense_tags_.count(lower) != 0) return NetmarkNodeType::kIntense;
  if (simulation_tags_.count(lower) != 0) return NetmarkNodeType::kSimulation;
  return NetmarkNodeType::kElement;
}

bool NodeTypeConfig::IsContextTag(std::string_view name) const {
  return context_tags_.count(ToLower(name)) != 0;
}
bool NodeTypeConfig::IsIntenseTag(std::string_view name) const {
  return intense_tags_.count(ToLower(name)) != 0;
}
bool NodeTypeConfig::IsSimulationTag(std::string_view name) const {
  return simulation_tags_.count(ToLower(name)) != 0;
}

void NodeTypeConfig::AddContextTag(std::string tag) {
  context_tags_.insert(ToLower(tag));
}
void NodeTypeConfig::AddIntenseTag(std::string tag) {
  intense_tags_.insert(ToLower(tag));
}
void NodeTypeConfig::AddSimulationTag(std::string tag) {
  simulation_tags_.insert(ToLower(tag));
}

}  // namespace netmark::xml
