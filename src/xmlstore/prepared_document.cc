#include "xmlstore/prepared_document.h"

#include "xmlstore/node_record.h"
#include "xmlstore/xml_store.h"

namespace netmark::xmlstore {

PreparedDocument PrepareDocument(const xml::Document& doc, const DocumentInfo& info,
                                 const xml::NodeTypeConfig& node_types) {
  PreparedDocument out;
  out.info = info;

  // Iterative DFS in document order — the same traversal the serial insert
  // path used, so prepared commits are byte-identical to direct inserts.
  struct Frame {
    xml::NodeId dom_node;
    size_t parent;  // index into out.nodes; PreparedNode::kNoParent for top level
  };
  std::vector<Frame> stack;
  {
    // Push top-level children in reverse so they pop in order.
    std::vector<xml::NodeId> kids = doc.Children(doc.root());
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(Frame{*it, PreparedNode::kNoParent});
    }
  }

  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    xml::NodeId n = frame.dom_node;

    PreparedNode node;
    node.parent = frame.parent;
    switch (doc.kind(n)) {
      case xml::NodeKind::kElement:
        node.node_name = doc.name(n);
        node.node_data = EncodeAttributes(doc.attributes(n));
        node.node_type = node_types.Classify(doc, n);
        break;
      case xml::NodeKind::kText:
        node.node_data = doc.data(n);
        node.node_type = xml::NetmarkNodeType::kText;
        break;
      case xml::NodeKind::kCData:
        node.node_name = kCDataName;
        node.node_data = doc.data(n);
        node.node_type = xml::NetmarkNodeType::kText;
        break;
      case xml::NodeKind::kComment:
        node.node_name = kCommentName;
        node.node_data = doc.data(n);
        node.node_type = xml::NetmarkNodeType::kElement;
        break;
      case xml::NodeKind::kProcessingInstruction:
        node.node_name = std::string(1, kPiPrefix) + doc.name(n);
        node.node_data = doc.data(n);
        node.node_type = xml::NetmarkNodeType::kElement;
        break;
      case xml::NodeKind::kDocument:
        continue;  // never stored
    }
    if (node.is_text()) node.postings = textindex::PreparePostings(node.node_data);

    size_t my_index = out.nodes.size();
    out.nodes.push_back(std::move(node));

    // Descend.
    std::vector<xml::NodeId> kids = doc.Children(n);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(Frame{*it, my_index});
    }
  }
  return out;
}

}  // namespace netmark::xmlstore
