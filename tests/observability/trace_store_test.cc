// TraceStore retention: head sampling, tail keep rules (error/slow), the
// two-ring eviction policy, counters, and concurrent record-vs-scrape
// (the latter is what the TSan build watches).

#include "observability/trace_store.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "observability/trace_context.h"

namespace netmark::observability {
namespace {

std::shared_ptr<Trace> MakeTrace(const std::string& id,
                                 const std::string& root = "xdb",
                                 bool ok = true) {
  auto trace = std::make_shared<Trace>();
  trace->set_trace_id(id);
  int span = trace->StartSpan(root);
  trace->EndSpan(span, ok, ok ? "" : "boom");
  return trace;
}

TEST(TraceStoreTest, HeadSampledTraceIsRetainedAndFindable) {
  TraceStore store;
  EXPECT_TRUE(store.Record(MakeTrace("aa11"), /*head_sampled=*/true,
                           /*error=*/false));
  EXPECT_EQ(store.size(), 1u);
  ASSERT_NE(store.Find("aa11"), nullptr);
  EXPECT_EQ(store.Find("aa11")->trace_id(), "aa11");
  EXPECT_EQ(store.Find("missing"), nullptr);

  std::vector<TraceSummary> list = store.List();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].id, "aa11");
  EXPECT_EQ(list[0].root, "xdb");
  EXPECT_TRUE(list[0].ok);
}

TEST(TraceStoreTest, RejectsTracesWithoutId) {
  TraceStore store;
  auto trace = std::make_shared<Trace>();  // no trace id assigned
  int span = trace->StartSpan("xdb");
  trace->EndSpan(span);
  EXPECT_FALSE(store.Record(trace, /*head_sampled=*/true, /*error=*/false));
  EXPECT_EQ(store.size(), 0u);
}

TEST(TraceStoreTest, TailRulesKeepErrorsDespiteHeadRoll) {
  TraceStoreOptions options;
  options.sample_rate = 0.0;  // the head roll always says no
  TraceStore store(options);
  EXPECT_FALSE(store.ShouldSample());
  // Healthy + unsampled: dropped.
  EXPECT_FALSE(store.Record(MakeTrace("aa"), /*head_sampled=*/false,
                            /*error=*/false));
  // Error: retained regardless.
  EXPECT_TRUE(store.Record(MakeTrace("bb", "xdb", /*ok=*/false),
                           /*head_sampled=*/false, /*error=*/false));
  // 5xx marked by the caller: retained even though the root span is ok.
  EXPECT_TRUE(store.Record(MakeTrace("cc"), /*head_sampled=*/false,
                           /*error=*/true));
  EXPECT_EQ(store.size(), 2u);
  std::vector<TraceSummary> list = store.List();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_TRUE(list[0].error);
  EXPECT_TRUE(list[1].error);
}

TEST(TraceStoreTest, ImportantRingSurvivesHealthyBurst) {
  TraceStoreOptions options;
  options.capacity = 4;  // tiny recent ring
  TraceStore store(options);
  // One error trace, then a burst of healthy head-sampled traffic far
  // beyond the recent ring's capacity.
  EXPECT_TRUE(store.Record(MakeTrace("err0", "xdb", /*ok=*/false),
                           /*head_sampled=*/false, /*error=*/false));
  for (int i = 0; i < 50; ++i) {
    store.Record(MakeTrace("ok" + std::to_string(i)), /*head_sampled=*/true,
                 /*error=*/false);
  }
  // The healthy burst evicted its own kind, not the error trace.
  EXPECT_NE(store.Find("err0"), nullptr);
  EXPECT_EQ(store.size(), 1u + options.capacity);
  // Listing is newest-first with the important ring leading.
  EXPECT_EQ(store.List().front().id, "err0");
}

TEST(TraceStoreTest, EvictionsAndDropsCount) {
  TraceStoreOptions options;
  options.capacity = 2;
  TraceStore store(options);
  MetricsRegistry registry;
  store.BindMetrics(&registry);
  for (int i = 0; i < 5; ++i) {
    store.Record(MakeTrace("t" + std::to_string(i)), /*head_sampled=*/true,
                 /*error=*/false);
  }
  store.Record(MakeTrace("unsampled"), /*head_sampled=*/false,
               /*error=*/false);
  EXPECT_EQ(registry.GetCounter("netmark_traces_retained_total")->value(), 5u);
  // 3 ring evictions + 1 head-roll rejection.
  EXPECT_EQ(registry.GetCounter("netmark_traces_dropped_total")->value(), 4u);
}

TEST(TraceStoreTest, SampleRateZeroAndOne) {
  TraceStoreOptions options;
  options.sample_rate = 1.0;
  TraceStore store(options);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(store.ShouldSample());
  options.sample_rate = 0.0;
  store.Configure(options);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(store.ShouldSample());
}

TEST(TraceStoreTest, FractionalSampleRateIsRoughlyHonored) {
  TraceStoreOptions options;
  options.sample_rate = 0.2;
  options.rng_seed = 42;  // deterministic roll sequence
  TraceStore store(options);
  int heads = 0;
  for (int i = 0; i < 1000; ++i) {
    if (store.ShouldSample()) ++heads;
  }
  EXPECT_GT(heads, 100);
  EXPECT_LT(heads, 320);
}

TEST(TraceStoreTest, SlowKeepRuleUsesRootDuration) {
  TraceStoreOptions options;
  options.sample_rate = 0.0;
  options.slow_keep_ms = 1;  // 1ms threshold
  TraceStore store(options);
  // Synthesize a 5ms root span via AddCompletedSpan (backdated).
  auto slow = std::make_shared<Trace>();
  slow->set_trace_id("slow1");
  slow->AddCompletedSpan("xdb", -1, 5000);
  EXPECT_TRUE(store.Record(slow, /*head_sampled=*/false, /*error=*/false));
  EXPECT_TRUE(store.List().front().slow);
  // A fast trace under the same regime is dropped.
  EXPECT_FALSE(store.Record(MakeTrace("fast1"), /*head_sampled=*/false,
                            /*error=*/false));
}

TEST(TraceStoreTest, ConcurrentRecordListFind) {
  // Serving workers record while /traces scrapes — run both sides hard;
  // the TSan job turns any locking mistake into a failure here.
  TraceStoreOptions options;
  options.capacity = 16;
  options.important_capacity = 8;
  TraceStore store(options);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 500;
  std::vector<std::thread> pool;
  for (int w = 0; w < kWriters; ++w) {
    pool.emplace_back([&store, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        bool error = (i % 7) == 0;
        store.Record(MakeTrace(GenerateTraceId(), "xdb", !error),
                     store.ShouldSample(), error);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    pool.emplace_back([&store] {
      for (int i = 0; i < 500; ++i) {
        std::vector<TraceSummary> list = store.List();
        if (!list.empty()) store.Find(list.front().id);
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_LE(store.size(), options.capacity + options.important_capacity);
  EXPECT_GT(store.size(), 0u);
}

}  // namespace
}  // namespace netmark::observability
