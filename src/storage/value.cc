#include "storage/value.h"

namespace netmark::storage {

std::string_view ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT";
    case ValueType::kDouble:
      return "REAL";
    case ValueType::kString:
      return "TEXT";
  }
  return "?";
}

netmark::Result<ValueType> ValueTypeFromString(std::string_view s) {
  if (s == "NULL") return ValueType::kNull;
  if (s == "INT") return ValueType::kInt64;
  if (s == "REAL") return ValueType::kDouble;
  if (s == "TEXT") return ValueType::kString;
  return netmark::Status::ParseError("unknown value type: " + std::string(s));
}

int Value::Compare(const Value& other) const {
  const ValueType ta = type();
  const ValueType tb = other.type();
  // NULL sorts first.
  if (ta == ValueType::kNull || tb == ValueType::kNull) {
    if (ta == tb) return 0;
    return ta == ValueType::kNull ? -1 : 1;
  }
  const bool numeric_a = ta == ValueType::kInt64 || ta == ValueType::kDouble;
  const bool numeric_b = tb == ValueType::kInt64 || tb == ValueType::kDouble;
  if (numeric_a && numeric_b) {
    if (ta == ValueType::kInt64 && tb == ValueType::kInt64) {
      int64_t a = AsInt();
      int64_t b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = ta == ValueType::kInt64 ? static_cast<double>(AsInt()) : AsReal();
    double b = tb == ValueType::kInt64 ? static_cast<double>(other.AsInt())
                                       : other.AsReal();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (numeric_a != numeric_b) return numeric_a ? -1 : 1;  // numbers before strings
  const std::string& a = AsStr();
  const std::string& b = other.AsStr();
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble:
      return std::to_string(AsReal());
    case ValueType::kString:
      return "'" + AsStr() + "'";
  }
  return "?";
}

}  // namespace netmark::storage
