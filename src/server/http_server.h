// HTTP/1.1 server over POSIX sockets: listener thread + fixed worker pool.
//
// Connection model (docs/serving.md): a single accept thread polls the
// listen socket and pushes accepted connections into a bounded queue; when
// the queue is full the connection is shed immediately with a 503 instead of
// stacking up behind slow requests. N pool workers pop connections and serve
// them with HTTP/1.1 keep-alive — many requests per connection, bounded by
// `max_requests_per_connection`, an idle timeout between requests, and a
// read timeout mid-request (a stalled client can no longer block the accept
// path, and slow-loris bodies get cut off). Stop() drains gracefully:
// accepting stops, queued connections are served, in-flight requests finish,
// and draining responses carry `Connection: close`.
//
// The tier stays lean — NETMARK's thesis — but the front door now overlaps
// in-flight queries, which the snapshot-isolated read path (XmlStore::
// BeginRead) makes safe end-to-end.

#ifndef NETMARK_SERVER_HTTP_SERVER_H_
#define NETMARK_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/work_queue.h"
#include "observability/metrics.h"
#include "server/http_message.h"

namespace netmark::server {

/// Request handler: pure function of the request. Must be thread-safe — the
/// pool invokes it from `worker_threads` threads concurrently.
using Handler = std::function<HttpResponse(const HttpRequest&)>;

/// Serving knobs. The defaults suit loopback tests; a production front end
/// would raise the pool and queue sizes.
struct HttpServerOptions {
  /// Pool workers serving connections (>= 1).
  int worker_threads = 4;
  /// Accepted connections waiting for a worker before 503 shedding kicks in.
  size_t accept_queue_capacity = 64;
  /// Keep-alive requests served per connection before the server closes it
  /// (bounds per-client resource capture; 0 = one request, Connection:
  /// close semantics).
  int max_requests_per_connection = 100;
  /// How long a keep-alive connection may sit idle between requests (ms)
  /// before the server reaps it quietly.
  int idle_timeout_ms = 5000;
  /// Budget for reading one request once its first byte arrived (ms); on
  /// expiry the connection is closed and netmark_http_read_timeouts_total
  /// bumps — a stalled client costs one worker at most this long.
  int read_timeout_ms = 5000;
};

/// \brief Loopback HTTP server with a fixed worker pool.
class HttpServer {
 public:
  explicit HttpServer(Handler handler, HttpServerOptions options = {});
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept thread
  /// plus the worker pool.
  netmark::Status Start(uint16_t port = 0);
  /// Graceful drain: stops accepting, serves already-queued connections,
  /// lets in-flight requests finish, then joins all threads. Idempotent.
  void Stop();

  /// Re-homes the server's metrics (netmark_http_* pool/queue/shed/timeout
  /// series) onto `registry`. Call before Start.
  void BindMetrics(observability::MetricsRegistry* registry);

  /// Bound port (valid after Start).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

  const HttpServerOptions& options() const { return options_; }

  // --- Counters (tests/benchmarks; mirrored as metrics) ---
  uint64_t requests_served() const { return requests_served_.load(); }
  uint64_t connections_accepted() const { return connections_accepted_.load(); }
  uint64_t connections_shed() const { return connections_shed_.load(); }
  uint64_t accept_errors() const { return accept_errors_.load(); }
  uint64_t read_timeouts() const { return read_timeouts_.load(); }
  uint64_t keepalive_reuses() const { return keepalive_reuses_.load(); }
  int64_t active_connections() const { return active_connections_.load(); }

 private:
  /// One accepted connection queued for a worker; the accept timestamp
  /// feeds the queue_wait trace span.
  struct QueuedConn {
    int fd = -1;
    int64_t accepted_micros = 0;
  };

  void AcceptLoop();
  void WorkerLoop();
  /// Serves one connection's keep-alive request loop, then closes it.
  void ServeConnection(int fd, int64_t queue_wait_micros);
  void BindHandles();

  Handler handler_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  /// Set at the start of Stop(): responses switch to Connection: close and
  /// idle waits cut short so the drain completes promptly.
  std::atomic<bool> draining_{false};

  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_shed_{0};
  std::atomic<uint64_t> accept_errors_{0};
  std::atomic<uint64_t> read_timeouts_{0};
  std::atomic<uint64_t> keepalive_reuses_{0};
  std::atomic<int64_t> active_connections_{0};
  /// Mirrors queue_->size() without touching the queue from gauge callbacks
  /// (the queue object is recreated per Start).
  std::atomic<int64_t> queue_depth_{0};

  std::unique_ptr<WorkQueue<QueuedConn>> queue_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  /// Private fallback registry (BindMetrics re-homes onto the facade's).
  std::unique_ptr<observability::MetricsRegistry> owned_metrics_;
  observability::MetricsRegistry* metrics_ = nullptr;
  struct MetricHandles {
    observability::Counter* requests = nullptr;
    observability::Counter* shed = nullptr;
    observability::Counter* accept_errors = nullptr;
    observability::Counter* read_timeouts = nullptr;
    observability::Counter* keepalive_reuses = nullptr;
  } handles_;
};

}  // namespace netmark::server

#endif  // NETMARK_SERVER_HTTP_SERVER_H_
