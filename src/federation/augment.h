// Query augmentation helpers: client-side section extraction over raw
// document markup fetched from capability-limited sources.

#ifndef NETMARK_FEDERATION_AUGMENT_H_
#define NETMARK_FEDERATION_AUGMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"
#include "xml/node_type_config.h"

namespace netmark::federation {

/// A section located in a fetched document (DOM-level, no store involved).
struct DomSection {
  std::string heading;
  std::string text;    ///< content-run text (up to the next heading sibling)
  std::string markup;  ///< serialized content-run markup
};

/// \brief Finds every CONTEXT-classified element in `doc` and assembles its
/// section (following siblings until the next CONTEXT sibling) — the same
/// walk the XML store performs, but over a transient DOM.
std::vector<DomSection> ExtractSections(
    const xml::Document& doc,
    const xml::NodeTypeConfig& node_types = xml::NodeTypeConfig::Default());

/// \brief Parses raw markup then extracts sections; tolerant of HTML.
netmark::Result<std::vector<DomSection>> ExtractSectionsFromMarkup(
    std::string_view markup,
    const xml::NodeTypeConfig& node_types = xml::NodeTypeConfig::Default());

}  // namespace netmark::federation

#endif  // NETMARK_FEDERATION_AUGMENT_H_
