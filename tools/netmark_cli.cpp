// netmark — the command-line front end.
//
//   netmark ingest  --data DIR FILE...              ingest documents
//   netmark ls      --data DIR                      list stored documents
//   netmark get     --data DIR DOCID                print reconstructed XML
//   netmark rm      --data DIR DOCID                delete a document
//   netmark query   --data DIR QUERY [--xslt FILE]  run an XDB query
//   netmark serve   --data DIR [--port N] [--drop DIR] [--databanks FILE]
//                                                   run the HTTP server
//   netmark remote  --host H --port P QUERY         query a running server
//   netmark traces  --host H --port P [--id ID]     list / render retained traces
//
// QUERY is an XDB query string, e.g. "context=Budget&content=engine".

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/temp_dir.h"
#include "core/netmark.h"
#include "storage/page.h"
#include "federation/databank_config.h"
#include "server/http_client.h"
#include "server/source_factory.h"
#include "workload/corpus.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace {

using namespace netmark;

int Fail(const std::string& message) {
  std::fprintf(stderr, "netmark: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  netmark ingest --data DIR FILE...\n"
               "  netmark ls     --data DIR\n"
               "  netmark get    --data DIR DOCID\n"
               "  netmark rm     --data DIR DOCID\n"
               "  netmark query  --data DIR QUERY [--xslt FILE]\n"
               "  netmark serve  --data DIR [--port N] [--drop DIR] "
               "[--databanks FILE] [--config FILE]\n"
               "  netmark remote --host H --port P QUERY\n"
               "  netmark traces --host H --port P [--id ID]\n"
               "                 list retained traces; --id renders one span\n"
               "                 tree as an indented flame view\n"
               "  netmark torture-gen    --drop DIR --count N [--seed S]\n"
               "  netmark torture-ingest --data DIR --drop DIR [--workers N]\n"
               "  netmark torture-verify --data DIR --drop DIR "
               "[--allow-quarantine 1]\n"
               "  netmark scrub   --data DIR              CRC-verify every heap page\n"
               "  netmark corrupt --data DIR [--table XML|DOC] [--page N]\n"
               "                  [--offset K]            flip one on-disk byte\n"
               "\n"
               "storage flags (any command taking --data; also the [storage]\n"
               "INI section via --config): --wal on|off, --fsync\n"
               "commit|batch|none, --checkpoint-bytes N; INI-only:\n"
               "page_checksums on|off, scrub_pages_per_sec N,\n"
               "on_fsync_error degrade|abort (docs/durability.md),\n"
               "mvcc_gc_interval_ms N, mvcc_max_retained_versions N\n"
               "(docs/mvcc.md)\n"
               "NETMARK_DISK_FAULT=kind:nth injects a deterministic disk fault\n"
               "(read_eio|write_eio|write_enospc|write_short|write_torn|"
               "fsync_fail)\n"
               "query cache knobs ([query] INI section via --config):\n"
               "cache_enabled on|off, cache_entries N, cache_bytes N,\n"
               "plan_entries N (docs/query_cache.md)\n"
               "tracing knobs ([observability] INI section via --config):\n"
               "trace_sample_rate 0..1, trace_store_capacity N,\n"
               "trace_slow_keep_ms N (docs/observability.md)\n"
               "serving knobs ([server] INI section via --config):\n"
               "reactor epoll|threadpool, worker_threads N,\n"
               "accept_queue_capacity N, max_requests_per_connection N,\n"
               "idle_timeout_ms N, read_timeout_ms N (docs/serving.md)\n");
  return 2;
}

// Minimal flag parsing: --key value pairs plus positional arguments.
struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;
};

Args ParseArgs(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      args.flags[arg.substr(2)] = argv[++i];
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

// Durability knobs, lowest to highest precedence: defaults, the [storage]
// INI section of --config, then direct --wal/--fsync/--checkpoint-bytes
// flags. Resolved BEFORE Netmark::Open — recovery and the fsync policy are
// fixed at open time.
Status ApplyStorageFlags(const Args& args, storage::StorageOptions* storage) {
  auto config_flag = args.flags.find("config");
  if (config_flag != args.flags.end()) {
    NETMARK_ASSIGN_OR_RETURN(Config config, Config::Load(config_flag->second));
    auto wal = config.Get("storage", "wal_enabled");
    if (wal.ok()) storage->wal_enabled = (*wal != "off" && *wal != "false" && *wal != "0");
    auto fsync = config.Get("storage", "wal_fsync");
    if (fsync.ok()) {
      NETMARK_ASSIGN_OR_RETURN(storage->wal_fsync,
                               storage::ParseWalFsyncPolicy(*fsync));
    }
    storage->checkpoint_bytes = static_cast<uint64_t>(config.GetIntOr(
        "storage", "checkpoint_bytes",
        static_cast<int64_t>(storage->checkpoint_bytes)));
    auto checksums = config.Get("storage", "page_checksums");
    if (checksums.ok()) {
      storage->page_checksums =
          (*checksums != "off" && *checksums != "false" && *checksums != "0");
    }
    storage->scrub_pages_per_sec = static_cast<int>(config.GetIntOr(
        "storage", "scrub_pages_per_sec", storage->scrub_pages_per_sec));
    // MVCC version lifecycle (docs/mvcc.md): GC cadence and the per-page
    // retention bound (0 = unlimited; capped readers get SnapshotTooOld).
    storage->mvcc_gc_interval_ms = static_cast<int>(config.GetIntOr(
        "storage", "mvcc_gc_interval_ms", storage->mvcc_gc_interval_ms));
    storage->mvcc_max_retained_versions = static_cast<int>(config.GetIntOr(
        "storage", "mvcc_max_retained_versions",
        storage->mvcc_max_retained_versions));
    auto on_fsync = config.Get("storage", "on_fsync_error");
    if (on_fsync.ok()) {
      if (*on_fsync == "abort") {
        storage->abort_on_fsync_error = true;
      } else if (*on_fsync == "degrade") {
        storage->abort_on_fsync_error = false;
      } else {
        return Status::InvalidArgument(
            "bad [storage] on_fsync_error (want degrade|abort): " + *on_fsync);
      }
    }
  }
  auto wal_flag = args.flags.find("wal");
  if (wal_flag != args.flags.end()) {
    storage->wal_enabled = (wal_flag->second != "off" && wal_flag->second != "false");
  }
  auto fsync_flag = args.flags.find("fsync");
  if (fsync_flag != args.flags.end()) {
    NETMARK_ASSIGN_OR_RETURN(storage->wal_fsync,
                             storage::ParseWalFsyncPolicy(fsync_flag->second));
  }
  auto ckpt_flag = args.flags.find("checkpoint-bytes");
  if (ckpt_flag != args.flags.end()) {
    NETMARK_ASSIGN_OR_RETURN(int64_t bytes, ParseInt64(ckpt_flag->second));
    storage->checkpoint_bytes = static_cast<uint64_t>(bytes);
  }
  return Status::OK();
}

// Read-path cache knobs ([query] INI section via --config): cache_enabled
// on|off, cache_entries / cache_bytes for the result cache, plan_entries for
// the compiled-plan cache. Resolved before Open — the caches are configured
// once, before any traffic (docs/query_cache.md).
Status ApplyQueryFlags(const Args& args, NetmarkOptions* options) {
  auto config_flag = args.flags.find("config");
  if (config_flag == args.flags.end()) return Status::OK();
  NETMARK_ASSIGN_OR_RETURN(Config config, Config::Load(config_flag->second));
  auto enabled = config.Get("query", "cache_enabled");
  if (enabled.ok()) {
    options->query_cache.enabled =
        (*enabled != "off" && *enabled != "false" && *enabled != "0");
  }
  options->query_cache.max_entries = static_cast<size_t>(config.GetIntOr(
      "query", "cache_entries",
      static_cast<int64_t>(options->query_cache.max_entries)));
  options->query_cache.max_bytes = static_cast<size_t>(config.GetIntOr(
      "query", "cache_bytes",
      static_cast<int64_t>(options->query_cache.max_bytes)));
  options->plan_cache.max_entries = static_cast<size_t>(config.GetIntOr(
      "query", "plan_entries",
      static_cast<int64_t>(options->plan_cache.max_entries)));
  options->plan_cache.enabled = options->query_cache.enabled;
  return Status::OK();
}

// Trace sampling / retention knobs ([observability] INI section via
// --config): trace_sample_rate 0..1, trace_store_capacity N,
// trace_slow_keep_ms N. Resolved before Open (docs/observability.md).
Status ApplyObservabilityFlags(const Args& args, NetmarkOptions* options) {
  auto config_flag = args.flags.find("config");
  if (config_flag == args.flags.end()) return Status::OK();
  NETMARK_ASSIGN_OR_RETURN(Config config, Config::Load(config_flag->second));
  auto rate = config.Get("observability", "trace_sample_rate");
  if (rate.ok()) {
    char* end = nullptr;
    double parsed = std::strtod(rate->c_str(), &end);
    if (end == rate->c_str() || *end != '\0' || parsed < 0.0 || parsed > 1.0) {
      return Status::InvalidArgument(
          "bad [observability] trace_sample_rate (want 0..1): " + *rate);
    }
    options->trace_store.sample_rate = parsed;
  }
  options->trace_store.capacity = static_cast<size_t>(config.GetIntOr(
      "observability", "trace_store_capacity",
      static_cast<int64_t>(options->trace_store.capacity)));
  options->trace_store.slow_keep_ms = config.GetIntOr(
      "observability", "trace_slow_keep_ms", options->trace_store.slow_keep_ms);
  return Status::OK();
}

// Serving knobs ([server] INI section via --config): reactor
// epoll|threadpool plus the pool/queue/timeout sizing. Resolved before Open
// so StartServer (serve command, tests through the CLI) picks the
// connection model up without extra plumbing (docs/serving.md).
Status ApplyServerFlags(const Args& args, NetmarkOptions* options) {
  auto config_flag = args.flags.find("config");
  if (config_flag == args.flags.end()) return Status::OK();
  NETMARK_ASSIGN_OR_RETURN(Config config, Config::Load(config_flag->second));
  auto reactor = config.Get("server", "reactor");
  if (reactor.ok()) {
    NETMARK_ASSIGN_OR_RETURN(options->http_server.reactor,
                             server::ParseReactorModel(*reactor));
  }
  server::HttpServerOptions& http = options->http_server;
  http.worker_threads = static_cast<int>(
      config.GetIntOr("server", "worker_threads", http.worker_threads));
  http.accept_queue_capacity = static_cast<size_t>(
      config.GetIntOr("server", "accept_queue_capacity",
                      static_cast<int64_t>(http.accept_queue_capacity)));
  http.max_requests_per_connection = static_cast<int>(
      config.GetIntOr("server", "max_requests_per_connection",
                      http.max_requests_per_connection));
  http.idle_timeout_ms = static_cast<int>(
      config.GetIntOr("server", "idle_timeout_ms", http.idle_timeout_ms));
  http.read_timeout_ms = static_cast<int>(
      config.GetIntOr("server", "read_timeout_ms", http.read_timeout_ms));
  return Status::OK();
}

Result<std::unique_ptr<Netmark>> OpenFromArgs(const Args& args) {
  auto it = args.flags.find("data");
  if (it == args.flags.end()) {
    return Status::InvalidArgument("--data DIR is required");
  }
  NetmarkOptions options;
  options.data_dir = it->second;
  NETMARK_RETURN_NOT_OK(ApplyStorageFlags(args, &options.storage));
  NETMARK_RETURN_NOT_OK(ApplyQueryFlags(args, &options));
  NETMARK_RETURN_NOT_OK(ApplyObservabilityFlags(args, &options));
  NETMARK_RETURN_NOT_OK(ApplyServerFlags(args, &options));
  // NETMARK_DISK_FAULT=kind:nth wraps every storage file in a deterministic
  // fault injector (tools/disk_torture.sh drives this). The Env must outlive
  // the store, so it lives for the remainder of the process.
  static std::unique_ptr<Env> fault_env = MaybeFaultInjectingEnvFromEnvironment();
  if (fault_env != nullptr) options.storage.env = fault_env.get();
  return Netmark::Open(options);
}

int CmdIngest(const Args& args) {
  auto nm = OpenFromArgs(args);
  if (!nm.ok()) return Fail(nm.status().ToString());
  if (args.positional.empty()) return Fail("no files given");
  for (const std::string& file : args.positional) {
    auto id = (*nm)->IngestFile(file);
    if (!id.ok()) return Fail(file + ": " + id.status().ToString());
    std::printf("%s -> doc %lld\n", file.c_str(), static_cast<long long>(*id));
  }
  Status st = (*nm)->store()->Flush();
  if (!st.ok()) return Fail(st.ToString());
  return 0;
}

int CmdLs(const Args& args) {
  auto nm = OpenFromArgs(args);
  if (!nm.ok()) return Fail(nm.status().ToString());
  auto docs = (*nm)->ListDocuments();
  if (!docs.ok()) return Fail(docs.status().ToString());
  std::printf("%6s %10s %s\n", "id", "bytes", "name");
  for (const auto& doc : *docs) {
    std::printf("%6lld %10lld %s\n", static_cast<long long>(doc.doc_id),
                static_cast<long long>(doc.file_size), doc.file_name.c_str());
  }
  return 0;
}

int CmdGet(const Args& args) {
  auto nm = OpenFromArgs(args);
  if (!nm.ok()) return Fail(nm.status().ToString());
  if (args.positional.size() != 1) return Fail("expected one DOCID");
  auto id = ParseInt64(args.positional[0]);
  if (!id.ok()) return Fail("bad document id: " + args.positional[0]);
  auto xml = (*nm)->GetDocumentXml(*id);
  if (!xml.ok()) return Fail(xml.status().ToString());
  std::printf("%s\n", xml->c_str());
  return 0;
}

int CmdRm(const Args& args) {
  auto nm = OpenFromArgs(args);
  if (!nm.ok()) return Fail(nm.status().ToString());
  if (args.positional.size() != 1) return Fail("expected one DOCID");
  auto id = ParseInt64(args.positional[0]);
  if (!id.ok()) return Fail("bad document id: " + args.positional[0]);
  Status st = (*nm)->DeleteDocument(*id);
  if (!st.ok()) return Fail(st.ToString());
  st = (*nm)->store()->Flush();
  if (!st.ok()) return Fail(st.ToString());
  std::printf("deleted doc %lld\n", static_cast<long long>(*id));
  return 0;
}

int CmdQuery(const Args& args) {
  auto nm = OpenFromArgs(args);
  if (!nm.ok()) return Fail(nm.status().ToString());
  if (args.positional.size() != 1) return Fail("expected one QUERY string");
  auto xslt_flag = args.flags.find("xslt");
  if (xslt_flag != args.flags.end()) {
    auto sheet = ReadFile(xslt_flag->second);
    if (!sheet.ok()) return Fail(sheet.status().ToString());
    auto out = (*nm)->QueryAndTransform(args.positional[0], *sheet);
    if (!out.ok()) return Fail(out.status().ToString());
    std::printf("%s\n", out->c_str());
    return 0;
  }
  auto out = (*nm)->QueryToXml(args.positional[0]);
  if (!out.ok()) return Fail(out.status().ToString());
  std::printf("%s\n", out->c_str());
  return 0;
}

int CmdServe(const Args& args) {
  auto nm = OpenFromArgs(args);
  if (!nm.ok()) return Fail(nm.status().ToString());

  // Server INI: [server] log_level / slow_query_ms. Matching env vars
  // (NETMARK_LOG_LEVEL, NETMARK_SLOW_QUERY_MS) always win over the file.
  auto config_flag = args.flags.find("config");
  if (config_flag != args.flags.end()) {
    auto config = Config::Load(config_flag->second);
    if (!config.ok()) return Fail(config.status().ToString());
    auto level = config->Get("server", "log_level");
    if (level.ok() && std::getenv("NETMARK_LOG_LEVEL") == nullptr) {
      Logger::Instance().SetLevel(
          ParseLogLevel(level->c_str(), Logger::Instance().level()));
    }
    int64_t slow_ms = config->GetIntOr("server", "slow_query_ms",
                                       (*nm)->service()->slow_query_ms());
    (*nm)->service()->set_slow_query_ms(slow_ms);
    std::printf("loaded server config from %s (slow_query_ms=%lld)\n",
                config_flag->second.c_str(),
                static_cast<long long>((*nm)->service()->slow_query_ms()));
  }

  auto banks = args.flags.find("databanks");
  if (banks != args.flags.end()) {
    auto text = ReadFile(banks->second);
    if (!text.ok()) return Fail(text.status().ToString());
    auto config = federation::ParseDatabankConfig(*text);
    if (!config.ok()) return Fail(config.status().ToString());
    Status st = federation::ApplyDatabankConfig(
        *config, server::DefaultSourceFactory(), (*nm)->router());
    if (!st.ok()) return Fail(st.ToString());
    std::printf("loaded %zu sources, %zu databanks from %s\n",
                config->sources.size(), config->databanks.size(),
                banks->second.c_str());
  }

  auto drop = args.flags.find("drop");
  if (drop != args.flags.end()) {
    Status st = (*nm)->StartDaemon(drop->second);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("watching drop folder %s\n", drop->second.c_str());
  }

  uint16_t port = 0;
  auto port_flag = args.flags.find("port");
  if (port_flag != args.flags.end()) {
    auto parsed = ParseInt64(port_flag->second);
    if (!parsed.ok() || *parsed < 0 || *parsed > 65535) {
      return Fail("bad --port value");
    }
    port = static_cast<uint16_t>(*parsed);
  }
  Status st = (*nm)->StartServer(port);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("NETMARK serving on http://127.0.0.1:%u  [reactor=%.*s]"
              "  (Ctrl-C to stop)\n",
              (*nm)->server_port(),
              static_cast<int>(
                  server::ReactorModelName((*nm)->http_server_options().reactor)
                      .size()),
              server::ReactorModelName((*nm)->http_server_options().reactor)
                  .data());

  static volatile std::sig_atomic_t stop_requested = 0;
  std::signal(SIGINT, [](int) { stop_requested = 1; });
  std::signal(SIGTERM, [](int) { stop_requested = 1; });
  while (stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("\nshutting down\n");
  (*nm)->StopServer();
  (*nm)->StopDaemon();
  return 0;
}

// --- Crash-torture harness (tools/crash_torture.sh drives these) ---

// Deterministically fills a drop folder with a seeded mixed-format corpus.
int CmdTortureGen(const Args& args) {
  auto drop_it = args.flags.find("drop");
  if (drop_it == args.flags.end()) return Fail("--drop DIR is required");
  auto count_it = args.flags.find("count");
  if (count_it == args.flags.end()) return Fail("--count N is required");
  auto count = ParseInt64(count_it->second);
  if (!count.ok() || *count <= 0) return Fail("bad --count value");
  uint64_t seed = 42;
  auto seed_it = args.flags.find("seed");
  if (seed_it != args.flags.end()) {
    auto parsed = ParseInt64(seed_it->second);
    if (!parsed.ok()) return Fail("bad --seed value");
    seed = static_cast<uint64_t>(*parsed);
  }
  std::error_code ec;
  std::filesystem::create_directories(drop_it->second, ec);
  if (ec) return Fail("cannot create drop dir: " + ec.message());
  workload::CorpusGenerator gen(seed);
  for (const workload::GeneratedDoc& doc :
       gen.MixedCorpus(static_cast<size_t>(*count))) {
    // Two-step write: the daemon's stability filter is off during torture
    // (stable_age=0), so a plain write suffices — files land before sweeps.
    Status st = WriteFileAtomic(
        (std::filesystem::path(drop_it->second) / doc.file_name).string(),
        doc.content);
    if (!st.ok()) return Fail(st.ToString());
  }
  std::printf("generated %lld files (seed %llu) into %s\n",
              static_cast<long long>(*count),
              static_cast<unsigned long long>(seed), drop_it->second.c_str());
  return 0;
}

// Sweeps the drop folder until drained. Run under NETMARK_CRASH_POINT /
// NETMARK_CRASH_AFTER this process SIGKILLs itself mid-commit — that is the
// point.
int CmdTortureIngest(const Args& args) {
  auto drop_it = args.flags.find("drop");
  if (drop_it == args.flags.end()) return Fail("--drop DIR is required");
  auto nm = OpenFromArgs(args);
  if (!nm.ok()) return Fail(nm.status().ToString());
  server::DaemonOptions dopts;
  dopts.drop_dir = drop_it->second;
  dopts.stable_age = std::chrono::milliseconds(0);  // take files as-is
  dopts.keep_processed = true;  // processed/ is the ack ledger verify reads
  auto workers_it = args.flags.find("workers");
  if (workers_it != args.flags.end()) {
    auto parsed = ParseInt64(workers_it->second);
    if (!parsed.ok() || *parsed < 0) return Fail("bad --workers value");
    dopts.worker_threads = static_cast<int>(*parsed);
  }
  // Direct daemon, no polling thread: ProcessOnce is synchronous, so kill
  // points fire at deterministic pipeline stages.
  server::IngestionDaemon daemon((*nm)->store(), &(*nm)->converters(), dopts);
  int total = 0;
  for (;;) {
    auto swept = daemon.ProcessOnce();
    if (!swept.ok()) return Fail(swept.status().ToString());
    total += *swept;
    if ((*nm)->store()->degraded()) {
      // An injected write/fsync fault latched the store read-only. Stop
      // sweeping — the daemon defers the remaining files, so the drained
      // check below would spin forever — and report; exit 3 tells
      // disk_torture.sh this was the fail-stop path, not a harness error.
      std::string reason = (*nm)->store()->degraded_reason();
      std::string escaped;
      for (char c : reason) {
        if (static_cast<unsigned char>(c) < 0x20) { escaped += ' '; continue; }
        if (c == '"' || c == '\\') escaped += '\\';
        escaped += c;
      }
      std::printf(
          "{\"ingested\":%d,\"failed\":%llu,\"degraded\":true,"
          "\"degraded_reason\":\"%s\"}\n",
          total, static_cast<unsigned long long>(daemon.files_failed()),
          escaped.c_str());
      return 3;
    }
    bool drained = true;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(drop_it->second, ec)) {
      if (entry.is_regular_file() &&
          entry.path().filename().string()[0] != '.') {
        drained = false;
        break;
      }
    }
    if (drained) break;
  }
  std::printf("{\"ingested\":%d,\"failed\":%llu}\n", total,
              static_cast<unsigned long long>(daemon.files_failed()));
  return 0;
}

// Post-crash referee: reopening the store ran recovery; now every stored
// document must reconstruct, and every acked file (drop/processed) must
// reconstruct byte-identical to a fresh conversion of its source bytes.
int CmdTortureVerify(const Args& args) {
  auto drop_it = args.flags.find("drop");
  if (drop_it == args.flags.end()) return Fail("--drop DIR is required");
  auto nm = OpenFromArgs(args);
  if (!nm.ok()) return Fail(nm.status().ToString());

  auto docs = (*nm)->ListDocuments();
  if (!docs.ok()) return Fail(docs.status().ToString());

  // With --allow-quarantine 1 (the checksum-corruption phase of
  // disk_torture.sh) documents lost to a DETECTED bad-CRC page count as
  // quarantined, not torn: detection and containment is exactly the contract
  // under test. Silent mismatches stay fatal in every mode.
  bool allow_quarantine = false;
  auto aq = args.flags.find("allow-quarantine");
  if (aq != args.flags.end()) {
    allow_quarantine = (aq->second != "0" && aq->second != "off");
  }

  uint64_t torn = 0, mismatches = 0, missing = 0, verified = 0, rejected = 0;
  uint64_t quarantined = 0;

  // Every row-complete document must rebuild into a DOM: a torn (partially
  // committed) insert would surface here as a reconstruction failure.
  std::map<std::string, std::vector<std::string>> stored_by_name;
  for (const auto& doc : *docs) {
    auto xml = (*nm)->GetDocumentXml(doc.doc_id);
    if (!xml.ok()) {
      if (allow_quarantine && xml.status().IsDataLoss()) {
        ++quarantined;
        continue;
      }
      std::fprintf(stderr, "torn doc %lld (%s): %s\n",
                   static_cast<long long>(doc.doc_id), doc.file_name.c_str(),
                   xml.status().ToString().c_str());
      ++torn;
      continue;
    }
    stored_by_name[doc.file_name].push_back(std::move(*xml));
  }

  // Acked = moved to processed/. At-least-once: a crash after commit but
  // before the move re-ingests the file (duplicate doc rows are fine), but
  // an acked file must never be absent or differ from its source.
  std::error_code ec;
  std::filesystem::path processed =
      std::filesystem::path(drop_it->second) / "processed";
  if (std::filesystem::exists(processed, ec)) {
    for (const auto& entry : std::filesystem::directory_iterator(processed, ec)) {
      if (!entry.is_regular_file()) continue;
      std::string name = entry.path().filename().string();
      auto content = ReadFile(entry.path());
      if (!content.ok()) return Fail(content.status().ToString());
      auto doc = (*nm)->converters().Convert(name, *content);
      if (!doc.ok()) return Fail(name + ": " + doc.status().ToString());
      std::string expect = xml::Serialize(*doc);
      auto it = stored_by_name.find(name);
      if (it == stored_by_name.end()) {
        if (allow_quarantine && (*nm)->store()->quarantined_pages() > 0) {
          // The acked copy exists but reconstructs through a quarantined
          // page — detected loss, reported below, not a silent hole.
          ++quarantined;
          continue;
        }
        std::fprintf(stderr, "acked file %s has no stored document\n", name.c_str());
        ++missing;
        continue;
      }
      bool matched = false;
      for (const std::string& got : it->second) {
        if (got == expect) { matched = true; break; }
      }
      if (matched) {
        ++verified;
      } else {
        std::fprintf(stderr, "acked file %s reconstructs differently\n", name.c_str());
        ++mismatches;
      }
    }
  }

  // The torture corpus always converts; anything in failed/ is a harness bug.
  std::filesystem::path failed_dir =
      std::filesystem::path(drop_it->second) / "failed";
  if (std::filesystem::exists(failed_dir, ec)) {
    for (const auto& entry : std::filesystem::directory_iterator(failed_dir, ec)) {
      if (entry.is_regular_file()) ++rejected;
    }
  }

  const storage::RecoveryStats& rec =
      (*nm)->store()->database()->recovery_stats();
  std::printf(
      "{\"docs\":%zu,\"acked_verified\":%llu,\"torn\":%llu,"
      "\"mismatches\":%llu,\"missing\":%llu,\"rejected\":%llu,"
      "\"quarantined\":%llu,\"quarantined_pages\":%llu,"
      "\"recovery\":{\"performed\":%s,\"committed_txns\":%llu,"
      "\"pages_applied\":%llu,\"torn_tail\":%s,\"micros\":%lld}}\n",
      docs->size(), static_cast<unsigned long long>(verified),
      static_cast<unsigned long long>(torn),
      static_cast<unsigned long long>(mismatches),
      static_cast<unsigned long long>(missing),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(quarantined),
      static_cast<unsigned long long>((*nm)->store()->quarantined_pages()),
      rec.performed ? "true" : "false",
      static_cast<unsigned long long>(rec.committed_txns),
      static_cast<unsigned long long>(rec.pages_applied),
      rec.torn_tail ? "true" : "false", static_cast<long long>(rec.micros));
  return (torn + mismatches + missing + rejected) == 0 ? 0 : 1;
}

// On-demand full scrub: CRC-verify every heap page of both tables against
// the bytes on disk (the paced background scrubber runs the same pass in
// slices). Bad pages are quarantined in-process; the JSON carries the
// verdict. Note: pages already quarantined while opening the store count in
// quarantined_pages, not errors_found — disk_torture.sh accepts either.
int CmdScrub(const Args& args) {
  auto nm = OpenFromArgs(args);
  if (!nm.ok()) return Fail(nm.status().ToString());
  const xmlstore::XmlStore* store = (*nm)->store();
  xmlstore::XmlStore::ScrubStats stats = store->ScrubAll();
  std::printf(
      "{\"pages_scanned\":%llu,\"errors_found\":%llu,"
      "\"quarantined_pages\":%llu,\"quarantined_docs\":%llu}\n",
      static_cast<unsigned long long>(stats.pages_scanned),
      static_cast<unsigned long long>(stats.errors_found),
      static_cast<unsigned long long>(store->quarantined_pages()),
      static_cast<unsigned long long>(store->quarantined_doc_count()));
  return 0;
}

// Flips one byte of one on-disk heap page, bypassing the store entirely —
// the simulated bit-rot that `netmark scrub` must then catch. Offset 64
// lands in record payload by default (past the 12-byte header, before the
// CRC trailer).
int CmdCorrupt(const Args& args) {
  auto data_it = args.flags.find("data");
  if (data_it == args.flags.end()) return Fail("--data DIR is required");
  std::string table = "XML";
  auto table_it = args.flags.find("table");
  if (table_it != args.flags.end()) table = table_it->second;
  if (table != "XML" && table != "DOC") return Fail("--table must be XML or DOC");
  int64_t page = 0, offset = 64;
  auto page_it = args.flags.find("page");
  if (page_it != args.flags.end()) {
    auto parsed = ParseInt64(page_it->second);
    if (!parsed.ok() || *parsed < 0) return Fail("bad --page value");
    page = *parsed;
  }
  auto offset_it = args.flags.find("offset");
  if (offset_it != args.flags.end()) {
    auto parsed = ParseInt64(offset_it->second);
    if (!parsed.ok() || *parsed < 0 ||
        *parsed >= static_cast<int64_t>(storage::kPageSize)) {
      return Fail("bad --offset value");
    }
    offset = *parsed;
  }
  std::string path =
      (std::filesystem::path(data_it->second) / (table + ".heap")).string();
  auto content = ReadFile(path);
  if (!content.ok()) return Fail(content.status().ToString());
  size_t at = static_cast<size_t>(page) * storage::kPageSize +
              static_cast<size_t>(offset);
  if (at >= content->size()) {
    return Fail("page " + std::to_string(page) + " is past EOF of " + path);
  }
  (*content)[at] ^= 0x5A;
  Status st = WriteFileAtomic(path, *content);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("flipped byte %lld of page %lld in %s\n",
              static_cast<long long>(offset), static_cast<long long>(page),
              path.c_str());
  return 0;
}

int CmdRemote(const Args& args) {
  auto host = args.flags.count("host") ? args.flags.at("host") : "127.0.0.1";
  if (args.flags.count("port") == 0) return Fail("--port is required");
  auto port = ParseInt64(args.flags.at("port"));
  if (!port.ok() || *port <= 0 || *port > 65535) return Fail("bad --port value");
  if (args.positional.size() != 1) return Fail("expected one QUERY string");
  server::HttpClient client(host, static_cast<uint16_t>(*port));
  auto resp = client.Get("/xdb?" + args.positional[0]);
  if (!resp.ok()) return Fail(resp.status().ToString());
  if (resp->status != 200) {
    return Fail("HTTP " + std::to_string(resp->status) + ": " + resp->body);
  }
  std::printf("%s\n", resp->body.c_str());
  return 0;
}

/// Renders the <span> children of `el` as an indented flame view: children
/// nested under parents, durations in a fixed column so the eye can scan
/// for the wide frame.
void PrintSpanTree(const xml::Document& doc, xml::NodeId el, int depth) {
  for (xml::NodeId child = doc.first_child(el); child != xml::kInvalidNode;
       child = doc.next_sibling(child)) {
    if (doc.kind(child) != xml::NodeKind::kElement || doc.name(child) != "span") {
      continue;
    }
    std::string label(static_cast<size_t>(2 * depth), ' ');
    label += std::string(doc.GetAttribute(child, "name"));
    std::string tags;
    if (doc.GetAttribute(child, "ok") == "false") tags += "  FAILED";
    if (doc.GetAttribute(child, "unfinished") == "true") tags += "  unfinished";
    if (doc.GetAttribute(child, "remote") == "true") tags += "  [remote]";
    std::string note(doc.GetAttribute(child, "note"));
    if (!note.empty()) tags += "  (" + note + ")";
    std::printf("%-44s %10s us%s\n", label.c_str(),
                std::string(doc.GetAttribute(child, "us")).c_str(), tags.c_str());
    PrintSpanTree(doc, child, depth + 1);
  }
}

int CmdTraces(const Args& args) {
  auto host = args.flags.count("host") ? args.flags.at("host") : "127.0.0.1";
  if (args.flags.count("port") == 0) return Fail("--port is required");
  auto port = ParseInt64(args.flags.at("port"));
  if (!port.ok() || *port <= 0 || *port > 65535) return Fail("bad --port value");
  server::HttpClient client(host, static_cast<uint16_t>(*port));
  auto id_flag = args.flags.find("id");
  if (id_flag == args.flags.end()) {
    auto resp = client.Get("/traces");
    if (!resp.ok()) return Fail(resp.status().ToString());
    if (resp->status != 200) {
      return Fail("HTTP " + std::to_string(resp->status) + ": " + resp->body);
    }
    std::printf("%s\n", resp->body.c_str());
    return 0;
  }
  auto resp = client.Get("/traces?id=" + id_flag->second + "&format=xml");
  if (!resp.ok()) return Fail(resp.status().ToString());
  if (resp->status != 200) {
    return Fail("HTTP " + std::to_string(resp->status) + ": " + resp->body);
  }
  auto doc = xml::ParseXml(resp->body);
  if (!doc.ok()) return Fail(doc.status().ToString());
  xml::NodeId root = doc->DocumentElement();
  xml::NodeId trace_el = root != xml::kInvalidNode
                             ? doc->FirstChildElement(root, "trace")
                             : xml::kInvalidNode;
  if (trace_el == xml::kInvalidNode) {
    return Fail("response carried no <trace> block");
  }
  std::printf("trace %s  total %s us\n",
              std::string(doc->GetAttribute(root, "id")).c_str(),
              std::string(doc->GetAttribute(trace_el, "total_us")).c_str());
  PrintSpanTree(*doc, trace_el, 1);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args = ParseArgs(argc, argv, 2);
  if (command == "ingest") return CmdIngest(args);
  if (command == "ls") return CmdLs(args);
  if (command == "get") return CmdGet(args);
  if (command == "rm") return CmdRm(args);
  if (command == "query") return CmdQuery(args);
  if (command == "serve") return CmdServe(args);
  if (command == "remote") return CmdRemote(args);
  if (command == "traces") return CmdTraces(args);
  if (command == "torture-gen") return CmdTortureGen(args);
  if (command == "torture-ingest") return CmdTortureIngest(args);
  if (command == "torture-verify") return CmdTortureVerify(args);
  if (command == "scrub") return CmdScrub(args);
  if (command == "corrupt") return CmdCorrupt(args);
  return Usage();
}
