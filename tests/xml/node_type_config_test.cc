#include "xml/node_type_config.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace netmark::xml {
namespace {

TEST(NodeTypeConfigTest, DefaultClassifiesHtmlConventions) {
  NodeTypeConfig cfg = NodeTypeConfig::Default();
  EXPECT_EQ(cfg.ClassifyElementName("h1"), NetmarkNodeType::kContext);
  EXPECT_EQ(cfg.ClassifyElementName("H2"), NetmarkNodeType::kContext);
  EXPECT_EQ(cfg.ClassifyElementName("title"), NetmarkNodeType::kContext);
  EXPECT_EQ(cfg.ClassifyElementName("context"), NetmarkNodeType::kContext);
  EXPECT_EQ(cfg.ClassifyElementName("b"), NetmarkNodeType::kIntense);
  EXPECT_EQ(cfg.ClassifyElementName("STRONG"), NetmarkNodeType::kIntense);
  EXPECT_EQ(cfg.ClassifyElementName("netmark:meta"), NetmarkNodeType::kSimulation);
  EXPECT_EQ(cfg.ClassifyElementName("p"), NetmarkNodeType::kElement);
  EXPECT_EQ(cfg.ClassifyElementName("unknown-tag"), NetmarkNodeType::kElement);
}

TEST(NodeTypeConfigTest, ClassifiesDomNodes) {
  NodeTypeConfig cfg = NodeTypeConfig::Default();
  auto doc = ParseXml("<sec><h1>T</h1><p>x</p></sec>");
  ASSERT_TRUE(doc.ok());
  NodeId sec = doc->DocumentElement();
  NodeId h1 = doc->FirstChildElement(sec, "h1");
  NodeId text = doc->first_child(h1);
  EXPECT_EQ(cfg.Classify(*doc, sec), NetmarkNodeType::kElement);
  EXPECT_EQ(cfg.Classify(*doc, h1), NetmarkNodeType::kContext);
  EXPECT_EQ(cfg.Classify(*doc, text), NetmarkNodeType::kText);
}

TEST(NodeTypeConfigTest, LoadsFromConfigWithFallbacks) {
  auto ini = Config::Parse(
      "[context]\n"
      "tags = section-title, chapter\n");
  ASSERT_TRUE(ini.ok());
  auto cfg = NodeTypeConfig::FromConfig(*ini);
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->ClassifyElementName("section-title"), NetmarkNodeType::kContext);
  EXPECT_EQ(cfg->ClassifyElementName("chapter"), NetmarkNodeType::kContext);
  // h1 was *replaced* by the custom [context] section...
  EXPECT_EQ(cfg->ClassifyElementName("h1"), NetmarkNodeType::kElement);
  // ...but intense falls back to defaults (no [intense] section given).
  EXPECT_EQ(cfg->ClassifyElementName("b"), NetmarkNodeType::kIntense);
}

TEST(NodeTypeConfigTest, AddTagsAtRuntime) {
  NodeTypeConfig cfg = NodeTypeConfig::Default();
  cfg.AddContextTag("Rubric");
  EXPECT_TRUE(cfg.IsContextTag("rubric"));
  EXPECT_TRUE(cfg.IsContextTag("RUBRIC"));
  cfg.AddIntenseTag("hot");
  EXPECT_TRUE(cfg.IsIntenseTag("hot"));
  cfg.AddSimulationTag("gen");
  EXPECT_TRUE(cfg.IsSimulationTag("gen"));
}

TEST(NodeTypeConfigTest, NodeTypeIntConversion) {
  EXPECT_EQ(*NetmarkNodeTypeFromInt(1), NetmarkNodeType::kElement);
  EXPECT_EQ(*NetmarkNodeTypeFromInt(3), NetmarkNodeType::kContext);
  EXPECT_EQ(*NetmarkNodeTypeFromInt(5), NetmarkNodeType::kSimulation);
  EXPECT_FALSE(NetmarkNodeTypeFromInt(0).ok());
  EXPECT_FALSE(NetmarkNodeTypeFromInt(6).ok());
  EXPECT_EQ(NetmarkNodeTypeToString(NetmarkNodeType::kIntense), "INTENSE");
}

}  // namespace
}  // namespace netmark::xml
